# Empty dependencies file for transient_settling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/transient_settling.dir/transient_settling.cpp.o"
  "CMakeFiles/transient_settling.dir/transient_settling.cpp.o.d"
  "transient_settling"
  "transient_settling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_settling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

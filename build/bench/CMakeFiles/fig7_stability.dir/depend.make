# Empty dependencies file for fig7_stability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/timing_htm_vs_sim.dir/timing_htm_vs_sim.cpp.o"
  "CMakeFiles/timing_htm_vs_sim.dir/timing_htm_vs_sim.cpp.o.d"
  "timing_htm_vs_sim"
  "timing_htm_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_htm_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for timing_htm_vs_sim.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_pfd_shape.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pfd_shape.dir/ablation_pfd_shape.cpp.o"
  "CMakeFiles/ablation_pfd_shape.dir/ablation_pfd_shape.cpp.o.d"
  "ablation_pfd_shape"
  "ablation_pfd_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pfd_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/harmonic_bode.dir/harmonic_bode.cpp.o"
  "CMakeFiles/harmonic_bode.dir/harmonic_bode.cpp.o.d"
  "harmonic_bode"
  "harmonic_bode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmonic_bode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

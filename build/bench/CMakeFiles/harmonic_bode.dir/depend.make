# Empty dependencies file for harmonic_bode.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_truncation.
# This may be replaced when dependencies are built.

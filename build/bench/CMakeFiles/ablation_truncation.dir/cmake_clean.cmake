file(REMOVE_RECURSE
  "CMakeFiles/ablation_truncation.dir/ablation_truncation.cpp.o"
  "CMakeFiles/ablation_truncation.dir/ablation_truncation.cpp.o.d"
  "ablation_truncation"
  "ablation_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

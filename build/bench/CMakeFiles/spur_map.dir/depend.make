# Empty dependencies file for spur_map.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spur_map.dir/spur_map.cpp.o"
  "CMakeFiles/spur_map.dir/spur_map.cpp.o.d"
  "spur_map"
  "spur_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spur_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

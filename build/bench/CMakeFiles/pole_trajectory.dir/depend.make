# Empty dependencies file for pole_trajectory.
# This may be replaced when dependencies are built.

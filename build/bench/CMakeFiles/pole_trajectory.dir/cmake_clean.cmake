file(REMOVE_RECURSE
  "CMakeFiles/pole_trajectory.dir/pole_trajectory.cpp.o"
  "CMakeFiles/pole_trajectory.dir/pole_trajectory.cpp.o.d"
  "pole_trajectory"
  "pole_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pole_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_lptv.dir/ablation_lptv.cpp.o"
  "CMakeFiles/ablation_lptv.dir/ablation_lptv.cpp.o.d"
  "ablation_lptv"
  "ablation_lptv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lptv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_lptv.
# This may be replaced when dependencies are built.

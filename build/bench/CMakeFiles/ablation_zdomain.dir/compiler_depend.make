# Empty compiler generated dependencies file for ablation_zdomain.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_zdomain.dir/ablation_zdomain.cpp.o"
  "CMakeFiles/ablation_zdomain.dir/ablation_zdomain.cpp.o.d"
  "ablation_zdomain"
  "ablation_zdomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zdomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtmpll_bench_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/htmpll_bench_common.dir/bench_common.cpp.o.d"
  "libhtmpll_bench_common.a"
  "libhtmpll_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for htmpll_bench_common.
# This may be replaced when dependencies are built.

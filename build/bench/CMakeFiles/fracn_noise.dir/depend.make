# Empty dependencies file for fracn_noise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fracn_noise.dir/fracn_noise.cpp.o"
  "CMakeFiles/fracn_noise.dir/fracn_noise.cpp.o.d"
  "fracn_noise"
  "fracn_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fracn_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/acquisition_time.dir/acquisition_time.cpp.o"
  "CMakeFiles/acquisition_time.dir/acquisition_time.cpp.o.d"
  "acquisition_time"
  "acquisition_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquisition_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gardner_chart.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gardner_chart.dir/gardner_chart.cpp.o"
  "CMakeFiles/gardner_chart.dir/gardner_chart.cpp.o.d"
  "gardner_chart"
  "gardner_chart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gardner_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

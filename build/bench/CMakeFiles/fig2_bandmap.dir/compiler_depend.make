# Empty compiler generated dependencies file for fig2_bandmap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_bandmap.dir/fig2_bandmap.cpp.o"
  "CMakeFiles/fig2_bandmap.dir/fig2_bandmap.cpp.o.d"
  "fig2_bandmap"
  "fig2_bandmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bandmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/jitter_bandwidth.dir/jitter_bandwidth.cpp.o"
  "CMakeFiles/jitter_bandwidth.dir/jitter_bandwidth.cpp.o.d"
  "jitter_bandwidth"
  "jitter_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

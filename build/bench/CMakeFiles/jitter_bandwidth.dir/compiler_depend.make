# Empty compiler generated dependencies file for jitter_bandwidth.
# This may be replaced when dependencies are built.

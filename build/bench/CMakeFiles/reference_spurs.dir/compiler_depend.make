# Empty compiler generated dependencies file for reference_spurs.
# This may be replaced when dependencies are built.

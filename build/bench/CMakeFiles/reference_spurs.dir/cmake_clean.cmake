file(REMOVE_RECURSE
  "CMakeFiles/reference_spurs.dir/reference_spurs.cpp.o"
  "CMakeFiles/reference_spurs.dir/reference_spurs.cpp.o.d"
  "reference_spurs"
  "reference_spurs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_spurs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

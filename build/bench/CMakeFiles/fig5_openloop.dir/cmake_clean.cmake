file(REMOVE_RECURSE
  "CMakeFiles/fig5_openloop.dir/fig5_openloop.cpp.o"
  "CMakeFiles/fig5_openloop.dir/fig5_openloop.cpp.o.d"
  "fig5_openloop"
  "fig5_openloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_openloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5_openloop.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_rankone.
# This may be replaced when dependencies are built.

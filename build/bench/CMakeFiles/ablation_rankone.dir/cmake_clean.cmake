file(REMOVE_RECURSE
  "CMakeFiles/ablation_rankone.dir/ablation_rankone.cpp.o"
  "CMakeFiles/ablation_rankone.dir/ablation_rankone.cpp.o.d"
  "ablation_rankone"
  "ablation_rankone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rankone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_rankone.cpp" "bench/CMakeFiles/ablation_rankone.dir/ablation_rankone.cpp.o" "gcc" "bench/CMakeFiles/ablation_rankone.dir/ablation_rankone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/htmpll_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_timedomain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_fracn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_ztrans.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_lti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

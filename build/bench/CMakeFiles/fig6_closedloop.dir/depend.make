# Empty dependencies file for fig6_closedloop.
# This may be replaced when dependencies are built.

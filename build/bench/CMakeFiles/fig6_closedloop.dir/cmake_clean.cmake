file(REMOVE_RECURSE
  "CMakeFiles/fig6_closedloop.dir/fig6_closedloop.cpp.o"
  "CMakeFiles/fig6_closedloop.dir/fig6_closedloop.cpp.o.d"
  "fig6_closedloop"
  "fig6_closedloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_closedloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

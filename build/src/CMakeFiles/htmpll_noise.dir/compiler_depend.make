# Empty compiler generated dependencies file for htmpll_noise.
# This may be replaced when dependencies are built.

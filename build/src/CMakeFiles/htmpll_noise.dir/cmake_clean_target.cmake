file(REMOVE_RECURSE
  "libhtmpll_noise.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_noise.dir/htmpll/noise/noise.cpp.o"
  "CMakeFiles/htmpll_noise.dir/htmpll/noise/noise.cpp.o.d"
  "CMakeFiles/htmpll_noise.dir/htmpll/noise/spurs.cpp.o"
  "CMakeFiles/htmpll_noise.dir/htmpll/noise/spurs.cpp.o.d"
  "libhtmpll_noise.a"
  "libhtmpll_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

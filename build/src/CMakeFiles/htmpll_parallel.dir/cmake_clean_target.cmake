file(REMOVE_RECURSE
  "libhtmpll_parallel.a"
)

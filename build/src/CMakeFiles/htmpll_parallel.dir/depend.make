# Empty dependencies file for htmpll_parallel.
# This may be replaced when dependencies are built.

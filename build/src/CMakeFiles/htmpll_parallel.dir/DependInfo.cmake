
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmpll/parallel/sweep.cpp" "src/CMakeFiles/htmpll_parallel.dir/htmpll/parallel/sweep.cpp.o" "gcc" "src/CMakeFiles/htmpll_parallel.dir/htmpll/parallel/sweep.cpp.o.d"
  "/root/repo/src/htmpll/parallel/thread_pool.cpp" "src/CMakeFiles/htmpll_parallel.dir/htmpll/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/htmpll_parallel.dir/htmpll/parallel/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_parallel.dir/htmpll/parallel/sweep.cpp.o"
  "CMakeFiles/htmpll_parallel.dir/htmpll/parallel/sweep.cpp.o.d"
  "CMakeFiles/htmpll_parallel.dir/htmpll/parallel/thread_pool.cpp.o"
  "CMakeFiles/htmpll_parallel.dir/htmpll/parallel/thread_pool.cpp.o.d"
  "libhtmpll_parallel.a"
  "libhtmpll_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/discrete_response.cpp.o"
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/discrete_response.cpp.o.d"
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/jury.cpp.o"
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/jury.cpp.o.d"
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/zdomain.cpp.o"
  "CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/zdomain.cpp.o.d"
  "libhtmpll_ztrans.a"
  "libhtmpll_ztrans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_ztrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

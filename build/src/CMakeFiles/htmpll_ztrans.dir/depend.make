# Empty dependencies file for htmpll_ztrans.
# This may be replaced when dependencies are built.

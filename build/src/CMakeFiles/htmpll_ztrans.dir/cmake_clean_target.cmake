file(REMOVE_RECURSE
  "libhtmpll_ztrans.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmpll/ztrans/discrete_response.cpp" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/discrete_response.cpp.o" "gcc" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/discrete_response.cpp.o.d"
  "/root/repo/src/htmpll/ztrans/jury.cpp" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/jury.cpp.o" "gcc" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/jury.cpp.o.d"
  "/root/repo/src/htmpll/ztrans/zdomain.cpp" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/zdomain.cpp.o" "gcc" "src/CMakeFiles/htmpll_ztrans.dir/htmpll/ztrans/zdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_lti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

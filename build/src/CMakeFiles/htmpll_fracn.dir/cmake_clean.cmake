file(REMOVE_RECURSE
  "CMakeFiles/htmpll_fracn.dir/htmpll/fracn/fracn_noise.cpp.o"
  "CMakeFiles/htmpll_fracn.dir/htmpll/fracn/fracn_noise.cpp.o.d"
  "CMakeFiles/htmpll_fracn.dir/htmpll/fracn/sigma_delta.cpp.o"
  "CMakeFiles/htmpll_fracn.dir/htmpll/fracn/sigma_delta.cpp.o.d"
  "libhtmpll_fracn.a"
  "libhtmpll_fracn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_fracn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

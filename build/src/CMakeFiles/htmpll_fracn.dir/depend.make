# Empty dependencies file for htmpll_fracn.
# This may be replaced when dependencies are built.

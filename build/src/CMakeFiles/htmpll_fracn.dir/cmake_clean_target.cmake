file(REMOVE_RECURSE
  "libhtmpll_fracn.a"
)

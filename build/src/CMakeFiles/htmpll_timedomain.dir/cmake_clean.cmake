file(REMOVE_RECURSE
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/loop_filter_sim.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/loop_filter_sim.cpp.o.d"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/lptv_vco_sim.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/lptv_vco_sim.cpp.o.d"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pfd.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pfd.cpp.o.d"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pll_sim.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pll_sim.cpp.o.d"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/probe.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/probe.cpp.o.d"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/sample_hold_sim.cpp.o"
  "CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/sample_hold_sim.cpp.o.d"
  "libhtmpll_timedomain.a"
  "libhtmpll_timedomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_timedomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

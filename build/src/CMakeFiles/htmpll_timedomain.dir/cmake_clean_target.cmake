file(REMOVE_RECURSE
  "libhtmpll_timedomain.a"
)

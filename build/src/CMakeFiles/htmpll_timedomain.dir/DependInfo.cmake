
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmpll/timedomain/loop_filter_sim.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/loop_filter_sim.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/loop_filter_sim.cpp.o.d"
  "/root/repo/src/htmpll/timedomain/lptv_vco_sim.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/lptv_vco_sim.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/lptv_vco_sim.cpp.o.d"
  "/root/repo/src/htmpll/timedomain/pfd.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pfd.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pfd.cpp.o.d"
  "/root/repo/src/htmpll/timedomain/pll_sim.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pll_sim.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pll_sim.cpp.o.d"
  "/root/repo/src/htmpll/timedomain/probe.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/probe.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/probe.cpp.o.d"
  "/root/repo/src/htmpll/timedomain/sample_hold_sim.cpp" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/sample_hold_sim.cpp.o" "gcc" "src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/sample_hold_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_lti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_ztrans.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

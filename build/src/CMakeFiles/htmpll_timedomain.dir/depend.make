# Empty dependencies file for htmpll_timedomain.
# This may be replaced when dependencies are built.

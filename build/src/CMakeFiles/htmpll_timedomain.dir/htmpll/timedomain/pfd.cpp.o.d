src/CMakeFiles/htmpll_timedomain.dir/htmpll/timedomain/pfd.cpp.o: \
 /root/repo/src/htmpll/timedomain/pfd.cpp /usr/include/stdc-predef.h \
 /root/repo/src/htmpll/timedomain/pfd.hpp

file(REMOVE_RECURSE
  "libhtmpll_util.a"
)

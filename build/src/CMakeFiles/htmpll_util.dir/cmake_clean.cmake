file(REMOVE_RECURSE
  "CMakeFiles/htmpll_util.dir/htmpll/util/check.cpp.o"
  "CMakeFiles/htmpll_util.dir/htmpll/util/check.cpp.o.d"
  "CMakeFiles/htmpll_util.dir/htmpll/util/grid.cpp.o"
  "CMakeFiles/htmpll_util.dir/htmpll/util/grid.cpp.o.d"
  "CMakeFiles/htmpll_util.dir/htmpll/util/table.cpp.o"
  "CMakeFiles/htmpll_util.dir/htmpll/util/table.cpp.o.d"
  "libhtmpll_util.a"
  "libhtmpll_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for htmpll_util.
# This may be replaced when dependencies are built.

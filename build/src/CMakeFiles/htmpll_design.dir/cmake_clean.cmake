file(REMOVE_RECURSE
  "CMakeFiles/htmpll_design.dir/htmpll/design/design.cpp.o"
  "CMakeFiles/htmpll_design.dir/htmpll/design/design.cpp.o.d"
  "libhtmpll_design.a"
  "libhtmpll_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhtmpll_design.a"
)

# Empty compiler generated dependencies file for htmpll_design.
# This may be replaced when dependencies are built.

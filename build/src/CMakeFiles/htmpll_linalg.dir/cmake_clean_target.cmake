file(REMOVE_RECURSE
  "libhtmpll_linalg.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/expm.cpp.o"
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/expm.cpp.o.d"
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/lu.cpp.o"
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/lu.cpp.o.d"
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/matrix.cpp.o"
  "CMakeFiles/htmpll_linalg.dir/htmpll/linalg/matrix.cpp.o.d"
  "libhtmpll_linalg.a"
  "libhtmpll_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for htmpll_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhtmpll_lti.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmpll/lti/bode.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/bode.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/bode.cpp.o.d"
  "/root/repo/src/htmpll/lti/delay.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/delay.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/delay.cpp.o.d"
  "/root/repo/src/htmpll/lti/loop_filter.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/loop_filter.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/loop_filter.cpp.o.d"
  "/root/repo/src/htmpll/lti/partial_fractions.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/partial_fractions.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/partial_fractions.cpp.o.d"
  "/root/repo/src/htmpll/lti/polynomial.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/polynomial.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/polynomial.cpp.o.d"
  "/root/repo/src/htmpll/lti/rational.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/rational.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/rational.cpp.o.d"
  "/root/repo/src/htmpll/lti/roots.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/roots.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/roots.cpp.o.d"
  "/root/repo/src/htmpll/lti/state_space.cpp" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/state_space.cpp.o" "gcc" "src/CMakeFiles/htmpll_lti.dir/htmpll/lti/state_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for htmpll_lti.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/bode.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/bode.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/delay.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/delay.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/loop_filter.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/loop_filter.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/partial_fractions.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/partial_fractions.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/polynomial.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/polynomial.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/rational.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/rational.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/roots.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/roots.cpp.o.d"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/state_space.cpp.o"
  "CMakeFiles/htmpll_lti.dir/htmpll/lti/state_space.cpp.o.d"
  "libhtmpll_lti.a"
  "libhtmpll_lti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_lti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for htmpll_core.
# This may be replaced when dependencies are built.

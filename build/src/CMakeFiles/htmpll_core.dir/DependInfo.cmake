
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htmpll/core/aliasing_sum.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/aliasing_sum.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/aliasing_sum.cpp.o.d"
  "/root/repo/src/htmpll/core/builders.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/builders.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/builders.cpp.o.d"
  "/root/repo/src/htmpll/core/calibration.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/calibration.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/calibration.cpp.o.d"
  "/root/repo/src/htmpll/core/htm.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/htm.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/htm.cpp.o.d"
  "/root/repo/src/htmpll/core/pole_search.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/pole_search.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/pole_search.cpp.o.d"
  "/root/repo/src/htmpll/core/sampling_pll.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/sampling_pll.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/sampling_pll.cpp.o.d"
  "/root/repo/src/htmpll/core/stability.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/stability.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/stability.cpp.o.d"
  "/root/repo/src/htmpll/core/symbolic.cpp" "src/CMakeFiles/htmpll_core.dir/htmpll/core/symbolic.cpp.o" "gcc" "src/CMakeFiles/htmpll_core.dir/htmpll/core/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_lti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_ztrans.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libhtmpll_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/htmpll_core.dir/htmpll/core/aliasing_sum.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/aliasing_sum.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/builders.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/builders.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/calibration.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/calibration.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/htm.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/htm.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/pole_search.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/pole_search.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/sampling_pll.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/sampling_pll.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/stability.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/stability.cpp.o.d"
  "CMakeFiles/htmpll_core.dir/htmpll/core/symbolic.cpp.o"
  "CMakeFiles/htmpll_core.dir/htmpll/core/symbolic.cpp.o.d"
  "libhtmpll_core.a"
  "libhtmpll_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htmpll_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fractional_n.dir/fractional_n.cpp.o"
  "CMakeFiles/fractional_n.dir/fractional_n.cpp.o.d"
  "fractional_n"
  "fractional_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractional_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

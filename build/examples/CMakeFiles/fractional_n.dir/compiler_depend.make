# Empty compiler generated dependencies file for fractional_n.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/clock_deskew.dir/clock_deskew.cpp.o"
  "CMakeFiles/clock_deskew.dir/clock_deskew.cpp.o.d"
  "clock_deskew"
  "clock_deskew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_deskew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

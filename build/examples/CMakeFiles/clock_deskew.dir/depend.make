# Empty dependencies file for clock_deskew.
# This may be replaced when dependencies are built.

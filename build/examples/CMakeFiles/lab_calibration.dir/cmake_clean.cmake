file(REMOVE_RECURSE
  "CMakeFiles/lab_calibration.dir/lab_calibration.cpp.o"
  "CMakeFiles/lab_calibration.dir/lab_calibration.cpp.o.d"
  "lab_calibration"
  "lab_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

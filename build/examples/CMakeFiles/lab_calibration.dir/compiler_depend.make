# Empty compiler generated dependencies file for lab_calibration.
# This may be replaced when dependencies are built.

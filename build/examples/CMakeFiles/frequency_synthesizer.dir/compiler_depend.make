# Empty compiler generated dependencies file for frequency_synthesizer.
# This may be replaced when dependencies are built.

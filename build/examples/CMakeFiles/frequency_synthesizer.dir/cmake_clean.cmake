file(REMOVE_RECURSE
  "CMakeFiles/frequency_synthesizer.dir/frequency_synthesizer.cpp.o"
  "CMakeFiles/frequency_synthesizer.dir/frequency_synthesizer.cpp.o.d"
  "frequency_synthesizer"
  "frequency_synthesizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_synthesizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

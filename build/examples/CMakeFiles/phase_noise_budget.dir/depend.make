# Empty dependencies file for phase_noise_budget.
# This may be replaced when dependencies are built.

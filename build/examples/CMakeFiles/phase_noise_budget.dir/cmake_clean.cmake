file(REMOVE_RECURSE
  "CMakeFiles/phase_noise_budget.dir/phase_noise_budget.cpp.o"
  "CMakeFiles/phase_noise_budget.dir/phase_noise_budget.cpp.o.d"
  "phase_noise_budget"
  "phase_noise_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_noise_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

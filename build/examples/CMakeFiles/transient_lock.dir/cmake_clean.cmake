file(REMOVE_RECURSE
  "CMakeFiles/transient_lock.dir/transient_lock.cpp.o"
  "CMakeFiles/transient_lock.dir/transient_lock.cpp.o.d"
  "transient_lock"
  "transient_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

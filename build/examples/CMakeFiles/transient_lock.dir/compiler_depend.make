# Empty compiler generated dependencies file for transient_lock.
# This may be replaced when dependencies are built.

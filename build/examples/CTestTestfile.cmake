# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_frequency_synthesizer "/root/repo/build/examples/frequency_synthesizer")
set_tests_properties(example_frequency_synthesizer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clock_deskew "/root/repo/build/examples/clock_deskew")
set_tests_properties(example_clock_deskew PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_phase_noise_budget "/root/repo/build/examples/phase_noise_budget")
set_tests_properties(example_phase_noise_budget PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transient_lock "/root/repo/build/examples/transient_lock")
set_tests_properties(example_transient_lock PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lab_calibration "/root/repo/build/examples/lab_calibration")
set_tests_properties(example_lab_calibration PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fractional_n "/root/repo/build/examples/fractional_n")
set_tests_properties(example_fractional_n PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;htmpll_example;/root/repo/examples/CMakeLists.txt;0;")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aliasing_sum.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_aliasing_sum.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_aliasing_sum.cpp.o.d"
  "/root/repo/tests/test_band_transfer.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_band_transfer.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_band_transfer.cpp.o.d"
  "/root/repo/tests/test_bode.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_bode.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_bode.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_delay.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_delay.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_delay.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_discrete_response.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_discrete_response.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_discrete_response.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_expm.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_expm.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_expm.cpp.o.d"
  "/root/repo/tests/test_htm.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_htm.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_htm.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_loop_filter.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_loop_filter.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_loop_filter.cpp.o.d"
  "/root/repo/tests/test_loop_filter_sim.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_loop_filter_sim.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_loop_filter_sim.cpp.o.d"
  "/root/repo/tests/test_lptv_sim.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_lptv_sim.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_lptv_sim.cpp.o.d"
  "/root/repo/tests/test_lu.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_lu.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_lu.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_noise.cpp.o.d"
  "/root/repo/tests/test_noise_injection.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_noise_injection.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_noise_injection.cpp.o.d"
  "/root/repo/tests/test_partial_fractions.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_partial_fractions.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_partial_fractions.cpp.o.d"
  "/root/repo/tests/test_pfd.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_pfd.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_pfd.cpp.o.d"
  "/root/repo/tests/test_pfd_shape.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_pfd_shape.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_pfd_shape.cpp.o.d"
  "/root/repo/tests/test_pll_sim.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_pll_sim.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_pll_sim.cpp.o.d"
  "/root/repo/tests/test_pole_search.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_pole_search.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_pole_search.cpp.o.d"
  "/root/repo/tests/test_polynomial.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_polynomial.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_polynomial.cpp.o.d"
  "/root/repo/tests/test_probe.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_probe.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_probe.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_random_algebra.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_random_algebra.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_random_algebra.cpp.o.d"
  "/root/repo/tests/test_rational.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_rational.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_rational.cpp.o.d"
  "/root/repo/tests/test_roots.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_roots.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_roots.cpp.o.d"
  "/root/repo/tests/test_sampling_pll.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_sampling_pll.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_sampling_pll.cpp.o.d"
  "/root/repo/tests/test_second_order.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_second_order.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_second_order.cpp.o.d"
  "/root/repo/tests/test_sigma_delta.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_sigma_delta.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_sigma_delta.cpp.o.d"
  "/root/repo/tests/test_spurs.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_spurs.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_spurs.cpp.o.d"
  "/root/repo/tests/test_stability.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_stability.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_stability.cpp.o.d"
  "/root/repo/tests/test_state_space.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_state_space.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_state_space.cpp.o.d"
  "/root/repo/tests/test_symbolic.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_symbolic.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_symbolic.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_zdomain.cpp" "tests/CMakeFiles/htmpll_tests.dir/test_zdomain.cpp.o" "gcc" "tests/CMakeFiles/htmpll_tests.dir/test_zdomain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htmpll_timedomain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_fracn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_design.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_noise.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_ztrans.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_lti.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/htmpll_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

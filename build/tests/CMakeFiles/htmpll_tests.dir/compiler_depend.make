# Empty compiler generated dependencies file for htmpll_tests.
# This may be replaced when dependencies are built.

// Cross-cutting property suite: randomized/parameterized invariants that
// tie the independent implementations together.  Each TEST_P sweeps loop
// families, bandwidth ratios and absolute frequency scales.
#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "htmpll/core/pole_search.hpp"
#include "htmpll/core/stability.hpp"
#include "htmpll/ztrans/jury.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

struct LoopCase {
  double w0;
  double ratio;
  double gamma;
  bool second_order;
};

PllParameters make_loop(const LoopCase& c) {
  return c.second_order
             ? make_second_order_loop(c.ratio * c.w0, c.w0, c.gamma)
             : make_typical_loop(c.ratio * c.w0, c.w0, c.gamma);
}

class LoopFamily : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopFamily, ExactAndAdaptiveLambdaAgree) {
  const LoopCase c = GetParam();
  const SamplingPllModel m(make_loop(c));
  for (double f : {0.04, 0.13, 0.29, 0.47}) {
    const cplx s = j * (f * c.w0);
    const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
    const cplx adaptive = m.lambda(s, LambdaMethod::kAdaptive, 0);
    EXPECT_NEAR(std::abs(adaptive - exact) / std::abs(exact), 0.0, 1e-7)
        << "f = " << f;
  }
}

TEST_P(LoopFamily, PoissonIdentityHolds) {
  const LoopCase c = GetParam();
  const PllParameters p = make_loop(c);
  const SamplingPllModel m(p);
  const ImpulseInvariantModel zm(p.open_loop_gain(), c.w0);
  for (double f : {0.06, 0.21, 0.43}) {
    const cplx s = j * (f * c.w0);
    const cplx lam = m.lambda(s);
    const cplx zlam = zm.lambda_equivalent(s);
    EXPECT_NEAR(std::abs(lam - zlam) / std::abs(lam), 0.0, 1e-8)
        << "f = " << f;
  }
}

TEST_P(LoopFamily, RankOneEqualsDenseSolve) {
  const LoopCase c = GetParam();
  const SamplingPllModel m(make_loop(c));
  const cplx s = j * (0.17 * c.w0);
  const Htm a = m.closed_loop_htm(s, 5);
  const Htm b = m.closed_loop_htm_dense(s, 5);
  EXPECT_LT((a.matrix() - b.matrix()).max_abs() /
                std::max(1e-300, b.matrix().max_abs()),
            1e-9);
}

TEST_P(LoopFamily, JuryAgreesWithPoleRadii) {
  const LoopCase c = GetParam();
  const ImpulseInvariantModel zm(make_loop(c).open_loop_gain(), c.w0);
  double maxr = 0.0;
  for (const cplx& z : zm.closed_loop_poles()) {
    maxr = std::max(maxr, std::abs(z));
  }
  // Skip the knife-edge (bisection-boundary) cases.
  if (std::abs(maxr - 1.0) < 1e-3) GTEST_SKIP();
  EXPECT_EQ(jury_stable(zm.characteristic()), maxr < 1.0);
}

TEST_P(LoopFamily, LambdaConjugateSymmetry) {
  // Real loops: lambda(conj(s)) = conj(lambda(s)).
  const LoopCase c = GetParam();
  const SamplingPllModel m(make_loop(c));
  const cplx s{-0.03 * c.w0, 0.19 * c.w0};
  const cplx a = m.lambda(std::conj(s));
  const cplx b = std::conj(m.lambda(s));
  EXPECT_NEAR(std::abs(a - b) / std::abs(b), 0.0, 1e-10);
}

TEST_P(LoopFamily, BasebandTransferScaleInvariance) {
  // Normalized response depends only on (ratio, gamma, f/w0) -- never on
  // the absolute reference frequency.
  const LoopCase c = GetParam();
  const SamplingPllModel m1(make_loop(c));
  LoopCase scaled = c;
  scaled.w0 = c.w0 * 977.0;
  const SamplingPllModel m2(make_loop(scaled));
  for (double f : {0.05, 0.22, 0.41}) {
    const cplx h1 = m1.baseband_transfer(j * (f * c.w0));
    const cplx h2 = m2.baseband_transfer(j * (f * scaled.w0));
    EXPECT_NEAR(std::abs(h1 - h2), 0.0, 1e-9 * std::abs(h1))
        << "f = " << f;
  }
}

TEST_P(LoopFamily, ErrorPlusTrackingIsUnity) {
  const LoopCase c = GetParam();
  const SamplingPllModel m(make_loop(c));
  const cplx s = j * (0.11 * c.w0);
  EXPECT_NEAR(std::abs(m.baseband_transfer(s) +
                       m.baseband_error_transfer(s) - cplx{1.0}),
              0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Loops, LoopFamily,
    ::testing::Values(
        LoopCase{2.0 * std::numbers::pi, 0.05, 4.0, false},
        LoopCase{2.0 * std::numbers::pi, 0.15, 4.0, false},
        LoopCase{2.0 * std::numbers::pi, 0.25, 4.0, false},
        LoopCase{2.0 * std::numbers::pi, 0.1, 2.0, false},
        LoopCase{2.0 * std::numbers::pi, 0.1, 8.0, false},
        LoopCase{2.0 * std::numbers::pi * 1e6, 0.12, 4.0, false},
        LoopCase{2.0 * std::numbers::pi * 1e9, 0.2, 3.0, false},
        LoopCase{2.0 * std::numbers::pi, 0.1, 4.0, true},
        LoopCase{2.0 * std::numbers::pi, 0.3, 4.0, true},
        LoopCase{2.0 * std::numbers::pi * 1e6, 0.2, 6.0, true}));

TEST(RandomLptvProperties, RankOneEqualsDenseWithRandomIsf) {
  std::mt19937 rng(2024u);
  std::uniform_real_distribution<double> d(-0.3, 0.3);
  const double w0 = 2.0 * std::numbers::pi;
  for (int trial = 0; trial < 12; ++trial) {
    const HarmonicCoefficients isf = HarmonicCoefficients::real_waveform(
        1.0, {cplx{d(rng), d(rng)}, cplx{d(rng), d(rng)}});
    const SamplingPllModel m(make_typical_loop(0.15 * w0, w0), isf);
    const cplx s = j * ((0.05 + 0.04 * trial) * w0);
    const Htm a = m.closed_loop_htm(s, 6);
    const Htm b = m.closed_loop_htm_dense(s, 6);
    EXPECT_LT((a.matrix() - b.matrix()).max_abs() /
                  std::max(1e-300, b.matrix().max_abs()),
              1e-9)
        << "trial " << trial;
  }
}

TEST(RandomLptvProperties, TruncatedLambdaConvergesToExactWithRandomIsf) {
  std::mt19937 rng(7u);
  std::uniform_real_distribution<double> d(-0.25, 0.25);
  const double w0 = 2.0 * std::numbers::pi;
  for (int trial = 0; trial < 6; ++trial) {
    const HarmonicCoefficients isf = HarmonicCoefficients::real_waveform(
        1.0, {cplx{d(rng), d(rng)}});
    const SamplingPllModel m(make_typical_loop(0.12 * w0, w0), isf);
    const cplx s = j * (0.17 * w0);
    const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
    double prev = 1e300;
    for (int k : {8, 64, 512}) {
      const double err =
          std::abs(m.lambda(s, LambdaMethod::kTruncated, k) - exact);
      EXPECT_LT(err, prev * 1.05);
      prev = err;
    }
    EXPECT_LT(prev / std::abs(exact), 1e-2) << "trial " << trial;
  }
}

TEST(RandomLptvProperties, PoleResidualsStayTinyAcrossFamilies) {
  const double w0 = 2.0 * std::numbers::pi;
  for (double ratio : {0.08, 0.18, 0.26}) {
    for (bool second : {false, true}) {
      const PllParameters p =
          second ? make_second_order_loop(ratio * w0, w0)
                 : make_typical_loop(ratio * w0, w0);
      const SamplingPllModel m(p);
      for (const ClosedLoopPole& pole : closed_loop_poles(m)) {
        EXPECT_LT(pole.residual, 1e-8)
            << "ratio " << ratio << " second " << second;
      }
    }
  }
}

}  // namespace
}  // namespace htmpll

#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/builders.hpp"
#include "htmpll/core/htm.hpp"
#include "htmpll/linalg/lu.hpp"
#include "htmpll/lti/loop_filter.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 10.0;

TEST(Htm, IndexingConvention) {
  Htm h(2, kW0, j);
  EXPECT_EQ(h.dim(), 5u);
  EXPECT_EQ(h.index(-2), 0u);
  EXPECT_EQ(h.index(0), 2u);
  EXPECT_EQ(h.index(2), 4u);
  h.at(-1, 1) = cplx{3.0};
  EXPECT_EQ(h.matrix()(1, 3), cplx(3.0));
  EXPECT_THROW(h.at(3, 0), std::invalid_argument);
}

TEST(Htm, IdentityAndAlgebra) {
  const Htm i = Htm::identity(1, kW0, j);
  Htm a(1, kW0, j);
  a.at(0, 0) = 2.0;
  a.at(1, -1) = j;
  const Htm sum = a + i;
  EXPECT_EQ(sum.at(0, 0), cplx(3.0));
  EXPECT_EQ(sum.at(1, -1), j);
  const Htm prod = a * i;
  EXPECT_EQ(prod.at(1, -1), j);
  const Htm diff = sum - i;
  EXPECT_EQ(diff.at(0, 0), cplx(2.0));
}

TEST(Htm, IncompatibleOperandsThrow) {
  const Htm a(1, kW0, j);
  const Htm b(2, kW0, j);
  const Htm c(1, kW0 * 2.0, j);
  const Htm d(1, kW0, 2.0 * j);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a * c, std::invalid_argument);
  EXPECT_THROW(a * d, std::invalid_argument);
}

TEST(Htm, LtiBuilderIsDiagonalWithShiftedArguments) {
  // eq. 12: H_{m,m}(s) = H(s + j m w0).
  const RationalFunction h(Polynomial::constant(1.0),
                           Polynomial::from_real({1.0, 1.0}));
  const cplx s{0.5, 2.0};
  const Htm m = lti_htm(h, 2, kW0, s);
  for (int n = -2; n <= 2; ++n) {
    for (int k = -2; k <= 2; ++k) {
      if (n == k) {
        const cplx expected = h(s + cplx{0.0, n * kW0});
        EXPECT_NEAR(std::abs(m.at(n, k) - expected), 0.0, 1e-14);
      } else {
        EXPECT_EQ(m.at(n, k), cplx(0.0));
      }
    }
  }
}

TEST(Htm, MultiplierBuilderIsToeplitz) {
  // eq. 13: H_{n,m} = P_{n-m}.
  const HarmonicCoefficients p =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.25, -0.1}});
  const Htm m = multiplier_htm(p, 2, kW0, j);
  for (int n = -2; n <= 2; ++n) {
    for (int k = -2; k <= 2; ++k) {
      EXPECT_EQ(m.at(n, k), p[n - k]);
    }
  }
  EXPECT_EQ(m.at(0, 0), cplx(1.0));
  EXPECT_EQ(m.at(1, 0), cplx(0.25, -0.1));
  EXPECT_EQ(m.at(0, 1), cplx(0.25, 0.1));  // conjugate symmetry
}

TEST(Htm, SeriesOfMultipliersIsProductWaveform) {
  // Multiplying by p(t) then q(t) equals multiplying by q(t)p(t); with
  // truncation, interior elements must match the convolved coefficients.
  const HarmonicCoefficients p =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.3}});
  const HarmonicCoefficients q =
      HarmonicCoefficients::real_waveform(2.0, {cplx{0.0, 0.1}});
  const int big = 6;
  const Htm hp = multiplier_htm(p, big, kW0, j);
  const Htm hq = multiplier_htm(q, big, kW0, j);
  const Htm series = hq * hp;
  // Convolution of coefficient sets.
  CVector conv(5, cplx{0.0});  // offsets -2..2
  for (int a = -1; a <= 1; ++a) {
    for (int b = -1; b <= 1; ++b) {
      conv[static_cast<std::size_t>(a + b + 2)] += q[a] * p[b];
    }
  }
  for (int d = -2; d <= 2; ++d) {
    EXPECT_NEAR(std::abs(series.at(d, 0) -
                         conv[static_cast<std::size_t>(d + 2)]),
                0.0, 1e-14)
        << "offset " << d;
  }
}

TEST(Htm, SamplingPfdIsRankOneAllOnes) {
  // eq. 19/20: every entry equals w0/2pi.
  const Htm pfd = sampling_pfd_htm(3, kW0, j);
  const cplx expected{kW0 / (2.0 * std::numbers::pi)};
  for (int n = -3; n <= 3; ++n) {
    for (int m = -3; m <= 3; ++m) {
      EXPECT_EQ(pfd.at(n, m), expected);
    }
  }
}

TEST(Htm, VcoBuilderTimeInvariantReducesToIntegrator) {
  const HarmonicCoefficients dc{cplx{2.0}};
  const cplx s{0.1, 3.0};
  const Htm v = vco_htm(dc, 2, kW0, s);
  for (int n = -2; n <= 2; ++n) {
    const cplx expected = 2.0 / (s + cplx{0.0, n * kW0});
    EXPECT_NEAR(std::abs(v.at(n, n) - expected), 0.0, 1e-14);
    EXPECT_EQ(v.at(n, (n + 1 <= 2) ? n + 1 : n - 1), cplx(0.0));
  }
}

TEST(Htm, VcoBuilderEq25Structure) {
  // H_{n,m} = v_{n-m} / (s + j n w0).
  const HarmonicCoefficients isf =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.2, 0.1}});
  const cplx s{0.0, 1.0};
  const Htm v = vco_htm(isf, 2, kW0, s);
  for (int n = -2; n <= 2; ++n) {
    for (int m = -2; m <= 2; ++m) {
      const cplx expected = isf[n - m] / (s + cplx{0.0, n * kW0});
      EXPECT_NEAR(std::abs(v.at(n, m) - expected), 0.0, 1e-14);
    }
  }
}

TEST(Htm, VcoBuilderRejectsEvaluationOnPole) {
  const HarmonicCoefficients dc{cplx{1.0}};
  EXPECT_THROW(vco_htm(dc, 2, kW0, -j * kW0), std::invalid_argument);
}

TEST(Htm, RankOneClosedFormMatchesDenseSolve) {
  // Random-ish rank-one G = v l^T; compare eq. 34 against LU solve.
  const int k = 3;
  const Htm proto(k, kW0, j);
  CVector v(proto.dim());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = cplx{0.1 * static_cast<double>(i + 1),
                -0.05 * static_cast<double>(i)};
  }
  Htm g(k, kW0, j);
  for (std::size_t r = 0; r < g.dim(); ++r) {
    for (std::size_t c = 0; c < g.dim(); ++c) g.matrix()(r, c) = v[r];
  }
  const Htm closed = closed_loop_rank_one(v, proto);
  const Htm dense = closed_loop_dense(g);
  EXPECT_LT((closed.matrix() - dense.matrix()).max_abs(), 1e-12);
}

TEST(Htm, ApplyStackedVector) {
  Htm h = Htm::identity(1, kW0, j);
  h.at(0, 0) = 2.0;
  const CVector u{cplx{1.0}, cplx{1.0}, cplx{1.0}};
  const CVector y = h.apply(u);
  EXPECT_EQ(y[1], cplx(2.0));
  EXPECT_EQ(y[0], cplx(1.0));
  EXPECT_THROW(h.apply(CVector{cplx{1.0}}), std::invalid_argument);
}

TEST(HarmonicCoefficients, AccessorsAndRealWaveform) {
  const HarmonicCoefficients c =
      HarmonicCoefficients::real_waveform(0.5, {cplx{1.0, 2.0}, cplx{3.0}});
  EXPECT_EQ(c.max_harmonic(), 2);
  EXPECT_EQ(c[0], cplx(0.5));
  EXPECT_EQ(c[1], cplx(1.0, 2.0));
  EXPECT_EQ(c[-1], cplx(1.0, -2.0));
  EXPECT_EQ(c[2], cplx(3.0));
  EXPECT_EQ(c[5], cplx(0.0));
  EXPECT_FALSE(c.is_dc_only());
  EXPECT_TRUE(HarmonicCoefficients(cplx{1.0}).is_dc_only());
  EXPECT_THROW(HarmonicCoefficients(CVector{1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

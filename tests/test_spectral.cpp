// Spectral propagator factory: agreement with the Van Loan/Pade path
// across step-length decades, structured handling of the phase-augmented
// (defective) PLL state matrix, and the fallback + kill-switch contracts
// the transient engine depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <random>
#include <stdexcept>

#include "htmpll/linalg/eig.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/timedomain/loop_filter_sim.hpp"

namespace htmpll {
namespace {

/// Pins the process-wide spectral switch for the duration of a test.
struct ScopedSpectral {
  bool was = spectral::enabled();
  explicit ScopedSpectral(bool on) { spectral::set_enabled(on); }
  ~ScopedSpectral() { spectral::set_enabled(was); }
};

double max_abs_diff(const RMatrix& a, const RMatrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

bool bitwise_equal(const RMatrix& a, const RMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.empty() ||
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

/// Worst absolute propagator-block difference between the factory and
/// the direct Van Loan path, normalized per block by its max magnitude.
double worst_block_error(const PropagatorFactory& f, const RMatrix& a,
                         const RMatrix& b, double h) {
  const StepPropagator s = f.make(h);
  const StepPropagator p = make_propagator(a, b, h);
  double worst = max_abs_diff(s.phi0, p.phi0) /
                 std::max(1.0, p.phi0.max_abs());
  if (!p.gamma1.empty()) {
    worst = std::max(worst, max_abs_diff(s.gamma1, p.gamma1) /
                                std::max(1e-300, p.gamma1.max_abs()));
    worst = std::max(worst, max_abs_diff(s.gamma2, p.gamma2) /
                                std::max(1e-300, p.gamma2.max_abs()));
  }
  return worst;
}

TEST(SpectralPropagator, MatchesPadeAcrossFourDecades) {
  ScopedSpectral pin(true);
  // Well-scaled stable system with one real pole and a complex pair.
  const RMatrix a{{-0.4, 1.0, 0.0},
                  {-1.0, -0.4, 0.2},
                  {0.0, 0.0, -2.0}};
  const RMatrix b{{0.0}, {1.0}, {0.5}};
  PropagatorFactory f(a, b);
  ASSERT_EQ(f.mode(), PropagatorFactory::Mode::kSpectral);
  EXPECT_LT(f.vector_condition(), 100.0);
  for (double h = 1e-3; h <= 10.0 + 1e-9; h *= 10.0) {
    EXPECT_LT(worst_block_error(f, a, b, h), 1e-12) << "h = " << h;
  }
}

TEST(SpectralPropagator, MatchesPadeOnRandomStableSystems) {
  ScopedSpectral pin(true);
  std::mt19937 rng(77u);
  std::uniform_real_distribution<double> entry(-1.0, 1.0);
  int spectral_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    RMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = entry(rng);
      a(i, i) -= 2.0;
    }
    RMatrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i) b(i, 0) = entry(rng);
    PropagatorFactory f(a, b);
    if (!f.is_spectral()) continue;  // rare ill-conditioned draws
    ++spectral_seen;
    for (double h : {1e-2, 1e-1, 1.0, 4.0}) {
      EXPECT_LT(worst_block_error(f, a, b, h), 1e-12)
          << "trial " << trial << " h " << h;
    }
  }
  EXPECT_GT(spectral_seen, 40);
}

TEST(SpectralPropagator, StructuredModeMatchesPadeAcrossFourDecades) {
  ScopedSpectral pin(true);
  // Trailing zero column (integrated last state) on a WELL-SCALED
  // system, so the Pade reference is trustworthy and directly validates
  // the structured theta-row formulas (the h^2 phi2 / h^3 phi3 modal
  // sums) to full precision.
  const RMatrix a{{-0.3, 1.0, 0.0},
                  {-1.0, -0.5, 0.0},
                  {0.7, 0.2, 0.0}};
  const RMatrix b{{0.1}, {1.0}, {0.4}};
  PropagatorFactory f(a, b);
  ASSERT_EQ(f.mode(), PropagatorFactory::Mode::kSpectralAugmented);
  for (double h = 1e-3; h <= 10.0 + 1e-9; h *= 10.0) {
    EXPECT_LT(worst_block_error(f, a, b, h), 1e-12) << "h = " << h;
  }
}

TEST(SpectralPropagator, AugmentedLoopUsesStructuredMode) {
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PropagatorFactory f(aug.a, aug.b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kSpectralAugmented);
  EXPECT_TRUE(f.is_spectral());
  EXPECT_TRUE(f.spectral_requested());
  EXPECT_LT(f.vector_condition(), PropagatorFactory::kDefaultMaxCondition);
}

TEST(SpectralPropagator, AugmentedLoopMatchesExactTriangularEntries) {
  // The typical loop's filter block is triangular, so several propagator
  // entries have closed forms.  The spectral path must hit them to full
  // precision; the Pade reference CANNOT be used here, because the
  // Van Loan matrix has entries ~1e18 and scaling-and-squaring leaves an
  // absolute error floor of ~eps * ||M|| ~ 1e-8 in its O(1) entries.
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  ASSERT_EQ(aug.a(0, 1), 1.0);  // companion structure assumed below
  const double wp = -aug.a(1, 1);
  PropagatorFactory f(aug.a, aug.b);
  ASSERT_TRUE(f.is_spectral());
  for (double h : {1e-12, 1e-11, 1e-10, 1e-9}) {
    const StepPropagator s = f.make(h);
    // x1' = -wp x1 decouples: phi0(1,1) = e^{-wp h} exactly.
    EXPECT_NEAR(s.phi0(1, 1), std::exp(-wp * h), 1e-13 * std::exp(-wp * h))
        << "h = " << h;
    // theta never feeds back: last column is the unit vector e_theta.
    EXPECT_EQ(s.phi0(0, 2), 0.0);
    EXPECT_EQ(s.phi0(1, 2), 0.0);
    EXPECT_EQ(s.phi0(2, 2), 1.0);
  }
}

TEST(SpectralPropagator, AugmentedLoopSatisfiesSemigroupProperty) {
  // Numerics check at the real PLL scale (state-matrix entries ~1e18):
  // one spectral step of length h must equal 64 spectral steps of h/64
  // composed in state space, with the piecewise-linear input sampled at
  // the slice boundaries.  The exact solution satisfies this semigroup
  // identity; a wrong phi coefficient anywhere breaks it at O(h^3)
  // because the defect scales differently with the slice length.
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PropagatorFactory f(aug.a, aug.b);
  ASSERT_TRUE(f.is_spectral());
  const double h = 5e-10;
  const int slices = 64;
  const StepPropagator fine = f.make(h / slices);
  const StepPropagator coarse = f.make(h);
  const double u0 = 1e-3, u1 = -0.5e-3;  // ramping charge-pump current
  RVector x(aug.a.rows(), 0.0);
  x[0] = 1e-9;  // charge on the integrating capacitor
  RVector x_fine = x;
  for (int i = 0; i < slices; ++i) {
    const double ua = u0 + (u1 - u0) * i / slices;
    const double ub = u0 + (u1 - u0) * (i + 1) / slices;
    x_fine = fine.advance(x_fine, RVector{ua}, RVector{ub}, h / slices);
  }
  const RVector x_coarse =
      coarse.advance(x, RVector{u0}, RVector{u1}, h);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double scale = std::max(std::abs(x_fine[i]), 1e-300);
    EXPECT_LT(std::abs(x_coarse[i] - x_fine[i]) / scale, 1e-12)
        << "state " << i;
  }
}

TEST(SpectralPropagator, DefectiveMatrixFallsBackToPadeBitwise) {
  ScopedSpectral pin(true);
  // Jordan block: not diagonalizable, and no trailing zero column to
  // split off (the second column is nonzero).
  const RMatrix a{{0.0, 1.0}, {0.0, 0.0}};
  const RMatrix b{{0.0}, {1.0}};
  PropagatorFactory f(a, b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_TRUE(f.spectral_requested());
  const double h = 0.25;
  const StepPropagator s = f.make(h);
  const StepPropagator p = make_propagator(a, b, h);
  EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
  EXPECT_TRUE(bitwise_equal(s.gamma1, p.gamma1));
  EXPECT_TRUE(bitwise_equal(s.gamma2, p.gamma2));
}

TEST(SpectralPropagator, AllowSpectralFalseForcesPadeBitwise) {
  ScopedSpectral pin(true);
  const RMatrix a{{-1.0, 0.5}, {0.0, -2.0}};
  const RMatrix b{{1.0}, {0.0}};
  PropagatorFactory f(a, b, /*allow_spectral=*/false);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_FALSE(f.spectral_requested());
  for (double h : {1e-3, 0.1, 2.0}) {
    const StepPropagator s = f.make(h);
    const StepPropagator p = make_propagator(a, b, h);
    EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
    EXPECT_TRUE(bitwise_equal(s.gamma1, p.gamma1));
    EXPECT_TRUE(bitwise_equal(s.gamma2, p.gamma2));
  }
}

TEST(SpectralPropagator, GlobalKillSwitchForcesPade) {
  ScopedSpectral pin(false);
  const RMatrix a{{-1.0, 0.5}, {0.0, -2.0}};
  const RMatrix b{{1.0}, {0.0}};
  PropagatorFactory f(a, b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_FALSE(f.spectral_requested());
  const StepPropagator s = f.make(0.5);
  const StepPropagator p = make_propagator(a, b, 0.5);
  EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
}

TEST(SpectralPropagator, AutonomousSystem) {
  ScopedSpectral pin(true);
  const RMatrix a{{-0.5, 1.0}, {-1.0, -0.5}};
  PropagatorFactory f(a, RMatrix{});
  ASSERT_TRUE(f.is_spectral());
  for (double h : {1e-2, 1.0}) {
    const StepPropagator s = f.make(h);
    const StepPropagator p = make_propagator(a, RMatrix{}, h);
    EXPECT_LT(max_abs_diff(s.phi0, p.phi0), 1e-13);
    EXPECT_TRUE(s.gamma1.empty());
    EXPECT_TRUE(s.gamma2.empty());
  }
}

TEST(SpectralPropagator, RejectsBadArguments) {
  ScopedSpectral pin(true);
  EXPECT_THROW(PropagatorFactory(RMatrix(2, 3), RMatrix{}),
               std::invalid_argument);
  EXPECT_THROW(PropagatorFactory(RMatrix(2, 2), RMatrix(3, 1)),
               std::invalid_argument);
  PropagatorFactory f(RMatrix{{-1.0}}, RMatrix{{1.0}});
  EXPECT_THROW(f.make(0.0), std::invalid_argument);
  EXPECT_THROW(f.make(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

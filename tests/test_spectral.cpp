// Spectral propagator factory: agreement with the Van Loan/Pade path
// across step-length decades, structured handling of the phase-augmented
// (defective) PLL state matrix, and the fallback + kill-switch contracts
// the transient engine depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numbers>
#include <random>
#include <stdexcept>

#include "htmpll/linalg/eig.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/timedomain/loop_filter_sim.hpp"

namespace htmpll {
namespace {

/// Pins the process-wide spectral switch for the duration of a test.
struct ScopedSpectral {
  bool was = spectral::enabled();
  explicit ScopedSpectral(bool on) { spectral::set_enabled(on); }
  ~ScopedSpectral() { spectral::set_enabled(was); }
};

double max_abs_diff(const RMatrix& a, const RMatrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

bool bitwise_equal(const RMatrix& a, const RMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.empty() ||
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

/// Worst absolute propagator-block difference between the factory and
/// the direct Van Loan path, normalized per block by its max magnitude.
double worst_block_error(const PropagatorFactory& f, const RMatrix& a,
                         const RMatrix& b, double h) {
  const StepPropagator s = f.make(h);
  const StepPropagator p = make_propagator(a, b, h);
  double worst = max_abs_diff(s.phi0, p.phi0) /
                 std::max(1.0, p.phi0.max_abs());
  if (!p.gamma1.empty()) {
    worst = std::max(worst, max_abs_diff(s.gamma1, p.gamma1) /
                                std::max(1e-300, p.gamma1.max_abs()));
    worst = std::max(worst, max_abs_diff(s.gamma2, p.gamma2) /
                                std::max(1e-300, p.gamma2.max_abs()));
  }
  return worst;
}

TEST(SpectralPropagator, MatchesPadeAcrossFourDecades) {
  ScopedSpectral pin(true);
  // Well-scaled stable system with one real pole and a complex pair.
  const RMatrix a{{-0.4, 1.0, 0.0},
                  {-1.0, -0.4, 0.2},
                  {0.0, 0.0, -2.0}};
  const RMatrix b{{0.0}, {1.0}, {0.5}};
  PropagatorFactory f(a, b);
  ASSERT_EQ(f.mode(), PropagatorFactory::Mode::kSpectral);
  EXPECT_LT(f.vector_condition(), 100.0);
  for (double h = 1e-3; h <= 10.0 + 1e-9; h *= 10.0) {
    EXPECT_LT(worst_block_error(f, a, b, h), 1e-12) << "h = " << h;
  }
}

TEST(SpectralPropagator, MatchesPadeOnRandomStableSystems) {
  ScopedSpectral pin(true);
  std::mt19937 rng(77u);
  std::uniform_real_distribution<double> entry(-1.0, 1.0);
  int spectral_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 4);
    RMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = entry(rng);
      a(i, i) -= 2.0;
    }
    RMatrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i) b(i, 0) = entry(rng);
    PropagatorFactory f(a, b);
    if (!f.is_spectral()) continue;  // rare ill-conditioned draws
    ++spectral_seen;
    for (double h : {1e-2, 1e-1, 1.0, 4.0}) {
      EXPECT_LT(worst_block_error(f, a, b, h), 1e-12)
          << "trial " << trial << " h " << h;
    }
  }
  EXPECT_GT(spectral_seen, 40);
}

TEST(SpectralPropagator, StructuredModeMatchesPadeAcrossFourDecades) {
  ScopedSpectral pin(true);
  // Trailing zero column (integrated last state) on a WELL-SCALED
  // system, so the Pade reference is trustworthy and directly validates
  // the structured theta-row formulas (the h^2 phi2 / h^3 phi3 modal
  // sums) to full precision.
  const RMatrix a{{-0.3, 1.0, 0.0},
                  {-1.0, -0.5, 0.0},
                  {0.7, 0.2, 0.0}};
  const RMatrix b{{0.1}, {1.0}, {0.4}};
  PropagatorFactory f(a, b);
  ASSERT_EQ(f.mode(), PropagatorFactory::Mode::kSpectralAugmented);
  for (double h = 1e-3; h <= 10.0 + 1e-9; h *= 10.0) {
    EXPECT_LT(worst_block_error(f, a, b, h), 1e-12) << "h = " << h;
  }
}

TEST(SpectralPropagator, AugmentedLoopUsesStructuredMode) {
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PropagatorFactory f(aug.a, aug.b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kSpectralAugmented);
  EXPECT_TRUE(f.is_spectral());
  EXPECT_TRUE(f.spectral_requested());
  EXPECT_LT(f.vector_condition(), PropagatorFactory::kDefaultMaxCondition);
}

TEST(SpectralPropagator, AugmentedLoopMatchesExactTriangularEntries) {
  // The typical loop's filter block is triangular, so several propagator
  // entries have closed forms.  The spectral path must hit them to full
  // precision; the Pade reference CANNOT be used here, because the
  // Van Loan matrix has entries ~1e18 and scaling-and-squaring leaves an
  // absolute error floor of ~eps * ||M|| ~ 1e-8 in its O(1) entries.
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  ASSERT_EQ(aug.a(0, 1), 1.0);  // companion structure assumed below
  const double wp = -aug.a(1, 1);
  PropagatorFactory f(aug.a, aug.b);
  ASSERT_TRUE(f.is_spectral());
  for (double h : {1e-12, 1e-11, 1e-10, 1e-9}) {
    const StepPropagator s = f.make(h);
    // x1' = -wp x1 decouples: phi0(1,1) = e^{-wp h} exactly.
    EXPECT_NEAR(s.phi0(1, 1), std::exp(-wp * h), 1e-13 * std::exp(-wp * h))
        << "h = " << h;
    // theta never feeds back: last column is the unit vector e_theta.
    EXPECT_EQ(s.phi0(0, 2), 0.0);
    EXPECT_EQ(s.phi0(1, 2), 0.0);
    EXPECT_EQ(s.phi0(2, 2), 1.0);
  }
}

TEST(SpectralPropagator, AugmentedLoopSatisfiesSemigroupProperty) {
  // Numerics check at the real PLL scale (state-matrix entries ~1e18):
  // one spectral step of length h must equal 64 spectral steps of h/64
  // composed in state space, with the piecewise-linear input sampled at
  // the slice boundaries.  The exact solution satisfies this semigroup
  // identity; a wrong phi coefficient anywhere breaks it at O(h^3)
  // because the defect scales differently with the slice length.
  ScopedSpectral pin(true);
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PropagatorFactory f(aug.a, aug.b);
  ASSERT_TRUE(f.is_spectral());
  const double h = 5e-10;
  const int slices = 64;
  const StepPropagator fine = f.make(h / slices);
  const StepPropagator coarse = f.make(h);
  const double u0 = 1e-3, u1 = -0.5e-3;  // ramping charge-pump current
  RVector x(aug.a.rows(), 0.0);
  x[0] = 1e-9;  // charge on the integrating capacitor
  RVector x_fine = x;
  for (int i = 0; i < slices; ++i) {
    const double ua = u0 + (u1 - u0) * i / slices;
    const double ub = u0 + (u1 - u0) * (i + 1) / slices;
    x_fine = fine.advance(x_fine, RVector{ua}, RVector{ub}, h / slices);
  }
  const RVector x_coarse =
      coarse.advance(x, RVector{u0}, RVector{u1}, h);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double scale = std::max(std::abs(x_fine[i]), 1e-300);
    EXPECT_LT(std::abs(x_coarse[i] - x_fine[i]) / scale, 1e-12)
        << "state " << i;
  }
}

TEST(SpectralPropagator, DefectiveMatrixFallsBackToPadeBitwise) {
  ScopedSpectral pin(true);
  // Jordan block: not diagonalizable, and no trailing zero column to
  // split off (the second column is nonzero).
  const RMatrix a{{0.0, 1.0}, {0.0, 0.0}};
  const RMatrix b{{0.0}, {1.0}};
  PropagatorFactory f(a, b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_TRUE(f.spectral_requested());
  const double h = 0.25;
  const StepPropagator s = f.make(h);
  const StepPropagator p = make_propagator(a, b, h);
  EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
  EXPECT_TRUE(bitwise_equal(s.gamma1, p.gamma1));
  EXPECT_TRUE(bitwise_equal(s.gamma2, p.gamma2));
}

TEST(SpectralPropagator, AllowSpectralFalseForcesPadeBitwise) {
  ScopedSpectral pin(true);
  const RMatrix a{{-1.0, 0.5}, {0.0, -2.0}};
  const RMatrix b{{1.0}, {0.0}};
  PropagatorFactory f(a, b, /*allow_spectral=*/false);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_FALSE(f.spectral_requested());
  for (double h : {1e-3, 0.1, 2.0}) {
    const StepPropagator s = f.make(h);
    const StepPropagator p = make_propagator(a, b, h);
    EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
    EXPECT_TRUE(bitwise_equal(s.gamma1, p.gamma1));
    EXPECT_TRUE(bitwise_equal(s.gamma2, p.gamma2));
  }
}

TEST(SpectralPropagator, GlobalKillSwitchForcesPade) {
  ScopedSpectral pin(false);
  const RMatrix a{{-1.0, 0.5}, {0.0, -2.0}};
  const RMatrix b{{1.0}, {0.0}};
  PropagatorFactory f(a, b);
  EXPECT_EQ(f.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_FALSE(f.spectral_requested());
  const StepPropagator s = f.make(0.5);
  const StepPropagator p = make_propagator(a, b, 0.5);
  EXPECT_TRUE(bitwise_equal(s.phi0, p.phi0));
}

TEST(SpectralPropagator, AutonomousSystem) {
  ScopedSpectral pin(true);
  const RMatrix a{{-0.5, 1.0}, {-1.0, -0.5}};
  PropagatorFactory f(a, RMatrix{});
  ASSERT_TRUE(f.is_spectral());
  for (double h : {1e-2, 1.0}) {
    const StepPropagator s = f.make(h);
    const StepPropagator p = make_propagator(a, RMatrix{}, h);
    EXPECT_LT(max_abs_diff(s.phi0, p.phi0), 1e-13);
    EXPECT_TRUE(s.gamma1.empty());
    EXPECT_TRUE(s.gamma2.empty());
  }
}

TEST(SpectralPropagator, Gamma2FreeBuildMatchesFullBuildBitwise) {
  // The lockstep ensemble's shared store builds propagators with
  // want_gamma2 == false, which routes through phi1/phi2-only
  // evaluations (real-axis Horner, tiny-integrator-pole closed form,
  // Smith-step quotient) and the modal_cexp libm elisions.  Every one
  // of those shortcuts claims bit-identity with the full build's
  // phi_functions/batch_cexp chain; this pins the claim end to end on
  // random systems spanning both branch regimes and the sub/above-4
  // mode widths.
  ScopedSpectral pin(true);
  std::mt19937 rng(1234u);
  std::uniform_real_distribution<double> entry(-1.0, 1.0);
  std::uniform_real_distribution<double> loghd(-3.0, 1.0);
  int spectral_seen = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 5);
    RMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = entry(rng);
      a(i, i) -= 2.0;
    }
    if (trial % 2 == 0) {
      // Half the draws carry the trailing zero column (phase-augmented
      // structure), exercising the specialized scalar-input builder.
      for (std::size_t i = 0; i < n; ++i) a(i, n - 1) = 0.0;
    }
    RMatrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i) b(i, 0) = entry(rng);
    PropagatorFactory f(a, b);
    if (!f.is_spectral()) continue;  // rare ill-conditioned draws
    ++spectral_seen;
    StepPropagator lean;
    for (int k = 0; k < 4; ++k) {
      const double h = std::pow(10.0, loghd(rng));
      const StepPropagator full = f.make(h);
      f.make_into(h, lean, /*want_gamma2=*/false);
      EXPECT_TRUE(bitwise_equal(lean.phi0, full.phi0))
          << "trial " << trial << " h " << h;
      EXPECT_TRUE(bitwise_equal(lean.gamma1, full.gamma1))
          << "trial " << trial << " h " << h;
      EXPECT_TRUE(lean.gamma2.empty());
    }
  }
  EXPECT_GT(spectral_seen, 50);

  // The real PLL loop: near-zero integrator pole (tiny-argument fast
  // paths) at hardware step lengths.
  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PropagatorFactory fpll(aug.a, aug.b);
  ASSERT_EQ(fpll.mode(), PropagatorFactory::Mode::kSpectralAugmented);
  StepPropagator lean;
  std::uniform_real_distribution<double> loghp(-12.0, -8.0);
  for (int k = 0; k < 40; ++k) {
    const double h = std::pow(10.0, loghp(rng));
    const StepPropagator full = fpll.make(h);
    fpll.make_into(h, lean, /*want_gamma2=*/false);
    EXPECT_TRUE(bitwise_equal(lean.phi0, full.phi0)) << "h " << h;
    EXPECT_TRUE(bitwise_equal(lean.gamma1, full.gamma1)) << "h " << h;
  }
}

TEST(SpectralPropagator, LastRowFastPathMatchesFullAdvanceBitwise) {
  // propagate_last_row replaces the O(n^2) build + advance with a modal
  // theta-row contraction; the ensemble record path leans on it being
  // bit-identical to the full chain for every h the samplers request.
  ScopedSpectral pin(true);
  std::mt19937 rng(4321u);
  std::uniform_real_distribution<double> entry(-1.0, 1.0);

  const double w0 = 2.0 * std::numbers::pi * 2e9;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  const RMatrix small_a{{-0.3, 1.0, 0.0},
                        {-1.0, -0.5, 0.0},
                        {0.7, 0.2, 0.0}};
  const RMatrix small_b{{0.1}, {1.0}, {0.4}};
  struct Case {
    PropagatorFactory f;
    double logh_lo, logh_hi, xscale;
  };
  Case cases[] = {{PropagatorFactory(aug.a, aug.b), -12.0, -8.0, 1e-9},
                  {PropagatorFactory(small_a, small_b), -3.0, 1.0, 1.0}};
  for (Case& c : cases) {
    ASSERT_TRUE(c.f.has_last_row_fast_path());
    const std::size_t n = c.f.order();
    RVector x(n), out(n);
    std::uniform_real_distribution<double> logh(c.logh_lo, c.logh_hi);
    for (int k = 0; k < 60; ++k) {
      const double h = std::pow(10.0, logh(rng));
      for (std::size_t i = 0; i < n; ++i) x[i] = entry(rng) * c.xscale;
      const double u = entry(rng) * 1e-3;
      const StepPropagator full = c.f.make(h);
      full.advance_into(x, u, u, h, out);
      const double fast = c.f.propagate_last_row(h, x.data(), u);
      EXPECT_EQ(std::memcmp(&fast, &out[n - 1], sizeof(double)), 0)
          << "h " << h << " fast " << fast << " full " << out[n - 1];
    }
  }
}

TEST(SpectralPropagator, PhiShortcutIdentitiesMatchLibraryOps) {
  // Randomized differential pins for the floating-point identities the
  // phi1/phi2 shortcuts rely on.  Each check replicates the exact flop
  // DAG of the production shortcut and of the library op sequence it
  // replaces, and demands bitwise agreement.
  std::mt19937_64 rng(99u);
  std::uniform_real_distribution<double> expo_tiny(-320.0, -60.01);
  std::uniform_real_distribution<double> expo_series(-59.99, -1.01);
  std::uniform_real_distribution<double> mant(1.0, 2.0);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const auto same = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };

  // exp(x) == 1.0 exactly below 2^-60 (modal_cexp's integrator-pole
  // elision), and the real-axis cexp collapse m*cos(+-0) == m,
  // m*sin(+-0) == m*(+-0).
  for (int i = 0; i < 50000; ++i) {
    const double x = std::copysign(
        std::ldexp(mant(rng),
                   static_cast<int>(std::floor(expo_tiny(rng)))),
        uni(rng));
    ASSERT_LT(std::fabs(x), 0x1p-60);
    EXPECT_EQ(std::exp(x), 1.0);
    const double m = std::exp(uni(rng) * 5.0);
    const double zi = std::copysign(0.0, uni(rng));
    EXPECT_TRUE(same(m * std::cos(zi), m));
    EXPECT_TRUE(same(m * std::sin(zi), m * zi));
  }
  EXPECT_EQ(std::exp(0.0), 1.0);
  EXPECT_EQ(std::exp(-0.0), 1.0);

  // Real-axis series Horner vs the complex-Horner DAG, 2^-60 <= |zr|
  // < 0.5, both signs of zr and of the zero imaginary part.
  double inv_fact[17];
  double fct = 6.0;
  for (int j = 0; j <= 16; ++j) {
    inv_fact[j] = 1.0 / fct;
    fct *= static_cast<double>(j + 4);
  }
  for (int i = 0; i < 200000; ++i) {
    double zr = std::ldexp(mant(rng), static_cast<int>(expo_series(rng)));
    if (zr >= 0.5) continue;
    zr = std::copysign(zr, uni(rng));
    const double zi = std::copysign(0.0, uni(rng));
    // Reference: the exact complex-Horner flop DAG.
    double ar = 0.0, ai = 0.0;
    for (int j = 16; j >= 0; --j) {
      const double tr = ar * zr - ai * zi;
      ai = ar * zi + ai * zr;
      ar = tr + inv_fact[j];
    }
    const double rp2r = (zr * ar - zi * ai) + 0.5;
    const double rp2i = zr * ai + zi * ar;
    const double rp1r = (zr * rp2r - zi * rp2i) + 1.0;
    const double rp1i = zr * rp2i + zi * rp2r;
    // Shortcut: real Horner + closed-form signed zeros.
    double a = 0.0;
    for (int j = 16; j >= 0; --j) a = a * zr + inv_fact[j];
    const double sai = (std::signbit(zi) && std::signbit(zr)) ? -0.0 : 0.0;
    const double sp2r = zr * a + 0.5;
    const double sp2i = zr * sai + zi * a;
    const double sp1r = zr * sp2r + 1.0;
    const double sp1i = zr * sp2i + zi * sp2r;
    EXPECT_TRUE(same(sp1r, rp1r) && same(sp1i, rp1i) &&
                same(sp2r, rp2r) && same(sp2i, rp2i))
        << "zr " << zr << " zi " << (std::signbit(zi) ? "-0" : "+0");
  }

  // Quotient shortcut (Smith step with ratio = 0) vs the library
  // complex division, real z with 0.5 <= |z| <= 50.
  for (int i = 0; i < 200000; ++i) {
    const double zr = std::copysign(0.5 + 49.5 * std::fabs(uni(rng)),
                                    uni(rng));
    const double zi = std::copysign(0.0, uni(rng));
    const cplx z{zr, zi};
    const double m = std::exp(zr);
    const cplx ez{m, m * zi};
    // Reference: library division DAG of the production fallback.
    const cplx rphi1 = (ez - 1.0) / z;
    const cplx rphi2 = (rphi1 - 1.0) / z;
    // Shortcut DAG.
    const double c = zr, d = zi;
    const double ratio = d / c;
    const double a1 = ez.real() - 1.0, b1 = ez.imag();
    const double denom = c + d * ratio;
    const double p1r = (a1 + b1 * ratio) / denom;
    const double p1i = (b1 - a1 * ratio) / denom;
    const double a2 = p1r - 1.0;
    const double p2r = (a2 + p1i * ratio) / denom;
    const double p2i = (p1i - a2 * ratio) / denom;
    EXPECT_TRUE(same(p1r, rphi1.real()) && same(p1i, rphi1.imag()) &&
                same(p2r, rphi2.real()) && same(p2i, rphi2.imag()))
        << "zr " << zr;
  }
}

TEST(SpectralPropagator, RejectsBadArguments) {
  ScopedSpectral pin(true);
  EXPECT_THROW(PropagatorFactory(RMatrix(2, 3), RMatrix{}),
               std::invalid_argument);
  EXPECT_THROW(PropagatorFactory(RMatrix(2, 2), RMatrix(3, 1)),
               std::invalid_argument);
  PropagatorFactory f(RMatrix{{-1.0}}, RMatrix{{1.0}});
  EXPECT_THROW(f.make(0.0), std::invalid_argument);
  EXPECT_THROW(f.make(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

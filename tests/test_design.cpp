#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/design/design.hpp"
#include "htmpll/design/design_sweep.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi * 1e6;

TEST(Design, GammaFromPhaseMarginInvertsAnalyticFormula) {
  for (double pm : {20.0, 45.0, 61.9275, 75.0}) {
    const double g = gamma_for_phase_margin(pm);
    EXPECT_NEAR(typical_loop_lti_phase_margin_deg(g), pm, 1e-9)
        << "pm " << pm;
  }
  EXPECT_THROW(gamma_for_phase_margin(0.0), std::invalid_argument);
  EXPECT_THROW(gamma_for_phase_margin(90.0), std::invalid_argument);
}

TEST(Design, ClassicalMeetsLtiSpec) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.05 * kW0;
  spec.target_pm_deg = 60.0;
  spec.kvco = 2.0;
  spec.ctot = 4.7e-10;
  const DesignResult r = design_classical(spec);
  EXPECT_TRUE(r.meets_spec_lti);
  EXPECT_NEAR(r.margins.lti_crossover / spec.target_w_ug, 1.0, 1e-5);
  EXPECT_NEAR(r.margins.lti_phase_margin_deg, 60.0, 0.01);
  // Physical budget respected.
  EXPECT_NEAR(r.params.filter.total_cap() / spec.ctot, 1.0, 1e-9);
  EXPECT_NEAR(r.params.kvco, 2.0, 1e-12);
  EXPECT_TRUE(r.z_domain_stable);
}

TEST(Design, ClassicalSlowLoopAlsoMeetsEffectiveSpec) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.01 * kW0;
  spec.target_pm_deg = 55.0;
  const DesignResult r = design_classical(spec);
  EXPECT_TRUE(r.meets_spec_effective);
}

TEST(Design, ClassicalFastLoopMissesEffectiveSpec) {
  // This is the paper's warning case: LTI says fine, lambda says no.
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.3 * kW0;
  spec.target_pm_deg = 60.0;
  const DesignResult r = design_classical(spec);
  EXPECT_TRUE(r.meets_spec_lti);
  EXPECT_FALSE(r.meets_spec_effective);
}

TEST(Design, AwareDesignBacksOffBandwidth) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.3 * kW0;
  spec.target_pm_deg = 60.0;
  const DesignResult r = design_time_varying_aware(spec);
  EXPECT_TRUE(r.meets_spec_effective);
  ASSERT_TRUE(r.margins.lti_found);
  EXPECT_LT(r.margins.lti_crossover, spec.target_w_ug);
  // Should not back off absurdly far (1 deg of PM slack is reached
  // around w_UG/w0 ~ 0.01 for this loop family).
  EXPECT_GT(r.margins.lti_crossover, 0.005 * kW0);
}

TEST(Design, AwareDesignKeepsBandwidthWhenSpecAlreadyMet) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.01 * kW0;
  spec.target_pm_deg = 55.0;
  const DesignResult r = design_time_varying_aware(spec);
  EXPECT_NEAR(r.margins.lti_crossover / spec.target_w_ug, 1.0, 1e-5);
  // When the target already meets the effective spec the aware design IS
  // the classical design -- same synthesized components, no backoff.
  const DesignResult c = design_classical(spec);
  EXPECT_EQ(r.params.icp, c.params.icp);
  EXPECT_EQ(r.params.filter.r, c.params.filter.r);
  EXPECT_EQ(r.params.filter.c1, c.params.filter.c1);
  EXPECT_EQ(r.params.filter.c2, c.params.filter.c2);
  EXPECT_EQ(r.margins.eff_phase_margin_deg,
            c.margins.eff_phase_margin_deg);
}

TEST(Design, AwareDesignIterationBudgetBoundsRefinement) {
  // A starved iteration budget must still return a spec-meeting design
  // (the bisection keeps the last passing point), just a conservative
  // one; the default budget recovers strictly more bandwidth.
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.3 * kW0;
  spec.target_pm_deg = 60.0;
  // Tight slack: the first bisection midpoint still misses the spec, so
  // a one-iteration budget is exhausted before any midpoint passes and
  // the result falls back to the conservative bracket bottom.
  spec.pm_slack_deg = 0.03;
  AwareDesignOptions starved;
  starved.max_iterations = 1;
  const DesignResult coarse = design_time_varying_aware(spec, starved);
  EXPECT_TRUE(coarse.meets_spec_effective);
  const DesignResult fine = design_time_varying_aware(spec);
  EXPECT_TRUE(fine.meets_spec_effective);
  ASSERT_TRUE(coarse.margins.lti_found && fine.margins.lti_found);
  EXPECT_LT(coarse.margins.lti_crossover, fine.margins.lti_crossover);
  // Both still back off below the (unsafe) LTI target.
  EXPECT_LT(fine.margins.lti_crossover, spec.target_w_ug);
}

TEST(Design, AwareDesignRejectsUnreachableSpec) {
  // Negative slack demands MORE effective margin than the LTI target --
  // the sampled loop always loses margin, so no bandwidth reduction can
  // ever satisfy it and the 1000x-backoff probe must throw.
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.3 * kW0;
  spec.target_pm_deg = 60.0;
  spec.pm_slack_deg = -5.0;
  EXPECT_THROW(design_time_varying_aware(spec), std::invalid_argument);
}

TEST(Design, SweepProducesMonotoneEffectiveMargins) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.1 * kW0;  // overwritten by the sweep ratios
  spec.target_pm_deg = 60.0;
  const std::vector<double> ratios{0.03, 0.06, 0.1, 0.15, 0.2};
  const auto results = sweep_crossover_ratios(spec, ratios);
  ASSERT_EQ(results.size(), ratios.size());
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].margins.eff_found);
    EXPECT_LT(results[i].margins.eff_phase_margin_deg,
              results[i - 1].margins.eff_phase_margin_deg);
  }
}

TEST(Design, DesignSpaceMapMatchesPointwiseEvaluation) {
  // The pooled (w_ug, gamma) grid must reproduce evaluate_design point
  // by point: same synthesis, same margins, same verdicts -- the pool
  // only distributes work, it never changes values.
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.1 * kW0;
  spec.target_pm_deg = 60.0;
  const std::vector<double> ratios{0.05, 0.12, 0.2};
  const std::vector<double> gammas{3.0, 5.0};
  const DesignSpaceMap map = design_space_map(spec, ratios, gammas);
  ASSERT_EQ(map.points.size(), ratios.size() * gammas.size());
  for (std::size_t g = 0; g < gammas.size(); ++g) {
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      const DesignPoint& pt = map.at(r, g);
      EXPECT_EQ(pt.ratio, ratios[r]);
      EXPECT_EQ(pt.gamma, gammas[g]);
      const DesignResult ref =
          evaluate_design(spec, ratios[r] * kW0, gammas[g]);
      ASSERT_EQ(pt.design.margins.eff_found, ref.margins.eff_found);
      EXPECT_NEAR(pt.design.margins.eff_phase_margin_deg,
                  ref.margins.eff_phase_margin_deg,
                  1e-9 * ref.margins.eff_phase_margin_deg);
      EXPECT_NEAR(pt.design.margins.lti_crossover,
                  ref.margins.lti_crossover,
                  1e-9 * ref.margins.lti_crossover);
      EXPECT_EQ(pt.design.z_domain_stable, ref.z_domain_stable);
      EXPECT_EQ(pt.half_rate_stable, pt.half_rate_lambda > -1.0);
      // Poles included by default, sorted by ascending frequency.
      ASSERT_FALSE(pt.poles.empty());
      for (std::size_t i = 1; i < pt.poles.size(); ++i) {
        EXPECT_LE(pt.poles[i - 1].frequency, pt.poles[i].frequency);
      }
    }
  }
}

TEST(Design, DesignSpaceMapScalarForcedAgreesWithBatched) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.1 * kW0;
  spec.target_pm_deg = 60.0;
  const std::vector<double> ratios{0.1, 0.22};
  DesignSweepOptions scalar;
  scalar.use_eval_plan = false;
  const DesignSpaceMap b = design_space_map(spec, ratios, {4.0});
  const DesignSpaceMap s = design_space_map(spec, ratios, {4.0}, scalar);
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    const DesignPoint& bp = b.at(r, 0);
    const DesignPoint& sp = s.at(r, 0);
    EXPECT_LT(std::abs(bp.design.margins.eff_crossover -
                       sp.design.margins.eff_crossover) /
                  sp.design.margins.eff_crossover,
              1e-9);
    EXPECT_EQ(bp.half_rate_lambda, sp.half_rate_lambda);
    ASSERT_EQ(bp.poles.size(), sp.poles.size());
    for (const ClosedLoopPole& p : sp.poles) {
      double best = 1e300;
      for (const ClosedLoopPole& q : bp.poles) {
        best = std::min(best, std::abs(q.s - p.s) / std::abs(p.s));
      }
      EXPECT_LT(best, 1e-9);
    }
  }
}

TEST(Design, DesignSpaceMapValidatesGrid) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.1 * kW0;
  spec.target_pm_deg = 60.0;
  EXPECT_THROW(design_space_map(spec, {}, {4.0}), std::invalid_argument);
  EXPECT_THROW(design_space_map(spec, {0.1}, {}), std::invalid_argument);
  EXPECT_THROW(design_space_map(spec, {0.6}, {4.0}),
               std::invalid_argument);
}

TEST(Design, JitterModelsAgreeForSlowLoops) {
  // Deep inside the stable range both models compute almost the same
  // integrated jitter (sampling effects vanish as w_UG/w0 -> 0).
  JitterOptimizationSpec spec;
  spec.w0 = kW0;
  spec.s_ref = PowerLawPsd{1e-20, 0.0, 0.0};
  spec.s_vco = PowerLawPsd{0.0, 0.0, 1e-10};
  const double w_ug = 0.005 * kW0;
  const double tv = output_jitter_tv(spec, w_ug);
  const double lti = output_jitter_lti(spec, w_ug);
  EXPECT_NEAR(tv / lti, 1.0, 0.05);
}

TEST(Design, JitterHasInteriorOptimum) {
  // White reference noise vs 1/w^2 VCO noise: too narrow copies VCO
  // noise, too wide copies reference noise (and peaks) -- an interior
  // minimum must exist and the TV model must find it.
  JitterOptimizationSpec spec;
  spec.w0 = kW0;
  const double ref_white = 1e-18;
  // VCO random-walk noise crossing the reference floor at 0.05 w0, so
  // the optimal loop bandwidth sits near there.
  spec.s_ref = PowerLawPsd{ref_white, 0.0, 0.0};
  spec.s_vco = PowerLawPsd{
      0.0, 0.0, ref_white * (0.05 * kW0) * (0.05 * kW0)};
  const JitterOptimizationResult r = optimize_bandwidth_for_jitter(spec);
  EXPECT_GT(r.w_ug_tv, spec.ratio_min * kW0 * 1.5);
  EXPECT_LT(r.w_ug_tv, spec.ratio_max * kW0 / 1.05);
  // The optimum beats its neighbours.
  EXPECT_LT(r.rms_tv, output_jitter_tv(spec, r.w_ug_tv * 1.5));
  EXPECT_LT(r.rms_tv, output_jitter_tv(spec, r.w_ug_tv / 1.5));
  EXPECT_GE(r.penalty, 1.0);
}

TEST(Design, LtiPickCarriesJitterPenaltyForAggressiveNoise) {
  // Noisy VCO pushes the optimum bandwidth up, into the region where
  // LTI analysis underestimates peaking and folding: its pick must be
  // measurably worse than the TV optimum.
  JitterOptimizationSpec spec;
  spec.w0 = kW0;
  const double ref_white = 1e-22;
  // VCO noise crossing the reference floor at 0.5 w0: the LTI model
  // keeps rewarding more bandwidth, the TV model's peaking/folding says
  // stop earlier.
  spec.s_ref = PowerLawPsd{ref_white, 0.0, 0.0};
  spec.s_vco = PowerLawPsd{
      0.0, 0.0, ref_white * (0.5 * kW0) * (0.5 * kW0)};
  const JitterOptimizationResult r = optimize_bandwidth_for_jitter(spec);
  EXPECT_GE(r.penalty, 1.0);
  EXPECT_NE(r.w_ug_lti, r.w_ug_tv);
}

TEST(Design, JitterOptimizerValidatesInput) {
  JitterOptimizationSpec spec;
  spec.w0 = kW0;
  EXPECT_THROW(optimize_bandwidth_for_jitter(spec),
               std::invalid_argument);  // missing PSDs
  spec.s_ref = PowerLawPsd{1e-20, 0.0, 0.0};
  spec.s_vco = PowerLawPsd{0.0, 0.0, 1e-10};
  spec.ratio_min = 0.3;
  spec.ratio_max = 0.2;
  EXPECT_THROW(optimize_bandwidth_for_jitter(spec),
               std::invalid_argument);
}

TEST(Design, RejectsCrossoverBeyondNyquist) {
  DesignSpec spec;
  spec.w0 = kW0;
  spec.target_w_ug = 0.6 * kW0;
  spec.target_pm_deg = 60.0;
  EXPECT_THROW(design_classical(spec), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

#include <random>

#include <gtest/gtest.h>

#include "htmpll/linalg/lu.hpp"

namespace htmpll {
namespace {

TEST(Lu, SolvesKnownRealSystem) {
  const RMatrix a{{2.0, 1.0}, {1.0, 3.0}};
  const RVector b{5.0, 10.0};
  const RVector x = solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const RMatrix a{{4.0, 7.0}, {2.0, 6.0}};
  const RMatrix inv = inverse(a);
  const RMatrix prod = a * inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
  // Requires a row swap: leading zero.
  const RMatrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(RLu(a).determinant(), -1.0, 1e-15);
  const RMatrix b{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(RLu(b).determinant(), 6.0, 1e-15);
}

TEST(Lu, SingularMatrixThrowsDomainError) {
  const RMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(RLu{a}, std::domain_error);
}

TEST(Lu, NonSquareThrows) {
  const RMatrix a(2, 3);
  EXPECT_THROW(RLu{a}, std::invalid_argument);
}

TEST(Lu, ComplexSolveKnownSystem) {
  const cplx j{0.0, 1.0};
  const CMatrix a{{1.0 + j, 0.0}, {0.0, 2.0}};
  const CVector b{2.0 * j, 4.0};
  const CVector x = solve(a, b);
  // (1+j) x = 2j -> x = 2j/(1+j) = 1 + j
  EXPECT_NEAR(std::abs(x[0] - (1.0 + j)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - cplx{2.0}), 0.0, 1e-12);
}

class LuRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomRoundTrip, RealSolveResidualSmall) {
  std::mt19937 rng(42u + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = static_cast<std::size_t>(GetParam());
  RMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j2 = 0; j2 < n; ++j2) a(i, j2) = dist(rng);
    a(i, i) += 2.0;  // keep well conditioned
  }
  RVector x_true(n);
  for (auto& v : x_true) v = dist(rng);
  const RVector b = a * x_true;
  const RVector x = solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST_P(LuRandomRoundTrip, ComplexInverseRoundTrip) {
  std::mt19937 rng(1729u + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = static_cast<std::size_t>(GetParam());
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j2 = 0; j2 < n; ++j2) {
      a(i, j2) = cplx{dist(rng), dist(rng)};
    }
    a(i, i) += cplx{3.0, 0.0};
  }
  const CMatrix prod = a * CLu(a).inverse();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j2 = 0; j2 < n; ++j2) {
      const cplx expected = (i == j2) ? cplx{1.0} : cplx{0.0};
      EXPECT_NEAR(std::abs(prod(i, j2) - expected), 0.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, LuRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 33));

}  // namespace
}  // namespace htmpll

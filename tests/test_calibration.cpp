#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "htmpll/core/calibration.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

/// Synthetic "measurement" from the model itself, optionally noisy.
CVector synth_data(const std::vector<double>& w, double w_ug, double gamma,
                   double noise, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0.0, noise);
  CVector h(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    h[i] = fitted_model_response(w_ug, gamma, kW0, w[i], false);
    h[i] += cplx{g(rng), g(rng)};
  }
  return h;
}

const std::vector<double> kFreqs{0.02 * kW0, 0.06 * kW0, 0.12 * kW0,
                                 0.2 * kW0, 0.3 * kW0, 0.42 * kW0};

TEST(Calibration, RecoversExactParameters) {
  const double w_ug = 0.17 * kW0, gamma = 3.2;
  const CVector h = synth_data(kFreqs, w_ug, gamma, 0.0, 1);
  const LoopFitResult r = fit_typical_loop(kFreqs, h, kW0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.w_ug / w_ug, 1.0, 1e-6);
  EXPECT_NEAR(r.gamma / gamma, 1.0, 1e-5);
  EXPECT_LT(r.rms_residual, 1e-9);
}

TEST(Calibration, RobustToMeasurementNoise) {
  const double w_ug = 0.12 * kW0, gamma = 4.0;
  const CVector h = synth_data(kFreqs, w_ug, gamma, 0.01, 7);
  const LoopFitResult r = fit_typical_loop(kFreqs, h, kW0);
  EXPECT_NEAR(r.w_ug / w_ug, 1.0, 0.05);
  EXPECT_NEAR(r.gamma / gamma, 1.0, 0.25);
  EXPECT_LT(r.rms_residual, 0.05);
}

TEST(Calibration, ConvergesFromPoorInitialGuess) {
  const double w_ug = 0.22 * kW0, gamma = 5.5;
  const CVector h = synth_data(kFreqs, w_ug, gamma, 0.0, 3);
  LoopFitOptions opts;
  opts.initial_w_ug_frac = 0.02;
  opts.initial_gamma = 2.0;
  const LoopFitResult r = fit_typical_loop(kFreqs, h, kW0, opts);
  EXPECT_NEAR(r.w_ug / w_ug, 1.0, 1e-4);
  EXPECT_NEAR(r.gamma / gamma, 1.0, 1e-3);
}

TEST(Calibration, LtiFitIsStructurallyBiasedForFastLoops) {
  // Generate data from the TRUE (time-varying) loop at w_UG/w0 = 0.22,
  // then fit both flavors.  The LTI fit cannot represent the aliasing
  // terms, so its residual stays far above the TV fit's.
  const double w_ug = 0.22 * kW0, gamma = 4.0;
  const CVector h = synth_data(kFreqs, w_ug, gamma, 0.0, 5);
  const LoopFitResult tv = fit_typical_loop(kFreqs, h, kW0);
  LoopFitOptions lti_opts;
  lti_opts.use_lti_model = true;
  const LoopFitResult lti = fit_typical_loop(kFreqs, h, kW0, lti_opts);
  EXPECT_LT(tv.rms_residual, 1e-8);
  EXPECT_GT(lti.rms_residual, 50.0 * std::max(tv.rms_residual, 1e-12));
  // ...and the LTI fit mis-estimates the crossover.
  EXPECT_GT(std::abs(lti.w_ug / w_ug - 1.0), 0.02);
}

TEST(Calibration, WorksOnSimulatorMeasurements) {
  // End to end: "measure" with the behavioral simulator, fit, recover.
  const double ratio = 0.15, gamma = 4.0;
  const PllParameters p = make_typical_loop(ratio * kW0, kW0, gamma);
  std::vector<double> freqs{0.05 * kW0, 0.12 * kW0, 0.25 * kW0};
  CVector h;
  for (double wf : freqs) {
    ProbeOptions opts;
    opts.settle_periods = 300.0;
    opts.measure_periods = 16;
    h.push_back(measure_baseband_transfer(p, wf, opts).value);
  }
  const LoopFitResult r = fit_typical_loop(freqs, h, kW0);
  EXPECT_NEAR(r.w_ug / (ratio * kW0), 1.0, 0.03);
  EXPECT_NEAR(r.gamma / gamma, 1.0, 0.2);
}

TEST(Calibration, ValidatesInput) {
  const CVector h{cplx{1.0}, cplx{0.5}};
  EXPECT_THROW(fit_typical_loop({1.0}, h, kW0), std::invalid_argument);
  EXPECT_THROW(fit_typical_loop({1.0, 5.0}, CVector{cplx{1.0}}, kW0),
               std::invalid_argument);
  EXPECT_THROW(fit_typical_loop({1.0, 0.9 * kW0}, h, kW0),
               std::invalid_argument);  // beyond w0/2
  LoopFitOptions bad;
  bad.initial_gamma = 0.5;
  EXPECT_THROW(fit_typical_loop({1.0, 2.0}, h, kW0, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

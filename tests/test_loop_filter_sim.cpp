#include <cmath>

#include <gtest/gtest.h>

#include "htmpll/timedomain/loop_filter_sim.hpp"

namespace htmpll {
namespace {

StateSpace lowpass(double a) {
  // H = a/(s+a): x' = -a x + a u, y = x.
  StateSpace ss;
  ss.a = RMatrix{{-a}};
  ss.b = RMatrix{{a}};
  ss.c = RMatrix{{1.0}};
  ss.d = 0.0;
  return ss;
}

TEST(Integrator, StepResponseMatchesAnalytic) {
  PiecewiseExactIntegrator sim(lowpass(2.0));
  const double u = 1.0;
  double t = 0.0;
  for (int k = 0; k < 20; ++k) {
    const double h = 0.05 + 0.013 * k;  // deliberately irregular steps
    sim.advance(h, u);
    t += h;
    EXPECT_NEAR(sim.output(u), 1.0 - std::exp(-2.0 * t), 1e-12)
        << "t = " << t;
  }
}

TEST(Integrator, PeekDoesNotCommit) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  const RVector before = sim.state();
  const RVector peeked = sim.peek(0.5, 1.0);
  EXPECT_NE(peeked[0], before[0]);
  EXPECT_EQ(sim.state()[0], before[0]);
  EXPECT_NEAR(sim.peek_output(0.5, 1.0), peeked[0], 1e-15);
}

TEST(Integrator, ZeroStepIsIdentity) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  sim.advance(0.3, 2.0);
  const RVector x = sim.state();
  const RVector y = sim.peek(0.0, 5.0);
  EXPECT_EQ(x[0], y[0]);
}

TEST(Integrator, NegativeStepThrows) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  EXPECT_THROW(sim.peek(-0.1, 0.0), std::invalid_argument);
}

TEST(Integrator, SetStateValidatesDimension) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  EXPECT_THROW(sim.set_state({1.0, 2.0}), std::invalid_argument);
  sim.set_state({3.0});
  EXPECT_DOUBLE_EQ(sim.state()[0], 3.0);
}

TEST(Integrator, SegmentedEqualsSingleStep) {
  // Propagating 10 sub-steps must equal one big step exactly (group
  // property of the exact propagator).
  PiecewiseExactIntegrator a(lowpass(3.0));
  PiecewiseExactIntegrator b(lowpass(3.0));
  const double u = 0.7;
  for (int k = 0; k < 10; ++k) a.advance(0.1, u);
  b.advance(1.0, u);
  EXPECT_NEAR(a.state()[0], b.state()[0], 1e-13);
}

TEST(Integrator, IntegratorPlusPhaseChain) {
  // x1' = u (cap), x2' = k x1 (phase): after holding u = 1 for t,
  // x1 = t, x2 = k t^2 / 2.  A is singular and defective -- the exact
  // propagator must still be exact.
  StateSpace ss;
  ss.a = RMatrix{{0.0, 0.0}, {2.0, 0.0}};
  ss.b = RMatrix{{1.0}, {0.0}};
  ss.c = RMatrix{{0.0, 1.0}};
  ss.d = 0.0;
  PiecewiseExactIntegrator sim(ss);
  sim.advance(3.0, 1.0);
  EXPECT_NEAR(sim.state()[0], 3.0, 1e-12);
  EXPECT_NEAR(sim.state()[1], 2.0 * 9.0 / 2.0, 1e-11);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "htmpll/timedomain/loop_filter_sim.hpp"

namespace htmpll {
namespace {

StateSpace lowpass(double a) {
  // H = a/(s+a): x' = -a x + a u, y = x.
  StateSpace ss;
  ss.a = RMatrix{{-a}};
  ss.b = RMatrix{{a}};
  ss.c = RMatrix{{1.0}};
  ss.d = 0.0;
  return ss;
}

TEST(Integrator, StepResponseMatchesAnalytic) {
  PiecewiseExactIntegrator sim(lowpass(2.0));
  const double u = 1.0;
  double t = 0.0;
  for (int k = 0; k < 20; ++k) {
    const double h = 0.05 + 0.013 * k;  // deliberately irregular steps
    sim.advance(h, u);
    t += h;
    EXPECT_NEAR(sim.output(u), 1.0 - std::exp(-2.0 * t), 1e-12)
        << "t = " << t;
  }
}

TEST(Integrator, PeekDoesNotCommit) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  const RVector before = sim.state();
  const RVector peeked = sim.peek(0.5, 1.0);
  EXPECT_NE(peeked[0], before[0]);
  EXPECT_EQ(sim.state()[0], before[0]);
  EXPECT_NEAR(sim.peek_output(0.5, 1.0), peeked[0], 1e-15);
}

TEST(Integrator, ZeroStepIsIdentity) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  sim.advance(0.3, 2.0);
  const RVector x = sim.state();
  const RVector y = sim.peek(0.0, 5.0);
  EXPECT_EQ(x[0], y[0]);
}

TEST(Integrator, NegativeStepThrows) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  EXPECT_THROW(sim.peek(-0.1, 0.0), std::invalid_argument);
}

TEST(Integrator, SetStateValidatesDimension) {
  PiecewiseExactIntegrator sim(lowpass(1.0));
  EXPECT_THROW(sim.set_state({1.0, 2.0}), std::invalid_argument);
  sim.set_state({3.0});
  EXPECT_DOUBLE_EQ(sim.state()[0], 3.0);
}

TEST(Integrator, SegmentedEqualsSingleStep) {
  // Propagating 10 sub-steps must equal one big step exactly (group
  // property of the exact propagator).
  PiecewiseExactIntegrator a(lowpass(3.0));
  PiecewiseExactIntegrator b(lowpass(3.0));
  const double u = 0.7;
  for (int k = 0; k < 10; ++k) a.advance(0.1, u);
  b.advance(1.0, u);
  EXPECT_NEAR(a.state()[0], b.state()[0], 1e-13);
}

TEST(Integrator, IntegratorPlusPhaseChain) {
  // x1' = u (cap), x2' = k x1 (phase): after holding u = 1 for t,
  // x1 = t, x2 = k t^2 / 2.  A is singular and defective -- the exact
  // propagator must still be exact.
  StateSpace ss;
  ss.a = RMatrix{{0.0, 0.0}, {2.0, 0.0}};
  ss.b = RMatrix{{1.0}, {0.0}};
  ss.c = RMatrix{{0.0, 1.0}};
  ss.d = 0.0;
  PiecewiseExactIntegrator sim(ss);
  sim.advance(3.0, 1.0);
  EXPECT_NEAR(sim.state()[0], 3.0, 1e-12);
  EXPECT_NEAR(sim.state()[1], 2.0 * 9.0 / 2.0, 1e-11);
}

TEST(Integrator, PeekIntoMatchesPeekBitwise) {
  PiecewiseExactIntegrator sim(lowpass(2.0));
  sim.advance(0.17, 0.9);
  RVector out;
  for (double h : {0.0, 1e-6, 0.03, 0.5, 2.0}) {
    const RVector ref = sim.peek(h, 0.4);
    sim.peek_into(h, 0.4, out);
    ASSERT_EQ(ref.size(), out.size());
    EXPECT_EQ(std::memcmp(ref.data(), out.data(),
                          ref.size() * sizeof(double)),
              0)
        << "h = " << h;
  }
}

TEST(Integrator, CacheIndexSurvivesEvictionChurn) {
  // Push 10x the capacity of distinct step lengths through the cache,
  // interleaved with re-lookups of a pinned subset: the open-addressed
  // index must keep serving exact results through the round-robin
  // eviction (backward-shift deletion leaves no tombstones).  Pade is
  // forced so every peek can be compared bit-exactly against a direct
  // make_propagator call.
  PiecewiseExactIntegrator sim(lowpass(1.5), /*cache_capacity=*/8,
                               /*use_spectral=*/false);
  std::mt19937 rng(5u);
  std::uniform_real_distribution<double> step(0.01, 1.0);
  std::vector<double> pinned{0.125, 0.25, 0.5};
  for (int k = 0; k < 80; ++k) {
    const double h = step(rng);
    const double direct =
        make_propagator(sim.system().a, sim.system().b, h)
            .advance(sim.state(), {0.3}, {0.3}, h)[0];
    EXPECT_EQ(sim.peek(h, 0.3)[0], direct);
    for (double hp : pinned) {
      const double want =
          make_propagator(sim.system().a, sim.system().b, hp)
              .advance(sim.state(), {0.3}, {0.3}, hp)[0];
      EXPECT_EQ(sim.peek(hp, 0.3)[0], want);
    }
  }
  const PropagatorCacheStats& st = sim.cache_stats();
  EXPECT_EQ(st.lookups, 80u * 4u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.hits(), 0u);
}

TEST(Integrator, CacheHitRate) {
  PiecewiseExactIntegrator sim(lowpass(1.0), 4);
  EXPECT_DOUBLE_EQ(sim.cache_stats().hit_rate(), 0.0);  // no lookups yet
  sim.peek(0.5, 1.0);  // miss
  EXPECT_DOUBLE_EQ(sim.cache_stats().hit_rate(), 0.0);
  sim.peek(0.5, 1.0);  // hit
  sim.peek(0.5, 2.0);  // hit (key is h only)
  EXPECT_DOUBLE_EQ(sim.cache_stats().hit_rate(), 2.0 / 3.0);
  sim.peek(0.25, 1.0);  // miss
  EXPECT_DOUBLE_EQ(sim.cache_stats().hit_rate(), 0.5);
}

TEST(Integrator, ShrinkingCacheKeepsResultsIdentical) {
  PiecewiseExactIntegrator a(lowpass(2.0), 16);
  PiecewiseExactIntegrator b(lowpass(2.0), 16);
  for (int k = 0; k < 12; ++k) a.advance(0.01 * (k + 1), 1.0);
  for (int k = 0; k < 12; ++k) b.advance(0.01 * (k + 1), 1.0);
  b.set_cache_capacity(1);  // drops all entries, forces rebuilds
  for (int k = 0; k < 12; ++k) {
    a.advance(0.01 * (k + 1), 0.5);
    b.advance(0.01 * (k + 1), 0.5);
  }
  EXPECT_EQ(a.state()[0], b.state()[0]);
}

TEST(Integrator, SpectralOffIsAvailablePerInstance) {
  // use_spectral = false must force the Pade path even while the global
  // switch is on, and both paths must agree on a well-scaled system.
  PiecewiseExactIntegrator on(lowpass(2.0),
                              PiecewiseExactIntegrator::kDefaultCacheCapacity,
                              /*use_spectral=*/true);
  PiecewiseExactIntegrator off(lowpass(2.0),
                               PiecewiseExactIntegrator::kDefaultCacheCapacity,
                               /*use_spectral=*/false);
  EXPECT_FALSE(off.spectral_propagators());
  for (int k = 0; k < 10; ++k) {
    const double h = 0.05 + 0.02 * k;
    on.advance(h, 1.0);
    off.advance(h, 1.0);
  }
  EXPECT_NEAR(on.state()[0], off.state()[0], 1e-13);
}

}  // namespace
}  // namespace htmpll

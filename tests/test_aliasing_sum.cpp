#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/lti/loop_filter.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(StableCoth, MatchesNaiveFormulaAwayFromPoles) {
  for (const cplx z : {cplx{1.0, 0.5}, cplx{-2.0, 1.0}, cplx{0.3, -0.4}}) {
    const cplx naive = std::cosh(z) / std::sinh(z);
    EXPECT_NEAR(std::abs(stable_coth(z) - naive), 0.0, 1e-12);
    const cplx sh = std::sinh(z);
    EXPECT_NEAR(std::abs(stable_csch2(z) - 1.0 / (sh * sh)), 0.0, 1e-12);
  }
}

TEST(StableCoth, LargeArgumentDoesNotOverflow) {
  EXPECT_NEAR(std::abs(stable_coth(cplx{500.0, 3.0}) - cplx{1.0}), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(stable_coth(cplx{-500.0, 3.0}) + cplx{1.0}), 0.0,
              1e-12);
  EXPECT_NEAR(std::abs(stable_csch2(cplx{700.0, 0.0})), 0.0, 1e-12);
}

TEST(StableCoth, SmallArgumentSeries) {
  const cplx z{1e-6, 1e-6};
  // coth z ~ 1/z + z/3.
  EXPECT_NEAR(std::abs(stable_coth(z) - (1.0 / z + z / 3.0)), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(stable_csch2(z) - (1.0 / (z * z) - 1.0 / 3.0)), 0.0,
              1e-6);
}

TEST(HarmonicPoleSum, MatchesBruteForceSimplePole) {
  const double w0 = 7.0;
  const cplx x{1.3, 0.4};
  cplx brute = 1.0 / x;
  for (int m = 1; m <= 200000; ++m) {
    const cplx jm{0.0, m * w0};
    brute += 1.0 / (x + jm) + 1.0 / (x - jm);
  }
  // The brute-force reference itself truncates with a ~1/M tail
  // (~3e-7 here); the closed form is exact.
  EXPECT_NEAR(std::abs(harmonic_pole_sum(x, w0, 1) - brute), 0.0, 1e-6);
}

TEST(HarmonicPoleSum, MatchesBruteForceHigherOrders) {
  const double w0 = 5.0;
  const cplx x{0.8, -1.1};
  for (int k = 2; k <= 4; ++k) {
    cplx brute = std::pow(x, -k);
    for (int m = 1; m <= 20000; ++m) {
      const cplx jm{0.0, m * w0};
      brute += std::pow(x + jm, -static_cast<double>(k)) +
               std::pow(x - jm, -static_cast<double>(k));
    }
    // Tolerance bounded by the brute-force reference's own tail.
    EXPECT_NEAR(std::abs(harmonic_pole_sum(x, w0, k) - brute) /
                    std::abs(brute),
                0.0, 3e-5)
        << "order " << k;
  }
}

TEST(HarmonicPoleSum, DerivativeConsistency) {
  // S_{k+1}(x) = -(1/k) d/dx S_k(x); check with central differences.
  const double w0 = 3.0;
  const cplx x{0.9, 0.7};
  const double h = 1e-6;
  for (int k = 1; k <= 3; ++k) {
    const cplx dk = (harmonic_pole_sum(x + h, w0, k) -
                     harmonic_pole_sum(x - h, w0, k)) /
                    (2.0 * h);
    const cplx expected = -dk / static_cast<double>(k);
    EXPECT_NEAR(std::abs(harmonic_pole_sum(x, w0, k + 1) - expected) /
                    std::abs(expected),
                0.0, 1e-7)
        << "order " << k;
  }
}

TEST(HarmonicPoleSum, RejectsUnsupportedOrder) {
  EXPECT_THROW(harmonic_pole_sum(cplx{1.0}, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(harmonic_pole_sum(cplx{1.0}, 1.0, 5), std::invalid_argument);
}

class AliasingSumFixture : public ::testing::Test {
 protected:
  static constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1
  AliasingSum make_sum(double ratio) const {
    const PllParameters p = make_typical_loop(ratio * kW0, kW0);
    return AliasingSum(p.open_loop_gain(), kW0);
  }
};

TEST_F(AliasingSumFixture, RequiresStrictlyProper) {
  const RationalFunction biproper(Polynomial::from_real({1.0, 1.0}),
                                  Polynomial::from_real({2.0, 1.0}));
  EXPECT_THROW(AliasingSum(biproper, 1.0), std::invalid_argument);
}

TEST_F(AliasingSumFixture, TruncatedConvergesToExact) {
  const AliasingSum sum = make_sum(0.3);
  const cplx s = j * (0.2 * kW0);
  const cplx exact = sum.exact(s);
  double prev_err = 1e300;
  for (int m : {1, 4, 16, 64, 256}) {
    const double err = std::abs(sum.truncated(s, m) - exact);
    EXPECT_LT(err, prev_err * 1.01);
    prev_err = err;
  }
  // Raw symmetric truncation converges like 1/M (A ~ c/s^2 tails).
  EXPECT_LT(prev_err / std::abs(exact), 2e-2);
}

TEST_F(AliasingSumFixture, AdaptiveMatchesExact) {
  const AliasingSum sum = make_sum(0.4);
  for (double f : {0.05, 0.17, 0.31, 0.49}) {
    const cplx s = j * (f * kW0);
    const cplx exact = sum.exact(s);
    const cplx adaptive = sum.adaptive(s);
    EXPECT_NEAR(std::abs(adaptive - exact) / std::abs(exact), 0.0, 1e-6)
        << "f = " << f;
  }
}

TEST_F(AliasingSumFixture, ExactIsPeriodicInJw0) {
  const AliasingSum sum = make_sum(0.25);
  const cplx s = j * (0.13 * kW0);
  const cplx shifted = sum.exact(s + j * kW0);
  EXPECT_NEAR(std::abs(sum.exact(s) - shifted) / std::abs(shifted), 0.0,
              1e-10);
}

TEST_F(AliasingSumFixture, HalfRateValueIsReal) {
  // Symmetric pairing makes lambda(j w0/2) real for real loops.
  const AliasingSum sum = make_sum(0.35);
  const cplx v = sum.exact(j * (0.5 * kW0));
  EXPECT_LT(std::abs(v.imag()), 1e-9 * std::abs(v));
}

TEST_F(AliasingSumFixture, ReducesToAAtLowBandwidthRatio) {
  // When w_UG << w0 the m != 0 terms are negligible near crossover.
  const AliasingSum sum = make_sum(0.001);
  const cplx s = j * (0.001 * kW0);
  const cplx a = sum.transfer()(s);
  EXPECT_NEAR(std::abs(sum.exact(s) - a) / std::abs(a), 0.0, 2e-3);
}

}  // namespace
}  // namespace htmpll

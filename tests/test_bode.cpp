#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/lti/bode.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(Bode, MagnitudeDbAndPhase) {
  EXPECT_NEAR(magnitude_db(cplx{10.0}), 20.0, 1e-12);
  EXPECT_NEAR(magnitude_db(cplx{0.1}), -20.0, 1e-12);
  EXPECT_NEAR(phase_deg(j), 90.0, 1e-12);
  EXPECT_NEAR(phase_deg(cplx{-1.0, 0.0}), 180.0, 1e-12);
}

TEST(Bode, UnwrapRemovesJumps) {
  const double pi = std::numbers::pi;
  // Phase walking downward through -pi should not jump by 2 pi.
  const std::vector<double> raw{-3.0, -3.1, 3.1, 3.0, 2.9};
  const std::vector<double> un = unwrap_phase(raw);
  for (std::size_t i = 1; i < un.size(); ++i) {
    EXPECT_LT(std::abs(un[i] - un[i - 1]), pi);
  }
  EXPECT_NEAR(un[2], 3.1 - 2.0 * pi, 1e-12);
}

TEST(Bode, IntegratorCrossoverAndMargin) {
  // H = 10/s: |H| = 1 at w = 10, phase -90 -> PM = 90 deg.
  const RationalFunction h = RationalFunction::integrator(10.0);
  const FrequencyResponse f = [&h](double w) { return h(w * j); };
  const auto c = find_gain_crossover(f, 0.01, 1e4);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->frequency, 10.0, 1e-6);
  EXPECT_NEAR(c->phase_margin_deg, 90.0, 1e-6);
}

TEST(Bode, DoubleIntegratorWithZeroMargin) {
  // H = (1 + s/1) * 100 / s^2: crossover near 100 (zero at 1 adds +90).
  const RationalFunction h =
      RationalFunction(Polynomial::from_real({1.0, 1.0}),
                       Polynomial::from_real({0.0, 0.0, 1.0})) *
      RationalFunction::constant(100.0);
  const FrequencyResponse f = [&h](double w) { return h(w * j); };
  const auto c = find_gain_crossover(f, 1e-3, 1e5);
  ASSERT_TRUE(c.has_value());
  // At crossover w >> 1 the phase is ~ -180 + 90 = -90 -> PM ~ 90.
  EXPECT_GT(c->phase_margin_deg, 85.0);
  EXPECT_LT(c->phase_margin_deg, 90.5);
}

TEST(Bode, NoCrossoverReturnsNullopt) {
  const FrequencyResponse flat = [](double) { return cplx{0.5}; };
  EXPECT_FALSE(find_gain_crossover(flat, 0.1, 100.0).has_value());
}

TEST(Bode, GainMarginOfThirdOrderLoop) {
  // H(s) = 8 / (s+1)^3: phase hits -180 at w = sqrt(3) where
  // |H| = 8/8 = 1 -> gain margin 0 dB.
  const RationalFunction h = RationalFunction(
      Polynomial::constant(8.0),
      Polynomial::from_roots({cplx{-1.0}, cplx{-1.0}, cplx{-1.0}}));
  const FrequencyResponse f = [&h](double w) { return h(w * j); };
  const auto g = find_gain_margin(f, 0.01, 100.0);
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->frequency, std::sqrt(3.0), 1e-4);
  EXPECT_NEAR(g->gain_margin_db, 0.0, 1e-3);
}

TEST(Bode, SweepShapesLowpass) {
  const RationalFunction h(Polynomial::constant(1.0),
                           Polynomial::from_real({1.0, 1.0}));
  const FrequencyResponse f = [&h](double w) { return h(w * j); };
  const auto pts = bode_sweep(f, 0.01, 100.0, 64);
  ASSERT_EQ(pts.size(), 64u);
  EXPECT_NEAR(pts.front().mag_db, 0.0, 0.01);
  EXPECT_LT(pts.back().mag_db, -39.0);
  EXPECT_NEAR(pts.front().phase_deg, 0.0, 1.0);
  EXPECT_NEAR(pts.back().phase_deg, -90.0, 1.0);
}

TEST(Bode, RejectsBadRange) {
  const FrequencyResponse f = [](double) { return cplx{1.0}; };
  EXPECT_THROW(find_gain_crossover(f, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(find_gain_crossover(f, 10.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

// Tests for the compiled evaluation-plan layer (core/eval_plan) and the
// batch kernels beneath it (linalg/batch_kernels).
//
// The contract under test: with use_eval_plan = true (the default) every
// grid API agrees with its scalar counterpart to <= 1e-12 relative
// error, for randomized loop parameters, random ISF harmonics, both PFD
// shapes, every batched lambda method, and evaluation points pushed
// arbitrarily close to the aliasing poles s = p + j n w0.  The scalar
// paths (use_eval_plan = false) are the oracle.
//
// Built as its own executable so it also runs under
// -DHTMPLL_SANITIZE=thread, covering the per-thread scratch planes and
// the shifted-gain free list under concurrent sweeps.
#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/core/eval_plan.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/simd.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {
namespace {

constexpr double kTol = 1e-12;

double rel_err(cplx got, cplx want) {
  const double scale = std::max(1.0e-300, std::abs(want));
  return std::abs(got - want) / scale;
}

/// Two models over identical parameters: `plan` (default) and `scalar`
/// (forced scalar paths -- the oracle).
struct ModelPair {
  SamplingPllModel plan;
  SamplingPllModel scalar;
};

ModelPair make_pair(const PllParameters& params,
                    const HarmonicCoefficients& isf,
                    SamplingPllOptions opts,
                    const RationalFunction& extra =
                        RationalFunction::constant(1.0)) {
  SamplingPllOptions scalar_opts = opts;
  opts.use_eval_plan = true;
  scalar_opts.use_eval_plan = false;
  return ModelPair{SamplingPllModel(params, isf, opts, extra),
                   SamplingPllModel(params, isf, scalar_opts, extra)};
}

/// Random evaluation points: mostly jw-axis sweep points, plus points
/// off the axis and points a few parts in 1e8..1e12 away from the
/// aliasing poles s = j n w0 (where the factorized exponential must
/// fall back to the scalar operation sequence).
CVector random_points(std::mt19937& rng, double w0, std::size_t n) {
  std::uniform_real_distribution<double> frac(1e-3, 0.49);
  std::uniform_real_distribution<double> sign(-1.0, 1.0);
  std::uniform_int_distribution<int> harmonic(1, 3);
  std::uniform_real_distribution<double> eps_exp(-12.0, -8.0);
  CVector pts;
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0:  // jw-axis
        pts.push_back(cplx{0.0, frac(rng) * w0});
        break;
      case 1:  // off-axis (damped)
        pts.push_back(cplx{sign(rng) * 0.2 * w0, frac(rng) * w0});
        break;
      case 2: {  // near an aliasing pole s = j n w0
        const double eps = std::pow(10.0, eps_exp(rng)) * w0;
        pts.push_back(cplx{eps, harmonic(rng) * w0 + eps});
        break;
      }
      default:  // near the coth-zero band (Im u ~ pi/2 mod pi)
        pts.push_back(cplx{sign(rng) * 0.05 * w0,
                           (harmonic(rng) - 0.5) * w0 + sign(rng) * 1e-9});
        break;
    }
  }
  return pts;
}

class EvalPlanMethods
    : public ::testing::TestWithParam<std::tuple<LambdaMethod, PfdShape>> {
};

TEST_P(EvalPlanMethods, GridsMatchScalarWithinTolerance) {
  const auto [method, shape] = GetParam();
  std::mt19937 rng(20260806u);
  std::uniform_real_distribution<double> ug(0.02, 0.25);

  for (int trial = 0; trial < 4; ++trial) {
    const double w0 = 2.0 * std::numbers::pi * (trial + 1);
    SamplingPllOptions opts;
    opts.lambda_method = method;
    opts.truncation = 10;
    opts.pfd_shape = shape;

    const HarmonicCoefficients isf =
        trial % 2 == 0
            ? HarmonicCoefficients(cplx{1.0})
            : HarmonicCoefficients::real_waveform(
                  1.0, {cplx{0.25, 0.1}, cplx{0.04, -0.07}});
    const ModelPair m =
        make_pair(make_typical_loop(ug(rng) * w0, w0), isf, opts);
    ASSERT_TRUE(m.plan.has_eval_plan());
    ASSERT_FALSE(m.scalar.has_eval_plan());

    const CVector s_grid = random_points(rng, w0, 128);

    const CVector lam = m.plan.lambda_grid(s_grid);
    const CVector h00 = m.plan.baseband_transfer_grid(s_grid);
    const std::vector<int> bands = {-2, 0, 1, 3};
    const std::vector<CVector> cl = m.plan.closed_loop_grid(bands, s_grid);

    for (std::size_t i = 0; i < s_grid.size(); ++i) {
      const cplx s = s_grid[i];
      EXPECT_LE(rel_err(lam[i], m.scalar.lambda(s)), kTol)
          << "lambda at s=" << s << " trial " << trial;
      EXPECT_LE(rel_err(h00[i], m.scalar.baseband_transfer(s)), kTol)
          << "H00 at s=" << s << " trial " << trial;
      for (std::size_t b = 0; b < bands.size(); ++b) {
        EXPECT_LE(rel_err(cl[b][i], m.scalar.closed_loop(bands[b], s)),
                  kTol)
            << "H_{n,0} n=" << bands[b] << " at s=" << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BatchedMethodsAndShapes, EvalPlanMethods,
    ::testing::Combine(::testing::Values(LambdaMethod::kExact,
                                         LambdaMethod::kTruncated),
                       ::testing::Values(PfdShape::kImpulse,
                                         PfdShape::kZeroOrderHold)));

TEST(EvalPlan, AdaptiveMethodFallsBackToScalarBits) {
  // kAdaptive keeps its per-point stopping rule: the plan-enabled model
  // must produce bit-identical results to the scalar-forced model.
  const double w0 = 2.0 * std::numbers::pi;
  SamplingPllOptions opts;
  opts.lambda_method = LambdaMethod::kAdaptive;
  const ModelPair m = make_pair(make_typical_loop(0.12 * w0, w0),
                                HarmonicCoefficients(cplx{1.0}), opts);
  const CVector s_grid = jw_grid(logspace(1e-3 * w0, 0.49 * w0, 64));
  const CVector lam = m.plan.lambda_grid(s_grid);
  for (std::size_t i = 0; i < s_grid.size(); ++i) {
    EXPECT_EQ(lam[i], m.scalar.lambda(s_grid[i]));
  }
}

TEST(EvalPlan, VtildeMatchesScalarWithinTolerance) {
  std::mt19937 rng(7u);
  const double w0 = 2.0 * std::numbers::pi;
  const HarmonicCoefficients isf = HarmonicCoefficients::real_waveform(
      1.0, {cplx{0.2, 0.05}, cplx{-0.03, 0.08}});
  for (PfdShape shape : {PfdShape::kImpulse, PfdShape::kZeroOrderHold}) {
    SamplingPllOptions opts;
    opts.pfd_shape = shape;
    const ModelPair m =
        make_pair(make_typical_loop(0.08 * w0, w0), isf, opts);
    for (const cplx s : random_points(rng, w0, 32)) {
      const int trunc = 8;
      const CVector got = m.plan.vtilde(s, trunc);
      const CVector want = m.scalar.vtilde(s, trunc);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        EXPECT_LE(rel_err(got[j], want[j]), kTol)
            << "V~_" << (static_cast<int>(j) - trunc) << " at s=" << s;
      }
    }
  }
}

TEST(EvalPlan, LambdaDerivativeGridMatchesScalarAnalytic) {
  // The plan's derivative tables (order-bump rule per pole term, ZOH
  // product rule on the prefactor) against the scalar analytic
  // lambda_derivative -- the bench's 1e-12 contract, here over random
  // loops, both shapes, and points pushed near the aliasing poles.
  std::mt19937 rng(20260807u);
  std::uniform_real_distribution<double> ug(0.02, 0.25);
  for (PfdShape shape : {PfdShape::kImpulse, PfdShape::kZeroOrderHold}) {
    for (int trial = 0; trial < 3; ++trial) {
      const double w0 = 2.0 * std::numbers::pi * (trial + 1);
      SamplingPllOptions opts;
      opts.pfd_shape = shape;
      const ModelPair m = make_pair(make_typical_loop(ug(rng) * w0, w0),
                                    HarmonicCoefficients(cplx{1.0}), opts);
      ASSERT_TRUE(m.plan.has_eval_plan());
      const CVector s_grid = random_points(rng, w0, 96);
      const CVector dlam = m.plan.lambda_derivative_grid(s_grid);
      for (std::size_t i = 0; i < s_grid.size(); ++i) {
        EXPECT_LE(rel_err(dlam[i], m.scalar.lambda_derivative(s_grid[i])),
                  kTol)
            << "shape " << static_cast<int>(shape) << " s=" << s_grid[i];
      }
    }
  }
}

TEST(EvalPlan, LambdaDerivativeAgreesWithCentralDifference) {
  // Cross-check of the analytic derivative itself (not the batching):
  // central differences of scalar lambda at well-conditioned jw points.
  const double w0 = 2.0 * std::numbers::pi;
  for (PfdShape shape : {PfdShape::kImpulse, PfdShape::kZeroOrderHold}) {
    SamplingPllOptions opts;
    opts.pfd_shape = shape;
    opts.use_eval_plan = false;
    const SamplingPllModel m(make_typical_loop(0.1 * w0, w0),
                             HarmonicCoefficients(cplx{1.0}), opts);
    const double h = 1e-6 * w0;
    for (double f : {0.03, 0.11, 0.27, 0.42}) {
      const cplx s{0.0, f * w0};
      const cplx fd = (m.lambda(s + h) - m.lambda(s - h)) / (2.0 * h);
      EXPECT_LE(rel_err(m.lambda_derivative(s), fd), 1e-5)
          << "shape " << static_cast<int>(shape) << " f=" << f;
    }
  }
}

TEST(EvalPlan, ExtraLoopDynamicsAndRepeatedPoles) {
  // A parasitic pole pushes the channel transfer to higher relative
  // degree and (with the ZOH 1/s factor) multiplicity-3 poles at the
  // origin -- exercising the S_3/S_4 kernel branches.
  const double w0 = 2.0 * std::numbers::pi;
  const RationalFunction parasitic(
      Polynomial::constant(cplx{1.0}),
      Polynomial(CVector{cplx{1.0}, cplx{1.0 / (0.7 * w0)}}));
  std::mt19937 rng(99u);
  for (LambdaMethod method :
       {LambdaMethod::kExact, LambdaMethod::kTruncated}) {
    SamplingPllOptions opts;
    opts.lambda_method = method;
    opts.truncation = 8;
    opts.pfd_shape = PfdShape::kZeroOrderHold;
    const ModelPair m =
        make_pair(make_typical_loop(0.1 * w0, w0),
                  HarmonicCoefficients(cplx{1.0}), opts, parasitic);
    const CVector s_grid = random_points(rng, w0, 64);
    const CVector lam = m.plan.lambda_grid(s_grid);
    for (std::size_t i = 0; i < s_grid.size(); ++i) {
      EXPECT_LE(rel_err(lam[i], m.scalar.lambda(s_grid[i])), kTol)
          << "method " << static_cast<int>(method) << " s=" << s_grid[i];
    }
  }
}

TEST(EvalPlan, ExplicitMethodOverridesUseThePlanToo) {
  const double w0 = 2.0 * std::numbers::pi;
  SamplingPllOptions opts;
  opts.lambda_method = LambdaMethod::kAdaptive;  // default stays scalar
  const ModelPair m = make_pair(make_typical_loop(0.1 * w0, w0),
                                HarmonicCoefficients(cplx{1.0}), opts);
  const CVector s_grid = jw_grid(logspace(1e-2 * w0, 0.4 * w0, 40));
  const CVector lam =
      m.plan.lambda_grid(s_grid, LambdaMethod::kExact, 0);
  for (std::size_t i = 0; i < s_grid.size(); ++i) {
    EXPECT_LE(rel_err(lam[i],
                      m.scalar.lambda(s_grid[i], LambdaMethod::kExact, 0)),
              kTol);
  }
}

TEST(EvalPlan, CountersRecordBuildsAndGridPoints) {
  obs::enable();
  const auto before = obs::snapshot();
  const double w0 = 2.0 * std::numbers::pi;
  SamplingPllOptions opts;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0),
                               HarmonicCoefficients(cplx{1.0}), opts);
  const CVector s_grid = jw_grid(logspace(1e-3 * w0, 0.45 * w0, 77));
  (void)model.lambda_grid(s_grid);
  const auto after = obs::snapshot();
  obs::disable();
  EXPECT_GE(after.counter_value("core.plan_builds") -
                before.counter_value("core.plan_builds"),
            1u);
  EXPECT_GE(after.counter_value("core.plan_grid_points") -
                before.counter_value("core.plan_grid_points"),
            77u);
}

TEST(EvalPlan, ConcurrentSweepsShareOnePlanSafely) {
  // Several threads sweep the same plan-backed model at once; the
  // per-thread scratch planes must keep them independent (verified
  // bit-exactly here, and for data races under TSan).
  const double w0 = 2.0 * std::numbers::pi;
  const HarmonicCoefficients isf =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.15, 0.02}});
  SamplingPllOptions opts;
  opts.lambda_method = LambdaMethod::kExact;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0), isf, opts);
  // <= one chunk per sweep, so each thread's sweep runs inline on that
  // thread instead of contending for the shared pool.
  const CVector s_grid = jw_grid(logspace(1e-3 * w0, 0.49 * w0, 200));
  const CVector reference = model.lambda_grid(s_grid);

  std::vector<CVector> results(4);
  std::vector<std::thread> threads;
  for (auto& slot : results) {
    threads.emplace_back(
        [&, out = &slot] { *out = model.lambda_grid(s_grid); });
  }
  for (auto& t : threads) t.join();
  for (const CVector& r : results) {
    ASSERT_EQ(r.size(), reference.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_EQ(r[i], reference[i]) << "i=" << i;
    }
  }
}

TEST(EvalPlan, ConcurrentScalarSweepsReuseGainScratchSafely) {
  // The scalar-forced truncated path borrows its shifted-gain tables
  // from a per-thread free list; concurrent sweeps must not share
  // buffers (TSan-visible if they do).
  const double w0 = 2.0 * std::numbers::pi;
  const HarmonicCoefficients isf =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.1, -0.04}});
  SamplingPllOptions opts;
  opts.lambda_method = LambdaMethod::kTruncated;
  opts.truncation = 8;
  opts.use_eval_plan = false;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0), isf, opts);
  const CVector s_grid = jw_grid(logspace(1e-2 * w0, 0.45 * w0, 64));
  const std::vector<int> bands = {-1, 0, 2};
  const std::vector<CVector> reference =
      model.closed_loop_grid(bands, s_grid);

  std::vector<std::vector<CVector>> results(4);
  std::vector<std::thread> threads;
  for (auto& slot : results) {
    threads.emplace_back(
        [&, out = &slot] { *out = model.closed_loop_grid(bands, s_grid); });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), reference.size());
    for (std::size_t b = 0; b < r.size(); ++b) {
      for (std::size_t i = 0; i < r[b].size(); ++i) {
        EXPECT_EQ(r[b][i], reference[b][i]);
      }
    }
  }
}

// ---- batch-kernel unit coverage ---------------------------------------

TEST(BatchKernels, HornerMatchesPolynomialBitwise) {
  // The bitwise contract is a property of the scalar dispatch path; the
  // vector path promises <= 1e-12 relative (covered in
  // test_simd_kernels).  Pin the ISA for the duration of the test.
  const simd::Isa prev = simd::active_isa();
  simd::set_isa(simd::Isa::kScalar);
  std::mt19937 rng(3u);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  const Polynomial p(CVector{cplx{coeff(rng), coeff(rng)},
                             cplx{coeff(rng), coeff(rng)},
                             cplx{coeff(rng), coeff(rng)},
                             cplx{coeff(rng), coeff(rng)}});
  const std::size_t n = 64;
  std::vector<double> s_re(n), s_im(n), out_re(n), out_im(n);
  for (std::size_t i = 0; i < n; ++i) {
    s_re[i] = coeff(rng);
    s_im[i] = coeff(rng);
  }
  batch_horner(p.coefficients().data(), p.coefficients().size(),
               s_re.data(), s_im.data(), n, out_re.data(), out_im.data());
  for (std::size_t i = 0; i < n; ++i) {
    const cplx want = p(cplx{s_re[i], s_im[i]});
    EXPECT_EQ(cplx(out_re[i], out_im[i]), want) << "i=" << i;
  }
  simd::set_isa(prev);
}

TEST(BatchKernels, RationalMatchesScalarWithinTolerance) {
  std::mt19937 rng(4u);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  const Polynomial num(CVector{cplx{1.0, 0.5}, cplx{0.3, -0.2},
                               cplx{coeff(rng), coeff(rng)}});
  const Polynomial den(CVector{cplx{0.7, -0.1}, cplx{coeff(rng)},
                               cplx{1.0}});
  const RationalFunction f(num, den);
  const std::size_t n = 64;
  std::vector<double> s_re(n), s_im(n), out_re(n), out_im(n), t_re(n),
      t_im(n);
  for (std::size_t i = 0; i < n; ++i) {
    s_re[i] = 3.0 * coeff(rng);
    s_im[i] = 3.0 * coeff(rng);
  }
  batch_rational(num.coefficients().data(), num.coefficients().size(),
                 den.coefficients().data(), den.coefficients().size(),
                 s_re.data(), s_im.data(), n, out_re.data(), out_im.data(),
                 t_re.data(), t_im.data());
  for (std::size_t i = 0; i < n; ++i) {
    const cplx want = f(cplx{s_re[i], s_im[i]});
    EXPECT_LE(rel_err(cplx(out_re[i], out_im[i]), want), kTol);
  }
}

TEST(BatchKernels, PoleSumsMatchHarmonicPoleSums) {
  // accumulate_pole_sums vs the scalar closed form, including points
  // driven to within 1e-12 w0 of the aliasing poles of S_k.
  std::mt19937 rng(5u);
  const double w0 = 2.0 * std::numbers::pi;
  const double t = 2.0 * std::numbers::pi / w0;
  const double c = std::numbers::pi / w0;
  std::uniform_real_distribution<double> re(-1.5, 1.5);

  PoleSumTerm term;
  term.pole = cplx{-0.3 * w0, 0.2 * w0};
  term.exp_pole_t = std::exp(term.pole * t);
  term.kmax = 4;
  term.residues[0] = cplx{0.4, -0.2};
  term.residues[1] = cplx{-1.1, 0.6};
  term.residues[2] = cplx{0.2, 0.9};
  term.residues[3] = cplx{-0.05, 0.3};

  const std::size_t n = 96;
  std::vector<double> s_re(n), s_im(n), e_re(n), e_im(n), acc_re(n, 0.0),
      acc_im(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    cplx s;
    if (i % 3 == 2) {
      // within ~1e-12 w0 of the pole's aliased copies
      const int harmonic = static_cast<int>(i % 5) - 2;
      s = term.pole + cplx{1e-12 * w0, harmonic * w0 + 1e-12 * w0};
    } else {
      s = cplx{re(rng) * w0, re(rng) * w0};
    }
    s_re[i] = s.real();
    s_im[i] = s.imag();
    const cplx e = std::exp(-t * s);
    e_re[i] = e.real();
    e_im[i] = e.imag();
  }
  accumulate_pole_sums(term, c, s_re.data(), s_im.data(), e_re.data(),
                       e_im.data(), n, acc_re.data(), acc_im.data());
  for (std::size_t i = 0; i < n; ++i) {
    cplx sums[4];
    harmonic_pole_sums(cplx{s_re[i], s_im[i]} - term.pole, w0, 4, sums);
    cplx want{0.0};
    for (int j = 0; j < 4; ++j) want += term.residues[j] * sums[j];
    EXPECT_LE(rel_err(cplx(acc_re[i], acc_im[i]), want), kTol)
        << "i=" << i << " s=(" << s_re[i] << "," << s_im[i] << ")";
  }
}

TEST(BatchKernels, HarmonicPoleSumsBatchIsBitIdenticalToScalarCalls) {
  std::mt19937 rng(6u);
  const double w0 = 3.0;
  std::uniform_real_distribution<double> re(-2.0, 2.0);
  for (int trial = 0; trial < 200; ++trial) {
    const cplx x{re(rng), re(rng)};
    for (int kmax = 1; kmax <= 4; ++kmax) {
      cplx batch[4];
      harmonic_pole_sums(x, w0, kmax, batch);
      for (int k = 1; k <= kmax; ++k) {
        EXPECT_EQ(batch[k - 1], harmonic_pole_sum(x, w0, k))
            << "x=" << x << " k=" << k << " kmax=" << kmax;
      }
    }
  }
}

TEST(BatchKernels, SplitJoinRoundTrips) {
  const CVector z = {cplx{1.5, -2.0}, cplx{0.0, 3.25}, cplx{-7.0, 0.5}};
  std::vector<double> re(z.size()), im(z.size());
  CVector back(z.size());
  split_planes(z.data(), z.size(), re.data(), im.data());
  join_planes(re.data(), im.data(), z.size(), back.data());
  EXPECT_EQ(back, z);
}

}  // namespace
}  // namespace htmpll

#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/lti/bode.hpp"
#include "htmpll/lti/loop_filter.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(ChargePumpFilter, FrequenciesRoundTrip) {
  const double wz = 1e4, wp = 1e6, ctot = 2e-9;
  const ChargePumpFilter f = ChargePumpFilter::from_frequencies(wz, wp, ctot);
  EXPECT_NEAR(f.zero_freq() / wz, 1.0, 1e-12);
  EXPECT_NEAR(f.pole_freq() / wp, 1.0, 1e-12);
  EXPECT_NEAR(f.total_cap() / ctot, 1.0, 1e-12);
  EXPECT_GT(f.r, 0.0);
  EXPECT_GT(f.c1, 0.0);
  EXPECT_GT(f.c2, 0.0);
}

TEST(ChargePumpFilter, RejectsBadFrequencies) {
  EXPECT_THROW(ChargePumpFilter::from_frequencies(1e6, 1e4, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(ChargePumpFilter::from_frequencies(0.0, 1e4, 1e-9),
               std::invalid_argument);
  EXPECT_THROW(ChargePumpFilter::from_frequencies(1e3, 1e4, -1.0),
               std::invalid_argument);
}

TEST(ChargePumpFilter, ImpedanceAsymptotes) {
  const ChargePumpFilter f = ChargePumpFilter::from_frequencies(1e3, 1e5, 1e-9);
  const RationalFunction z = f.impedance();
  // Low frequency: Z ~ 1/(s Ctot).
  const double wlo = 1e-1;
  EXPECT_NEAR(std::abs(z(wlo * j)) * wlo * f.total_cap(), 1.0, 1e-3);
  // High frequency: Z ~ 1/(s C2).
  const double whi = 1e9;
  EXPECT_NEAR(std::abs(z(whi * j)) * whi * f.c2, 1.0, 1e-3);
  // At the zero the phase recovers toward -45 deg from -90.
  EXPECT_NEAR(phase_deg(z(1e3 * j)), -45.0, 1.5);
}

TEST(TypicalLoop, UnityGainAtRequestedCrossover) {
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  for (double ratio : {0.01, 0.1, 0.3, 0.5}) {
    const PllParameters p = make_typical_loop(ratio * w0, w0);
    const RationalFunction a = p.open_loop_gain();
    EXPECT_NEAR(std::abs(a(ratio * w0 * j)), 1.0, 1e-9)
        << "ratio " << ratio;
  }
}

TEST(TypicalLoop, OpenLoopShapeMatchesFig5) {
  // Three poles (two at DC) and one zero.
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const RationalFunction a = p.open_loop_gain();
  EXPECT_EQ(a.den().degree(), 3u);
  EXPECT_EQ(a.num().degree(), 1u);
  const CVector poles = a.poles();
  int at_dc = 0;
  for (const cplx& x : poles) {
    if (std::abs(x) < 1e-3 * w0) ++at_dc;
  }
  EXPECT_EQ(at_dc, 2);
}

TEST(TypicalLoop, PhaseMarginMatchesAnalyticFormula) {
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  const double w_ug = 0.05 * w0;
  const PllParameters p = make_typical_loop(w_ug, w0);
  const RationalFunction a = p.open_loop_gain();
  const FrequencyResponse f = [&a](double w) { return a(w * j); };
  const auto c = find_gain_crossover(f, w_ug * 1e-3, w_ug * 1e3);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->frequency / w_ug, 1.0, 1e-6);
  EXPECT_NEAR(c->phase_margin_deg, typical_loop_lti_phase_margin_deg(), 1e-6);
}

TEST(TypicalLoop, GammaControlsMargin) {
  EXPECT_NEAR(typical_loop_lti_phase_margin_deg(4.0), 61.9275, 1e-3);
  EXPECT_NEAR(typical_loop_lti_phase_margin_deg(2.0), 36.8699, 1e-3);
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  const PllParameters p = make_typical_loop(0.1 * w0, w0, 2.0);
  const RationalFunction a = p.open_loop_gain();
  const FrequencyResponse f = [&a](double w) { return a(w * j); };
  const auto c = find_gain_crossover(f, w0 * 1e-4, w0 * 10.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->phase_margin_deg, 36.8699, 1e-4);
}

TEST(TypicalLoop, LtiClosedLoopDcGainIsUnity) {
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  const PllParameters p = make_typical_loop(0.1 * w0, w0);
  const RationalFunction cl = p.lti_closed_loop();
  // Type-2 loop: H(0) = 1 exactly.
  EXPECT_NEAR(std::abs(cl(1e-6 * w0 * j)), 1.0, 1e-6);
}

TEST(TypicalLoop, ClosedLoopSurvivesWideDynamicRangeCoefficients) {
  // Regression: at physical frequencies (w0 ~ 1e9 rad/s) polynomial
  // coefficients span > 20 orders of magnitude; relative trimming used
  // to delete the cubic term and flatten the closed-loop peaking.
  const double w0 = 2.0 * std::numbers::pi * 200e6;
  const PllParameters p = make_typical_loop(0.05 * w0, w0);
  const RationalFunction cl = p.lti_closed_loop();
  EXPECT_EQ(cl.den().degree(), 3u);
  // PM ~ 62 deg implies ~1.2x closed-loop peaking near crossover.
  double peak = 0.0;
  for (double x : {0.3, 0.5, 0.8, 1.0, 1.3}) {
    peak = std::max(peak, std::abs(cl(x * 0.05 * w0 * j)));
  }
  EXPECT_GT(peak, 1.1);
  EXPECT_LT(peak, 1.5);
}

TEST(TypicalLoop, PeriodConsistent) {
  const double w0 = 4.0;
  const PllParameters p = make_typical_loop(1.0, w0);
  EXPECT_NEAR(p.period(), 2.0 * std::numbers::pi / w0, 1e-15);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/stability.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;

SamplingPllModel make_model(double ratio) {
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0));
}

TEST(Stability, BatchedCrossoverMatchesScalarSearch) {
  // With a compiled plan both crossover hunts (lambda through the batch
  // kernels, A through the SIMD rational kernel) run grid-first; the
  // scalar find_gain_crossover chains are the oracle.  Agreement must
  // beat the 1e-9-relative bench gate at every sweep ratio.
  for (double ratio : {0.03, 0.1, 0.2, 0.25}) {
    const SamplingPllModel planned = make_model(ratio);
    ASSERT_TRUE(planned.has_eval_plan());
    SamplingPllOptions opts;
    opts.use_eval_plan = false;
    const SamplingPllModel scalar(make_typical_loop(ratio * kW0, kW0),
                                  HarmonicCoefficients(cplx{1.0}), opts);
    const EffectiveMargins b = effective_margins(planned);
    const EffectiveMargins s = effective_margins(scalar);
    ASSERT_EQ(b.lti_found, s.lti_found) << "ratio " << ratio;
    ASSERT_EQ(b.eff_found, s.eff_found) << "ratio " << ratio;
    ASSERT_TRUE(b.lti_found && b.eff_found) << "ratio " << ratio;
    EXPECT_LT(std::abs(b.lti_crossover - s.lti_crossover) / s.lti_crossover,
              1e-9)
        << "ratio " << ratio;
    EXPECT_LT(std::abs(b.eff_crossover - s.eff_crossover) / s.eff_crossover,
              1e-9)
        << "ratio " << ratio;
    EXPECT_LT(std::abs(b.lti_phase_margin_deg - s.lti_phase_margin_deg) /
                  s.lti_phase_margin_deg,
              1e-9)
        << "ratio " << ratio;
    EXPECT_LT(std::abs(b.eff_phase_margin_deg - s.eff_phase_margin_deg) /
                  s.eff_phase_margin_deg,
              1e-9)
        << "ratio " << ratio;
  }
}

TEST(Stability, BatchedCrossoverHandlesUnstableLoop) {
  // Beyond the stability boundary |lambda| never falls through 1 below
  // w0/2: the batched hunt must report "not found" exactly like the
  // scalar search, not fabricate a crossover.
  const SamplingPllModel fast = make_model(0.32);
  SamplingPllOptions opts;
  opts.use_eval_plan = false;
  const SamplingPllModel scalar(make_typical_loop(0.32 * kW0, kW0),
                                HarmonicCoefficients(cplx{1.0}), opts);
  const EffectiveMargins b = effective_margins(fast);
  const EffectiveMargins s = effective_margins(scalar);
  EXPECT_EQ(b.eff_found, s.eff_found);
  EXPECT_EQ(b.lti_found, s.lti_found);
}

TEST(Stability, LtiMarginsMatchTypicalLoopDesign) {
  const SamplingPllModel m = make_model(0.1);
  const EffectiveMargins em = effective_margins(m);
  ASSERT_TRUE(em.lti_found);
  EXPECT_NEAR(em.lti_crossover / (0.1 * kW0), 1.0, 1e-6);
  EXPECT_NEAR(em.lti_phase_margin_deg, typical_loop_lti_phase_margin_deg(),
              1e-4);
}

TEST(Stability, EffectiveMarginDegradesWithRatio) {
  // The paper's Fig. 7 (lower plot): PM of lambda collapses as w_UG/w0
  // grows, while the LTI prediction stays constant.
  // Beyond ~0.28 the sampled loop is outright unstable (|lambda| never
  // crosses 1 below w0/2), so the sweep stays inside the usable range.
  double prev_pm = 180.0;
  for (double ratio : {0.02, 0.05, 0.1, 0.15, 0.2, 0.25}) {
    const EffectiveMargins em = effective_margins(make_model(ratio));
    ASSERT_TRUE(em.eff_found) << "ratio " << ratio;
    EXPECT_LT(em.eff_phase_margin_deg, prev_pm);
    EXPECT_LT(em.eff_phase_margin_deg, em.lti_phase_margin_deg);
    prev_pm = em.eff_phase_margin_deg;
  }
}

TEST(Stability, EffectiveCrossoverShiftsUp) {
  // Fig. 7 (upper plot): w_UG,eff / w_UG grows above 1 with the ratio.
  const EffectiveMargins slow = effective_margins(make_model(0.05));
  const EffectiveMargins fast = effective_margins(make_model(0.25));
  ASSERT_TRUE(slow.eff_found && fast.eff_found);
  const double slow_norm = slow.eff_crossover / slow.lti_crossover;
  const double fast_norm = fast.eff_crossover / fast.lti_crossover;
  EXPECT_NEAR(slow_norm, 1.0, 0.05);
  EXPECT_GT(fast_norm, slow_norm);
  EXPECT_GT(fast_norm, 1.05);
}

TEST(Stability, SlowLoopEffectiveMarginNearLti) {
  const EffectiveMargins em = effective_margins(make_model(0.01));
  ASSERT_TRUE(em.eff_found);
  EXPECT_NEAR(em.eff_phase_margin_deg, em.lti_phase_margin_deg, 2.0);
}

TEST(Stability, ClosedLoopPeakingGrowsWithRatio) {
  // Fig. 6: "peaking at the passband's edge becomes worse".
  const ClosedLoopSummary slow = closed_loop_summary(make_model(0.05));
  const ClosedLoopSummary fast = closed_loop_summary(make_model(0.25));
  EXPECT_GT(fast.peaking_db, slow.peaking_db + 1.0);
  EXPECT_NEAR(slow.ref_level_db, 0.0, 0.1);  // unity DC gain
}

TEST(Stability, BandwidthShiftsRightWithRatio) {
  // Fig. 6: "the effective bandwidth shifts to the right".  (For very
  // fast loops the -3 dB point moves beyond w0/2 entirely, so compare
  // two ratios whose bandwidth is still measurable.)
  const ClosedLoopSummary slow = closed_loop_summary(make_model(0.02));
  const ClosedLoopSummary fast = closed_loop_summary(make_model(0.1));
  ASSERT_TRUE(slow.bw_found);
  ASSERT_TRUE(fast.bw_found);
  // Normalized to the respective w_UG.
  EXPECT_GT(fast.bw_3db / (0.1 * kW0), slow.bw_3db / (0.02 * kW0));
}

TEST(Stability, FastLoopBandwidthEscapesNyquistRange) {
  // At w_UG/w0 = 0.25 the closed-loop response stays above -3 dB all
  // the way to w0/2 -- the extreme form of the bandwidth shift.
  const ClosedLoopSummary fast = closed_loop_summary(make_model(0.25));
  EXPECT_FALSE(fast.bw_found);
}

TEST(Stability, HalfRateLambdaIsRealAndNegative) {
  const SamplingPllModel m = make_model(0.2);
  const double hr = half_rate_lambda(m);
  // For this loop family lambda(j w0/2) sits on the negative real axis.
  EXPECT_LT(hr, 0.0);
  EXPECT_FALSE(predicts_half_rate_instability(m));
}

TEST(Stability, HalfRateInstabilityForExtremeBandwidth) {
  // Push the loop far past the sampling limit; the half-rate criterion
  // must flag it.
  bool flagged = false;
  for (double ratio : {0.3, 0.4, 0.6, 0.8}) {
    if (predicts_half_rate_instability(make_model(ratio))) {
      flagged = true;
      break;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(Stability, SummaryRejectsTinyGrid) {
  EXPECT_THROW(closed_loop_summary(make_model(0.1), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/ztrans/discrete_response.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

TEST(DiscreteResponse, GeometricImpulseResponses) {
  const cplx q{0.6, 0.0};
  // z/(z-q): h_n = q^n.
  const RationalFunction h1(Polynomial::s(),
                            Polynomial(CVector{-q, cplx{1.0}}));
  const CVector r1 = impulse_response_z(h1, 6);
  for (std::size_t n = 0; n < r1.size(); ++n) {
    EXPECT_NEAR(std::abs(r1[n] - std::pow(q, static_cast<double>(n))),
                0.0, 1e-13);
  }
  // 1/(z-q): h_0 = 0, h_n = q^{n-1}.
  const RationalFunction h2(Polynomial::constant(1.0),
                            Polynomial(CVector{-q, cplx{1.0}}));
  const CVector r2 = impulse_response_z(h2, 6);
  EXPECT_EQ(r2[0], cplx(0.0));
  for (std::size_t n = 1; n < r2.size(); ++n) {
    EXPECT_NEAR(
        std::abs(r2[n] - std::pow(q, static_cast<double>(n - 1))), 0.0,
        1e-13);
  }
}

TEST(DiscreteResponse, DoublePoleRamp) {
  // z/(z-1)^2: h_n = n.
  const RationalFunction h(
      Polynomial::s(),
      Polynomial::from_roots({cplx{1.0}, cplx{1.0}}));
  const CVector r = impulse_response_z(h, 8);
  for (std::size_t n = 0; n < r.size(); ++n) {
    EXPECT_NEAR(std::abs(r[n] - cplx{static_cast<double>(n)}), 0.0,
                1e-12);
  }
}

TEST(DiscreteResponse, StepIsRunningSum) {
  const RationalFunction h(Polynomial::s(),
                           Polynomial(CVector{cplx{-0.5}, cplx{1.0}}));
  const CVector imp = impulse_response_z(h, 10);
  const CVector step = step_response_z(h, 10);
  cplx acc{0.0};
  for (std::size_t n = 0; n < 10; ++n) {
    acc += imp[n];
    EXPECT_NEAR(std::abs(step[n] - acc), 0.0, 1e-14);
  }
}

TEST(DiscreteResponse, ImproperRejected) {
  const RationalFunction improper(Polynomial::from_real({0.0, 0.0, 1.0}),
                                  Polynomial::from_real({1.0, 1.0}));
  EXPECT_THROW(impulse_response_z(improper, 4), std::invalid_argument);
}

TEST(DiscreteResponse, ClosedLoopStepSettlesToUnity) {
  // Type-2 loop: the discrete closed loop has unity DC gain.
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
  const CVector step = step_response_z(zm.closed_loop_z(), 200);
  EXPECT_NEAR(std::abs(step.back() - cplx{1.0}), 0.0, 1e-6);
}

TEST(DiscreteResponse, MatchesTransientSimulatorPhaseRecovery) {
  // A VCO phase offset -delta is (by linearity) the mirrored response
  // to a reference phase step delta: theta(nT) = delta * (s_n - 1) with
  // s_n the discrete closed-loop step response.
  const double delta = 1e-3;
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
  const CVector s = step_response_z(zm.closed_loop_z(), 40);

  TransientConfig cfg;
  cfg.sample_interval = 1.0;  // sample exactly at nT
  PllTransientSim sim(p, {}, cfg);
  sim.set_initial_theta(-delta);
  sim.run_periods(40.0);
  const auto& t = sim.sample_times();
  const auto& th = sim.theta_samples();
  ASSERT_GE(t.size(), 30u);

  double worst = 0.0;
  for (std::size_t i = 5; i < 30; ++i) {
    // Sample i corresponds to t = (i+1) T.
    const std::size_t n = static_cast<std::size_t>(
        std::llround(t[i]));
    ASSERT_LT(n, s.size());
    const double predicted = delta * (s[n].real() - 1.0);
    worst = std::max(worst, std::abs(th[i] - predicted));
  }
  EXPECT_LT(worst / delta, 0.03);
}

TEST(DiscreteResponse, StepMetricsBasics) {
  const std::vector<double> y{0.0, 0.6, 1.2, 1.05, 0.99, 1.005, 1.001};
  const StepMetrics m = step_metrics(y, 1.0, 0.02);
  EXPECT_NEAR(m.overshoot, 0.2, 1e-12);
  EXPECT_EQ(m.peak_index, 2u);
  EXPECT_TRUE(m.settled);
  EXPECT_EQ(m.settle_index, 4u);

  const std::vector<double> never{0.0, 2.0, 0.0, 2.0};
  EXPECT_FALSE(step_metrics(never, 1.0, 0.02).settled);

  EXPECT_THROW(step_metrics({}, 1.0, 0.02), std::invalid_argument);
  EXPECT_THROW(step_metrics(y, 0.0, 0.02), std::invalid_argument);
  EXPECT_THROW(step_metrics(y, 1.0, 0.0), std::invalid_argument);
}

TEST(DiscreteResponse, OvershootGrowsWithBandwidthRatio) {
  // The sample-domain face of the Fig. 6/7 story: the discrete step
  // response of the sampled loop rings harder as w_UG/w0 grows.
  double prev = 0.0;
  for (double ratio : {0.05, 0.15, 0.25}) {
    const PllParameters p = make_typical_loop(ratio * kW0, kW0);
    const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
    const CVector s = step_response_z(zm.closed_loop_z(), 400);
    std::vector<double> real_samples;
    real_samples.reserve(s.size());
    for (const cplx& v : s) real_samples.push_back(v.real());
    const StepMetrics m = step_metrics(real_samples, 1.0, 0.02);
    EXPECT_GT(m.overshoot, prev) << "ratio " << ratio;
    prev = m.overshoot;
  }
  EXPECT_GT(prev, 0.4);  // near the boundary: violent ringing
}

}  // namespace
}  // namespace htmpll

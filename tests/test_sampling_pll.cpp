#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

SamplingPllModel make_model(double ratio,
                            LambdaMethod method = LambdaMethod::kExact) {
  SamplingPllOptions opts;
  opts.lambda_method = method;
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0),
                          HarmonicCoefficients(cplx{1.0}), opts);
}

TEST(SamplingPll, LambdaEqualsAliasingSumOfA) {
  // eq. 37 for a time-invariant VCO.
  const SamplingPllModel m = make_model(0.3);
  const AliasingSum ref(m.open_loop_gain(), kW0);
  for (double f : {0.07, 0.21, 0.44}) {
    const cplx s = j * (f * kW0);
    EXPECT_NEAR(std::abs(m.lambda(s) - ref.exact(s)) /
                    std::abs(ref.exact(s)),
                0.0, 1e-10)
        << "f = " << f;
  }
}

TEST(SamplingPll, VtildeElementsAreShiftedA) {
  // eq. 29 with TI VCO: V~_n(s) = A(s + j n w0).
  const SamplingPllModel m = make_model(0.2);
  const RationalFunction& a = m.open_loop_gain();
  const cplx s = j * (0.15 * kW0);
  for (int n = -4; n <= 4; ++n) {
    const cplx expected = a(s + cplx{0.0, n * kW0});
    EXPECT_NEAR(std::abs(m.vtilde_element(n, s) - expected) /
                    std::abs(expected),
                0.0, 1e-10)
        << "n = " << n;
  }
  const CVector v = m.vtilde(s, 3);
  ASSERT_EQ(v.size(), 7u);
  // The batched vector path agrees with pointwise evaluation to the
  // kernel contract (<= 1e-12 relative), not bit for bit.
  EXPECT_NEAR(std::abs(v[3] - m.vtilde_element(0, s)), 0.0,
              1e-12 * std::abs(v[3]));
}

TEST(SamplingPll, ChannelTableIterationMatchesFullHarmonicWalk) {
  // Pins the channels_ inner-loop form: iterating the precomputed
  // non-zero (k, v_k) table must be bit-identical to walking the full
  // harmonic range and re-deriving v_k = kvco * isf_k with a zero test
  // per k -- the formula the inner loops used before the table existed.
  CVector c(5);
  c[0] = cplx{0.1, 0.0};    // k = -2
  c[1] = cplx{0.0, 0.0};    // k = -1: zero harmonic exercises the skip
  c[2] = cplx{1.0, 0.0};    // k = 0
  c[3] = cplx{0.0, 0.0};    // k = +1
  c[4] = cplx{0.1, -0.05};  // k = +2
  const HarmonicCoefficients isf(c);
  const PllParameters p = make_typical_loop(0.08 * kW0, kW0);
  for (PfdShape shape : {PfdShape::kImpulse, PfdShape::kZeroOrderHold}) {
    SamplingPllOptions opts;
    opts.pfd_shape = shape;
    const SamplingPllModel m(p, isf, opts);
    const double t = m.parameters().period();
    const RationalFunction& hlf = m.loop_filter_tf();
    for (int n : {-2, -1, 0, 1, 3}) {
      for (const cplx s : {cplx{0.01 * kW0, 0.2 * kW0},
                           cplx{-0.05 * kW0, 0.37 * kW0}}) {
        cplx acc{0.0};
        for (int k = -isf.max_harmonic(); k <= isf.max_harmonic(); ++k) {
          const cplx v_k = m.parameters().kvco * isf[k];
          if (v_k == cplx{0.0}) continue;
          const cplx sm = s + cplx{0.0, static_cast<double>(n - k) * kW0};
          const cplx shape_factor = shape == PfdShape::kImpulse
                                        ? cplx{1.0}
                                        : 1.0 / (sm * t);
          acc += v_k * (hlf(sm) * shape_factor);
        }
        const cplx prefactor = shape == PfdShape::kImpulse
                                   ? cplx{1.0}
                                   : 1.0 - std::exp(-s * t);
        const cplx sn = s + cplx{0.0, static_cast<double>(n) * kW0};
        const cplx expected =
            prefactor * acc * kW0 / (2.0 * std::numbers::pi) / sn;
        const cplx got = m.vtilde_element(n, s);
        EXPECT_EQ(got.real(), expected.real())
            << "n = " << n << " shape " << static_cast<int>(shape);
        EXPECT_EQ(got.imag(), expected.imag())
            << "n = " << n << " shape " << static_cast<int>(shape);
      }
    }
  }
}

TEST(SamplingPll, BasebandTransferIsEq38) {
  const SamplingPllModel m = make_model(0.35);
  const cplx s = j * (0.2 * kW0);
  const cplx a = m.open_loop_gain()(s);
  const cplx expected = a / (1.0 + m.lambda(s));
  EXPECT_NEAR(std::abs(m.baseband_transfer(s) - expected), 0.0,
              1e-12 * std::abs(expected));
}

TEST(SamplingPll, ErrorTransferComplements) {
  const SamplingPllModel m = make_model(0.25);
  const cplx s = j * (0.1 * kW0);
  EXPECT_NEAR(std::abs(m.baseband_transfer(s) +
                       m.baseband_error_transfer(s) - cplx{1.0}),
              0.0, 1e-12);
}

TEST(SamplingPll, LambdaMethodsAgree) {
  const SamplingPllModel m = make_model(0.3);
  const cplx s = j * (0.18 * kW0);
  const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
  const cplx adaptive = m.lambda(s, LambdaMethod::kAdaptive, 0);
  const cplx truncated = m.lambda(s, LambdaMethod::kTruncated, 4000);
  EXPECT_NEAR(std::abs(adaptive - exact) / std::abs(exact), 0.0, 1e-8);
  // Raw truncation converges like 1/K.
  EXPECT_NEAR(std::abs(truncated - exact) / std::abs(exact), 0.0, 2e-3);
}

TEST(SamplingPll, ApproachesLtiModelForSlowLoop) {
  // The classical approximation is the w_UG/w0 -> 0 limit (paper, after
  // eq. 38).
  const SamplingPllModel m = make_model(0.002);
  for (double f : {0.0005, 0.002, 0.006}) {
    const cplx s = j * (f * kW0);
    const cplx tv = m.baseband_transfer(s);
    const cplx lti = m.lti_baseband_transfer(s);
    EXPECT_NEAR(std::abs(tv - lti) / std::abs(lti), 0.0, 5e-3)
        << "f = " << f;
  }
}

TEST(SamplingPll, DeviatesFromLtiModelForFastLoop) {
  const SamplingPllModel m = make_model(0.25);
  const cplx s = j * (0.35 * kW0);
  const cplx tv = m.baseband_transfer(s);
  const cplx lti = m.lti_baseband_transfer(s);
  EXPECT_GT(std::abs(tv - lti) / std::abs(lti), 0.05);
}

TEST(SamplingPll, OpenLoopHtmIsRankOneColumns) {
  // G = V~ l^T: every column identical (eq. 30).
  const SamplingPllModel m = make_model(0.3);
  const cplx s = j * (0.2 * kW0);
  const Htm g = m.open_loop_htm(s, 4);
  for (int n = -4; n <= 4; ++n) {
    for (int c = -4; c <= 4; ++c) {
      EXPECT_NEAR(std::abs(g.at(n, c) - g.at(n, 0)), 0.0, 1e-14);
    }
  }
}

TEST(SamplingPll, RankOneClosedLoopMatchesDense) {
  // The Sherman-Morrison closed form (eq. 34) against the brute-force
  // (I+G)^{-1} G solve on the same truncated HTM.
  const SamplingPllModel m = make_model(0.4);
  for (double f : {0.1, 0.3}) {
    const cplx s = j * (f * kW0);
    const Htm a = m.closed_loop_htm(s, 6);
    const Htm b = m.closed_loop_htm_dense(s, 6);
    EXPECT_LT((a.matrix() - b.matrix()).max_abs(), 1e-10)
        << "f = " << f;
  }
}

TEST(SamplingPll, ClosedLoopHtmConsistentWithScalarPath) {
  // The (0,0) element of the truncated closed-loop HTM converges to the
  // scalar eq. 38 value as truncation grows.
  const SamplingPllModel m = make_model(0.2);
  const cplx s = j * (0.22 * kW0);
  const cplx scalar = m.baseband_transfer(s);
  double prev = 1e300;
  for (int k : {4, 16, 128}) {
    const Htm cl = m.closed_loop_htm(s, k);
    const double err = std::abs(cl.at(0, 0) - scalar);
    EXPECT_LT(err, prev * 1.05);
    prev = err;
  }
  // Truncated-HTM lambda carries the 1/K aliasing-tail error.
  EXPECT_LT(prev / std::abs(scalar), 3e-2);
}

TEST(SamplingPll, LptvVcoChannelsReduceToTiWhenDcOnly) {
  // A one-harmonic ISF with zero harmonic coefficient must behave as TI.
  const PllParameters p = make_typical_loop(0.3 * kW0, kW0);
  const SamplingPllModel ti(p);
  const SamplingPllModel fake_lptv(
      p, HarmonicCoefficients(CVector{cplx{0.0}, cplx{1.0}, cplx{0.0}}));
  const cplx s = j * (0.2 * kW0);
  EXPECT_NEAR(std::abs(ti.lambda(s) - fake_lptv.lambda(s)), 0.0,
              1e-12 * std::abs(ti.lambda(s)));
}

TEST(SamplingPll, LptvVcoLambdaMatchesHtmTruncation) {
  // With a real ISF harmonic, the scalar channel machinery must agree
  // with summing V~ elements (the HTM row sum) at high truncation.
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const HarmonicCoefficients isf =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.2, 0.05}});
  const SamplingPllModel m(p, isf);
  const cplx s = j * (0.17 * kW0);
  const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
  const cplx truncated = m.lambda(s, LambdaMethod::kTruncated, 3000);
  EXPECT_NEAR(std::abs(truncated - exact) / std::abs(exact), 0.0, 1e-4);
}

TEST(SamplingPll, RejectsBadIsf) {
  const PllParameters p = make_typical_loop(0.3 * kW0, kW0);
  EXPECT_THROW(SamplingPllModel(p, HarmonicCoefficients(cplx{0.0, 1.0})),
               std::invalid_argument);
  EXPECT_THROW(SamplingPllModel(p, HarmonicCoefficients(cplx{0.0})),
               std::invalid_argument);
}

TEST(SamplingPll, VtildeRejectsIntegratorPole) {
  const SamplingPllModel m = make_model(0.3);
  EXPECT_THROW(m.vtilde_element(-1, j * kW0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

// Diagnostic-layer suite: reason-code round trips, concurrent event
// emission (exact tallies under TSan), monotonic health gauges, span
// aggregation (percentiles + self time) on synthetic traces, the
// manifest "health" section, HTMPLL_TRACE_CAP parsing, and the
// bit-identity contract (instrumentation must never change a result).
//
// Compiled into the test_obs binary (tests/CMakeLists.txt) so the whole
// observability layer runs under -DHTMPLL_SANITIZE=thread together.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/report.hpp"
#include "htmpll/obs/span_stats.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/timedomain/loop_filter_sim.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {
namespace {

/// Enables obs for one test and restores the prior state after.
struct ScopedDiagObs {
  bool was_enabled = obs::enabled();
  explicit ScopedDiagObs(bool on) { on ? obs::enable() : obs::disable(); }
  ~ScopedDiagObs() { was_enabled ? obs::enable() : obs::disable(); }
};

std::uint64_t tally_of(obs::DiagReason reason) {
  return obs::diag_snapshot()
      .tally[static_cast<std::size_t>(reason)];
}

TEST(DiagReasons, NamesRoundTripAndAreUnique) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < obs::kDiagReasonCount; ++i) {
    const auto reason = static_cast<obs::DiagReason>(i);
    const char* name = obs::diag_reason_name(reason);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "reason " << i;
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate reason name: " << name;
    obs::DiagReason back = obs::DiagReason::kCount;
    EXPECT_TRUE(obs::diag_reason_from_name(name, back)) << name;
    EXPECT_EQ(back, reason);
  }
  obs::DiagReason out = obs::DiagReason::kCount;
  EXPECT_FALSE(obs::diag_reason_from_name("no.such.reason", out));
  EXPECT_EQ(out, obs::DiagReason::kCount);  // untouched on failure
  EXPECT_STREQ(obs::diag_reason_name(obs::DiagReason::kCount), "unknown");
}

TEST(DiagReasons, GaugeNamesAreUnique) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < obs::kHealthGaugeCount; ++i) {
    const char* name =
        obs::health_gauge_name(static_cast<obs::HealthGauge>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "gauge " << i;
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate gauge name: " << name;
  }
}

TEST(DiagEvents, DisabledEmissionIsANoOp) {
  ScopedDiagObs off(false);
  const std::uint64_t before =
      tally_of(obs::DiagReason::kHtmTruncationSaturated);
  obs::diag_event(obs::DiagReason::kHtmTruncationSaturated, 64.0);
  EXPECT_EQ(tally_of(obs::DiagReason::kHtmTruncationSaturated), before);
}

TEST(DiagEvents, EnabledEmissionRecordsTallyAndPayload) {
  ScopedDiagObs on(true);
  obs::diag_reset();
  obs::diag_event(obs::DiagReason::kPropagatorCacheEviction, 2.5e-9);
  obs::diag_event(obs::DiagReason::kPropagatorCacheEviction, 3.5e-9);
  const obs::DiagSnapshot s = obs::diag_snapshot();
  EXPECT_EQ(
      s.tally[static_cast<std::size_t>(
          obs::DiagReason::kPropagatorCacheEviction)],
      2u);
  EXPECT_EQ(s.total(), 2u);
  EXPECT_EQ(s.dropped, 0u);
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].reason, obs::DiagReason::kPropagatorCacheEviction);
  EXPECT_DOUBLE_EQ(s.events[0].payload, 2.5e-9);
  EXPECT_DOUBLE_EQ(s.events[1].payload, 3.5e-9);
}

TEST(DiagEvents, ConcurrentEmissionKeepsTalliesExact) {
  ScopedDiagObs on(true);
  obs::diag_reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::diag_event(obs::DiagReason::kSimdBailoutGuardTrip,
                        static_cast<double>(t));
        obs::diag_gauge_max(obs::HealthGauge::kMaxEigenbasisCondition,
                            static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::DiagSnapshot s = obs::diag_snapshot();
  // Tallies are exact even though the per-thread rings wrapped.
  EXPECT_EQ(s.tally[static_cast<std::size_t>(
                obs::DiagReason::kSimdBailoutGuardTrip)],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(s.dropped, 0u);  // 10000 events > 1024-slot rings
  EXPECT_EQ(s.dropped, obs::diag_dropped());
  EXPECT_FALSE(s.events.empty());
  EXPECT_DOUBLE_EQ(s.gauge[static_cast<std::size_t>(
                       obs::HealthGauge::kMaxEigenbasisCondition)],
                   static_cast<double>(kPerThread - 1));
  obs::diag_reset();
  EXPECT_EQ(obs::diag_snapshot().total(), 0u);
  EXPECT_EQ(obs::diag_dropped(), 0u);
}

TEST(DiagGauges, MaxIsMonotonicAndIgnoresNan) {
  ScopedDiagObs on(true);
  obs::diag_reset();
  const auto g = obs::HealthGauge::kMaxPlanSpotCheckError;
  obs::diag_gauge_max(g, 1e-13);
  obs::diag_gauge_max(g, 1e-15);  // lower: must not regress
  obs::diag_gauge_max(g, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(
      obs::diag_snapshot().gauge[static_cast<std::size_t>(g)], 1e-13);
  obs::diag_gauge_max(g, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(
      obs::diag_snapshot().gauge[static_cast<std::size_t>(g)]));
}

TEST(DiagGauges, ResetCountersAlsoResetsDiagnostics) {
  ScopedDiagObs on(true);
  obs::diag_event(obs::DiagReason::kHtmTruncationSaturated, 64.0);
  obs::diag_gauge_max(obs::HealthGauge::kMaxEigenpairResidual, 1.0);
  obs::reset_counters();
  const obs::DiagSnapshot s = obs::diag_snapshot();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_DOUBLE_EQ(s.gauge[static_cast<std::size_t>(
                       obs::HealthGauge::kMaxEigenpairResidual)],
                   0.0);
}

TEST(SpanStats, PercentilesUseNearestRank) {
  // 100 synthetic spans named "p" with durations 1..100 ns, laid out
  // disjointly so no self-time subtraction applies.
  std::vector<obs::TraceEventView> events;
  for (std::uint64_t i = 0; i < 100; ++i) {
    events.push_back({"p", i * 1000, i * 1000 + (i + 1), 0});
  }
  const std::vector<obs::SpanAggregate> aggs =
      obs::aggregate_spans(std::move(events));
  ASSERT_EQ(aggs.size(), 1u);
  const obs::SpanAggregate& a = aggs[0];
  EXPECT_EQ(a.name, "p");
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.total_ns, 5050u);
  EXPECT_EQ(a.self_ns, 5050u);
  EXPECT_EQ(a.min_ns, 1u);
  EXPECT_EQ(a.p50_ns, 50u);  // sorted[ceil(0.5*100)-1]
  EXPECT_EQ(a.p95_ns, 95u);  // sorted[ceil(0.95*100)-1]
  EXPECT_EQ(a.max_ns, 100u);
  EXPECT_DOUBLE_EQ(a.mean_ns(), 50.5);
}

TEST(SpanStats, SingleSpanCollapsesAllPercentiles) {
  std::vector<obs::TraceEventView> events{{"solo", 10, 52, 0}};
  const auto aggs = obs::aggregate_spans(std::move(events));
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].min_ns, 42u);
  EXPECT_EQ(aggs[0].p50_ns, 42u);
  EXPECT_EQ(aggs[0].p95_ns, 42u);
  EXPECT_EQ(aggs[0].max_ns, 42u);
}

TEST(SpanStats, SelfTimeSubtractsDirectChildrenOnSameThread) {
  // parent [0, 1000] with children [100, 300] and [400, 500]; the
  // grandchild [150, 250] must subtract from its direct parent (child1)
  // only.  A span on ANOTHER thread overlapping the parent must not
  // subtract.
  std::vector<obs::TraceEventView> events{
      {"parent", 0, 1000, 0},
      {"child", 100, 300, 0},
      {"grandchild", 150, 250, 0},
      {"child", 400, 500, 0},
      {"other_thread", 200, 900, 1},
  };
  const auto aggs = obs::aggregate_spans(std::move(events));
  ASSERT_EQ(aggs.size(), 4u);  // sorted by name
  auto find = [&aggs](const std::string& name) -> const obs::SpanAggregate& {
    for (const auto& a : aggs) {
      if (a.name == name) return a;
    }
    static const obs::SpanAggregate missing{};
    return missing;
  };
  EXPECT_EQ(find("parent").total_ns, 1000u);
  EXPECT_EQ(find("parent").self_ns, 700u);  // minus the two children
  EXPECT_EQ(find("child").total_ns, 300u);
  EXPECT_EQ(find("child").self_ns, 200u);  // minus the grandchild
  EXPECT_EQ(find("grandchild").self_ns, 100u);
  EXPECT_EQ(find("other_thread").self_ns, 700u);
}

TEST(SpanStats, EmptyTraceAggregatesToNothing) {
  EXPECT_TRUE(obs::aggregate_spans(std::vector<obs::TraceEventView>{})
                  .empty());
  const obs::SpanAggregate zero{};
  EXPECT_DOUBLE_EQ(zero.mean_ns(), 0.0);  // zero-count guard
}

TEST(DiagSpectral, DefectiveMatrixEmitsTaggedPadeFallback) {
  ScopedDiagObs on(true);
  const bool spectral_was = spectral::enabled();
  spectral::set_enabled(true);
  obs::diag_reset();
  // Exact 2x2 Jordan block: defective double eigenvalue at 0 with no
  // trailing zero column, so factor_block sees the full matrix.
  RMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 0.0;
  a(1, 1) = 0.0;
  PropagatorFactory factory(a, RMatrix(), true);
  spectral::set_enabled(spectral_was);

  EXPECT_EQ(factory.mode(), PropagatorFactory::Mode::kPade);
  EXPECT_TRUE(factory.spectral_requested());
  const obs::DiagSnapshot s = obs::diag_snapshot();
  EXPECT_EQ(s.tally[static_cast<std::size_t>(
                obs::DiagReason::kPadeFallbackDefective)],
            1u);
  // The event carries the measured kappa(V) of the rejected basis:
  // astronomically large or infinite for an exact Jordan block.
  bool found = false;
  for (const obs::DiagEvent& e : s.events) {
    if (e.reason == obs::DiagReason::kPadeFallbackDefective) {
      found = true;
      EXPECT_TRUE(e.payload > 1e14 || std::isinf(e.payload))
          << "kappa payload: " << e.payload;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiagSpectral, HealthyFactorizationRaisesConditionGauge) {
  ScopedDiagObs on(true);
  const bool spectral_was = spectral::enabled();
  spectral::set_enabled(true);
  obs::diag_reset();
  RMatrix a(2, 2);
  a(0, 0) = -1.0;
  a(0, 1) = 0.5;
  a(1, 0) = 0.0;
  a(1, 1) = -2.0;
  PropagatorFactory factory(a, RMatrix(), true);
  spectral::set_enabled(spectral_was);

  EXPECT_TRUE(factory.is_spectral());
  const obs::DiagSnapshot s = obs::diag_snapshot();
  EXPECT_EQ(s.tally[static_cast<std::size_t>(
                obs::DiagReason::kPadeFallbackDefective)],
            0u);
  const double cond = s.gauge[static_cast<std::size_t>(
      obs::HealthGauge::kMaxEigenbasisCondition)];
  EXPECT_GE(cond, 1.0);
  EXPECT_DOUBLE_EQ(cond, factory.vector_condition());
}

TEST(DiagReport, ManifestCarriesHealthSection) {
  ScopedDiagObs on(true);
  obs::diag_reset();
  obs::diag_event(obs::DiagReason::kPadeFallbackDefective,
                  std::numeric_limits<double>::infinity());
  obs::diag_gauge_max(obs::HealthGauge::kMaxPlanSpotCheckError, 3e-13);
  obs::RunReport report("test_diag_manifest");
  report.capture();
  const std::string json = report.to_json();

  EXPECT_NE(json.find("\"health\""), std::string::npos);
  // Every reason appears (zero or not) so gates can assert on absence.
  for (std::size_t i = 0; i < obs::kDiagReasonCount; ++i) {
    const std::string key =
        std::string("\"") +
        obs::diag_reason_name(static_cast<obs::DiagReason>(i)) + "\":";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"pade_fallback.defective\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"events_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"max_plan_spot_check_error\": 3e-13"),
            std::string::npos);
  // The infinite kappa payload is clamped to a parseable sentinel.
  EXPECT_NE(json.find("\"payload\": 1e308"), std::string::npos);
  EXPECT_EQ(json.find("\"payload\": inf"), std::string::npos);
  EXPECT_NE(json.find("\"sampled_events\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_spans_dropped\""), std::string::npos);
  const obs::DiagSnapshot& d = report.diagnostics();
  EXPECT_EQ(d.total(), 1u);
}

TEST(DiagReport, SpanAggregatesReachTheManifest) {
  ScopedDiagObs on(true);
  obs::clear_trace();
  {
    HTMPLL_TRACE_SPAN("test.diag_outer");
    HTMPLL_TRACE_SPAN("test.diag_inner");
  }
  obs::RunReport report("test_diag_spans");
  report.capture();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"test.diag_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"self_s\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_s\""), std::string::npos);
  bool outer_found = false;
  for (const obs::SpanAggregate& a : report.span_aggregates()) {
    if (a.name == "test.diag_outer") {
      outer_found = true;
      EXPECT_EQ(a.count, 1u);
      EXPECT_LE(a.self_ns, a.total_ns);
    }
  }
  EXPECT_TRUE(outer_found);
  obs::clear_trace();
}

TEST(TraceCap, ParsesClampsAndRejectsGarbage) {
  constexpr std::size_t kFallback = 16384;
  EXPECT_EQ(obs::detail::parse_trace_cap(nullptr, kFallback), kFallback);
  EXPECT_EQ(obs::detail::parse_trace_cap("", kFallback), kFallback);
  EXPECT_EQ(obs::detail::parse_trace_cap("garbage", kFallback), kFallback);
  EXPECT_EQ(obs::detail::parse_trace_cap("0", kFallback), kFallback);
  EXPECT_EQ(obs::detail::parse_trace_cap("-5", kFallback), kFallback);
  EXPECT_EQ(obs::detail::parse_trace_cap("4096", kFallback), 4096u);
  EXPECT_EQ(obs::detail::parse_trace_cap("10", kFallback), 64u);  // floor
  EXPECT_EQ(obs::detail::parse_trace_cap("999999999", kFallback),
            std::size_t{1} << 22);  // ceiling
  EXPECT_GE(obs::trace_capacity(), 64u);
}

TEST(CacheStats, RatiosAreZeroGuarded) {
  PropagatorCacheStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);  // no lookups: no division
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(stats.eviction_rate(), 0.0);
  stats.lookups = 10;
  stats.misses = 2;
  stats.evictions = 1;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.8);
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 0.2);
  EXPECT_DOUBLE_EQ(stats.eviction_rate(), 0.1);
  EXPECT_EQ(stats.hits(), 8u);
}

TEST(DiagIdentity, InstrumentationDoesNotChangeGridResults) {
  const double w0 = 2.0 * std::numbers::pi;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0));
  const CVector s = jw_grid(logspace(1e-3 * w0, 0.49 * w0, 64));

  CVector off_result;
  {
    ScopedDiagObs off(false);
    off_result = model.baseband_transfer_grid(s);
  }
  CVector on_result;
  {
    ScopedDiagObs on(true);
    on_result = model.baseband_transfer_grid(s);
  }
  ASSERT_EQ(off_result.size(), on_result.size());
  EXPECT_EQ(std::memcmp(off_result.data(), on_result.data(),
                        off_result.size() * sizeof(cplx)),
            0);
}

}  // namespace
}  // namespace htmpll

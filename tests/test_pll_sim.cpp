#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1 second

PllParameters loop(double ratio) { return make_typical_loop(ratio * kW0, kW0); }

TEST(PllSim, PerfectLockStaysQuiescent) {
  // Started exactly locked with no modulation: theta must remain ~0 and
  // no charge-pump pulses of finite width may appear.
  PllTransientSim sim(loop(0.2));
  sim.run_periods(50.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-9);
  EXPECT_NEAR(sim.control_output(), 0.0, 1e-9);
  EXPECT_LT(sim.max_recent_pulse_width(), 1e-9);
  EXPECT_GE(sim.event_count(), 99u);  // ~2 edges per period
}

TEST(PllSim, InitialPhaseOffsetIsPulledIn) {
  PllTransientSim sim(loop(0.2));
  sim.set_initial_theta(0.02);  // 2% of a period
  sim.run_periods(200.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-4);
  EXPECT_TRUE(sim.is_locked(1e-5));
}

TEST(PllSim, FrequencyOffsetIsAcquired) {
  PllTransientSim sim(loop(0.1));
  sim.set_initial_frequency_offset(0.02);  // 2% fast
  sim.run_periods(400.0);
  EXPECT_TRUE(sim.is_locked(1e-4));
  EXPECT_NEAR(sim.theta() - std::round(sim.theta()), 0.0, 1e-3);
}

TEST(PllSim, ModulationProducesBoundedResponse) {
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.1 * kW0;
  PllTransientSim sim(loop(0.2), mod);
  sim.run_periods(300.0);
  // Well inside the loop bandwidth the VCO tracks the reference: theta
  // excursions stay within a few times the modulation amplitude.
  double max_theta = 0.0;
  for (double th : sim.theta_samples()) {
    max_theta = std::max(max_theta, std::abs(th));
  }
  EXPECT_GT(max_theta, 1e-4);  // it does respond...
  EXPECT_LT(max_theta, 5e-3);  // ...but does not blow up
}

TEST(PllSim, SamplesAreUniformAndAligned) {
  TransientConfig cfg;
  cfg.sample_interval = 0.25;
  PllTransientSim sim(loop(0.2), {}, cfg);
  sim.run_until(10.0);
  const auto& t = sim.sample_times();
  ASSERT_GT(t.size(), 30u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(t[i], 0.25 * static_cast<double>(i + 1), 1e-12);
  }
}

TEST(PllSim, RecordingCanBeToggled) {
  PllTransientSim sim(loop(0.2));
  sim.set_recording(false);
  sim.run_periods(10.0);
  EXPECT_TRUE(sim.sample_times().empty());
  sim.set_recording(true);
  sim.run_periods(10.0);
  EXPECT_FALSE(sim.sample_times().empty());
  sim.clear_samples();
  EXPECT_TRUE(sim.sample_times().empty());
}

TEST(PllSim, InitialConditionsRejectedAfterStart) {
  PllTransientSim sim(loop(0.2));
  sim.run_periods(1.0);
  EXPECT_THROW(sim.set_initial_theta(0.01), std::invalid_argument);
  EXPECT_THROW(sim.set_initial_frequency_offset(0.01),
               std::invalid_argument);
}

TEST(PllSim, OversizedModulationRejected) {
  ReferenceModulation mod;
  mod.amplitude = 0.5;  // half a period: not small-signal
  mod.omega = 1.0;
  EXPECT_THROW(PllTransientSim(loop(0.2), mod), std::invalid_argument);
}

TEST(PllSim, ReferenceModulationValueAndSlope) {
  ReferenceModulation mod;
  mod.amplitude = 2e-3;
  mod.omega = 3.0;
  mod.phase = 0.4;
  const double t = 1.7;
  EXPECT_NEAR(mod.value(t), 2e-3 * std::sin(3.0 * t + 0.4), 1e-15);
  EXPECT_NEAR(mod.slope(t), 2e-3 * 3.0 * std::cos(3.0 * t + 0.4), 1e-15);
  const ReferenceModulation off{};
  EXPECT_EQ(off.value(5.0), 0.0);
  EXPECT_EQ(off.slope(5.0), 0.0);
}

TEST(PllSim, RunUntilIsIncremental) {
  PllTransientSim a(loop(0.3));
  PllTransientSim b(loop(0.3));
  a.set_initial_theta(0.01);
  b.set_initial_theta(0.01);
  a.run_periods(40.0);
  for (int k = 0; k < 40; ++k) b.run_periods(1.0);
  EXPECT_NEAR(a.theta(), b.theta(), 1e-12);
  EXPECT_EQ(a.event_count(), b.event_count());
}

}  // namespace
}  // namespace htmpll

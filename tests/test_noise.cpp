#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/noise/noise.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;
const cplx j{0.0, 1.0};

SamplingPllModel make_model(double ratio) {
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0));
}

TEST(PowerLawPsd, Shapes) {
  const PowerLawPsd psd{1e-12, 1e-9, 1e-6};
  EXPECT_NEAR(psd(1.0), 1e-12 + 1e-9 + 1e-6, 1e-18);
  EXPECT_NEAR(psd(1e3), 1e-12 + 1e-12 + 1e-12, 1e-20);
  EXPECT_NEAR(psd(-1e3), psd(1e3), 0.0);  // even in w
  EXPECT_THROW(psd(0.0), std::invalid_argument);
}

TEST(Noise, ReferenceTransferIsLowpass) {
  const SamplingPllModel m = make_model(0.1);
  const NoiseAnalysis na(m);
  // In-band: reference noise passes (|H00| ~ 1).
  EXPECT_NEAR(std::abs(na.reference_transfer(0.001 * kW0)), 1.0, 0.02);
  // Far out of band (near w0/2): strongly attenuated relative to DC.
  EXPECT_LT(std::abs(na.reference_transfer(0.49 * kW0)), 0.5);
}

TEST(Noise, VcoTransferIsHighpass) {
  const SamplingPllModel m = make_model(0.1);
  const NoiseAnalysis na(m);
  // In-band: VCO noise suppressed by the loop.
  EXPECT_LT(std::abs(na.vco_transfer(0, 0.001 * kW0)), 0.05);
  // Out of band: VCO noise passes.
  EXPECT_NEAR(std::abs(na.vco_transfer(0, 0.49 * kW0)), 1.0, 0.5);
}

TEST(Noise, TransfersComplementAtBaseband) {
  // T_ref + T_vco(m=0) = 1 by construction.
  const SamplingPllModel m = make_model(0.25);
  const NoiseAnalysis na(m);
  const double w = 0.123 * kW0;
  EXPECT_NEAR(std::abs(na.reference_transfer(w) + na.vco_transfer(0, w) -
                       cplx{1.0}),
              0.0, 1e-12);
}

TEST(Noise, SidebandVcoTransfersShareMagnitude) {
  // For m != 0 the rank-one structure gives identical transfer -H00.
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m);
  const double w = 0.2 * kW0;
  const cplx t1 = na.vco_transfer(1, w);
  const cplx t5 = na.vco_transfer(-5, w);
  EXPECT_NEAR(std::abs(t1 - t5), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(t1 + m.baseband_transfer(j * w)), 0.0, 1e-14);
}

TEST(Noise, FoldedVcoPsdExceedsUnfoldedTerm) {
  const SamplingPllModel m = make_model(0.25);
  const NoiseAnalysis na(m, 12);
  const PowerLawPsd psd{0.0, 0.0, 1e-6};  // 1/w^2 (white FM)
  const double w = 0.1 * kW0;
  const double folded = na.output_psd_from_vco(w, psd);
  const double direct = std::norm(na.vco_transfer(0, w)) * psd(w);
  EXPECT_GT(folded, direct);
}

TEST(Noise, ChargePumpTransferScalesWithFilterGain) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m);
  const double w = 0.05 * kW0;
  const cplx t0 = na.charge_pump_transfer(0, w);
  // Baseband CP transfer = D_0 (1 - H00); for an in-band frequency
  // 1 - H00 is small, so |t0| << |D_0|.  Current noise sees the
  // impedance Z = H_LF/Icp, not Icp*Z.
  const PllParameters& p = m.parameters();
  const cplx d0 = p.kvco * p.loop_filter_tf()(j * w) / (p.icp * j * w);
  EXPECT_LT(std::abs(t0), 0.2 * std::abs(d0));
}

TEST(Noise, LptvChargePumpTransferReducesToTi) {
  // A padded DC-only ISF must give the TI answer exactly.
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const SamplingPllModel ti(p);
  const SamplingPllModel padded(
      p, HarmonicCoefficients(CVector{cplx{0.0}, cplx{1.0}, cplx{0.0}}));
  const NoiseAnalysis na_ti(ti);
  const NoiseAnalysis na_pad(padded);
  for (int m : {-2, 0, 1}) {
    const cplx a = na_ti.charge_pump_transfer(m, 0.07 * kW0);
    const cplx b = na_pad.charge_pump_transfer(m, 0.07 * kW0);
    EXPECT_NEAR(std::abs(a - b), 0.0, 1e-12 * std::max(1.0, std::abs(a)))
        << "m = " << m;
  }
}

TEST(Noise, LptvChargePumpTransferSeesIsfRipple) {
  // With a real ISF harmonic, band m = -1 couples through v_{+1}: the
  // transfer must differ from the TI value.
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const SamplingPllModel ti(p);
  const SamplingPllModel lptv(
      p, HarmonicCoefficients::real_waveform(1.0, {cplx{0.3}}));
  const NoiseAnalysis na_ti(ti);
  const NoiseAnalysis na_lptv(lptv);
  const cplx a = na_ti.charge_pump_transfer(-1, 0.1 * kW0);
  const cplx b = na_lptv.charge_pump_transfer(-1, 0.1 * kW0);
  EXPECT_GT(std::abs(a - b), 0.05 * std::abs(a));
}

TEST(Noise, TotalIsSumOfParts) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 6);
  const PowerLawPsd ref{1e-14, 0.0, 0.0};
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const PowerLawPsd icp{1e-20, 0.0, 0.0};
  const double w = 0.07 * kW0;
  const double total = na.output_psd_total(w, ref, vco, icp);
  const double parts = na.output_psd_from_reference(w, ref) +
                       na.output_psd_from_vco(w, vco) +
                       na.output_psd_from_charge_pump(w, icp);
  EXPECT_NEAR(total, parts, 1e-15 * parts + 1e-30);
}

TEST(Noise, IntegratedRmsOfFlatPsd) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m);
  // Integral of a constant S over [a, b]: rms = sqrt(S (b-a)/pi).
  const double s0 = 4.0;
  const double rms = na.integrated_rms([s0](double) { return s0; }, 1.0,
                                       11.0, 2000);
  EXPECT_NEAR(rms, std::sqrt(s0 * 10.0 / std::numbers::pi), 1e-3);
}

TEST(Noise, ValidatesConstruction) {
  const SamplingPllModel m = make_model(0.2);
  // fold_harmonics = 0 is a valid (unfolded) analysis; only negative
  // counts are rejected.
  EXPECT_NO_THROW(NoiseAnalysis(m, 0));
  EXPECT_THROW(NoiseAnalysis(m, -1), std::invalid_argument);
  EXPECT_THROW(NoiseAnalysis(m, -16), std::invalid_argument);
}

TEST(Noise, ZeroFoldKeepsOnlyBasebandTerm) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 0);
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const double w = 0.07 * kW0;
  const cplx h00 = m.baseband_transfer(j * w);
  EXPECT_NEAR(na.output_psd_from_vco(w, vco),
              std::norm(1.0 - h00) * vco(w),
              1e-12 * std::norm(1.0 - h00) * vco(w));
}

TEST(Noise, GridApisValidateInputs) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 4);
  const PowerLawPsd psd{1e-14, 0.0, 0.0};
  const std::vector<double> w{0.05 * kW0, 0.1 * kW0};
  const std::vector<double> empty;
  const PsdFunction null_psd;
  EXPECT_THROW(na.output_psd_from_reference_grid(empty, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_from_reference_grid(w, null_psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_from_vco_grid(empty, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_from_vco_grid(w, null_psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_from_charge_pump_grid(empty, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_from_charge_pump_grid(w, null_psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_grid(empty, psd, psd, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_grid(w, null_psd, psd, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_grid(w, psd, null_psd, psd),
               std::invalid_argument);
  EXPECT_THROW(na.output_psd_grid(w, psd, psd, null_psd),
               std::invalid_argument);
  EXPECT_THROW(na.spur_map_grid(empty, 3, psd, psd, psd),
               std::invalid_argument);
  EXPECT_THROW(na.spur_map_grid(w, 0, psd, psd, psd),
               std::invalid_argument);
  EXPECT_THROW(na.integrated_jitter(1.0, 10.0, psd, psd, psd, 1),
               std::invalid_argument);
}

TEST(Noise, GridMatchesPointwisePerSource) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 8);
  const PowerLawPsd ref{1e-14, 1e-13, 0.0};
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const PowerLawPsd icp{1e-20, 1e-21, 0.0};
  std::vector<double> w;
  for (int i = 0; i < 60; ++i) {
    w.push_back((0.01 + 0.013 * i) * kW0);
  }
  const auto g_ref = na.output_psd_from_reference_grid(w, ref);
  const auto g_vco = na.output_psd_from_vco_grid(w, vco);
  const auto g_icp = na.output_psd_from_charge_pump_grid(w, icp);
  ASSERT_EQ(g_ref.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double p_ref = na.output_psd_from_reference(w[i], ref);
    const double p_vco = na.output_psd_from_vco(w[i], vco);
    const double p_icp = na.output_psd_from_charge_pump(w[i], icp);
    EXPECT_NEAR(g_ref[i], p_ref, 1e-10 * p_ref) << "i=" << i;
    EXPECT_NEAR(g_vco[i], p_vco, 1e-10 * p_vco) << "i=" << i;
    EXPECT_NEAR(g_icp[i], p_icp, 1e-10 * p_icp) << "i=" << i;
  }
}

TEST(Noise, TotalGridMatchesPointwiseTotal) {
  const SamplingPllModel m = make_model(0.25);
  const NoiseAnalysis na(m, 16);
  const PowerLawPsd ref{1e-14, 0.0, 0.0};
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const PowerLawPsd icp{1e-20, 0.0, 0.0};
  std::vector<double> w;
  for (int i = 0; i < 40; ++i) {
    // Spans fractions of w0 up past the first harmonics, including
    // points whose folds land near reference multiples.
    w.push_back((0.02 + 0.09 * i) * kW0);
  }
  const auto grid = na.output_psd_grid(w, ref, vco, icp);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double want = na.output_psd_total(w[i], ref, vco, icp);
    EXPECT_NEAR(grid[i], want, 1e-10 * want) << "i=" << i;
  }
}

TEST(Noise, SpurMapGridMatchesPsdRows) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 4);
  const PowerLawPsd ref{1e-14, 0.0, 0.0};
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const PowerLawPsd icp{1e-20, 0.0, 0.0};
  const std::vector<double> offsets{-0.1 * kW0, -0.03 * kW0, 0.03 * kW0,
                                    0.1 * kW0};
  const int harmonics = 3;
  const auto map = na.spur_map_grid(offsets, harmonics, ref, vco, icp);
  ASSERT_EQ(map.size(), static_cast<std::size_t>(harmonics));
  for (int k = 1; k <= harmonics; ++k) {
    ASSERT_EQ(map[k - 1].size(), offsets.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      const double w = k * kW0 + offsets[i];
      const double want = na.output_psd_total(w, ref, vco, icp);
      EXPECT_NEAR(map[k - 1][i], want, 1e-10 * want)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(Noise, IntegratedJitterMatchesIntegratedRmsOfTotal) {
  const SamplingPllModel m = make_model(0.2);
  const NoiseAnalysis na(m, 6);
  const PowerLawPsd ref{1e-14, 0.0, 0.0};
  const PowerLawPsd vco{0.0, 0.0, 1e-8};
  const PowerLawPsd icp{1e-20, 0.0, 0.0};
  const double w_lo = 0.01 * kW0;
  const double w_hi = 0.45 * kW0;
  const double batched =
      na.integrated_jitter(w_lo, w_hi, ref, vco, icp, 200);
  const double pointwise = na.integrated_rms(
      [&](double w) { return na.output_psd_total(w, ref, vco, icp); },
      w_lo, w_hi, 200);
  EXPECT_NEAR(batched, pointwise, 1e-9 * pointwise);
}

}  // namespace
}  // namespace htmpll

// Instrumentation-layer suite: metrics registry semantics, span
// tracing, the disabled no-op contract, Chrome-trace export and run
// manifests.  Own binary (like test_parallel) so the whole suite can
// run under -DHTMPLL_SANITIZE=thread: the counter and span tests hammer
// the registry from the pool on purpose.
//
// The registry is process-global, so every test asserts on deltas from
// its own named metrics (unique per test) or resets explicitly.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/report.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {
namespace {

/// Enables obs for one test and restores the prior state after.
struct ScopedObs {
  bool was_enabled = obs::enabled();
  explicit ScopedObs(bool on) { on ? obs::enable() : obs::disable(); }
  ~ScopedObs() { was_enabled ? obs::enable() : obs::disable(); }
};

TEST(ObsMetrics, CounterCountsOnlyWhileEnabled) {
  obs::Counter& c = obs::counter("test.gating_counter");
  const std::uint64_t before = c.value();
  {
    ScopedObs off(false);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before);
  }
  {
    ScopedObs on(true);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
  }
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.stable");
  obs::Counter& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  // Same name as a different kind is a registration error.
  EXPECT_THROW(obs::gauge("test.stable"), std::logic_error);
  EXPECT_THROW(obs::histogram("test.stable"), std::logic_error);
}

TEST(ObsMetrics, GaugeRecordsWhileDisabled) {
  // Gauges hold configuration facts; they must survive obs being
  // enabled only after the fact (like the pool width at first use).
  ScopedObs off(false);
  obs::gauge("test.config_gauge").set(17.5);
  EXPECT_DOUBLE_EQ(obs::gauge("test.config_gauge").value(), 17.5);
}

TEST(ObsMetrics, HistogramTracksMomentsAndBuckets) {
  ScopedObs on(true);
  obs::Histogram& h = obs::histogram("test.histogram");
  h.reset();
  for (std::uint64_t v : {3ull, 3ull, 7ull, 200ull}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 213u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 200u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(7), 1u);
  EXPECT_EQ(h.bucket(4), 0u);
  // Values past kMaxTracked land in the shared overflow bin.
  EXPECT_EQ(h.bucket(200), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kMaxTracked + 5), 1u);
}

TEST(ObsMetrics, CountsAreExactUnderThePool) {
  ScopedObs on(true);
  obs::Counter& c = obs::counter("test.pool_counter");
  obs::Histogram& h = obs::histogram("test.pool_histogram");
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.count();
  const std::size_t n = 10000;
  ThreadPool pool(4);
  pool.parallel_for(n, 1, [&](std::size_t i) {
    c.add();
    h.observe(i % 8);
  });
  EXPECT_EQ(c.value(), c0 + n);
  EXPECT_EQ(h.count(), h0 + n);
}

TEST(ObsMetrics, SnapshotFindsEveryKind) {
  ScopedObs on(true);
  obs::counter("test.snap_counter").add(5);
  obs::gauge("test.snap_gauge").set(2.5);
  obs::histogram("test.snap_hist").observe(9);
  const obs::MetricsSnapshot snap = obs::snapshot();
  ASSERT_NE(snap.find("test.snap_counter"), nullptr);
  EXPECT_EQ(snap.find("test.snap_counter")->kind, obs::MetricKind::kCounter);
  EXPECT_GE(snap.counter_value("test.snap_counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauge_value("test.snap_gauge"), 2.5);
  ASSERT_NE(snap.find("test.snap_hist"), nullptr);
  EXPECT_GE(snap.find("test.snap_hist")->count, 1u);
  EXPECT_EQ(snap.find("missing.metric"), nullptr);
  EXPECT_EQ(snap.counter_value("missing.metric"), 0u);
  // Sorted by name: stable diffable output.
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(ObsMetrics, ResetCountersKeepsGauges) {
  ScopedObs on(true);
  obs::counter("test.reset_counter").add(3);
  obs::gauge("test.reset_gauge").set(11.0);
  obs::reset_counters();
  EXPECT_EQ(obs::counter("test.reset_counter").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("test.reset_gauge").value(), 11.0);
}

TEST(ObsMetrics, PoolWidthGaugeMatchesGlobalPool) {
  const double width = obs::gauge("parallel.pool_width").value();
  // The gauge is set when the global pool is first created; touch it to
  // make sure that has happened.
  ThreadPool::global().parallel_for(1, [](std::size_t) {});
  EXPECT_DOUBLE_EQ(obs::gauge("parallel.pool_width").value(),
                   static_cast<double>(ThreadPool::global().threads()));
  (void)width;
}

TEST(ObsTrace, SpansNestAndOrder) {
  ScopedObs on(true);
  obs::clear_trace();
  {
    HTMPLL_TRACE_SPAN("test.outer");
    { HTMPLL_TRACE_SPAN("test.inner"); }
  }
  const std::vector<obs::TraceEventView> events = obs::collect_trace();
  const obs::TraceEventView* outer = nullptr;
  const obs::TraceEventView* inner = nullptr;
  for (const obs::TraceEventView& e : events) {
    if (std::string(e.name) == "test.outer") outer = &e;
    if (std::string(e.name) == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The inner span's interval sits inside the outer one.
  EXPECT_GE(inner->begin_ns, outer->begin_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  EXPECT_LE(outer->begin_ns, outer->end_ns);
  // collect_trace sorts by begin time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].begin_ns, events[i].begin_ns);
  }
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ScopedObs on(true);
  obs::clear_trace();
  obs::disable();
  { HTMPLL_TRACE_SPAN("test.should_not_appear"); }
  obs::enable();
  for (const obs::TraceEventView& e : obs::collect_trace()) {
    EXPECT_NE(std::string(e.name), "test.should_not_appear");
  }
}

TEST(ObsTrace, SummaryAggregatesPerName) {
  ScopedObs on(true);
  obs::clear_trace();
  for (int i = 0; i < 3; ++i) {
    HTMPLL_TRACE_SPAN("test.repeated");
  }
  for (const obs::SpanStats& s : obs::span_summary()) {
    if (s.name == "test.repeated") {
      EXPECT_EQ(s.count, 3u);
      EXPECT_GE(s.total_ns, s.max_ns);
      return;
    }
  }
  FAIL() << "span_summary lost the repeated span";
}

TEST(ObsTrace, SpansFromPoolWorkersAreCollected) {
  ScopedObs on(true);
  obs::clear_trace();
  ThreadPool pool(4);
  const std::size_t n = 64;
  pool.parallel_for(n, 1, [&](std::size_t) {
    HTMPLL_TRACE_SPAN("test.worker_span");
  });
  std::size_t seen = 0;
  for (const obs::TraceEventView& e : obs::collect_trace()) {
    if (std::string(e.name) == "test.worker_span") ++seen;
  }
  EXPECT_EQ(seen, n);
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormed) {
  ScopedObs on(true);
  obs::clear_trace();
  {
    HTMPLL_TRACE_SPAN("test.chrome \"quoted\\name");
  }
  const std::string json = obs::chrome_trace_json();
  // Balanced braces/brackets outside strings => parseable structure.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Trace-event viewer requirements.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The quote and backslash in the span name were escaped.
  EXPECT_NE(json.find("test.chrome \\\"quoted\\\\name"), std::string::npos);

  const std::string path = ::testing::TempDir() + "htmpll_trace_test.json";
  obs::write_chrome_trace(path);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_EQ(ss.str(), json);
}

TEST(ObsReport, ManifestCarriesConfigPhasesAndMetrics) {
  ScopedObs on(true);
  obs::counter("test.manifest_counter").add(7);
  obs::RunReport report("unit_test_run");
  report.set_config("grid_points", 2000.0);
  report.set_config("mode", "exact");
  report.add_phase("sweep", 0.25);
  report.capture();
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"run\": \"unit_test_run\""), std::string::npos);
  EXPECT_NE(json.find("\"grid_points\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"exact\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("test.manifest_counter"), std::string::npos);
  EXPECT_NE(json.find("\"git\""), std::string::npos);
  EXPECT_FALSE(obs::git_describe().empty());
}

TEST(ObsIntegration, SimulationFeedsTheCountersWithoutChangingResults) {
  const double w0 = 2.0 * std::numbers::pi;
  const PllParameters params = make_typical_loop(0.2 * w0, w0);

  const auto run = [&] {
    TransientConfig cfg;
    cfg.record = false;
    PllTransientSim sim(params, {}, cfg);
    sim.run_periods(50.0);
    return sim;
  };

  // Reference run with obs off, instrumented run with obs on: identical
  // physics, and the instrumented one must account for its events.
  std::uint64_t events_off;
  {
    ScopedObs off(false);
    events_off = run().event_count();
  }
  ScopedObs on(true);
  obs::Counter& pfd = obs::counter("timedomain.pfd_events");
  obs::Counter& lookups = obs::counter("timedomain.propagator_lookups");
  obs::Counter& misses = obs::counter("timedomain.propagator_misses");
  const std::uint64_t pfd0 = pfd.value();
  const std::uint64_t lk0 = lookups.value();
  PllTransientSim sim = run();
  EXPECT_EQ(sim.event_count(), events_off);
  EXPECT_EQ(pfd.value() - pfd0, sim.event_count());
  EXPECT_GE(lookups.value(), lk0 + sim.event_count());
  EXPECT_GE(lookups.value(), misses.value());
  // The per-integrator view and the global counters tell one story.
  const PropagatorCacheStats& st = sim.propagator_cache_stats();
  EXPECT_EQ(st.hits(), st.lookups - st.misses);
  EXPECT_LE(st.evictions, st.misses);
}

}  // namespace
}  // namespace htmpll

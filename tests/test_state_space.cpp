#include <gtest/gtest.h>

#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/lti/state_space.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(StateSpace, FirstOrderLowpassMatchesTransferFunction) {
  const RationalFunction h(Polynomial::constant(3.0),
                           Polynomial::from_real({2.0, 1.0}));
  const StateSpace ss = to_state_space(h);
  EXPECT_EQ(ss.order(), 1u);
  for (const cplx s : {cplx{0.0}, cplx{0.0, 2.0}, cplx{-1.0, 5.0}}) {
    EXPECT_NEAR(std::abs(ss.frequency_response(s) - h(s)), 0.0, 1e-12);
  }
}

TEST(StateSpace, BiproperSystemHasDirectTerm) {
  // (s+2)/(s+1): D = 1.
  const RationalFunction h(Polynomial::from_real({2.0, 1.0}),
                           Polynomial::from_real({1.0, 1.0}));
  const StateSpace ss = to_state_space(h);
  EXPECT_NEAR(ss.d, 1.0, 1e-12);
  for (const cplx s : {cplx{0.0}, cplx{0.0, 10.0}}) {
    EXPECT_NEAR(std::abs(ss.frequency_response(s) - h(s)), 0.0, 1e-12);
  }
}

TEST(StateSpace, PureGainHasOrderZero) {
  const StateSpace ss = to_state_space(RationalFunction::constant(2.5));
  EXPECT_EQ(ss.order(), 0u);
  EXPECT_NEAR(std::abs(ss.frequency_response(j) - cplx{2.5}), 0.0, 1e-15);
  EXPECT_NEAR(ss.output({}, 2.0), 5.0, 1e-15);
}

TEST(StateSpace, ImproperRejected) {
  const RationalFunction h(Polynomial::from_real({0.0, 0.0, 1.0}),
                           Polynomial::from_real({1.0, 1.0}));
  EXPECT_THROW(to_state_space(h), std::invalid_argument);
}

TEST(StateSpace, ComplexCoefficientsRejected) {
  const RationalFunction h(Polynomial(CVector{j}),
                           Polynomial::from_real({1.0, 1.0}));
  EXPECT_THROW(to_state_space(h), std::invalid_argument);
}

TEST(StateSpace, LoopFilterImpedanceRealization) {
  const ChargePumpFilter f =
      ChargePumpFilter::from_frequencies(1e3, 1e5, 1e-9);
  const RationalFunction z = f.impedance();
  const StateSpace ss = to_state_space(z);
  EXPECT_EQ(ss.order(), 2u);
  for (double w : {1.0, 1e2, 1e3, 1e4, 1e6, 1e8}) {
    const cplx expected = z(w * j);
    const cplx got = ss.frequency_response(w * j);
    EXPECT_NEAR(std::abs(got - expected) / std::abs(expected), 0.0, 1e-9)
        << "w = " << w;
  }
}

TEST(StateSpace, OutputEquation) {
  // y = C x + D u for the canonical lowpass: wc/(s+wc).
  const RationalFunction h(Polynomial::constant(4.0),
                           Polynomial::from_real({4.0, 1.0}));
  const StateSpace ss = to_state_space(h);
  EXPECT_NEAR(ss.output({2.0}, 7.0), ss.c(0, 0) * 2.0, 1e-15);
  EXPECT_THROW(ss.output({1.0, 2.0}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

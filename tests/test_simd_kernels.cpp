// SIMD batch-kernel contract tests.
//
// Two contracts are exercised against the scalar reference kernels
// (htmpll::detail::*_scalar):
//  * the vector dispatch path agrees to <= 1e-12 relative error on
//    every finite in-range grid (randomized property tests), and
//  * out-of-range / non-finite / guard-region lanes, tails shorter
//    than the lane width, and the forced-scalar dispatch are BIT
//    IDENTICAL to the scalar kernels (they run the exact scalar
//    operation sequence).
//
// Vector-path tests skip on builds without the AVX2 kernels or on CPUs
// without AVX2+FMA; the dispatch and forced-scalar tests always run.
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <numbers>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/batch_kernels_detail.hpp"
#include "htmpll/linalg/simd.hpp"

namespace htmpll {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool vector_path_available() {
  return simd::compiled() && simd::cpu_has_avx2_fma();
}

/// RAII ISA pin so a failing ASSERT cannot leak a forced ISA into
/// later tests.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) : prev_(simd::active_isa()) {
    simd::set_isa(isa);
  }
  ~ScopedIsa() { simd::set_isa(prev_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;

 private:
  simd::Isa prev_;
};

/// Bitwise equality that treats NaN patterns as equal to themselves.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// |got - want| <= tol * |want| with complex magnitudes (handles the
/// component-near-zero case that per-component relative error cannot).
void expect_rel(cplx got, cplx want, double tol, const char* what,
                std::size_t i) {
  const double scale = std::abs(want);
  if (scale == 0.0) {
    EXPECT_LE(std::abs(got), tol) << what << " i=" << i;
  } else {
    EXPECT_LE(std::abs(got - want), tol * scale) << what << " i=" << i;
  }
}

struct Planes {
  std::vector<double> re, im;
  explicit Planes(std::size_t n) : re(n), im(n) {}
};

// ---- dispatch ---------------------------------------------------------

TEST(SimdDispatch, CompiledMatchesBuildConfig) {
#ifdef HTMPLL_SIMD_COMPILED
  EXPECT_TRUE(simd::compiled());
#else
  EXPECT_FALSE(simd::compiled());
#endif
}

TEST(SimdDispatch, ActiveIsaIsStableAndValid) {
  const simd::Isa isa = simd::active_isa();
  EXPECT_EQ(isa, simd::active_isa());
  if (isa == simd::Isa::kAvx2Fma) {
    EXPECT_TRUE(vector_path_available());
  }
}

TEST(SimdDispatch, SetIsaRoundTrips) {
  const simd::Isa prev = simd::active_isa();
  simd::set_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  if (vector_path_available()) {
    simd::set_isa(simd::Isa::kAvx2Fma);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kAvx2Fma);
  } else {
    EXPECT_THROW(simd::set_isa(simd::Isa::kAvx2Fma),
                 std::invalid_argument);
  }
  simd::set_isa(prev);
}

TEST(SimdDispatch, NamesAndLaneWidths) {
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2Fma), "avx2-fma");
  EXPECT_EQ(simd::lane_width(simd::Isa::kScalar), 1u);
  EXPECT_EQ(simd::lane_width(simd::Isa::kAvx2Fma), 4u);
}

// ---- forced-scalar dispatch is the scalar kernel, bit for bit ---------

TEST(SimdDispatch, ForcedScalarIsBitIdentical) {
  ScopedIsa pin(simd::Isa::kScalar);
  std::mt19937 rng(11u);
  std::uniform_real_distribution<double> u(-30.0, 30.0);
  const std::size_t n = 257;
  Planes z(n), got(n), want(n);
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = u(rng);
    z.im[i] = u(rng) * 1e3;
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  detail::batch_cexp_scalar(z.re.data(), z.im.data(), n, want.re.data(),
                            want.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "i=" << i;
  }
}

// ---- batch_cexp -------------------------------------------------------

TEST(SimdCexp, MatchesStdExpOnRandomGrids) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  std::mt19937 rng(17u);
  // Wide exponent coverage: |Re z| up to the full 708 range, |Im z| up
  // to the vector sincos limit.
  std::uniform_real_distribution<double> mag(-1.0, 1.0);
  const std::size_t n = 4096;
  Planes z(n), got(n);
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = 708.0 * mag(rng);
    z.im[i] = 1e5 * mag(rng);
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    const cplx want = std::exp(cplx{z.re[i], z.im[i]});
    expect_rel(cplx{got.re[i], got.im[i]}, want, 1e-12, "cexp", i);
  }
}

TEST(SimdCexp, EveryTailLengthAgrees) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  std::mt19937 rng(19u);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (std::size_t n = 0; n <= 13; ++n) {  // covers every n mod 4 tail
    Planes z(n), got(n), want(n);
    for (std::size_t i = 0; i < n; ++i) {
      z.re[i] = u(rng);
      z.im[i] = u(rng);
    }
    batch_cexp(z.re.data(), z.im.data(), n, got.re.data(),
               got.im.data());
    detail::batch_cexp_scalar(z.re.data(), z.im.data(), n,
                              want.re.data(), want.im.data());
    const std::size_t tail_start = n - n % 4;
    for (std::size_t i = 0; i < n; ++i) {
      expect_rel(cplx{got.re[i], got.im[i]},
                 cplx{want.re[i], want.im[i]}, 1e-12, "tail", i);
      if (i >= tail_start) {
        // Tail lanes run the exact scalar sequence.
        EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "n=" << n;
        EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "n=" << n;
      }
    }
  }
}

TEST(SimdCexp, LargeImaginaryFallsBackBitIdentical) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  std::mt19937 rng(23u);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  const std::size_t n = 64;
  Planes z(n), got(n), want(n);
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = 3.0 * u(rng);
    z.im[i] = 1e9 * (1.0 + std::abs(u(rng)));  // beyond the 1e5 limit
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  detail::batch_cexp_scalar(z.re.data(), z.im.data(), n, want.re.data(),
                            want.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "i=" << i;
  }
}

TEST(SimdCexp, LargeRealFallsBackBitIdentical) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const std::size_t n = 8;
  Planes z(n), got(n), want(n);
  // Overflow, underflow-to-zero and subnormal-result magnitudes.
  const double res[8] = {710.0, -710.0, 800.0, -745.0,
                         -760.0, 709.1, -708.5, 1000.0};
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = res[i];
    z.im[i] = 0.25 * static_cast<double>(i);
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  detail::batch_cexp_scalar(z.re.data(), z.im.data(), n, want.re.data(),
                            want.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "i=" << i;
  }
}

TEST(SimdCexp, SubnormalArgumentsStayInContract) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const double sub = std::numeric_limits<double>::denorm_min();
  const double tiny = std::numeric_limits<double>::min();
  const std::size_t n = 8;
  Planes z(n), got(n);
  const double vals[8] = {sub, -sub, tiny, -tiny,
                          1e-300, -1e-300, 0.0, -0.0};
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = vals[i];
    z.im[i] = vals[(i + 3) % n];
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    const cplx want = std::exp(cplx{z.re[i], z.im[i]});
    expect_rel(cplx{got.re[i], got.im[i]}, want, 1e-12, "subnormal", i);
  }
}

TEST(SimdCexp, NonFinitePropagationIsBitIdentical) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  // Mix non-finite lanes with in-range lanes inside the same blocks.
  const std::size_t n = 12;
  Planes z(n), got(n), want(n);
  const double re[12] = {kInf, 1.0, -kInf, kNaN, 0.5, kInf,
                         -1.0, kNaN, 2.0,  kInf, 0.0, -0.5};
  const double im[12] = {0.0, kNaN, 1.0, 2.0,  kInf, -kInf,
                         3.0, kNaN, 1.5, -1.0, kNaN, kInf};
  for (std::size_t i = 0; i < n; ++i) {
    z.re[i] = re[i];
    z.im[i] = im[i];
  }
  batch_cexp(z.re.data(), z.im.data(), n, got.re.data(), got.im.data());
  detail::batch_cexp_scalar(z.re.data(), z.im.data(), n, want.re.data(),
                            want.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "i=" << i;
  }
}

// ---- batch_horner -----------------------------------------------------

TEST(SimdHorner, MatchesScalarOnRandomGrids) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  std::mt19937 rng(29u);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  for (std::size_t n_coeff : {1u, 2u, 3u, 5u, 9u}) {
    CVector coeff(n_coeff);
    for (auto& ck : coeff) ck = cplx{u(rng), u(rng)};
    for (std::size_t n : {1u, 4u, 63u, 64u, 1000u}) {
      Planes s(n), got(n), want(n);
      for (std::size_t i = 0; i < n; ++i) {
        s.re[i] = 3.0 * u(rng);
        s.im[i] = 3.0 * u(rng);
      }
      batch_horner(coeff.data(), n_coeff, s.re.data(), s.im.data(), n,
                   got.re.data(), got.im.data());
      detail::batch_horner_scalar(coeff.data(), n_coeff, s.re.data(),
                                  s.im.data(), n, want.re.data(),
                                  want.im.data());
      for (std::size_t i = 0; i < n; ++i) {
        expect_rel(cplx{got.re[i], got.im[i]},
                   cplx{want.re[i], want.im[i]}, 1e-12, "horner", i);
      }
    }
  }
}

TEST(SimdHorner, InfAndNanInputsStayNonFiniteLikeScalar) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const CVector coeff{cplx{1.0, -0.5}, cplx{0.25, 2.0}, cplx{-1.0, 0.0}};
  const std::size_t n = 8;
  Planes s(n), got(n), want(n);
  const double re[8] = {kInf, 1.0, kNaN, -kInf, 0.5, kNaN, kInf, 2.0};
  for (std::size_t i = 0; i < n; ++i) {
    s.re[i] = re[i];
    s.im[i] = 0.5;
  }
  batch_horner(coeff.data(), coeff.size(), s.re.data(), s.im.data(), n,
               got.re.data(), got.im.data());
  detail::batch_horner_scalar(coeff.data(), coeff.size(), s.re.data(),
                              s.im.data(), n, want.re.data(),
                              want.im.data());
  // Horner is pure mul/add: FMA may merge an inf-inf differently, so
  // require matching finiteness classification, not matching payloads.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::isfinite(got.re[i]), std::isfinite(want.re[i]))
        << "i=" << i;
    EXPECT_EQ(std::isfinite(got.im[i]), std::isfinite(want.im[i]))
        << "i=" << i;
    if (std::isfinite(want.re[i])) {
      expect_rel(cplx{got.re[i], got.im[i]},
                 cplx{want.re[i], want.im[i]}, 1e-12, "horner-nan", i);
    }
  }
}

// ---- batch_rational ---------------------------------------------------

TEST(SimdRational, MatchesScalarOnRandomGrids) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  std::mt19937 rng(31u);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  const CVector num{cplx{1.0, 0.5}, cplx{0.3, -0.2}, cplx{u(rng), u(rng)}};
  const CVector den{cplx{0.7, -0.1}, cplx{u(rng), 0.0}, cplx{1.0, 0.0}};
  const std::size_t n = 777;
  Planes s(n), got(n), want(n), t1(n), t2(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.re[i] = 3.0 * u(rng);
    s.im[i] = 3.0 * u(rng);
  }
  batch_rational(num.data(), num.size(), den.data(), den.size(),
                 s.re.data(), s.im.data(), n, got.re.data(),
                 got.im.data(), t1.re.data(), t1.im.data());
  detail::batch_rational_scalar(num.data(), num.size(), den.data(),
                                den.size(), s.re.data(), s.im.data(), n,
                                want.re.data(), want.im.data(),
                                t2.re.data(), t2.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    expect_rel(cplx{got.re[i], got.im[i]}, cplx{want.re[i], want.im[i]},
               1e-12, "rational", i);
  }
}

TEST(SimdRational, ExtremeDenominatorsDeferLikeScalar) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  // Drive |den(s)|^2 out of [1e-290, 1e290] with a constant-polynomial
  // denominator; the division must defer to std::complex exactly like
  // the scalar loop.
  for (const cplx d0 : {cplx{1e-200, 0.0}, cplx{1e200, 1e200},
                        cplx{0.0, 0.0}}) {
    const CVector num{cplx{1.0, 1.0}, cplx{0.5, -0.25}};
    const CVector den{d0};
    const std::size_t n = 9;
    Planes s(n), got(n), want(n), t1(n), t2(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.re[i] = 0.1 * static_cast<double>(i);
      s.im[i] = 1.0;
    }
    batch_rational(num.data(), num.size(), den.data(), den.size(),
                   s.re.data(), s.im.data(), n, got.re.data(),
                   got.im.data(), t1.re.data(), t1.im.data());
    detail::batch_rational_scalar(num.data(), num.size(), den.data(),
                                  den.size(), s.re.data(), s.im.data(),
                                  n, want.re.data(), want.im.data(),
                                  t2.re.data(), t2.im.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(got.re[i], want.re[i])) << "i=" << i;
      EXPECT_TRUE(same_bits(got.im[i], want.im[i])) << "i=" << i;
    }
  }
}

// ---- accumulate_pole_sums ---------------------------------------------

PoleSumTerm make_term(cplx pole, int kmax, double w0) {
  PoleSumTerm t;
  t.pole = pole;
  const double T = 2.0 * std::numbers::pi / w0;
  t.exp_pole_t = std::exp(pole * T);
  t.kmax = kmax;
  for (int k = 0; k < kmax; ++k) {
    t.residues[k] = cplx{0.3 + 0.1 * k, -0.2 + 0.05 * k};
  }
  return t;
}

TEST(SimdPoleSums, MatchesScalarOnJwAxisGrids) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const double w0 = 2.0 * std::numbers::pi * 1e6;
  const double c = std::numbers::pi / w0;
  const double T = 2.0 * std::numbers::pi / w0;
  for (int kmax = 1; kmax <= 4; ++kmax) {
    const PoleSumTerm term =
        make_term(cplx{-0.05 * w0, 0.15 * w0}, kmax, w0);
    const std::size_t n = 501;
    Planes s(n), e(n), acc_v(n), acc_s(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = (0.01 + 2.5 * static_cast<double>(i) /
                                   static_cast<double>(n)) *
                       w0;
      s.re[i] = 0.0;
      s.im[i] = w;
      const cplx es = std::exp(cplx{-s.re[i] * T, -s.im[i] * T});
      e.re[i] = es.real();
      e.im[i] = es.imag();
      acc_v.re[i] = acc_s.re[i] = 0.25;  // nonzero accumulator seed
      acc_v.im[i] = acc_s.im[i] = -0.125;
    }
    accumulate_pole_sums(term, c, s.re.data(), s.im.data(), e.re.data(),
                         e.im.data(), n, acc_v.re.data(),
                         acc_v.im.data());
    detail::accumulate_pole_sums_scalar(term, c, s.re.data(),
                                        s.im.data(), e.re.data(),
                                        e.im.data(), n, acc_s.re.data(),
                                        acc_s.im.data());
    for (std::size_t i = 0; i < n; ++i) {
      expect_rel(cplx{acc_v.re[i], acc_v.im[i]},
                 cplx{acc_s.re[i], acc_s.im[i]}, 1e-12, "pole-sum", i);
    }
  }
}

TEST(SimdPoleSums, GuardRegionsAreBitIdenticalToScalar) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const double w0 = 2.0 * std::numbers::pi;
  const double c = std::numbers::pi / w0;
  const double T = 2.0 * std::numbers::pi / w0;
  const cplx pole{-0.1, 0.4 * w0};
  const PoleSumTerm term = make_term(pole, 4, w0);
  // Whole grid in guard territory: points at/near the pole (series
  // branch), left of the pole abscissa, and at the aliasing poles
  // where |1 - e^{-2u}| is tiny.  Every 4-block contains a guard lane,
  // so the vector kernel must run the scalar sequence throughout.
  const std::size_t n = 12;
  Planes s(n), e(n), acc_v(n), acc_s(n);
  const cplx pts[12] = {
      pole,
      pole + cplx{1e-9, 0.0},
      pole + cplx{0.0, 1e-9},
      pole + cplx{-0.5, 0.1},  // u.real() < 0
      pole + cplx{-2.0, 0.0},
      pole + cplx{0.0, w0},        // aliasing pole: u = j pi
      pole + cplx{1e-12, w0},      // hugs it
      pole + cplx{0.0, 2.0 * w0},  // next aliasing pole
      pole + cplx{0.0, 0.5 * w0},  // coth zero: u = j pi / 2
      pole + cplx{-1e-6, 0.25 * w0},
      pole + cplx{0.0, -w0},
      pole + cplx{1e-9, -0.5 * w0},
  };
  for (std::size_t i = 0; i < n; ++i) {
    s.re[i] = pts[i].real();
    s.im[i] = pts[i].imag();
    const cplx es = std::exp(-pts[i] * T);
    e.re[i] = es.real();
    e.im[i] = es.imag();
    acc_v.re[i] = acc_s.re[i] = 0.0;
    acc_v.im[i] = acc_s.im[i] = 0.0;
  }
  accumulate_pole_sums(term, c, s.re.data(), s.im.data(), e.re.data(),
                       e.im.data(), n, acc_v.re.data(), acc_v.im.data());
  detail::accumulate_pole_sums_scalar(term, c, s.re.data(), s.im.data(),
                                      e.re.data(), e.im.data(), n,
                                      acc_s.re.data(), acc_s.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(acc_v.re[i], acc_s.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(acc_v.im[i], acc_s.im[i])) << "i=" << i;
  }
}

TEST(SimdPoleSums, UnfactoredTermIsBitIdenticalToScalar) {
  if (!vector_path_available()) GTEST_SKIP() << "no AVX2+FMA";
  ScopedIsa pin(simd::Isa::kAvx2Fma);
  const double w0 = 2.0 * std::numbers::pi * 1e3;
  const double c = std::numbers::pi / w0;
  PoleSumTerm term = make_term(cplx{-0.02 * w0, 0.3 * w0}, 2, w0);
  term.factored = false;  // plane-free path; e planes may be null
  const std::size_t n = 37;
  Planes s(n), acc_v(n), acc_s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.re[i] = 0.0;
    s.im[i] = (0.05 + 0.1 * static_cast<double>(i)) * w0;
    acc_v.re[i] = acc_s.re[i] = 0.0;
    acc_v.im[i] = acc_s.im[i] = 0.0;
  }
  accumulate_pole_sums(term, c, s.re.data(), s.im.data(), nullptr,
                       nullptr, n, acc_v.re.data(), acc_v.im.data());
  detail::accumulate_pole_sums_scalar(term, c, s.re.data(), s.im.data(),
                                      nullptr, nullptr, n,
                                      acc_s.re.data(), acc_s.im.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(same_bits(acc_v.re[i], acc_s.re[i])) << "i=" << i;
    EXPECT_TRUE(same_bits(acc_v.im[i], acc_s.im[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace htmpll

// Gardner's classic second-order charge-pump loop (no ripple capacitor):
// exercises the relative-degree-1 aliasing machinery (conditionally
// convergent S1 / principal value), the half-sample term of the
// impulse-invariant transform (a(0+) != 0), and the biproper-filter
// (D != 0) path of the transient simulator.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/stability.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

TEST(SecondOrder, OpenLoopShapeAndNormalization) {
  const PllParameters p = make_second_order_loop(0.1 * kW0, kW0);
  const RationalFunction a = p.open_loop_gain();
  EXPECT_EQ(a.den().degree(), 2u);
  EXPECT_EQ(a.num().degree(), 1u);
  EXPECT_EQ(a.relative_degree(), 1);
  EXPECT_NEAR(std::abs(a(j * 0.1 * kW0)), 1.0, 1e-9);
  // Classical PM = atan(gamma) - 0 relative to -180.
  EXPECT_NEAR(std::arg(a(j * 0.1 * kW0)) * 180.0 / std::numbers::pi,
              -180.0 + std::atan(4.0) * 180.0 / std::numbers::pi, 1e-6);
}

TEST(SecondOrder, FilterIsBiproper) {
  const PllParameters p = make_second_order_loop(0.1 * kW0, kW0);
  const RationalFunction z = p.filter.impedance();
  EXPECT_EQ(z.relative_degree(), 0);
  EXPECT_TRUE(std::isinf(p.filter.pole_freq()));
  // High-frequency asymptote is the series resistance.
  EXPECT_NEAR(std::abs(z(j * 1e9)), p.filter.r, 1e-6 * p.filter.r);
}

TEST(SecondOrder, LambdaMethodsAgreeAtRelativeDegreeOne) {
  const SamplingPllModel m(make_second_order_loop(0.1 * kW0, kW0));
  for (double f : {0.07, 0.23, 0.41}) {
    const cplx s = j * (f * kW0);
    const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
    const cplx adaptive = m.lambda(s, LambdaMethod::kAdaptive, 0);
    const cplx truncated = m.lambda(s, LambdaMethod::kTruncated, 4000);
    EXPECT_NEAR(std::abs(adaptive - exact) / std::abs(exact), 0.0, 1e-7)
        << "f = " << f;
    // Symmetric truncation of the 1/s tail converges ~ 1/K^2 after
    // pairing; keep a generous bound.
    EXPECT_NEAR(std::abs(truncated - exact) / std::abs(exact), 0.0, 1e-3)
        << "f = " << f;
  }
}

TEST(SecondOrder, PoissonIdentityWithHalfSampleTerm) {
  // a(0+) = lim s A(s) != 0 here, so the -T a0/2 correction matters;
  // dropping it would leave an O(T a0) = O(0.1) discrepancy.
  const PllParameters p = make_second_order_loop(0.1 * kW0, kW0);
  const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
  const AliasingSum sum(p.open_loop_gain(), kW0);
  for (double f : {0.08, 0.19, 0.37}) {
    const cplx s = j * (f * kW0);
    const cplx lhs = zm.lambda_equivalent(s);
    const cplx rhs = sum.exact(s);
    EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(rhs), 0.0, 1e-9)
        << "f = " << f;
  }
}

TEST(SecondOrder, MarginDegradationMirrorsThirdOrderLoop) {
  double prev = 180.0;
  for (double ratio : {0.05, 0.1, 0.2, 0.3}) {
    const SamplingPllModel m(make_second_order_loop(ratio * kW0, kW0));
    const EffectiveMargins em = effective_margins(m);
    ASSERT_TRUE(em.eff_found) << "ratio " << ratio;
    EXPECT_LT(em.eff_phase_margin_deg, prev);
    EXPECT_LT(em.eff_phase_margin_deg, em.lti_phase_margin_deg);
    prev = em.eff_phase_margin_deg;
  }
}

TEST(SecondOrder, BoundaryIsHigherThanThirdOrder) {
  // Without the parasitic pole's extra lag the sampled loop survives to
  // larger w_UG/w0 than the gamma = 4 third-order loop (0.276).
  auto boundary = [](auto make) {
    double lo = 0.1, hi = 0.8;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      const SamplingPllModel m(make(mid * kW0, kW0, 4.0));
      (half_rate_lambda(m) > -1.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double b2 = boundary(make_second_order_loop);
  const double b3 = boundary(make_typical_loop);
  EXPECT_NEAR(b3, 0.276, 0.002);
  EXPECT_GT(b2, b3 + 0.02);
}

TEST(SecondOrder, HalfWeightZModelMatchesLambdaBoundary) {
  // With the physically-consistent half-weight convention, the z-domain
  // poles and the lambda(j w0/2) criterion must place the stability
  // boundary at the same ratio -- which the transient simulator brackets
  // in (0.64, 0.65) for gamma = 4.
  auto boundary = [](auto stable) {
    double lo = 0.3, hi = 0.9;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (stable(mid) ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double b_lambda = boundary([](double r) {
    const SamplingPllModel m(make_second_order_loop(r * kW0, kW0));
    return half_rate_lambda(m) > -1.0;
  });
  const double b_z = boundary([](double r) {
    const ImpulseInvariantModel zm(
        make_second_order_loop(r * kW0, kW0).open_loop_gain(), kW0);
    return zm.is_stable();
  });
  EXPECT_NEAR(b_lambda, b_z, 1e-6);
  EXPECT_GT(b_lambda, 0.63);
  EXPECT_LT(b_lambda, 0.66);
}

TEST(SecondOrder, RawAndEffectiveZGainsDifferByHalfSample) {
  const PllParameters p = make_second_order_loop(0.2 * kW0, kW0);
  const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
  const cplx z{0.4, 0.7};
  const cplx diff = zm.loop_gain(z) - zm.effective_loop_gain_z()(z);
  // T * a(0+)/2 with a(0+) = lim s A(s) = leading num coeff of A.
  const cplx a0 = p.open_loop_gain().num().leading();
  EXPECT_NEAR(std::abs(diff - 0.5 * zm.period() * a0), 0.0,
              1e-12 * std::abs(diff));
}

TEST(SecondOrder, TransientSimulatorHandlesBiproperFilter) {
  // The resistor feedthrough (D != 0) makes the control voltage jump
  // with the pump current; the exact propagator must still reproduce
  // the HTM prediction.
  const PllParameters p = make_second_order_loop(0.1 * kW0, kW0);
  const SamplingPllModel model(p);
  ProbeOptions opts;
  opts.settle_periods = 300.0;
  opts.measure_periods = 20;
  const double wm = 0.08 * kW0;
  const TransferMeasurement meas =
      measure_baseband_transfer(p, wm, opts);
  const cplx predicted = model.baseband_transfer(j * wm);
  EXPECT_NEAR(std::abs(meas.value - predicted) / std::abs(predicted), 0.0,
              0.02);
}

TEST(SecondOrder, QuiescentLockWithResistiveFeedthrough) {
  const PllParameters p = make_second_order_loop(0.15 * kW0, kW0);
  PllTransientSim sim(p);
  sim.run_periods(50.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-9);
  EXPECT_LT(sim.max_recent_pulse_width(), 1e-9);
}

}  // namespace
}  // namespace htmpll

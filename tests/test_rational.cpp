#include <gtest/gtest.h>

#include "htmpll/lti/rational.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

RationalFunction simple_lowpass(double wc) {
  // wc / (s + wc)
  return RationalFunction(Polynomial::constant(wc),
                          Polynomial::from_real({wc, 1.0}));
}

TEST(Rational, EvaluationOfLowpass) {
  const RationalFunction h = simple_lowpass(10.0);
  EXPECT_NEAR(std::abs(h(cplx{0.0}) - cplx{1.0}), 0.0, 1e-14);
  // |H(j wc)| = 1/sqrt(2)
  EXPECT_NEAR(std::abs(h(10.0 * j)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Rational, DenominatorNormalizedMonic) {
  const RationalFunction h(Polynomial::from_real({2.0}),
                           Polynomial::from_real({4.0, 2.0}));
  EXPECT_EQ(h.den().leading(), cplx(1.0));
  EXPECT_NEAR(std::abs(h(cplx{0.0}) - cplx{0.5}), 0.0, 1e-14);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(RationalFunction(Polynomial::constant(1.0), Polynomial()),
               std::invalid_argument);
}

TEST(Rational, ArithmeticConsistentWithEvaluation) {
  const RationalFunction a = simple_lowpass(1.0);
  const RationalFunction b = RationalFunction::integrator(2.0);
  const cplx s{0.3, 1.7};
  EXPECT_NEAR(std::abs((a + b)(s) - (a(s) + b(s))), 0.0, 1e-12);
  EXPECT_NEAR(std::abs((a - b)(s) - (a(s) - b(s))), 0.0, 1e-12);
  EXPECT_NEAR(std::abs((a * b)(s) - (a(s) * b(s))), 0.0, 1e-12);
  EXPECT_NEAR(std::abs((a / b)(s) - (a(s) / b(s))), 0.0, 1e-12);
}

TEST(Rational, IntegratorOrders) {
  const RationalFunction i2 = RationalFunction::integrator(3.0, 2);
  EXPECT_EQ(i2.relative_degree(), 2);
  EXPECT_NEAR(std::abs(i2(2.0 * j) - 3.0 / (2.0 * j * 2.0 * j)), 0.0, 1e-14);
  EXPECT_THROW(RationalFunction::integrator(1.0, 0), std::invalid_argument);
}

TEST(Rational, RelativeDegreeAndProperness) {
  EXPECT_EQ(simple_lowpass(1.0).relative_degree(), 1);
  EXPECT_TRUE(simple_lowpass(1.0).is_strictly_proper());
  const RationalFunction biquad = RationalFunction(
      Polynomial::from_real({1.0, 0.0, 1.0}),
      Polynomial::from_real({1.0, 1.0, 1.0}));
  EXPECT_EQ(biquad.relative_degree(), 0);
  EXPECT_TRUE(biquad.is_proper());
  EXPECT_FALSE(biquad.is_strictly_proper());
}

TEST(Rational, PolesAndZerosFromZpk) {
  const CVector zeros{cplx{-1.0}};
  const CVector poles{cplx{-2.0}, cplx{-3.0}};
  const RationalFunction h = RationalFunction::from_zpk(zeros, poles, 5.0);
  const CVector z = h.zeros();
  const CVector p = h.poles();
  ASSERT_EQ(z.size(), 1u);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(std::abs(z[0] + 1.0), 0.0, 1e-10);
  // Gain check: H(0) = 5 * (1)/(2*3)... sign: 5*(0+1)/((0+2)(0+3)) = 5/6
  EXPECT_NEAR(std::abs(h(cplx{0.0}) - cplx{5.0 / 6.0}), 0.0, 1e-12);
}

TEST(Rational, ClosedLoopUnityFeedback) {
  // G = 1/s -> G/(1+G) = 1/(s+1)
  const RationalFunction g = RationalFunction::integrator(1.0);
  const RationalFunction cl = g.closed_loop_unity_feedback();
  EXPECT_TRUE(cl.approx_equal(simple_lowpass(1.0)));
}

TEST(Rational, InverseAndDivision) {
  const RationalFunction h = simple_lowpass(4.0);
  const RationalFunction one = h * h.inverse();
  EXPECT_NEAR(std::abs(one(cplx{1.0, 1.0}) - cplx{1.0}), 0.0, 1e-12);
  EXPECT_THROW(RationalFunction().inverse(), std::invalid_argument);
}

TEST(Rational, ShiftedArgument) {
  const RationalFunction h = simple_lowpass(2.0);
  const cplx shift = 3.0 * j;
  const RationalFunction hs = h.shifted_argument(shift);
  for (const cplx s : {cplx{0.0}, cplx{1.0, -2.0}}) {
    EXPECT_NEAR(std::abs(hs(s) - h(s + shift)), 0.0, 1e-12);
  }
}

TEST(Rational, ScaledArgument) {
  const RationalFunction h = simple_lowpass(2.0);
  const RationalFunction hs = h.scaled_argument(0.5);
  EXPECT_NEAR(std::abs(hs(cplx{4.0}) - h(cplx{2.0})), 0.0, 1e-13);
}

TEST(Rational, SimplifiedCancelsPoleZeroPair) {
  // (s+1)(s+2) / ((s+1)(s+3)) -> (s+2)/(s+3)
  const RationalFunction h(
      Polynomial::from_roots({cplx{-1.0}, cplx{-2.0}}),
      Polynomial::from_roots({cplx{-1.0}, cplx{-3.0}}));
  const RationalFunction s = h.simplified();
  EXPECT_EQ(s.den().degree(), 1u);
  EXPECT_EQ(s.num().degree(), 1u);
  const cplx x{0.4, 0.9};
  EXPECT_NEAR(std::abs(s(x) - h(x)), 0.0, 1e-10);
}

TEST(Rational, ApproxEqualCrossMultiplied) {
  // Same function, different (unnormalized) representations.
  const RationalFunction a(Polynomial::from_real({2.0, 2.0}),
                           Polynomial::from_real({2.0, 0.0, 2.0}));
  const RationalFunction b(Polynomial::from_real({1.0, 1.0}),
                           Polynomial::from_real({1.0, 0.0, 1.0}));
  EXPECT_TRUE(a.approx_equal(b));
  EXPECT_FALSE(a.approx_equal(simple_lowpass(1.0)));
}

TEST(Rational, ZeroFunctionBehaviour) {
  const RationalFunction z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z(cplx{1.0, 1.0}), cplx(0.0));
  const RationalFunction h = simple_lowpass(1.0);
  EXPECT_TRUE((h - h).is_zero());
  EXPECT_THROW(h / RationalFunction(), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "htmpll/lti/roots.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

/// Matches each expected root to a distinct found root within tol.
void expect_roots_match(CVector found, CVector expected, double tol) {
  ASSERT_EQ(found.size(), expected.size());
  for (const cplx& e : expected) {
    auto best = found.end();
    double best_d = 1e300;
    for (auto it = found.begin(); it != found.end(); ++it) {
      const double d = std::abs(*it - e);
      if (d < best_d) {
        best_d = d;
        best = it;
      }
    }
    ASSERT_NE(best, found.end());
    EXPECT_LT(best_d, tol) << "expected root " << e.real() << "+"
                           << e.imag() << "j";
    found.erase(best);
  }
}

TEST(Roots, Linear) {
  const Polynomial p = Polynomial::from_real({-6.0, 2.0});  // 2s - 6
  const CVector r = find_roots(p);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(std::abs(r[0] - cplx{3.0}), 0.0, 1e-14);
}

TEST(Roots, QuadraticComplexPair) {
  // s^2 + 2s + 5 = (s+1)^2 + 4 -> -1 +- 2j
  const Polynomial p = Polynomial::from_real({5.0, 2.0, 1.0});
  expect_roots_match(find_roots(p), {-1.0 + 2.0 * j, -1.0 - 2.0 * j}, 1e-12);
}

TEST(Roots, QuadraticNearCancellation) {
  // Roots 1e-6 and 1e6: naive formula loses the small root.
  const Polynomial p =
      Polynomial::from_roots({cplx{1e-6}, cplx{1e6}});
  const CVector r = find_roots(p);
  std::vector<double> mags{std::abs(r[0]), std::abs(r[1])};
  std::sort(mags.begin(), mags.end());
  EXPECT_NEAR(mags[0] / 1e-6, 1.0, 1e-9);
  EXPECT_NEAR(mags[1] / 1e6, 1.0, 1e-9);
}

TEST(Roots, ZeroRootsStripped) {
  // s^2 (s - 2)
  const Polynomial p = Polynomial::from_real({0.0, 0.0, -2.0, 1.0});
  const CVector r = find_roots(p);
  ASSERT_EQ(r.size(), 3u);
  int zeros = 0;
  for (const cplx& x : r) {
    if (std::abs(x) < 1e-12) ++zeros;
  }
  EXPECT_EQ(zeros, 2);
}

TEST(Roots, ConstantHasNoRoots) {
  EXPECT_TRUE(find_roots(Polynomial::constant(3.0)).empty());
}

TEST(Roots, ZeroPolynomialThrows) {
  EXPECT_THROW(find_roots(Polynomial()), std::invalid_argument);
}

TEST(Roots, CubicWithKnownRoots) {
  const CVector expected{cplx{-1.0}, cplx{-2.0}, cplx{-10.0}};
  const Polynomial p = Polynomial::from_roots(expected, 4.0);
  expect_roots_match(find_roots(p), expected, 1e-9);
}

TEST(Roots, DoubleRootClusterDetected) {
  // (s+1)^2 (s+5)
  const Polynomial p =
      Polynomial::from_roots({cplx{-1.0}, cplx{-1.0}, cplx{-5.0}});
  const CVector r = find_roots(p);
  const auto clusters = cluster_roots(r, 1e-4);
  ASSERT_EQ(clusters.size(), 2u);
  int total = 0;
  for (const auto& c : clusters) {
    total += c.multiplicity;
    if (c.multiplicity == 2) {
      EXPECT_NEAR(std::abs(c.value - cplx{-1.0}), 0.0, 1e-5);
    } else {
      EXPECT_NEAR(std::abs(c.value - cplx{-5.0}), 0.0, 1e-7);
    }
  }
  EXPECT_EQ(total, 3);
}

TEST(Roots, CauchyBoundContainsRoots) {
  const Polynomial p = Polynomial::from_real({-10.0, 3.0, -2.0, 1.0});
  const double bound = cauchy_root_bound(p);
  for (const cplx& r : find_roots(p)) {
    EXPECT_LE(std::abs(r), bound + 1e-9);
  }
}

class RootsRandomReconstruction : public ::testing::TestWithParam<int> {};

TEST_P(RootsRandomReconstruction, RecoversRandomSimpleRoots) {
  std::mt19937 rng(7u + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> re(-3.0, 3.0);
  const int n = GetParam();
  // Redraw until the roots are well separated (simple-root test).
  CVector expected;
  for (int attempt = 0; attempt < 200; ++attempt) {
    expected.clear();
    for (int i = 0; i < n; ++i) {
      expected.push_back(cplx{re(rng), re(rng)});
    }
    bool ok = true;
    for (std::size_t a = 0; a < expected.size(); ++a) {
      for (std::size_t b = a + 1; b < expected.size(); ++b) {
        if (std::abs(expected[a] - expected[b]) < 0.2) ok = false;
      }
    }
    if (ok) break;
    expected.clear();
  }
  ASSERT_FALSE(expected.empty()) << "could not draw separated roots";
  const Polynomial p = Polynomial::from_roots(expected, cplx{1.5, 0.5});
  expect_roots_match(find_roots(p), expected, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Degrees, RootsRandomReconstruction,
                         ::testing::Values(3, 4, 5, 6, 8, 10, 12, 16, 20));

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/linalg/expm.hpp"

namespace htmpll {
namespace {

TEST(Expm, DiagonalMatrix) {
  const RMatrix a{{1.0, 0.0}, {0.0, -2.0}};
  const RMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-13);
}

TEST(Expm, NilpotentMatrixIsExactPolynomial) {
  // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
  const RMatrix a{{0.0, 1.0}, {0.0, 0.0}};
  const RMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationMatrix) {
  // exp([[0,-w],[w,0]] t) = rotation by w t.
  const double w = 3.0;
  const RMatrix a{{0.0, -w}, {w, 0.0}};
  const RMatrix e = expm(a);
  EXPECT_NEAR(e(0, 0), std::cos(w), 1e-11);
  EXPECT_NEAR(e(0, 1), -std::sin(w), 1e-11);
  EXPECT_NEAR(e(1, 0), std::sin(w), 1e-11);
  EXPECT_NEAR(e(1, 1), std::cos(w), 1e-11);
}

TEST(Expm, LargeNormTriggersScalingAndStaysAccurate) {
  const RMatrix a{{-50.0, 30.0}, {0.0, -80.0}};
  const RMatrix e = expm(a);
  // Upper-triangular: e11 = exp(-50), e22 = exp(-80),
  // e12 = 30 (exp(-50) - exp(-80)) / 30 = exp(-50)-exp(-80).
  EXPECT_NEAR(e(0, 0) / std::exp(-50.0), 1.0, 1e-9);
  EXPECT_NEAR(e(1, 1) / std::exp(-80.0), 1.0, 1e-6);
  EXPECT_NEAR(e(0, 1) / (std::exp(-50.0) - std::exp(-80.0)), 1.0, 1e-9);
}

TEST(Expm, SemigroupProperty) {
  const RMatrix a{{0.1, 0.7}, {-0.3, 0.2}};
  const RMatrix e1 = expm(a);
  const RMatrix e2 = expm(a * 2.0);
  const RMatrix e1sq = e1 * e1;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(e1sq(i, j), e2(i, j), 1e-12);
    }
  }
}

TEST(Propagator, ScalarDecayWithConstantInput) {
  // x' = -a x + u, exact x(h) = e^{-ah} x0 + (1 - e^{-ah}) u / a.
  const double a = 2.0, h = 0.3, x0 = 1.5, u = 4.0;
  const RMatrix am{{-a}};
  const RMatrix bm{{1.0}};
  const StepPropagator p = make_propagator(am, bm, h);
  const RVector x = p.advance({x0}, {u}, {u}, h);
  const double expected = std::exp(-a * h) * x0 +
                          (1.0 - std::exp(-a * h)) * u / a;
  EXPECT_NEAR(x[0], expected, 1e-13);
}

TEST(Propagator, PureIntegratorWithConstantInput) {
  // x' = u: singular A must still work (phi functions, not A^{-1}).
  const RMatrix am{{0.0}};
  const RMatrix bm{{1.0}};
  const double h = 0.7;
  const StepPropagator p = make_propagator(am, bm, h);
  const RVector x = p.advance({2.0}, {3.0}, {3.0}, h);
  EXPECT_NEAR(x[0], 2.0 + 3.0 * h, 1e-13);
}

TEST(Propagator, PureIntegratorWithRampInput) {
  // x' = u(t), u ramps u0 -> u1: x(h) = x0 + h (u0+u1)/2.
  const RMatrix am{{0.0}};
  const RMatrix bm{{1.0}};
  const double h = 0.5;
  const StepPropagator p = make_propagator(am, bm, h);
  const RVector x = p.advance({0.0}, {1.0}, {3.0}, h);
  EXPECT_NEAR(x[0], 0.5 * (1.0 + 3.0) * h, 1e-13);
}

TEST(Propagator, DoubleIntegratorChain) {
  // x1' = u, x2' = x1 (Jordan block at 0, like filter cap + VCO phase).
  const RMatrix am{{0.0, 0.0}, {1.0, 0.0}};
  const RMatrix bm{{1.0}, {0.0}};
  const double h = 2.0, u = 1.0;
  const StepPropagator p = make_propagator(am, bm, h);
  const RVector x = p.advance({0.0, 0.0}, {u}, {u}, h);
  EXPECT_NEAR(x[0], u * h, 1e-12);
  EXPECT_NEAR(x[1], 0.5 * u * h * h, 1e-12);
}

TEST(Propagator, AutonomousSystemAllowed) {
  const RMatrix am{{-1.0}};
  const StepPropagator p = make_propagator(am, RMatrix(), 1.0);
  const RVector x = p.advance({1.0}, {}, {}, 1.0);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-12);
}

TEST(Propagator, RejectsNonPositiveStep) {
  EXPECT_THROW(make_propagator(RMatrix{{0.0}}, RMatrix{{1.0}}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_propagator(RMatrix{{0.0}}, RMatrix{{1.0}}, -1.0),
               std::invalid_argument);
}

TEST(Expm, RejectsNonFiniteInput) {
  // NaN used to flow through norm_inf silently, skip the scaling stage
  // and return an all-NaN matrix; now it is an argument error.
  RMatrix nan2{{0.0, 1.0}, {std::nan(""), 0.0}};
  EXPECT_THROW(expm(nan2), std::invalid_argument);
  RMatrix inf2{{0.0, std::numeric_limits<double>::infinity()}, {0.0, 0.0}};
  EXPECT_THROW(expm(inf2), std::invalid_argument);
  RMatrix neg_inf1{{-std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(expm(neg_inf1), std::invalid_argument);
}

TEST(Propagator, AdvanceIntoMatchesAdvanceBitwise) {
  const RMatrix am{{0.0, 1.0}, {-2.0, -0.7}};
  const RMatrix bm{{0.0}, {1.0}};
  const double h = 0.37;
  const StepPropagator p = make_propagator(am, bm, h);
  const RVector x0{0.25, -1.5};
  for (const auto& [u0, u1] : std::vector<std::pair<double, double>>{
           {0.8, 0.8}, {0.8, -0.3}, {0.0, 0.0}, {-1.0, 1.0}}) {
    const RVector a = p.advance(x0, {u0}, {u1}, h);
    RVector b;
    p.advance_into(x0, u0, u1, h, b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Bit-level equality, not EXPECT_DOUBLE_EQ: the transient engine's
      // seed-identity contract depends on the exact same rounding.
      EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0) << i;
    }
  }
}

TEST(Propagator, AdvanceIntoReusesScratchAcrossCalls) {
  const RMatrix am{{-1.0}};
  const RMatrix bm{{1.0}};
  const StepPropagator p = make_propagator(am, bm, 1.0);
  RVector scratch(7, 123.0);  // wrong size on purpose
  p.advance_into({2.0}, 0.5, 0.5, 1.0, scratch);
  ASSERT_EQ(scratch.size(), 1u);
  const RVector ref = p.advance({2.0}, {0.5}, {0.5}, 1.0);
  EXPECT_EQ(scratch[0], ref[0]);
}

TEST(Propagator, AdvanceIntoAutonomous) {
  const RMatrix am{{-1.0}};
  const StepPropagator p = make_propagator(am, RMatrix(), 1.0);
  RVector out;
  p.advance_into({1.0}, 0.0, 0.0, 1.0, out);
  EXPECT_NEAR(out[0], std::exp(-1.0), 1e-12);
}

}  // namespace
}  // namespace htmpll

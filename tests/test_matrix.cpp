#include <gtest/gtest.h>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  const RMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityActsAsNeutral) {
  const RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const RMatrix i = RMatrix::identity(2);
  const RMatrix left = i * a;
  const RMatrix right = a * i;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(left(r, c), a(r, c));
      EXPECT_DOUBLE_EQ(right(r, c), a(r, c));
    }
  }
}

TEST(Matrix, ProductMatchesHandComputation) {
  const RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const RMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const RMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const RMatrix a(2, 3);
  const RMatrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  RMatrix c(3, 3);
  EXPECT_THROW(c += a, std::invalid_argument);
}

TEST(Matrix, ComplexArithmetic) {
  const cplx j{0.0, 1.0};
  const CMatrix a{{j, 0.0}, {0.0, -j}};
  const CMatrix sq = a * a;
  EXPECT_NEAR(std::abs(sq(0, 0) - cplx{-1.0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(sq(1, 1) - cplx{-1.0}), 0.0, 1e-15);
}

TEST(Matrix, MatrixVectorProduct) {
  const RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, TransposeRoundTrip) {
  const RMatrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const RMatrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  const RMatrix tt = t.transpose();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
  }
}

TEST(Matrix, Norms) {
  const RMatrix a{{3.0, -4.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_fro(), 5.0);
}

TEST(Matrix, OuterProductIsRankOnePattern) {
  const CVector u{cplx{1.0}, cplx{2.0}};
  const CVector v{cplx{3.0}, cplx{0.0, 1.0}};
  const CMatrix m = outer(u, v);
  EXPECT_EQ(m(0, 0), cplx(3.0));
  EXPECT_EQ(m(1, 0), cplx(6.0));
  EXPECT_EQ(m(0, 1), cplx(0.0, 1.0));
  EXPECT_EQ(m(1, 1), cplx(0.0, 2.0));
}

TEST(Matrix, DotUnconjugatedMatchesPaperConvention) {
  const cplx j{0.0, 1.0};
  const CVector u{j, j};
  // l^T u (no conjugation): j + j = 2j, not the inner product 2.
  EXPECT_EQ(dot_unconjugated(CVector{1.0, 1.0}, u), 2.0 * j);
}

TEST(Matrix, VectorHelpers) {
  const CVector a{1.0, 2.0};
  const CVector b{cplx{0.0, 1.0}, cplx{1.0, 0.0}};
  const CVector sum = a + b;
  const CVector dif = a - b;
  EXPECT_EQ(sum[0], cplx(1.0, 1.0));
  EXPECT_EQ(dif[1], cplx(1.0, 0.0));
  EXPECT_NEAR(norm2(CVector{cplx{3.0}, cplx{0.0, 4.0}}), 5.0, 1e-15);
  const CVector scaled = cplx{2.0} * a;
  EXPECT_EQ(scaled[1], cplx(4.0));
}

}  // namespace
}  // namespace htmpll

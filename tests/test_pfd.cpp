#include <gtest/gtest.h>

#include "htmpll/timedomain/pfd.hpp"

namespace htmpll {
namespace {

TEST(Pfd, StartsIdle) {
  const TriStatePfd pfd;
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
  EXPECT_DOUBLE_EQ(pfd.pump_current(1e-3), 0.0);
}

TEST(Pfd, ReferenceLeadsGivesUpPulse) {
  TriStatePfd pfd;
  pfd.on_reference_edge();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kUp);
  EXPECT_DOUBLE_EQ(pfd.pump_current(2.0), 2.0);
  pfd.on_vco_edge();  // closes the pulse
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
  EXPECT_DOUBLE_EQ(pfd.pump_current(2.0), 0.0);
}

TEST(Pfd, VcoLeadsGivesDownPulse) {
  TriStatePfd pfd;
  pfd.on_vco_edge();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kDown);
  EXPECT_DOUBLE_EQ(pfd.pump_current(2.0), -2.0);
  pfd.on_reference_edge();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
}

TEST(Pfd, RepeatedReferenceEdgesHoldUpThroughCycleSlip) {
  // Frequency detection: multiple reference edges without a VCO edge
  // keep UP asserted (this is what makes acquisition converge).
  TriStatePfd pfd;
  pfd.on_reference_edge();
  pfd.on_reference_edge();
  pfd.on_reference_edge();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kUp);
  pfd.on_vco_edge();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
}

TEST(Pfd, AlternatingSequencesStayConsistent) {
  TriStatePfd pfd;
  for (int cycle = 0; cycle < 5; ++cycle) {
    pfd.on_reference_edge();
    EXPECT_EQ(pfd.state(), TriStatePfd::State::kUp);
    pfd.on_vco_edge();
    EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
    pfd.on_vco_edge();
    EXPECT_EQ(pfd.state(), TriStatePfd::State::kDown);
    pfd.on_reference_edge();
    EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
  }
}

TEST(Pfd, ResetClearsState) {
  TriStatePfd pfd;
  pfd.on_vco_edge();
  pfd.reset();
  EXPECT_EQ(pfd.state(), TriStatePfd::State::kIdle);
  EXPECT_FALSE(pfd.up());
  EXPECT_FALSE(pfd.down());
}

}  // namespace
}  // namespace htmpll

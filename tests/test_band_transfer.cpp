// Validation of the inter-band HTM elements H_{n,0} (Fig. 2): reference
// modulation at w_m must appear in the simulated VCO phase as sidebands
// at n w0 + w_m with exactly the magnitudes the closed-loop HTM predicts
// -- "signal transfers to other frequency bands can be studied as well
// by considering the other elements of H(s)".
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

TEST(BandTransfer, SingleBinRatioWithDistinctFrequencies) {
  // y carries 0.25x's amplitude at 3x the stimulus frequency.
  const double wx = 1.0, wy = 3.0;
  std::vector<double> t, x, y;
  const int n = 8192;
  const double span = 24.0 * 2.0 * std::numbers::pi / wx;
  for (int k = 0; k < n; ++k) {
    const double tk = span * k / n;
    t.push_back(tk);
    x.push_back(std::cos(wx * tk));
    y.push_back(0.25 * std::cos(wy * tk + 0.5));
  }
  const cplx h = single_bin_ratio(t, y, wy, x, wx);
  EXPECT_NEAR(std::abs(h), 0.25, 1e-3);
}

struct BandCase {
  int band;
  double ratio;
  double f;    // w_m / w0
  double tol;  // relative magnitude tolerance
};

class BandTransferVsModel : public ::testing::TestWithParam<BandCase> {};

TEST_P(BandTransferVsModel, SidebandMagnitudeMatchesHtm) {
  const BandCase c = GetParam();
  const PllParameters params = make_typical_loop(c.ratio * kW0, kW0);
  const SamplingPllModel model(params);

  ProbeOptions opts;
  opts.settle_periods = 350.0;
  opts.measure_periods = 24;
  const double wm = c.f * kW0;
  const TransferMeasurement meas =
      measure_band_transfer(params, c.band, wm, opts);

  // H_{n,0}(j w_m) = V~_n / (1 + lambda) (eq. 36).
  const cplx predicted = model.closed_loop(c.band, j * wm);
  const double rel =
      std::abs(std::abs(meas.value) - std::abs(predicted)) /
      std::abs(predicted);
  EXPECT_LT(rel, c.tol) << "band " << c.band << " |measured| "
                        << std::abs(meas.value) << " |predicted| "
                        << std::abs(predicted);
}

INSTANTIATE_TEST_SUITE_P(
    Sidebands, BandTransferVsModel,
    ::testing::Values(BandCase{1, 0.2, 0.12, 0.05},
                      BandCase{-1, 0.2, 0.12, 0.05},
                      BandCase{2, 0.2, 0.12, 0.10},
                      BandCase{1, 0.1, 0.07, 0.05},
                      BandCase{-2, 0.15, 0.1, 0.10}));

TEST(BandTransfer, BasebandBandIsTheOrdinaryMeasurement) {
  const PllParameters params = make_typical_loop(0.15 * kW0, kW0);
  ProbeOptions opts;
  opts.settle_periods = 250.0;
  opts.measure_periods = 16;
  const double wm = 0.09 * kW0;
  const TransferMeasurement a = measure_band_transfer(params, 0, wm, opts);
  const TransferMeasurement b =
      measure_baseband_transfer(params, wm, opts);
  EXPECT_NEAR(std::abs(a.value - b.value), 0.0, 1e-9);
}

TEST(BandTransfer, SidebandsDecayWithBandIndex) {
  // |H_{n,0}| ~ |A(jw + j n w0)| falls off like 1/n^2 (Fig. 2 picture).
  const PllParameters params = make_typical_loop(0.2 * kW0, kW0);
  const SamplingPllModel model(params);
  const cplx s = j * (0.1 * kW0);
  double prev = std::abs(model.closed_loop(0, s));
  for (int n = 1; n <= 5; ++n) {
    const double mag = std::abs(model.closed_loop(n, s));
    EXPECT_LT(mag, prev) << "n = " << n;
    prev = mag;
  }
}

TEST(BandTransfer, ValidatesArguments) {
  const PllParameters params = make_typical_loop(0.1 * kW0, kW0);
  EXPECT_THROW(measure_band_transfer(params, 9, 0.1 * kW0),
               std::invalid_argument);
  EXPECT_THROW(measure_band_transfer(params, 1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

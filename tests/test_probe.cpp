#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/timedomain/probe.hpp"

namespace htmpll {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(SingleBin, RecoversKnownGainAndPhase) {
  // y = 0.5 x delayed by 30 degrees at w = 2.
  const double w = 2.0;
  const cplx h_true = 0.5 * std::exp(cplx{0.0, -kPi / 6.0});
  std::vector<double> t, x, y;
  const int n = 4096;
  const double dt = (40.0 * kPi / w) / n;  // 20 cycles
  for (int k = 0; k < n; ++k) {
    const double tk = k * dt;
    t.push_back(tk);
    x.push_back(std::sin(w * tk));
    y.push_back(0.5 * std::sin(w * tk - kPi / 6.0));
  }
  const cplx h = single_bin_transfer(t, y, x, w);
  EXPECT_NEAR(std::abs(h - h_true), 0.0, 1e-6);
}

TEST(SingleBin, RejectsAdditiveToneAtOtherFrequency) {
  // A strong interferer 7 bins away must be suppressed by the window.
  const double w = 1.0;
  std::vector<double> t, x, y;
  const int n = 8192;
  const double span = 32.0 * 2.0 * kPi / w;  // 32 cycles
  const double dt = span / n;
  const double w_int = w * (1.0 + 7.0 / 32.0);
  for (int k = 0; k < n; ++k) {
    const double tk = k * dt;
    t.push_back(tk);
    x.push_back(std::cos(w * tk));
    y.push_back(2.0 * std::cos(w * tk) + 5.0 * std::sin(w_int * tk));
  }
  const cplx h = single_bin_transfer(t, y, x, w);
  EXPECT_NEAR(std::abs(h - cplx{2.0}), 0.0, 2e-2);
}

TEST(SingleBin, ValidatesInput) {
  const std::vector<double> t{1.0, 2.0};
  EXPECT_THROW(single_bin_transfer(t, {1.0}, {1.0, 2.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(single_bin_transfer(t, {1.0, 2.0}, {1.0, 2.0}, 1.0),
               std::invalid_argument);  // too short
}

TEST(Probe, OptionsValidated) {
  const PllParameters p = make_typical_loop(0.2 * 2.0 * kPi, 2.0 * kPi);
  ProbeOptions opts;
  opts.samples_per_period = 2;
  EXPECT_THROW(measure_baseband_transfer(p, 1.0, opts),
               std::invalid_argument);
  opts = ProbeOptions{};
  opts.measure_periods = 0;
  EXPECT_THROW(measure_baseband_transfer(p, 1.0, opts),
               std::invalid_argument);
  EXPECT_THROW(measure_baseband_transfer(p, 0.0), std::invalid_argument);
}

TEST(Probe, InBandMeasurementTracksReference) {
  // Deep inside the loop bandwidth H_00 ~ 1.
  const double w0 = 2.0 * kPi;
  const PllParameters p = make_typical_loop(0.2 * w0, w0);
  ProbeOptions opts;
  opts.settle_periods = 120.0;
  opts.measure_periods = 12;
  const TransferMeasurement m =
      measure_baseband_transfer(p, 0.01 * w0, opts);
  EXPECT_NEAR(std::abs(m.value), 1.0, 0.03);
  EXPECT_GT(m.events, 100u);
  EXPECT_GT(m.simulated_time, 0.0);
}

}  // namespace
}  // namespace htmpll

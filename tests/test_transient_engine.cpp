// Transient performance-layer suite: keyed propagator cache, checkpoint
// round-tripping, warm-start probes, probe-option validation and the
// Monte Carlo batch APIs.  Kept in its own binary (like test_parallel)
// so the whole suite stays fast enough to run routinely under
// -DHTMPLL_SANITIZE=thread.
#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/linalg/spectral.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

/// Pins the process-wide spectral switch for the duration of a test.
struct ScopedSpectral {
  bool was = spectral::enabled();
  explicit ScopedSpectral(bool on) { spectral::set_enabled(on); }
  ~ScopedSpectral() { spectral::set_enabled(was); }
};

/// Enables obs for one test and restores the prior state after.
struct ScopedDiagObs {
  bool was_enabled = obs::enabled();
  explicit ScopedDiagObs(bool on) { on ? obs::enable() : obs::disable(); }
  ~ScopedDiagObs() { was_enabled ? obs::enable() : obs::disable(); }
};

TEST(PropagatorCache, CountsHitsAndMisses) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PiecewiseExactIntegrator integ(
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco));
  (void)integ.peek(0.125, 1e-3);
  (void)integ.peek(0.125, 2e-3);  // same h, different input: cache hit
  (void)integ.peek(0.25, 1e-3);
  const PropagatorCacheStats& st = integ.cache_stats();
  EXPECT_EQ(st.lookups, 3u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits(), 1u);
}

TEST(PropagatorCache, EvictionKeepsResultsExact) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const StateSpace aug =
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco);
  PiecewiseExactIntegrator tiny(aug, 2);   // constant thrash
  PiecewiseExactIntegrator roomy(aug, 64);
  for (int round = 0; round < 3; ++round) {
    for (double h : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      const RVector a = tiny.peek(h, 1e-3);
      const RVector b = roomy.peek(h, 1e-3);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
  EXPECT_GT(tiny.cache_stats().misses, roomy.cache_stats().misses);
}

TEST(PropagatorCache, CapacityValidatedAndShrinkable) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PiecewiseExactIntegrator integ(
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco));
  EXPECT_THROW(integ.set_cache_capacity(0), std::invalid_argument);
  for (double h : {0.1, 0.2, 0.3}) (void)integ.peek(h, 0.0);
  integ.set_cache_capacity(1);  // discards entries, stays correct
  const RVector x = integ.peek(0.1, 0.0);
  EXPECT_EQ(x.size(), integ.order());
}

TEST(PropagatorCache, SimulationIndependentOfCapacity) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.2 * kW0;
  auto run = [&](std::size_t capacity) {
    TransientConfig cfg;
    cfg.propagator_cache = capacity;
    PllTransientSim sim(p, mod, cfg);
    sim.run_periods(40.0);
    return sim;
  };
  const PllTransientSim s1 = run(1);
  const PllTransientSim s64 = run(64);
  ASSERT_EQ(s1.theta_samples().size(), s64.theta_samples().size());
  for (std::size_t i = 0; i < s1.theta_samples().size(); ++i) {
    EXPECT_EQ(s1.theta_samples()[i], s64.theta_samples()[i]);
  }
  EXPECT_EQ(s1.theta(), s64.theta());
  // The keyed cache must actually save expm work on the same workload.
  EXPECT_LT(s64.propagator_cache_stats().misses,
            s1.propagator_cache_stats().misses);
}

TEST(PropagatorCache, DefaultCapacityAvoidsModulatedChurn) {
  // Regression for the old 32-entry default: a modulated run makes the
  // inter-event spacings quasi-continuous, so a small cache thrashes
  // (probe-sweep hit rate ~0.38 with ~300k evictions before the fix).
  // The enlarged default must hold the hit rate well above that churn
  // plateau on the same workload.
  const PllParameters p = make_typical_loop(0.12 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.17 * kW0;
  auto run = [&](const TransientConfig& cfg) {
    PllTransientSim sim(p, mod, cfg);
    sim.run_periods(80.0);
    return sim.propagator_cache_stats();
  };
  TransientConfig old_default;
  old_default.propagator_cache = 32;
  const PropagatorCacheStats small = run(old_default);
  const PropagatorCacheStats big = run({});  // current default capacity
  EXPECT_GE(PiecewiseExactIntegrator::kDefaultCacheCapacity, 1024u);
  EXPECT_EQ(big.lookups, small.lookups);  // same workload either way
  EXPECT_LT(small.hit_rate(), 0.45);      // the old default churns...
  EXPECT_GE(big.hit_rate(), 0.55);        // ...the new one must not
  EXPECT_LT(big.evictions, small.evictions / 2);
}

TEST(PropagatorCache, ChurnDiagEventPerFullTurnover) {
  // One bounded diag event per full capacity turnover, payload = the
  // completed turnover count.
  ScopedDiagObs on(true);
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PiecewiseExactIntegrator integ(
      augment_with_phase(to_state_space(p.filter.impedance()), p.kvco), 4);
  obs::diag_reset();
  for (int i = 1; i <= 12; ++i) (void)integ.peek(0.01 * i, 0.0);
  EXPECT_EQ(integ.cache_stats().evictions, 8u);  // 12 distinct h, cap 4
  const obs::DiagSnapshot s = obs::diag_snapshot();
  EXPECT_EQ(s.tally[static_cast<std::size_t>(
                obs::DiagReason::kPropagatorCacheChurn)],
            2u);
  std::vector<double> payloads;
  for (const obs::DiagEvent& e : s.events) {
    if (e.reason == obs::DiagReason::kPropagatorCacheChurn) {
      payloads.push_back(e.payload);
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_DOUBLE_EQ(payloads[0], 1.0);
  EXPECT_DOUBLE_EQ(payloads[1], 2.0);
}

TEST(SpectralEngine, SimulationAgreesWithPadeWithinTolerance) {
  // Full transient runs with the two propagator backends: the recorded
  // theta trajectories must agree to the 1e-10 relative level of the
  // bench contract.  (T = 1 normalization keeps the Van Loan matrix
  // well scaled, so the Pade reference itself is trustworthy here.)
  ScopedSpectral pin(true);
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 2e-3;
  mod.omega = 0.21 * kW0;
  auto run = [&](bool use_spectral) {
    TransientConfig cfg;
    cfg.use_spectral_propagators = use_spectral;
    PllTransientSim sim(p, mod, cfg);
    sim.run_periods(60.0);
    return sim;
  };
  const PllTransientSim s = run(true);
  const PllTransientSim q = run(false);
  EXPECT_TRUE(s.spectral_propagators());
  EXPECT_FALSE(q.spectral_propagators());
  ASSERT_EQ(s.theta_samples().size(), q.theta_samples().size());
  double scale = 0.0;
  for (double th : q.theta_samples()) scale = std::max(scale, std::abs(th));
  ASSERT_GT(scale, 0.0);
  for (std::size_t i = 0; i < s.theta_samples().size(); ++i) {
    EXPECT_LT(std::abs(s.theta_samples()[i] - q.theta_samples()[i]) / scale,
              1e-10)
        << "sample " << i;
  }
}

TEST(SpectralEngine, ConfigOffMatchesGlobalOffBitwise) {
  // TransientConfig::use_spectral_propagators = false and the global
  // kill switch must select the same (Pade) numerics exactly.
  const PllParameters p = make_typical_loop(0.12 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.3 * kW0;
  std::vector<double> via_config, via_global;
  {
    ScopedSpectral pin(true);
    TransientConfig cfg;
    cfg.use_spectral_propagators = false;
    PllTransientSim sim(p, mod, cfg);
    sim.run_periods(30.0);
    via_config = sim.theta_samples();
  }
  {
    ScopedSpectral pin(false);
    PllTransientSim sim(p, mod, {});
    EXPECT_FALSE(sim.spectral_propagators());
    sim.run_periods(30.0);
    via_global = sim.theta_samples();
  }
  ASSERT_EQ(via_config.size(), via_global.size());
  for (std::size_t i = 0; i < via_config.size(); ++i) {
    EXPECT_EQ(via_config[i], via_global[i]) << "sample " << i;
  }
}

TEST(SpectralEngine, CountsSpectralBuilds) {
  ScopedSpectral pin(true);
  const bool was = obs::enabled();
  obs::enable();
  obs::Counter& spectral_builds =
      obs::counter("timedomain.spectral_propagators");
  obs::Counter& fallbacks = obs::counter("timedomain.pade_fallbacks");
  const std::uint64_t s0 = spectral_builds.value();
  const std::uint64_t f0 = fallbacks.value();
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PllTransientSim sim(p);
  sim.set_recording(false);
  sim.run_periods(10.0);
  EXPECT_GT(spectral_builds.value(), s0);
  EXPECT_EQ(fallbacks.value(), f0);  // typical loop never falls back
  if (!was) obs::disable();
}

TEST(Checkpoint, RoundTripReproducesTrajectoryBitForBit) {
  const PllParameters p = make_typical_loop(0.12 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 2e-3;
  mod.omega = 0.17 * kW0;
  PllTransientSim sim(p, mod);
  sim.set_recording(false);
  sim.run_periods(30.0);
  const TransientCheckpoint cp = sim.checkpoint();

  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(20.0);
  const std::vector<double> t_ref = sim.sample_times();
  const std::vector<double> th_ref = sim.theta_samples();
  const double theta_end = sim.theta();
  const std::size_t events_end = sim.event_count();

  sim.restore(cp);
  sim.clear_samples();
  sim.run_periods(20.0);
  ASSERT_EQ(sim.sample_times().size(), t_ref.size());
  for (std::size_t i = 0; i < t_ref.size(); ++i) {
    EXPECT_EQ(sim.sample_times()[i], t_ref[i]);
    EXPECT_EQ(sim.theta_samples()[i], th_ref[i]);
  }
  EXPECT_EQ(sim.theta(), theta_end);
  EXPECT_EQ(sim.event_count(), events_end);
}

TEST(Checkpoint, RoundTripWithLeakageAndHeldNoise) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PllTransientSim sim(p);
  sim.set_leakage(0.02 * p.icp, 0.15 * p.period());
  sim.set_noise_current(1e-4 * p.icp, 4242);
  sim.set_recording(false);
  sim.run_periods(25.0);
  const TransientCheckpoint cp = sim.checkpoint();

  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(30.0);
  const std::vector<double> th_ref = sim.theta_samples();
  const double theta_end = sim.theta();

  // The RNG stream (engine + the distribution's spare-Gaussian cache)
  // is part of the checkpoint, so the replay sees the same noise draws.
  sim.restore(cp);
  sim.clear_samples();
  sim.run_periods(30.0);
  ASSERT_EQ(sim.theta_samples().size(), th_ref.size());
  for (std::size_t i = 0; i < th_ref.size(); ++i) {
    EXPECT_EQ(sim.theta_samples()[i], th_ref[i]);
  }
  EXPECT_EQ(sim.theta(), theta_end);
}

TEST(Checkpoint, RestoreValidatesCompatibility) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PllTransientSim sim(p);
  sim.run_periods(5.0);
  TransientCheckpoint cp = sim.checkpoint();

  // Different reference period.
  PllTransientSim other_period(make_typical_loop(0.05 * kW0, 2.0 * kW0));
  EXPECT_THROW(other_period.restore(cp), std::invalid_argument);

  // Different filter order.
  PllTransientSim other_order(make_second_order_loop(0.1 * kW0, kW0));
  EXPECT_THROW(other_order.restore(cp), std::invalid_argument);
}

TEST(Checkpoint, SettledCheckpointTransfersAcrossConfigs) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const TransientCheckpoint cp = make_settled_checkpoint(p, 60.0);
  EXPECT_NEAR(cp.t, 60.0 * p.period(), 1e-9);

  // Restore into a sim with a different recording grid and modulation.
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.2 * kW0;
  TransientConfig cfg;
  cfg.sample_interval = p.period() / 16.0;
  PllTransientSim sim(p, mod, cfg);
  sim.restore(cp);
  sim.clear_samples();
  sim.run_periods(10.0);
  // Still locked and recording on the new grid from t onward.
  ASSERT_FALSE(sim.sample_times().empty());
  EXPECT_GT(sim.sample_times().front(), cp.t);
  EXPECT_LT(std::abs(sim.theta()), 0.01 * p.period());
}

TEST(ProbeOptionsValidation, RejectsOutOfRangeFields) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<double> omegas{0.2 * kW0};

  ProbeOptions bad = {};
  bad.amplitude_fraction = 0.0;
  EXPECT_THROW(validate_probe_options(bad), std::invalid_argument);
  EXPECT_THROW(measure_baseband_transfer(p, 0.2 * kW0, bad),
               std::invalid_argument);
  EXPECT_THROW(measure_baseband_transfer_many(p, omegas, bad),
               std::invalid_argument);

  bad = {};
  bad.settle_periods = -1.0;
  EXPECT_THROW(measure_baseband_transfer(p, 0.2 * kW0, bad),
               std::invalid_argument);

  bad = {};
  bad.measure_periods = 0;
  EXPECT_THROW(measure_band_transfer(p, 1, 0.2 * kW0, bad),
               std::invalid_argument);

  bad = {};
  bad.samples_per_period = 7;
  EXPECT_THROW(measure_band_transfer_many(p, {{1, 0.2 * kW0}}, bad),
               std::invalid_argument);

  bad = {};
  bad.warm_resettle_periods = -0.5;
  EXPECT_THROW(measure_baseband_transfer(p, 0.2 * kW0, bad),
               std::invalid_argument);

  EXPECT_NO_THROW(validate_probe_options(ProbeOptions{}));
}

TEST(WarmStart, AgreesWithColdWithinSmallSignalTolerance) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<double> omegas{0.12 * kW0, 0.3 * kW0};
  ProbeOptions cold;
  cold.settle_periods = 150.0;
  cold.measure_periods = 12;
  ProbeOptions warm = cold;
  warm.warm_start = true;

  const auto mc = measure_baseband_transfer_many(p, omegas, cold);
  const auto mw = measure_baseband_transfer_many(p, omegas, warm);
  ASSERT_EQ(mc.size(), mw.size());
  for (std::size_t i = 0; i < mc.size(); ++i) {
    EXPECT_LT(std::abs(mw[i].value - mc[i].value) / std::abs(mc[i].value),
              1e-2)
        << "w_m/w0 = " << omegas[i] / kW0;
    // Warm runs must actually be cheaper in simulated time per point.
    EXPECT_LT(mw[i].simulated_time - 150.0,
              mc[i].simulated_time);
  }
}

TEST(WarmStart, DeterministicAcrossPoolWidths) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<double> omegas{0.15 * kW0, 0.25 * kW0, 0.4 * kW0};
  ProbeOptions warm;
  warm.settle_periods = 80.0;
  warm.measure_periods = 8;
  warm.warm_start = true;

  ThreadPool one(1);
  ThreadPool four(4);
  const auto a = measure_baseband_transfer_many(p, omegas, warm, one);
  const auto b = measure_baseband_transfer_many(p, omegas, warm, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value.real(), b[i].value.real());
    EXPECT_EQ(a[i].value.imag(), b[i].value.imag());
    EXPECT_EQ(a[i].events, b[i].events);
  }
}

TEST(MonteCarlo, StreamSeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(mc_stream_seed(7, 0), mc_stream_seed(7, 0));
  EXPECT_NE(mc_stream_seed(7, 0), mc_stream_seed(7, 1));
  EXPECT_NE(mc_stream_seed(7, 0), mc_stream_seed(8, 0));
  // base+index collisions must not alias streams: (7, 1) vs (8, 0).
  EXPECT_NE(mc_stream_seed(7, 1), mc_stream_seed(8, 0));
}

TEST(MonteCarlo, MapIsBitIdenticalAcrossPoolWidths) {
  ThreadPool one(1);
  ThreadPool four(4);
  auto fn = [](std::size_t i, std::uint64_t seed) {
    return static_cast<double>(seed % 1000003) +
           static_cast<double>(i) * 1e-3;
  };
  const auto a = monte_carlo_map<double>(64, 99, fn, one);
  const auto b = monte_carlo_map<double>(64, 99, fn, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(MonteCarlo, NoiseEnsembleReproducibleAndNonDegenerate) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  NoiseEnsembleOptions opts;
  opts.settle_periods = 20.0;
  opts.measure_periods = 60.0;
  const double sigma = 1e-4 * p.icp;
  const auto a = run_noise_ensemble(p, sigma, 1234, 3, opts);
  const auto b = run_noise_ensemble(p, sigma, 1234, 3, opts);
  ASSERT_EQ(a.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].theta_rms, b[i].theta_rms);  // bit-reproducible
    EXPECT_GT(a[i].theta_rms, 0.0);
    EXPECT_GE(a[i].theta_peak, a[i].theta_rms);
    EXPECT_GT(a[i].events, 100u);
  }
  // Independent streams: distinct runs see distinct noise paths.
  EXPECT_NE(a[0].theta_rms, a[1].theta_rms);
}

TEST(MonteCarlo, AcquisitionBatchMatchesSerialLoop) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  AcquisitionOptions opts;
  opts.max_periods = 600.0;
  const std::vector<AcquisitionCase> cases{{p, 0.005}, {p, 0.02}};
  const std::vector<double> batch = acquisition_periods(cases, opts);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    // Serial re-run of the same experiment.
    PllTransientSim sim(p);
    sim.set_recording(false);
    sim.set_initial_frequency_offset(cases[i].rel_offset);
    const double tol = opts.tol_fraction * p.period();
    double elapsed = 0.0, locked = -1.0;
    while (elapsed < opts.max_periods) {
      sim.run_periods(opts.chunk_periods);
      elapsed += opts.chunk_periods;
      if (sim.is_locked(tol)) {
        locked = elapsed;
        break;
      }
    }
    EXPECT_EQ(batch[i], locked);
    EXPECT_GT(batch[i], 0.0);  // both offsets must actually lock
  }
  // Larger offset takes at least as long.
  EXPECT_GE(batch[1], batch[0]);
}

TEST(MonteCarlo, StepResponseBatchMatchesSingleRun) {
  const double delta = 1e-3;
  const std::size_t count = 80;
  const std::vector<PllParameters> loops{
      make_typical_loop(0.1 * kW0, kW0),
      make_typical_loop(0.2 * kW0, kW0)};
  const auto batch = step_response_batch(loops, count, delta);
  ASSERT_EQ(batch.size(), 2u);
  for (std::size_t k = 0; k < loops.size(); ++k) {
    TransientConfig cfg;
    cfg.sample_interval = loops[k].period();
    PllTransientSim sim(loops[k], {}, cfg);
    sim.set_initial_theta(-delta);
    sim.run_periods(static_cast<double>(count) + 2.0);
    ASSERT_GE(batch[k].size(), 2u);
    EXPECT_EQ(batch[k][0], 0.0);
    for (std::size_t n = 1; n < batch[k].size(); ++n) {
      EXPECT_EQ(batch[k][n], sim.theta_samples()[n - 1] / delta + 1.0);
    }
    // A locked loop's normalized step response ends near 1.
    EXPECT_NEAR(batch[k].back(), 1.0, 0.05);
  }
}

}  // namespace
}  // namespace htmpll

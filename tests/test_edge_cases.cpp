// Edge-of-domain and convergence behavior: DC and Nyquist limits,
// off-axis evaluation, folding depth, truncation sweeps across PFD
// shapes and ISFs.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/stability.hpp"
#include "htmpll/noise/noise.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

TEST(EdgeCases, TrackingIsPerfectAtDcLimit) {
  // Type-2 loop: H_00 -> 1 and the error transfer -> 0 as w -> 0,
  // quadratically (two integrators).
  const SamplingPllModel m(make_typical_loop(0.1 * kW0, kW0));
  const double e3 = std::abs(m.baseband_error_transfer(j * (1e-3 * kW0)));
  const double e4 = std::abs(m.baseband_error_transfer(j * (1e-4 * kW0)));
  EXPECT_LT(e3, 1e-3);  // |E| ~ w^2/K' ~ 4e-4 at w = 0.01 w_UG
  EXPECT_NEAR(e3 / e4, 100.0, 5.0);  // ~w^2 scaling
}

TEST(EdgeCases, LambdaFiniteAndRealAtExactNyquist) {
  const SamplingPllModel m(make_typical_loop(0.2 * kW0, kW0));
  const cplx l = m.lambda(j * (0.5 * kW0));
  EXPECT_TRUE(std::isfinite(l.real()));
  EXPECT_NEAR(l.imag(), 0.0, 1e-9 * std::abs(l));
}

TEST(EdgeCases, OffAxisLambdaMatchesAdaptive) {
  // The pole search evaluates lambda off the jw axis; the coth closed
  // form and the tail-corrected sum must agree there too.
  const SamplingPllModel m(make_typical_loop(0.15 * kW0, kW0));
  for (const cplx s : {cplx{-0.1 * kW0, 0.3 * kW0},
                       cplx{0.05 * kW0, 0.45 * kW0},
                       cplx{-0.3 * kW0, 0.1 * kW0}}) {
    const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
    const cplx adaptive = m.lambda(s, LambdaMethod::kAdaptive, 0);
    EXPECT_NEAR(std::abs(exact - adaptive) / std::abs(exact), 0.0, 1e-7);
  }
}

struct TruncCase {
  PfdShape shape;
  bool lptv;
};

class TruncationSweep : public ::testing::TestWithParam<TruncCase> {};

TEST_P(TruncationSweep, ClosedLoopHtmConvergesMonotonically) {
  const TruncCase c = GetParam();
  SamplingPllOptions opts;
  opts.pfd_shape = c.shape;
  const HarmonicCoefficients isf =
      c.lptv ? HarmonicCoefficients::real_waveform(1.0, {cplx{0.2}})
             : HarmonicCoefficients(cplx{1.0});
  const SamplingPllModel m(make_typical_loop(0.15 * kW0, kW0), isf, opts);
  const cplx s = j * (0.19 * kW0);

  // Reference: a much larger truncation.
  const cplx ref = m.closed_loop_htm(s, 512).at(0, 0);
  double prev = 1e300;
  for (int k : {4, 16, 64, 256}) {
    const double err = std::abs(m.closed_loop_htm(s, k).at(0, 0) - ref);
    EXPECT_LT(err, prev * 1.1) << "K = " << k;
    prev = err;
  }
  EXPECT_LT(prev / std::abs(ref), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndIsfs, TruncationSweep,
    ::testing::Values(TruncCase{PfdShape::kImpulse, false},
                      TruncCase{PfdShape::kImpulse, true},
                      TruncCase{PfdShape::kZeroOrderHold, false},
                      TruncCase{PfdShape::kZeroOrderHold, true}));

TEST(EdgeCases, NoiseFoldingConvergesWithHarmonicDepth) {
  const SamplingPllModel m(make_typical_loop(0.15 * kW0, kW0));
  const PowerLawPsd s_vco{0.0, 0.0, 1e-8};
  const double w = 0.1 * kW0;
  const double deep =
      NoiseAnalysis(m, 64).output_psd_from_vco(w, s_vco);
  double prev_err = 1e300;
  for (int fold : {2, 8, 32}) {
    const double v = NoiseAnalysis(m, fold).output_psd_from_vco(w, s_vco);
    const double err = std::abs(v - deep) / deep;
    EXPECT_LT(err, prev_err * 1.01);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-2);
}

TEST(EdgeCases, EffectiveMarginsWorkAtVeryLowRatio) {
  const SamplingPllModel m(make_typical_loop(5e-4 * kW0, kW0));
  const EffectiveMargins em = effective_margins(m);
  ASSERT_TRUE(em.lti_found && em.eff_found);
  EXPECT_NEAR(em.eff_crossover / em.lti_crossover, 1.0, 1e-3);
  EXPECT_NEAR(em.eff_phase_margin_deg, em.lti_phase_margin_deg, 0.1);
}

TEST(EdgeCases, ClosedLoopElementsConjugateSymmetric) {
  // Real loops: H_{n,0}(-jw) = conj(H_{-n,0}(jw)).
  const SamplingPllModel m(make_typical_loop(0.2 * kW0, kW0));
  const double w = 0.17 * kW0;
  for (int n : {0, 1, 3}) {
    const cplx a = m.closed_loop(n, -j * w);
    const cplx b = std::conj(m.closed_loop(-n, j * w));
    EXPECT_NEAR(std::abs(a - b), 0.0, 1e-10 * std::max(1.0, std::abs(b)))
        << "n = " << n;
  }
}

TEST(EdgeCases, HugeTruncationStaysNumericallySane) {
  const SamplingPllModel m(make_typical_loop(0.1 * kW0, kW0));
  const cplx s = j * (0.08 * kW0);
  const cplx lam = m.lambda(s, LambdaMethod::kTruncated, 20000);
  const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
  EXPECT_NEAR(std::abs(lam - exact) / std::abs(exact), 0.0, 5e-4);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/stability.hpp"
#include "htmpll/timedomain/lptv_vco_sim.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

PllParameters loop(double ratio) { return make_typical_loop(ratio * kW0, kW0); }

IsfWaveform flat_isf(const PllParameters& p) {
  return IsfWaveform(HarmonicCoefficients(cplx{1.0}), p.kvco, p.w0);
}

IsfWaveform wavy_isf(const PllParameters& p, cplx c1) {
  return IsfWaveform(HarmonicCoefficients::real_waveform(1.0, {c1}),
                     p.kvco, p.w0);
}

TEST(IsfWaveformTest, DcOnlyIsConstant) {
  const PllParameters p = loop(0.1);
  const IsfWaveform v = flat_isf(p);
  EXPECT_NEAR(v(0.0), p.kvco, 1e-15);
  EXPECT_NEAR(v(0.37), p.kvco, 1e-15);
}

TEST(IsfWaveformTest, HarmonicWaveformShape) {
  const PllParameters p = loop(0.1);
  // v(t) = kvco (1 + 2*0.25*cos(w0 t)).
  const IsfWaveform v = wavy_isf(p, cplx{0.25});
  EXPECT_NEAR(v(0.0), p.kvco * 1.5, 1e-12);
  EXPECT_NEAR(v(0.5), p.kvco * 0.5, 1e-12);  // cos(pi) = -1 at T/2
  // Periodicity.
  EXPECT_NEAR(v(0.3), v(1.3), 1e-12);
}

TEST(IsfWaveformTest, RejectsNonRealWaveform) {
  // Asymmetric coefficients (not conjugate-symmetric).
  CVector c{cplx{0.5, 0.1}, cplx{1.0}, cplx{0.2, 0.3}};
  EXPECT_THROW(IsfWaveform(HarmonicCoefficients(std::move(c)), 1.0, 1.0),
               std::invalid_argument);
}

TEST(LptvSim, QuiescentWhenLocked) {
  const PllParameters p = loop(0.15);
  LptvPllTransientSim sim(p, flat_isf(p));
  sim.run_periods(40.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-9);
  EXPECT_GE(sim.event_count(), 79u);
}

TEST(LptvSim, MatchesExactSimulatorForTiVco) {
  // With a DC-only ISF the RK4 time-marcher must agree with the exact
  // event-driven simulator.
  const PllParameters p = loop(0.15);
  ReferenceModulation mod;
  mod.amplitude = 1e-3;
  mod.omega = 0.07 * kW0;

  LptvTransientConfig cfg;
  cfg.substeps_per_period = 128;
  LptvPllTransientSim rk(p, flat_isf(p), mod, cfg);
  PllTransientSim exact(p, mod);
  rk.run_periods(120.0);
  exact.run_until(rk.time());

  ASSERT_FALSE(rk.theta_samples().empty());
  // Compare the last recorded samples (same uniform grid T/8).
  const auto& t1 = rk.sample_times();
  const auto& t2 = exact.sample_times();
  const std::size_t n = std::min(t1.size(), t2.size());
  ASSERT_GT(n, 100u);
  double worst = 0.0;
  for (std::size_t i = n - 64; i < n; ++i) {
    EXPECT_NEAR(t1[i], t2[i], 1e-12);
    worst = std::max(worst,
                     std::abs(rk.theta_samples()[i] -
                              exact.theta_samples()[i]));
  }
  EXPECT_LT(worst, 2e-6);  // vs. modulation response amplitude ~1e-3
}

TEST(LptvSim, ProbeMatchesHtmModelTiCase) {
  const PllParameters p = loop(0.15);
  const SamplingPllModel model(p);
  ProbeOptions opts;
  opts.settle_periods = 250.0;
  opts.measure_periods = 16;
  const double wm = 0.1 * kW0;
  const TransferMeasurement meas =
      measure_baseband_transfer_lptv(p, flat_isf(p), wm, opts);
  const cplx predicted = model.baseband_transfer(j * wm);
  EXPECT_NEAR(std::abs(meas.value - predicted) / std::abs(predicted), 0.0,
              0.02);
}

TEST(LptvSim, ProbeMatchesHtmModelLptvCase) {
  // The headline LPTV validation: a VCO whose sensitivity swings +-40%
  // over the cycle.  The HTM model with the same ISF must predict the
  // simulated response; the TI model must not (when the difference is
  // resolvable).
  const PllParameters p = loop(0.15);
  const cplx c1{0.2, 0.0};
  const HarmonicCoefficients isf_coeffs =
      HarmonicCoefficients::real_waveform(1.0, {c1});
  const SamplingPllModel lptv_model(p, isf_coeffs);
  const SamplingPllModel ti_model(p);

  ProbeOptions opts;
  opts.settle_periods = 300.0;
  opts.measure_periods = 20;
  const double wm = 0.12 * kW0;
  const TransferMeasurement meas = measure_baseband_transfer_lptv(
      p, IsfWaveform(isf_coeffs, p.kvco, p.w0), wm, opts);

  const cplx lptv_pred = lptv_model.baseband_transfer(j * wm);
  const cplx ti_pred = ti_model.baseband_transfer(j * wm);
  const double err_lptv =
      std::abs(meas.value - lptv_pred) / std::abs(lptv_pred);
  EXPECT_LT(err_lptv, 0.03);
  // The ISF harmonic changes the response; the LPTV model must be the
  // better predictor.
  const double err_ti = std::abs(meas.value - ti_pred) / std::abs(ti_pred);
  EXPECT_LT(err_lptv, err_ti);
}

TEST(LptvSim, IsfRippleShiftsEffectiveMargins) {
  // The stability machinery runs unchanged on the LPTV lambda: a strong
  // ISF ripple measurably moves the effective margins relative to TI.
  const PllParameters p = loop(0.2);
  const SamplingPllModel ti(p);
  const SamplingPllModel lptv(
      p, HarmonicCoefficients::real_waveform(1.0, {cplx{0.3}}));
  const EffectiveMargins a = effective_margins(ti);
  const EffectiveMargins b = effective_margins(lptv);
  ASSERT_TRUE(a.eff_found && b.eff_found);
  EXPECT_GT(std::abs(a.eff_phase_margin_deg - b.eff_phase_margin_deg),
            0.05);
  // Half-rate criterion still real-valued for a real ISF.
  const cplx l = lptv.lambda(cplx{0.0, 0.5 * kW0});
  EXPECT_NEAR(l.imag(), 0.0, 1e-9 * std::abs(l));
}

TEST(LptvSim, ValidatesConfiguration) {
  const PllParameters p = loop(0.1);
  LptvTransientConfig cfg;
  cfg.substeps_per_period = 4;
  EXPECT_THROW(LptvPllTransientSim(p, flat_isf(p), {}, cfg),
               std::invalid_argument);
  ReferenceModulation mod;
  mod.amplitude = 0.3;
  EXPECT_THROW(LptvPllTransientSim(p, flat_isf(p), mod),
               std::invalid_argument);
}

TEST(LptvSim, RecordingControls) {
  const PllParameters p = loop(0.1);
  LptvPllTransientSim sim(p, flat_isf(p));
  sim.set_recording(false);
  sim.run_periods(5.0);
  EXPECT_TRUE(sim.sample_times().empty());
  sim.set_recording(true);
  sim.run_periods(5.0);
  EXPECT_FALSE(sim.sample_times().empty());
  sim.clear_samples();
  EXPECT_TRUE(sim.sample_times().empty());
}

}  // namespace
}  // namespace htmpll

// Tests for the parallel sweep engine: thread-pool semantics
// (coverage, determinism, exception propagation, nesting), the
// HTMPLL_THREADS configuration, and exact agreement between the
// batched *_grid model APIs and their scalar counterparts for every
// lambda method and PFD shape.
//
// Built as its own executable so it can also run under
// -DHTMPLL_SANITIZE=thread, where the whole suite would be too slow.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {
namespace {

// A deliberately order-sensitive float computation: if two indices ever
// shared an accumulator, or an index ran twice, the bits would differ.
double heavy(std::size_t i) {
  double acc = static_cast<double>(i) + 0.5;
  for (int k = 0; k < 50; ++k) {
    acc = std::sin(acc) + std::sqrt(acc + static_cast<double>(k));
  }
  return acc;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t width : {1u, 2u, 7u}) {
    ThreadPool pool(width);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(), 3, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " width " << width;
    }
  }
}

TEST(ThreadPool, BitIdenticalAcrossPoolSizes) {
  const std::size_t n = 500;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i) reference[i] = heavy(i);

  for (std::size_t width : {1u, 2u, 7u}) {
    ThreadPool pool(width);
    for (std::size_t grain : {1u, 4u, 64u}) {
      std::vector<double> out(n);
      pool.parallel_for(n, grain, [&](std::size_t i) { out[i] = heavy(i); });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], reference[i])
            << "i=" << i << " width=" << width << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPool, PropagatesFirstExceptionFromWorkers) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000, 1,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(100, 1, [](std::size_t) {
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(100, 1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<double> out(64);
  pool.parallel_for(out.size(), 1, [&](std::size_t i) {
    double inner = 0.0;
    // A nested parallel_for on the same pool must not deadlock; it runs
    // inline on whichever thread is executing this chunk.
    pool.parallel_for(10, 1, [&](std::size_t k) {
      inner += static_cast<double>(k);
    });
    out[i] = inner;
  });
  for (double v : out) EXPECT_EQ(v, 45.0);
}

TEST(ThreadPool, RejectsZeroGrainAndAcceptsEmptyRange) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10, 0, [](std::size_t) {}),
               std::invalid_argument);
  EXPECT_NO_THROW(pool.parallel_for(0, 1, [](std::size_t) {
    throw std::runtime_error("never called");
  }));
}

TEST(ThreadPool, ConfiguredThreadCountParsesEnvironment) {
  const char* saved = std::getenv("HTMPLL_THREADS");
  const std::string restore = saved ? saved : "";

  ::setenv("HTMPLL_THREADS", "1", 1);
  EXPECT_EQ(configured_thread_count(), 1u);
  ::setenv("HTMPLL_THREADS", "7", 1);
  EXPECT_EQ(configured_thread_count(), 7u);
  ::setenv("HTMPLL_THREADS", "9999", 1);
  EXPECT_EQ(configured_thread_count(), 256u);  // clamped

  // Invalid values fall back to hardware concurrency.
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : hw;
  ::setenv("HTMPLL_THREADS", "0", 1);
  EXPECT_EQ(configured_thread_count(), fallback);
  ::setenv("HTMPLL_THREADS", "abc", 1);
  EXPECT_EQ(configured_thread_count(), fallback);
  ::unsetenv("HTMPLL_THREADS");
  EXPECT_EQ(configured_thread_count(), fallback);

  if (saved) {
    ::setenv("HTMPLL_THREADS", restore.c_str(), 1);
  } else {
    ::unsetenv("HTMPLL_THREADS");
  }
}

TEST(Sweep, ParallelMapPreservesOrder) {
  ThreadPool pool(5);
  const auto out = parallel_map<double>(pool, 300, [](std::size_t i) {
    return heavy(i);
  });
  ASSERT_EQ(out.size(), 300u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], heavy(i));
  }
}

TEST(Sweep, RunnerMatchesSerialBitwise) {
  const auto eval = [](cplx s) {
    return (s + cplx{1.0, 0.5}) / (s * s + cplx{2.0});
  };
  const std::vector<double> w = logspace(1e-2, 1e2, 333);
  const CVector s_grid = jw_grid(w);

  ThreadPool serial(1);
  ThreadPool wide(7);
  const CVector a = SweepRunner(serial).run(s_grid, eval);
  const CVector b = SweepRunner(wide).run(s_grid, eval);
  const CVector c = SweepRunner(wide).run_jw(w, eval);
  ASSERT_EQ(a.size(), s_grid.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(a[i], c[i]);
    EXPECT_EQ(a[i], eval(s_grid[i]));
  }
}

TEST(Sweep, JwGrid) {
  const std::vector<double> w = {0.5, 2.0, 7.5};
  const CVector s = jw_grid(w);
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(s[i], (cplx{0.0, w[i]}));
  }
}

// ---- batched model APIs vs scalar, all methods x shapes ---------------

class GridApiTest
    : public ::testing::TestWithParam<std::tuple<LambdaMethod, PfdShape>> {};

TEST_P(GridApiTest, GridsMatchScalarExactly) {
  const auto [method, shape] = GetParam();
  const double w0 = 2.0 * std::numbers::pi;

  SamplingPllOptions opts;
  opts.lambda_method = method;
  opts.truncation = 12;
  opts.pfd_shape = shape;
  // This suite pins the scalar-forced contract: grid slot i is
  // bit-identical to the point-wise call.  The default eval-plan path
  // has a tolerance contract instead (tests/test_eval_plan.cpp).
  opts.use_eval_plan = false;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0),
                               HarmonicCoefficients(cplx{1.0}), opts);

  const CVector s_grid = jw_grid(logspace(1e-3 * w0, 0.49 * w0, 200));

  const CVector lam = model.lambda_grid(s_grid);
  const CVector h00 = model.baseband_transfer_grid(s_grid);
  const CVector lti = model.lti_baseband_transfer_grid(s_grid);
  const CVector err = model.baseband_error_transfer_grid(s_grid);
  const std::vector<int> bands = {-2, -1, 0, 1, 3};
  const std::vector<CVector> cl = model.closed_loop_grid(bands, s_grid);
  ASSERT_EQ(cl.size(), bands.size());

  for (std::size_t i = 0; i < s_grid.size(); ++i) {
    const cplx s = s_grid[i];
    EXPECT_EQ(lam[i], model.lambda(s)) << "lambda i=" << i;
    EXPECT_EQ(h00[i], model.baseband_transfer(s)) << "h00 i=" << i;
    EXPECT_EQ(lti[i], model.lti_baseband_transfer(s)) << "lti i=" << i;
    EXPECT_EQ(err[i], model.baseband_error_transfer(s)) << "err i=" << i;
    for (std::size_t b = 0; b < bands.size(); ++b) {
      EXPECT_EQ(cl[b][i], model.closed_loop(bands[b], s))
          << "band " << bands[b] << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAndShapes, GridApiTest,
    ::testing::Combine(::testing::Values(LambdaMethod::kExact,
                                         LambdaMethod::kAdaptive,
                                         LambdaMethod::kTruncated),
                       ::testing::Values(PfdShape::kImpulse,
                                         PfdShape::kZeroOrderHold)));

TEST(GridApi, LptvVcoGridsMatchScalar) {
  // Non-trivial ISF exercises the shared shifted-gain table across
  // harmonics and bands.
  const double w0 = 2.0 * std::numbers::pi;
  const HarmonicCoefficients isf =
      HarmonicCoefficients::real_waveform(1.0, {cplx{0.2, 0.1},
                                                cplx{0.05, -0.02}});
  SamplingPllOptions opts;
  opts.lambda_method = LambdaMethod::kTruncated;
  opts.truncation = 10;
  opts.use_eval_plan = false;  // scalar-forced bitwise contract
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0), isf, opts);

  const CVector s_grid = jw_grid(logspace(1e-2 * w0, 0.45 * w0, 60));
  const CVector lam = model.lambda_grid(s_grid);
  const CVector h00 = model.baseband_transfer_grid(s_grid);
  const std::vector<int> bands = {-1, 0, 2};
  const std::vector<CVector> cl = model.closed_loop_grid(bands, s_grid);

  for (std::size_t i = 0; i < s_grid.size(); ++i) {
    EXPECT_EQ(lam[i], model.lambda(s_grid[i]));
    EXPECT_EQ(h00[i], model.baseband_transfer(s_grid[i]));
    for (std::size_t b = 0; b < bands.size(); ++b) {
      EXPECT_EQ(cl[b][i], model.closed_loop(bands[b], s_grid[i]));
    }
  }
}

// ---- grid builder edge cases (sweep inputs) ---------------------------

TEST(GridBuilders, RejectEmptyGrids) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(logspace(1.0, 2.0, 0), std::invalid_argument);
  EXPECT_THROW(geomspace(1.0, 2.0, 0), std::invalid_argument);
}

TEST(GridBuilders, SinglePointReturnsLo) {
  EXPECT_EQ(linspace(3.0, 7.0, 1), std::vector<double>{3.0});
  EXPECT_EQ(logspace(3.0, 7.0, 1), std::vector<double>{3.0});
  EXPECT_EQ(geomspace(3.0, 7.0, 1), std::vector<double>{3.0});
}

TEST(GridBuilders, GeomspaceEndpointsBitExact) {
  const double lo = 0.1, hi = 730.0;  // neither is exactly representable fun
  const auto g = geomspace(lo, hi, 57);
  ASSERT_EQ(g.size(), 57u);
  EXPECT_EQ(g.front(), lo);
  EXPECT_EQ(g.back(), hi);
  for (std::size_t i = 1; i + 1 < g.size(); ++i) {
    EXPECT_NEAR(g[i + 1] / g[i], g[1] / g[0], 1e-12);
  }
}

TEST(GridBuilders, GeomspaceDescendingAndNegative) {
  const auto down = geomspace(100.0, 1.0, 5);
  EXPECT_EQ(down.front(), 100.0);
  EXPECT_EQ(down.back(), 1.0);
  EXPECT_GT(down[1], down[2]);

  const auto neg = geomspace(-1.0, -16.0, 5);
  EXPECT_EQ(neg.front(), -1.0);
  EXPECT_EQ(neg.back(), -16.0);
  EXPECT_NEAR(neg[2], -4.0, 1e-12);
}

TEST(GridBuilders, GeomspaceRejectsZeroOrMixedSign) {
  EXPECT_THROW(geomspace(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(geomspace(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(geomspace(-1.0, 1.0, 4), std::invalid_argument);
}

TEST(GridBuilders, LogspaceEndpointsBitExact) {
  const auto g = logspace(0.3, 97.0, 41);
  EXPECT_EQ(g.front(), 0.3);
  EXPECT_EQ(g.back(), 97.0);
}

}  // namespace
}  // namespace htmpll

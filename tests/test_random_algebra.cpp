// Randomized algebraic identities across the math substrate: each TEST_P
// runs a batch of trials with seeded RNGs, exercising the polynomial /
// rational / matrix layers on inputs no hand-written case would pick.
#include <random>

#include <gtest/gtest.h>

#include "htmpll/linalg/expm.hpp"
#include "htmpll/linalg/lu.hpp"
#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {
namespace {

Polynomial random_poly(std::mt19937& rng, int max_degree) {
  std::uniform_int_distribution<int> deg(0, max_degree);
  std::uniform_real_distribution<double> c(-2.0, 2.0);
  CVector coeffs(static_cast<std::size_t>(deg(rng)) + 1);
  for (cplx& v : coeffs) v = cplx{c(rng), c(rng)};
  if (coeffs.back() == cplx{0.0}) coeffs.back() = cplx{1.0};
  return Polynomial(coeffs);
}

cplx random_point(std::mt19937& rng) {
  std::uniform_real_distribution<double> c(-2.0, 2.0);
  return cplx{c(rng), c(rng)};
}

class RandomAlgebra : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomAlgebra, PolynomialRingAxioms) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const Polynomial a = random_poly(rng, 6);
    const Polynomial b = random_poly(rng, 6);
    const Polynomial c = random_poly(rng, 6);
    const cplx s = random_point(rng);
    // Distributivity and associativity at a random evaluation point.
    const cplx lhs = ((a + b) * c)(s);
    const cplx rhs = (a * c + b * c)(s);
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0,
                1e-9 * std::max(1.0, std::abs(lhs)));
    const cplx lhs2 = ((a * b) * c)(s);
    const cplx rhs2 = (a * (b * c))(s);
    EXPECT_NEAR(std::abs(lhs2 - rhs2), 0.0,
                1e-9 * std::max(1.0, std::abs(lhs2)));
  }
}

TEST_P(RandomAlgebra, DivmodReconstruction) {
  std::mt19937 rng(GetParam() + 1000u);
  for (int trial = 0; trial < 8; ++trial) {
    const Polynomial n = random_poly(rng, 8);
    const Polynomial d = random_poly(rng, 4);
    if (d.is_zero()) continue;
    const auto [q, r] = n.divmod(d);
    const cplx s = random_point(rng);
    const cplx back = (q * d + r)(s);
    EXPECT_NEAR(std::abs(back - n(s)), 0.0,
                1e-8 * std::max(1.0, std::abs(n(s))));
    if (!q.is_zero() && d.degree() > 0) EXPECT_LT(r.degree(), d.degree());
  }
}

TEST_P(RandomAlgebra, DerivativeOfProductRule) {
  std::mt19937 rng(GetParam() + 2000u);
  for (int trial = 0; trial < 8; ++trial) {
    const Polynomial a = random_poly(rng, 5);
    const Polynomial b = random_poly(rng, 5);
    const Polynomial lhs = (a * b).derivative();
    const Polynomial rhs = a.derivative() * b + a * b.derivative();
    EXPECT_TRUE(lhs.approx_equal(rhs, 1e-9));
  }
}

TEST_P(RandomAlgebra, ShiftComposesWithScale) {
  std::mt19937 rng(GetParam() + 3000u);
  for (int trial = 0; trial < 6; ++trial) {
    const Polynomial p = random_poly(rng, 6);
    const cplx shift = random_point(rng);
    const cplx alpha = random_point(rng) + cplx{2.5, 0.0};  // nonzero
    // p(alpha s + shift) built two ways.
    const Polynomial way1 = p.shifted_argument(shift).scaled_argument(alpha);
    const cplx s = random_point(rng);
    EXPECT_NEAR(std::abs(way1(s) - p(alpha * s + shift)), 0.0,
                1e-7 * std::max(1.0, std::abs(p(alpha * s + shift))));
  }
}

TEST_P(RandomAlgebra, RationalFieldOperations) {
  std::mt19937 rng(GetParam() + 4000u);
  for (int trial = 0; trial < 6; ++trial) {
    const RationalFunction f(random_poly(rng, 4), random_poly(rng, 4));
    const RationalFunction g(random_poly(rng, 4), random_poly(rng, 4));
    if (f.is_zero() || g.is_zero()) continue;
    const cplx s = random_point(rng);
    // (f/g)*g == f at a random point (avoiding poles with overwhelming
    // probability).
    const cplx lhs = ((f / g) * g)(s);
    const cplx rhs = f(s);
    if (!std::isfinite(std::abs(lhs)) || !std::isfinite(std::abs(rhs))) {
      continue;
    }
    EXPECT_NEAR(std::abs(lhs - rhs), 0.0,
                1e-6 * std::max(1.0, std::abs(rhs)));
  }
}

TEST_P(RandomAlgebra, PartialFractionsReproduceRandomStrictlyProper) {
  std::mt19937 rng(GetParam() + 5000u);
  std::uniform_real_distribution<double> re(-3.0, -0.3);
  std::uniform_real_distribution<double> im(-2.0, 2.0);
  for (int trial = 0; trial < 5; ++trial) {
    CVector poles;
    for (int i = 0; i < 4; ++i) poles.push_back(cplx{re(rng), im(rng)});
    bool clustered = false;
    for (int a = 0; a < 4; ++a) {
      for (int b = a + 1; b < 4; ++b) {
        if (std::abs(poles[a] - poles[b]) < 0.05) clustered = true;
      }
    }
    if (clustered) continue;
    const RationalFunction f(random_poly(rng, 3),
                             Polynomial::from_roots(poles));
    const PartialFractions pf(f);
    const cplx s = random_point(rng) + cplx{3.0, 0.0};  // away from poles
    EXPECT_NEAR(std::abs(pf(s) - f(s)), 0.0,
                1e-6 * std::max(1.0, std::abs(f(s))));
  }
}

TEST_P(RandomAlgebra, ExpmInverseIsExpOfNegative) {
  std::mt19937 rng(GetParam() + 6000u);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  for (int trial = 0; trial < 4; ++trial) {
    RMatrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j2 = 0; j2 < 3; ++j2) a(i, j2) = c(rng);
    }
    const RMatrix prod = expm(a) * expm(a * -1.0);
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j2 = 0; j2 < 3; ++j2) {
        EXPECT_NEAR(prod(i, j2), i == j2 ? 1.0 : 0.0, 1e-10);
      }
    }
  }
}

TEST_P(RandomAlgebra, DeterminantIsMultiplicative) {
  std::mt19937 rng(GetParam() + 7000u);
  std::uniform_real_distribution<double> c(-1.0, 1.0);
  for (int trial = 0; trial < 4; ++trial) {
    CMatrix a(4, 4), b(4, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j2 = 0; j2 < 4; ++j2) {
        a(i, j2) = cplx{c(rng), c(rng)};
        b(i, j2) = cplx{c(rng), c(rng)};
      }
      a(i, i) += 2.0;
      b(i, i) += 2.0;
    }
    const cplx da = CLu(a).determinant();
    const cplx db = CLu(b).determinant();
    const cplx dab = CLu(a * b).determinant();
    EXPECT_NEAR(std::abs(dab - da * db), 0.0, 1e-8 * std::abs(dab));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlgebra,
                         ::testing::Values(11u, 23u, 37u, 59u, 83u));

}  // namespace
}  // namespace htmpll

#include <gtest/gtest.h>

#include "htmpll/lti/polynomial.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(Polynomial, EvaluationHorner) {
  // p(s) = 1 + 2s + 3s^2
  const Polynomial p = Polynomial::from_real({1.0, 2.0, 3.0});
  EXPECT_EQ(p.degree(), 2u);
  EXPECT_NEAR(std::abs(p(2.0) - cplx{17.0}), 0.0, 1e-14);
  // p(j) = 1 + 2j - 3 = -2 + 2j
  EXPECT_NEAR(std::abs(p(j) - cplx(-2.0, 2.0)), 0.0, 1e-14);
}

TEST(Polynomial, ZeroAndConstant) {
  const Polynomial z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), 0u);
  const Polynomial c = Polynomial::constant(5.0);
  EXPECT_FALSE(c.is_zero());
  EXPECT_EQ(c(123.0), cplx(5.0));
}

TEST(Polynomial, TrimRemovesTrailingNoise) {
  const Polynomial p(CVector{1.0, 1.0, cplx{1e-300}});
  EXPECT_EQ(p.degree(), 1u);
}

TEST(Polynomial, ArithmeticIdentities) {
  const Polynomial p = Polynomial::from_real({1.0, 2.0});
  const Polynomial q = Polynomial::from_real({0.0, -2.0, 1.0});
  const Polynomial sum = p + q;
  EXPECT_NEAR(std::abs(sum(3.0) - (p(3.0) + q(3.0))), 0.0, 1e-12);
  const Polynomial prod = p * q;
  EXPECT_NEAR(std::abs(prod(1.5) - p(1.5) * q(1.5)), 0.0, 1e-12);
  const Polynomial dif = prod - p * q;
  EXPECT_TRUE(dif.is_zero());
}

TEST(Polynomial, MultiplicationByZeroGivesZero) {
  const Polynomial p = Polynomial::from_real({1.0, 2.0, 3.0});
  EXPECT_TRUE((p * Polynomial()).is_zero());
}

TEST(Polynomial, Derivative) {
  // d/ds (1 + 2s + 3s^2 + 4s^3) = 2 + 6s + 12s^2
  const Polynomial p = Polynomial::from_real({1.0, 2.0, 3.0, 4.0});
  const Polynomial d = p.derivative();
  EXPECT_EQ(d.degree(), 2u);
  EXPECT_EQ(d.coefficient(0), cplx(2.0));
  EXPECT_EQ(d.coefficient(1), cplx(6.0));
  EXPECT_EQ(d.coefficient(2), cplx(12.0));
  EXPECT_NEAR(std::abs(p.derivative_at(2.0, 2) - cplx{6.0 + 48.0}), 0.0,
              1e-12);
}

TEST(Polynomial, FromRootsExpandsCorrectly) {
  // (s-1)(s+2) = s^2 + s - 2
  const Polynomial p = Polynomial::from_roots({cplx{1.0}, cplx{-2.0}});
  EXPECT_TRUE(p.approx_equal(Polynomial::from_real({-2.0, 1.0, 1.0})));
}

TEST(Polynomial, DivmodRoundTrip) {
  const Polynomial n = Polynomial::from_real({1.0, 0.0, 2.0, 1.0});
  const Polynomial d = Polynomial::from_real({1.0, 1.0});
  const auto [q, r] = n.divmod(d);
  EXPECT_LT(r.degree(), d.degree());
  EXPECT_TRUE((q * d + r).approx_equal(n));
}

TEST(Polynomial, DivmodByHigherDegree) {
  const Polynomial n = Polynomial::from_real({1.0, 1.0});
  const Polynomial d = Polynomial::from_real({1.0, 0.0, 1.0});
  const auto [q, r] = n.divmod(d);
  EXPECT_TRUE(q.is_zero());
  EXPECT_TRUE(r.approx_equal(n));
}

TEST(Polynomial, DivisionByZeroThrows) {
  const Polynomial p = Polynomial::from_real({1.0, 1.0});
  EXPECT_THROW(p.divmod(Polynomial()), std::invalid_argument);
}

TEST(Polynomial, ShiftedArgumentMatchesDirectEvaluation) {
  const Polynomial p = Polynomial::from_real({1.0, -2.0, 0.5, 3.0});
  const cplx shift{0.7, -1.3};
  const Polynomial q = p.shifted_argument(shift);
  for (const cplx s : {cplx{0.0}, cplx{1.0, 2.0}, cplx{-3.0, 0.1}}) {
    EXPECT_NEAR(std::abs(q(s) - p(s + shift)), 0.0, 1e-10);
  }
}

TEST(Polynomial, ScaledArgumentMatchesDirectEvaluation) {
  const Polynomial p = Polynomial::from_real({2.0, 1.0, -1.0});
  const cplx alpha{2.0, 0.5};
  const Polynomial q = p.scaled_argument(alpha);
  for (const cplx s : {cplx{1.0}, cplx{0.0, 1.0}}) {
    EXPECT_NEAR(std::abs(q(s) - p(alpha * s)), 0.0, 1e-12);
  }
}

TEST(Polynomial, IsRealDetectsComplexCoefficients) {
  EXPECT_TRUE(Polynomial::from_real({1.0, 2.0}).is_real());
  EXPECT_FALSE(Polynomial(CVector{j, cplx{1.0}}).is_real());
}

TEST(Polynomial, ToStringSmoke) {
  const Polynomial p = Polynomial::from_real({1.0, 0.0, 2.0});
  const std::string s = p.to_string();
  EXPECT_NE(s.find("s^2"), std::string::npos);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/stability.hpp"
#include "htmpll/lti/delay.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

TEST(PadeDelay, ZeroDelayIsUnity) {
  const RationalFunction d = pade_delay(0.0);
  EXPECT_NEAR(std::abs(d(j * 123.0) - cplx{1.0}), 0.0, 1e-15);
}

TEST(PadeDelay, IsAllPass) {
  const RationalFunction d = pade_delay(0.3, 3);
  for (double w : {0.1, 1.0, 5.0, 20.0}) {
    EXPECT_NEAR(std::abs(d(j * w)), 1.0, 1e-12) << "w = " << w;
  }
}

TEST(PadeDelay, MatchesExactPhaseInBand) {
  const double tau = 0.2;
  const RationalFunction d = pade_delay(tau, 3);
  for (double w : {0.5, 2.0, 5.0}) {  // |w tau| up to 1
    const cplx exact = std::exp(-j * w * tau);
    EXPECT_NEAR(std::abs(d(j * w) - exact), 0.0, 2e-5) << "w = " << w;
  }
}

TEST(PadeDelay, ErrorFallsWithOrder) {
  const double tau = 0.5, w_max = 6.0;  // w tau up to 3
  double prev = 1e300;
  for (int order : {1, 2, 3, 4, 5}) {
    const double err = pade_delay_error(tau, order, w_max);
    EXPECT_LT(err, prev);
    prev = err;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(PadeDelay, RejectsBadArguments) {
  EXPECT_THROW(pade_delay(-1.0), std::invalid_argument);
  EXPECT_THROW(pade_delay(1.0, 0), std::invalid_argument);
  EXPECT_THROW(pade_delay(1.0, 6), std::invalid_argument);
}

TEST(DelayedLoop, ExtraDynamicsEnterTheModel) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double tau = 0.05;  // 5% of a period
  const SamplingPllModel plain(p);
  const SamplingPllModel delayed(p, HarmonicCoefficients(cplx{1.0}), {},
                                 pade_delay(tau, 3));
  const cplx s = j * (0.1 * kW0);
  const cplx ratio = delayed.open_loop_gain()(s) / plain.open_loop_gain()(s);
  // The delayed loop's A picks up e^{-s tau}: unit magnitude, w tau lag.
  EXPECT_NEAR(std::abs(ratio), 1.0, 1e-9);
  EXPECT_NEAR(std::arg(ratio), -0.1 * kW0 * tau, 1e-6);
}

TEST(DelayedLoop, DelayErodesEffectiveMargin) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const SamplingPllModel plain(p);
  const EffectiveMargins m0 = effective_margins(plain);
  ASSERT_TRUE(m0.eff_found);
  double prev = m0.eff_phase_margin_deg;
  for (double tau_frac : {0.02, 0.05, 0.1}) {
    const SamplingPllModel delayed(
        p, HarmonicCoefficients(cplx{1.0}), {},
        pade_delay(tau_frac * p.period(), 3));
    const EffectiveMargins m = effective_margins(delayed);
    ASSERT_TRUE(m.eff_found) << "tau " << tau_frac;
    EXPECT_LT(m.eff_phase_margin_deg, prev);
    prev = m.eff_phase_margin_deg;
  }
}

TEST(DelayedLoop, DelayPenaltyDiffersFromLtiPrediction) {
  // A dead time does NOT act on the sampled loop the way LTI analysis
  // books it: the aliased terms A(s + j m w0) e^{-(s + j m w0) tau}
  // each pick up an extra rotation e^{-j m w0 tau}, so the effective
  // margin can move very differently from (even opposite to) the LTI
  // margin.  The honest claim: LTI analysis mispredicts the delay
  // penalty of a fast sampled loop by whole degrees.
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const double tau = 0.05 * p.period();
  const SamplingPllModel plain(p);
  const SamplingPllModel delayed(p, HarmonicCoefficients(cplx{1.0}), {},
                                 pade_delay(tau, 3));
  const EffectiveMargins a = effective_margins(plain);
  const EffectiveMargins b = effective_margins(delayed);
  ASSERT_TRUE(a.eff_found && b.eff_found);
  const double lti_loss = a.lti_phase_margin_deg - b.lti_phase_margin_deg;
  const double eff_loss = a.eff_phase_margin_deg - b.eff_phase_margin_deg;
  EXPECT_GT(lti_loss, 1.0);  // LTI books a real penalty...
  EXPECT_GT(std::abs(eff_loss - lti_loss), 1.0);  // ...and gets it wrong
}

TEST(DelayedLoop, RejectsImproperExtraDynamics) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const RationalFunction differentiator(
      Polynomial::from_real({0.0, 1.0}), Polynomial::constant(1.0));
  EXPECT_THROW(SamplingPllModel(p, HarmonicCoefficients(cplx{1.0}), {},
                                differentiator),
               std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

// Reference-spur model vs the transient simulator with injected
// charge-pump leakage.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/noise/spurs.hpp"
#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

/// Hann-windowed Fourier coefficient of a uniformly sampled record at
/// frequency w (normalized so a pure e^{jwt} component returns its
/// coefficient).
cplx fourier_bin(const std::vector<double>& t, const std::vector<double>& y,
                 double w) {
  cplx acc{0.0};
  double norm = 0.0;
  const std::size_t n = t.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double hann =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                              static_cast<double>(k) /
                              static_cast<double>(n - 1)));
    acc += hann * y[k] * std::exp(cplx{0.0, -w * t[k]});
    norm += hann;
  }
  return acc / norm;
}

TEST(Leakage, HarmonicCoefficients) {
  const ChargePumpLeakage leak{2e-3, 0.25};
  // DC: I * window / T.
  EXPECT_NEAR(leak.harmonic(0, kW0).real(), 2e-3 * 0.25, 1e-15);
  EXPECT_NEAR(leak.harmonic(0, kW0).imag(), 0.0, 1e-18);
  // |i_k| <= i_0 always (rectangular pulse spectrum).
  for (int k = 1; k <= 6; ++k) {
    EXPECT_LE(std::abs(leak.harmonic(k, kW0)),
              leak.harmonic(0, kW0).real() + 1e-15);
  }
  // Conjugate symmetry.
  EXPECT_NEAR(std::abs(leak.harmonic(-2, kW0) -
                       std::conj(leak.harmonic(2, kW0))),
              0.0, 1e-15);
  // Zero window: no disturbance.
  const ChargePumpLeakage none{2e-3, 0.0};
  EXPECT_EQ(none.harmonic(0, kW0), cplx(0.0));
  EXPECT_EQ(none.harmonic(3, kW0), cplx(0.0));
}

TEST(Leakage, ValidatesWindow) {
  const ChargePumpLeakage bad{1e-3, 1.5};  // window > T
  EXPECT_THROW(bad.harmonic(1, kW0), std::invalid_argument);
}

class SpurFixture : public ::testing::Test {
 protected:
  static constexpr double kRatio = 0.1;
  PllParameters params_ = make_typical_loop(kRatio * kW0, kW0);
  SamplingPllModel model_{params_};
  // 5% current mismatch over a 5%-of-T reset window.
  ChargePumpLeakage leak_{0.05 * params_.icp, 0.05};
};

TEST_F(SpurFixture, StaticPhaseOffsetMatchesSimulator) {
  PllTransientSim sim(params_);
  sim.set_leakage(leak_.mismatch_current, leak_.window);
  sim.set_recording(false);
  sim.run_periods(400.0);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(64.0);
  double mean = 0.0;
  for (double th : sim.theta_samples()) mean += th;
  mean /= static_cast<double>(sim.theta_samples().size());
  // Predicted error offset e = theta_ref - theta = -i0 T / Icp, so the
  // VCO phase sits at +i0 T / Icp.
  const double predicted = -static_phase_offset(model_, leak_);
  EXPECT_GT(std::abs(predicted), 1e-4);
  EXPECT_NEAR(mean / predicted, 1.0, 0.02);
}

TEST_F(SpurFixture, SpurMagnitudesMatchSimulator) {
  PllTransientSim sim(params_);
  sim.set_leakage(leak_.mismatch_current, leak_.window);
  sim.set_recording(false);
  sim.run_periods(500.0);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(128.0);

  const auto spurs = reference_spurs(model_, leak_, 2);
  for (const SpurLevel& s : spurs) {
    const cplx measured = fourier_bin(sim.sample_times(),
                                      sim.theta_samples(),
                                      s.harmonic * kW0);
    EXPECT_NEAR(std::abs(measured) / std::abs(s.theta), 1.0, 0.12)
        << "harmonic " << s.harmonic;
  }
}

TEST_F(SpurFixture, SpursScaleLinearlyWithMismatch) {
  const ChargePumpLeakage half{0.5 * leak_.mismatch_current, leak_.window};
  const auto full = reference_spurs(model_, leak_, 3);
  const auto halved = reference_spurs(model_, half, 3);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(std::abs(halved[i].theta) / std::abs(full[i].theta), 0.5,
                1e-12);
  }
}

TEST_F(SpurFixture, ImpulseLikeLeakageCancels) {
  // Shrinking the window at FIXED charge: i_k -> i_0, the compensating
  // pump pulses cancel the leakage spectrum, spurs vanish ~ linearly.
  const double charge = leak_.mismatch_current * leak_.window;
  double prev = 1e300;
  for (double window : {0.05, 0.02, 0.005}) {
    const ChargePumpLeakage l{charge / window, window};
    const auto spurs = reference_spurs(model_, l, 1);
    EXPECT_LT(spurs[0].phase_rad, prev);
    prev = spurs[0].phase_rad;
  }
}

TEST_F(SpurFixture, LevelsReportedInDbc) {
  const auto spurs = reference_spurs(model_, leak_, 4);
  for (const SpurLevel& s : spurs) {
    EXPECT_LT(s.dbc, 0.0);  // small-angle spurs sit below the carrier
    EXPECT_NEAR(s.dbc, 20.0 * std::log10(0.5 * s.phase_rad), 1e-12);
  }
  // The filter's rolloff makes higher spurs weaker for this loop.
  for (std::size_t i = 1; i < spurs.size(); ++i) {
    EXPECT_LT(spurs[i].phase_rad, spurs[i - 1].phase_rad);
  }
}

TEST_F(SpurFixture, ValidatesArguments) {
  EXPECT_THROW(reference_spurs(model_, leak_, 0), std::invalid_argument);
  PllTransientSim sim(params_);
  sim.run_periods(1.0);
  EXPECT_THROW(sim.set_leakage(1e-3, 0.1), std::invalid_argument);
  PllTransientSim sim2(params_);
  EXPECT_THROW(sim2.set_leakage(1e-3, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

// Tests for the generalized PFD shape ("extension to arbitrary PFDs"):
// the zero-order-hold sample-and-hold detector versus the paper's
// impulse-train charge pump.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/pole_search.hpp"
#include "htmpll/core/stability.hpp"
#include "htmpll/timedomain/sample_hold_sim.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

SamplingPllModel zoh_model(double ratio) {
  SamplingPllOptions opts;
  opts.pfd_shape = PfdShape::kZeroOrderHold;
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0),
                          HarmonicCoefficients(cplx{1.0}), opts);
}

SamplingPllModel impulse_model(double ratio) {
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0));
}

TEST(PfdShape, ZohLambdaMatchesTruncatedSum) {
  // The exact (coth + periodic prefactor) evaluation against the raw
  // V~ row sum at high truncation.
  const SamplingPllModel m = zoh_model(0.15);
  const cplx s = j * (0.11 * kW0);
  const cplx exact = m.lambda(s, LambdaMethod::kExact, 0);
  const cplx truncated = m.lambda(s, LambdaMethod::kTruncated, 4000);
  EXPECT_NEAR(std::abs(truncated - exact) / std::abs(exact), 0.0, 2e-3);
  const cplx adaptive = m.lambda(s, LambdaMethod::kAdaptive, 0);
  EXPECT_NEAR(std::abs(adaptive - exact) / std::abs(exact), 0.0, 1e-8);
}

TEST(PfdShape, ZohReducesToImpulseAtLowFrequency) {
  // H_zoh(jw) -> 1 for w << w0: both shapes agree deep in band.
  const SamplingPllModel zoh = zoh_model(0.1);
  const SamplingPllModel imp = impulse_model(0.1);
  const cplx s = j * (0.002 * kW0);
  const cplx a = zoh.baseband_transfer(s);
  const cplx b = imp.baseband_transfer(s);
  EXPECT_NEAR(std::abs(a - b) / std::abs(b), 0.0, 5e-3);
}

TEST(PfdShape, VtildeCarriesExactZohShape) {
  // For a TI VCO, V~_n(zoh)/V~_n(imp) = H_zoh(s + j n w0) =
  // (1 - e^{-sT})/((s + j n w0) T) exactly.
  const SamplingPllModel zoh = zoh_model(0.1);
  const SamplingPllModel imp = impulse_model(0.1);
  const double t = 2.0 * std::numbers::pi / kW0;
  const cplx s = j * (0.13 * kW0);
  for (int n : {-2, 0, 3}) {
    const cplx sn = s + cplx{0.0, n * kW0};
    const cplx expected = (1.0 - std::exp(-s * t)) / (sn * t);
    const cplx got = zoh.vtilde_element(n, s) / imp.vtilde_element(n, s);
    EXPECT_NEAR(std::abs(got - expected), 0.0, 1e-10) << "n = " << n;
  }
  // Sanity: |H_zoh(jw)| is the sinc rolloff with -wT/2 phase.
  const double w = 0.1 * kW0;
  const cplx h = (1.0 - std::exp(-j * w * t)) / (j * w * t);
  const double wt2 = 0.5 * w * t;
  EXPECT_NEAR(std::abs(h), std::sin(wt2) / wt2, 1e-12);
  EXPECT_NEAR(std::arg(h), -wt2, 1e-12);
}

TEST(PfdShape, ZohErodesEffectiveMargin) {
  const EffectiveMargins imp = effective_margins(impulse_model(0.15));
  const EffectiveMargins zoh = effective_margins(zoh_model(0.15));
  ASSERT_TRUE(imp.eff_found && zoh.eff_found);
  EXPECT_LT(zoh.eff_phase_margin_deg, imp.eff_phase_margin_deg - 2.0);
}

TEST(PfdShape, ZohRaisesHalfRateBoundary) {
  // Two competing effects of the hold: its phase lag erodes the margin
  // near crossover (see ZohErodesEffectiveMargin), but its sinc rolloff
  // attenuates the half-rate aliases (|H_zoh(j w0/2)| = 2/pi ~ 0.64),
  // so the hard lambda(j w0/2) = -1 boundary moves UP, not down.
  // Bisection on the half-rate criterion for both shapes.
  auto boundary = [](PfdShape shape) {
    double lo = 0.05, hi = 0.5;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      SamplingPllOptions opts;
      opts.pfd_shape = shape;
      const SamplingPllModel m(make_typical_loop(mid * kW0, kW0),
                               HarmonicCoefficients(cplx{1.0}), opts);
      (half_rate_lambda(m) > -1.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double b_imp = boundary(PfdShape::kImpulse);
  const double b_zoh = boundary(PfdShape::kZeroOrderHold);
  EXPECT_NEAR(b_imp, 0.276, 0.002);
  EXPECT_GT(b_zoh, b_imp + 0.05);
}

TEST(PfdShape, RankOneHtmMatchesDenseForZoh) {
  const SamplingPllModel m = zoh_model(0.2);
  const cplx s = j * (0.13 * kW0);
  const Htm a = m.closed_loop_htm(s, 6);
  const Htm b = m.closed_loop_htm_dense(s, 6);
  EXPECT_LT((a.matrix() - b.matrix()).max_abs(), 1e-10);
}

TEST(PfdShape, PoleSearchRejectsZoh) {
  EXPECT_THROW(closed_loop_poles(zoh_model(0.1)), std::invalid_argument);
}

TEST(SampleHoldSim, QuiescentWhenLocked) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  SampleHoldPllSim sim(p);
  sim.run_periods(50.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-9);
  EXPECT_NEAR(sim.held_current(), 0.0, 1e-9);
  EXPECT_GE(sim.event_count(), 49u);
}

TEST(SampleHoldSim, TracksQuasiStaticReferenceExcursion) {
  // A very slow reference phase wobble: the type-2 loop must follow it
  // with negligible error (theta ~ theta_ref deep in band).
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  ReferenceModulation mod;
  mod.amplitude = 5e-3;
  mod.omega = 1e-4 * kW0;
  SampleHoldPllSim sim(p, mod);
  sim.run_periods(300.0);
  const double theta_ref_now = mod.value(sim.time());
  EXPECT_GT(std::abs(theta_ref_now), 1e-4);  // excursion is resolvable
  EXPECT_NEAR(sim.theta(), theta_ref_now, 1e-4);
}

TEST(SampleHoldSim, ProbeMatchesZohModel) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  const SamplingPllModel model = zoh_model(0.15);
  ProbeOptions opts;
  opts.settle_periods = 300.0;
  opts.measure_periods = 20;
  for (double f : {0.05, 0.12}) {
    const TransferMeasurement meas =
        measure_baseband_transfer_sample_hold(p, f * kW0, opts);
    const cplx predicted = model.baseband_transfer(j * (f * kW0));
    EXPECT_NEAR(std::abs(meas.value - predicted) / std::abs(predicted),
                0.0, 0.02)
        << "f = " << f;
  }
}

TEST(SampleHoldSim, ImpulseModelIsTheWrongPredictorForZohLoop) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const SamplingPllModel zoh = zoh_model(0.2);
  const SamplingPllModel imp = impulse_model(0.2);
  ProbeOptions opts;
  opts.settle_periods = 350.0;
  opts.measure_periods = 20;
  const double wm = 0.15 * kW0;
  const TransferMeasurement meas =
      measure_baseband_transfer_sample_hold(p, wm, opts);
  const double err_zoh =
      std::abs(meas.value - zoh.baseband_transfer(j * wm));
  const double err_imp =
      std::abs(meas.value - imp.baseband_transfer(j * wm));
  EXPECT_LT(err_zoh, 0.5 * err_imp);
}

}  // namespace
}  // namespace htmpll

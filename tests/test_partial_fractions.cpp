#include <random>

#include <gtest/gtest.h>

#include "htmpll/lti/partial_fractions.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};

TEST(PartialFractions, SimplePolesKnownResidues) {
  // 1/((s+1)(s+2)) = 1/(s+1) - 1/(s+2)
  const RationalFunction h(
      Polynomial::constant(1.0),
      Polynomial::from_roots({cplx{-1.0}, cplx{-2.0}}));
  const PartialFractions pf(h);
  ASSERT_EQ(pf.terms().size(), 2u);
  for (const PoleTerm& t : pf.terms()) {
    ASSERT_EQ(t.residues.size(), 1u);
    if (std::abs(t.pole + 1.0) < 1e-6) {
      EXPECT_NEAR(std::abs(t.residues[0] - cplx{1.0}), 0.0, 1e-10);
    } else {
      EXPECT_NEAR(std::abs(t.pole + 2.0), 0.0, 1e-8);
      EXPECT_NEAR(std::abs(t.residues[0] + 1.0), 0.0, 1e-10);
    }
  }
}

TEST(PartialFractions, DoublePoleAtOrigin) {
  // (1 + s) / s^2 = 1/s^2 + 1/s
  const RationalFunction h(Polynomial::from_real({1.0, 1.0}),
                           Polynomial::from_real({0.0, 0.0, 1.0}));
  const PartialFractions pf(h);
  ASSERT_EQ(pf.terms().size(), 1u);
  const PoleTerm& t = pf.terms()[0];
  EXPECT_NEAR(std::abs(t.pole), 0.0, 1e-10);
  ASSERT_EQ(t.residues.size(), 2u);
  EXPECT_NEAR(std::abs(t.residues[0] - cplx{1.0}), 0.0, 1e-10);  // 1/(s-0)
  EXPECT_NEAR(std::abs(t.residues[1] - cplx{1.0}), 0.0, 1e-10);  // 1/s^2
}

TEST(PartialFractions, EvaluationMatchesOriginal) {
  const RationalFunction h(
      Polynomial::from_real({3.0, 2.0, 1.0}),
      Polynomial::from_roots({cplx{-1.0}, cplx{-1.0}, cplx{-4.0},
                              cplx{0.0, 2.0}, cplx{0.0, -2.0}}));
  const PartialFractions pf(h);
  for (const cplx s : {cplx{1.0, 0.5}, cplx{-0.3, 3.0}, cplx{5.0, -1.0}}) {
    EXPECT_NEAR(std::abs(pf(s) - h(s)) / std::abs(h(s)), 0.0, 1e-7);
  }
}

TEST(PartialFractions, ImproperSplitsDirectPart) {
  // (s^2 + 1)/(s + 1) = (s - 1) + 2/(s+1)
  const RationalFunction h(Polynomial::from_real({1.0, 0.0, 1.0}),
                           Polynomial::from_real({1.0, 1.0}));
  const PartialFractions pf(h);
  EXPECT_EQ(pf.direct().degree(), 1u);
  EXPECT_NEAR(std::abs(pf.direct()(cplx{0.0}) + 1.0), 0.0, 1e-10);
  ASSERT_EQ(pf.terms().size(), 1u);
  EXPECT_NEAR(std::abs(pf.terms()[0].residues[0] - cplx{2.0}), 0.0, 1e-10);
}

TEST(PartialFractions, ImpulseResponseSimplePole) {
  // L^{-1}{ 1/(s+2) } = e^{-2t}
  const RationalFunction h(Polynomial::constant(1.0),
                           Polynomial::from_real({2.0, 1.0}));
  const PartialFractions pf(h);
  for (double t : {0.0, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(std::abs(pf.impulse_response(t) - std::exp(-2.0 * t)), 0.0,
                1e-10);
  }
}

TEST(PartialFractions, ImpulseResponseDoublePole) {
  // L^{-1}{ 1/(s+1)^2 } = t e^{-t}
  const RationalFunction h(Polynomial::constant(1.0),
                           Polynomial::from_roots({cplx{-1.0}, cplx{-1.0}}));
  const PartialFractions pf(h);
  for (double t : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(std::abs(pf.impulse_response(t) - t * std::exp(-t)), 0.0,
                1e-8);
  }
}

TEST(PartialFractions, ImpulseResponseRejectsImproperAndNegativeTime) {
  const RationalFunction improper(Polynomial::from_real({1.0, 0.0, 1.0}),
                                  Polynomial::from_real({1.0, 1.0}));
  EXPECT_THROW(PartialFractions(improper).impulse_response(1.0),
               std::invalid_argument);
  const RationalFunction ok(Polynomial::constant(1.0),
                            Polynomial::from_real({1.0, 1.0}));
  EXPECT_THROW(PartialFractions(ok).impulse_response(-1.0),
               std::invalid_argument);
}

TEST(PartialFractions, ReassembleRoundTrip) {
  const RationalFunction h(
      Polynomial::from_real({1.0, 2.0}),
      Polynomial::from_roots({cplx{-1.0}, cplx{-3.0}, cplx{-3.0}}));
  const RationalFunction back = PartialFractions(h).reassemble();
  const cplx s{0.7, 1.1};
  // The double pole at -3 limits residue accuracy to ~sqrt(eps).
  EXPECT_NEAR(std::abs(back(s) - h(s)) / std::abs(h(s)), 0.0, 1e-6);
}

class PfRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PfRandomRoundTrip, RandomSimplePoleFunctions) {
  std::mt19937 rng(100u + static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> d(-4.0, -0.5);
  std::uniform_real_distribution<double> im(-3.0, 3.0);
  const int n = GetParam();
  CVector poles;
  for (int i = 0; i < n; ++i) poles.push_back(cplx{d(rng), im(rng)});
  bool clustered = false;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (std::abs(poles[a] - poles[b]) < 0.3) clustered = true;
    }
  }
  if (clustered) GTEST_SKIP();
  const RationalFunction h(Polynomial::from_real({1.0, 0.5}),
                           Polynomial::from_roots(poles));
  const PartialFractions pf(h);
  for (const cplx s : {cplx{1.0, 1.0}, cplx{0.0, 5.0}, cplx{2.0, -0.7}}) {
    EXPECT_NEAR(std::abs(pf(s) - h(s)) / std::max(1e-12, std::abs(h(s))),
                0.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(PoleCounts, PfRandomRoundTrip,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

}  // namespace
}  // namespace htmpll

// Lockstep ensemble-engine suite: bit-identity against the sequential
// scalar chain for every ensemble width and pool width, divergence /
// retirement behavior, checkpoint interaction, the HTMPLL_ENSEMBLE
// pin, Monte Carlo input validation and the zero-steady-state-
// allocation contract.  Own binary (like test_transient_engine) so the
// whole suite runs under -DHTMPLL_SANITIZE=thread.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/ensemble_sim.hpp"
#include "htmpll/timedomain/montecarlo.hpp"

// --- global allocation counter (zero-steady-state-allocation test) ---
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

/// Pins the process-wide ensemble switch for one test.
struct ScopedEnsemble {
  bool was = mc::ensemble_enabled();
  explicit ScopedEnsemble(bool on) { mc::set_ensemble_enabled(on); }
  ~ScopedEnsemble() { mc::set_ensemble_enabled(was); }
};

/// Enables obs for one test and restores the prior state after.
struct ScopedObs {
  bool was_enabled = obs::enabled();
  explicit ScopedObs(bool on) { on ? obs::enable() : obs::disable(); }
  ~ScopedObs() { was_enabled ? obs::enable() : obs::disable(); }
};

void expect_same_run(const PllTransientSim& a, const PllTransientSim& b) {
  EXPECT_EQ(a.time(), b.time());
  EXPECT_EQ(a.event_count(), b.event_count());
  ASSERT_EQ(a.state().size(), b.state().size());
  for (std::size_t i = 0; i < a.state().size(); ++i) {
    EXPECT_EQ(a.state()[i], b.state()[i]) << "state " << i;
  }
  ASSERT_EQ(a.theta_samples().size(), b.theta_samples().size());
  for (std::size_t i = 0; i < a.theta_samples().size(); ++i) {
    ASSERT_EQ(a.theta_samples()[i], b.theta_samples()[i]) << "sample " << i;
  }
}

// The engine must reproduce sequential per-member runs bit for bit at
// every ensemble width, including noisy members whose event times
// diverge between lockstep buckets.
TEST(EnsembleEngine, BitIdenticalToSequentialScalarRuns) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double sigma = 1e-4 * p.icp;
  for (std::size_t m : {1u, 3u, 8u, 64u}) {
    TransientConfig cfg;
    cfg.record = true;
    EnsembleTransientEngine eng(p, m, {}, cfg);
    std::vector<PllTransientSim> ref;
    ref.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
      const auto seed = static_cast<unsigned>(mc_stream_seed(77, k));
      eng.member(k).set_noise_current(sigma, seed);
      ref.emplace_back(p, ReferenceModulation{}, cfg);
      ref.back().set_noise_current(sigma, seed);
    }
    eng.run_periods(40.0);
    eng.run_periods(25.0);  // second leg: re-entry from a warm state
    for (std::size_t k = 0; k < m; ++k) {
      ref[k].run_periods(40.0);
      ref[k].run_periods(25.0);
      expect_same_run(eng.member(k), ref[k]);
    }
    EXPECT_GT(eng.rounds(), 0u);
  }
}

// Noise-free identical members never diverge: every step after the
// first round should advance through the SoA kernel.
TEST(EnsembleEngine, IdenticalMembersStayBatched) {
  const PllParameters p = make_typical_loop(0.15 * kW0, kW0);
  TransientConfig cfg;
  cfg.record = false;
  EnsembleTransientEngine eng(p, 8, {}, cfg);
  for (std::size_t k = 0; k < eng.size(); ++k) {
    eng.member(k).set_initial_theta(0.01);
  }
  eng.run_periods(50.0);
  EXPECT_GT(eng.batched_member_steps(), 0u);
  EXPECT_EQ(eng.scalar_member_steps(), 0u);
  EXPECT_GT(eng.store_stats().lookups, 0u);
}

// Members with different initial offsets produce divergent step
// lengths; the engine must mix batched and scalar lanes and emit the
// lane-divergence diagnostic, while staying bit-identical (covered
// above) and re-admitting members when their edges re-align.
TEST(EnsembleEngine, DivergentMembersFallBackAndEmitDiagnostics) {
  ScopedObs obs_on(true);
  obs::diag_reset();
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  TransientConfig cfg;
  cfg.record = false;
  EnsembleTransientEngine eng(p, 4, {}, cfg);
  eng.member(0).set_initial_frequency_offset(0.01);  // acquiring
  // members 1..3 start locked and identical
  eng.run_periods(30.0);
  EXPECT_GT(eng.batched_member_steps(), 0u);
  EXPECT_GT(eng.scalar_member_steps(), 0u);
  const obs::DiagSnapshot snap = obs::diag_snapshot();
  EXPECT_GT(snap.tally[static_cast<std::size_t>(
                obs::DiagReason::kEnsembleLaneDivergence)],
            0u);
}

// retire() drops a member from subsequent rounds without touching it.
TEST(EnsembleEngine, RetiredMembersStopAdvancing) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  TransientConfig cfg;
  cfg.record = false;
  EnsembleTransientEngine eng(p, 3, {}, cfg);
  eng.run_periods(10.0);
  const double t_retired = eng.member(1).time();
  eng.retire(1);
  EXPECT_TRUE(eng.retired(1));
  eng.run_periods(10.0);
  EXPECT_EQ(eng.member(1).time(), t_retired);
  EXPECT_GT(eng.member(0).time(), t_retired);
  EXPECT_EQ(eng.member(0).time(), eng.member(2).time());
}

// A checkpoint taken from an ensemble member restores into a
// standalone simulator (and vice versa) and both continuations stay
// bit-identical -- lockstep advancement leaves no hidden state behind.
TEST(EnsembleEngine, CheckpointsInterchangeWithScalarSimulators) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double sigma = 5e-5 * p.icp;
  TransientConfig cfg;
  cfg.record = false;
  EnsembleTransientEngine eng(p, 4, {}, cfg);
  for (std::size_t k = 0; k < eng.size(); ++k) {
    eng.member(k).set_noise_current(
        sigma, static_cast<unsigned>(mc_stream_seed(5, k)));
  }
  eng.run_periods(20.0);

  // Warm-start a scalar sim from member 2 and advance both.
  const TransientCheckpoint cp = eng.member(2).checkpoint();
  PllTransientSim scalar(p, {}, cfg);
  scalar.restore(cp);
  eng.run_periods(15.0);
  scalar.run_periods(15.0);
  expect_same_run(eng.member(2), scalar);

  // And back: restore a member from the scalar continuation, advance
  // the ensemble again, compare against the scalar run.
  eng.member(2).restore(scalar.checkpoint());
  eng.run_periods(5.0);
  scalar.run_periods(5.0);
  expect_same_run(eng.member(2), scalar);
}

// After a warm-up leg, lockstep advancement of a recording-off
// ensemble performs no heap allocation at all: the SoA scratch, the
// shared store's slots (assign_zero reuse) and the pulse-history rings
// are all fixed-capacity.
TEST(EnsembleEngine, SteadyStateRunsAllocationFree) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double sigma = 1e-4 * p.icp;
  TransientConfig cfg;
  cfg.record = false;
  EnsembleTransientEngine eng(p, 8, {}, cfg);
  for (std::size_t k = 0; k < eng.size(); ++k) {
    eng.member(k).set_noise_current(
        sigma, static_cast<unsigned>(mc_stream_seed(11, k)));
  }
  eng.run_periods(30.0);  // warm-up: store slots and scratch sized here
  const std::uint64_t before = g_allocations.load();
  eng.run_periods(30.0);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

// --- Monte Carlo drivers on the ensemble path ---

TEST(EnsembleMonteCarlo, NoiseEnsembleMatchesScalarChainBitwise) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double sigma = 1e-4 * p.icp;
  NoiseEnsembleOptions opts;
  opts.settle_periods = 20.0;
  opts.measure_periods = 60.0;
  ThreadPool one(1), four(4);
  for (std::size_t n : {1u, 3u, 8u, 64u}) {
    NoiseEnsembleOptions scalar_opts = opts;
    scalar_opts.mc.use_ensemble_engine = false;
    const auto ref = run_noise_ensemble(p, sigma, 42, n, scalar_opts, one);
    for (ThreadPool* pool : {&one, &four}) {
      const auto got = run_noise_ensemble(p, sigma, 42, n, opts, *pool);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i].theta_mean, ref[i].theta_mean);
        EXPECT_EQ(got[i].theta_rms, ref[i].theta_rms);
        EXPECT_EQ(got[i].theta_peak, ref[i].theta_peak);
        EXPECT_EQ(got[i].events, ref[i].events);
      }
    }
  }
}

TEST(EnsembleMonteCarlo, ForcedScalarPinMatchesEnginePath) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const double sigma = 1e-4 * p.icp;
  NoiseEnsembleOptions opts;
  opts.settle_periods = 10.0;
  opts.measure_periods = 40.0;
  std::vector<NoiseRunStats> on, off;
  {
    ScopedEnsemble pin(true);
    on = run_noise_ensemble(p, sigma, 9, 6, opts);
  }
  {
    ScopedEnsemble pin(false);  // what HTMPLL_ENSEMBLE=0 sets
    off = run_noise_ensemble(p, sigma, 9, 6, opts);
  }
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].theta_mean, off[i].theta_mean);
    EXPECT_EQ(on[i].theta_rms, off[i].theta_rms);
    EXPECT_EQ(on[i].theta_peak, off[i].theta_peak);
    EXPECT_EQ(on[i].events, off[i].events);
  }
}

// One member still acquiring while the rest of its block locks: the
// locked members retire from the lockstep rounds and every lock time
// matches the scalar chain exactly.
TEST(EnsembleMonteCarlo, AcquisitionRetirementMatchesScalarChain) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  AcquisitionOptions opts;
  opts.max_periods = 600.0;
  std::vector<AcquisitionCase> cases{
      {p, 0.0}, {p, 0.001}, {p, 0.05}, {p, 0.005}};
  AcquisitionOptions scalar_opts = opts;
  scalar_opts.mc.use_ensemble_engine = false;
  const auto ref = acquisition_periods(cases, scalar_opts);
  const auto got = acquisition_periods(cases, opts);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], ref[i]) << "case " << i;
  }
}

// Mixed batches: identical loops share lockstep blocks, distinct loops
// split them; results never depend on the grouping.
TEST(EnsembleMonteCarlo, StepResponseBatchMatchesScalarChain) {
  const PllParameters a = make_typical_loop(0.1 * kW0, kW0);
  const PllParameters b = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<PllParameters> loops{a, a, a, b, a, a};
  MonteCarloOptions scalar_mc;
  scalar_mc.use_ensemble_engine = false;
  const auto ref = step_response_batch(loops, 60, 1e-3, scalar_mc);
  const auto got = step_response_batch(loops, 60, 1e-3);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_EQ(got[k].size(), ref[k].size()) << "loop " << k;
    for (std::size_t i = 0; i < got[k].size(); ++i) {
      EXPECT_EQ(got[k][i], ref[k][i]) << "loop " << k << " sample " << i;
    }
  }
}

// --- input validation (all four Monte Carlo entry points) ---

TEST(MonteCarloValidation, RejectsDegenerateInputs) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);

  EXPECT_THROW(monte_carlo_map<double>(
                   0, 1, [](std::size_t, std::uint64_t) { return 0.0; }),
               std::invalid_argument);

  NoiseEnsembleOptions nopts;
  EXPECT_THROW(run_noise_ensemble(p, 1e-6, 1, 0, nopts),
               std::invalid_argument);
  nopts.settle_periods = -1.0;
  EXPECT_THROW(run_noise_ensemble(p, 1e-6, 1, 2, nopts),
               std::invalid_argument);
  nopts.settle_periods = 1.0;
  nopts.measure_periods = 0.0;
  EXPECT_THROW(run_noise_ensemble(p, 1e-6, 1, 2, nopts),
               std::invalid_argument);
  nopts.measure_periods = -5.0;
  EXPECT_THROW(run_noise_ensemble(p, 1e-6, 1, 2, nopts),
               std::invalid_argument);
  nopts.measure_periods = 10.0;
  nopts.sample_interval = -0.25;
  EXPECT_THROW(run_noise_ensemble(p, 1e-6, 1, 2, nopts),
               std::invalid_argument);

  EXPECT_THROW(acquisition_periods({}), std::invalid_argument);
  AcquisitionOptions aopts;
  aopts.max_periods = -1.0;
  EXPECT_THROW(acquisition_periods({{p, 0.01}}, aopts),
               std::invalid_argument);

  EXPECT_THROW(step_response_batch({}, 10, 1e-3), std::invalid_argument);
  EXPECT_THROW(step_response_batch({p}, 0, 1e-3), std::invalid_argument);
  EXPECT_THROW(step_response_batch({p}, 10, 0.0), std::invalid_argument);
}

TEST(EnsembleEngine, RejectsEmptyEnsemble) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  EXPECT_THROW(EnsembleTransientEngine(p, 0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

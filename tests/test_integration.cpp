// End-to-end validation: the HTM frequency-domain model (eq. 38) against
// the behavioral time-marching simulator -- the reproduction of the
// paper's Section 5 verification ("both are within 2%").  We allow a
// slightly looser envelope at the band edge, where the measurement
// itself carries windowing error.
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1 s
const cplx j{0.0, 1.0};

struct Case {
  double ratio;     // w_UG / w0
  double f;         // w_m / w0
  double tol;       // relative tolerance on H00
};

class HtmVsSim : public ::testing::TestWithParam<Case> {};

TEST_P(HtmVsSim, BasebandTransferMatches) {
  const Case c = GetParam();
  const PllParameters params = make_typical_loop(c.ratio * kW0, kW0);
  const SamplingPllModel model(params);

  ProbeOptions opts;
  opts.settle_periods = 400.0;
  opts.measure_periods = 24;
  const TransferMeasurement meas =
      measure_baseband_transfer(params, c.f * kW0, opts);

  const cplx predicted = model.baseband_transfer(j * (c.f * kW0));
  const double rel_err =
      std::abs(meas.value - predicted) / std::abs(predicted);
  EXPECT_LT(rel_err, c.tol)
      << "ratio " << c.ratio << " f " << c.f << " measured |H|="
      << std::abs(meas.value) << " predicted |H|=" << std::abs(predicted);
}

// Ratios follow the paper's Fig. 6 family (w_UG/w0 up to 1/5); the
// sampled loop is unstable beyond ~0.28 for this gamma = 4 design, so
// larger ratios have no steady state to measure.
INSTANTIATE_TEST_SUITE_P(
    Fig6Points, HtmVsSim,
    ::testing::Values(Case{0.1, 0.03, 0.02}, Case{0.1, 0.1, 0.02},
                      Case{0.2, 0.1, 0.02}, Case{0.2, 0.25, 0.03},
                      Case{0.25, 0.2, 0.03}, Case{0.25, 0.35, 0.05}));

TEST(HtmVsSimExtra, LtiModelIsWorsePredictorForFastLoop) {
  // The whole point of the paper: for a fast loop the classical LTI
  // model misses what the simulator does; the HTM model does not.
  const double ratio = 0.25, f = 0.3;
  const PllParameters params = make_typical_loop(ratio * kW0, kW0);
  const SamplingPllModel model(params);
  ProbeOptions opts;
  opts.settle_periods = 400.0;
  opts.measure_periods = 24;
  const TransferMeasurement meas =
      measure_baseband_transfer(params, f * kW0, opts);
  const cplx s = j * (f * kW0);
  const double err_htm =
      std::abs(meas.value - model.baseband_transfer(s));
  const double err_lti =
      std::abs(meas.value - model.lti_baseband_transfer(s));
  EXPECT_LT(err_htm, 0.3 * err_lti);
}

}  // namespace
}  // namespace htmpll

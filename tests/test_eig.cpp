// Dense real eigensolver: residual property tests on random matrices,
// exact small cases, conjugate-pair structure, and the failure modes the
// spectral propagator factory relies on (defective matrices must report
// usable() == false, never garbage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <random>
#include <stdexcept>
#include <vector>

#include "htmpll/linalg/eig.hpp"
#include "htmpll/obs/metrics.hpp"

namespace htmpll {
namespace {

double residual(const RMatrix& a, const EigenDecomposition& d,
                std::size_t k) {
  const std::size_t n = a.rows();
  double r = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cplx av{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) av += a(i, j) * d.vectors(j, k);
    r = std::max(r, std::abs(av - d.values[k] * d.vectors(i, k)));
  }
  return r;
}

/// max |(V diag(lambda) V^{-1} - A)_{ij}|.
double reconstruction_error(const RMatrix& a, const EigenDecomposition& d) {
  const std::size_t n = a.rows();
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cplx s{0.0, 0.0};
      for (std::size_t k = 0; k < n; ++k) {
        s += d.vectors(i, k) * d.values[k] * d.inverse_vectors(k, j);
      }
      err = std::max(err, std::abs(s - a(i, j)));
    }
  }
  return err;
}

TEST(Eig, ScalarMatrix) {
  const RMatrix a{{-3.5}};
  const EigenDecomposition d = eig(a);
  ASSERT_TRUE(d.usable(1e3));
  EXPECT_NEAR(d.values[0].real(), -3.5, 1e-15);
  EXPECT_NEAR(d.values[0].imag(), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(d.vectors(0, 0)), 1.0, 1e-15);
}

TEST(Eig, RealDistinctTwoByTwo) {
  // Triangular, so the eigenvalues are exactly the diagonal.
  const RMatrix a{{-1.0, 2.0}, {0.0, -4.0}};
  const EigenDecomposition d = eig(a);
  ASSERT_TRUE(d.usable(1e6));
  std::vector<double> re{d.values[0].real(), d.values[1].real()};
  std::sort(re.begin(), re.end());
  EXPECT_NEAR(re[0], -4.0, 1e-13);
  EXPECT_NEAR(re[1], -1.0, 1e-13);
  EXPECT_LT(residual(a, d, 0), 1e-13);
  EXPECT_LT(residual(a, d, 1), 1e-13);
}

TEST(Eig, PureRotationGivesConjugatePair) {
  const double w = 3.0;
  const RMatrix a{{0.0, w}, {-w, 0.0}};
  const EigenDecomposition d = eig(a);
  ASSERT_TRUE(d.usable(1e6));
  // Conjugate pair adjacent, +imag first.
  EXPECT_NEAR(d.values[0].real(), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(d.values[0].imag()), w, 1e-13);
  EXPECT_EQ(d.values[1], std::conj(d.values[0]));
  // The twin's eigenvector is the conjugate of its partner's, so real
  // reconstructions come out real.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(d.vectors(i, 1), std::conj(d.vectors(i, 0)));
  }
  EXPECT_LT(residual(a, d, 0), 1e-13);
  EXPECT_LT(reconstruction_error(a, d), 1e-12);
}

TEST(Eig, DampedOscillatorPair) {
  // Companion form of s^2 + 2 zeta wn s + wn^2 with zeta < 1.
  const double wn = 2.0, zeta = 0.25;
  const RMatrix a{{0.0, 1.0}, {-wn * wn, -2.0 * zeta * wn}};
  const EigenDecomposition d = eig(a);
  ASSERT_TRUE(d.usable(1e6));
  EXPECT_NEAR(d.values[0].real(), -zeta * wn, 1e-12);
  EXPECT_NEAR(std::abs(d.values[0].imag()), wn * std::sqrt(1 - zeta * zeta),
              1e-12);
  EXPECT_LT(reconstruction_error(a, d), 1e-12);
}

TEST(Eig, RandomStableMatricesResidualProperty) {
  std::mt19937 rng(20260807u);
  std::uniform_real_distribution<double> entry(-1.0, 1.0);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 6);
    RMatrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = entry(rng);
      a(i, i) -= 2.0;  // diagonal shift biases the spectrum leftward
    }
    const EigenDecomposition d = eig(a);
    ASSERT_TRUE(d.qr_converged) << "trial " << trial;
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_LT(residual(a, d, k), 1e-10) << "trial " << trial << " k " << k;
    }
    if (d.usable(1e8)) {
      EXPECT_LT(reconstruction_error(a, d),
                1e-13 * std::max(1.0, d.vector_condition))
          << "trial " << trial;
    }
    // Complex eigenvalues must appear as adjacent conjugate pairs.
    for (std::size_t k = 0; k < n; ++k) {
      if (d.values[k].imag() > 0.0) {
        ASSERT_LT(k + 1, n);
        EXPECT_EQ(d.values[k + 1], std::conj(d.values[k]));
        ++k;
      }
    }
  }
}

TEST(Eig, DefectiveJordanBlockIsNotUsable) {
  const RMatrix a{{0.0, 1.0}, {0.0, 0.0}};
  const EigenDecomposition d = eig(a);
  EXPECT_TRUE(d.qr_converged);
  EXPECT_FALSE(d.usable(1e12));
}

TEST(Eig, NearDefectiveReportsHugeCondition) {
  // Eigenvalues split by delta: kappa(V) ~ 1/delta, far above any sane
  // threshold, so the spectral factory falls back instead of building
  // a catastrophically amplified modal form.
  const double delta = 1e-9;
  const RMatrix a{{0.0, 1.0}, {0.0, -delta}};
  const EigenDecomposition d = eig(a);
  ASSERT_TRUE(d.qr_converged);
  if (d.diagonalizable) {
    EXPECT_GT(d.vector_condition, 1e7);
  }
  EXPECT_FALSE(d.usable(1e6));
}

TEST(Eig, EigenvaluesOnlyMatchesFullDecomposition) {
  const RMatrix a{{0.0, 1.0, 0.0},
                  {0.0, -2.5, 0.0},
                  {1.5, 3.0, -0.5}};
  bool converged = false;
  const CVector vals = eigenvalues(a, &converged);
  ASSERT_TRUE(converged);
  const EigenDecomposition d = eig(a);
  auto key = [](const cplx& z) {
    return std::make_pair(z.real(), z.imag());
  };
  std::vector<std::pair<double, double>> lhs, rhs;
  for (const cplx& z : vals) lhs.push_back(key(z));
  for (const cplx& z : d.values) rhs.push_back(key(z));
  std::sort(lhs.begin(), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  for (std::size_t k = 0; k < lhs.size(); ++k) {
    EXPECT_NEAR(lhs[k].first, rhs[k].first, 1e-10);
    EXPECT_NEAR(lhs[k].second, rhs[k].second, 1e-10);
  }
}

TEST(Eig, RejectsBadInput) {
  EXPECT_THROW(eig(RMatrix(2, 3)), std::invalid_argument);
  RMatrix nan2{{1.0, 0.0}, {0.0, std::nan("")}};
  EXPECT_THROW(eig(nan2), std::invalid_argument);
  RMatrix inf2{{std::numeric_limits<double>::infinity(), 0.0}, {0.0, 1.0}};
  EXPECT_THROW(eig(inf2), std::invalid_argument);
}

TEST(Eig, CountsFactorizations) {
  const bool was = obs::enabled();
  obs::enable();
  obs::Counter& c = obs::counter("linalg.eig_factorizations");
  const std::uint64_t before = c.value();
  eig(RMatrix{{-1.0, 0.0}, {0.0, -2.0}});
  EXPECT_EQ(c.value(), before + 1);
  if (!was) obs::disable();
}

}  // namespace
}  // namespace htmpll

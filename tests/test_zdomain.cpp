#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/ztrans/jury.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

TEST(Zdomain, SimplePoleImpulseInvariance) {
  // A = 1/(s+a): G(z) = T z/(z - e^{-aT}); check at a few z.
  const double a = 0.7;
  const RationalFunction h(Polynomial::constant(1.0),
                           Polynomial::from_real({a, 1.0}));
  const ImpulseInvariantModel m(h, kW0);
  const double t = m.period();
  const double q = std::exp(-a * t);
  for (const cplx z : {cplx{2.0}, cplx{0.3, 0.9}}) {
    const cplx expected = t * z / (z - q);
    EXPECT_NEAR(std::abs(m.loop_gain(z) - expected) / std::abs(expected),
                0.0, 1e-12);
  }
}

TEST(Zdomain, LambdaEquivalenceIsThePoissonIdentity) {
  // The central cross-check: the impulse-invariant z-model evaluated on
  // z = e^{sT} must equal the paper's aliasing sum lambda(s) = sum_m
  // A(s + j m w0) -- tying eq. 37 to the Hein-Scott/Gardner baseline.
  const PllParameters p = make_typical_loop(0.3 * kW0, kW0);
  const RationalFunction a = p.open_loop_gain();
  const ImpulseInvariantModel zm(a, kW0);
  const AliasingSum sum(a, kW0);
  for (double f : {0.05, 0.15, 0.33, 0.47}) {
    const cplx s = j * (f * kW0);
    const cplx lhs = zm.lambda_equivalent(s);
    const cplx rhs = sum.exact(s);
    EXPECT_NEAR(std::abs(lhs - rhs) / std::abs(rhs), 0.0, 1e-8)
        << "f = " << f;
  }
}

TEST(Zdomain, LambdaEquivalenceWithRelativeDegreeOne) {
  // A = 1/(s+1): a(0+) = 1 requires the half-sample correction.
  const RationalFunction a(Polynomial::constant(1.0),
                           Polynomial::from_real({1.0, 1.0}));
  const ImpulseInvariantModel zm(a, kW0);
  const AliasingSum sum(a, kW0);
  const cplx s = j * (0.2 * kW0);
  EXPECT_NEAR(std::abs(zm.lambda_equivalent(s) - sum.exact(s)) /
                  std::abs(sum.exact(s)),
              0.0, 1e-8);
}

TEST(Zdomain, RepeatedPoleTransform) {
  // A = 1/s^2 (double pole): sampled ramp a(nT) = nT, G(z) =
  // T^2 z/(z-1)^2.
  const RationalFunction a(Polynomial::constant(1.0),
                           Polynomial::from_real({0.0, 0.0, 1.0}));
  const ImpulseInvariantModel m(a, kW0);
  const double t = m.period();
  const cplx z{1.5, 0.5};
  const cplx expected = t * t * z / ((z - 1.0) * (z - 1.0));
  EXPECT_NEAR(std::abs(m.loop_gain(z) - expected) / std::abs(expected),
              0.0, 1e-10);
}

TEST(Zdomain, StabilityMatchesRootsForTypicalLoop) {
  for (double ratio : {0.05, 0.15, 0.25}) {
    const PllParameters p = make_typical_loop(ratio * kW0, kW0);
    const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
    EXPECT_TRUE(zm.is_stable()) << "ratio " << ratio;
    EXPECT_TRUE(jury_stable(zm.characteristic())) << "ratio " << ratio;
  }
}

TEST(Zdomain, FastLoopGoesUnstable) {
  // Increase w_UG/w0 until the sampled loop loses stability; z-domain
  // poles and Jury must agree on where.
  bool unstable_seen = false;
  bool agree = true;
  for (double ratio = 0.2; ratio <= 0.8; ratio += 0.05) {
    const PllParameters p = make_typical_loop(ratio * kW0, kW0);
    const ImpulseInvariantModel zm(p.open_loop_gain(), kW0);
    const bool by_roots = zm.is_stable();
    const bool by_jury = jury_stable(zm.characteristic(), 1e-9);
    if (by_roots != by_jury) agree = false;
    if (!by_roots) unstable_seen = true;
  }
  EXPECT_TRUE(unstable_seen);
  EXPECT_TRUE(agree);
}

TEST(Zdomain, RequiresStrictlyProper) {
  const RationalFunction biproper(Polynomial::from_real({1.0, 1.0}),
                                  Polynomial::from_real({2.0, 1.0}));
  EXPECT_THROW(ImpulseInvariantModel(biproper, 1.0), std::invalid_argument);
}

TEST(Jury, KnownStableAndUnstablePolynomials) {
  // Roots 0.5, 0.8 -> stable.
  EXPECT_TRUE(jury_stable(
      Polynomial::from_roots({cplx{0.5}, cplx{0.8}})));
  // Root at 1.2 -> unstable.
  EXPECT_FALSE(jury_stable(
      Polynomial::from_roots({cplx{1.2}, cplx{0.1}})));
  // Boundary root at |z| = 1 -> not strictly stable.
  EXPECT_FALSE(jury_stable(
      Polynomial::from_roots({cplx{0.0, 1.0}, cplx{0.0, -1.0}}), 1e-9));
}

TEST(Jury, ComplexCoefficientPolynomial) {
  const cplx r1{0.3, 0.4};  // |r1| = 0.5
  const cplx r2{-0.2, 0.6};
  EXPECT_TRUE(jury_stable(Polynomial::from_roots({r1, r2})));
  EXPECT_FALSE(jury_stable(Polynomial::from_roots({r1, cplx{1.1, 0.3}})));
}

TEST(Jury, ReflectionMagnitudesReported) {
  const SchurCohnResult r =
      schur_cohn(Polynomial::from_roots({cplx{0.5}, cplx{0.8}}));
  EXPECT_TRUE(r.stable);
  EXPECT_EQ(r.reflection_magnitudes.size(), 2u);
  for (double m : r.reflection_magnitudes) EXPECT_LT(m, 1.0);
}

TEST(Jury, AgreesWithRootsOnRandomPolynomials) {
  // Property sweep: polynomials from random roots inside/outside circle.
  for (int trial = 0; trial < 40; ++trial) {
    const double r1 = 0.1 + 0.05 * trial;  // 0.1 .. 2.05
    const cplx root1{r1 * 0.7, r1 * 0.3};
    const cplx root2{-0.4, 0.2};
    const cplx root3{0.3, -0.5};
    const Polynomial p = Polynomial::from_roots({root1, root2, root3});
    const bool by_roots = std::abs(root1) < 1.0;
    EXPECT_EQ(jury_stable(p, 1e-9), by_roots) << "trial " << trial;
  }
}

}  // namespace
}  // namespace htmpll

#include <sstream>

#include <gtest/gtest.h>

#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace htmpll {
namespace {

TEST(Grid, LinspaceEndpointsAndSpacing) {
  const auto g = linspace(1.0, 2.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 2.0);
  EXPECT_NEAR(g[1] - g[0], 0.25, 1e-15);
  EXPECT_NEAR(g[3] - g[2], 0.25, 1e-15);
}

TEST(Grid, LinspaceSinglePoint) {
  const auto g = linspace(3.0, 7.0, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
}

TEST(Grid, LogspaceEndpointsExact) {
  const auto g = logspace(1e-3, 1e3, 7);
  ASSERT_EQ(g.size(), 7u);
  EXPECT_DOUBLE_EQ(g.front(), 1e-3);
  EXPECT_DOUBLE_EQ(g.back(), 1e3);
  EXPECT_NEAR(g[3], 1.0, 1e-12);
}

TEST(Grid, LogspaceIsGeometric) {
  const auto g = logspace(2.0, 32.0, 5);
  for (std::size_t i = 1; i + 1 < g.size(); ++i) {
    EXPECT_NEAR(g[i + 1] / g[i], g[1] / g[0], 1e-12);
  }
}

TEST(Grid, LogspaceRejectsBadRange) {
  EXPECT_THROW(logspace(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(logspace(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Grid, PerDecadeCount) {
  const auto g = log_grid_per_decade(1.0, 1000.0, 10);
  EXPECT_EQ(g.size(), 31u);  // 3 decades * 10 + 1
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 1000.0);
}

TEST(Table, AlignedPrintAndCsv) {
  Table t({"w", "mag_db"});
  t.add_row(std::vector<double>{1.0, -3.0103});
  t.add_row(std::vector<std::string>{"10", "-20"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);

  std::ostringstream csv;
  t.write_csv(csv);
  EXPECT_EQ(csv.str(), "w,mag_db\n1,-3.0103\n10,-20\n");

  std::ostringstream pretty;
  t.print(pretty);
  EXPECT_NE(pretty.str().find("mag_db"), std::string::npos);
  EXPECT_NE(pretty.str().find("-3.0103"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b", "c"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"1", "2"}),
               std::invalid_argument);
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(HTMPLL_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(HTMPLL_REQUIRE(true, "fine"));
}

TEST(Check, AssertThrowsLogicErrorInDebugOnly) {
#ifdef NDEBUG
  // Release builds compile HTMPLL_ASSERT out entirely.
  EXPECT_NO_THROW(HTMPLL_ASSERT(false));
#else
  EXPECT_THROW(HTMPLL_ASSERT(false), std::logic_error);
#endif
  EXPECT_NO_THROW(HTMPLL_ASSERT(true));
}

}  // namespace
}  // namespace htmpll

// Stochastic end-to-end validation of the noise-transfer model: white
// charge-pump current noise injected into the behavioral simulator,
// measured output phase PSD compared against the HTM prediction with
// harmonic folding.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/fracn/sigma_delta.hpp"  // averaged_periodogram
#include "htmpll/noise/noise.hpp"
#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

/// Two-sided PSD of the injected held-white current: sigma^2 T sinc^2.
double held_noise_psd(double w, double sigma, double t) {
  const double x = 0.5 * w * t;
  const double sinc = std::abs(x) < 1e-12 ? 1.0 : std::sin(x) / x;
  return sigma * sigma * t * sinc * sinc;
}

TEST(NoiseInjection, QuiescentWithZeroSigma) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PllTransientSim sim(p);
  sim.set_noise_current(0.0, 1);
  sim.run_periods(50.0);
  EXPECT_NEAR(sim.theta(), 0.0, 1e-9);
}

TEST(NoiseInjection, ConfigRejectedAfterStartOrNegative) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  PllTransientSim sim(p);
  EXPECT_THROW(sim.set_noise_current(-1.0, 1), std::invalid_argument);
  sim.run_periods(1.0);
  EXPECT_THROW(sim.set_noise_current(1e-3, 1), std::invalid_argument);
}

TEST(NoiseInjection, OutputPsdMatchesHtmPrediction) {
  // Small noise keeps the loop linear; compare the Welch periodogram of
  // theta against the folded charge-pump noise transfer.
  const double ratio = 0.1;
  const PllParameters p = make_typical_loop(ratio * kW0, kW0);
  const double sigma = 1e-4 * p.icp;

  TransientConfig cfg;
  cfg.sample_interval = 0.25;  // 4 samples per period
  PllTransientSim sim(p, {}, cfg);
  sim.set_noise_current(sigma, 12345);
  sim.set_recording(false);
  sim.run_periods(300.0);  // settle into the stochastic steady state
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(16384.0);

  const std::vector<double> freqs{0.02 * kW0, 0.06 * kW0, 0.15 * kW0,
                                  0.3 * kW0};
  const auto measured = averaged_periodogram(sim.theta_samples(), freqs,
                                             cfg.sample_interval, 48);

  const SamplingPllModel model(p);
  const NoiseAnalysis na(model, 12);
  const auto s_icp = [&](double w) {
    return held_noise_psd(w, sigma, 1.0);
  };
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double predicted =
        na.output_psd_from_charge_pump(freqs[i], s_icp);
    const double ratio_db =
        10.0 * std::log10(measured[i] / predicted);
    EXPECT_LT(std::abs(ratio_db), 2.5)
        << "w/w0 = " << freqs[i] / kW0 << " measured " << measured[i]
        << " predicted " << predicted;
  }
}

TEST(NoiseInjection, OutputVarianceScalesWithSigmaSquared) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  auto variance = [&](double sigma) {
    PllTransientSim sim(p);
    sim.set_noise_current(sigma, 777);
    sim.set_recording(false);
    sim.run_periods(200.0);
    sim.set_recording(true);
    sim.clear_samples();
    sim.run_periods(2000.0);
    double mean = 0.0;
    for (double th : sim.theta_samples()) mean += th;
    mean /= static_cast<double>(sim.theta_samples().size());
    double var = 0.0;
    for (double th : sim.theta_samples()) {
      var += (th - mean) * (th - mean);
    }
    return var / static_cast<double>(sim.theta_samples().size());
  };
  const double v1 = variance(1e-4 * p.icp);
  const double v2 = variance(2e-4 * p.icp);
  // Same seed, same noise path: exact quadratic scaling of the linear
  // response.
  EXPECT_NEAR(v2 / v1, 4.0, 0.2);
}

}  // namespace
}  // namespace htmpll

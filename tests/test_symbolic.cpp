#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/symbolic.hpp"
#include "htmpll/lti/loop_filter.hpp"

namespace htmpll {
namespace {

const cplx j{0.0, 1.0};
constexpr double kW0 = 2.0 * std::numbers::pi;

LambdaExpression typical_lambda(double ratio) {
  const PllParameters p = make_typical_loop(ratio * kW0, kW0);
  return LambdaExpression(p.open_loop_gain(), kW0);
}

TEST(Symbolic, MatchesAliasingSumEverywhere) {
  const PllParameters p = make_typical_loop(0.2 * kW0, kW0);
  const LambdaExpression lam(p.open_loop_gain(), kW0);
  const AliasingSum ref(p.open_loop_gain(), kW0);
  for (double f : {0.03, 0.11, 0.27, 0.46}) {
    const cplx s = j * (f * kW0);
    const cplx a = lam(s);
    const cplx b = ref.exact(s);
    EXPECT_NEAR(std::abs(a - b) / std::abs(b), 0.0, 1e-12) << "f = " << f;
  }
}

TEST(Symbolic, TermStructureOfTypicalLoop) {
  // A has a double pole at 0 and a simple pole at -wp: expect S1 + S2 at
  // 0 and S1 at -wp (any zero residues dropped).
  const LambdaExpression lam = typical_lambda(0.1);
  int s1_at_zero = 0, s2_at_zero = 0, s1_at_wp = 0;
  for (const CothTerm& t : lam.terms()) {
    if (std::abs(t.pole) < 1e-9) {
      if (t.order == 1) ++s1_at_zero;
      if (t.order == 2) ++s2_at_zero;
    } else if (t.order == 1) {
      ++s1_at_wp;
      EXPECT_NEAR(std::abs(t.pole + 4.0 * 0.1 * kW0) / (0.4 * kW0), 0.0,
                  1e-6);
    }
  }
  EXPECT_EQ(s1_at_zero, 1);
  EXPECT_EQ(s2_at_zero, 1);
  EXPECT_EQ(s1_at_wp, 1);
}

TEST(Symbolic, DerivativeMatchesFiniteDifference) {
  const LambdaExpression lam = typical_lambda(0.15);
  for (double f : {0.08, 0.22, 0.41}) {
    const cplx s = j * (f * kW0);
    const double h = 1e-6;
    const cplx fd = (lam(s + h) - lam(s - h)) / (2.0 * h);
    const cplx an = lam.derivative(s);
    EXPECT_NEAR(std::abs(an - fd) / std::abs(fd), 0.0, 1e-6) << "f = " << f;
  }
}

TEST(Symbolic, DifferentiatedExpressionEvaluatesToDerivative) {
  const LambdaExpression lam = typical_lambda(0.1);
  const LambdaExpression dlam = lam.differentiated();
  const cplx s = j * (0.2 * kW0);
  EXPECT_NEAR(std::abs(dlam(s) - lam.derivative(s)), 0.0,
              1e-12 * std::abs(lam.derivative(s)));
}

TEST(Symbolic, PeriodicityInJw0) {
  const LambdaExpression lam = typical_lambda(0.2);
  const cplx s = cplx{-0.05 * kW0, 0.3 * kW0};
  EXPECT_NEAR(std::abs(lam(s) - lam(s + j * kW0)) / std::abs(lam(s)), 0.0,
              1e-10);
}

TEST(Symbolic, ToStringNamesAllTerms) {
  const LambdaExpression lam = typical_lambda(0.1);
  const std::string text = lam.to_string();
  EXPECT_NE(text.find("S1"), std::string::npos);
  EXPECT_NE(text.find("S2"), std::string::npos);
  EXPECT_NE(text.find("coth"), std::string::npos);
}

TEST(Symbolic, RejectsExcessMultiplicity) {
  // Quadruple pole: derivative would need S5.
  const RationalFunction h(
      Polynomial::constant(1.0),
      Polynomial::from_roots({cplx{-1.0}, cplx{-1.0}, cplx{-1.0},
                              cplx{-1.0}}));
  EXPECT_THROW(LambdaExpression(h, 1.0), std::invalid_argument);
}

TEST(Symbolic, RejectsImproper) {
  const RationalFunction biproper(Polynomial::from_real({1.0, 1.0}),
                                  Polynomial::from_real({2.0, 1.0}));
  EXPECT_THROW(LambdaExpression(biproper, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/core/pole_search.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;

SamplingPllModel make_model(double ratio) {
  return SamplingPllModel(make_typical_loop(ratio * kW0, kW0));
}

TEST(PoleSearch, ResidualsVanishOnOnePlusLambda) {
  const SamplingPllModel m = make_model(0.15);
  const auto poles = closed_loop_poles(m);
  ASSERT_GE(poles.size(), 2u);
  for (const ClosedLoopPole& p : poles) {
    EXPECT_LT(p.residual, 1e-9) << "pole at " << p.s.real();
  }
}

TEST(PoleSearch, PolesLieInFundamentalStrip) {
  const auto poles = closed_loop_poles(make_model(0.2));
  for (const ClosedLoopPole& p : poles) {
    EXPECT_LE(p.s.imag(), 0.5 * kW0 + 1e-9);
    EXPECT_GT(p.s.imag(), -0.5 * kW0 - 1e-9);
  }
}

TEST(PoleSearch, StableLoopHasAllLeftHalfPlanePoles) {
  for (double ratio : {0.05, 0.15, 0.25}) {
    for (const ClosedLoopPole& p : closed_loop_poles(make_model(ratio))) {
      EXPECT_LT(p.s.real(), 0.0) << "ratio " << ratio;
      EXPECT_GT(p.damping, 0.0);
    }
  }
}

TEST(PoleSearch, UnstableLoopHasRightHalfPlanePole) {
  const auto poles = closed_loop_poles(make_model(0.32));
  bool rhp = false;
  for (const ClosedLoopPole& p : poles) rhp = rhp || p.s.real() > 0.0;
  EXPECT_TRUE(rhp);
}

TEST(PoleSearch, AgreesWithZDomainPolesMappedBack) {
  const SamplingPllModel m = make_model(0.2);
  const ImpulseInvariantModel zm(m.open_loop_gain(), kW0);
  const auto s_poles = closed_loop_poles(m);
  const double t = 2.0 * std::numbers::pi / kW0;
  // Every refined s-pole must map onto some z-characteristic root.
  for (const ClosedLoopPole& p : s_poles) {
    const cplx z = std::exp(p.s * t);
    double best = 1e300;
    for (const cplx& zr : zm.closed_loop_poles()) {
      best = std::min(best, std::abs(z - zr));
    }
    EXPECT_LT(best, 1e-7) << "pole " << p.s.real() << "+" << p.s.imag()
                          << "j";
  }
}

TEST(PoleSearch, DampingCollapsesTowardInstability) {
  // The dominant (lowest-|s|) complex pole's damping must fall as the
  // loop speeds up -- the pole-domain view of Fig. 7's PM collapse.
  double prev = 1.0;
  for (double ratio : {0.05, 0.1, 0.2, 0.25}) {
    const auto poles = closed_loop_poles(make_model(ratio));
    ASSERT_FALSE(poles.empty());
    // Find the least-damped pole.
    double zeta = 1.0;
    for (const ClosedLoopPole& p : poles) zeta = std::min(zeta, p.damping);
    EXPECT_LT(zeta, prev + 1e-12) << "ratio " << ratio;
    prev = zeta;
  }
  EXPECT_LT(prev, 0.2);  // near the boundary the loop is barely damped
}

TEST(PoleSearch, RefineFromPerturbedSeedConverges) {
  const SamplingPllModel m = make_model(0.15);
  const LambdaExpression lam(m.open_loop_gain(), kW0);
  const auto poles = closed_loop_poles(m);
  ASSERT_FALSE(poles.empty());
  const cplx truth = poles.back().s;
  const ClosedLoopPole refined = refine_closed_loop_pole(
      lam, truth * cplx{1.02, 0.01});
  EXPECT_NEAR(std::abs(refined.s - truth) / std::abs(truth), 0.0, 1e-8);
}

TEST(PoleSearch, BatchedNewtonMatchesScalarEngine) {
  // The masked lockstep Newton (eval-plan path) and the symbolic scalar
  // fallback polish the same seeds against the same mathematical object;
  // each refined pole must match its scalar twin to well below the
  // 1e-9-relative bench gate.  Conjugate pairs share |s|, so the sorted
  // outputs are compared by nearest match rather than by index.
  for (double ratio : {0.08, 0.15, 0.25}) {
    const SamplingPllModel m = make_model(ratio);
    ASSERT_TRUE(m.has_eval_plan());
    PoleSearchOptions scalar;
    scalar.use_eval_plan = false;
    const auto batched = closed_loop_poles(m);
    const auto reference = closed_loop_poles(m, scalar);
    ASSERT_EQ(batched.size(), reference.size()) << "ratio " << ratio;
    for (const ClosedLoopPole& sp : reference) {
      double best = 1e300;
      for (const ClosedLoopPole& bp : batched) {
        best = std::min(best, std::abs(bp.s - sp.s) / std::abs(sp.s));
      }
      EXPECT_LT(best, 1e-10) << "ratio " << ratio;
    }
    for (const ClosedLoopPole& bp : batched) {
      EXPECT_TRUE(bp.converged) << "ratio " << ratio;
      EXPECT_LT(bp.residual, 1e-9) << "ratio " << ratio;
    }
  }
}

TEST(PoleSearch, BatchedRefineTracksScalarFromPerturbedSeeds) {
  const SamplingPllModel m = make_model(0.18);
  const LambdaExpression lam(m.open_loop_gain(), kW0);
  const auto poles = closed_loop_poles(m);
  ASSERT_GE(poles.size(), 2u);
  std::vector<cplx> seeds;
  for (const ClosedLoopPole& p : poles) {
    seeds.push_back(p.s * cplx{1.01, -0.02});
  }
  const auto batched = refine_closed_loop_poles(m, seeds);
  ASSERT_EQ(batched.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const ClosedLoopPole ref = refine_closed_loop_pole(lam, seeds[i]);
    EXPECT_LT(std::abs(batched[i].s - ref.s) / std::abs(ref.s), 1e-9)
        << "seed " << i;
  }
}

TEST(PoleSearch, RequiresTimeInvariantVco) {
  const PllParameters p = make_typical_loop(0.1 * kW0, kW0);
  const SamplingPllModel m(
      p, HarmonicCoefficients::real_waveform(1.0, {cplx{0.2}}));
  EXPECT_THROW(closed_loop_poles(m), std::invalid_argument);
}

}  // namespace
}  // namespace htmpll

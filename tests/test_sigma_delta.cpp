#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "htmpll/fracn/fracn_noise.hpp"
#include "htmpll/fracn/sigma_delta.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {
namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;  // T = 1

TEST(Accumulator, MeanAndRange) {
  AccumulatorModulator acc(3, 8);  // alpha = 3/8
  int sum = 0;
  for (int n = 0; n < 8000; ++n) {
    const int y = acc.next();
    EXPECT_TRUE(y == 0 || y == 1);
    sum += y;
  }
  EXPECT_NEAR(static_cast<double>(sum) / 8000.0, acc.mean(), 1e-3);
}

TEST(Accumulator, PeriodicForRationalWord) {
  // word/modulus = 1/4: carries exactly every 4th step.
  AccumulatorModulator acc(1, 4);
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(acc.next(), 0);
    EXPECT_EQ(acc.next(), 0);
    EXPECT_EQ(acc.next(), 0);
    EXPECT_EQ(acc.next(), 1);
  }
}

TEST(Mash, MeanMatchesWord) {
  Mash111 mash(104857u, 1u << 20);  // ~0.1 with odd numerator
  const auto seq = mash.sequence(1u << 16);
  double sum = 0.0;
  for (int y : seq) sum += y;
  EXPECT_NEAR(sum / static_cast<double>(seq.size()), mash.mean(), 2e-4);
}

TEST(Mash, OutputRangeBounded) {
  Mash111 mash(777777u, 1u << 20);
  for (int n = 0; n < 200000; ++n) {
    const int y = mash.next();
    EXPECT_GE(y, -3);
    EXPECT_LE(y, 4);
  }
}

TEST(Mash, ValidatesArguments) {
  EXPECT_THROW(Mash111(5, 0), std::invalid_argument);
  EXPECT_THROW(Mash111(8, 8), std::invalid_argument);
  EXPECT_THROW(AccumulatorModulator(9, 8), std::invalid_argument);
}

TEST(Mash, PhaseSequenceIsBoundedByShaping) {
  // (1-z^-1)^3 shaping integrates once in the phase accumulation: the
  // phase error sequence stays bounded (second-difference of a bounded
  // accumulator state), unlike a first-order modulator's ramping error.
  Mash111 mash(104857u, 1u << 20);
  const double t_vco = 0.01;
  const auto e = divider_phase_sequence(mash, t_vco, 100000);
  double emax = 0.0;
  for (double v : e) emax = std::max(emax, std::abs(v));
  EXPECT_LT(emax, 10.0 * t_vco);  // a few VCO periods at most
}

TEST(Mash, PeriodogramFollowsShapingLaw) {
  // The measured PSD of the accumulated phase error must follow the
  // |2 sin(w T/2)|^(2(m-1)) law within ~2 dB over mid frequencies.
  Mash111 mash(104857u, 1u << 20);
  const double t_vco = 1.0 / 64.0;  // N = 64
  const auto e = divider_phase_sequence(mash, t_vco, 1u << 16);
  const std::vector<double> w = logspace(0.05 * kW0, 0.45 * kW0, 7);
  const auto measured = averaged_periodogram(e, w, 1.0, 32);
  const auto theory = mash_phase_psd(w, t_vco, 1.0, 3);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double ratio_db = 10.0 * std::log10(measured[i] / theory[i]);
    EXPECT_LT(std::abs(ratio_db), 2.0)
        << "w/w0 = " << w[i] / kW0 << " measured " << measured[i]
        << " theory " << theory[i];
  }
}

TEST(Mash, ShapingSlopeIsFortyDbPerDecade) {
  // Phase error: (m-1) = 2 differentiations -> +40 dB/dec.
  const std::vector<double> w{0.01 * kW0, 0.1 * kW0};
  const auto s = mash_phase_psd(w, 0.01, 1.0, 3);
  const double slope_db =
      10.0 * std::log10(s[1] / s[0]);  // per decade
  EXPECT_NEAR(slope_db, 40.0, 1.0);
}

TEST(FracnNoise, OutputPsdRisesTowardBandEdgeForMash3) {
  // MASH-3 noise rises +40 dB/dec (in phase) while this loop's H_00
  // rolls off only -20..-40 dB/dec beyond crossover: the output
  // quantization noise keeps RISING toward w0/2 -- the textbook reason
  // fractional-N loops need narrow bandwidth or extra filter order.
  const SamplingPllModel model(make_typical_loop(0.05 * kW0, kW0));
  const double t_vco = 1.0 / 100.0;
  const double low = fracn_output_psd(model, 0.003 * kW0, t_vco);
  const double mid = fracn_output_psd(model, 0.05 * kW0, t_vco);
  const double high = fracn_output_psd(model, 0.45 * kW0, t_vco);
  EXPECT_GT(mid, low);
  EXPECT_GT(high, mid);
}

TEST(FracnNoise, ExtraFilterPoleTamesTheBandEdge) {
  // Adding a strong extra pole (steeper high-frequency rolloff) must
  // cut the band-edge quantization noise while leaving the in-band
  // response essentially unchanged.
  const PllParameters p = make_typical_loop(0.05 * kW0, kW0);
  const SamplingPllModel plain(p);
  const RationalFunction extra_pole(
      Polynomial::constant(0.2 * kW0),
      Polynomial::from_real({0.2 * kW0, 1.0}));
  const SamplingPllModel filtered(p, HarmonicCoefficients(cplx{1.0}), {},
                                  extra_pole);
  const double t_vco = 1.0 / 100.0;
  const double edge_plain = fracn_output_psd(plain, 0.45 * kW0, t_vco);
  const double edge_filt = fracn_output_psd(filtered, 0.45 * kW0, t_vco);
  EXPECT_LT(edge_filt, 0.3 * edge_plain);
  const double in_plain = fracn_output_psd(plain, 0.005 * kW0, t_vco);
  const double in_filt = fracn_output_psd(filtered, 0.005 * kW0, t_vco);
  EXPECT_NEAR(in_filt / in_plain, 1.0, 0.1);
}

TEST(FracnNoise, NarrowerLoopIntegratesLessNoise) {
  const double t_vco = 1.0 / 100.0;
  const SamplingPllModel narrow(make_typical_loop(0.02 * kW0, kW0));
  const SamplingPllModel wide(make_typical_loop(0.15 * kW0, kW0));
  const double rms_narrow =
      fracn_output_rms(narrow, t_vco, 1e-3 * kW0, 0.49 * kW0);
  const double rms_wide =
      fracn_output_rms(wide, t_vco, 1e-3 * kW0, 0.49 * kW0);
  EXPECT_LT(rms_narrow, 0.5 * rms_wide);
}

TEST(FracnNoise, ScalesWithVcoPeriod) {
  const SamplingPllModel model(make_typical_loop(0.1 * kW0, kW0));
  const double a = fracn_output_psd(model, 0.1 * kW0, 0.01);
  const double b = fracn_output_psd(model, 0.1 * kW0, 0.02);
  EXPECT_NEAR(b / a, 4.0, 1e-9);  // t_vco^2 scaling
}

}  // namespace
}  // namespace htmpll

// Monte Carlo ensemble-engine benchmark: the lockstep SoA transient
// engine (EnsembleTransientEngine) against the per-member scalar chain
// at equal thread count.
//
//   1. headline: a 64-member held-charge-pump-noise ensemble, lockstep
//      vs scalar-forced (use_ensemble_engine = false).  Contract:
//      speedup >= 2.5x at equal thread count, NoiseRunStats bitwise
//      identical on the default path AND under the forced-scalar pin
//      (what HTMPLL_ENSEMBLE=0 sets).
//   2. parity sweeps: acquisition_periods (lock-retirement path) and
//      step_response_batch (identical-member lockstep blocks) must be
//      bitwise identical to the scalar chain.
//   3. telemetry: lockstep round/batched/scalar step counters and the
//      shared-store hit rate from a counting pass.
//
// Writes a machine-readable report (default BENCH_mc.json).
//
// Usage: bench_mc [output.json] [--check] [--smoke]
//   --check: additionally exit non-zero if the lockstep speedup drops
//            below 2.5x the scalar chain.
//   --smoke: single-rep timing with a reduced horizon, parity gates
//            only (the 2.5x speedup gate is skipped even with --check).
#include <cstring>
#include <iostream>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/ensemble_sim.hpp"
#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bits_equal(const NoiseRunStats& a, const NoiseRunStats& b) {
  return bits_equal(a.theta_mean, b.theta_mean) &&
         bits_equal(a.theta_rms, b.theta_rms) &&
         bits_equal(a.theta_peak, b.theta_peak) && a.events == b.events;
}

bool bits_equal(const std::vector<NoiseRunStats>& a,
                const std::vector<NoiseRunStats>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i])) return false;
  }
  return true;
}

double counter_value(const char* name) {
  return static_cast<double>(obs::counter(name).value());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_mc.json";
  bool check = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const int reps = smoke ? 1 : 3;
  const PllParameters loop = make_typical_loop(0.1 * w0, w0);
  const double sigma = 1e-4 * loop.icp;
  const std::size_t n_members = 64;
  const std::uint64_t seed = 2024;

  NoiseEnsembleOptions ensemble_opts;
  ensemble_opts.settle_periods = smoke ? 20.0 : 100.0;
  ensemble_opts.measure_periods = smoke ? 100.0 : 1000.0;
  NoiseEnsembleOptions scalar_opts = ensemble_opts;
  scalar_opts.mc.use_ensemble_engine = false;

  ThreadPool& pool = ThreadPool::global();
  std::cout << "=== Lockstep ensemble engine benchmark: " << n_members
            << "-member noise ensemble, " << pool.threads()
            << " threads ===\n\n";

  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;

  // --- counting pass: lockstep telemetry of one ensemble run ------------
  obs::reset_counters();
  const auto stats_ensemble =
      run_noise_ensemble(loop, sigma, seed, n_members, ensemble_opts, pool);
  const double batched_steps =
      counter_value("timedomain.ensemble_batched_steps");
  const double scalar_steps =
      counter_value("timedomain.ensemble_scalar_steps");
  const double store_lookups =
      counter_value("timedomain.ensemble_store_lookups");
  const double store_misses =
      counter_value("timedomain.ensemble_store_misses");

  // --- parity: default path, forced-scalar pin, scalar chain ------------
  const auto stats_scalar =
      run_noise_ensemble(loop, sigma, seed, n_members, scalar_opts, pool);
  std::vector<NoiseRunStats> stats_pinned;
  {
    // What HTMPLL_ENSEMBLE=0 sets: the pin must route the ensemble-
    // enabled options onto the scalar chain, bit for bit.
    mc::set_ensemble_enabled(false);
    stats_pinned =
        run_noise_ensemble(loop, sigma, seed, n_members, ensemble_opts, pool);
    mc::set_ensemble_enabled(true);
  }
  const bool noise_parity = bits_equal(stats_ensemble, stats_scalar);
  const bool pin_parity = bits_equal(stats_pinned, stats_scalar);

  // Acquisition: one block with lock-retirement (mixed offsets) plus a
  // second loop to split the grouping.
  std::vector<AcquisitionCase> cases;
  const PllParameters loop2 = make_typical_loop(0.2 * w0, w0);
  for (double off : {0.0, 0.001, 0.05, 0.005, 0.02}) {
    cases.push_back({loop, off});
  }
  cases.push_back({loop2, 0.01});
  AcquisitionOptions aq_opts;
  aq_opts.max_periods = 600.0;
  AcquisitionOptions aq_scalar = aq_opts;
  aq_scalar.mc.use_ensemble_engine = false;
  bool acquisition_parity = true;
  bench::run_phase(phases, "acquisition_parity", [&] {
    const auto got = acquisition_periods(cases, aq_opts, pool);
    const auto want = acquisition_periods(cases, aq_scalar, pool);
    for (std::size_t i = 0; i < got.size(); ++i) {
      acquisition_parity =
          acquisition_parity && bits_equal(got[i], want[i]);
    }
  });

  // Step responses: repeated identical loops exercise full-width
  // lockstep blocks, the odd one out exercises the group split.
  std::vector<PllParameters> step_loops(8, loop);
  step_loops.push_back(loop2);
  MonteCarloOptions step_scalar;
  step_scalar.use_ensemble_engine = false;
  bool step_parity = true;
  bench::run_phase(phases, "step_response_parity", [&] {
    const auto got = step_response_batch(step_loops, 100, 1e-3, {}, pool);
    const auto want =
        step_response_batch(step_loops, 100, 1e-3, step_scalar, pool);
    for (std::size_t k = 0; k < got.size(); ++k) {
      step_parity = step_parity && got[k].size() == want[k].size();
      for (std::size_t i = 0; step_parity && i < got[k].size(); ++i) {
        step_parity = bits_equal(got[k][i], want[k][i]);
      }
    }
  });

  // --- headline timing: lockstep vs scalar at equal threads -------------
  double t_scalar = 0.0;
  bench::run_phase(phases, "noise_scalar", [&] {
    t_scalar = time_best_of(reps, [&] {
      run_noise_ensemble(loop, sigma, seed, n_members, scalar_opts, pool);
    });
  });
  double t_ensemble = 0.0;
  bench::run_phase(phases, "noise_ensemble", [&] {
    t_ensemble = time_best_of(reps, [&] {
      run_noise_ensemble(loop, sigma, seed, n_members, ensemble_opts, pool);
    });
  });
  const double speedup = t_scalar / t_ensemble;

  // --- console summary --------------------------------------------------
  const double steps_total = batched_steps + scalar_steps;
  Table table({"section", "metric", "value"});
  table.add_row({"noise", "scalar_s", std::to_string(t_scalar)});
  table.add_row({"noise", "ensemble_s", std::to_string(t_ensemble)});
  table.add_row({"noise", "speedup", std::to_string(speedup)});
  table.add_row({"noise", "batched member steps",
                 std::to_string(static_cast<long long>(batched_steps))});
  table.add_row({"noise", "scalar member steps",
                 std::to_string(static_cast<long long>(scalar_steps))});
  table.add_row({"noise", "store hit rate",
                 std::to_string(store_lookups > 0.0
                                    ? 1.0 - store_misses / store_lookups
                                    : 0.0)});
  table.add_row({"parity", "noise bitwise", noise_parity ? "yes" : "NO"});
  table.add_row({"parity", "forced-scalar pin bitwise",
                 pin_parity ? "yes" : "NO"});
  table.add_row({"parity", "acquisition bitwise",
                 acquisition_parity ? "yes" : "NO"});
  table.add_row({"parity", "step response bitwise",
                 step_parity ? "yes" : "NO"});
  table.print(std::cout);
  std::cout << "\nlockstep speedup " << speedup
            << "x (target >= 2.5 at equal threads), batched share "
            << (steps_total > 0.0 ? batched_steps / steps_total : 0.0)
            << "\n";

  // --- report -----------------------------------------------------------
  Json report = Json::object();
  report.set("benchmark", Json::string("bench_mc"));
  report.set("smoke", Json::boolean(smoke));
  Json mc = Json::object();
  mc.set("members", Json::number(static_cast<double>(n_members)));
  mc.set("threads", Json::number(static_cast<double>(pool.threads())));
  mc.set("settle_periods", Json::number(ensemble_opts.settle_periods));
  mc.set("measure_periods", Json::number(ensemble_opts.measure_periods));
  mc.set("scalar_s", Json::number(t_scalar));
  mc.set("ensemble_s", Json::number(t_ensemble));
  mc.set("ensemble_speedup_vs_scalar", Json::number(speedup));
  mc.set("batched_member_steps", Json::number(batched_steps));
  mc.set("scalar_member_steps", Json::number(scalar_steps));
  mc.set("store_lookups", Json::number(store_lookups));
  mc.set("store_misses", Json::number(store_misses));
  mc.set("noise_parity_bitwise", Json::boolean(noise_parity));
  mc.set("forced_scalar_bitwise", Json::boolean(pin_parity));
  mc.set("acquisition_parity_bitwise", Json::boolean(acquisition_parity));
  mc.set("step_response_parity_bitwise", Json::boolean(step_parity));
  report.set("mc", mc);
  report.set("telemetry", bench::telemetry_json(phases));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_mc", phases);
  manifest.set_config("members", static_cast<double>(n_members));
  manifest.set_config("measure_periods", ensemble_opts.measure_periods);
  manifest.set_config("reps", static_cast<double>(reps));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  bool failed = false;
  if (!noise_parity || !pin_parity) {
    std::cerr << "FAIL: noise ensemble is not bitwise identical to the "
                 "scalar chain (default "
              << (noise_parity ? "ok" : "DIFFERS") << ", forced-scalar pin "
              << (pin_parity ? "ok" : "DIFFERS") << ")\n";
    failed = true;
  }
  if (!acquisition_parity) {
    std::cerr << "FAIL: acquisition_periods differs from the scalar "
                 "chain\n";
    failed = true;
  }
  if (!step_parity) {
    std::cerr << "FAIL: step_response_batch differs from the scalar "
                 "chain\n";
    failed = true;
  }
  if (check && !smoke && speedup < 2.5) {
    std::cerr << "FAIL: lockstep ensemble speedup " << speedup
              << "x below the 2.5x target\n";
    failed = true;
  }
  return failed ? 1 : 0;
}

// Harmonic Bode plot: |H_{n,0}(jw)| for output bands n = 0..3 as a
// function of the baseband input frequency -- Fig. 2's band-transfer
// picture swept over frequency.  Every column is one HTM row element
// V~_n/(1 + lambda) of the rank-one closed loop (eq. 36): the baseband
// column is the paper's Fig. 6 curve, the n >= 1 columns are the spur /
// sideband transfers that only the time-varying description produces.
//
// Usage: harmonic_bode [output.csv]
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const double ratio = 0.2;
  const SamplingPllModel model(make_typical_loop(ratio * w0, w0));

  std::cout << "=== Harmonic Bode plot |H_n0(jw)| dB, w_UG/w0 = " << ratio
            << " ===\n\n";
  Table t({"w/w0", "n=0 (Fig.6)", "n=1", "n=2", "n=3", "n=-1"});
  // One batched call: all five band columns share a single lambda
  // evaluation and shifted-gain table per grid point.
  const std::vector<int> bands = {0, 1, 2, 3, -1};
  const std::vector<double> w_grid = logspace(1e-3 * w0, 0.49 * w0, 21);
  const std::vector<CVector> h = model.closed_loop_grid(bands,
                                                        jw_grid(w_grid));
  t.reserve(w_grid.size());
  for (std::size_t i = 0; i < w_grid.size(); ++i) {
    t.add_row(std::vector<double>{
        w_grid[i] / w0, magnitude_db(h[0][i]), magnitude_db(h[1][i]),
        magnitude_db(h[2][i]), magnitude_db(h[3][i]),
        magnitude_db(h[4][i])});
  }
  t.print(std::cout);
  std::cout << "\nreading: a reference tone at w/w0 leaves the loop at "
               "n w0 + w with these gains.  The n = -1 image rises as w "
               "approaches w0/2 (it lands at w0 - w, approaching the "
               "baseband response) -- the crosstalk that limits "
               "measurement accuracy near the Nyquist edge.\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

// Fig. 5 reproduction: the typical open-loop gain characteristic A(jw).
//
// Three poles (two at DC) and one zero; the frequency axis is normalized
// to the unity-gain frequency w_UG, exactly as in the paper.  Expected
// shape: -40 dB/dec below the zero at w_UG/4, -20 dB/dec through
// crossover, -40 dB/dec again beyond the parasitic pole at 4 w_UG; the
// phase starts at -180 deg, peaks near crossover (phase margin ~62 deg)
// and returns toward -180 deg.
//
// Usage: fig5_openloop [output.csv]
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1; w_UG/w0 irrelevant here
  const double w_ug = 0.1 * w0;
  const PllParameters params = make_typical_loop(w_ug, w0);
  const RationalFunction a = params.open_loop_gain();

  std::cout << "=== Fig. 5: typical open-loop characteristic A(jw) ===\n";
  std::cout << "A(s) = " << a.to_string() << "\n";
  std::cout << "zero at w_UG/4, parasitic pole at 4*w_UG, |A(j w_UG)| = 1\n\n";

  const FrequencyResponse resp = [&a](double w) {
    return a(cplx{0.0, w});
  };
  // Evaluate the grid on the sweep engine, then unwrap serially.
  const std::vector<double> grid = logspace(1e-2 * w_ug, 1e2 * w_ug, 33);
  const CVector samples =
      SweepRunner().run_jw(grid, [&a](cplx s) { return a(s); });
  const auto sweep = bode_points_from_samples(grid, samples);

  Table t({"w/w_UG", "mag_dB", "phase_deg"});
  t.reserve(sweep.size());
  for (const BodePoint& p : sweep) {
    t.add_row(std::vector<double>{p.w / w_ug, p.mag_db, p.phase_deg});
  }
  t.print(std::cout);

  const auto cross = find_gain_crossover(resp, 1e-3 * w_ug, 1e3 * w_ug);
  std::cout << "\nunity-gain crossover: w/w_UG = "
            << cross->frequency / w_ug
            << ",  classical phase margin = " << cross->phase_margin_deg
            << " deg (analytic " << typical_loop_lti_phase_margin_deg()
            << " deg)\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

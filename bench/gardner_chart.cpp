// Stability chart in the style of the discrete-time CP-PLL literature
// (Gardner 1980, Hein & Scott 1988 -- the paper's refs [3] and [5]):
// maximum stable w_UG/w0 versus the zero-placement factor gamma, for the
// classic second-order loop (no ripple capacitor) and the paper's
// third-order loop (ripple pole at gamma*w_UG).
//
// Three verdicts per point, which must and do agree:
//   * the lambda(j w0/2) = -1 half-rate criterion (HTM model),
//   * z-domain closed-loop poles (impulse-invariant model),
//   * the Schur-Cohn/Jury test.
// Classical LTI analysis puts the entire chart at "stable".
//
// Usage: gardner_chart [output.csv]
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/util/table.hpp"
#include "htmpll/ztrans/jury.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace {

using namespace htmpll;

// The 2nd-order family keeps gaining margin with gamma; cap the search
// at 0.9 (a crossover nearly at the reference rate is academic anyway).
template <typename MakeLoop>
double boundary_lambda(MakeLoop make, double w0, double gamma) {
  double lo = 0.02, hi = 0.9;
  for (int it = 0; it < 45; ++it) {
    const double mid = 0.5 * (lo + hi);
    const SamplingPllModel m(make(mid * w0, w0, gamma));
    (half_rate_lambda(m) > -1.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

template <typename MakeLoop>
double boundary_zdomain(MakeLoop make, double w0, double gamma) {
  double lo = 0.02, hi = 0.9;
  for (int it = 0; it < 45; ++it) {
    const double mid = 0.5 * (lo + hi);
    const ImpulseInvariantModel zm(
        make(mid * w0, w0, gamma).open_loop_gain(), w0);
    (zm.is_stable() ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main(int argc, char** argv) {
  const double w0 = 2.0 * std::numbers::pi;

  std::cout << "=== Stability chart: max stable w_UG/w0 vs gamma ===\n\n";
  Table t({"gamma", "2nd-order (lambda)", "2nd-order (z-poles)",
           "3rd-order (lambda)", "3rd-order (z-poles)"});
  // gamma > 1 required for the 3rd-order loop (zero below the pole).
  for (double gamma : {1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0}) {
    t.add_row(std::vector<double>{
        gamma,
        boundary_lambda(make_second_order_loop, w0, gamma),
        boundary_zdomain(make_second_order_loop, w0, gamma),
        boundary_lambda(make_typical_loop, w0, gamma),
        boundary_zdomain(make_typical_loop, w0, gamma)});
  }
  t.print(std::cout);

  std::cout << "\nobservations:\n"
            << " * the two criteria agree to bisection accuracy at every "
               "point (same mathematical object via Poisson summation)\n"
            << " * wider zero splits (larger gamma) buy more usable "
               "bandwidth; the ripple pole of the 3rd-order loop costs a "
               "large fraction of it\n"
            << " * LTI analysis predicts stability everywhere on this "
               "chart\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

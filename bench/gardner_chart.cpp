// Stability chart in the style of the discrete-time CP-PLL literature
// (Gardner 1980, Hein & Scott 1988 -- the paper's refs [3] and [5]):
// maximum stable w_UG/w0 versus the zero-placement factor gamma, for the
// classic second-order loop (no ripple capacitor) and the paper's
// third-order loop (ripple pole at gamma*w_UG).
//
// Three verdicts per point, which must and do agree:
//   * the lambda(j w0/2) = -1 half-rate criterion (HTM model),
//   * z-domain closed-loop poles (impulse-invariant model),
//   * the Schur-Cohn/Jury test.
// Classical LTI analysis puts the entire chart at "stable".
//
// The per-gamma boundary hunts run through the design-sweep engine
// (gardner_stability_rows), one row per pool slot.
//
// Usage: gardner_chart [output.csv]
#include <iostream>
#include <numbers>
#include <vector>

#include "htmpll/design/design_sweep.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;

  std::cout << "=== Stability chart: max stable w_UG/w0 vs gamma ===\n\n";
  Table t({"gamma", "2nd-order (lambda)", "2nd-order (z-poles)",
           "3rd-order (lambda)", "3rd-order (z-poles)"});
  // gamma > 1 required for the 3rd-order loop (zero below the pole).
  const std::vector<double> gammas = {1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0};
  const std::vector<GardnerRow> rows = gardner_stability_rows(w0, gammas);
  for (const GardnerRow& row : rows) {
    t.add_row(std::vector<double>{
        row.gamma, row.second_order.lambda_ratio,
        row.second_order.zdomain_ratio, row.third_order.lambda_ratio,
        row.third_order.zdomain_ratio});
  }
  t.print(std::cout);

  std::cout << "\nobservations:\n"
            << " * the two criteria agree to bisection accuracy at every "
               "point (same mathematical object via Poisson summation)\n"
            << " * wider zero splits (larger gamma) buy more usable "
               "bandwidth; the ripple pole of the 3rd-order loop costs a "
               "large fraction of it\n"
            << " * LTI analysis predicts stability everywhere on this "
               "chart\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

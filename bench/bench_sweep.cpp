// Sweep-engine benchmark: measures the parallel/batched evaluation
// paths against their naive point-wise counterparts and verifies both
// numerical contracts:
//  * the scalar-forced grid paths (use_eval_plan = false) must be
//    BIT-IDENTICAL to the point-wise calls,
//  * the default eval-plan grid paths must agree with the point-wise
//    calls to <= 1e-12 relative error.
//
//   1. baseband_transfer over a 2000-point log grid: scalar loop,
//      1-thread SweepRunner, global-pool SweepRunner, the scalar-forced
//      grid API, and the compiled-plan grid API (exact and truncated
//      lambda).
//   2. closed_loop_grid over 6 output bands vs a naive nested
//      closed_loop loop (shared lambda + shifted-gain table per point).
//   3. dense kernels: blocked HTM-sized complex matrix product and the
//      transposed-RHS LU multi-solve.
//
// Writes a machine-readable report (default BENCH_sweep.json).
//
// Usage: bench_sweep [output.json] [--check]
//   --check: additionally exit non-zero if the global-pool sweep is
//            slower than the 1-thread sweep on a machine with >= 4
//            hardware threads, or the plan grid is slower than 0.97x
//            the point-wise loop.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <limits>
#include <numbers>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/lu.hpp"
#include "htmpll/linalg/matrix.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/report.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

bool bit_identical(const CVector& a, const CVector& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

double max_rel_err(const CVector& got, const CVector& want) {
  double worst = got.size() == want.size()
                     ? 0.0
                     : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    const double scale = std::max(1e-300, std::abs(want[i]));
    worst = std::max(worst, std::abs(got[i] - want[i]) / scale);
  }
  return worst;
}

/// Deterministic pseudo-random complex fill (no global RNG state).
CMatrix random_matrix(std::size_t n) {
  CMatrix m(n, n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = cplx{next(), next()};
    m(i, i) += cplx{4.0, 0.0};  // keep it comfortably non-singular
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sweep.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const PllParameters params = make_typical_loop(0.1 * w0, w0);
  const SamplingPllModel exact(params);  // default: eval-plan grids
  SamplingPllOptions exact_scalar_opts;
  exact_scalar_opts.use_eval_plan = false;
  const SamplingPllModel exact_scalar(
      params, HarmonicCoefficients(cplx{1.0}), exact_scalar_opts);
  SamplingPllOptions trunc_opts;
  trunc_opts.lambda_method = LambdaMethod::kTruncated;
  trunc_opts.truncation = 16;
  const SamplingPllModel truncated(params, HarmonicCoefficients(cplx{1.0}),
                                   trunc_opts);
  SamplingPllOptions trunc_scalar_opts = trunc_opts;
  trunc_scalar_opts.use_eval_plan = false;
  const SamplingPllModel truncated_scalar(
      params, HarmonicCoefficients(cplx{1.0}), trunc_scalar_opts);

  const std::size_t n_points = 2000;
  const std::vector<double> w_grid = logspace(1e-3 * w0, 0.49 * w0, n_points);
  const CVector s_grid = jw_grid(w_grid);

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t pool_width = ThreadPool::global().threads();
  std::cout << "=== Sweep-engine benchmark: " << n_points
            << " grid points, pool width " << pool_width << " (hardware "
            << hw << ") ===\n\n";

  const int reps = 3;
  const auto scalar_eval = [&exact](cplx s) {
    return exact.baseband_transfer(s);
  };

  // --- 1. baseband transfer sweep, exact lambda -------------------------
  CVector r_pointwise(n_points);
  const double t_pointwise = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n_points; ++i) {
      r_pointwise[i] = exact.baseband_transfer(s_grid[i]);
    }
  });

  ThreadPool serial_pool(1);
  CVector r_serial;
  const double t_serial = time_best_of(reps, [&] {
    r_serial = SweepRunner(serial_pool).run(s_grid, scalar_eval);
  });

  CVector r_parallel;
  const double t_parallel = time_best_of(reps, [&] {
    r_parallel = SweepRunner().run(s_grid, scalar_eval);
  });

  CVector r_grid_scalar;
  const double t_grid_scalar = time_best_of(reps, [&] {
    r_grid_scalar = exact_scalar.baseband_transfer_grid(s_grid);
  });

  CVector r_grid;
  const double t_grid = time_best_of(reps, [&] {
    r_grid = exact.baseband_transfer_grid(s_grid);
  });
  const double exact_plan_err = max_rel_err(r_grid, r_pointwise);

  const bool exact_identical = bit_identical(r_pointwise, r_serial) &&
                               bit_identical(r_pointwise, r_parallel) &&
                               bit_identical(r_pointwise, r_grid_scalar);

  // --- 1b. truncated lambda: the shifted-gain memo also pays serially --
  CVector rt_pointwise(n_points);
  const double tt_pointwise = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n_points; ++i) {
      rt_pointwise[i] = truncated.baseband_transfer(s_grid[i]);
    }
  });
  CVector rt_grid_scalar;
  const double tt_grid_scalar = time_best_of(reps, [&] {
    rt_grid_scalar = truncated_scalar.baseband_transfer_grid(s_grid);
  });
  CVector rt_grid;
  const double tt_grid = time_best_of(reps, [&] {
    rt_grid = truncated.baseband_transfer_grid(s_grid);
  });
  const double trunc_plan_err = max_rel_err(rt_grid, rt_pointwise);
  const bool trunc_identical = bit_identical(rt_pointwise, rt_grid_scalar);

  // --- 2. multi-band closed loop ---------------------------------------
  const std::vector<int> bands = {-2, -1, 0, 1, 2, 3};
  const std::size_t n_band_points = 400;
  const CVector s_band = jw_grid(logspace(1e-3 * w0, 0.49 * w0,
                                          n_band_points));
  std::vector<CVector> cl_naive(bands.size(), CVector(n_band_points));
  const double t_cl_naive = time_best_of(reps, [&] {
    for (std::size_t b = 0; b < bands.size(); ++b) {
      for (std::size_t i = 0; i < n_band_points; ++i) {
        cl_naive[b][i] = exact.closed_loop(bands[b], s_band[i]);
      }
    }
  });
  std::vector<CVector> cl_grid_scalar;
  const double t_cl_grid_scalar = time_best_of(reps, [&] {
    cl_grid_scalar = exact_scalar.closed_loop_grid(bands, s_band);
  });
  std::vector<CVector> cl_grid;
  const double t_cl_grid = time_best_of(reps, [&] {
    cl_grid = exact.closed_loop_grid(bands, s_band);
  });
  bool cl_identical = cl_grid_scalar.size() == bands.size();
  double cl_plan_err = cl_grid.size() == bands.size()
                           ? 0.0
                           : std::numeric_limits<double>::infinity();
  for (std::size_t b = 0; b < bands.size(); ++b) {
    if (cl_identical) {
      cl_identical = bit_identical(cl_naive[b], cl_grid_scalar[b]);
    }
    if (b < cl_grid.size()) {
      cl_plan_err =
          std::max(cl_plan_err, max_rel_err(cl_grid[b], cl_naive[b]));
    }
  }

  // --- 3. dense kernels -------------------------------------------------
  const std::size_t dim = 129;  // truncation 64 HTM
  const CMatrix a = random_matrix(dim);
  const CMatrix b = random_matrix(dim);
  CMatrix prod(1, 1);
  const double t_matmul = time_best_of(reps, [&] { prod = a * b; });
  const CLu lu(a);
  CMatrix solved(1, 1);
  const double t_solve = time_best_of(reps, [&] { solved = lu.solve(b); });
  // Touch the results so the work cannot be optimized away.
  const double checksum = std::abs(prod(0, 0)) + std::abs(solved(0, 0));

  // --- 4. instrumentation overhead -------------------------------------
  // Same workload, obs off vs obs on.  The enabled run bounds the cost
  // of every instrumentation site from above; the disabled run is the
  // production path scripts/check_overhead.sh gates at < 1%.  The
  // overhead is a *difference* of two sub-millisecond timings, so use
  // the median of a larger sample instead of min-of-N: the minima of
  // the two sides can land on different machine states and bias the
  // subtraction either way.
  const bool obs_was_enabled = obs::enabled();
  const int overhead_reps = 15;
  obs::disable();
  CVector r_obs;
  r_obs = exact.baseband_transfer_grid(s_grid);  // warm-up, untimed
  const double t_obs_off = bench::time_median_of(overhead_reps, [&] {
    r_obs = exact.baseband_transfer_grid(s_grid);
  });
  obs::enable();
  r_obs = exact.baseband_transfer_grid(s_grid);  // warm-up, untimed
  const double t_obs_on = bench::time_median_of(overhead_reps, [&] {
    r_obs = exact.baseband_transfer_grid(s_grid);
  });
  const double obs_delta = t_obs_on - t_obs_off;
  const double obs_fraction = obs_delta / t_obs_off;
  // The plan path is deterministic, so instrumentation must not change
  // a single bit of its result.
  const bool obs_identical = bit_identical(r_grid, r_obs);

  // --- 5. instrumented telemetry pass -----------------------------------
  // One clean re-run of each phase with obs enabled; the counters and
  // spans it accumulates become the report's "telemetry" section, the
  // Chrome trace and the run manifest.
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;
  bench::run_phase(phases, "exact_grid",
                   [&] { r_grid = exact.baseband_transfer_grid(s_grid); });
  bench::run_phase(phases, "truncated_grid", [&] {
    rt_grid = truncated.baseband_transfer_grid(s_grid);
  });
  bench::run_phase(phases, "closed_loop_grid",
                   [&] { cl_grid = exact.closed_loop_grid(bands, s_band); });
  bench::run_phase(phases, "dense_kernels", [&] {
    prod = a * b;
    solved = lu.solve(b);
  });

  // --- report -----------------------------------------------------------
  Table t({"case", "time_s", "vs_baseline", "bit_identical"});
  auto row = [&t](const std::string& name, double time, double base,
                  bool same) {
    t.add_row({name, Table::fmt(time), Table::fmt(base / time),
               same ? "yes" : "NO"});
  };
  row("exact pointwise (baseline)", t_pointwise, t_pointwise, true);
  row("exact SweepRunner 1 thread", t_serial, t_pointwise, exact_identical);
  row("exact SweepRunner pool", t_parallel, t_pointwise, exact_identical);
  row("exact grid (scalar-forced)", t_grid_scalar, t_pointwise,
      exact_identical);
  row("exact grid (eval plan)", t_grid, t_pointwise,
      exact_plan_err <= 1e-12);
  row("trunc pointwise (baseline)", tt_pointwise, tt_pointwise, true);
  row("trunc grid (scalar-forced)", tt_grid_scalar, tt_pointwise,
      trunc_identical);
  row("trunc grid (eval plan)", tt_grid, tt_pointwise,
      trunc_plan_err <= 1e-12);
  row("closed_loop 6-band pointwise", t_cl_naive, t_cl_naive, true);
  row("closed_loop_grid scalar", t_cl_grid_scalar, t_cl_naive,
      cl_identical);
  row("closed_loop_grid eval plan", t_cl_grid, t_cl_naive,
      cl_plan_err <= 1e-12);
  t.print(std::cout);
  std::cout << "\neval-plan max relative error vs pointwise: exact "
            << exact_plan_err << ", truncated " << trunc_plan_err
            << ", closed-loop " << cl_plan_err << "\n";
  std::cout << "\ndense " << dim << "x" << dim << " complex: blocked product "
            << t_matmul << " s, LU multi-solve " << t_solve
            << " s  (checksum " << checksum << ")\n";
  std::cout << "instrumentation: off " << t_obs_off << " s, on " << t_obs_on
            << " s (delta " << obs_delta << " s, "
            << 100.0 * obs_fraction << "%)\n";

  const bool all_identical = exact_identical && trunc_identical &&
                             cl_identical && obs_identical;
  const double plan_err =
      std::max({exact_plan_err, trunc_plan_err, cl_plan_err});
  const bool plan_within_tol = plan_err <= 1e-12;
  // The worst plan-vs-scalar spot check feeds the manifest's "health"
  // gauges (after the telemetry-pass reset, before capture).
  obs::diag_gauge_max(obs::HealthGauge::kMaxPlanSpotCheckError, plan_err);
  std::cout << "\nscalar-forced paths bit-identical: "
            << (all_identical ? "yes" : "NO")
            << ", plan within 1e-12: " << (plan_within_tol ? "yes" : "NO")
            << "\n";

  Json report = Json::object();
  report.set("bench", Json::string("sweep_engine"))
      .set("grid_points", Json::number(static_cast<double>(n_points)))
      .set("hardware_threads", Json::number(static_cast<double>(hw)))
      .set("pool_threads", Json::number(static_cast<double>(pool_width)));
  Json sweeps = Json::object();
  sweeps.set("exact_pointwise_s", Json::number(t_pointwise))
      .set("exact_sweep_serial_s", Json::number(t_serial))
      .set("exact_sweep_pool_s", Json::number(t_parallel))
      .set("exact_grid_scalar_s", Json::number(t_grid_scalar))
      .set("exact_grid_api_s", Json::number(t_grid))
      .set("pool_speedup_vs_serial", Json::number(t_serial / t_parallel))
      .set("grid_speedup_vs_pointwise", Json::number(t_pointwise / t_grid))
      .set("scalar_grid_speedup_vs_pointwise",
           Json::number(t_pointwise / t_grid_scalar))
      .set("exact_plan_max_rel_err", Json::number(exact_plan_err))
      .set("truncated_pointwise_s", Json::number(tt_pointwise))
      .set("truncated_grid_scalar_s", Json::number(tt_grid_scalar))
      .set("truncated_grid_api_s", Json::number(tt_grid))
      .set("truncated_grid_speedup", Json::number(tt_pointwise / tt_grid))
      .set("truncated_plan_max_rel_err", Json::number(trunc_plan_err));
  report.set("baseband_sweep", sweeps);
  Json cl = Json::object();
  cl.set("bands", Json::number(static_cast<double>(bands.size())))
      .set("grid_points", Json::number(static_cast<double>(n_band_points)))
      .set("pointwise_s", Json::number(t_cl_naive))
      .set("grid_scalar_s", Json::number(t_cl_grid_scalar))
      .set("grid_s", Json::number(t_cl_grid))
      .set("speedup", Json::number(t_cl_naive / t_cl_grid))
      .set("plan_max_rel_err", Json::number(cl_plan_err));
  report.set("closed_loop_multiband", cl);
  Json dense = Json::object();
  dense.set("dim", Json::number(static_cast<double>(dim)))
      .set("blocked_product_s", Json::number(t_matmul))
      .set("lu_multi_solve_s", Json::number(t_solve));
  report.set("dense_kernels", dense);
  Json overhead = Json::object();
  overhead.set("workload", Json::string("exact baseband_transfer_grid"))
      .set("reps", Json::number(static_cast<double>(overhead_reps)))
      .set("estimator", Json::string("median"))
      .set("disabled_s", Json::number(t_obs_off))
      .set("enabled_s", Json::number(t_obs_on))
      .set("delta_s", Json::number(obs_delta))
      .set("fraction", Json::number(obs_fraction));
  report.set("obs_overhead", overhead);
  report.set("telemetry", bench::telemetry_json(phases));
  report.set("bit_identical", Json::boolean(all_identical));
  report.set("plan_within_tolerance", Json::boolean(plan_within_tol));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_sweep", phases);
  manifest.set_config("grid_points", static_cast<double>(n_points));
  manifest.set_config("band_grid_points",
                      static_cast<double>(n_band_points));
  manifest.set_config("bands", static_cast<double>(bands.size()));
  manifest.set_config("truncation",
                      static_cast<double>(trunc_opts.truncation));
  manifest.set_config("dense_dim", static_cast<double>(dim));
  manifest.set_config("pool_threads", static_cast<double>(pool_width));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  if (!all_identical) {
    std::cerr << "FAIL: a scalar-forced batched path is not bit-identical "
                 "to the point-wise path\n";
    return 1;
  }
  if (!plan_within_tol) {
    std::cerr << "FAIL: an eval-plan grid differs from the point-wise "
                 "path by " << plan_err << " (> 1e-12 relative)\n";
    return 1;
  }
  if (check && hw >= 4 && t_parallel > t_serial) {
    std::cerr << "FAIL: pool sweep slower than 1-thread sweep on " << hw
              << " hardware threads\n";
    return 1;
  }
  if (check && t_pointwise / t_grid < 0.97) {
    std::cerr << "FAIL: eval-plan grid slower than 0.97x the point-wise "
                 "loop (speedup " << t_pointwise / t_grid << ")\n";
    return 1;
  }
  return 0;
}

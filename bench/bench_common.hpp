// Helpers shared by every bench driver: wall-clock timing with
// best-of-N repetition, the common "[output.csv]" argument handling,
// and a minimal JSON writer for machine-readable benchmark reports
// (BENCH_*.json).  Lives in the bench tree -- the library proper stays
// free of benchmarking concerns.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "htmpll/obs/report.hpp"
#include "htmpll/util/table.hpp"

namespace htmpll::bench {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Runs `fn` `reps` times and returns the fastest wall time in seconds.
/// Min-of-N rejects scheduler noise better than the mean on a shared
/// machine.
double time_best_of(int reps, const std::function<void()>& fn);

/// Runs `fn` `reps` times and returns the median wall time in seconds
/// (mean of the two middle samples for even `reps`).  Use for
/// difference estimates such as instrumentation overhead, where
/// min-of-N is biased: the minimum of each side can land on different
/// machine states and the subtraction then under- or over-shoots.
double time_median_of(int reps, const std::function<void()>& fn);

/// If argv[index] names a file, writes the table there as CSV and
/// prints a confirmation; the shared tail of every figure driver.
void maybe_write_csv(const Table& t, int argc, char** argv, int index = 1);

/// Minimal JSON value (object / array / number / string / bool) with a
/// pretty-printing dump -- just enough for benchmark reports, with
/// object keys kept in insertion order.
class Json {
 public:
  static Json object();
  static Json array();
  static Json number(double v);
  static Json string(std::string v);
  static Json boolean(bool v);

  /// Object member set (insert or overwrite); returns *this for chains.
  Json& set(const std::string& key, Json value);
  /// Array append.
  Json& push(Json value);

  std::string dump(int indent = 2) const;
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };
  explicit Json(Kind k) : kind_(k) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> items_;                            // kArray
  double number_ = 0.0;
  std::string string_;
  bool bool_ = false;
};

/// The "telemetry" section of a bench report: the current obs metrics
/// snapshot (counters, gauges, histogram counts), a per-name span
/// summary, per-phase wall times, and the derived rates the reports care
/// about (propagator cache hit rate, pool utilization).  Call with obs
/// enabled after an instrumented pass of the workload.
Json telemetry_json(const std::vector<std::pair<std::string, double>>& phases);

/// Times one named phase of an instrumented pass and appends it to
/// `phases`.
void run_phase(std::vector<std::pair<std::string, double>>& phases,
               const std::string& name, const std::function<void()>& fn);

/// Builds the run manifest shared by the bench drivers: run name, the
/// phase wall times, and a capture of the instrumentation state.  The
/// caller adds its workload configuration before writing the file.
htmpll::obs::RunReport make_manifest(
    const std::string& run_name,
    const std::vector<std::pair<std::string, double>>& phases);

}  // namespace htmpll::bench

// Fig. 2 companion with simulation marks: reference modulation at w_m
// produces sidebands ("spurs") in the VCO phase at n w0 + w_m whose
// magnitudes are the off-diagonal closed-loop HTM elements H_{n,0}
// (eq. 36).  The time-marching simulator measures the same sidebands
// with a single-bin DFT; HTM prediction and measurement are compared.
//
// Usage: spur_map [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};
  const double ratio = 0.2;
  const double fm = 0.12;  // w_m / w0

  const PllParameters params = make_typical_loop(ratio * w0, w0);
  const SamplingPllModel model(params);
  const double wm = fm * w0;

  std::cout << "=== Output spur map: reference modulation at w_m = "
            << fm << " w0, loop w_UG/w0 = " << ratio << " ===\n\n";
  std::cout << "output component at n*w0 + w_m <-> |H_n0(j w_m)| "
               "(eq. 36)\n\n";

  Table t({"band_n", "f_out/w0", "HTM_dB", "sim_dB", "rel_err"});
  const std::vector<int> bands = {-2, -1, 0, 1, 2};

  // All HTM predictions share one lambda evaluation at j wm...
  const std::vector<CVector> predicted =
      model.closed_loop_grid(bands, CVector{j * wm});
  // ...and each simulated sideband is an independent transient run,
  // probed concurrently on the thread pool.
  ProbeOptions opts;
  opts.settle_periods = 350.0;
  opts.measure_periods = 24;
  std::vector<BandProbePoint> points;
  points.reserve(bands.size());
  for (int n : bands) points.push_back({n, wm});
  const std::vector<TransferMeasurement> meas =
      measure_band_transfer_many(params, points, opts);

  double worst = 0.0;
  t.reserve(bands.size());
  for (std::size_t i = 0; i < bands.size(); ++i) {
    const cplx pred = predicted[i][0];
    const double rel =
        std::abs(std::abs(meas[i].value) - std::abs(pred)) / std::abs(pred);
    worst = std::max(worst, rel);
    t.add_row(std::vector<double>{
        static_cast<double>(bands[i]), static_cast<double>(bands[i]) + fm,
        magnitude_db(pred), magnitude_db(meas[i].value), rel});
  }
  t.print(std::cout);
  std::cout << "\nworst relative magnitude error: " << worst
            << "\nthe rank-one aliasing structure of the sampling PFD "
               "predicts every sideband, not just the baseband "
               "response.\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

// Ablation A: HTM truncation order K versus accuracy of the effective
// open-loop gain lambda(s) and of the closed-loop transfer H_00.
//
// The raw symmetric truncation (what a finite HTM computes) converges
// only like 1/K because A(s) ~ c/s^2; the tail-corrected adaptive
// summation reaches ~1e-13 with a handful of terms; the coth closed form
// is exact.  This quantifies the design choice DESIGN.md calls out:
// evaluate lambda analytically, use truncated HTMs only for the matrix
// (LPTV) pathway.
//
// Usage: ablation_truncation [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};

  std::cout << "=== Ablation A: truncation order vs lambda/H00 accuracy "
               "===\n\n";

  Table t({"w_UG/w0", "K", "lambda_rel_err", "H00_rel_err"});
  for (double ratio : {0.1, 0.2}) {
    const SamplingPllModel model(make_typical_loop(ratio * w0, w0));
    const cplx s = j * (0.3 * ratio * w0 / 0.1 * 0.5);  // mid-band point
    const cplx lam_exact = model.lambda(s, LambdaMethod::kExact, 0);
    const cplx a = model.open_loop_gain()(s);
    const cplx h_exact = a / (1.0 + lam_exact);
    for (int k : {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}) {
      const cplx lam = model.lambda(s, LambdaMethod::kTruncated, k);
      const cplx h = a / (1.0 + lam);
      t.add_row(std::vector<double>{
          ratio, static_cast<double>(k),
          std::abs(lam - lam_exact) / std::abs(lam_exact),
          std::abs(h - h_exact) / std::abs(h_exact)});
    }
  }
  t.print(std::cout);

  // Adaptive (tail-corrected) summation for reference.
  const SamplingPllModel model(make_typical_loop(0.2 * w0, w0));
  const cplx s = j * (0.15 * w0);
  const cplx exact = model.lambda(s, LambdaMethod::kExact, 0);
  const cplx adaptive = model.lambda(s, LambdaMethod::kAdaptive, 0);
  std::cout << "\ntail-corrected adaptive sum relative error: "
            << std::abs(adaptive - exact) / std::abs(exact)
            << " (converges like 1/M^3 instead of 1/M)\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Fractional-N quantization noise through the sampled loop.
//
// A MASH-1-1-1 dithered divider (validated against its own periodogram
// in tests/) injects (1-z^-1)^2-shaped phase error at the PFD.  The
// table shows the output PSD and integrated jitter versus loop
// bandwidth: the band-edge noise RISES with bandwidth much faster than
// in-band tracking improves, and the time-varying H_00 (peaking near
// w0/2) makes wide loops worse than the LTI transfer would suggest.
//
// The modulator sanity check is a monte_carlo_map ensemble over
// independently-seeded MASH input words, and the PSD/jitter scans run as
// parallel_map batches over the thread pool.
//
// Usage: fracn_noise [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/fracn/fracn_noise.hpp"
#include "htmpll/fracn/sigma_delta.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1
  const double t_vco = 1.0 / 100.0;          // N = 100 divider

  std::cout << "=== MASH-1-1-1 fractional-N noise, N = 100 ===\n\n";

  // Modulator ensemble: statistics over independently-seeded input
  // words (deterministic per-run streams from (base_seed, index)).
  {
    struct MashStats {
      double mean;
      int lo, hi;
    };
    const std::size_t n_runs = 8;
    const auto stats = monte_carlo_map<MashStats>(
        n_runs, 2003, [](std::size_t, std::uint64_t seed) {
          const unsigned word =
              static_cast<unsigned>(seed % ((1u << 20) - 1)) + 1;
          Mash111 mash(word, 1u << 20);
          const auto seq = mash.sequence(1u << 15);
          MashStats st{0.0, 99, -99};
          for (int y : seq) {
            st.mean += y;
            st.lo = std::min(st.lo, y);
            st.hi = std::max(st.hi, y);
          }
          st.mean /= static_cast<double>(seq.size());
          return st;
        });
    double worst_err = 0.0;
    int lo = 99, hi = -99;
    for (std::size_t i = 0; i < n_runs; ++i) {
      const unsigned word = static_cast<unsigned>(
          mc_stream_seed(2003, i) % ((1u << 20) - 1)) + 1;
      worst_err = std::max(
          worst_err,
          std::abs(stats[i].mean - word / static_cast<double>(1u << 20)));
      lo = std::min(lo, stats[i].lo);
      hi = std::max(hi, stats[i].hi);
    }
    std::cout << "modulator ensemble (" << n_runs
              << " seeded words): worst |mean - word| " << worst_err
              << ", output range [" << lo << ", " << hi << "]\n\n";
  }

  const std::vector<double> bandwidths = {0.02, 0.05, 0.15};
  std::vector<SamplingPllModel> models;
  models.reserve(bandwidths.size());
  for (double bw : bandwidths) {
    models.emplace_back(make_typical_loop(bw * w0, w0));
  }

  const std::vector<double> fracs = {0.003, 0.01, 0.03, 0.1,
                                     0.2, 0.35, 0.45};
  // Each table row (input PSD + one output PSD per bandwidth) is an
  // independent evaluation point -- batch the whole scan.
  const auto rows = parallel_map<std::vector<double>>(
      fracs.size(), [&](std::size_t i) {
        const double w = fracs[i] * w0;
        std::vector<double> row{fracs[i],
                                mash_phase_psd({w}, t_vco, 1.0, 3)[0]};
        for (const SamplingPllModel& m : models) {
          row.push_back(fracn_output_psd(m, w, t_vco));
        }
        return row;
      });

  Table t({"w/w0", "S_in (quant.)", "S_out bw=0.02", "S_out bw=0.05",
           "S_out bw=0.15"});
  t.reserve(rows.size());
  for (const auto& row : rows) t.add_row(row);
  t.print(std::cout);

  const std::vector<double> rms_ratios = {0.01, 0.02, 0.05,
                                          0.1, 0.15, 0.2};
  const auto rms = parallel_map<double>(
      rms_ratios.size(), [&](std::size_t i) {
        const SamplingPllModel m(make_typical_loop(rms_ratios[i] * w0, w0));
        return fracn_output_rms(m, t_vco, 1e-3 * w0, 0.49 * w0);
      });
  std::cout << "\nintegrated output phase rms (fraction of T):\n";
  for (std::size_t i = 0; i < rms_ratios.size(); ++i) {
    std::cout << "  w_UG/w0 = " << rms_ratios[i] << "  ->  rms "
              << rms[i] << "\n";
  }
  std::cout << "\nnarrow loops win against MASH noise; the VCO-noise "
               "trade-off (bench/jitter_bandwidth) pushes the other "
               "way -- the full budget sets the bandwidth.\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

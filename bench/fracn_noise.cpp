// Fractional-N quantization noise through the sampled loop.
//
// A MASH-1-1-1 dithered divider (validated against its own periodogram
// in tests/) injects (1-z^-1)^2-shaped phase error at the PFD.  The
// table shows the output PSD and integrated jitter versus loop
// bandwidth: the band-edge noise RISES with bandwidth much faster than
// in-band tracking improves, and the time-varying H_00 (peaking near
// w0/2) makes wide loops worse than the LTI transfer would suggest.
//
// Usage: fracn_noise [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/fracn/fracn_noise.hpp"
#include "htmpll/fracn/sigma_delta.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1
  const double t_vco = 1.0 / 100.0;          // N = 100 divider
  const cplx j{0.0, 1.0};

  std::cout << "=== MASH-1-1-1 fractional-N noise, N = 100 ===\n\n";

  // Sanity row: modulator sequence statistics.
  {
    Mash111 mash(104857u, 1u << 20);
    const auto seq = mash.sequence(1u << 15);
    double mean = 0.0;
    int lo = 99, hi = -99;
    for (int y : seq) {
      mean += y;
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    mean /= static_cast<double>(seq.size());
    std::cout << "modulator: mean " << mean << " (word "
              << 104857.0 / (1u << 20) << "), output range [" << lo
              << ", " << hi << "]\n\n";
  }

  Table t({"w/w0", "S_in (quant.)", "S_out bw=0.02", "S_out bw=0.05",
           "S_out bw=0.15"});
  const SamplingPllModel m002(make_typical_loop(0.02 * w0, w0));
  const SamplingPllModel m005(make_typical_loop(0.05 * w0, w0));
  const SamplingPllModel m015(make_typical_loop(0.15 * w0, w0));
  for (double f : {0.003, 0.01, 0.03, 0.1, 0.2, 0.35, 0.45}) {
    const double w = f * w0;
    const double s_in = mash_phase_psd({w}, t_vco, 1.0, 3)[0];
    t.add_row(std::vector<double>{
        f, s_in, fracn_output_psd(m002, w, t_vco),
        fracn_output_psd(m005, w, t_vco),
        fracn_output_psd(m015, w, t_vco)});
  }
  t.print(std::cout);

  std::cout << "\nintegrated output phase rms (fraction of T):\n";
  for (double ratio : {0.01, 0.02, 0.05, 0.1, 0.15, 0.2}) {
    const SamplingPllModel m(make_typical_loop(ratio * w0, w0));
    const double rms =
        fracn_output_rms(m, t_vco, 1e-3 * w0, 0.49 * w0);
    std::cout << "  w_UG/w0 = " << ratio << "  ->  rms " << rms
              << "\n";
  }
  std::cout << "\nnarrow loops win against MASH noise; the VCO-noise "
               "trade-off (bench/jitter_bandwidth) pushes the other "
               "way -- the full budget sets the bandwidth.\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

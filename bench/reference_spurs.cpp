// Reference-spur chart: deterministic output sidebands at k*w0 caused by
// charge-pump leakage/mismatch, from the harmonic steady-state closed
// form (noise/spurs.hpp), cross-checked against the transient simulator
// with leakage injection.
//
// Key physics the chart shows: the loop's own pulse retiming cancels the
// leakage spectrum to first order (spurs measure the leakage pulse
// SHAPE, not its charge), and the ripple capacitor's rolloff sets the
// k-dependence.
//
// Usage: reference_spurs [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/noise/spurs.hpp"
#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;

cplx fourier_bin(const std::vector<double>& t, const std::vector<double>& y,
                 double w) {
  cplx acc{0.0};
  double norm = 0.0;
  const std::size_t n = t.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double hann =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                              static_cast<double>(k) /
                              static_cast<double>(n - 1)));
    acc += hann * y[k] * std::exp(cplx{0.0, -w * t[k]});
    norm += hann;
  }
  return acc / norm;
}

}  // namespace

int main(int argc, char** argv) {
  const double w0 = 2.0 * std::numbers::pi;
  const double ratio = 0.1;
  const PllParameters params = make_typical_loop(ratio * w0, w0);
  const SamplingPllModel model(params);

  std::cout << "=== Reference spurs from charge-pump leakage "
               "(w_UG/w0 = 0.1) ===\n\n";

  // 5% mismatch current over a 5%-of-T reset window.
  const ChargePumpLeakage leak{0.05 * params.icp, 0.05};
  std::cout << "leakage: " << leak.mismatch_current << " A over "
            << leak.window << " T; static phase offset "
            << static_phase_offset(model, leak) << " T\n\n";

  PllTransientSim sim(params);
  sim.set_leakage(leak.mismatch_current, leak.window);
  sim.set_recording(false);
  sim.run_periods(500.0);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_periods(128.0);

  Table t({"k", "model |theta_k|", "sim |theta_k|", "rel_err",
           "spur dBc"});
  for (const SpurLevel& s : reference_spurs(model, leak, 3)) {
    const cplx measured =
        fourier_bin(sim.sample_times(), sim.theta_samples(),
                    s.harmonic * w0);
    t.add_row(std::vector<double>{
        static_cast<double>(s.harmonic), std::abs(s.theta),
        std::abs(measured),
        std::abs(std::abs(measured) - std::abs(s.theta)) /
            std::abs(s.theta),
        s.dbc});
  }
  t.print(std::cout);

  std::cout << "\nsweep: first-spur level vs leakage window (fixed "
               "charge) -- impulse-like leakage cancels:\n";
  const double charge = leak.mismatch_current * leak.window;
  for (double window : {0.1, 0.05, 0.02, 0.01, 0.005}) {
    const ChargePumpLeakage l{charge / window, window};
    const auto spurs = reference_spurs(model, l, 1);
    std::cout << "  window " << window << " T -> spur "
              << spurs[0].dbc << " dBc\n";
  }

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Ablation E: time-varying VCO sensitivity (non-trivial ISF).
//
// The paper's Section 5 verifies the time-invariant-VCO case and notes
// the framework extends to LPTV VCOs (eq. 25).  This bench exercises
// that branch: a VCO whose sensitivity swings sinusoidally over the
// cycle (v(t) = kvco (1 + 2 c1 cos(w0 t))).  Columns compare
//   * the LPTV HTM model (per-harmonic exact aliasing sums),
//   * the TI model that ignores the ISF ripple,
//   * the RK4 time-marching simulator integrating theta' = v(t+theta) y.
//
// Expected: the LPTV model tracks the simulator; the TI model drifts as
// c1 grows.
//
// Usage: ablation_lptv [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/timedomain/lptv_vco_sim.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};
  const double ratio = 0.15;
  const PllParameters params = make_typical_loop(ratio * w0, w0);
  const double wm = 0.12 * w0;

  std::cout << "=== Ablation E: ISF ripple c1 vs model fidelity at w_m = "
               "0.12 w0 ===\n\n";
  Table t({"c1", "|H00| sim", "|H00| LPTV model", "|H00| TI model",
           "LPTV_err", "TI_err"});
  for (double c1 : {0.0, 0.1, 0.2, 0.3}) {
    const HarmonicCoefficients isf =
        HarmonicCoefficients::real_waveform(1.0, {cplx{c1}});
    const SamplingPllModel lptv_model(params, isf);
    const SamplingPllModel ti_model(params);

    ProbeOptions opts;
    opts.settle_periods = 300.0;
    opts.measure_periods = 20;
    const TransferMeasurement meas = measure_baseband_transfer_lptv(
        params, IsfWaveform(isf, params.kvco, params.w0), wm, opts);

    const double sim_mag = std::abs(meas.value);
    const double lptv_mag =
        std::abs(lptv_model.baseband_transfer(j * wm));
    const double ti_mag = std::abs(ti_model.baseband_transfer(j * wm));
    t.add_row(std::vector<double>{
        c1, sim_mag, lptv_mag, ti_mag,
        std::abs(sim_mag - lptv_mag) / sim_mag,
        std::abs(sim_mag - ti_mag) / sim_mag});
  }
  t.print(std::cout);
  std::cout << "\nthe per-harmonic aliasing-sum machinery (V~ of eq. 29 "
               "with v_k != 0) stays on the simulator as the ISF ripple "
               "grows; the TI approximation does not.\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

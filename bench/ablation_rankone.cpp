// Ablation B: the Sherman-Morrison rank-one closed form (eqs. 31-34)
// against the dense (I + G)^{-1} G solve on the same truncated HTM.
//
// Both produce identical matrices (checked in tests/); the point here is
// cost: the closed form is O(K^2) to fill the result, while the dense LU
// path is O(K^3).  This is exactly why the paper bothers to exploit the
// rank-one structure of the sampling PFD.
#include <numbers>

#include <benchmark/benchmark.h>

#include "htmpll/core/sampling_pll.hpp"

namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;
const htmpll::cplx kJ{0.0, 1.0};

const htmpll::SamplingPllModel& model() {
  static const htmpll::SamplingPllModel m(
      htmpll::make_typical_loop(0.2 * kW0, kW0));
  return m;
}

void BM_RankOneClosedForm(benchmark::State& state) {
  const htmpll::cplx s = kJ * (0.13 * kW0);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model().closed_loop_htm(s, k));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankOneClosedForm)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oNSquared);

void BM_DenseLuSolve(benchmark::State& state) {
  const htmpll::cplx s = kJ * (0.13 * kW0);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model().closed_loop_htm_dense(s, k));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseLuSolve)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oNCubed);

}  // namespace

BENCHMARK_MAIN();

// Batched stability / pole-search benchmark: the design-space sweep
// engine (grid-first crossover hunts + masked lockstep Newton through
// the compiled eval plan) against the scalar reference paths.
//
//   1. headline: a 64-point (w_UG/w0, gamma) design-space map, batched
//      vs scalar-forced (use_eval_plan = false everywhere).  Contract:
//      speedup >= 3x, crossover and pole parity <= 1e-9 relative, with
//      core.lambda_evals counted on both sides to show where the scalar
//      work went.
//   2. derivative contract: lambda_derivative_grid through the plan vs
//      the scalar analytic lambda_derivative, <= 1e-12 max relative
//      error on impulse and ZOH shapes; a central-difference
//      cross-check of the analytic derivative itself is recorded
//      informationally (finite differencing bottoms out near 1e-8).
//   3. scalar-fallback pin: the scalar-forced effective_margins and
//      closed_loop_poles must be bit-identical to in-bench replicas of
//      the original sequential implementations.
//
// Writes a machine-readable report (default BENCH_stability.json).
//
// Usage: bench_stability [output.json] [--check] [--smoke]
//   --check: additionally exit non-zero if the batched sweep speedup
//            drops below 3x the scalar-forced sweep.
//   --smoke: single-rep timing, parity/contract gates only (the 3x
//            speedup gate is skipped even with --check).
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <iostream>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/pole_search.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/core/stability.hpp"
#include "htmpll/core/symbolic.hpp"
#include "htmpll/design/design_sweep.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

double rel_diff(double got, double want) {
  return std::abs(got - want) / std::max(1e-300, std::abs(want));
}

double rel_diff(cplx got, cplx want) {
  return std::abs(got - want) / std::max(1e-300, std::abs(want));
}

double max_rel_err(const CVector& got, const CVector& want) {
  double worst = got.size() == want.size()
                     ? 0.0
                     : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    worst = std::max(worst, rel_diff(got[i], want[i]));
  }
  return worst;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool bits_equal(cplx a, cplx b) {
  return bits_equal(a.real(), b.real()) && bits_equal(a.imag(), b.imag());
}

/// The seed's effective_margins, replicated verbatim on the public
/// search API: scalar crossover probing on A and on lambda.
EffectiveMargins seed_effective_margins(const SamplingPllModel& model) {
  EffectiveMargins out;
  const double w0 = model.w0();
  const RationalFunction& a = model.open_loop_gain();
  const FrequencyResponse lti = [&a](double w) { return a(cplx{0.0, w}); };
  if (const auto c = find_gain_crossover(lti, w0 * 1e-5, w0 * 1e3)) {
    out.lti_found = true;
    out.lti_crossover = c->frequency;
    out.lti_phase_margin_deg = c->phase_margin_deg;
  }
  const FrequencyResponse eff = [&model](double w) {
    return model.lambda(cplx{0.0, w});
  };
  if (const auto c = find_gain_crossover(eff, w0 * 1e-5, 0.5 * w0)) {
    out.eff_found = true;
    out.eff_crossover = c->frequency;
    out.eff_phase_margin_deg = c->phase_margin_deg;
  }
  return out;
}

/// The seed's closed_loop_poles, replicated verbatim: z-root seeds,
/// one sequential symbolic Newton chain per seed, sort by frequency.
std::vector<ClosedLoopPole> seed_closed_loop_poles(
    const SamplingPllModel& model, const PoleSearchOptions& opts) {
  const double w0 = model.w0();
  const double t = 2.0 * std::numbers::pi / w0;
  const ImpulseInvariantModel zm(model.open_loop_gain(), w0);
  std::vector<cplx> seeds;
  for (const cplx& z : zm.closed_loop_poles()) {
    if (std::abs(z) < 1e-12) continue;
    seeds.push_back(std::log(z) / t);
  }
  const LambdaExpression lambda(model.open_loop_gain(), w0);
  std::vector<ClosedLoopPole> out;
  out.reserve(seeds.size());
  for (const cplx& seed : seeds) {
    out.push_back(refine_closed_loop_pole(lambda, seed, opts));
  }
  std::sort(out.begin(), out.end(),
            [](const ClosedLoopPole& a, const ClosedLoopPole& b) {
              return a.frequency < b.frequency;
            });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_stability.json";
  bool check = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const int reps = smoke ? 1 : 3;

  // 64-point design space: 16 crossover ratios x 4 zero-placement
  // factors, all inside the sampled loop's stable-searchable range.
  const std::vector<double> ratios = linspace(0.02, 0.25, 16);
  const std::vector<double> gammas = {2.0, 3.0, 4.0, 6.0};
  DesignSpec spec;
  spec.w0 = w0;
  spec.target_w_ug = 0.1 * w0;
  spec.target_pm_deg = typical_loop_lti_phase_margin_deg();

  DesignSweepOptions batched_opts;  // defaults: plan + batched engines
  DesignSweepOptions scalar_opts;
  scalar_opts.use_eval_plan = false;

  const std::size_t n_points = ratios.size() * gammas.size();
  std::cout << "=== Batched stability engine benchmark: " << n_points
            << "-point design sweep ===\n\n";

  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;

  // --- 1. headline: design-space map, scalar vs batched -----------------
  // Counting passes first (one run each, counters isolated), then the
  // timing passes.
  obs::reset_counters();
  const DesignSpaceMap scalar_map =
      design_space_map(spec, ratios, gammas, scalar_opts);
  const double evals_scalar = static_cast<double>(
      obs::counter("core.lambda_evals").value());

  obs::reset_counters();
  const DesignSpaceMap batched_map =
      design_space_map(spec, ratios, gammas, batched_opts);
  const double evals_batched = static_cast<double>(
      obs::counter("core.lambda_evals").value());
  const double plan_points_batched = static_cast<double>(
      obs::counter("core.plan_grid_points").value());

  double t_scalar = 0.0;
  bench::run_phase(phases, "design_sweep_scalar", [&] {
    t_scalar = time_best_of(reps, [&] {
      design_space_map(spec, ratios, gammas, scalar_opts);
    });
  });
  double t_batched = 0.0;
  bench::run_phase(phases, "design_sweep_batched", [&] {
    t_batched = time_best_of(reps, [&] {
      design_space_map(spec, ratios, gammas, batched_opts);
    });
  });
  const double speedup = t_scalar / t_batched;

  // Parity: crossovers / margins / poles of the two maps.
  double crossover_err = 0.0;
  double margin_err = 0.0;
  double pole_err = 0.0;
  bool parity_shape_ok = true;
  for (std::size_t i = 0; i < n_points; ++i) {
    const DesignPoint& b = batched_map.points[i];
    const DesignPoint& s = scalar_map.points[i];
    if (b.design.margins.eff_found != s.design.margins.eff_found ||
        b.poles.size() != s.poles.size()) {
      parity_shape_ok = false;
      continue;
    }
    if (s.design.margins.eff_found) {
      crossover_err = std::max(
          crossover_err, rel_diff(b.design.margins.eff_crossover,
                                  s.design.margins.eff_crossover));
      margin_err = std::max(
          margin_err, rel_diff(b.design.margins.eff_phase_margin_deg,
                               s.design.margins.eff_phase_margin_deg));
    }
    if (s.design.margins.lti_found) {
      crossover_err = std::max(
          crossover_err, rel_diff(b.design.margins.lti_crossover,
                                  s.design.margins.lti_crossover));
      margin_err = std::max(
          margin_err, rel_diff(b.design.margins.lti_phase_margin_deg,
                               s.design.margins.lti_phase_margin_deg));
    }
    // Conjugate pairs share |s|, so the frequency sort leaves their
    // relative order unspecified: match each scalar pole to the nearest
    // batched one instead of by index.
    for (const ClosedLoopPole& sp : s.poles) {
      double best = std::numeric_limits<double>::infinity();
      for (const ClosedLoopPole& bp : b.poles) {
        if (!bp.converged) parity_shape_ok = false;
        best = std::min(best, rel_diff(bp.s, sp.s));
      }
      pole_err = std::max(pole_err, best);
    }
  }
  const bool parity_ok = parity_shape_ok && crossover_err <= 1e-9 &&
                         margin_err <= 1e-9 && pole_err <= 1e-9;

  // --- 2. derivative contract -------------------------------------------
  const std::size_t n_deriv = 1000;
  const CVector s_grid =
      jw_grid(logspace(1e-3 * w0, 0.49 * w0, n_deriv));
  double deriv_err_impulse = 0.0;
  double deriv_err_zoh = 0.0;
  double central_diff_err = 0.0;
  bench::run_phase(phases, "derivative_contract", [&] {
    for (const PfdShape shape :
         {PfdShape::kImpulse, PfdShape::kZeroOrderHold}) {
      SamplingPllOptions mopts;
      mopts.pfd_shape = shape;
      const SamplingPllModel model(make_typical_loop(0.1 * w0, w0),
                                   HarmonicCoefficients(cplx{1.0}), mopts);
      const CVector got = model.lambda_derivative_grid(s_grid);
      CVector want(n_deriv);
      for (std::size_t i = 0; i < n_deriv; ++i) {
        want[i] = model.lambda_derivative(s_grid[i]);
      }
      const double err = max_rel_err(got, want);
      (shape == PfdShape::kImpulse ? deriv_err_impulse : deriv_err_zoh) =
          err;
      if (shape == PfdShape::kImpulse) {
        // Central-difference cross-check of the analytic derivative
        // itself, on a thinned grid; informational (truncation +
        // cancellation floor the agreement near 1e-8).
        const double h = 1e-6 * w0;
        for (std::size_t i = 0; i < n_deriv; i += 25) {
          const cplx fd = (model.lambda(s_grid[i] + h) -
                           model.lambda(s_grid[i] - h)) /
                          (2.0 * h);
          central_diff_err =
              std::max(central_diff_err, rel_diff(fd, want[i]));
        }
      }
    }
  });
  const double deriv_err = std::max(deriv_err_impulse, deriv_err_zoh);
  const bool deriv_ok = deriv_err <= 1e-12;

  // --- 3. scalar-fallback pin vs seed replicas --------------------------
  bool margins_bit_identical = true;
  bool poles_bit_identical = true;
  bench::run_phase(phases, "scalar_fallback_pin", [&] {
    SamplingPllOptions mopts;
    mopts.use_eval_plan = false;
    PoleSearchOptions popts;
    popts.use_eval_plan = false;
    for (const double ratio : {0.1, 0.25}) {
      const SamplingPllModel model(make_typical_loop(ratio * w0, w0),
                                   HarmonicCoefficients(cplx{1.0}), mopts);
      const EffectiveMargins got = effective_margins(model);
      const EffectiveMargins want = seed_effective_margins(model);
      margins_bit_identical =
          margins_bit_identical && got.eff_found == want.eff_found &&
          bits_equal(got.eff_crossover, want.eff_crossover) &&
          bits_equal(got.eff_phase_margin_deg, want.eff_phase_margin_deg) &&
          bits_equal(got.lti_crossover, want.lti_crossover) &&
          bits_equal(got.lti_phase_margin_deg, want.lti_phase_margin_deg);
      const std::vector<ClosedLoopPole> got_p =
          closed_loop_poles(model, popts);
      const std::vector<ClosedLoopPole> want_p =
          seed_closed_loop_poles(model, popts);
      poles_bit_identical =
          poles_bit_identical && got_p.size() == want_p.size();
      for (std::size_t k = 0;
           poles_bit_identical && k < want_p.size(); ++k) {
        poles_bit_identical = bits_equal(got_p[k].s, want_p[k].s) &&
                              bits_equal(got_p[k].residual,
                                         want_p[k].residual) &&
                              got_p[k].iterations == want_p[k].iterations;
      }
    }
  });

  // --- console summary --------------------------------------------------
  Table table({"section", "metric", "value"});
  table.add_row({"design_sweep", "batched_s", std::to_string(t_batched)});
  table.add_row({"design_sweep", "scalar_s", std::to_string(t_scalar)});
  table.add_row({"design_sweep", "speedup", std::to_string(speedup)});
  table.add_row({"design_sweep", "lambda_evals scalar",
                 std::to_string(static_cast<long long>(evals_scalar))});
  table.add_row({"design_sweep", "lambda_evals batched",
                 std::to_string(static_cast<long long>(evals_batched))});
  table.add_row({"design_sweep", "plan_grid_points batched",
                 std::to_string(
                     static_cast<long long>(plan_points_batched))});
  table.add_row({"parity", "crossover max rel err",
                 std::to_string(crossover_err)});
  table.add_row({"parity", "margin max rel err",
                 std::to_string(margin_err)});
  table.add_row({"parity", "pole max rel err", std::to_string(pole_err)});
  table.add_row({"derivative", "plan vs scalar (impulse)",
                 std::to_string(deriv_err_impulse)});
  table.add_row({"derivative", "plan vs scalar (ZOH)",
                 std::to_string(deriv_err_zoh)});
  table.add_row({"derivative", "central-diff cross-check",
                 std::to_string(central_diff_err)});
  table.add_row({"scalar_fallback", "margins bit-identical",
                 margins_bit_identical ? "yes" : "NO"});
  table.add_row({"scalar_fallback", "poles bit-identical",
                 poles_bit_identical ? "yes" : "NO"});
  table.print(std::cout);
  std::cout << "\nbatched sweep speedup " << speedup
            << "x (target >= 3), parity <= 1e-9: "
            << (parity_ok ? "yes" : "NO") << ", derivative <= 1e-12: "
            << (deriv_ok ? "yes" : "NO") << "\n";

  // --- report -----------------------------------------------------------
  Json report = Json::object();
  report.set("benchmark", Json::string("bench_stability"));
  report.set("smoke", Json::boolean(smoke));
  Json sweep = Json::object();
  sweep.set("ratios", Json::number(static_cast<double>(ratios.size())));
  sweep.set("gammas", Json::number(static_cast<double>(gammas.size())));
  sweep.set("points", Json::number(static_cast<double>(n_points)));
  sweep.set("batched_s", Json::number(t_batched));
  sweep.set("scalar_s", Json::number(t_scalar));
  sweep.set("batched_speedup_vs_scalar", Json::number(speedup));
  sweep.set("lambda_evals_scalar", Json::number(evals_scalar));
  sweep.set("lambda_evals_batched", Json::number(evals_batched));
  sweep.set("plan_grid_points_batched", Json::number(plan_points_batched));
  sweep.set("crossover_max_rel_err", Json::number(crossover_err));
  sweep.set("margin_max_rel_err", Json::number(margin_err));
  sweep.set("pole_max_rel_err", Json::number(pole_err));
  sweep.set("parity_pass", Json::boolean(parity_ok));
  report.set("design_sweep", sweep);
  Json deriv = Json::object();
  deriv.set("grid_points", Json::number(static_cast<double>(n_deriv)));
  deriv.set("impulse_max_rel_err", Json::number(deriv_err_impulse));
  deriv.set("zoh_max_rel_err", Json::number(deriv_err_zoh));
  deriv.set("within_tolerance", Json::boolean(deriv_ok));
  deriv.set("central_diff_max_rel_err", Json::number(central_diff_err));
  report.set("derivative", deriv);
  Json fallback = Json::object();
  fallback.set("margins_bit_identical",
               Json::boolean(margins_bit_identical));
  fallback.set("poles_bit_identical", Json::boolean(poles_bit_identical));
  report.set("scalar_fallback", fallback);
  report.set("telemetry", bench::telemetry_json(phases));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_stability", phases);
  manifest.set_config("sweep_points", static_cast<double>(n_points));
  manifest.set_config("derivative_grid_points",
                      static_cast<double>(n_deriv));
  manifest.set_config("reps", static_cast<double>(reps));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  bool failed = false;
  if (!parity_ok) {
    std::cerr << "FAIL: batched/scalar parity (crossover " << crossover_err
              << ", margin " << margin_err << ", pole " << pole_err
              << ", shape " << (parity_shape_ok ? "ok" : "MISMATCH")
              << ") exceeds 1e-9 relative\n";
    failed = true;
  }
  if (!deriv_ok) {
    std::cerr << "FAIL: lambda_derivative_grid differs from the scalar "
                 "analytic derivative by " << deriv_err
              << " (> 1e-12 relative)\n";
    failed = true;
  }
  if (!margins_bit_identical || !poles_bit_identical) {
    std::cerr << "FAIL: scalar-forced results are not bit-identical to "
                 "the seed implementations (margins "
              << (margins_bit_identical ? "ok" : "DIFFER") << ", poles "
              << (poles_bit_identical ? "ok" : "DIFFER") << ")\n";
    failed = true;
  }
  if (check && !smoke && speedup < 3.0) {
    std::cerr << "FAIL: batched design-sweep speedup " << speedup
              << "x below the 3x target\n";
    failed = true;
  }
  return failed ? 1 : 0;
}

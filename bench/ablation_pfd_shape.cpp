// Ablation F: PFD hold shape -- the paper's "extension to arbitrary
// PFDs is possible" made concrete.
//
// Two detector families with the SAME charge per cycle:
//  * impulse: narrow charge-pump pulses (Fig. 4's Dirac idealization),
//  * zero-order hold: a sample-and-hold detector holding Icp*e/T.
// The sampler's rank-one aliasing survives; what changes is the shape
// factor H_zoh(s + j m w0) on every V~ component.  Two competing
// effects fall out of the model and are confirmed by the dedicated
// sample-and-hold simulator:
//  * near crossover the hold's -wT/2 lag ERODES the effective margin,
//  * at w0/2 its sinc rolloff attenuates the aliases, so the hard
//    stability boundary RISES (0.276 -> ~0.42).
//
// Usage: ablation_pfd_shape [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/timedomain/sample_hold_sim.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};

  auto model = [&](double ratio, PfdShape shape) {
    SamplingPllOptions opts;
    opts.pfd_shape = shape;
    return SamplingPllModel(make_typical_loop(ratio * w0, w0),
                            HarmonicCoefficients(cplx{1.0}), opts);
  };

  std::cout << "=== Ablation F: impulse charge pump vs sample-and-hold "
               "detector ===\n\n";

  Table t({"w_UG/w0", "PM_eff impulse", "PM_eff ZOH",
           "lam_half impulse", "lam_half ZOH"});
  for (double ratio : {0.05, 0.1, 0.15, 0.2, 0.25}) {
    const SamplingPllModel imp = model(ratio, PfdShape::kImpulse);
    const SamplingPllModel zoh = model(ratio, PfdShape::kZeroOrderHold);
    const EffectiveMargins mi = effective_margins(imp);
    const EffectiveMargins mz = effective_margins(zoh);
    t.add_row({Table::fmt(ratio),
               mi.eff_found ? Table::fmt(mi.eff_phase_margin_deg) : "-",
               mz.eff_found ? Table::fmt(mz.eff_phase_margin_deg) : "-",
               Table::fmt(half_rate_lambda(imp)),
               Table::fmt(half_rate_lambda(zoh))});
  }
  t.print(std::cout);

  auto boundary = [&](PfdShape shape) {
    double lo = 0.05, hi = 0.6;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (half_rate_lambda(model(mid, shape)) > -1.0 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  std::cout << "\nstability boundary: impulse "
            << boundary(PfdShape::kImpulse) << ", ZOH "
            << boundary(PfdShape::kZeroOrderHold) << "\n";

  // Validate the ZOH branch against the sample-and-hold simulator.
  std::cout << "\nZOH model vs sample-and-hold simulator (ratio 0.15):\n";
  Table v({"w/w0", "|H00| model", "|H00| sim", "rel_err"});
  const PllParameters p = make_typical_loop(0.15 * w0, w0);
  const SamplingPllModel zoh = model(0.15, PfdShape::kZeroOrderHold);
  for (double f : {0.03, 0.08, 0.15}) {
    ProbeOptions opts;
    opts.settle_periods = 350.0;
    opts.measure_periods = 20;
    const TransferMeasurement meas =
        measure_baseband_transfer_sample_hold(p, f * w0, opts);
    const cplx pred = zoh.baseband_transfer(j * (f * w0));
    v.add_row(std::vector<double>{
        f, std::abs(pred), std::abs(meas.value),
        std::abs(meas.value - pred) / std::abs(pred)});
  }
  v.print(std::cout);

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

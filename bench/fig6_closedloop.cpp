// Fig. 6 reproduction: closed-loop baseband transfer H_{0,0}(jw) for
// w_UG/w0 in {1/100, 1/10, 1/5} -- solid curves from the HTM closed
// form (eq. 38), marks from the behavioral time-marching simulator.
//
// Expected shape (paper): as w_UG/w0 grows, the effective bandwidth
// shifts right and the passband-edge peaking worsens; the HTM curve and
// the simulation marks agree within ~2%.  The classical LTI column is
// printed for contrast -- it misses both effects.
//
// Usage: fig6_closedloop [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1
  const cplx j{0.0, 1.0};

  std::cout << "=== Fig. 6: |H_00(jw)| for w_UG/w0 = 1/100, 1/10, 1/5 ===\n";
  std::cout << "HTM = eq. 38 (exact lambda), LTI = classical A/(1+A),\n"
            << "sim = time-marching probe at selected frequencies\n\n";

  Table t({"w_UG/w0", "w/w_UG", "HTM_dB", "LTI_dB", "sim_dB", "rel_err"});
  double worst_err = 0.0;

  for (double ratio : {0.01, 0.1, 0.2}) {
    const PllParameters params = make_typical_loop(ratio * w0, w0);
    const SamplingPllModel model(params);

    // Frequency grid in units of w_UG (the paper's x-axis), capped at
    // w0/2 where the sampled description lives.
    const std::vector<double> grid =
        logspace(0.05, std::min(50.0, 0.5 / ratio * 0.98), 13);
    // Simulation marks at a subset (time-marching is the slow part).
    const std::vector<double> marks =
        (ratio >= 0.1) ? std::vector<double>{0.3, 1.0, 2.0}
                       : std::vector<double>{0.3, 1.0};

    // Both solid curves over the whole grid in one batched call each.
    std::vector<double> w_abs(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      w_abs[i] = grid[i] * ratio * w0;
    }
    const CVector s_grid = jw_grid(w_abs);
    const CVector htm = model.baseband_transfer_grid(s_grid);
    const CVector lti = model.lti_baseband_transfer_grid(s_grid);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      t.add_row({Table::fmt(ratio), Table::fmt(grid[i]),
                 Table::fmt(magnitude_db(htm[i])),
                 Table::fmt(magnitude_db(lti[i])), "-", "-"});
    }

    // Simulation marks: each one is a full transient run, so probe them
    // all at once on the thread pool.
    ProbeOptions opts;
    opts.settle_periods = 400.0;
    opts.measure_periods = 24;
    std::vector<double> w_marks(marks.size());
    for (std::size_t i = 0; i < marks.size(); ++i) {
      w_marks[i] = marks[i] * ratio * w0;
    }
    const std::vector<TransferMeasurement> meas =
        measure_baseband_transfer_many(params, w_marks, opts);
    for (std::size_t i = 0; i < marks.size(); ++i) {
      const cplx h = model.baseband_transfer(j * w_marks[i]);
      const double rel = std::abs(meas[i].value - h) / std::abs(h);
      worst_err = std::max(worst_err, rel);
      t.add_row({Table::fmt(ratio), Table::fmt(marks[i]),
                 Table::fmt(magnitude_db(h)),
                 Table::fmt(
                     magnitude_db(model.lti_baseband_transfer(j * w_marks[i]))),
                 Table::fmt(magnitude_db(meas[i].value)), Table::fmt(rel)});
    }
  }
  t.print(std::cout);
  std::cout << "\nworst HTM-vs-simulation relative error: " << worst_err
            << "  (paper: 'both are within 2%')\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

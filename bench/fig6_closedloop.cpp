// Fig. 6 reproduction: closed-loop baseband transfer H_{0,0}(jw) for
// w_UG/w0 in {1/100, 1/10, 1/5} -- solid curves from the HTM closed
// form (eq. 38), marks from the behavioral time-marching simulator.
//
// Expected shape (paper): as w_UG/w0 grows, the effective bandwidth
// shifts right and the passband-edge peaking worsens; the HTM curve and
// the simulation marks agree within ~2%.  The classical LTI column is
// printed for contrast -- it misses both effects.
//
// Usage: fig6_closedloop [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;  // T = 1
  const cplx j{0.0, 1.0};

  std::cout << "=== Fig. 6: |H_00(jw)| for w_UG/w0 = 1/100, 1/10, 1/5 ===\n";
  std::cout << "HTM = eq. 38 (exact lambda), LTI = classical A/(1+A),\n"
            << "sim = time-marching probe at selected frequencies\n\n";

  Table t({"w_UG/w0", "w/w_UG", "HTM_dB", "LTI_dB", "sim_dB", "rel_err"});
  double worst_err = 0.0;

  for (double ratio : {0.01, 0.1, 0.2}) {
    const PllParameters params = make_typical_loop(ratio * w0, w0);
    const SamplingPllModel model(params);

    // Frequency grid in units of w_UG (the paper's x-axis), capped at
    // w0/2 where the sampled description lives.
    const std::vector<double> grid =
        logspace(0.05, std::min(50.0, 0.5 / ratio * 0.98), 13);
    // Simulation marks at a subset (time-marching is the slow part).
    const std::vector<double> marks =
        (ratio >= 0.1) ? std::vector<double>{0.3, 1.0, 2.0}
                       : std::vector<double>{0.3, 1.0};

    for (double x : grid) {
      const double w = x * ratio * w0;
      const cplx htm = model.baseband_transfer(j * w);
      const cplx lti = model.lti_baseband_transfer(j * w);
      t.add_row({Table::fmt(ratio), Table::fmt(x),
                 Table::fmt(magnitude_db(htm)), Table::fmt(magnitude_db(lti)),
                 "-", "-"});
    }
    for (double x : marks) {
      const double w = x * ratio * w0;
      ProbeOptions opts;
      opts.settle_periods = 400.0;
      opts.measure_periods = 24;
      const TransferMeasurement meas =
          measure_baseband_transfer(params, w, opts);
      const cplx htm = model.baseband_transfer(j * w);
      const double rel = std::abs(meas.value - htm) / std::abs(htm);
      worst_err = std::max(worst_err, rel);
      t.add_row({Table::fmt(ratio), Table::fmt(x), Table::fmt(magnitude_db(htm)),
                 Table::fmt(magnitude_db(model.lti_baseband_transfer(j * w))),
                 Table::fmt(magnitude_db(meas.value)), Table::fmt(rel)});
    }
  }
  t.print(std::cout);
  std::cout << "\nworst HTM-vs-simulation relative error: " << worst_err
            << "  (paper: 'both are within 2%')\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Ablation C: the z-domain baseline (Hein-Scott / Gardner style,
// impulse-invariant) against the HTM model and classical LTI analysis.
//
// Three questions:
//  1. Do the z-domain model and the effective-gain lambda(s) agree?
//     (They must: Poisson summation makes them the same object on
//     z = e^{sT}.)
//  2. Where does each method place the stability boundary in w_UG/w0?
//     LTI says "always stable"; z-domain poles and the lambda half-rate
//     criterion must agree with each other.
//  3. What does the z-domain model miss?  The continuous-time baseband
//     response between sampling instants (Fig. 6) and all inter-band
//     transfers -- the HTM model's contribution.
//
// Usage: ablation_zdomain [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/util/table.hpp"
#include "htmpll/ztrans/jury.hpp"
#include "htmpll/ztrans/zdomain.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};

  std::cout << "=== Ablation C: z-domain baseline vs HTM model ===\n\n";
  std::cout << "1) lambda(s) == G_z(e^{sT}) (Poisson identity), "
               "w_UG/w0 = 0.2:\n";
  {
    const SamplingPllModel model(make_typical_loop(0.2 * w0, w0));
    const ImpulseInvariantModel zm(model.open_loop_gain(), w0);
    Table t({"w/w0", "lambda_exact", "z_model", "rel_err"});
    for (double f : {0.05, 0.15, 0.3, 0.45}) {
      const cplx s = j * (f * w0);
      const cplx lam = model.lambda(s);
      const cplx zlam = zm.lambda_equivalent(s);
      t.add_row({Table::fmt(f), Table::fmt(std::abs(lam)),
                 Table::fmt(std::abs(zlam)),
                 Table::fmt(std::abs(lam - zlam) / std::abs(lam))});
    }
    t.print(std::cout);
  }

  std::cout << "\n2) stability verdicts vs w_UG/w0 (LTI: stable at every "
               "ratio):\n";
  Table t2({"w_UG/w0", "z_poles_stable", "jury_stable", "lambda_half",
            "half_rate_stable", "max|z_pole|"});
  for (double ratio : {0.1, 0.2, 0.25, 0.27, 0.28, 0.29, 0.3, 0.35, 0.5}) {
    const SamplingPllModel model(make_typical_loop(ratio * w0, w0));
    const ImpulseInvariantModel zm(model.open_loop_gain(), w0);
    double maxp = 0.0;
    for (const cplx& p : zm.closed_loop_poles()) {
      maxp = std::max(maxp, std::abs(p));
    }
    t2.add_row({Table::fmt(ratio), zm.is_stable() ? "yes" : "NO",
                jury_stable(zm.characteristic()) ? "yes" : "NO",
                Table::fmt(half_rate_lambda(model)),
                predicts_half_rate_instability(model) ? "NO" : "yes",
                Table::fmt(maxp)});
  }
  t2.print(std::cout);

  // Boundary via z-domain pole bisection.
  double lo = 0.2, hi = 0.5;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    const ImpulseInvariantModel zm(
        make_typical_loop(mid * w0, w0).open_loop_gain(), w0);
    (zm.is_stable() ? lo : hi) = mid;
  }
  std::cout << "\nz-domain stability boundary: w_UG/w0 = " << 0.5 * (lo + hi)
            << "\n";

  std::cout << "\n3) what the z-model cannot express: continuous-time "
               "baseband response and inter-band transfers.\n"
               "   (See fig6_closedloop and fig2_bandmap -- those numbers "
               "come from the HTM description only.)\n";

  if (argc > 1) {
    t2.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

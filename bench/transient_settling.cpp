// Step-response (settling) comparison: classical continuous LTI
// prediction vs the sampled-loop discrete model vs the behavioral
// simulator.
//
// The time-domain face of Fig. 6/7: as w_UG/w0 grows the sampled loop
// rings far harder and settles far slower than classical analysis
// promises.  The discrete model (impulse-invariant closed loop expanded
// in z^{-1}) tracks the simulator; the LTI column is what a textbook
// settling budget would have signed off.
//
// The simulator column is one step_response_batch over the thread pool
// (one transient simulation per bandwidth); the two analytic columns are
// a parallel_map over the same bandwidth list.
//
// Usage: transient_settling [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/util/table.hpp"
#include "htmpll/ztrans/discrete_response.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace {

using namespace htmpll;

std::vector<double> lti_step_samples(const PllParameters& p,
                                     std::size_t count) {
  // y(t) = L^{-1}{ H_lti(s)/s } sampled at t = nT.
  const RationalFunction h_over_s =
      p.lti_closed_loop() * RationalFunction::integrator(1.0);
  const PartialFractions pf(h_over_s);
  std::vector<double> out(count);
  for (std::size_t n = 0; n < count; ++n) {
    out[n] = pf.impulse_response(static_cast<double>(n) * p.period())
                 .real();
  }
  return out;
}

std::vector<double> discrete_step_samples(const PllParameters& p,
                                          std::size_t count) {
  const ImpulseInvariantModel zm(p.open_loop_gain(), p.w0);
  const CVector s = step_response_z(zm.closed_loop_z(), count);
  std::vector<double> out(count);
  for (std::size_t n = 0; n < count; ++n) out[n] = s[n].real();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double w0 = 2.0 * std::numbers::pi;
  const std::size_t count = 600;
  const double band = 0.02;
  const std::vector<double> ratios = {0.05, 0.1, 0.15, 0.2, 0.25};

  std::vector<PllParameters> loops;
  loops.reserve(ratios.size());
  for (double ratio : ratios) {
    loops.push_back(make_typical_loop(ratio * w0, w0));
  }

  std::cout << "=== Reference phase step: overshoot and 2% settling "
               "(periods) ===\n\n";

  // Simulator batch: one exact transient per bandwidth, pool-parallel.
  const std::vector<std::vector<double>> sim_steps =
      step_response_batch(loops, count, 1e-3);
  // Analytic columns: independent per bandwidth as well.
  struct AnalyticMetrics {
    StepMetrics lti;
    StepMetrics tv;
  };
  const auto analytic = parallel_map<AnalyticMetrics>(
      loops.size(), [&](std::size_t i) {
        return AnalyticMetrics{
            step_metrics(lti_step_samples(loops[i], count), 1.0, band),
            step_metrics(discrete_step_samples(loops[i], count), 1.0,
                         band)};
      });

  Table t({"w_UG/w0", "LTI ovsh%", "TV ovsh%", "sim ovsh%",
           "LTI settle", "TV settle", "sim settle"});
  t.reserve(ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const StepMetrics sim = step_metrics(sim_steps[i], 1.0, band);
    t.add_row(std::vector<double>{
        ratios[i], 100.0 * analytic[i].lti.overshoot,
        100.0 * analytic[i].tv.overshoot, 100.0 * sim.overshoot,
        static_cast<double>(analytic[i].lti.settle_index),
        static_cast<double>(analytic[i].tv.settle_index),
        static_cast<double>(sim.settle_index)});
  }
  t.print(std::cout);
  std::cout << "\nthe discrete (time-varying) column tracks the "
               "simulator; classical LTI analysis underestimates both "
               "overshoot and settling once w_UG/w0 leaves the slow "
               "regime.\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Step-response (settling) comparison: classical continuous LTI
// prediction vs the sampled-loop discrete model vs the behavioral
// simulator.
//
// The time-domain face of Fig. 6/7: as w_UG/w0 grows the sampled loop
// rings far harder and settles far slower than classical analysis
// promises.  The discrete model (impulse-invariant closed loop expanded
// in z^{-1}) tracks the simulator; the LTI column is what a textbook
// settling budget would have signed off.
//
// Usage: transient_settling [output.csv]
#include <cmath>
#include <iostream>
#include <numbers>

#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/util/table.hpp"
#include "htmpll/ztrans/discrete_response.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace {

using namespace htmpll;

std::vector<double> lti_step_samples(const PllParameters& p,
                                     std::size_t count) {
  // y(t) = L^{-1}{ H_lti(s)/s } sampled at t = nT.
  const RationalFunction h_over_s =
      p.lti_closed_loop() * RationalFunction::integrator(1.0);
  const PartialFractions pf(h_over_s);
  std::vector<double> out(count);
  for (std::size_t n = 0; n < count; ++n) {
    out[n] = pf.impulse_response(static_cast<double>(n) * p.period())
                 .real();
  }
  return out;
}

std::vector<double> discrete_step_samples(const PllParameters& p,
                                          std::size_t count) {
  const ImpulseInvariantModel zm(p.open_loop_gain(), p.w0);
  const CVector s = step_response_z(zm.closed_loop_z(), count);
  std::vector<double> out(count);
  for (std::size_t n = 0; n < count; ++n) out[n] = s[n].real();
  return out;
}

std::vector<double> simulated_step_samples(const PllParameters& p,
                                           std::size_t count,
                                           double delta) {
  TransientConfig cfg;
  cfg.sample_interval = p.period();
  PllTransientSim sim(p, {}, cfg);
  sim.set_initial_theta(-delta);
  sim.run_periods(static_cast<double>(count) + 2.0);
  std::vector<double> out;
  out.push_back(0.0);  // t = 0
  for (std::size_t i = 0; i + 1 < count && i < sim.theta_samples().size();
       ++i) {
    out.push_back(sim.theta_samples()[i] / delta + 1.0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double w0 = 2.0 * std::numbers::pi;
  const std::size_t count = 600;
  const double band = 0.02;

  std::cout << "=== Reference phase step: overshoot and 2% settling "
               "(periods) ===\n\n";
  Table t({"w_UG/w0", "LTI ovsh%", "TV ovsh%", "sim ovsh%",
           "LTI settle", "TV settle", "sim settle"});
  for (double ratio : {0.05, 0.1, 0.15, 0.2, 0.25}) {
    const PllParameters p = make_typical_loop(ratio * w0, w0);
    const StepMetrics lti =
        step_metrics(lti_step_samples(p, count), 1.0, band);
    const StepMetrics tv =
        step_metrics(discrete_step_samples(p, count), 1.0, band);
    const StepMetrics sim =
        step_metrics(simulated_step_samples(p, count, 1e-3), 1.0, band);
    t.add_row(std::vector<double>{
        ratio, 100.0 * lti.overshoot, 100.0 * tv.overshoot,
        100.0 * sim.overshoot, static_cast<double>(lti.settle_index),
        static_cast<double>(tv.settle_index),
        static_cast<double>(sim.settle_index)});
  }
  t.print(std::cout);
  std::cout << "\nthe discrete (time-varying) column tracks the "
               "simulator; classical LTI analysis underestimates both "
               "overshoot and settling once w_UG/w0 leaves the slow "
               "regime.\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

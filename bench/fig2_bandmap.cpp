// Fig. 2 / Section 2 reproduction: how signal content moves between
// frequency bands through the closed-loop HTM.
//
// The matrix printed below is |H_{n,m}(jw)| in dB for the closed loop at
// w = 0.1 w0: element (n, m) is the transfer of content from the input
// band around m*w0 to the output band around n*w0.  Because the
// reference enters through the sampling PFD (rank-one HTM, eq. 20), all
// columns are identical -- every input band aliases onto the same
// baseband error before being re-distributed over output bands.  The
// open-loop PFD map is printed first to show the aliasing structure
// itself.
//
// Usage: fig2_bandmap [output.csv]
#include <iomanip>
#include <iostream>
#include <numbers>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/lti/bode.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const cplx j{0.0, 1.0};
  const int kShow = 3;
  const int kTrunc = 24;  // computed wide, displayed narrow

  const SamplingPllModel model(make_typical_loop(0.2 * w0, w0));
  const cplx s = j * (0.1 * w0);

  std::cout << "=== Fig. 2: band-to-band transfers |H_nm(jw)| at w = "
               "0.1 w0, w_UG/w0 = 0.2 ===\n\n";

  std::cout << "open-loop PFD HTM (eq. 19): every element w0/2pi = "
            << w0 / (2.0 * std::numbers::pi)
            << " -> rank one (pure aliasing)\n\n";

  const Htm closed = model.closed_loop_htm(s, kTrunc);

  std::vector<std::string> header{"out\\in"};
  for (int m = -kShow; m <= kShow; ++m) {
    header.push_back("m=" + std::to_string(m));
  }
  Table t(header);
  for (int n = -kShow; n <= kShow; ++n) {
    std::vector<std::string> row{"n=" + std::to_string(n)};
    for (int m = -kShow; m <= kShow; ++m) {
      row.push_back(Table::fmt(magnitude_db(closed.at(n, m))));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nobservations:\n"
            << " * columns are identical: the sampler aliases every input "
               "band to baseband (rank-one H_PFD)\n"
            << " * |H_00| = "
            << std::abs(closed.at(0, 0))
            << " (baseband tracking), sidebands fall off like "
               "|A(jw + j n w0)| ~ 1/n^2:\n";
  for (int n = 0; n <= kShow; ++n) {
    std::cout << "     |H_" << n << "0| = " << std::abs(closed.at(n, 0))
              << "\n";
  }

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Ablation D: loop dead time (PFD reset / buffer delay) in the sampled
// loop versus the LTI prediction.
//
// LTI analysis books a delay penalty of w_UG * tau radians of phase
// margin.  In the sampled loop every aliased term A(s + j m w0) also
// rotates by e^{-j m w0 tau}, so the effective-margin shift is a
// different (sometimes even opposite-signed) number, and the stability
// boundary in w_UG/w0 moves.  One more effect LTI sign-off gets wrong.
//
// Usage: ablation_delay [output.csv]
#include <iostream>
#include <numbers>

#include "htmpll/core/stability.hpp"
#include "htmpll/lti/delay.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const double t_ref = 2.0 * std::numbers::pi / w0;

  std::cout << "=== Ablation D: loop delay vs margins (Pade order 3) "
               "===\n\n";
  Table t({"w_UG/w0", "tau/T", "LTI_PM_deg", "eff_PM_deg", "LTI_loss_deg",
           "eff_loss_deg"});
  for (double ratio : {0.1, 0.2}) {
    const PllParameters p = make_typical_loop(ratio * w0, w0);
    double lti0 = 0.0, eff0 = 0.0;
    for (double tau_frac : {0.0, 0.02, 0.05, 0.1, 0.15}) {
      const SamplingPllModel model(p, HarmonicCoefficients(cplx{1.0}), {},
                                   pade_delay(tau_frac * t_ref, 3));
      const EffectiveMargins m = effective_margins(model);
      if (tau_frac == 0.0) {
        lti0 = m.lti_phase_margin_deg;
        eff0 = m.eff_phase_margin_deg;
      }
      t.add_row({Table::fmt(ratio), Table::fmt(tau_frac),
                 Table::fmt(m.lti_phase_margin_deg),
                 m.eff_found ? Table::fmt(m.eff_phase_margin_deg)
                             : "unstable",
                 Table::fmt(lti0 - m.lti_phase_margin_deg),
                 m.eff_found ? Table::fmt(eff0 - m.eff_phase_margin_deg)
                             : "-"});
    }
  }
  t.print(std::cout);

  // Stability boundary (half-rate criterion) vs delay.
  std::cout << "\nstability boundary w_UG/w0 vs tau/T:\n";
  for (double tau_frac : {0.0, 0.05, 0.1, 0.2}) {
    double lo = 0.05, hi = 0.5;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      const SamplingPllModel model(
          make_typical_loop(mid * w0, w0), HarmonicCoefficients(cplx{1.0}),
          {}, pade_delay(tau_frac * t_ref, 3));
      (half_rate_lambda(model) > -1.0 ? lo : hi) = mid;
    }
    std::cout << "  tau/T = " << tau_frac << "  ->  boundary "
              << 0.5 * (lo + hi) << "\n";
  }

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Transient-engine benchmark: measures the time-domain performance
// layer (keyed propagator cache, settled-state warm starts, batched
// probes) against the seed behavior and verifies its contracts:
//
//   1. Multi-frequency probe sweep, single thread: the seed baseline
//      (single-entry propagator cache, full per-point settle) vs the
//      default cold path (multi-entry cache; must be BIT-IDENTICAL to
//      the seed) vs the warm-start path (shared settled checkpoint;
//      must agree within the probe's small-signal tolerance).
//   2. Raw event rate and expm-evaluations-saved of a locked loop.
//   3. Thread scaling of the batched probe on the global pool.
//
// Writes a machine-readable report (default BENCH_transient.json).
//
// Usage: bench_transient [output.json] [--check]
//   --check: exit non-zero if the cold path is not bit-identical to the
//            seed behavior, if warm-start disagrees beyond tolerance, or
//            if caching + warm start fail to beat the seed baseline.
#include <cmath>
#include <cstring>
#include <iostream>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/report.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

/// Replica of the probe measurement loop with a configurable propagator
/// cache capacity.  Capacity 1 reproduces the seed's single-entry cache
/// behavior exactly; the arithmetic is identical to run_probe's, so the
/// default cold probe must match its output bit-for-bit.
cplx probe_with_cache(const PllParameters& params, double omega_m,
                      const ProbeOptions& opts, std::size_t capacity) {
  const double t_period = params.period();
  const double tm = 2.0 * std::numbers::pi / omega_m;

  ReferenceModulation mod;
  mod.amplitude = opts.amplitude_fraction * t_period;
  mod.omega = omega_m;
  mod.phase = 0.0;

  TransientConfig cfg;
  cfg.sample_interval =
      std::min({tm / static_cast<double>(opts.samples_per_period),
                t_period / 8.0,
                2.0 * std::numbers::pi / (16.0 * omega_m)});
  cfg.record = false;
  cfg.propagator_cache = capacity;

  PllTransientSim sim(params, mod, cfg);
  const double settle = std::max(opts.settle_periods * t_period, 4.0 * tm);
  sim.run_until(settle);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_until(settle + static_cast<double>(opts.measure_periods) * tm);
  return single_bin_ratio(sim.sample_times(), sim.theta_samples(), omega_m,
                          sim.theta_ref_samples(), omega_m);
}

bool bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

std::vector<cplx> values_of(const std::vector<TransferMeasurement>& ms) {
  std::vector<cplx> out;
  out.reserve(ms.size());
  for (const TransferMeasurement& m : ms) out.push_back(m.value);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_transient.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const PllParameters params = make_typical_loop(0.2 * w0, w0);
  const std::size_t n_points = 8;
  const std::vector<double> omegas = logspace(0.1 * w0, 0.45 * w0,
                                              n_points);
  ProbeOptions opts;
  opts.settle_periods = 300.0;

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t pool_width = ThreadPool::global().threads();
  std::cout << "=== Transient-engine benchmark: " << n_points
            << "-point probe sweep, pool width " << pool_width
            << " (hardware " << hw << ") ===\n\n";

  const int reps = 2;
  ThreadPool serial_pool(1);

  // --- 1. probe sweep: seed baseline vs cached cold vs warm start -----
  std::vector<cplx> r_seed(n_points);
  const double t_seed = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n_points; ++i) {
      r_seed[i] = probe_with_cache(params, omegas[i], opts, 1);
    }
  });

  std::vector<TransferMeasurement> m_cold;
  const double t_cold = time_best_of(reps, [&] {
    m_cold = measure_baseband_transfer_many(params, omegas, opts,
                                            serial_pool);
  });
  const std::vector<cplx> r_cold = values_of(m_cold);
  const bool default_identical = bit_identical(r_seed, r_cold);

  ProbeOptions warm_opts = opts;
  warm_opts.warm_start = true;
  std::vector<TransferMeasurement> m_warm;
  const double t_warm = time_best_of(reps, [&] {
    m_warm = measure_baseband_transfer_many(params, omegas, warm_opts,
                                            serial_pool);
  });
  double warm_max_rel_err = 0.0;
  for (std::size_t i = 0; i < n_points; ++i) {
    warm_max_rel_err = std::max(
        warm_max_rel_err,
        std::abs(m_warm[i].value - r_cold[i]) / std::abs(r_cold[i]));
  }
  // The probe itself is only trusted to the paper's few-percent level;
  // warm and cold runs differ by the (settled-out) modulation onset
  // transient and must agree far inside that.
  const double warm_tol = 1e-2;
  const bool warm_ok = warm_max_rel_err < warm_tol;

  const double speedup_cache = t_seed / t_cold;
  const double speedup_warm = t_seed / t_warm;

  // --- 2. event rate and expm savings of a locked loop ----------------
  TransientConfig lock_cfg;
  lock_cfg.record = false;
  PllTransientSim lock_sim(params, {}, lock_cfg);
  const bench::WallTimer lock_timer;
  lock_sim.run_periods(2000.0);
  const double t_lock = lock_timer.seconds();
  const double events_per_sec =
      static_cast<double>(lock_sim.event_count()) / t_lock;
  const PropagatorCacheStats& st = lock_sim.propagator_cache_stats();
  const double saved_fraction =
      st.lookups == 0
          ? 0.0
          : static_cast<double>(st.hits()) / static_cast<double>(st.lookups);

  // --- 3. thread scaling of the batched probe -------------------------
  std::vector<TransferMeasurement> m_pool;
  const double t_pool = time_best_of(reps, [&] {
    m_pool = measure_baseband_transfer_many(params, omegas, opts);
  });
  const bool pool_identical = bit_identical(r_cold, values_of(m_pool));

  // --- 4. instrumented telemetry pass ----------------------------------
  // One clean warm probe batch plus a locked-loop run with obs enabled;
  // what they count becomes the report's "telemetry" section, the
  // Chrome trace and the run manifest.
  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;
  bench::run_phase(phases, "probe_batch", [&] {
    m_pool = measure_baseband_transfer_many(params, omegas, warm_opts);
  });
  bench::run_phase(phases, "locked_loop", [&] {
    PllTransientSim sim(params, {}, lock_cfg);
    sim.run_periods(500.0);
  });

  // --- report ----------------------------------------------------------
  Table t({"case", "time_s", "vs_seed", "note"});
  t.add_row({"seed (1-entry cache, cold)", Table::fmt(t_seed),
             Table::fmt(1.0), "baseline"});
  t.add_row({"cold, keyed cache", Table::fmt(t_cold),
             Table::fmt(speedup_cache),
             default_identical ? "bit-identical" : "NOT IDENTICAL"});
  t.add_row({"warm start", Table::fmt(t_warm), Table::fmt(speedup_warm),
             warm_ok ? "within tolerance" : "OUT OF TOLERANCE"});
  t.add_row({"cold, global pool", Table::fmt(t_pool),
             Table::fmt(t_seed / t_pool),
             pool_identical ? "bit-identical" : "NOT IDENTICAL"});
  t.print(std::cout);
  std::cout << "\nwarm-start max relative error vs cold: "
            << warm_max_rel_err << " (tolerance " << warm_tol << ")\n";
  std::cout << "locked loop: " << events_per_sec << " events/s, expm "
            << st.misses << " of " << st.lookups << " lookups ("
            << 100.0 * saved_fraction << "% saved by the cache)\n";

  const std::string verdict =
      std::string(default_identical
                      ? "default path bit-identical"
                      : "DEFAULT PATH NOT BIT-IDENTICAL") +
      ", " +
      (warm_ok ? "warm-start within tolerance"
               : "WARM-START OUT OF TOLERANCE");
  std::cout << "\nverdict: " << verdict << "\n";

  Json report = Json::object();
  report.set("bench", Json::string("transient_engine"))
      .set("hardware_threads", Json::number(static_cast<double>(hw)))
      .set("pool_threads", Json::number(static_cast<double>(pool_width)));
  Json sweep = Json::object();
  sweep.set("points", Json::number(static_cast<double>(n_points)))
      .set("seed_single_entry_s", Json::number(t_seed))
      .set("cold_keyed_cache_s", Json::number(t_cold))
      .set("warm_start_s", Json::number(t_warm))
      .set("pool_cold_s", Json::number(t_pool))
      .set("speedup_cache_only", Json::number(speedup_cache))
      .set("speedup_cache_plus_warm", Json::number(speedup_warm))
      .set("warm_max_rel_err", Json::number(warm_max_rel_err))
      .set("warm_tolerance", Json::number(warm_tol));
  report.set("probe_sweep", sweep);
  Json lock = Json::object();
  lock.set("periods", Json::number(2000.0))
      .set("events_per_sec", Json::number(events_per_sec))
      .set("expm_lookups", Json::number(static_cast<double>(st.lookups)))
      .set("expm_evaluations", Json::number(static_cast<double>(st.misses)))
      .set("expm_saved_fraction", Json::number(saved_fraction));
  report.set("locked_loop", lock);
  report.set("telemetry", bench::telemetry_json(phases));
  report.set("default_bit_identical",
             Json::boolean(default_identical && pool_identical));
  report.set("warm_within_tolerance", Json::boolean(warm_ok));
  report.set("verdict", Json::string(verdict));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_transient", phases);
  manifest.set_config("probe_points", static_cast<double>(n_points));
  manifest.set_config("settle_periods", opts.settle_periods);
  manifest.set_config("locked_loop_periods", 500.0);
  manifest.set_config("pool_threads", static_cast<double>(pool_width));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  if (!default_identical || !pool_identical) {
    std::cerr << "FAIL: default probe path is not bit-identical to the "
                 "seed behavior\n";
    return 1;
  }
  if (!warm_ok) {
    std::cerr << "FAIL: warm-start probe disagrees with the cold probe "
                 "beyond tolerance\n";
    return 1;
  }
  if (check && speedup_warm < 1.2) {
    std::cerr << "FAIL: caching + warm start only " << speedup_warm
              << "x vs the seed baseline\n";
    return 1;
  }
  return 0;
}

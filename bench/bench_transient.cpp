// Transient-engine benchmark: measures the time-domain performance
// layer (spectral step propagators, keyed propagator cache, settled-
// state warm starts, batched probes) against the seed behavior and
// verifies its contracts:
//
//   1. Multi-frequency probe sweep, single thread: the seed baseline
//      (single-entry propagator cache, Pade propagators, full per-point
//      settle) vs the cold Pade path (multi-entry cache; must be
//      BIT-IDENTICAL to the seed) vs the cold default path (spectral
//      propagators when enabled; must agree within 1e-10 and run >= 2x
//      the seed under --check) vs the warm-start path (shared settled
//      checkpoint; must agree within the probe's small-signal
//      tolerance).
//   2. Raw event rate and propagator-build savings of a locked loop.
//   3. Thread scaling of the batched probe on the global pool.
//   4. Instrumented pass: with spectral propagators enabled, the probe
//      sweep's "linalg.expm_evals" must collapse to ~0 (the engine
//      factors each state matrix once instead of running one Van Loan
//      expm per distinct step length).
//
// Writes a machine-readable report (default BENCH_transient.json).
// HTMPLL_SPECTRAL=0 forces the Pade path everywhere; the spectral
// sections/gates are then skipped and recorded as disabled.
//
// Usage: bench_transient [output.json] [--check]
//   --check: exit non-zero if the cold Pade path is not bit-identical
//            to the seed behavior, if the spectral path disagrees
//            beyond tolerance or fails its speed/expm gates, if
//            warm-start disagrees beyond tolerance, or if caching +
//            warm start fail to beat the seed baseline.
#include <cmath>
#include <cstring>
#include <iostream>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/report.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

/// Replica of the probe measurement loop with the seed's configuration:
/// single-entry propagator cache and Pade (Van Loan expm) propagators.
/// The arithmetic is identical to run_probe's with the same settings, so
/// the cold Pade probe must match its output bit-for-bit.
cplx probe_seed_replica(const PllParameters& params, double omega_m,
                        const ProbeOptions& opts) {
  const double t_period = params.period();
  const double tm = 2.0 * std::numbers::pi / omega_m;

  ReferenceModulation mod;
  mod.amplitude = opts.amplitude_fraction * t_period;
  mod.omega = omega_m;
  mod.phase = 0.0;

  TransientConfig cfg;
  cfg.sample_interval =
      std::min({tm / static_cast<double>(opts.samples_per_period),
                t_period / 8.0,
                2.0 * std::numbers::pi / (16.0 * omega_m)});
  cfg.record = false;
  cfg.propagator_cache = 1;
  cfg.use_spectral_propagators = false;

  PllTransientSim sim(params, mod, cfg);
  const double settle = std::max(opts.settle_periods * t_period, 4.0 * tm);
  sim.run_until(settle);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_until(settle + static_cast<double>(opts.measure_periods) * tm);
  return single_bin_ratio(sim.sample_times(), sim.theta_samples(), omega_m,
                          sim.theta_ref_samples(), omega_m);
}

bool bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

double max_rel_err(const std::vector<cplx>& test,
                   const std::vector<cplx>& ref) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    worst = std::max(worst, std::abs(test[i] - ref[i]) / std::abs(ref[i]));
  }
  return worst;
}

std::vector<cplx> values_of(const std::vector<TransferMeasurement>& ms) {
  std::vector<cplx> out;
  out.reserve(ms.size());
  for (const TransferMeasurement& m : ms) out.push_back(m.value);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_transient.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const PllParameters params = make_typical_loop(0.2 * w0, w0);
  const std::size_t n_points = 8;
  const std::vector<double> omegas = logspace(0.1 * w0, 0.45 * w0,
                                              n_points);
  ProbeOptions opts;
  opts.settle_periods = 300.0;

  // Honors HTMPLL_SPECTRAL: when forced off, the spectral sections and
  // gates are skipped and the default path IS the Pade path.
  const bool spectral_on = spectral::enabled();

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t pool_width = ThreadPool::global().threads();
  std::cout << "=== Transient-engine benchmark: " << n_points
            << "-point probe sweep, pool width " << pool_width
            << " (hardware " << hw << "), spectral propagators "
            << (spectral_on ? "ON" : "OFF") << " ===\n\n";

  const int reps = 2;
  ThreadPool serial_pool(1);

  // --- 1. probe sweep: seed vs cold Pade vs cold default vs warm ------
  std::vector<cplx> r_seed(n_points);
  const double t_seed = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n_points; ++i) {
      r_seed[i] = probe_seed_replica(params, omegas[i], opts);
    }
  });

  // Cold run with the keyed cache but the seed's Pade numerics: the
  // bit-identity contract lives here.
  std::vector<TransferMeasurement> m_pade;
  spectral::set_enabled(false);
  const double t_pade = time_best_of(reps, [&] {
    m_pade = measure_baseband_transfer_many(params, omegas, opts,
                                            serial_pool);
  });
  spectral::set_enabled(spectral_on);
  const std::vector<cplx> r_pade = values_of(m_pade);
  const bool default_identical = bit_identical(r_seed, r_pade);

  // Cold run on the default backend (spectral when enabled).
  std::vector<TransferMeasurement> m_cold;
  const double t_cold = time_best_of(reps, [&] {
    m_cold = measure_baseband_transfer_many(params, omegas, opts,
                                            serial_pool);
  });
  const std::vector<cplx> r_cold = values_of(m_cold);
  const double spectral_rel_err =
      spectral_on ? max_rel_err(r_cold, r_pade) : 0.0;
  const double spectral_tol = 1e-10;
  const bool spectral_ok = !spectral_on || spectral_rel_err < spectral_tol;

  ProbeOptions warm_opts = opts;
  warm_opts.warm_start = true;
  std::vector<TransferMeasurement> m_warm;
  const double t_warm = time_best_of(reps, [&] {
    m_warm = measure_baseband_transfer_many(params, omegas, warm_opts,
                                            serial_pool);
  });
  double warm_max_rel_err = max_rel_err(values_of(m_warm), r_cold);
  // The probe itself is only trusted to the paper's few-percent level;
  // warm and cold runs differ by the (settled-out) modulation onset
  // transient and must agree far inside that.
  const double warm_tol = 1e-2;
  const bool warm_ok = warm_max_rel_err < warm_tol;

  const double speedup_cache = t_seed / t_pade;
  const double speedup_spectral = t_seed / t_cold;
  const double speedup_warm = t_seed / t_warm;

  // --- 2. event rate and propagator savings of a locked loop ----------
  TransientConfig lock_cfg;
  lock_cfg.record = false;
  PllTransientSim lock_sim(params, {}, lock_cfg);
  const bench::WallTimer lock_timer;
  lock_sim.run_periods(2000.0);
  const double t_lock = lock_timer.seconds();
  const double events_per_sec =
      static_cast<double>(lock_sim.event_count()) / t_lock;
  const PropagatorCacheStats& st = lock_sim.propagator_cache_stats();
  const double saved_fraction = st.hit_rate();

  // --- 3. thread scaling of the batched probe -------------------------
  std::vector<TransferMeasurement> m_pool;
  const double t_pool = time_best_of(reps, [&] {
    m_pool = measure_baseband_transfer_many(params, omegas, opts);
  });
  const bool pool_identical = bit_identical(r_cold, values_of(m_pool));

  // --- 4. instrumented telemetry pass ----------------------------------
  // One clean warm probe batch plus a locked-loop run with obs enabled;
  // what they count becomes the report's "telemetry" section, the
  // Chrome trace and the run manifest.  With spectral propagators on,
  // the probe batch must drive linalg.expm_evals to ~zero.
  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;
  bench::run_phase(phases, "probe_batch", [&] {
    m_pool = measure_baseband_transfer_many(params, omegas, warm_opts);
  });
  const double probe_expm_evals =
      static_cast<double>(obs::counter("linalg.expm_evals").value());
  const double probe_eig_factorizations =
      static_cast<double>(obs::counter("linalg.eig_factorizations").value());
  bench::run_phase(phases, "locked_loop", [&] {
    PllTransientSim sim(params, {}, lock_cfg);
    sim.run_periods(500.0);
  });
  // With the spectral engine, a whole probe sweep performs at most a
  // handful of Van Loan exponentials (none in steady operation); the
  // seed performed one per cache miss (~10^4 - 10^5 per sweep).
  const double expm_evals_budget = 32.0;
  const bool expm_ok = !spectral_on || probe_expm_evals <= expm_evals_budget;

  // --- report ----------------------------------------------------------
  Table t({"case", "time_s", "vs_seed", "note"});
  t.add_row({"seed (1-entry cache, Pade, cold)", Table::fmt(t_seed),
             Table::fmt(1.0), "baseline"});
  t.add_row({"cold, keyed cache, Pade", Table::fmt(t_pade),
             Table::fmt(speedup_cache),
             default_identical ? "bit-identical" : "NOT IDENTICAL"});
  t.add_row({"cold, default backend", Table::fmt(t_cold),
             Table::fmt(speedup_spectral),
             spectral_on
                 ? (spectral_ok ? "spectral, within tolerance"
                                : "spectral, OUT OF TOLERANCE")
                 : "spectral disabled (Pade)"});
  t.add_row({"warm start", Table::fmt(t_warm), Table::fmt(speedup_warm),
             warm_ok ? "within tolerance" : "OUT OF TOLERANCE"});
  t.add_row({"cold, global pool", Table::fmt(t_pool),
             Table::fmt(t_seed / t_pool),
             pool_identical ? "bit-identical" : "NOT IDENTICAL"});
  t.print(std::cout);
  if (spectral_on) {
    std::cout << "\nspectral cold max relative error vs Pade: "
              << spectral_rel_err << " (tolerance " << spectral_tol
              << ")\ninstrumented probe sweep: " << probe_expm_evals
              << " expm evals, " << probe_eig_factorizations
              << " eig factorizations\n";
  }
  std::cout << "\nwarm-start max relative error vs cold: "
            << warm_max_rel_err << " (tolerance " << warm_tol << ")\n";
  std::cout << "locked loop: " << events_per_sec
            << " events/s, propagator builds " << st.misses << " of "
            << st.lookups << " lookups (" << 100.0 * saved_fraction
            << "% saved by the cache)\n";

  const std::string verdict =
      std::string(default_identical
                      ? "Pade path bit-identical"
                      : "PADE PATH NOT BIT-IDENTICAL") +
      ", " +
      (spectral_on
           ? (spectral_ok ? "spectral within tolerance"
                          : "SPECTRAL OUT OF TOLERANCE")
           : "spectral disabled") +
      ", " +
      (warm_ok ? "warm-start within tolerance"
               : "WARM-START OUT OF TOLERANCE");
  std::cout << "\nverdict: " << verdict << "\n";

  Json report = Json::object();
  report.set("bench", Json::string("transient_engine"))
      .set("hardware_threads", Json::number(static_cast<double>(hw)))
      .set("pool_threads", Json::number(static_cast<double>(pool_width)));
  Json sweep = Json::object();
  sweep.set("points", Json::number(static_cast<double>(n_points)))
      .set("seed_single_entry_s", Json::number(t_seed))
      .set("cold_keyed_cache_s", Json::number(t_pade))
      .set("cold_default_s", Json::number(t_cold))
      .set("warm_start_s", Json::number(t_warm))
      .set("pool_cold_s", Json::number(t_pool))
      .set("speedup_cache_only", Json::number(speedup_cache))
      .set("speedup_cache_plus_warm", Json::number(speedup_warm))
      .set("warm_max_rel_err", Json::number(warm_max_rel_err))
      .set("warm_tolerance", Json::number(warm_tol));
  report.set("probe_sweep", sweep);
  Json lock = Json::object();
  lock.set("periods", Json::number(2000.0))
      .set("events_per_sec", Json::number(events_per_sec))
      .set("expm_lookups", Json::number(static_cast<double>(st.lookups)))
      .set("expm_evaluations", Json::number(static_cast<double>(st.misses)))
      .set("expm_saved_fraction", Json::number(saved_fraction));
  report.set("locked_loop", lock);
  report.set("telemetry", bench::telemetry_json(phases));
  report.set("default_bit_identical",
             Json::boolean(default_identical && pool_identical));
  report.set("warm_within_tolerance", Json::boolean(warm_ok));
  report.set("spectral_enabled", Json::boolean(spectral_on));
  report.set("spectral_within_tolerance", Json::boolean(spectral_ok));
  report.set("spectral_max_rel_err", Json::number(spectral_rel_err));
  report.set("spectral_cold_speedup_vs_seed",
             Json::number(speedup_spectral));
  report.set("probe_sweep_expm_evals", Json::number(probe_expm_evals));
  report.set("probe_sweep_eig_factorizations",
             Json::number(probe_eig_factorizations));
  report.set("verdict", Json::string(verdict));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_transient", phases);
  manifest.set_config("probe_points", static_cast<double>(n_points));
  manifest.set_config("settle_periods", opts.settle_periods);
  manifest.set_config("locked_loop_periods", 500.0);
  manifest.set_config("pool_threads", static_cast<double>(pool_width));
  manifest.set_config("spectral_enabled", spectral_on ? 1.0 : 0.0);
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  if (!default_identical || !pool_identical) {
    std::cerr << "FAIL: cold Pade probe path is not bit-identical to the "
                 "seed behavior\n";
    return 1;
  }
  if (!spectral_ok) {
    std::cerr << "FAIL: spectral probe disagrees with the Pade probe "
                 "beyond tolerance (" << spectral_rel_err << ")\n";
    return 1;
  }
  if (!warm_ok) {
    std::cerr << "FAIL: warm-start probe disagrees with the cold probe "
                 "beyond tolerance\n";
    return 1;
  }
  if (check && speedup_warm < 1.2) {
    std::cerr << "FAIL: caching + warm start only " << speedup_warm
              << "x vs the seed baseline\n";
    return 1;
  }
  if (check && spectral_on && speedup_spectral < 2.0) {
    std::cerr << "FAIL: spectral cold sweep only " << speedup_spectral
              << "x vs the seed baseline\n";
    return 1;
  }
  if (check && !expm_ok) {
    std::cerr << "FAIL: instrumented probe sweep performed "
              << probe_expm_evals << " expm evals (budget "
              << expm_evals_budget << ") with spectral propagators on\n";
    return 1;
  }
  return 0;
}

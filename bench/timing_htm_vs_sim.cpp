// Timing claim (Section 5): "evaluating (38) is only a matter of
// seconds while it takes several minutes for the time-marching
// simulations to complete."
//
// Micro-benchmarks:
//  * BM_HtmPoint        -- one H_00(jw) evaluation via the exact lambda
//  * BM_HtmFullSweep    -- a complete 33-point Fig. 6 curve
//  * BM_HtmMatrixSolve  -- one truncated-HTM rank-one closed-loop solve
//  * BM_TransientProbe  -- one simulator measurement at one frequency
//  * BM_TransientProbeManyCold/Warm -- the batched multi-frequency probe
//    (measure_baseband_transfer_many), cold per-point settling vs the
//    shared warm-start checkpoint
//
// The expected outcome is the paper's, only more extreme on modern
// hardware: the frequency-domain model is many orders of magnitude
// faster than time-marching per data point.
#include <numbers>

#include <benchmark/benchmark.h>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/timedomain/probe.hpp"
#include "htmpll/util/grid.hpp"

namespace {

constexpr double kW0 = 2.0 * std::numbers::pi;
const htmpll::cplx kJ{0.0, 1.0};

void BM_HtmPoint(benchmark::State& state) {
  using namespace htmpll;
  const SamplingPllModel model(make_typical_loop(0.2 * kW0, kW0));
  const cplx s = kJ * (0.17 * kW0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.baseband_transfer(s));
  }
}
BENCHMARK(BM_HtmPoint);

void BM_HtmFullSweep(benchmark::State& state) {
  using namespace htmpll;
  const SamplingPllModel model(make_typical_loop(0.2 * kW0, kW0));
  const std::vector<double> grid = logspace(1e-3 * kW0, 0.49 * kW0, 33);
  for (auto _ : state) {
    cplx acc{0.0};
    for (double w : grid) acc += model.baseband_transfer(kJ * w);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_HtmFullSweep);

void BM_HtmMatrixSolve(benchmark::State& state) {
  using namespace htmpll;
  const SamplingPllModel model(make_typical_loop(0.2 * kW0, kW0));
  const cplx s = kJ * (0.17 * kW0);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.closed_loop_htm(s, k));
  }
}
BENCHMARK(BM_HtmMatrixSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_TransientProbe(benchmark::State& state) {
  using namespace htmpll;
  const PllParameters params = make_typical_loop(0.2 * kW0, kW0);
  ProbeOptions opts;
  opts.settle_periods = 400.0;
  opts.measure_periods = 24;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_baseband_transfer(params, 0.17 * kW0, opts));
  }
}
BENCHMARK(BM_TransientProbe)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_TransientProbeManyCold(benchmark::State& state) {
  using namespace htmpll;
  const PllParameters params = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<double> omegas = logspace(0.05 * kW0, 0.45 * kW0, 8);
  ProbeOptions opts;
  opts.settle_periods = 300.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_baseband_transfer_many(params, omegas, opts));
  }
}
BENCHMARK(BM_TransientProbeManyCold)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_TransientProbeManyWarm(benchmark::State& state) {
  using namespace htmpll;
  const PllParameters params = make_typical_loop(0.2 * kW0, kW0);
  const std::vector<double> omegas = logspace(0.05 * kW0, 0.45 * kW0, 8);
  ProbeOptions opts;
  opts.settle_periods = 300.0;
  opts.warm_start = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measure_baseband_transfer_many(params, omegas, opts));
  }
}
BENCHMARK(BM_TransientProbeManyWarm)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

BENCHMARK_MAIN();

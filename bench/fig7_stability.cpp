// Fig. 7 reproduction: normalized effective unity-gain frequency
// w_UG,eff/w_UG (upper plot) and the phase margin of the effective
// open-loop gain lambda(jw) (lower plot) versus w_UG/w0.  The horizontal
// reference line is the margin classical LTI analysis predicts (it does
// not depend on w_UG/w0 at all).
//
// Expected shape (paper): w_UG,eff/w_UG rises above 1, the effective
// phase margin collapses rapidly -- "for w_UG/w0 = 1/10 this phase
// margin is already ~9% worse than predicted by LTI analysis".  We also
// print the hard stability boundary (where |lambda| no longer crosses 1
// below w0/2 and lambda(j w0/2) <= -1) and the z-domain verdict.
//
// The ratio sweep runs through the design-space map: one batched
// crossover hunt per ratio through the compiled eval plan, all ratios
// concurrent on the pool.
//
// Usage: fig7_stability [output.csv]
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/stability.hpp"
#include "htmpll/design/design_sweep.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;

  const double lti_pm = typical_loop_lti_phase_margin_deg();
  std::cout << "=== Fig. 7: effective crossover and phase margin vs "
               "w_UG/w0 ===\n";
  std::cout << "LTI-predicted phase margin (horizontal line): " << lti_pm
            << " deg\n\n";

  const std::vector<double> ratios = {0.01, 0.02, 0.04, 0.06, 0.08,
                                      0.10, 0.125, 0.15, 0.175, 0.20,
                                      0.225, 0.25, 0.27};
  DesignSpec spec;
  spec.w0 = w0;
  spec.target_w_ug = 0.1 * w0;
  spec.target_pm_deg = lti_pm;
  DesignSweepOptions sweep_opts;
  sweep_opts.include_poles = false;  // this figure reads margins only
  const DesignSpaceMap map = design_space_map(spec, ratios, {4.0},
                                              sweep_opts);

  Table t({"w_UG/w0", "wUGeff/wUG", "PM_eff_deg", "PM_lti_deg",
           "PM_loss_%", "lambda(jw0/2)", "z_stable"});
  t.reserve(ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    const DesignPoint& pt = map.at(i, 0);
    const EffectiveMargins& em = pt.design.margins;
    const double loss =
        100.0 * (em.lti_phase_margin_deg - em.eff_phase_margin_deg) /
        em.lti_phase_margin_deg;
    t.add_row({Table::fmt(ratios[i]),
               em.eff_found
                   ? Table::fmt(em.eff_crossover / em.lti_crossover)
                   : "-",
               em.eff_found ? Table::fmt(em.eff_phase_margin_deg) : "-",
               Table::fmt(em.lti_phase_margin_deg),
               em.eff_found ? Table::fmt(loss) : "-",
               Table::fmt(pt.half_rate_lambda),
               pt.design.z_domain_stable ? "yes" : "NO"});
  }
  t.print(std::cout);

  // Locate the stability boundary: bisection on lambda(j w0/2) = -1.
  double lo = 0.2, hi = 0.5;
  for (int it = 0; it < 50; ++it) {
    const double mid = 0.5 * (lo + hi);
    const SamplingPllModel model(make_typical_loop(mid * w0, w0));
    if (half_rate_lambda(model) > -1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::cout << "\nsampled-loop stability boundary (lambda(j w0/2) = -1): "
            << "w_UG/w0 = " << 0.5 * (lo + hi)
            << "   [LTI analysis predicts stability for ALL ratios]\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

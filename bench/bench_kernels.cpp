// Eval-plan / batch-kernel benchmark: the compiled evaluation plan vs
// the scalar reference paths, plus the raw SoA kernels it is built
// from.
//
//   1. headline: exact-method lambda_grid over a 2000-point log grid,
//      compiled plan vs the scalar-forced grid (use_eval_plan = false).
//      Contract: speedup >= 1.5x and <= 1e-12 max relative error.
//   2. micro-kernels over the same grid size: batch_cexp vs per-point
//      std::exp, batch_horner vs Polynomial::operator(), batch_rational
//      vs RationalFunction::operator(), accumulate_pole_sums vs the
//      scalar harmonic_pole_sums closed form.
//
// Writes a machine-readable report (default BENCH_kernels.json).
//
// Usage: bench_kernels [output.json] [--check]
//   --check: additionally exit non-zero if the plan speedup drops below
//            1.5x the scalar-forced grid.
#include <algorithm>
#include <cmath>
#include <complex>
#include <iostream>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/simd.hpp"
#include "htmpll/lti/polynomial.hpp"
#include "htmpll/lti/rational.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

double max_rel_err(const CVector& got, const CVector& want) {
  double worst = got.size() == want.size()
                     ? 0.0
                     : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    const double scale = std::max(1e-300, std::abs(want[i]));
    worst = std::max(worst, std::abs(got[i] - want[i]) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const PllParameters params = make_typical_loop(0.1 * w0, w0);
  const SamplingPllModel plan_model(params);  // eval plan on by default
  SamplingPllOptions scalar_opts;
  scalar_opts.use_eval_plan = false;
  const SamplingPllModel scalar_model(params, HarmonicCoefficients(cplx{1.0}),
                                      scalar_opts);

  const std::size_t n = 2000;
  const std::vector<double> w_grid = logspace(1e-3 * w0, 0.49 * w0, n);
  const CVector s_grid = jw_grid(w_grid);
  const int reps = 5;

  std::cout << "=== Eval-plan / batch-kernel benchmark: " << n
            << " grid points ===\n\n";

  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;

  // --- 1. headline: exact lambda_grid, plan vs scalar-forced ------------
  CVector lam_scalar;
  double t_scalar = 0.0;
  bench::run_phase(phases, "lambda_grid_scalar", [&] {
    t_scalar = time_best_of(reps, [&] {
      lam_scalar = scalar_model.lambda_grid(s_grid, LambdaMethod::kExact, 0);
    });
  });
  CVector lam_plan;
  double t_plan = 0.0;
  bench::run_phase(phases, "lambda_grid_plan", [&] {
    t_plan = time_best_of(reps, [&] {
      lam_plan = plan_model.lambda_grid(s_grid, LambdaMethod::kExact, 0);
    });
  });
  const double speedup = t_scalar / t_plan;
  const double plan_err = max_rel_err(lam_plan, lam_scalar);

  // --- 2. micro-kernels over the same grid size -------------------------
  std::vector<double> s_re(n), s_im(n), out_re(n), out_im(n), tmp_re(n),
      tmp_im(n);
  split_planes(s_grid.data(), n, s_re.data(), s_im.data());
  CVector scalar_out(n);

  // exp(-sT) plane: the shared exponential every plan block starts with.
  const double t_period = 2.0 * std::numbers::pi / w0;
  std::vector<double> arg_re(n), arg_im(n), e_re(n), e_im(n);
  for (std::size_t i = 0; i < n; ++i) {
    arg_re[i] = -t_period * s_re[i];
    arg_im[i] = -t_period * s_im[i];
  }
  double t_cexp_batch = 0.0;
  bench::run_phase(phases, "cexp", [&] {
    t_cexp_batch = time_best_of(reps, [&] {
      batch_cexp(arg_re.data(), arg_im.data(), n, e_re.data(), e_im.data());
    });
  });
  const double t_cexp_scalar = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      scalar_out[i] = std::exp(cplx{arg_re[i], arg_im[i]});
    }
  });

  // degree-6 polynomial, then a 4/5 rational built from it.
  CVector num_c = {cplx{1.0, 0.2},  cplx{-0.7, 0.1}, cplx{0.3, -0.4},
                   cplx{0.05, 0.6}, cplx{-0.2, 0.1}, cplx{0.4, -0.3},
                   cplx{0.08, 0.02}};
  CVector den_c = {cplx{2.0, -0.1}, cplx{0.9, 0.3}, cplx{-0.2, 0.5},
                   cplx{0.6, -0.2}, cplx{0.1, 0.1}, cplx{0.3, 0.04}};
  const Polynomial num_poly(num_c);
  const Polynomial den_poly(den_c);
  const RationalFunction rational(num_poly, den_poly);

  double t_horner_batch = 0.0;
  bench::run_phase(phases, "horner", [&] {
    t_horner_batch = time_best_of(reps, [&] {
      batch_horner(num_c.data(), num_c.size(), s_re.data(), s_im.data(), n,
                   out_re.data(), out_im.data());
    });
  });
  const double t_horner_scalar = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n; ++i) scalar_out[i] = num_poly(s_grid[i]);
  });

  double t_rational_batch = 0.0;
  bench::run_phase(phases, "rational", [&] {
    t_rational_batch = time_best_of(reps, [&] {
      batch_rational(num_c.data(), num_c.size(), den_c.data(), den_c.size(),
                     s_re.data(), s_im.data(), n, out_re.data(),
                     out_im.data(), tmp_re.data(), tmp_im.data());
    });
  });
  const double t_rational_scalar = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n; ++i) scalar_out[i] = rational(s_grid[i]);
  });

  // one multiplicity-4 pole term streamed over the grid vs the scalar
  // coth/csch^2 closed form per point.
  const double c = std::numbers::pi / w0;
  PoleSumTerm term;
  term.pole = cplx{-0.3 * w0, 0.2 * w0};
  term.exp_pole_t = std::exp(term.pole * t_period);
  term.kmax = 4;
  term.residues[0] = cplx{0.4, -0.2};
  term.residues[1] = cplx{-1.1, 0.6};
  term.residues[2] = cplx{0.2, 0.9};
  term.residues[3] = cplx{-0.05, 0.3};
  std::vector<double> acc_re(n), acc_im(n);
  double t_polesum_batch = 0.0;
  bench::run_phase(phases, "pole_sums", [&] {
    t_polesum_batch = time_best_of(reps, [&] {
      std::fill(acc_re.begin(), acc_re.end(), 0.0);
      std::fill(acc_im.begin(), acc_im.end(), 0.0);
      accumulate_pole_sums(term, c, s_re.data(), s_im.data(), e_re.data(),
                           e_im.data(), n, acc_re.data(), acc_im.data());
    });
  });
  const double t_polesum_scalar = time_best_of(reps, [&] {
    for (std::size_t i = 0; i < n; ++i) {
      cplx sums[4];
      harmonic_pole_sums(s_grid[i] - term.pole, w0, 4, sums);
      cplx acc{0.0};
      for (int j = 0; j < 4; ++j) acc += term.residues[j] * sums[j];
      scalar_out[i] = acc;
    }
  });

  // --- 3. SIMD dispatch: vector vs forced-scalar batch_cexp -------------
  // The cexp-dominated grid is where the AVX2 kernels earn their keep;
  // time the dispatched path against the same public entry point pinned
  // to the scalar ISA (exactly the pre-SIMD kernel).
  const simd::Isa resolved_isa = simd::active_isa();
  const bool simd_active = resolved_isa == simd::Isa::kAvx2Fma;
  double t_cexp_simd = 0.0;
  double t_cexp_forced_scalar = 0.0;
  bench::run_phase(phases, "cexp_simd_dispatch", [&] {
    t_cexp_simd = time_best_of(reps, [&] {
      batch_cexp(arg_re.data(), arg_im.data(), n, e_re.data(), e_im.data());
    });
  });
  {
    simd::set_isa(simd::Isa::kScalar);
    bench::run_phase(phases, "cexp_forced_scalar", [&] {
      t_cexp_forced_scalar = time_best_of(reps, [&] {
        batch_cexp(arg_re.data(), arg_im.data(), n, e_re.data(),
                   e_im.data());
      });
    });
    simd::set_isa(resolved_isa);
  }
  const double simd_speedup = t_cexp_forced_scalar / t_cexp_simd;

  // --- console summary --------------------------------------------------
  Table table({"kernel", "batch_s", "scalar_s", "speedup"});
  auto row = [&table](const std::string& name, double batch, double scalar) {
    table.add_row({name, std::to_string(batch), std::to_string(scalar),
                   std::to_string(scalar / batch)});
  };
  row("lambda_grid exact (plan)", t_plan, t_scalar);
  row("cexp", t_cexp_batch, t_cexp_scalar);
  row("horner deg-6", t_horner_batch, t_horner_scalar);
  row("rational 6/5", t_rational_batch, t_rational_scalar);
  row("pole_sums kmax=4", t_polesum_batch, t_polesum_scalar);
  row("cexp simd vs forced-scalar", t_cexp_simd, t_cexp_forced_scalar);
  table.print(std::cout);
  std::cout << "\nplan max relative error vs scalar grid: " << plan_err
            << "\n";
  const bool within_tol = plan_err <= 1e-12;
  // Feed the plan-vs-scalar spot check into the manifest health gauges.
  obs::diag_gauge_max(obs::HealthGauge::kMaxPlanSpotCheckError, plan_err);
  std::cout << "plan speedup " << speedup << "x (target >= 1.5), within "
            << "1e-12: " << (within_tol ? "yes" : "NO") << "\n";
  std::cout << "simd dispatch: " << simd::isa_name(resolved_isa) << " ("
            << simd::lane_width(resolved_isa) << " lanes), cexp speedup "
            << simd_speedup << "x"
            << (simd_active ? " (target >= 1.8)" : " (scalar fallback)")
            << "\n";

  // --- report -----------------------------------------------------------
  Json report = Json::object();
  report.set("benchmark", Json::string("bench_kernels"));
  report.set("grid_points", Json::number(static_cast<double>(n)));
  Json plan = Json::object();
  plan.set("lambda_grid_plan_s", Json::number(t_plan));
  plan.set("lambda_grid_scalar_s", Json::number(t_scalar));
  plan.set("plan_speedup_vs_scalar", Json::number(speedup));
  plan.set("plan_max_rel_err", Json::number(plan_err));
  plan.set("plan_within_tolerance", Json::boolean(within_tol));
  report.set("eval_plan", plan);
  Json kernels = Json::object();
  auto kernel_entry = [](double batch, double scalar) {
    Json e = Json::object();
    e.set("batch_s", Json::number(batch));
    e.set("scalar_s", Json::number(scalar));
    e.set("speedup", Json::number(scalar / batch));
    return e;
  };
  kernels.set("cexp", kernel_entry(t_cexp_batch, t_cexp_scalar));
  kernels.set("horner", kernel_entry(t_horner_batch, t_horner_scalar));
  kernels.set("rational", kernel_entry(t_rational_batch, t_rational_scalar));
  kernels.set("pole_sums", kernel_entry(t_polesum_batch, t_polesum_scalar));
  report.set("kernels", kernels);
  Json simd_section = Json::object();
  simd_section.set("compiled", Json::boolean(simd::compiled()));
  simd_section.set("cpu_has_avx2_fma",
                   Json::boolean(simd::cpu_has_avx2_fma()));
  simd_section.set("isa", Json::string(simd::isa_name(resolved_isa)));
  simd_section.set(
      "lane_width",
      Json::number(static_cast<double>(simd::lane_width(resolved_isa))));
  simd_section.set("active", Json::boolean(simd_active));
  simd_section.set("cexp_simd_s", Json::number(t_cexp_simd));
  simd_section.set("cexp_forced_scalar_s",
                   Json::number(t_cexp_forced_scalar));
  simd_section.set("cexp_speedup", Json::number(simd_speedup));
  // The 1.8x gate only binds when the vector path is live; a scalar
  // dispatch (no AVX2, HTMPLL_SIMD=0, -DHTMPLL_SIMD=OFF) trivially
  // passes with speedup ~1.
  simd_section.set("gate_pass",
                   Json::boolean(!simd_active || simd_speedup >= 1.8));
  report.set("simd", simd_section);
  report.set("telemetry", bench::telemetry_json(phases));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_kernels", phases);
  manifest.set_config("grid_points", static_cast<double>(n));
  manifest.set_config("reps", static_cast<double>(reps));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  if (!within_tol) {
    std::cerr << "FAIL: eval-plan lambda_grid differs from the scalar "
                 "grid by " << plan_err << " (> 1e-12 relative)\n";
    return 1;
  }
  if (check && speedup < 1.5) {
    std::cerr << "FAIL: eval-plan lambda_grid speedup " << speedup
              << "x below the 1.5x target\n";
    return 1;
  }
  if (check && simd_active && simd_speedup < 1.8) {
    std::cerr << "FAIL: SIMD batch_cexp speedup " << simd_speedup
              << "x below the 1.8x target (isa "
              << simd::isa_name(resolved_isa) << ")\n";
    return 1;
  }
  return 0;
}

// Batched noise-analysis benchmark: the grid PSD surface vs the
// pointwise folding loops.
//
//   1. headline: output_psd_grid over a 2000-point log grid with 16
//      fold harmonics vs output_psd_total called per point.  Contract:
//      speedup >= 3x and <= 1e-10 max relative error -- on the SIMD,
//      forced-scalar (HTMPLL_SIMD=0) and instrumented (HTMPLL_OBS=1)
//      paths alike.
//   2. derived surfaces: spur_map_grid (noise skirt under the first
//      reference spurs) and integrated_jitter vs the pointwise
//      integrated_rms functional.
//
// Writes a machine-readable report (default BENCH_noise.json).
//
// Usage: bench_noise [output.json] [--check]
//   --check: additionally exit non-zero if the grid speedup drops
//            below 3x the pointwise loop.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>
#include <numbers>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/linalg/simd.hpp"
#include "htmpll/noise/noise.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/util/grid.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;
using bench::Json;
using bench::time_best_of;

double max_rel_err(const std::vector<double>& got,
                   const std::vector<double>& want) {
  double worst = got.size() == want.size()
                     ? 0.0
                     : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    const double scale = std::max(1e-300, std::abs(want[i]));
    worst = std::max(worst, std::abs(got[i] - want[i]) / scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_noise.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--check") {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  const double w0 = 2.0 * std::numbers::pi;
  const SamplingPllModel model(make_typical_loop(0.1 * w0, w0));
  const int fold = 16;
  const NoiseAnalysis na(model, fold);
  const PowerLawPsd s_ref{1e-14, 1e-13, 0.0};
  const PowerLawPsd s_vco{0.0, 0.0, 1e-8};
  const PowerLawPsd s_icp{1e-20, 1e-21, 0.0};

  const std::size_t n = 2000;
  const std::vector<double> w_grid = logspace(1e-3 * w0, 0.49 * w0, n);
  // Single-digit-millisecond measurements on a shared box: best-of-9
  // keeps one preempted rep from sinking the speedup gate.
  const int reps = 9;

  std::cout << "=== Noise-grid benchmark: " << n << " grid points x "
            << (2 * fold + 1) << " fold harmonics ===\n";
  std::cout << "simd dispatch: " << simd::isa_name(simd::active_isa())
            << "\n\n";

  const bool obs_was_enabled = obs::enabled();
  obs::enable();
  obs::reset_counters();
  obs::clear_trace();
  std::vector<std::pair<std::string, double>> phases;

  // --- 1. headline: output_psd_grid vs pointwise output_psd_total ------
  std::vector<double> psd_pointwise(n);
  double t_pointwise = 0.0;
  bench::run_phase(phases, "psd_pointwise", [&] {
    t_pointwise = time_best_of(reps, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        psd_pointwise[i] =
            na.output_psd_total(w_grid[i], s_ref, s_vco, s_icp);
      }
    });
  });
  std::vector<double> psd_grid;
  double t_grid = 0.0;
  bench::run_phase(phases, "psd_grid", [&] {
    t_grid = time_best_of(reps, [&] {
      psd_grid = na.output_psd_grid(w_grid, s_ref, s_vco, s_icp);
    });
  });
  const double speedup = t_pointwise / t_grid;
  const double rel_err = max_rel_err(psd_grid, psd_pointwise);
  const bool within_tol = rel_err <= 1e-10;
  // The grid-vs-pointwise spot check is this bench's contribution to the
  // manifest's "health" gauges.
  obs::diag_gauge_max(obs::HealthGauge::kMaxPlanSpotCheckError, rel_err);

  // --- 2. derived surfaces ----------------------------------------------
  const std::vector<double> offsets = logspace(1e-3 * w0, 0.4 * w0, 100);
  double t_spur_map = 0.0;
  std::vector<std::vector<double>> spur_map;
  bench::run_phase(phases, "spur_map_grid", [&] {
    t_spur_map = time_best_of(reps, [&] {
      spur_map = na.spur_map_grid(offsets, 5, s_ref, s_vco, s_icp);
    });
  });

  const double w_lo = 1e-3 * w0;
  const double w_hi = 0.49 * w0;
  double jitter_batched = 0.0;
  double t_jitter_batched = 0.0;
  bench::run_phase(phases, "integrated_jitter", [&] {
    t_jitter_batched = time_best_of(reps, [&] {
      jitter_batched =
          na.integrated_jitter(w_lo, w_hi, s_ref, s_vco, s_icp, 400);
    });
  });
  double jitter_pointwise = 0.0;
  const double t_jitter_pointwise = time_best_of(reps, [&] {
    jitter_pointwise = na.integrated_rms(
        [&](double w) {
          return na.output_psd_total(w, s_ref, s_vco, s_icp);
        },
        w_lo, w_hi, 400);
  });
  const double jitter_err =
      std::abs(jitter_batched - jitter_pointwise) /
      std::max(1e-300, std::abs(jitter_pointwise));

  // --- 3. instrumentation overhead --------------------------------------
  // Same grid workload, obs off vs obs on; scripts/check_overhead.sh
  // gates the disabled-path cost at < 1%.  Median-of-N because the
  // overhead is a difference of two small timings (see bench_sweep).
  const int overhead_reps = 15;
  obs::disable();
  std::vector<double> psd_obs;
  psd_obs = na.output_psd_grid(w_grid, s_ref, s_vco, s_icp);  // warm-up
  const double t_obs_off = bench::time_median_of(overhead_reps, [&] {
    psd_obs = na.output_psd_grid(w_grid, s_ref, s_vco, s_icp);
  });
  obs::enable();
  psd_obs = na.output_psd_grid(w_grid, s_ref, s_vco, s_icp);  // warm-up
  const double t_obs_on = bench::time_median_of(overhead_reps, [&] {
    psd_obs = na.output_psd_grid(w_grid, s_ref, s_vco, s_icp);
  });
  const double obs_delta = t_obs_on - t_obs_off;
  const double obs_fraction = obs_delta / t_obs_off;
  // Instrumentation must not change a single bit of the PSD surface.
  const bool obs_identical =
      psd_obs.size() == psd_grid.size() &&
      std::memcmp(psd_obs.data(), psd_grid.data(),
                  psd_grid.size() * sizeof(double)) == 0;

  // --- console summary --------------------------------------------------
  Table table({"surface", "grid_s", "pointwise_s", "speedup"});
  table.add_row({"output_psd 2000pt", std::to_string(t_grid),
                 std::to_string(t_pointwise), std::to_string(speedup)});
  table.add_row({"integrated_jitter 400pt", std::to_string(t_jitter_batched),
                 std::to_string(t_jitter_pointwise),
                 std::to_string(t_jitter_pointwise / t_jitter_batched)});
  table.print(std::cout);
  std::cout << "\nspur_map_grid 5x100: " << t_spur_map << " s\n";
  std::cout << "grid max relative error vs pointwise: " << rel_err << "\n";
  std::cout << "grid speedup " << speedup << "x (target >= 3), within "
            << "1e-10: " << (within_tol ? "yes" : "NO") << "\n";
  std::cout << "integrated_jitter rel err: " << jitter_err << "\n";
  std::cout << "instrumentation: off " << t_obs_off << " s, on " << t_obs_on
            << " s (delta " << obs_delta << " s, " << 100.0 * obs_fraction
            << "%), bit-identical: " << (obs_identical ? "yes" : "NO")
            << "\n";

  // --- report -----------------------------------------------------------
  Json report = Json::object();
  report.set("benchmark", Json::string("bench_noise"));
  report.set("grid_points", Json::number(static_cast<double>(n)));
  report.set("fold_harmonics", Json::number(static_cast<double>(fold)));
  report.set("simd_isa", Json::string(simd::isa_name(simd::active_isa())));
  Json psd = Json::object();
  psd.set("grid_s", Json::number(t_grid));
  psd.set("pointwise_s", Json::number(t_pointwise));
  psd.set("grid_speedup_vs_pointwise", Json::number(speedup));
  psd.set("grid_max_rel_err", Json::number(rel_err));
  psd.set("grid_within_tolerance", Json::boolean(within_tol));
  report.set("output_psd", psd);
  Json surfaces = Json::object();
  surfaces.set("spur_map_grid_s", Json::number(t_spur_map));
  surfaces.set("integrated_jitter_s", Json::number(t_jitter_batched));
  surfaces.set("integrated_rms_pointwise_s",
               Json::number(t_jitter_pointwise));
  surfaces.set("integrated_jitter_rel_err", Json::number(jitter_err));
  report.set("surfaces", surfaces);
  Json overhead = Json::object();
  overhead.set("workload", Json::string("output_psd_grid"))
      .set("reps", Json::number(static_cast<double>(overhead_reps)))
      .set("estimator", Json::string("median"))
      .set("disabled_s", Json::number(t_obs_off))
      .set("enabled_s", Json::number(t_obs_on))
      .set("delta_s", Json::number(obs_delta))
      .set("fraction", Json::number(obs_fraction));
  report.set("obs_overhead", overhead);
  report.set("bit_identical", Json::boolean(obs_identical));
  report.set("telemetry", bench::telemetry_json(phases));
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  const std::string trace_path = out_path + ".trace.json";
  obs::write_chrome_trace(trace_path);
  std::cout << "wrote " << trace_path << "\n";

  obs::RunReport manifest = bench::make_manifest("bench_noise", phases);
  manifest.set_config("grid_points", static_cast<double>(n));
  manifest.set_config("fold_harmonics", static_cast<double>(fold));
  manifest.set_config("reps", static_cast<double>(reps));
  const std::string manifest_path = out_path + ".manifest.json";
  manifest.write_json(manifest_path);
  std::cout << "wrote " << manifest_path << "\n";

  if (!obs_was_enabled) obs::disable();

  if (!within_tol) {
    std::cerr << "FAIL: output_psd_grid differs from the pointwise loop "
                 "by " << rel_err << " (> 1e-10 relative)\n";
    return 1;
  }
  if (!obs_identical) {
    std::cerr << "FAIL: output_psd_grid with instrumentation disabled is "
                 "not bit-identical to the instrumented run\n";
    return 1;
  }
  if (check && speedup < 3.0) {
    std::cerr << "FAIL: output_psd_grid speedup " << speedup
              << "x below the 3x target\n";
    return 1;
  }
  return 0;
}

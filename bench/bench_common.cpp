#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll::bench {

double time_best_of(int reps, const std::function<void()>& fn) {
  HTMPLL_REQUIRE(reps >= 1, "time_best_of needs at least one repetition");
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double t = timer.seconds();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

double time_median_of(int reps, const std::function<void()>& fn) {
  HTMPLL_REQUIRE(reps >= 1, "time_median_of needs at least one repetition");
  std::vector<double> times(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times[static_cast<std::size_t>(r)] = timer.seconds();
  }
  std::sort(times.begin(), times.end());
  const std::size_t mid = times.size() / 2;
  return times.size() % 2 == 1 ? times[mid]
                               : 0.5 * (times[mid - 1] + times[mid]);
}

void maybe_write_csv(const Table& t, int argc, char** argv, int index) {
  if (argc > index) {
    t.write_csv_file(argv[index]);
    std::cout << "wrote " << argv[index] << "\n";
  }
}

Json Json::object() { return Json(Kind::kObject); }
Json Json::array() { return Json(Kind::kArray); }

Json Json::number(double v) {
  Json j(Kind::kNumber);
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j(Kind::kString);
  j.string_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j(Kind::kBool);
  j.bool_ = v;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  HTMPLL_REQUIRE(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  HTMPLL_REQUIRE(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  switch (kind_) {
    case Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", number_);
      out += buf;
      break;
    }
    case Kind::kString:
      append_quoted(out, string_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_quoted(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "}";
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "]";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  out += '\n';
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open JSON output file: " + path);
  os << dump(indent);
}

Json telemetry_json(
    const std::vector<std::pair<std::string, double>>& phases) {
  const obs::MetricsSnapshot snap = obs::snapshot();

  Json counters = Json::object();
  Json gauges = Json::object();
  for (const obs::MetricSample& m : snap.samples) {
    switch (m.kind) {
      case obs::MetricKind::kCounter:
      case obs::MetricKind::kHistogram:
        counters.set(m.name, Json::number(static_cast<double>(m.count)));
        break;
      case obs::MetricKind::kGauge:
        gauges.set(m.name, Json::number(m.value));
        break;
    }
  }

  // Derived rates.  Zero denominators report 0 rather than NaN so the
  // JSON stays loadable by strict parsers.
  const auto ratio = [](double num, double den) {
    return den > 0.0 ? num / den : 0.0;
  };
  const double prop_lookups = static_cast<double>(
      snap.counter_value("timedomain.propagator_lookups"));
  const double prop_misses = static_cast<double>(
      snap.counter_value("timedomain.propagator_misses"));
  const double busy_ns =
      static_cast<double>(snap.counter_value("parallel.pool_busy_ns"));
  const double width_ns =
      static_cast<double>(snap.counter_value("parallel.pool_width_ns"));

  Json derived = Json::object();
  derived
      .set("propagator_cache_hit_rate",
           Json::number(ratio(prop_lookups - prop_misses, prop_lookups)))
      .set("pool_utilization", Json::number(ratio(busy_ns, width_ns)));

  Json spans = Json::object();
  for (const obs::SpanStats& s : obs::span_summary()) {
    Json one = Json::object();
    one.set("count", Json::number(static_cast<double>(s.count)))
        .set("total_s", Json::number(static_cast<double>(s.total_ns) * 1e-9))
        .set("max_s", Json::number(static_cast<double>(s.max_ns) * 1e-9));
    spans.set(s.name, std::move(one));
  }

  Json phase_obj = Json::object();
  for (const auto& [name, seconds] : phases) {
    phase_obj.set(name, Json::number(seconds));
  }

  Json out = Json::object();
  out.set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("derived", std::move(derived))
      .set("phases_s", std::move(phase_obj))
      .set("spans", std::move(spans))
      .set("trace_spans_dropped",
           Json::number(static_cast<double>(obs::trace_dropped())));
  return out;
}

void run_phase(std::vector<std::pair<std::string, double>>& phases,
               const std::string& name, const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  phases.emplace_back(name, timer.seconds());
}

obs::RunReport make_manifest(
    const std::string& run_name,
    const std::vector<std::pair<std::string, double>>& phases) {
  obs::RunReport report(run_name);
  for (const auto& [name, seconds] : phases) {
    report.add_phase(name, seconds);
  }
  report.capture();
  return report;
}

}  // namespace htmpll::bench

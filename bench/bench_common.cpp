#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "htmpll/util/check.hpp"

namespace htmpll::bench {

double time_best_of(int reps, const std::function<void()>& fn) {
  HTMPLL_REQUIRE(reps >= 1, "time_best_of needs at least one repetition");
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double t = timer.seconds();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

void maybe_write_csv(const Table& t, int argc, char** argv, int index) {
  if (argc > index) {
    t.write_csv_file(argv[index]);
    std::cout << "wrote " << argv[index] << "\n";
  }
}

Json Json::object() { return Json(Kind::kObject); }
Json Json::array() { return Json(Kind::kArray); }

Json Json::number(double v) {
  Json j(Kind::kNumber);
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j(Kind::kString);
  j.string_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j(Kind::kBool);
  j.bool_ = v;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  HTMPLL_REQUIRE(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  HTMPLL_REQUIRE(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  switch (kind_) {
    case Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", number_);
      out += buf;
      break;
    }
    case Kind::kString:
      append_quoted(out, string_);
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_quoted(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "}";
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += '\n';
      }
      out += close_pad + "]";
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  out += '\n';
  return out;
}

void Json::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open JSON output file: " + path);
  os << dump(indent);
}

}  // namespace htmpll::bench

// Companion to Fig. 7: closed-loop pole trajectories of the sampled
// loop versus w_UG/w0.
//
// Solves 1 + lambda(s) = 0 by Newton (seeded from the impulse-invariant
// z-characteristic), batched through the design-space sweep engine: all
// ratios evaluate concurrently and each model's Newton iterations
// advance in lockstep through its compiled eval plan.  The dominant
// complex pair marches toward the imaginary axis near Im(s) = w0/2 as
// the ratio grows -- the pole-domain picture behind the phase-margin
// collapse -- and crosses into the right half plane at the boundary
// (w_UG/w0 ~ 0.276), where the loop breaks into a half-reference-rate
// oscillation.
//
// Usage: pole_trajectory [output.csv]
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/core/pole_search.hpp"
#include "htmpll/design/design_sweep.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;

  std::cout << "=== Closed-loop poles of 1 + lambda(s) = 0 vs w_UG/w0 "
               "===\n";
  std::cout << "(s in units of w0; the symbolic lambda closed form is "
               "printed once below)\n\n";
  {
    const SamplingPllModel model(make_typical_loop(0.1 * w0, w0));
    const LambdaExpression lam(model.open_loop_gain(), w0);
    std::cout << "lambda(s) = " << lam.to_string() << "\n\n";
  }

  const std::vector<double> ratios = {0.05, 0.1, 0.15, 0.2,
                                      0.25, 0.27, 0.28, 0.3};
  // One design-space row at the typical loop's gamma = 4: every ratio's
  // pole hunt runs concurrently, batched through the eval plan.
  DesignSpec spec;
  spec.w0 = w0;
  spec.target_w_ug = 0.1 * w0;
  spec.target_pm_deg = typical_loop_lti_phase_margin_deg();
  const DesignSpaceMap map = design_space_map(spec, ratios, {4.0});

  Table t({"w_UG/w0", "Re(s)/w0", "Im(s)/w0", "zeta", "|1+lambda|"});
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    for (const ClosedLoopPole& p : map.at(i, 0).poles) {
      // Report the fundamental-strip poles with non-negative Im.
      if (p.s.imag() < -1e-9) continue;
      t.add_row(std::vector<double>{ratios[i], p.s.real() / w0,
                                    p.s.imag() / w0, p.damping,
                                    p.residual});
    }
  }
  t.print(std::cout);
  std::cout << "\nnote the dominant pair's Im(s) saturating at w0/2 = 0.5 "
               "and Re(s) crossing zero past the boundary: the loop fails "
               "by oscillating at half the reference rate.\n";

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

// Jitter-vs-bandwidth trade-off under the time-varying model and under
// classical LTI analysis.
//
// The textbook rule -- set the loop bandwidth where the reference and
// VCO phase-noise PSDs cross -- comes from LTI transfers.  The sampled
// loop adds passband peaking and harmonic folding that *raise* the true
// output jitter at wide bandwidths, so the LTI-chosen bandwidth can be
// materially worse than the time-varying optimum.
//
// Usage: jitter_bandwidth [output.csv]
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "htmpll/design/design.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi * 10e6;  // 10 MHz reference

  JitterOptimizationSpec spec;
  spec.w0 = w0;
  const double ref_white = 1e-24;
  spec.s_ref = PowerLawPsd{ref_white, 0.0, 0.0};
  // VCO random walk crossing the reference floor at 0.3 w0: a noisy
  // ring-oscillator-like source that rewards wide loops.
  spec.s_vco =
      PowerLawPsd{0.0, 0.0, ref_white * (0.3 * w0) * (0.3 * w0)};

  std::cout << "=== Output jitter vs loop bandwidth (10 MHz reference) "
               "===\n\n";
  Table t({"w_UG/w0", "rms (TV model)", "rms (LTI model)", "TV/LTI"});
  const std::vector<double> ratios = {0.01, 0.02, 0.05, 0.1, 0.15,
                                      0.2, 0.22, 0.24, 0.26};
  // Each bandwidth's jitter integral is independent -- evaluate the
  // whole trade-off curve concurrently.
  struct JitterPair {
    double tv;
    double lti;
  };
  const auto rms = parallel_map<JitterPair>(
      ratios.size(), [&](std::size_t i) {
        return JitterPair{output_jitter_tv(spec, ratios[i] * w0),
                          output_jitter_lti(spec, ratios[i] * w0)};
      });
  t.reserve(ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    t.add_row(std::vector<double>{ratios[i], rms[i].tv, rms[i].lti,
                                  rms[i].tv / rms[i].lti});
  }
  t.print(std::cout);

  const JitterOptimizationResult r = optimize_bandwidth_for_jitter(spec);
  std::cout << "\ntime-varying optimum: w_UG/w0 = " << r.w_ug_tv / w0
            << "  (rms " << r.rms_tv << ")\n";
  std::cout << "LTI-chosen bandwidth: w_UG/w0 = " << r.w_ug_lti / w0
            << "  (true rms there " << r.rms_at_lti_pick << ")\n";
  std::cout << "jitter penalty of trusting LTI analysis: "
            << 100.0 * (r.penalty - 1.0) << " %\n";

  // Behavioral cross-check: a batched Monte Carlo ensemble of transient
  // runs with held charge-pump noise at the TV-optimal bandwidth.  The
  // linear loop response makes the measured theta rms scale linearly in
  // sigma; per-run RNG streams come deterministically from
  // (base_seed, run index), so this block is reproducible bit-for-bit
  // for any thread count.
  {
    const PllParameters p_opt =
        make_typical_loop(r.w_ug_tv, w0);
    const double sigma = 1e-4 * p_opt.icp;
    NoiseEnsembleOptions mc;
    mc.settle_periods = 100.0;
    mc.measure_periods = 400.0;
    const std::size_t n_runs = 6;
    const auto runs1 = run_noise_ensemble(p_opt, sigma, 42, n_runs, mc);
    const auto runs2 =
        run_noise_ensemble(p_opt, 2.0 * sigma, 42, n_runs, mc);
    double rms1 = 0.0, rms2 = 0.0;
    for (std::size_t i = 0; i < n_runs; ++i) {
      rms1 += runs1[i].theta_rms;
      rms2 += runs2[i].theta_rms;
    }
    rms1 /= static_cast<double>(n_runs);
    rms2 /= static_cast<double>(n_runs);
    std::cout << "\nsimulator ensemble at the TV optimum (" << n_runs
              << " runs, held CP noise): mean theta rms " << rms1
              << " s; doubling sigma scales rms by " << rms2 / rms1
              << " (linear-loop check, expect ~2)\n";
  }

  bench::maybe_write_csv(t, argc, argv);
  return 0;
}

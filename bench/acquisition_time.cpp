// Lock-acquisition study on the behavioral simulator: reference periods
// until phase lock versus initial relative frequency offset and loop
// bandwidth.
//
// This exercises the *large-signal* sequential behavior of the tri-state
// PFD (frequency detection through cycle slips) that no small-signal
// model -- LTI, z-domain, or HTM -- captures; it is the regime the
// paper's small-signal analysis explicitly assumes already settled
// ("a stable PLL that has acquired phase-lock").  The trends are the
// textbook ones: pull-in time scales inversely with bandwidth and grows
// with offset.
//
// Usage: acquisition_time [output.csv]
#include <iostream>
#include <numbers>

#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/util/table.hpp"

namespace {

using namespace htmpll;

/// Periods until the charge-pump pulse widths collapse below tol, or -1.
double periods_to_lock(const PllParameters& params, double rel_offset,
                       double tol, double max_periods) {
  PllTransientSim sim(params);
  sim.set_recording(false);
  sim.set_initial_frequency_offset(rel_offset);
  const double chunk = 5.0;
  double elapsed = 0.0;
  while (elapsed < max_periods) {
    sim.run_periods(chunk);
    elapsed += chunk;
    if (sim.is_locked(tol * params.period())) return elapsed;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const double w0 = 2.0 * std::numbers::pi;

  std::cout << "=== Lock acquisition: periods to |pulse width| < 1e-6 T "
               "===\n\n";
  Table t({"w_UG/w0", "offset 0.5%", "offset 1%", "offset 2%",
           "offset 5%"});
  for (double ratio : {0.05, 0.1, 0.15, 0.2}) {
    const PllParameters p = make_typical_loop(ratio * w0, w0);
    std::vector<std::string> row{Table::fmt(ratio)};
    for (double offset : {0.005, 0.01, 0.02, 0.05}) {
      const double n = periods_to_lock(p, offset, 1e-6, 3000.0);
      row.push_back(n < 0.0 ? "-" : Table::fmt(n));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\n(the tri-state PFD's cycle-slip memory makes all of "
               "these converge; an XOR-style detector would not)\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

// Lock-acquisition study on the behavioral simulator: reference periods
// until phase lock versus initial relative frequency offset and loop
// bandwidth.
//
// This exercises the *large-signal* sequential behavior of the tri-state
// PFD (frequency detection through cycle slips) that no small-signal
// model -- LTI, z-domain, or HTM -- captures; it is the regime the
// paper's small-signal analysis explicitly assumes already settled
// ("a stable PLL that has acquired phase-lock").  The trends are the
// textbook ones: pull-in time scales inversely with bandwidth and grows
// with offset.
//
// The whole (bandwidth x offset) grid is one acquisition_periods batch
// over the shared thread pool -- every cell is an independent transient
// simulation, and the batch is bit-identical for any thread count.
//
// Usage: acquisition_time [output.csv]
#include <iostream>
#include <numbers>

#include "htmpll/timedomain/montecarlo.hpp"
#include "htmpll/util/table.hpp"

int main(int argc, char** argv) {
  using namespace htmpll;
  const double w0 = 2.0 * std::numbers::pi;
  const std::vector<double> ratios = {0.05, 0.1, 0.15, 0.2};
  const std::vector<double> offsets = {0.005, 0.01, 0.02, 0.05};

  std::cout << "=== Lock acquisition: periods to |pulse width| < 1e-6 T "
               "===\n\n";

  std::vector<AcquisitionCase> cases;
  cases.reserve(ratios.size() * offsets.size());
  for (double ratio : ratios) {
    const PllParameters p = make_typical_loop(ratio * w0, w0);
    for (double offset : offsets) cases.push_back({p, offset});
  }
  const std::vector<double> periods = acquisition_periods(cases);

  Table t({"w_UG/w0", "offset 0.5%", "offset 1%", "offset 2%",
           "offset 5%"});
  t.reserve(ratios.size());
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    std::vector<std::string> row{Table::fmt(ratios[r])};
    for (std::size_t o = 0; o < offsets.size(); ++o) {
      const double n = periods[r * offsets.size() + o];
      row.push_back(n < 0.0 ? "-" : Table::fmt(n));
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\n(the tri-state PFD's cycle-slip memory makes all of "
               "these converge; an XOR-style detector would not)\n";

  if (argc > 1) {
    t.write_csv_file(argv[1]);
    std::cout << "wrote " << argv[1] << "\n";
  }
  return 0;
}

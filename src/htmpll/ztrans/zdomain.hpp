// Discrete-time (z-domain) PLL baseline in the style of Hein & Scott
// (1988) and Gardner (1980), built by the impulse-invariant transform.
//
// The sampled phase error drives weight-(theta_ref - theta) impulses into
// the filter+VCO cascade A(s); the phase seen at the next sampling
// instants is governed by the discrete loop gain
//   G(z) = T * Z{ a(nT) },   a(t) = L^{-1}{A(s)},  T = 2 pi / w0.
// By Poisson summation this is *exactly* the paper's effective open-loop
// gain: lambda(s) = G(e^{sT}) (minus T a(0+)/2 when A has relative
// degree 1) -- the property test in tests/ checks the two modules against
// each other, tying the HTM model to the prior z-domain art.
//
// Where the z-domain model stops short (the paper's point): it only sees
// the loop at the sampling instants, so it cannot produce the
// continuous-time baseband transfer H_{0,0}(jw) of Fig. 6 or the
// inter-band transfers H_{n,m} -- those need the HTM description.
#pragma once

#include "htmpll/lti/partial_fractions.hpp"
#include "htmpll/lti/rational.hpp"

namespace htmpll {

class ImpulseInvariantModel {
 public:
  /// `a` is the continuous open-loop gain A(s) (strictly proper, pole
  /// multiplicities <= 4); `w0` the sampling (reference) rate in rad/s.
  ImpulseInvariantModel(RationalFunction a, double w0);

  double w0() const { return w0_; }
  double period() const;

  /// Raw textbook impulse-invariant gain G(z) = T Z{a(nT)} with full
  /// weight on the t = 0 sample.
  const RationalFunction& loop_gain_z() const { return gz_; }

  /// The *physically consistent* discrete loop gain
  /// G_eff(z) = G(z) - T a(0+)/2.  For relative degree >= 2 (any loop
  /// with a ripple capacitor) a(0+) = 0 and the two coincide.  For
  /// relative degree 1 the charge pulse fires exactly at the sampling
  /// instant and half-interacts with the sample being formed; the
  /// symmetric (half-weight) convention -- the same one Poisson
  /// summation assigns to lambda(s) -- is the one the behavioral
  /// simulator confirms (see tests/test_second_order.cpp).
  const RationalFunction& effective_loop_gain_z() const { return gz_eff_; }

  /// Raw G evaluated at a point of the z-plane.
  cplx loop_gain(cplx z) const { return gz_(z); }

  /// lambda-equivalent: G_eff(e^{sT}), matching sum_m A(s + j m w0)
  /// exactly.
  cplx lambda_equivalent(cplx s) const;

  /// Discrete closed loop G_eff/(1+G_eff).
  RationalFunction closed_loop_z() const;

  /// Closed-loop characteristic polynomial den(G_eff) + num(G_eff).
  Polynomial characteristic() const;

  /// All closed-loop z-plane poles.
  CVector closed_loop_poles() const;

  /// True when every closed-loop pole lies strictly inside the unit
  /// circle (margin: required distance from the circle).
  bool is_stable(double margin = 0.0) const;

 private:
  RationalFunction a_;
  double w0_;
  RationalFunction gz_;      ///< raw transform (full t=0 weight)
  RationalFunction gz_eff_;  ///< half-weight convention (matches lambda)
  cplx a0_;  ///< a(0+) = sum of simple-pole residues (0 for rel.deg >= 2)
};

}  // namespace htmpll

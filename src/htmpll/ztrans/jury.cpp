#include "htmpll/ztrans/jury.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

SchurCohnResult schur_cohn(const Polynomial& p, double tol) {
  HTMPLL_REQUIRE(!p.is_zero(), "stability test of the zero polynomial");
  SchurCohnResult out;
  out.stable = true;

  CVector c = p.coefficients();
  while (c.size() > 1) {
    const std::size_t n = c.size() - 1;  // current degree
    const cplx lead = c[n];
    if (std::abs(lead) == 0.0) {
      // Defensive: a vanished leading coefficient means the degree
      // already dropped; trim and continue.
      c.pop_back();
      continue;
    }
    const cplx k = c[0] / std::conj(lead);
    const double mk = std::abs(k);
    out.reflection_magnitudes.push_back(mk);
    if (mk >= 1.0 - tol) {
      out.stable = false;
      return out;
    }
    // q_j = c_{j+1} - k * conj(c_{n-1-j}), degree n-1.
    CVector q(n);
    for (std::size_t j = 0; j < n; ++j) {
      q[j] = c[j + 1] - k * std::conj(c[n - 1 - j]);
    }
    c = std::move(q);
  }
  return out;
}

bool jury_stable(const Polynomial& p, double tol) {
  return schur_cohn(p, tol).stable;
}

}  // namespace htmpll

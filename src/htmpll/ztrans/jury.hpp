// Schur-Cohn / Jury stability test for z-domain polynomials.
//
// Decides whether all roots lie strictly inside the unit circle without
// computing them, via the reflection-coefficient recursion
//   k = c_0 / c_n,   q_j = c_{j+1} - k c_{n-1-j},
// which preserves stability iff |k| < 1 at every stage.  Used to locate
// the stability boundary of the sampled loop as w_UG/w0 grows and to
// cross-check the root-based test in ImpulseInvariantModel.
#pragma once

#include <vector>

#include "htmpll/lti/polynomial.hpp"

namespace htmpll {

struct SchurCohnResult {
  bool stable;
  /// Reflection coefficient magnitudes, one per reduction stage; the
  /// largest is a rough distance-to-instability indicator (1 = boundary).
  std::vector<double> reflection_magnitudes;
};

/// Full recursion; works for complex-coefficient polynomials.
SchurCohnResult schur_cohn(const Polynomial& p, double tol = 1e-12);

/// Convenience wrapper.
bool jury_stable(const Polynomial& p, double tol = 1e-12);

}  // namespace htmpll

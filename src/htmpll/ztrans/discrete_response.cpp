#include "htmpll/ztrans/discrete_response.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

CVector impulse_response_z(const RationalFunction& h, std::size_t count) {
  HTMPLL_REQUIRE(h.is_proper(), "causal expansion requires proper H(z)");
  const Polynomial& num = h.num();
  const Polynomial& den = h.den();  // monic by construction
  const std::size_t m = den.degree();

  // In descending powers: H = (b_0 z^m + ... + b_m) / (z^m + a_1 z^{m-1}
  // + ... + a_m); the division recursion is
  //   h_k = b_k - sum_{j=1..min(k,m)} a_j h_{k-j},   b_k = 0 for k > m.
  auto b = [&](std::size_t k) -> cplx {
    if (k > m) return cplx{0.0};
    return num.coefficient(m - k);  // may be zero-padded high terms
  };
  auto a = [&](std::size_t j) -> cplx { return den.coefficient(m - j); };

  CVector out(count, cplx{0.0});
  for (std::size_t k = 0; k < count; ++k) {
    cplx acc = b(k);
    const std::size_t jmax = std::min(k, m);
    for (std::size_t j2 = 1; j2 <= jmax; ++j2) {
      acc -= a(j2) * out[k - j2];
    }
    out[k] = acc;
  }
  return out;
}

CVector step_response_z(const RationalFunction& h, std::size_t count) {
  CVector imp = impulse_response_z(h, count);
  cplx acc{0.0};
  for (cplx& v : imp) {
    acc += v;
    v = acc;
  }
  return imp;
}

StepMetrics step_metrics(const std::vector<double>& samples,
                         double final_value, double band) {
  HTMPLL_REQUIRE(!samples.empty(), "metrics need at least one sample");
  HTMPLL_REQUIRE(final_value != 0.0, "final value must be non-zero");
  HTMPLL_REQUIRE(band > 0.0, "settling band must be positive");

  StepMetrics m;
  m.overshoot = 0.0;
  m.peak_index = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double rel = samples[i] / final_value - 1.0;
    if (rel > m.overshoot) {
      m.overshoot = rel;
      m.peak_index = i;
    }
  }
  // Last sample outside the band determines settling.
  std::size_t last_outside = 0;
  bool any_outside = false;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (std::abs(samples[i] / final_value - 1.0) > band) {
      last_outside = i;
      any_outside = true;
    }
  }
  if (!any_outside) {
    m.settle_index = 0;
    m.settled = true;
  } else if (last_outside + 1 < samples.size()) {
    m.settle_index = last_outside + 1;
    m.settled = true;
  } else {
    m.settle_index = samples.size();
    m.settled = false;
  }
  return m;
}

}  // namespace htmpll

// Inverse z-transform by long division: sample-domain responses of the
// discrete-time loop.
//
// The impulse-invariant closed loop G_eff/(1+G_eff) describes the VCO
// phase *at the sampling instants*; expanding it in powers of z^{-1}
// yields the exact discrete impulse/step responses -- the time-domain
// face of the time-varying model.  tests/ cross-check the step response
// against the behavioral simulator recovering from a phase offset, and
// bench/transient_settling compares its overshoot/settling against the
// classical continuous-time prediction.
#pragma once

#include <cstddef>
#include <vector>

#include "htmpll/lti/rational.hpp"

namespace htmpll {

/// First `count` samples h_0..h_{count-1} of the impulse response of a
/// proper rational H(z) (causal expansion in z^{-1}).
CVector impulse_response_z(const RationalFunction& h, std::size_t count);

/// Running sum of the impulse response: response to the unit step.
CVector step_response_z(const RationalFunction& h, std::size_t count);

/// Classical step-response metrics of a real-valued sampled response
/// that settles to `final_value`.
struct StepMetrics {
  double overshoot;        ///< max(y) / final - 1 (0 if none)
  std::size_t peak_index;  ///< sample of the maximum
  std::size_t settle_index;  ///< first sample staying within the band
  bool settled;            ///< response entered and stayed in the band
};

/// Metrics with a +-band (fraction of final value, e.g. 0.02).
StepMetrics step_metrics(const std::vector<double>& samples,
                         double final_value, double band);

}  // namespace htmpll

#include "htmpll/ztrans/zdomain.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Numerator of the z-transform of the sampled sequence
/// a_n = r (nT)^(k-1) e^(p nT) / (k-1)!, over denominator (z-q)^k:
///   k=1: r z
///   k=2: r T q z
///   k=3: r T^2 q z (z+q) / 2
///   k=4: r T^3 q z (z^2+4qz+q^2) / 6
/// with q = e^{pT}.
Polynomial sampled_term_numerator(cplx r, cplx q, double t, int k) {
  const Polynomial z = Polynomial::s();
  switch (k) {
    case 1:
      return r * z;
    case 2:
      return (r * t * q) * z;
    case 3:
      return (r * t * t * q / 2.0) * z * Polynomial(CVector{q, cplx{1.0}});
    case 4:
      return (r * t * t * t * q / 6.0) * z *
             Polynomial(CVector{q * q, 4.0 * q, cplx{1.0}});
    default:
      HTMPLL_REQUIRE(false,
                     "impulse-invariant transform supports multiplicity <= 4");
  }
  return {};
}

}  // namespace

ImpulseInvariantModel::ImpulseInvariantModel(RationalFunction a, double w0)
    : a_(std::move(a)), w0_(w0) {
  HTMPLL_REQUIRE(w0_ > 0.0, "sampling rate must be positive");
  HTMPLL_REQUIRE(a_.is_strictly_proper(),
                 "impulse invariance requires strictly proper A(s)");
  const double t = period();
  const PartialFractions pf(a_);

  // Assemble G(z) = T * Z{a(nT)} over the exact common denominator
  // D(z) = prod_i (z - q_i)^{m_i}.  Summing RationalFunctions naively
  // would square up the denominator and leave uncancelled common
  // factors (e.g. (z-1) from the double integrator), corrupting the
  // closed-loop characteristic polynomial near the unit circle.
  a0_ = cplx{0.0};
  struct ClusterZ {
    cplx q;
    Polynomial numerator;  // over (z - q)^m
    int multiplicity;
  };
  std::vector<ClusterZ> clusters;
  for (const PoleTerm& term : pf.terms()) {
    const cplx q = std::exp(term.pole * t);
    const int m = static_cast<int>(term.residues.size());
    const Polynomial zmq(CVector{-q, cplx{1.0}});
    Polynomial num;  // sum_k N_k(z) (z-q)^(m-k)
    for (int k = 1; k <= m; ++k) {
      Polynomial part = sampled_term_numerator(
          term.residues[static_cast<std::size_t>(k - 1)], q, t, k);
      for (int extra = 0; extra < m - k; ++extra) part *= zmq;
      num += part;
    }
    clusters.push_back({q, num, m});
    a0_ += term.residues[0];  // t^0 terms contribute a(0+)
  }

  Polynomial den = Polynomial::constant(1.0);
  for (const ClusterZ& c : clusters) {
    const Polynomial zmq(CVector{-c.q, cplx{1.0}});
    for (int i = 0; i < c.multiplicity; ++i) den *= zmq;
  }
  Polynomial num;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    Polynomial complement = clusters[i].numerator;
    for (std::size_t l = 0; l < clusters.size(); ++l) {
      if (l == i) continue;
      const Polynomial zmq(CVector{-clusters[l].q, cplx{1.0}});
      for (int rep = 0; rep < clusters[l].multiplicity; ++rep) {
        complement *= zmq;
      }
    }
    num += complement;
  }
  gz_ = RationalFunction(cplx{t} * num, den);
  gz_eff_ = gz_ - RationalFunction::constant(0.5 * t * a0_);
}

double ImpulseInvariantModel::period() const {
  return 2.0 * std::numbers::pi / w0_;
}

cplx ImpulseInvariantModel::lambda_equivalent(cplx s) const {
  // Poisson summation assigns weight 1/2 to the t = 0 sample.
  return gz_eff_(std::exp(s * period()));
}

RationalFunction ImpulseInvariantModel::closed_loop_z() const {
  return gz_eff_.closed_loop_unity_feedback();
}

Polynomial ImpulseInvariantModel::characteristic() const {
  return gz_eff_.den() + gz_eff_.num();
}

CVector ImpulseInvariantModel::closed_loop_poles() const {
  return find_roots(characteristic());
}

bool ImpulseInvariantModel::is_stable(double margin) const {
  for (const cplx& p : closed_loop_poles()) {
    if (std::abs(p) >= 1.0 - margin) return false;
  }
  return true;
}

}  // namespace htmpll

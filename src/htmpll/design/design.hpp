// Loop design helpers: classical LTI synthesis and a time-varying-aware
// redesign loop driven by the effective open-loop gain lambda(s).
//
// The classical recipe places the filter zero/pole symmetrically around
// the target crossover (gamma from the target phase margin) and scales
// the charge-pump current for |A(j w_UG)| = 1.  The aware variant then
// *checks the margin the sampled loop actually has* (Fig. 7) and backs
// the bandwidth off until the effective margin meets the spec -- the
// design decision the paper argues LTI analysis gets wrong.
#pragma once

#include <vector>

#include "htmpll/core/stability.hpp"
#include "htmpll/noise/noise.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {

struct DesignSpec {
  double w0;                 ///< reference rate, rad/s
  double target_w_ug;        ///< desired open-loop crossover, rad/s
  double target_pm_deg;      ///< desired phase margin, degrees
  double kvco = 1.0;
  double ctot = 1e-9;        ///< loop-filter capacitance budget, farads
  /// Engineering acceptance tolerance on the measured phase margin: a
  /// design "meets spec" when PM >= target - slack.  The classical
  /// synthesis hits the LTI target exactly, so the sampled loop is
  /// always some fraction of a degree short; slack absorbs that.
  double pm_slack_deg = 1.0;
};

struct DesignResult {
  PllParameters params;
  double gamma = 0.0;            ///< zero/pole split actually used
  EffectiveMargins margins;      ///< measured LTI + effective margins
  bool z_domain_stable = false;  ///< impulse-invariant pole check
  bool meets_spec_lti = false;
  bool meets_spec_effective = false;
};

/// gamma such that atan(gamma) - atan(1/gamma) equals the requested
/// phase margin.  Requires 0 < pm < 90 deg.
double gamma_for_phase_margin(double pm_deg);

/// Classical component synthesis at an explicit (w_ug, gamma) point
/// under the spec's kvco / ctot budget -- the loop every design_* entry
/// point (and the design-space sweeps) measures.
PllParameters synthesize_loop(const DesignSpec& spec, double w_ug,
                              double gamma);

/// Synthesis plus measurement at one (w_ug, gamma) point: effective
/// margins of the sampled model, z-domain stability, spec verdicts.
DesignResult evaluate_design(const DesignSpec& spec, double w_ug,
                             double gamma);

/// Pure LTI synthesis at the requested crossover.
DesignResult design_classical(const DesignSpec& spec);

struct AwareDesignOptions {
  double pm_tolerance_deg = 0.25;  ///< bisection stop on the PM gap
  int max_iterations = 60;
};

/// Classical synthesis followed by bandwidth backoff until the
/// *effective* phase margin (of lambda) meets the spec.  Returns the
/// final design; `margins` records what it achieves.
DesignResult design_time_varying_aware(const DesignSpec& spec,
                                       const AwareDesignOptions& opts = {});

/// Design-space sweep: for each w_ug/w0 ratio, the classical design and
/// its effective margins (the data behind Fig. 7 seen as a design chart).
std::vector<DesignResult> sweep_crossover_ratios(
    const DesignSpec& base, const std::vector<double>& ratios);

// ---- jitter-optimal bandwidth selection -------------------------------

struct JitterOptimizationSpec {
  double w0;                 ///< reference rate, rad/s
  PsdFunction s_ref;         ///< reference phase PSD
  PsdFunction s_vco;         ///< VCO phase PSD
  double gamma = 4.0;        ///< zero/pole split of the loop family
  double w_lo_frac = 1e-3;   ///< integration band, fractions of w0
  double w_hi_frac = 0.49;
  double ratio_min = 0.002;  ///< bandwidth search range, fractions of w0
  double ratio_max = 0.26;   ///< keep inside the sampled stability range
  int fold_harmonics = 12;   ///< sideband folding depth (TV model)
  std::size_t quadrature_points = 300;
};

struct JitterOptimizationResult {
  double w_ug_tv = 0.0;        ///< optimum per the time-varying model
  double rms_tv = 0.0;         ///< output phase rms there (TV model)
  double w_ug_lti = 0.0;       ///< optimum the classical LTI model picks
  double rms_at_lti_pick = 0.0;  ///< TRUE (TV) rms at the LTI choice
  double penalty = 0.0;        ///< rms_at_lti_pick / rms_tv (>= 1)
};

/// The classic PLL bandwidth trade-off -- wide enough to clean the VCO,
/// narrow enough to not copy reference noise nor peak -- solved twice:
/// once with the classical LTI transfers and once with the time-varying
/// (folded, peaked) transfers.  The penalty quantifies what an LTI-based
/// bandwidth choice costs in real output jitter.
JitterOptimizationResult optimize_bandwidth_for_jitter(
    const JitterOptimizationSpec& spec);

/// Output phase rms of the loop at a specific crossover, per model.
double output_jitter_tv(const JitterOptimizationSpec& spec, double w_ug);
double output_jitter_lti(const JitterOptimizationSpec& spec, double w_ug);

}  // namespace htmpll

// Design-space sweeps: batched stability analytics over a (w_ug, gamma)
// grid of loop designs.
//
// The paper's design-facing results are all sweeps of the same scalar
// quantities -- effective margins (Fig. 7), closed-loop pole
// trajectories (the RHP crossing near w_UG/w0 ~ 0.276), the half-rate
// criterion lambda(j w0/2) = -1 (Gardner-style stability charts).
// design_space_map evaluates a full grid of specs at once: the grid
// points fan out over the shared thread pool and each model's analytics
// run through its compiled eval plan (batched crossover search, masked
// lockstep Newton pole polish), so the whole map costs a handful of
// SoA kernel passes per design instead of thousands of scalar
// lambda(s) calls.
#pragma once

#include <cstddef>
#include <vector>

#include "htmpll/core/pole_search.hpp"
#include "htmpll/design/design.hpp"

namespace htmpll {

/// One (w_ug, gamma) grid point with its measured analytics.
struct DesignPoint {
  double ratio = 0.0;  ///< w_ug / w0
  double gamma = 0.0;
  DesignResult design;  ///< synthesized loop + margins + spec verdicts
  double half_rate_lambda = 0.0;  ///< lambda(j w0/2), real for real loops
  bool half_rate_stable = true;   ///< lambda(j w0/2) > -1
  /// Closed-loop poles in the fundamental strip (empty when the sweep
  /// options exclude them), sorted by ascending |s|.
  std::vector<ClosedLoopPole> poles;
};

struct DesignSweepOptions {
  bool include_poles = true;
  PoleSearchOptions pole_search;
  /// Route each point's model through a compiled EvalPlan (batched
  /// crossover + Newton).  False forces every scalar reference path.
  bool use_eval_plan = true;
};

/// Row-major map over the sweep grid: points[g * ratios.size() + r].
struct DesignSpaceMap {
  std::vector<double> ratios;
  std::vector<double> gammas;
  std::vector<DesignPoint> points;

  const DesignPoint& at(std::size_t ratio_idx,
                        std::size_t gamma_idx) const {
    return points[gamma_idx * ratios.size() + ratio_idx];
  }
};

/// Evaluates every (ratio * w0, gamma) design of the grid: synthesis
/// under the base spec's budget, effective margins, z-domain verdict,
/// half-rate lambda, and (optionally) the closed-loop poles.  Points
/// run concurrently on the shared pool; within a point the analytics
/// are batched through the model's eval plan.
DesignSpaceMap design_space_map(const DesignSpec& base,
                                const std::vector<double>& ratios,
                                const std::vector<double>& gammas,
                                const DesignSweepOptions& opts = {});

/// Maximum stable w_UG/w0 for one loop family at one gamma, per the
/// half-rate criterion lambda(j w0/2) = -1 and per the z-domain
/// closed-loop poles (the two agree to bisection accuracy -- same
/// object via Poisson summation).  `make` is a loop builder with the
/// make_typical_loop / make_second_order_loop signature.
struct StabilityBoundary {
  double lambda_ratio = 0.0;   ///< half-rate criterion boundary
  double zdomain_ratio = 0.0;  ///< z-domain pole-radius boundary
};

using LoopBuilder = PllParameters (*)(double w_ug, double w0, double gamma);

StabilityBoundary max_stable_crossover_ratio(LoopBuilder make, double w0,
                                             double gamma,
                                             double ratio_lo = 0.02,
                                             double ratio_hi = 0.9,
                                             int iterations = 45);

/// Gardner-chart row: boundaries of the classic second-order loop and
/// the paper's third-order loop at one gamma.
struct GardnerRow {
  double gamma = 0.0;
  StabilityBoundary second_order;
  StabilityBoundary third_order;
};

/// One row per gamma, computed concurrently on the shared pool.
std::vector<GardnerRow> gardner_stability_rows(
    double w0, const std::vector<double>& gammas);

}  // namespace htmpll

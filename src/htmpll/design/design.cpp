#include "htmpll/design/design.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

double gamma_for_phase_margin(double pm_deg) {
  HTMPLL_REQUIRE(pm_deg > 0.0 && pm_deg < 90.0,
                 "phase margin must lie in (0, 90) degrees for this "
                 "zero/pole topology");
  // atan(g) - atan(1/g) = 2 atan(g) - pi/2 = pm
  const double pm = pm_deg * std::numbers::pi / 180.0;
  return std::tan(0.5 * (pm + 0.5 * std::numbers::pi));
}

PllParameters synthesize_loop(const DesignSpec& spec, double w_ug,
                              double gamma) {
  PllParameters p = make_typical_loop(w_ug, spec.w0, gamma);
  // Rescale to the requested physical component budget; A(s) only
  // depends on Icp*Kvco/Ctot, so scale Icp to compensate.
  const double cap_scale = spec.ctot / p.filter.total_cap();
  p.filter.c1 *= cap_scale;
  p.filter.c2 *= cap_scale;
  p.filter.r /= cap_scale;
  p.icp *= cap_scale;
  // Move the VCO gain to the requested value, compensating with Icp.
  p.icp *= p.kvco / spec.kvco;
  p.kvco = spec.kvco;
  return p;
}

DesignResult evaluate_design(const DesignSpec& spec, double w_ug,
                             double gamma) {
  DesignResult out;
  out.gamma = gamma;
  out.params = synthesize_loop(spec, w_ug, gamma);
  const SamplingPllModel model(out.params);
  out.margins = effective_margins(model);
  const ImpulseInvariantModel zmodel(model.open_loop_gain(), spec.w0);
  out.z_domain_stable = zmodel.is_stable();
  out.meets_spec_lti =
      out.margins.lti_found &&
      out.margins.lti_phase_margin_deg >=
          spec.target_pm_deg - spec.pm_slack_deg;
  out.meets_spec_effective =
      out.margins.eff_found &&
      out.margins.eff_phase_margin_deg >=
          spec.target_pm_deg - spec.pm_slack_deg;
  return out;
}

namespace {

DesignResult evaluate(const DesignSpec& spec, double w_ug, double gamma) {
  return evaluate_design(spec, w_ug, gamma);
}

}  // namespace

DesignResult design_classical(const DesignSpec& spec) {
  HTMPLL_REQUIRE(spec.w0 > 0.0 && spec.target_w_ug > 0.0,
                 "design frequencies must be positive");
  HTMPLL_REQUIRE(spec.target_w_ug < 0.5 * spec.w0,
                 "crossover beyond w0/2 cannot be sampled-stable");
  const double gamma = gamma_for_phase_margin(spec.target_pm_deg);
  return evaluate(spec, spec.target_w_ug, gamma);
}

DesignResult design_time_varying_aware(const DesignSpec& spec,
                                       const AwareDesignOptions& opts) {
  const double gamma = gamma_for_phase_margin(spec.target_pm_deg);
  DesignResult at_target = evaluate(spec, spec.target_w_ug, gamma);
  if (at_target.meets_spec_effective) return at_target;

  // The effective PM decreases monotonically with bandwidth over the
  // usable range; bisect w_ug downward until the spec holds.
  double lo = spec.target_w_ug * 1e-3;
  double hi = spec.target_w_ug;
  DesignResult best = evaluate(spec, lo, gamma);
  HTMPLL_REQUIRE(best.meets_spec_effective,
                 "spec unreachable even at 1000x reduced bandwidth");
  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = std::sqrt(lo * hi);
    DesignResult r = evaluate(spec, mid, gamma);
    if (r.meets_spec_effective) {
      best = r;
      lo = mid;
      if (r.margins.eff_phase_margin_deg - spec.target_pm_deg <=
          opts.pm_tolerance_deg) {
        break;
      }
    } else {
      hi = mid;
    }
  }
  return best;
}

double output_jitter_tv(const JitterOptimizationSpec& spec, double w_ug) {
  const SamplingPllModel model(
      make_typical_loop(w_ug, spec.w0, spec.gamma));
  const NoiseAnalysis na(model, spec.fold_harmonics);
  return na.integrated_rms(
      [&](double w) {
        return na.output_psd_from_reference(w, spec.s_ref) +
               na.output_psd_from_vco(w, spec.s_vco);
      },
      spec.w_lo_frac * spec.w0, spec.w_hi_frac * spec.w0,
      spec.quadrature_points);
}

double output_jitter_lti(const JitterOptimizationSpec& spec, double w_ug) {
  const PllParameters p = make_typical_loop(w_ug, spec.w0, spec.gamma);
  const RationalFunction a = p.open_loop_gain();
  // Classical transfers: |A/(1+A)|^2 S_ref + |1/(1+A)|^2 S_vco, no
  // folding, no sampling effects.
  const auto psd = [&](double w) {
    const cplx av = a(cplx{0.0, w});
    const cplx h = av / (1.0 + av);
    return std::norm(h) * spec.s_ref(w) +
           std::norm(1.0 - h) * spec.s_vco(w);
  };
  // Same quadrature as the TV path (reuse NoiseAnalysis's integrator).
  const SamplingPllModel model(p);
  const NoiseAnalysis na(model, 1);
  return na.integrated_rms(psd, spec.w_lo_frac * spec.w0,
                           spec.w_hi_frac * spec.w0,
                           spec.quadrature_points);
}

namespace {

/// Golden-section minimization on log(w_ug).
template <typename F>
double golden_min(F f, double lo, double hi, int iterations = 60) {
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
  double a = std::log(lo), b = std::log(hi);
  double x1 = b - phi * (b - a), x2 = a + phi * (b - a);
  double f1 = f(std::exp(x1)), f2 = f(std::exp(x2));
  for (int it = 0; it < iterations; ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(std::exp(x1));
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(std::exp(x2));
    }
  }
  return std::exp(0.5 * (a + b));
}

}  // namespace

JitterOptimizationResult optimize_bandwidth_for_jitter(
    const JitterOptimizationSpec& spec) {
  HTMPLL_REQUIRE(spec.w0 > 0.0, "reference rate must be positive");
  HTMPLL_REQUIRE(spec.ratio_min > 0.0 && spec.ratio_max > spec.ratio_min,
                 "bandwidth search range is empty");
  HTMPLL_REQUIRE(static_cast<bool>(spec.s_ref) &&
                     static_cast<bool>(spec.s_vco),
                 "noise PSDs must be provided");

  JitterOptimizationResult out;
  out.w_ug_tv = golden_min(
      [&](double w) { return output_jitter_tv(spec, w); },
      spec.ratio_min * spec.w0, spec.ratio_max * spec.w0);
  out.rms_tv = output_jitter_tv(spec, out.w_ug_tv);

  out.w_ug_lti = golden_min(
      [&](double w) { return output_jitter_lti(spec, w); },
      spec.ratio_min * spec.w0, spec.ratio_max * spec.w0);
  out.rms_at_lti_pick = output_jitter_tv(spec, out.w_ug_lti);
  out.penalty = out.rms_at_lti_pick / out.rms_tv;
  return out;
}

std::vector<DesignResult> sweep_crossover_ratios(
    const DesignSpec& base, const std::vector<double>& ratios) {
  std::vector<DesignResult> out;
  out.reserve(ratios.size());
  const double gamma = gamma_for_phase_margin(base.target_pm_deg);
  for (double r : ratios) {
    out.push_back(evaluate(base, r * base.w0, gamma));
  }
  return out;
}

}  // namespace htmpll

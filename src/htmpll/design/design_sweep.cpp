#include "htmpll/design/design_sweep.hpp"

#include "htmpll/core/stability.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/sweep.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {

namespace {

DesignPoint evaluate_point(const DesignSpec& base, double ratio,
                           double gamma, const DesignSweepOptions& opts) {
  DesignPoint pt;
  pt.ratio = ratio;
  pt.gamma = gamma;
  pt.design.gamma = gamma;
  pt.design.params = synthesize_loop(base, ratio * base.w0, gamma);

  SamplingPllOptions mopts;
  mopts.use_eval_plan = opts.use_eval_plan;
  const SamplingPllModel model(pt.design.params,
                               HarmonicCoefficients(cplx{1.0}), mopts);
  pt.design.margins = effective_margins(model);
  const ImpulseInvariantModel zmodel(model.open_loop_gain(), base.w0);
  pt.design.z_domain_stable = zmodel.is_stable();
  pt.design.meets_spec_lti =
      pt.design.margins.lti_found &&
      pt.design.margins.lti_phase_margin_deg >=
          base.target_pm_deg - base.pm_slack_deg;
  pt.design.meets_spec_effective =
      pt.design.margins.eff_found &&
      pt.design.margins.eff_phase_margin_deg >=
          base.target_pm_deg - base.pm_slack_deg;

  pt.half_rate_lambda = half_rate_lambda(model);
  pt.half_rate_stable = pt.half_rate_lambda > -1.0;

  if (opts.include_poles) {
    PoleSearchOptions ps = opts.pole_search;
    ps.use_eval_plan = ps.use_eval_plan && opts.use_eval_plan;
    pt.poles = closed_loop_poles(model, ps);
  }
  return pt;
}

}  // namespace

DesignSpaceMap design_space_map(const DesignSpec& base,
                                const std::vector<double>& ratios,
                                const std::vector<double>& gammas,
                                const DesignSweepOptions& opts) {
  HTMPLL_REQUIRE(!ratios.empty() && !gammas.empty(),
                 "design_space_map needs a non-empty grid");
  for (double r : ratios) {
    HTMPLL_REQUIRE(r > 0.0 && r < 0.5,
                   "crossover ratios must lie in (0, 0.5): beyond w0/2 "
                   "the loop cannot be sampled-stable");
  }
  HTMPLL_TRACE_SPAN("design.space_map");

  DesignSpaceMap map;
  map.ratios = ratios;
  map.gammas = gammas;
  const std::size_t n = ratios.size() * gammas.size();
  // Grid points fan out over the pool; each point's own grid calls run
  // inline on its worker (nested pool calls never deadlock).
  map.points = parallel_map<DesignPoint>(n, [&](std::size_t i) {
    const std::size_t r = i % ratios.size();
    const std::size_t g = i / ratios.size();
    return evaluate_point(base, ratios[r], gammas[g], opts);
  });
  return map;
}

StabilityBoundary max_stable_crossover_ratio(LoopBuilder make, double w0,
                                             double gamma, double ratio_lo,
                                             double ratio_hi,
                                             int iterations) {
  HTMPLL_REQUIRE(make != nullptr, "loop builder must be provided");
  HTMPLL_REQUIRE(ratio_lo > 0.0 && ratio_hi > ratio_lo,
                 "boundary search range is empty");
  StabilityBoundary out;
  {
    double lo = ratio_lo, hi = ratio_hi;
    for (int it = 0; it < iterations; ++it) {
      const double mid = 0.5 * (lo + hi);
      const SamplingPllModel m(make(mid * w0, w0, gamma));
      (half_rate_lambda(m) > -1.0 ? lo : hi) = mid;
    }
    out.lambda_ratio = 0.5 * (lo + hi);
  }
  {
    double lo = ratio_lo, hi = ratio_hi;
    for (int it = 0; it < iterations; ++it) {
      const double mid = 0.5 * (lo + hi);
      const ImpulseInvariantModel zm(make(mid * w0, w0, gamma).open_loop_gain(),
                                     w0);
      (zm.is_stable() ? lo : hi) = mid;
    }
    out.zdomain_ratio = 0.5 * (lo + hi);
  }
  return out;
}

std::vector<GardnerRow> gardner_stability_rows(
    double w0, const std::vector<double>& gammas) {
  HTMPLL_TRACE_SPAN("design.gardner_rows");
  return parallel_map<GardnerRow>(gammas.size(), [&](std::size_t i) {
    GardnerRow row;
    row.gamma = gammas[i];
    row.second_order =
        max_stable_crossover_ratio(make_second_order_loop, w0, gammas[i]);
    row.third_order =
        max_stable_crossover_ratio(make_typical_loop, w0, gammas[i]);
    return row;
  });
}

}  // namespace htmpll

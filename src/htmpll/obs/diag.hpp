// Diagnostic event log: reason-coded records of WHY a fast path
// degraded, plus process-wide numerical-health gauges.
//
// The engine's layered fast paths (spectral propagators over Pade, SIMD
// kernels over scalar, compiled eval plans over pointwise grids) all
// fall back silently to their slow/exact twin on defective matrices,
// out-of-range lanes or near-pole cancellation.  The counters in
// metrics.hpp say *that* work happened; this module records *why* the
// degradations happened, with the measured quantity that triggered them
// (kappa(V) of a rejected eigenbasis, |exp(pT)| of an overflowed plan
// term, the number of lanes that failed a SIMD guard).
//
// Hot-path contract (same as the metrics registry):
//  * disabled (default): diag_event() / diag_gauge_max() are one
//    relaxed load of obs::enabled() plus an untaken branch.  Every
//    instrumented site already sits on a rare fallback branch, so the
//    production cost is zero-ish twice over.
//  * enabled: one relaxed fetch_add on an enum-indexed tally array and
//    one store into the calling thread's bounded event ring.  No
//    strings, no allocation, no locks on the hot path; ring
//    registration (once per thread) takes a mutex.
//
// The rings are bounded: when a thread records more than the ring
// capacity the oldest events are overwritten and counted as dropped --
// the tallies stay exact, only the per-event payloads age out.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "htmpll/obs/metrics.hpp"

namespace htmpll::obs {

/// Why a degradation happened.  Values are stable JSON identifiers via
/// diag_reason_name(); add new reasons at the end (before kCount).
enum class DiagReason : std::uint8_t {
  kPadeFallbackDefective = 0,   ///< eigenbasis numerically defective
  kPadeFallbackNotConverged,    ///< Francis QR hit its sweep limit
  kPadeFallbackIllConditioned,  ///< kappa(V) above max_condition
  kSimdBailoutOutOfRange,       ///< cexp lane outside the poly range
  kSimdBailoutNonFinite,        ///< cexp lane carried NaN/Inf input
  kSimdBailoutGuardTrip,        ///< pole-sum / rational-div guard lane
  kPlanCancellationRecompute,   ///< eval-plan near-pole recompute
  kPlanExpOverflowFallback,     ///< exp(pT) left the normal range
  kPlanScalarFallback,          ///< plan unusable (multiplicity > 4)
  kPropagatorCacheEviction,     ///< step-propagator slot replaced
  kHtmTruncationSaturated,      ///< adaptive aliasing sum hit max_pairs
  kPoleSearchDegenerateStep,    ///< Newton lane dropped: df zero/non-finite
  kPoleSearchDiverged,          ///< Newton lane dropped: step left R^2
  kPropagatorCacheChurn,        ///< cache turned over a full capacity
  kEnsembleLaneDivergence,      ///< lockstep round split off scalar lanes
  kCount,
};

inline constexpr std::size_t kDiagReasonCount =
    static_cast<std::size_t>(DiagReason::kCount);

/// Stable dotted identifier ("pade_fallback.defective", ...) used as
/// the JSON key of the reason's tally in health reports.
const char* diag_reason_name(DiagReason reason);

/// Inverse of diag_reason_name().  Returns false (and leaves `out`
/// untouched) for unknown names.
bool diag_reason_from_name(std::string_view name, DiagReason& out);

/// Monotonic-max numerical-health gauges.
enum class HealthGauge : std::uint8_t {
  kMaxEigenbasisCondition = 0,  ///< worst accepted kappa_inf(V)
  kMaxEigenpairResidual,        ///< worst ||A v - lambda v|| / ||A||
  kMaxPlanSpotCheckError,       ///< worst plan-vs-scalar relative error
  kCount,
};

inline constexpr std::size_t kHealthGaugeCount =
    static_cast<std::size_t>(HealthGauge::kCount);

/// Stable JSON identifier ("max_eigenbasis_condition", ...).
const char* health_gauge_name(HealthGauge gauge);

/// Records one diagnostic event: bumps the reason's tally and appends
/// {reason, payload} to the calling thread's ring.  No-op (one relaxed
/// load) while obs is disabled.
void diag_event(DiagReason reason, double payload = 0.0);

/// Raises a health gauge to max(current, value).  NaN is ignored.
/// No-op while obs is disabled.
void diag_gauge_max(HealthGauge gauge, double value);

/// One event copied out of a ring at snapshot time.
struct DiagEvent {
  DiagReason reason = DiagReason::kCount;
  double payload = 0.0;
  int tid = 0;  ///< small per-thread id assigned at first event
};

/// Point-in-time copy of the diagnostic state.
struct DiagSnapshot {
  std::array<std::uint64_t, kDiagReasonCount> tally{};
  std::array<double, kHealthGaugeCount> gauge{};
  /// Retained per-thread ring contents (bounded; oldest dropped first).
  std::vector<DiagEvent> events;
  /// Events lost to ring wrap-around since the last diag_reset().
  std::uint64_t dropped = 0;

  std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t t : tally) n += t;
    return n;
  }
};

/// Consistent-per-field copy of tallies, gauges and ring contents.
/// Safe to call while other threads emit; exact at quiescence.
DiagSnapshot diag_snapshot();

/// Events lost to ring wrap-around since the last diag_reset().
std::uint64_t diag_dropped();

/// Zeroes the tallies and gauges and drops all retained events.
/// obs::reset_counters() calls this too; only safe at quiescence.
void diag_reset();

}  // namespace htmpll::obs

#include "htmpll/obs/span_stats.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace htmpll::obs {

namespace {

std::uint64_t nearest_rank(const std::vector<std::uint64_t>& sorted,
                           double q) {
  if (sorted.empty()) return 0;
  const double n = static_cast<double>(sorted.size());
  std::size_t idx =
      static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

std::vector<SpanAggregate> aggregate_spans(
    std::vector<TraceEventView> events) {
  // Parents before children: begin ascending, ties by end descending
  // (the collect_trace() order, re-established for synthetic input).
  std::sort(events.begin(), events.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.end_ns > b.end_ns;
            });

  // Self time: per-thread nesting stack over the begin-ordered events.
  // Each event starts owning its whole duration; a directly nested
  // child gives its duration back to its parent exactly once.
  std::vector<std::uint64_t> self(events.size());
  std::map<int, std::vector<std::size_t>> stacks;  // tid -> open spans
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEventView& e = events[i];
    const std::uint64_t dur =
        e.end_ns >= e.begin_ns ? e.end_ns - e.begin_ns : 0;
    self[i] = dur;
    std::vector<std::size_t>& stack = stacks[e.tid];
    while (!stack.empty() && events[stack.back()].end_ns <= e.begin_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      // Saturate: a partially overlapping (non-nested) span must not
      // drive the parent's self time negative.
      std::uint64_t& parent_self = self[stack.back()];
      parent_self = parent_self > dur ? parent_self - dur : 0;
    }
    stack.push_back(i);
  }

  struct Working {
    SpanAggregate agg;
    std::vector<std::uint64_t> durations;
  };
  std::map<std::string, Working> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEventView& e = events[i];
    if (e.name == nullptr) continue;
    const std::uint64_t dur =
        e.end_ns >= e.begin_ns ? e.end_ns - e.begin_ns : 0;
    Working& w = by_name[e.name];
    if (w.agg.count == 0) w.agg.name = e.name;
    ++w.agg.count;
    w.agg.total_ns += dur;
    w.agg.self_ns += self[i];
    w.durations.push_back(dur);
  }

  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, w] : by_name) {
    std::sort(w.durations.begin(), w.durations.end());
    w.agg.min_ns = w.durations.front();
    w.agg.max_ns = w.durations.back();
    w.agg.p50_ns = nearest_rank(w.durations, 0.50);
    w.agg.p95_ns = nearest_rank(w.durations, 0.95);
    out.push_back(std::move(w.agg));
  }
  return out;
}

std::vector<SpanAggregate> aggregate_spans() {
  return aggregate_spans(collect_trace());
}

}  // namespace htmpll::obs

#include "htmpll/obs/report.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

#include "htmpll/util/check.hpp"

namespace htmpll::obs {

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string git_describe() {
#ifdef HTMPLL_GIT_DESCRIBE
  return HTMPLL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

RunReport::RunReport(std::string run_name)
    : run_name_(std::move(run_name)) {}

void RunReport::set_config(const std::string& key, double value) {
  for (auto& [k, v] : config_numbers_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_numbers_.emplace_back(key, value);
}

void RunReport::set_config(const std::string& key,
                           const std::string& value) {
  for (auto& [k, v] : config_strings_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_strings_.emplace_back(key, value);
}

void RunReport::add_phase(const std::string& phase, double seconds) {
  phases_.emplace_back(phase, seconds);
}

void RunReport::capture() {
  metrics_ = snapshot();
  spans_ = span_summary();
  trace_dropped_ = trace_dropped();
  captured_ = true;
}

std::string RunReport::to_json() const {
  std::string out;
  out += "{\n  \"run\": ";
  append_quoted(out, run_name_);
  out += ",\n  \"git\": ";
  append_quoted(out, git_describe());
  char stamp[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  out += ",\n  \"timestamp\": ";
  append_quoted(out, stamp);
  out += ",\n  \"hardware_threads\": ";
  append_u64(out, std::thread::hardware_concurrency());
  out += ",\n  \"obs_enabled\": ";
  out += enabled() ? "true" : "false";

  out += ",\n  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config_strings_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_quoted(out, v);
  }
  for (const auto& [k, v] : config_numbers_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"phases_s\": {";
  first = true;
  for (const auto& [k, v] : phases_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"metrics\": {";
  first = true;
  for (const MetricSample& s : metrics_.samples) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, s.name);
    out += ": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        append_u64(out, s.count);
        break;
      case MetricKind::kGauge:
        append_number(out, s.value);
        break;
      case MetricKind::kHistogram: {
        out += "{\"count\": ";
        append_u64(out, s.count);
        out += ", \"sum\": ";
        append_number(out, s.value);
        out += ", \"min\": ";
        append_u64(out, s.hist_min);
        out += ", \"max\": ";
        append_u64(out, s.hist_max);
        out += ", \"buckets\": {";
        bool bfirst = true;
        for (const auto& [value, n] : s.buckets) {
          if (!bfirst) out += ", ";
          bfirst = false;
          char key[32];
          std::snprintf(key, sizeof key, "\"%llu\"",
                        static_cast<unsigned long long>(value));
          out += key;
          out += ": ";
          append_u64(out, n);
        }
        out += "}}";
        break;
      }
    }
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"spans\": {";
  first = true;
  for (const SpanStats& s : spans_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, s.name);
    out += ": {\"count\": ";
    append_u64(out, s.count);
    out += ", \"total_s\": ";
    append_number(out, static_cast<double>(s.total_ns) * 1e-9);
    out += ", \"max_s\": ";
    append_number(out, static_cast<double>(s.max_ns) * 1e-9);
    out += "}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"trace_spans_dropped\": ";
  append_u64(out, trace_dropped_);
  out += ",\n  \"captured\": ";
  out += captured_ ? "true" : "false";
  out += "\n}\n";
  return out;
}

void RunReport::write_json(const std::string& path) const {
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open manifest output file: " + path);
  os << to_json();
}

}  // namespace htmpll::obs

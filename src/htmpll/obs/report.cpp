#include "htmpll/obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <thread>

#include "htmpll/util/check.hpp"

namespace htmpll::obs {

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// JSON has no Infinity/NaN literals; diagnostic payloads carry them
/// legitimately (kappa(V) of a defective basis is +inf).  Clamp to a
/// representable sentinel so the document stays parseable.
void append_finite_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "0";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "1e308" : "-1e308";
    return;
  }
  append_number(out, v);
}

}  // namespace

std::string git_describe() {
#ifdef HTMPLL_GIT_DESCRIBE
  return HTMPLL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

RunReport::RunReport(std::string run_name)
    : run_name_(std::move(run_name)) {}

void RunReport::set_config(const std::string& key, double value) {
  for (auto& [k, v] : config_numbers_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_numbers_.emplace_back(key, value);
}

void RunReport::set_config(const std::string& key,
                           const std::string& value) {
  for (auto& [k, v] : config_strings_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config_strings_.emplace_back(key, value);
}

void RunReport::add_phase(const std::string& phase, double seconds) {
  phases_.emplace_back(phase, seconds);
}

void RunReport::capture() {
  metrics_ = snapshot();
  spans_ = span_summary();
  span_aggregates_ = aggregate_spans();
  diag_ = diag_snapshot();
  trace_dropped_ = trace_dropped();
  captured_ = true;
}

std::string RunReport::to_json() const {
  std::string out;
  out += "{\n  \"run\": ";
  append_quoted(out, run_name_);
  out += ",\n  \"git\": ";
  append_quoted(out, git_describe());
  char stamp[64] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  out += ",\n  \"timestamp\": ";
  append_quoted(out, stamp);
  out += ",\n  \"hardware_threads\": ";
  append_u64(out, std::thread::hardware_concurrency());
  out += ",\n  \"obs_enabled\": ";
  out += enabled() ? "true" : "false";

  out += ",\n  \"config\": {";
  bool first = true;
  for (const auto& [k, v] : config_strings_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_quoted(out, v);
  }
  for (const auto& [k, v] : config_numbers_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"phases_s\": {";
  first = true;
  for (const auto& [k, v] : phases_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, k);
    out += ": ";
    append_number(out, v);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"metrics\": {";
  first = true;
  for (const MetricSample& s : metrics_.samples) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, s.name);
    out += ": ";
    switch (s.kind) {
      case MetricKind::kCounter:
        append_u64(out, s.count);
        break;
      case MetricKind::kGauge:
        append_number(out, s.value);
        break;
      case MetricKind::kHistogram: {
        out += "{\"count\": ";
        append_u64(out, s.count);
        out += ", \"sum\": ";
        append_number(out, s.value);
        out += ", \"min\": ";
        append_u64(out, s.hist_min);
        out += ", \"max\": ";
        append_u64(out, s.hist_max);
        out += ", \"buckets\": {";
        bool bfirst = true;
        for (const auto& [value, n] : s.buckets) {
          if (!bfirst) out += ", ";
          bfirst = false;
          char key[32];
          std::snprintf(key, sizeof key, "\"%llu\"",
                        static_cast<unsigned long long>(value));
          out += key;
          out += ": ";
          append_u64(out, n);
        }
        out += "}}";
        break;
      }
    }
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"spans\": {";
  first = true;
  for (const SpanStats& s : spans_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_quoted(out, s.name);
    out += ": {\"count\": ";
    append_u64(out, s.count);
    out += ", \"total_s\": ";
    append_number(out, static_cast<double>(s.total_ns) * 1e-9);
    out += ", \"max_s\": ";
    append_number(out, static_cast<double>(s.max_ns) * 1e-9);
    out += "}";
  }
  out += first ? "}" : "\n  }";

  // Numerical-health section: per-reason degradation tallies (every
  // reason present, zero or not, so downstream gates can assert on
  // absence), health gauges, a bounded sample of recent events with
  // their payloads, and per-span-name aggregates with the drop count
  // they must be read against.
  out += ",\n  \"health\": {\n    \"events\": {";
  first = true;
  for (std::size_t i = 0; i < kDiagReasonCount; ++i) {
    out += first ? "\n      " : ",\n      ";
    first = false;
    append_quoted(out, diag_reason_name(static_cast<DiagReason>(i)));
    out += ": ";
    append_u64(out, diag_.tally[i]);
  }
  out += "\n    },\n    \"events_total\": ";
  append_u64(out, diag_.total());
  out += ",\n    \"diag_events_dropped\": ";
  append_u64(out, diag_.dropped);
  out += ",\n    \"sampled_events\": [";
  constexpr std::size_t kMaxSampledEvents = 32;
  const std::size_t n_events = diag_.events.size();
  const std::size_t skip =
      n_events > kMaxSampledEvents ? n_events - kMaxSampledEvents : 0;
  first = true;
  for (std::size_t i = skip; i < n_events; ++i) {
    const DiagEvent& e = diag_.events[i];
    out += first ? "\n      " : ",\n      ";
    first = false;
    out += "{\"reason\": ";
    append_quoted(out, diag_reason_name(e.reason));
    out += ", \"payload\": ";
    append_finite_number(out, e.payload);
    out += ", \"tid\": ";
    append_u64(out, static_cast<std::uint64_t>(e.tid));
    out += "}";
  }
  out += first ? "]" : "\n    ]";
  out += ",\n    \"gauges\": {";
  first = true;
  for (std::size_t i = 0; i < kHealthGaugeCount; ++i) {
    out += first ? "\n      " : ",\n      ";
    first = false;
    append_quoted(out, health_gauge_name(static_cast<HealthGauge>(i)));
    out += ": ";
    append_finite_number(out, diag_.gauge[i]);
  }
  out += "\n    },\n    \"spans\": {";
  first = true;
  for (const SpanAggregate& a : span_aggregates_) {
    out += first ? "\n      " : ",\n      ";
    first = false;
    append_quoted(out, a.name);
    out += ": {\"count\": ";
    append_u64(out, a.count);
    out += ", \"total_s\": ";
    append_number(out, static_cast<double>(a.total_ns) * 1e-9);
    out += ", \"self_s\": ";
    append_number(out, static_cast<double>(a.self_ns) * 1e-9);
    out += ", \"min_s\": ";
    append_number(out, static_cast<double>(a.min_ns) * 1e-9);
    out += ", \"p50_s\": ";
    append_number(out, static_cast<double>(a.p50_ns) * 1e-9);
    out += ", \"p95_s\": ";
    append_number(out, static_cast<double>(a.p95_ns) * 1e-9);
    out += ", \"max_s\": ";
    append_number(out, static_cast<double>(a.max_ns) * 1e-9);
    out += "}";
  }
  out += first ? "}" : "\n    }";
  out += ",\n    \"trace_spans_dropped\": ";
  append_u64(out, trace_dropped_);
  out += "\n  }";

  out += ",\n  \"trace_spans_dropped\": ";
  append_u64(out, trace_dropped_);
  out += ",\n  \"captured\": ";
  out += captured_ ? "true" : "false";
  out += "\n}\n";
  return out;
}

void RunReport::write_json(const std::string& path) const {
  if (trace_dropped_ > 0) {
    std::fprintf(stderr,
                 "htmpll: warning: manifest '%s' is missing %llu trace "
                 "span(s) dropped to ring wrap-around; raise "
                 "HTMPLL_TRACE_CAP to retain them\n",
                 path.c_str(),
                 static_cast<unsigned long long>(trace_dropped_));
  }
  if (diag_.dropped > 0) {
    std::fprintf(stderr,
                 "htmpll: warning: manifest '%s' is missing %llu "
                 "diagnostic event(s) dropped to ring wrap-around (the "
                 "per-reason tallies stay exact)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(diag_.dropped));
  }
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open manifest output file: " + path);
  os << to_json();
}

}  // namespace htmpll::obs

#include "htmpll/obs/metrics.hpp"

#include <algorithm>

#include "htmpll/obs/diag.hpp"
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "htmpll/util/check.hpp"

namespace htmpll::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// Reads HTMPLL_OBS once during static initialization: any value other
/// than empty or "0" turns instrumentation on for the whole process.
struct EnvInit {
  EnvInit() {
    const char* e = std::getenv("HTMPLL_OBS");
    if (e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0')) {
      detail::g_enabled.store(true, std::memory_order_relaxed);
    }
  }
} env_init;

/// Name -> metric maps.  unique_ptr values keep addresses stable across
/// rehashing, so references handed out by counter()/gauge()/histogram()
/// stay valid forever.  Guarded by registry_mutex().
struct Registry {
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: metrics outlive statics
  return *r;
}

void require_unregistered(const Registry& r, const std::string& name,
                          MetricKind want) {
  const bool as_counter = r.counters.count(name) != 0;
  const bool as_gauge = r.gauges.count(name) != 0;
  const bool as_histogram = r.histograms.count(name) != 0;
  const bool clash = (as_counter && want != MetricKind::kCounter) ||
                     (as_gauge && want != MetricKind::kGauge) ||
                     (as_histogram && want != MetricKind::kHistogram);
  HTMPLL_REQUIRE(!clash,
                 "obs metric '" + name +
                     "' is already registered as a different kind");
}

}  // namespace

void enable() { detail::g_enabled.store(true, std::memory_order_relaxed); }
void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Registry& r = registry();
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    require_unregistered(r, name, MetricKind::kCounter);
    it = r.counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Registry& r = registry();
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    require_unregistered(r, name, MetricKind::kGauge);
    it = r.gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  Registry& r = registry();
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    require_unregistered(r, name, MetricKind::kHistogram);
    it = r.histograms.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  const MetricSample* s = find(name);
  return s == nullptr ? 0 : s->count;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  const MetricSample* s = find(name);
  return s == nullptr ? 0.0 : s->value;
}

MetricsSnapshot snapshot() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const Registry& r = registry();
  MetricsSnapshot out;
  out.samples.reserve(r.counters.size() + r.gauges.size() +
                      r.histograms.size());
  for (const auto& [name, c] : r.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->value();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : r.gauges) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : r.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.value = static_cast<double>(h->sum());
    s.hist_min = h->min();
    s.hist_max = h->max();
    for (std::uint64_t b = 0; b <= Histogram::kMaxTracked; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n != 0) s.buckets.emplace_back(b, n);
    }
    out.samples.push_back(std::move(s));
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_counters() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    Registry& r = registry();
    for (auto& [name, c] : r.counters) c->reset();
    for (auto& [name, h] : r.histograms) h->reset();
  }
  // The diagnostic tallies are counters too: a bench that resets
  // between phases expects the health section to cover the same window
  // as the metrics snapshot.
  diag_reset();
}

}  // namespace htmpll::obs

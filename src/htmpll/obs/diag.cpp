#include "htmpll/obs/diag.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

namespace htmpll::obs {

namespace {

/// Dotted JSON identifiers, indexed by DiagReason.  Order must match
/// the enum exactly (static_assert below).
constexpr const char* kReasonNames[kDiagReasonCount] = {
    "pade_fallback.defective",      // kPadeFallbackDefective
    "pade_fallback.not_converged",  // kPadeFallbackNotConverged
    "pade_fallback.ill_conditioned",// kPadeFallbackIllConditioned
    "simd_bailout.out_of_range",    // kSimdBailoutOutOfRange
    "simd_bailout.non_finite",      // kSimdBailoutNonFinite
    "simd_bailout.guard_trip",      // kSimdBailoutGuardTrip
    "eval_plan.cancellation_recompute",  // kPlanCancellationRecompute
    "eval_plan.exp_overflow_fallback",   // kPlanExpOverflowFallback
    "eval_plan.scalar_fallback",    // kPlanScalarFallback
    "propagator_cache.eviction",    // kPropagatorCacheEviction
    "htm.truncation_saturated",     // kHtmTruncationSaturated
    "pole_search.degenerate_step",  // kPoleSearchDegenerateStep
    "pole_search.diverged",         // kPoleSearchDiverged
    "propagator_cache.churn",       // kPropagatorCacheChurn
    "ensemble.lane_divergence",     // kEnsembleLaneDivergence
};
static_assert(sizeof(kReasonNames) / sizeof(kReasonNames[0]) ==
              kDiagReasonCount);

constexpr const char* kGaugeNames[kHealthGaugeCount] = {
    "max_eigenbasis_condition",   // kMaxEigenbasisCondition
    "max_eigenpair_residual",     // kMaxEigenpairResidual
    "max_plan_spot_check_error",  // kMaxPlanSpotCheckError
};
static_assert(sizeof(kGaugeNames) / sizeof(kGaugeNames[0]) ==
              kHealthGaugeCount);

/// Process-wide per-reason tallies (exact even when ring events age
/// out) and monotonic-max gauges.
std::atomic<std::uint64_t> g_tally[kDiagReasonCount];
std::atomic<double> g_gauge[kHealthGaugeCount];

/// Per-thread event ring, modeled on the trace ring (trace.cpp):
/// single writer, slots published by a release store of `head`, so a
/// concurrent snapshot reads a consistent prefix without locking the
/// writer.
class DiagBuffer {
 public:
  static constexpr std::size_t kCapacity = 1 << 10;  // 1024 events

  struct Slot {
    std::atomic<std::uint8_t> reason{0};
    std::atomic<double> payload{0.0};
  };

  explicit DiagBuffer(int tid) : tid_(tid), slots_(kCapacity) {}

  void record(DiagReason reason, double payload) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % kCapacity];
    s.reason.store(static_cast<std::uint8_t>(reason),
                   std::memory_order_relaxed);
    s.payload.store(payload, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  void collect_into(std::vector<DiagEvent>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, kCapacity);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots_[i % kCapacity];
      DiagEvent e;
      e.reason =
          static_cast<DiagReason>(s.reason.load(std::memory_order_relaxed));
      e.payload = s.payload.load(std::memory_order_relaxed);
      e.tid = tid_;
      if (e.reason < DiagReason::kCount) out.push_back(e);
    }
  }

  std::uint64_t dropped() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > kCapacity ? h - kCapacity : 0;
  }

  void clear() { head_.store(0, std::memory_order_release); }

 private:
  int tid_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

std::mutex& diag_mutex() {
  static std::mutex mu;
  return mu;
}

/// All rings ever registered; shared ownership with each thread's
/// local handle so a ring survives its thread.  Leaked so snapshots
/// work during late static destruction.
std::vector<std::shared_ptr<DiagBuffer>>& buffers() {
  static auto* v = new std::vector<std::shared_ptr<DiagBuffer>>();
  return *v;
}

DiagBuffer& local_buffer() {
  thread_local std::shared_ptr<DiagBuffer> buf = [] {
    std::lock_guard<std::mutex> lock(diag_mutex());
    auto b =
        std::make_shared<DiagBuffer>(static_cast<int>(buffers().size()));
    buffers().push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

const char* diag_reason_name(DiagReason reason) {
  const auto i = static_cast<std::size_t>(reason);
  return i < kDiagReasonCount ? kReasonNames[i] : "unknown";
}

bool diag_reason_from_name(std::string_view name, DiagReason& out) {
  for (std::size_t i = 0; i < kDiagReasonCount; ++i) {
    if (name == kReasonNames[i]) {
      out = static_cast<DiagReason>(i);
      return true;
    }
  }
  return false;
}

const char* health_gauge_name(HealthGauge gauge) {
  const auto i = static_cast<std::size_t>(gauge);
  return i < kHealthGaugeCount ? kGaugeNames[i] : "unknown";
}

void diag_event(DiagReason reason, double payload) {
  if (!enabled()) return;
  const auto i = static_cast<std::size_t>(reason);
  if (i >= kDiagReasonCount) return;
  g_tally[i].fetch_add(1, std::memory_order_relaxed);
  local_buffer().record(reason, payload);
}

void diag_gauge_max(HealthGauge gauge, double value) {
  if (!enabled()) return;
  const auto i = static_cast<std::size_t>(gauge);
  if (i >= kHealthGaugeCount || std::isnan(value)) return;
  double cur = g_gauge[i].load(std::memory_order_relaxed);
  while (value > cur && !g_gauge[i].compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

DiagSnapshot diag_snapshot() {
  DiagSnapshot s;
  for (std::size_t i = 0; i < kDiagReasonCount; ++i) {
    s.tally[i] = g_tally[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kHealthGaugeCount; ++i) {
    s.gauge[i] = g_gauge[i].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(diag_mutex());
  for (const auto& b : buffers()) {
    b->collect_into(s.events);
    s.dropped += b->dropped();
  }
  return s;
}

std::uint64_t diag_dropped() {
  std::lock_guard<std::mutex> lock(diag_mutex());
  std::uint64_t n = 0;
  for (const auto& b : buffers()) n += b->dropped();
  return n;
}

void diag_reset() {
  for (auto& t : g_tally) t.store(0, std::memory_order_relaxed);
  for (auto& g : g_gauge) g.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(diag_mutex());
  for (const auto& b : buffers()) b->clear();
}

}  // namespace htmpll::obs

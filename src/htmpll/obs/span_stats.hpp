// Per-name aggregation of the span trace rings: count, total and SELF
// time, min/p50/p95/max durations.  Manifests embed these so "where did
// the time go" is answerable without opening the Chrome trace in
// Perfetto.
//
// Self time subtracts the durations of directly nested child spans on
// the same thread (e.g. "core.plan_grid" inside "sweep.run"), so the
// per-name totals of a deep trace still add up to wall time instead of
// multiply counting every nesting level.
//
// Percentiles use the nearest-rank definition on the sorted durations:
// p = durations[ceil(q * count) - 1].  With one span, min = p50 = p95 =
// max.  Aggregation walks the retained ring contents, so spans dropped
// to ring wrap-around are not represented -- report trace_dropped()
// next to these numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "htmpll/obs/trace.hpp"

namespace htmpll::obs {

/// Aggregate statistics of all retained spans sharing one name.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< sum of durations (incl. children)
  std::uint64_t self_ns = 0;   ///< total minus same-thread child spans
  std::uint64_t min_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t max_ns = 0;

  /// total / count; 0.0 before the first span (zero-count guarded).
  double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

/// Aggregates an explicit event list (begin-sorted or not), e.g. a
/// synthetic trace in tests.  Returns aggregates sorted by name.
std::vector<SpanAggregate> aggregate_spans(
    std::vector<TraceEventView> events);

/// Aggregates the live trace rings (collect_trace()).
std::vector<SpanAggregate> aggregate_spans();

}  // namespace htmpll::obs

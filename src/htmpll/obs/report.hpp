// Run manifests: one structured JSON document per run that records what
// was executed (tool name, git describe, hardware), how it was
// configured (threads, truncation order, grid sizes), how long each
// phase took, and what the instrumentation saw (metrics snapshot + span
// summary).  Benches write one next to their BENCH_*.json so a timing
// number can always be traced back to the workload that produced it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/span_stats.hpp"
#include "htmpll/obs/trace.hpp"

namespace htmpll::obs {

/// Build-time `git describe --always --dirty` of the source tree
/// ("unknown" when the build was configured outside a git checkout).
std::string git_describe();

class RunReport {
 public:
  explicit RunReport(std::string run_name);

  /// Configuration facts (insertion-ordered in the JSON output).
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, const std::string& value);

  /// Wall time of one named phase of the run, in seconds.
  void add_phase(const std::string& phase, double seconds);

  /// Captures the current metrics snapshot, span summary, span
  /// aggregates and diagnostic state (the "health" section).  Call once
  /// at the end of the run (a later call overwrites the first).
  void capture();

  const MetricsSnapshot& metrics() const { return metrics_; }
  const std::vector<SpanStats>& spans() const { return spans_; }
  const DiagSnapshot& diagnostics() const { return diag_; }
  const std::vector<SpanAggregate>& span_aggregates() const {
    return span_aggregates_;
  }

  std::string to_json() const;
  /// Writes to_json() to `path`; warns on stderr when trace spans or
  /// diagnostic events were dropped to ring wrap-around.
  void write_json(const std::string& path) const;

 private:
  std::string run_name_;
  std::vector<std::pair<std::string, std::string>> config_strings_;
  std::vector<std::pair<std::string, double>> config_numbers_;
  std::vector<std::pair<std::string, double>> phases_;
  MetricsSnapshot metrics_;
  std::vector<SpanStats> spans_;
  std::vector<SpanAggregate> span_aggregates_;
  DiagSnapshot diag_;
  std::uint64_t trace_dropped_ = 0;
  bool captured_ = false;
};

}  // namespace htmpll::obs

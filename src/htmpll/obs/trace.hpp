// Scoped span tracing into per-thread lock-free ring buffers, with
// Chrome trace-event (chrome://tracing / Perfetto) JSON export.
//
//   {
//     HTMPLL_TRACE_SPAN("probe.settle");
//     sim.run_until(settle);           // span covers this scope
//   }
//   obs::write_chrome_trace("sweep.trace.json");
//
// Each thread owns a fixed-capacity ring of completed spans (name,
// begin, end in steady-clock nanoseconds).  The owning thread is the
// only writer; slot fields are relaxed atomics published by a release
// store of the ring head, so concurrent export is TSan-clean.  When a
// ring wraps, the oldest spans are overwritten and counted as dropped
// (write_chrome_trace and run manifests warn when that happened; raise
// HTMPLL_TRACE_CAP to size the rings for longer runs).
//
// Spans share the obs::enabled() switch with the metrics registry: a
// TraceSpan constructed while disabled records nothing and costs one
// relaxed load.  Span names must have static storage duration (string
// literals) -- the ring stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "htmpll/obs/metrics.hpp"

namespace htmpll::obs {

/// Nanoseconds on the steady clock since the process trace epoch.
std::uint64_t now_ns();

namespace detail {
/// Appends one completed span to the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns);

/// Parses an HTMPLL_TRACE_CAP value.  Returns `fallback` (with a
/// stderr warning) for null/empty/garbage/zero input; valid values are
/// clamped to [64, 4194304] spans.
std::size_t parse_trace_cap(const char* env, std::size_t fallback);
}  // namespace detail

/// Per-thread span-ring capacity: HTMPLL_TRACE_CAP when set (resolved
/// once, at the first ring registration), 16384 spans otherwise.
std::size_t trace_capacity();

/// RAII span: times the enclosing scope when obs is enabled, does
/// nothing otherwise.  `name` must be a string literal (or any pointer
/// that outlives the trace).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (enabled()) {
      name_ = name;
      begin_ns_ = now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) detail::record_span(name_, begin_ns_, now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

/// One exported span (copied out of the rings at collection time).
struct TraceEventView {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  int tid;  ///< small per-thread id assigned at first span
};

/// Copies every retained span out of every thread's ring, sorted by
/// begin time.  Safe to call while other threads trace (each ring's
/// published prefix is read consistently), but for exact results call
/// at quiescence.
std::vector<TraceEventView> collect_trace();

/// Spans lost to ring wrap-around since the last clear_trace().
std::uint64_t trace_dropped();

/// Total spans currently retained across all rings.
std::size_t trace_event_count();

/// Drops all retained spans (rings stay registered).  Call between
/// bench phases; only safe at quiescence.
void clear_trace();

/// Aggregate per-name span statistics over the retained spans.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};
std::vector<SpanStats> span_summary();

/// The retained spans as a Chrome trace-event JSON document
/// (chrome://tracing and https://ui.perfetto.dev load it directly).
std::string chrome_trace_json();

/// Writes chrome_trace_json() to `path`.
void write_chrome_trace(const std::string& path);

}  // namespace htmpll::obs

#define HTMPLL_OBS_CONCAT_(a, b) a##b
#define HTMPLL_OBS_CONCAT(a, b) HTMPLL_OBS_CONCAT_(a, b)
/// Times the enclosing scope under `name` when obs is enabled.
#define HTMPLL_TRACE_SPAN(name)     \
  ::htmpll::obs::TraceSpan HTMPLL_OBS_CONCAT(htmpll_obs_span_, \
                                             __COUNTER__)(name)

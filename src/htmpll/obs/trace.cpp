#include "htmpll/obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "htmpll/util/check.hpp"

namespace htmpll::obs {

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

constexpr std::size_t kDefaultTraceCapacity = 1 << 14;  // 16384 spans

/// Per-thread span ring.  Single writer (the owning thread); readers
/// acquire `head` and then load the published slots relaxed, so export
/// races neither with writes nor with TSan.
class TraceBuffer {
 public:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> begin_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
  };

  TraceBuffer(int tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity), slots_(capacity) {}

  void record(const char* name, std::uint64_t begin_ns,
              std::uint64_t end_ns) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h % capacity_];
    s.name.store(name, std::memory_order_relaxed);
    s.begin_ns.store(begin_ns, std::memory_order_relaxed);
    s.end_ns.store(end_ns, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  void collect_into(std::vector<TraceEventView>& out) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, capacity_);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots_[i % capacity_];
      TraceEventView e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.begin_ns = s.begin_ns.load(std::memory_order_relaxed);
      e.end_ns = s.end_ns.load(std::memory_order_relaxed);
      e.tid = tid_;
      if (e.name != nullptr) out.push_back(e);
    }
  }

  std::uint64_t dropped() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return h > capacity_ ? h - capacity_ : 0;
  }

  std::uint64_t size() const {
    return std::min<std::uint64_t>(head_.load(std::memory_order_acquire),
                                   capacity_);
  }

  void clear() { head_.store(0, std::memory_order_release); }

 private:
  int tid_;
  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

std::mutex& trace_mutex() {
  static std::mutex mu;
  return mu;
}

/// All rings ever registered; shared ownership with each thread's local
/// handle so a ring survives its thread (its spans stay exportable).
/// Leaked so exports work during late static destruction.
std::vector<std::shared_ptr<TraceBuffer>>& buffers() {
  static auto* v = new std::vector<std::shared_ptr<TraceBuffer>>();
  return *v;
}

TraceBuffer& local_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buf = [] {
    std::lock_guard<std::mutex> lock(trace_mutex());
    auto b = std::make_shared<TraceBuffer>(
        static_cast<int>(buffers().size()), trace_capacity());
    buffers().push_back(b);
    return b;
  }();
  return *buf;
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

namespace detail {

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  local_buffer().record(name, begin_ns, end_ns);
}

std::size_t parse_trace_cap(const char* env, std::size_t fallback) {
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  // strtoull wraps a leading '-' through ULLONG_MAX; reject it as
  // garbage instead.
  if (*env == '-' || end == env || *end != '\0' || v == 0) {
    std::fprintf(stderr,
                 "htmpll: warning: HTMPLL_TRACE_CAP='%s' is not a "
                 "positive span count; keeping the default of %zu\n",
                 env, fallback);
    return fallback;
  }
  constexpr unsigned long long kMin = 64;
  constexpr unsigned long long kMax = 1ull << 22;  // 4194304 spans
  if (v < kMin) return static_cast<std::size_t>(kMin);
  if (v > kMax) return static_cast<std::size_t>(kMax);
  return static_cast<std::size_t>(v);
}

}  // namespace detail

std::size_t trace_capacity() {
  static const std::size_t cap = detail::parse_trace_cap(
      std::getenv("HTMPLL_TRACE_CAP"), kDefaultTraceCapacity);
  return cap;
}

std::vector<TraceEventView> collect_trace() {
  std::vector<TraceEventView> out;
  {
    std::lock_guard<std::mutex> lock(trace_mutex());
    for (const auto& b : buffers()) b->collect_into(out);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.end_ns > b.end_ns;
            });
  return out;
}

std::uint64_t trace_dropped() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  std::uint64_t n = 0;
  for (const auto& b : buffers()) n += b->dropped();
  return n;
}

std::size_t trace_event_count() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  std::uint64_t n = 0;
  for (const auto& b : buffers()) n += b->size();
  return static_cast<std::size_t>(n);
}

void clear_trace() {
  std::lock_guard<std::mutex> lock(trace_mutex());
  for (const auto& b : buffers()) b->clear();
}

std::vector<SpanStats> span_summary() {
  std::map<std::string, SpanStats> agg;
  for (const TraceEventView& e : collect_trace()) {
    SpanStats& s = agg[e.name];
    if (s.count == 0) s.name = e.name;
    const std::uint64_t dur = e.end_ns - e.begin_ns;
    ++s.count;
    s.total_ns += dur;
    s.max_ns = std::max(s.max_ns, dur);
  }
  std::vector<SpanStats> out;
  out.reserve(agg.size());
  for (auto& [name, s] : agg) out.push_back(std::move(s));
  return out;
}

std::string chrome_trace_json() {
  const std::vector<TraceEventView> events = collect_trace();
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  out +=
      "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"htmpll\"}}";
  char buf[64];
  for (const TraceEventView& e : events) {
    out += ",\n    {\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"htmpll\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    std::snprintf(buf, sizeof buf, "%d", e.tid);
    out += buf;
    // Chrome trace timestamps/durations are microseconds.
    std::snprintf(buf, sizeof buf, ", \"ts\": %.3f, \"dur\": %.3f}",
                  static_cast<double>(e.begin_ns) * 1e-3,
                  static_cast<double>(e.end_ns - e.begin_ns) * 1e-3);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::uint64_t lost = trace_dropped();
  if (lost > 0) {
    std::fprintf(stderr,
                 "htmpll: warning: %llu trace span(s) were dropped to "
                 "ring wrap-around (per-thread capacity %zu); raise "
                 "HTMPLL_TRACE_CAP to retain them\n",
                 static_cast<unsigned long long>(lost), trace_capacity());
  }
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open trace output file: " + path);
  os << chrome_trace_json();
}

}  // namespace htmpll::obs

// Process-wide metrics registry: named counters, gauges and histograms
// with a relaxed-atomic hot path.
//
// The registry is the measurement substrate of the library: the linalg,
// parallel, core and timedomain layers increment counters for their
// expensive primitives (expm evaluations, LU factorizations/solves,
// propagator-cache traffic, HTM block builds, PFD events, thread-pool
// jobs/chunks), and benches/run manifests snapshot them to explain
// where a sweep or an ensemble spent its work.
//
// Cost model:
//  * disabled (the default): every instrumentation site is one relaxed
//    atomic load of a process-wide flag plus an untaken branch -- no
//    stores, no contention.  scripts/check_overhead.sh gates this path
//    at < 1% on bench_sweep.
//  * enabled (HTMPLL_OBS=1 or obs::enable()): relaxed fetch_add per
//    event.  Instrumented sites are coarse (one per matrix factorization
//    or pool chunk, never per matrix element), so even the enabled path
//    stays in the noise of the work it measures.
//
// Thread safety: metric objects are plain atomics (TSan-clean under the
// thread pool); registration takes a mutex but hands out stable
// references, so hot paths register once (function-local static) and
// then touch only the atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace htmpll::obs {

namespace detail {
/// Process-wide instrumentation switch.  Constant-initialized to false
/// and flipped by enable()/disable() or the HTMPLL_OBS environment
/// variable (read once at static-initialization time in metrics.cpp).
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instrumentation is recording.  One relaxed load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void enable();
void disable();

/// Monotonic event counter.  add() is a no-op while disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written configuration value (pool width, truncation order...).
/// Unlike Counter, set() is NOT gated on enabled(): gauges record rare
/// configuration facts that must survive enabling obs after the fact.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Linear histogram over small non-negative integer observations
/// (HTM truncation orders, cache depths): one bucket per value in
/// [0, kMaxTracked], plus an overflow bucket, plus count/sum/min/max.
class Histogram {
 public:
  static constexpr std::uint64_t kMaxTracked = 128;

  void observe(std::uint64_t v) {
    if (!enabled()) return;
    const std::uint64_t b = v < kMaxTracked ? v : kMaxTracked;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // min/max via relaxed CAS loops; contention is negligible at the
    // coarse observation rates this class is used for.
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest observed value; 0 when empty.
  std::uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Occurrences of value v (v > kMaxTracked reports the overflow bin).
  std::uint64_t bucket(std::uint64_t v) const {
    return buckets_[v < kMaxTracked ? v : kMaxTracked].load(
        std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kMaxTracked + 1] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one metric, ordered by name in a snapshot.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram count
  double value = 0.0;       ///< gauge value / histogram sum
  std::uint64_t hist_min = 0;
  std::uint64_t hist_max = 0;
  /// Non-empty buckets of a histogram as (value, occurrences) pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* find(const std::string& name) const;
  /// Counter value (or histogram count) by name; 0 when absent.
  std::uint64_t counter_value(const std::string& name) const;
  /// Gauge value (or histogram sum) by name; 0.0 when absent.
  double gauge_value(const std::string& name) const;
};

/// Registered metric accessors: the first call with a given name creates
/// the metric, later calls return the same object (stable address for
/// the lifetime of the process).  Registering the same name as two
/// different kinds throws std::invalid_argument.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Consistent point-in-time copy of every registered metric, sorted by
/// name.  ("Consistent" per metric: each sample is atomic per field; the
/// snapshot as a whole is taken under the registry lock, so no metric
/// can be registered halfway through.)
MetricsSnapshot snapshot();

/// Zeroes every counter and histogram (gauges keep their configuration
/// values) and resets the diagnostic event log (obs/diag.hpp).  Benches
/// call this between measurement phases.
void reset_counters();

}  // namespace htmpll::obs

// Real matrix exponential and Van Loan phi-function blocks.
//
// The behavioral PLL simulator propagates the loop-filter (plus VCO phase)
// state exactly between charge-pump events, where the driving current is
// piecewise constant / piecewise linear:
//
//   x(h) = e^{Ah} x0 + h*phi1(Ah) B u0 + h^2*phi2(Ah) B (u1-u0)/h
//
// The phi blocks are extracted from one exponential of the augmented
// matrix [[A,B,0],[0,0,I],[0,0,0]] (Van Loan, 1978), so no invertibility
// of A is required (our filters have poles at s = 0).
#pragma once

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

/// Matrix exponential by scaling-and-squaring with a (6,6) Pade
/// approximant.  Requires a square matrix with finite entries; a NaN or
/// infinity anywhere raises std::invalid_argument instead of silently
/// poisoning the scaling heuristic (norm_inf propagates NaN, which used
/// to skip scaling entirely and return an all-NaN matrix).
RMatrix expm(const RMatrix& a);

/// Exact discrete propagator over a step of length h for
/// x' = A x + B u(t) with u piecewise linear on the step.
struct StepPropagator {
  RMatrix phi0;   ///< e^{Ah}                       (n x n)
  RMatrix gamma1; ///< h*phi1(Ah)*B, weight of u0   (n x m)
  RMatrix gamma2; ///< h^2*phi2(Ah)*B, weight of du (n x m), du = (u1-u0)/h

  /// x1 = phi0*x0 + gamma1*u0 + gamma2*(u1-u0)/h  -- callers with
  /// piecewise-constant input pass u1 == u0.
  RVector advance(const RVector& x0, const RVector& u0, const RVector& u1,
                  double h) const;

  /// Scalar-input (m == 1) variant writing into caller-owned storage:
  /// no temporaries, so hot per-step callers (integrator peeks, Newton
  /// edge solves) stop allocating three vectors per call.  Arithmetic is
  /// bit-identical to advance(x0, {u0}, {u1}, h).  `out` is resized to
  /// the state order and must not alias x0.
  void advance_into(const RVector& x0, double u0, double u1, double h,
                    RVector& out) const;
};

/// Builds the propagator for step length h.  B may be empty (autonomous
/// system), in which case gamma1/gamma2 are empty too.
StepPropagator make_propagator(const RMatrix& a, const RMatrix& b, double h);

}  // namespace htmpll

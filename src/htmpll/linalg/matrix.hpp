// Self-contained dense matrix/vector types.
//
// The HTM formalism needs complex dense matrices of modest order
// ((2K+1) x (2K+1), K <= ~32); the time-domain simulator needs small real
// state-space matrices.  Both are served by DenseMatrix<T> below.  Storage
// is row-major, value semantics throughout.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "htmpll/util/check.hpp"

namespace htmpll {

using cplx = std::complex<double>;

template <class T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  DenseMatrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major initializer: DenseMatrix({{1,2},{3,4}}).
  DenseMatrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      HTMPLL_REQUIRE(row.size() == cols_, "ragged matrix initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    HTMPLL_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    HTMPLL_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const { return data_; }

  /// Reshapes to rows x cols with every entry zeroed, reusing existing
  /// storage when the new size fits -- the allocation-free twin of
  /// assigning a fresh DenseMatrix(rows, cols).  Hot per-step builders
  /// (spectral propagators into cache slots) call this instead of
  /// constructing a temporary.
  void assign_zero(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// Raw row pointers (row-major storage) for inner-loop kernels; hoists
  /// the bounds-checked operator() out of hot loops.
  T* row(std::size_t r) {
    HTMPLL_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    HTMPLL_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  DenseMatrix& operator+=(const DenseMatrix& o) {
    require_same_shape(o, "operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  DenseMatrix& operator-=(const DenseMatrix& o) {
    require_same_shape(o, "operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  DenseMatrix& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }

  friend DenseMatrix operator+(DenseMatrix a, const DenseMatrix& b) {
    a += b;
    return a;
  }
  friend DenseMatrix operator-(DenseMatrix a, const DenseMatrix& b) {
    a -= b;
    return a;
  }
  friend DenseMatrix operator*(DenseMatrix a, T s) {
    a *= s;
    return a;
  }
  friend DenseMatrix operator*(T s, DenseMatrix a) {
    a *= s;
    return a;
  }
  friend DenseMatrix operator-(DenseMatrix a) {
    for (auto& x : a.data_) x = -x;
    return a;
  }

  /// Blocked i-k-j product with raw row pointers: the inner loop streams
  /// one row of B against one row of C (both contiguous), and the k
  /// blocking keeps the active B panel cache-resident for the HTM orders
  /// ((2K+1)^2, K up to ~32) and beyond.  Accumulation order over k is
  /// unchanged from the naive triple loop (blocks ascend, k ascends
  /// within a block), so results match it bit-for-bit.
  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
    HTMPLL_REQUIRE(a.cols_ == b.rows_, "matrix product shape mismatch");
    DenseMatrix c(a.rows_, b.cols_);
    const std::size_t inner = a.cols_;
    const std::size_t ncols = b.cols_;
    const T* bd = b.data_.data();
    T* cd = c.data_.data();
    constexpr std::size_t kBlock = 48;
    for (std::size_t k0 = 0; k0 < inner; k0 += kBlock) {
      const std::size_t k1 = std::min(inner, k0 + kBlock);
      for (std::size_t i = 0; i < a.rows_; ++i) {
        const T* arow = a.data_.data() + i * inner;
        T* crow = cd + i * ncols;
        for (std::size_t k = k0; k < k1; ++k) {
          const T aik = arow[k];
          if (aik == T{}) continue;
          const T* brow = bd + k * ncols;
          for (std::size_t j = 0; j < ncols; ++j) crow[j] += aik * brow[j];
        }
      }
    }
    return c;
  }

  /// Matrix-vector product (hoisted row pointer, no per-element checks).
  friend std::vector<T> operator*(const DenseMatrix& a,
                                  const std::vector<T>& x) {
    HTMPLL_REQUIRE(a.cols_ == x.size(), "matrix-vector shape mismatch");
    std::vector<T> y(a.rows_);
    const T* xd = x.data();
    for (std::size_t i = 0; i < a.rows_; ++i) {
      const T* arow = a.data_.data() + i * a.cols_;
      T acc{};
      for (std::size_t j = 0; j < a.cols_; ++j) acc += arow[j] * xd[j];
      y[i] = acc;
    }
    return y;
  }

  DenseMatrix transpose() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    }
    return t;
  }

  /// Largest absolute-value entry.
  double max_abs() const {
    double m = 0.0;
    for (const auto& x : data_) m = std::max(m, std::abs(x));
    return m;
  }

  /// Induced infinity norm (max absolute row sum).
  double norm_inf() const {
    double m = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(i, j));
      m = std::max(m, s);
    }
    return m;
  }

  /// Frobenius norm.
  double norm_fro() const {
    double s = 0.0;
    for (const auto& x : data_) s += std::norm(std::complex<double>(x));
    return std::sqrt(s);
  }

  std::string to_string(int precision = 4) const;

 private:
  void require_same_shape(const DenseMatrix& o, const char* op) const {
    HTMPLL_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_,
                   std::string("shape mismatch in ") + op);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using CMatrix = DenseMatrix<cplx>;
using RMatrix = DenseMatrix<double>;
using CVector = std::vector<cplx>;
using RVector = std::vector<double>;

/// Rank-one outer product u * v^T.
CMatrix outer(const CVector& u, const CVector& v);

/// Dot product without conjugation: sum_i u_i v_i (matches the l^T v usage
/// in the paper's Sherman-Morrison step).
cplx dot_unconjugated(const CVector& u, const CVector& v);

/// Euclidean norm of a complex vector.
double norm2(const CVector& v);

CVector operator+(const CVector& a, const CVector& b);
CVector operator-(const CVector& a, const CVector& b);
CVector operator*(cplx s, CVector v);

extern template class DenseMatrix<cplx>;
extern template class DenseMatrix<double>;

}  // namespace htmpll

// Dense real nonsymmetric eigensolver for the small state matrices of
// the time-domain layer.
//
// The spectral step propagators (linalg/spectral.hpp) trade the per-step
// Pade matrix exponential for a one-time modal factorization
// A = V diag(lambda) V^{-1}: every step length afterwards costs only n
// scalar exponentials.  This module supplies that factorization for
// dense real matrices of modest order (loop filters have n <= ~8):
// Householder Hessenberg reduction followed by the Francis implicitly
// shifted double QR iteration for the eigenvalues, then inverse
// iteration on the original matrix (complex shifted LU) for the right
// eigenvectors, a Rayleigh-quotient polish of each eigenvalue, and a
// kappa_inf(V) conditioning estimate that callers use to decide whether
// the modal form is trustworthy.
//
// Complex eigenvalues come in conjugate pairs; the twin of a pair
// reuses the conjugated eigenvector, so reconstructions
// V f(diag(lambda)) V^{-1} of real matrix functions are real up to
// rounding.  Defective (or merely ill-conditioned) eigenbases are not
// an error: the decomposition reports usable(max_condition) == false
// and callers fall back to the Pade path.
#pragma once

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

/// Result of eig().  `values[i]` pairs with column i of `vectors`;
/// `inverse_vectors` is V^{-1} when it exists.
struct EigenDecomposition {
  CVector values;           ///< eigenvalues, conjugate pairs adjacent
  CMatrix vectors;          ///< right eigenvectors (columns, unit norm)
  CMatrix inverse_vectors;  ///< V^{-1} (empty when not diagonalizable)
  bool qr_converged = false;   ///< Francis iteration found all eigenvalues
  bool diagonalizable = false; ///< V was numerically invertible
  /// kappa_inf(V) = ||V||_inf ||V^{-1}||_inf; +inf when V is singular.
  /// Near-defective matrices show up here as a huge condition number
  /// rather than a hard failure.
  double vector_condition = 0.0;

  /// True when the modal form can be trusted for reconstructing
  /// functions of the matrix to ~ eps * max_condition accuracy.
  bool usable(double max_condition) const {
    return qr_converged && diagonalizable &&
           vector_condition <= max_condition;
  }
};

/// Full modal decomposition of a square real matrix.  Increments the
/// "linalg.eig_factorizations" counter.  Throws std::invalid_argument
/// for non-square or non-finite input.
EigenDecomposition eig(const RMatrix& a);

/// Eigenvalues only (Hessenberg + Francis QR, no eigenvectors).
/// `converged`, when non-null, receives false if the QR iteration hit
/// its sweep limit (the returned values are then partial garbage).
CVector eigenvalues(const RMatrix& a, bool* converged = nullptr);

}  // namespace htmpll

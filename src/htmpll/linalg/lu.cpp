#include "htmpll/linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

#include "htmpll/obs/metrics.hpp"

namespace htmpll {

namespace {

// Shared by both template instantiations; one registry entry each.
obs::Counter& lu_factorization_counter() {
  static obs::Counter& c = obs::counter("linalg.lu_factorizations");
  return c;
}

// Counts right-hand sides substituted (a matrix solve with k columns
// adds k), the unit the factorization's O(n^2) back-solve cost scales
// with.
obs::Counter& lu_solve_counter() {
  static obs::Counter& c = obs::counter("linalg.lu_solves");
  return c;
}

}  // namespace

template <class T>
LuDecomposition<T>::LuDecomposition(DenseMatrix<T> a) : lu_(std::move(a)) {
  lu_factorization_counter().add();
  HTMPLL_REQUIRE(lu_.is_square(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      throw std::domain_error("htmpll: LU: matrix is numerically singular");
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      ++swaps_;
    }
    const T pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

template <class T>
void LuDecomposition<T>::substitute(T* x) const {
  // Forward- and back-substitution on one (already permuted) RHS with
  // hoisted row pointers.
  const std::size_t n = order();
  for (std::size_t i = 0; i < n; ++i) {
    const T* lrow = lu_.row(i);
    T acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lrow[j] * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    const T* urow = lu_.row(ii);
    T acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= urow[j] * x[j];
    x[ii] = acc / urow[ii];
  }
}

template <class T>
std::vector<T> LuDecomposition<T>::solve(std::vector<T> b) const {
  lu_solve_counter().add();
  const std::size_t n = order();
  HTMPLL_REQUIRE(b.size() == n, "LU solve: rhs length mismatch");
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  substitute(x.data());
  return x;
}

template <class T>
DenseMatrix<T> LuDecomposition<T>::solve(const DenseMatrix<T>& b) const {
  lu_solve_counter().add(b.cols());
  const std::size_t n = order();
  HTMPLL_REQUIRE(b.rows() == n, "LU solve: rhs row count mismatch");
  // Transposed-RHS kernel: each right-hand side becomes one contiguous
  // row, so permutation and both substitutions stream linear memory
  // instead of striding column-wise through b.
  DenseMatrix<T> xt(b.cols(), n);
  for (std::size_t r = 0; r < b.cols(); ++r) {
    T* x = xt.row(r);
    for (std::size_t i = 0; i < n; ++i) x[i] = b(perm_[i], r);
    substitute(x);
  }
  return xt.transpose();
}

template <class T>
DenseMatrix<T> LuDecomposition<T>::inverse() const {
  return solve(DenseMatrix<T>::identity(order()));
}

template <class T>
T LuDecomposition<T>::determinant() const {
  T det = (swaps_ % 2 == 0) ? T{1} : T{-1};
  for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
  return det;
}

template class LuDecomposition<cplx>;
template class LuDecomposition<double>;

CMatrix inverse(const CMatrix& a) { return CLu(a).inverse(); }
RMatrix inverse(const RMatrix& a) { return RLu(a).inverse(); }
CVector solve(const CMatrix& a, const CVector& b) { return CLu(a).solve(b); }
RVector solve(const RMatrix& a, const RVector& b) { return RLu(a).solve(b); }

}  // namespace htmpll

#include "htmpll/linalg/expm.hpp"

#include <cmath>

#include "htmpll/linalg/lu.hpp"
#include "htmpll/obs/metrics.hpp"

namespace htmpll {

namespace {

/// (6,6) Pade approximant to exp on a pre-scaled matrix (norm <= 0.5).
RMatrix pade6(const RMatrix& a) {
  constexpr int q = 6;
  const std::size_t n = a.rows();
  // c_k = c_{k-1} * (q-k+1) / ((2q-k+1) k)
  double c[q + 1];
  c[0] = 1.0;
  for (int k = 1; k <= q; ++k) {
    c[k] = c[k - 1] * static_cast<double>(q - k + 1) /
           static_cast<double>((2 * q - k + 1) * k);
  }
  const RMatrix a2 = a * a;
  // Split the polynomial into even and odd parts so that
  // N = E + A*O, D = E - A*O.
  RMatrix even = RMatrix::identity(n) * c[0];
  RMatrix odd = RMatrix::identity(n) * c[1];
  RMatrix power = RMatrix::identity(n);  // A^(2j)
  for (int j = 1; 2 * j <= q; ++j) {
    power = power * a2;
    even += power * c[2 * j];
    if (2 * j + 1 <= q) odd += power * c[2 * j + 1];
  }
  const RMatrix a_odd = a * odd;
  const RMatrix num = even + a_odd;
  const RMatrix den = even - a_odd;
  return RLu(den).solve(num);
}

}  // namespace

RMatrix expm(const RMatrix& a) {
  static obs::Counter& c_evals = obs::counter("linalg.expm_evals");
  c_evals.add();
  HTMPLL_REQUIRE(a.is_square(), "expm requires a square matrix");
  for (const double v : a.data()) {
    HTMPLL_REQUIRE(std::isfinite(v), "expm: input has non-finite entries");
  }
  if (a.rows() == 0) return a;
  const double nrm = a.norm_inf();
  int s = 0;
  if (nrm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(nrm / 0.5)));
  }
  RMatrix scaled = a * std::ldexp(1.0, -s);
  RMatrix e = pade6(scaled);
  for (int i = 0; i < s; ++i) e = e * e;
  return e;
}

StepPropagator make_propagator(const RMatrix& a, const RMatrix& b, double h) {
  HTMPLL_REQUIRE(a.is_square(), "make_propagator: A must be square");
  HTMPLL_REQUIRE(h > 0.0, "make_propagator: step must be positive");
  const std::size_t n = a.rows();
  const std::size_t m = b.empty() ? 0 : b.cols();
  if (m > 0) {
    HTMPLL_REQUIRE(b.rows() == n, "make_propagator: B row count mismatch");
  }

  // Augmented Van Loan matrix, scaled by h:
  //   [ A  B  0 ]
  //   [ 0  0  I ]
  //   [ 0  0  0 ]
  const std::size_t dim = n + 2 * m;
  RMatrix aug(dim, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j) * h;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) aug(i, n + j) = b(i, j) * h;
  }
  for (std::size_t i = 0; i < m; ++i) aug(n + i, n + m + i) = h;

  const RMatrix e = expm(aug);

  StepPropagator p;
  p.phi0 = RMatrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) p.phi0(i, j) = e(i, j);
  }
  if (m > 0) {
    p.gamma1 = RMatrix(n, m);
    p.gamma2 = RMatrix(n, m);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        p.gamma1(i, j) = e(i, n + j);
        p.gamma2(i, j) = e(i, n + m + j);
      }
    }
  }
  return p;
}

RVector StepPropagator::advance(const RVector& x0, const RVector& u0,
                                const RVector& u1, double h) const {
  RVector x = phi0 * x0;
  if (!gamma1.empty()) {
    const RVector a = gamma1 * u0;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += a[i];
    RVector du(u0.size());
    bool any = false;
    for (std::size_t i = 0; i < u0.size(); ++i) {
      du[i] = (u1[i] - u0[i]) / h;
      any = any || du[i] != 0.0;
    }
    if (any) {
      const RVector c = gamma2 * du;
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += c[i];
    }
  }
  return x;
}

void StepPropagator::advance_into(const RVector& x0, double u0, double u1,
                                  double h, RVector& out) const {
  HTMPLL_ASSERT(gamma1.empty() || gamma1.cols() == 1);
  const std::size_t n = phi0.rows();
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = phi0.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += arow[j] * x0[j];
    out[i] = acc;
  }
  if (!gamma1.empty()) {
    // The leading 0.0 + matches the zero-initialized accumulator of the
    // matrix-vector product in advance(); without it a -0.0 product
    // would flip the sign bit of a -0.0 state entry.
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += 0.0 + gamma1.row(i)[0] * u0;
    }
    // u1 == u0 makes du a signed zero, so the gamma2 block is skipped
    // either way; testing the inputs first spares the common
    // piecewise-constant step the division.
    if (u1 != u0) {
      const double du = (u1 - u0) / h;
      if (du != 0.0) {
        for (std::size_t i = 0; i < n; ++i) {
          out[i] += 0.0 + gamma2.row(i)[0] * du;
        }
      }
    }
  }
}

}  // namespace htmpll

// Structure-of-arrays batch kernels for dense grid evaluation.
//
// Every figure sweep, stability search and noise integral in this repo
// reduces to evaluating scalar rational/transcendental expressions over
// thousands of complex frequencies.  The scalar code paths walk one
// point at a time through RationalFunction Horner recursion and call
// std::exp once per (channel, point).  These kernels flip the loop:
// coefficients stay in registers while a whole grid streams through
// split re/im planes, and the exponentials every coth/csch^2 aliasing
// kernel and ZOH shape prefactor need are derived from ONE exp(-sT)
// plane per grid (exp(-2u) = exp(-sT) exp(pT) for u = (pi/w0)(s - p),
// since T = 2pi/w0).
//
// Numerical contract: kernels agree with their scalar counterparts
// (Polynomial::operator(), RationalFunction::operator(), stable_coth /
// stable_csch2 via harmonic_pole_sum) to <= 1e-12 relative error.  The
// factorized exponential is guarded: near the poles/zeros of coth
// (|1 -+ e^{-2u}| small), where the product form would amplify rounding
// through catastrophic cancellation, the kernel recomputes exp(-2u)
// directly with the exact operation sequence of the scalar path, so the
// agreement holds even approaching the aliasing poles s = p + j n w0.
//
// Each kernel below dispatches once per process between the portable
// scalar loops and 4-lane AVX2+FMA variants -- see linalg/simd.hpp for
// the selection policy (compile option, HTMPLL_SIMD env override, CPUID
// probe) and the vector-path accuracy contract.
//
// The layer is pure math: no model knowledge, no allocation (callers
// own the planes), no locking (kernels write only caller-owned output).
#pragma once

#include <cstddef>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

/// AoS complex vector -> split re/im planes.
void split_planes(const cplx* z, std::size_t n, double* re, double* im);

/// Split planes -> AoS complex vector.
void join_planes(const double* re, const double* im, std::size_t n,
                 cplx* z);

/// out = exp(z) elementwise: one real exp + sincos per point.
void batch_cexp(const double* z_re, const double* z_im, std::size_t n,
                double* out_re, double* out_im);

/// Horner evaluation of a dense polynomial (ascending complex
/// coefficients, n_coeff >= 1) over a grid.  The coefficient recursion
/// runs outermost so the inner loops over points are branch-free and
/// autovectorizable.
void batch_horner(const cplx* coeff, std::size_t n_coeff,
                  const double* s_re, const double* s_im, std::size_t n,
                  double* out_re, double* out_im);

/// out = num(s)/den(s) elementwise.  `tmp_re/tmp_im` are caller-owned
/// scratch planes of size n (the denominator evaluation).  Division is
/// the naive conjugate formula with a fallback to std::complex division
/// when |den|^2 leaves the safely representable range.
void batch_rational(const cplx* num, std::size_t n_num, const cplx* den,
                    std::size_t n_den, const double* s_re,
                    const double* s_im, std::size_t n, double* out_re,
                    double* out_im, double* tmp_re, double* tmp_im);

/// One partial-fraction pole term of an aliasing sum, compiled for
/// batched evaluation of sum_k r_k S_k(c (s - p)) with
/// S_k(x) = sum_m 1/(x + j m w0)^k expressed through coth/csch^2 of
/// u = c (s - p), c = pi/w0.
struct PoleSumTerm {
  cplx pole;            ///< p
  cplx exp_pole_t;      ///< exp(p T), T = 2 pi / w0 (used when factored)
  int kmax = 1;         ///< multiplicity; 1..4
  cplx residues[4] = {};  ///< residues[k-1] multiplies S_k
  /// False disables the exp(-sT) exp(pT) factorization for this pole
  /// (set at plan build when exp(p T) would over/underflow) -- every
  /// point then recomputes exp(-2u) directly, exactly like the scalar
  /// path.
  bool factored = true;
};

/// acc += sum_k residues[k-1] S_k(c (s - p)) elementwise over the grid.
/// `e_re/e_im` is the shared exp(-s T) plane (may be null iff
/// term.factored is false).  Accumulation order per point matches the
/// scalar AliasingSum::exact term loop.
void accumulate_pole_sums(const PoleSumTerm& term, double c,
                          const double* s_re, const double* s_im,
                          const double* e_re, const double* e_im,
                          std::size_t n, double* acc_re, double* acc_im);

/// Lockstep step-propagator application for an ensemble of `m` members
/// sharing ONE step length: `x` and `out` are n x m row-major SoA
/// blocks (row i holds state component i of every member), `phi0` is
/// the n x n propagator, `gamma1` its n x 1 input column (null for an
/// autonomous system) and `u0` the per-member held input.  Per member k
/// the operation sequence is exactly StepPropagator::advance_into with
/// u1 == u0 (piecewise-constant input, so the gamma2 term vanishes):
///
///   out(i,k) = sum_j phi0(i,j) x(j,k)       (j ascending)
///   out(i,k) += 0.0 + gamma1(i,0) * u0[k]
///
/// so every member's column is bit-identical to its scalar advance for
/// any m.  The AVX2 variant vectorizes ACROSS members with separate
/// mul/add (never fused), preserving the per-lane sequence.  `out` must
/// not alias `x`.
void batch_step_advance(const double* phi0, const double* gamma1,
                        std::size_t n, const double* x, const double* u0,
                        std::size_t m, double* out);

}  // namespace htmpll

#include "htmpll/linalg/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "htmpll/linalg/batch_kernels_simd.hpp"
#include "htmpll/obs/metrics.hpp"

namespace htmpll::simd {

namespace {

/// HTMPLL_SIMD environment policy: true means "force scalar".
bool env_forces_scalar() {
  const char* e = std::getenv("HTMPLL_SIMD");
  if (e == nullptr || *e == '\0') return false;
  if (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
      std::strcmp(e, "scalar") == 0) {
    return true;
  }
  if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0 ||
      std::strcmp(e, "auto") == 0 || std::strcmp(e, "avx2") == 0) {
    return false;
  }
  std::fprintf(stderr,
               "htmpll: warning: HTMPLL_SIMD='%s' is not recognized "
               "(use 0/off/scalar or 1/on/auto); keeping auto-detection\n",
               e);
  return false;
}

Isa resolve_isa() {
  if (!detail::simd_kernels_compiled()) return Isa::kScalar;
  if (env_forces_scalar()) return Isa::kScalar;
  return cpu_has_avx2_fma() ? Isa::kAvx2Fma : Isa::kScalar;
}

/// Cached dispatch decision.  Encoded as int so the unresolved state
/// (-1) fits alongside the Isa values; relaxed atomics suffice because
/// resolve_isa() is idempotent (racing first calls agree).
std::atomic<int> g_isa{-1};

void record_isa_gauge(Isa isa) {
  obs::gauge("linalg.simd_lane_width")
      .set(static_cast<double>(lane_width(isa)));
}

}  // namespace

bool compiled() { return detail::simd_kernels_compiled(); }

bool cpu_has_avx2_fma() { return detail::simd_cpu_has_avx2_fma(); }

Isa active_isa() {
  int v = g_isa.load(std::memory_order_relaxed);
  if (v < 0) {
    const Isa isa = resolve_isa();
    g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
    record_isa_gauge(isa);
    return isa;
  }
  return static_cast<Isa>(v);
}

void set_isa(Isa isa) {
  if (isa == Isa::kAvx2Fma) {
    if (!compiled()) {
      throw std::invalid_argument(
          "simd::set_isa: AVX2 kernels were not compiled into this build "
          "(configure with -DHTMPLL_SIMD=ON)");
    }
    if (!cpu_has_avx2_fma()) {
      throw std::invalid_argument(
          "simd::set_isa: this CPU does not report AVX2+FMA");
    }
  }
  g_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  record_isa_gauge(isa);
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2Fma:
      return "avx2-fma";
  }
  return "unknown";
}

std::size_t lane_width(Isa isa) {
  return isa == Isa::kAvx2Fma ? 4 : 1;
}

}  // namespace htmpll::simd

// Spectral step propagators: factor the state matrix once, build the
// exact discrete propagator for ANY step length from n scalar
// exponentials.
//
// The transient simulators advance x' = A x + B u(t) exactly between
// charge-pump events with the Van Loan propagator blocks
//
//   Phi(h)    = e^{Ah}
//   Gamma1(h) = h   * phi1(Ah) B     (weight of u0)
//   Gamma2(h) = h^2 * phi2(Ah) B     (weight of (u1-u0)/h)
//
// The seed path rebuilds these per distinct h with a Pade expm of the
// augmented Van Loan matrix -- an O((n+2m)^3) factorization that
// dominated the probe/Monte Carlo sweeps because acquisition transients
// request thousands of irregular step lengths.  This factory instead
// diagonalizes A = V diag(lambda) V^{-1} ONCE and stores the modal
// rank-one projectors P_i = v_i w_i^T and input columns G_i = P_i B;
// each step length then costs n scalar exponentials (routed through the
// batch_cexp SIMD kernel) and an O(n^2)-per-output-block accumulation:
//
//   Phi(h)    = Re sum_i e^{lambda_i h}       P_i
//   Gamma1(h) = Re sum_i h   phi1(lambda_i h) G_i
//   Gamma2(h) = Re sum_i h^2 phi2(lambda_i h) G_i
//
// The scalar phi functions switch to a Taylor series below |z| = 0.5,
// where the direct formulas (e^z - 1)/z ... would cancel.
//
// PLL-specific structure: the phase-augmented state matrix
// [[A_f, 0], [kvco c^T, 0]] carries a DEFECTIVE double eigenvalue at 0
// (theta integrates the filter output, which itself has a pole at
// s = 0), so plain diagonalization is impossible exactly where this
// engine matters most.  The factory detects the trailing zero column
// and factors only the filter block A_f; the theta row of each
// propagator then follows exactly from one more modal phi function:
//
//   Phi_theta    = h   sum_i phi1(lambda_i h) c^T P_i
//   Gamma1_theta = h^2 sum_i phi2(lambda_i h) c^T G_i + h       b_theta
//   Gamma2_theta = h^3 sum_i phi3(lambda_i h) c^T G_i + h^2 / 2 b_theta
//
// Fallback policy: if A (or the filter block) is defective, the QR
// iteration fails, or kappa_inf(V) exceeds `max_condition`, the factory
// silently reverts to the Pade path -- whose output is bit-identical to
// make_propagator, i.e. to the seed.  HTMPLL_SPECTRAL=0 (or
// spectral::set_enabled(false), or TransientConfig::
// use_spectral_propagators = false) forces that path globally.
#pragma once

#include <cstddef>
#include <vector>

#include "htmpll/linalg/expm.hpp"
#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

namespace spectral {

/// Process-wide spectral-propagator switch: HTMPLL_SPECTRAL=0/off/pade
/// disables the modal path (every factory then builds Pade propagators,
/// bit-identical to the seed); 1/on/auto (or unset) enables it.  The
/// environment is read once and cached.
bool enabled();

/// Test/bench pin overriding the environment policy.
void set_enabled(bool on);

}  // namespace spectral

/// Per-(A, B) propagator builder.  Construction factors the system
/// once; make() then builds a StepPropagator for any positive h.
/// Not thread-safe across concurrent make() calls (per-mode scratch is
/// reused), matching the per-integrator ownership of the propagator
/// cache.
class PropagatorFactory {
 public:
  enum class Mode {
    kSpectral,           ///< A itself diagonalized
    kSpectralAugmented,  ///< trailing zero column split off, A_f diagonalized
    kPade,               ///< Van Loan expm per step (seed path)
  };

  /// kappa_inf(V) above which the modal basis is rejected: the
  /// reconstruction error of V f(Lambda) V^{-1} grows like
  /// eps * kappa(V), so 1e6 keeps spectral propagators comfortably
  /// inside the 1e-10 state-agreement contract of the transient bench.
  static constexpr double kDefaultMaxCondition = 1e6;

  /// B may be empty (autonomous system).  `allow_spectral` false forces
  /// Mode::kPade regardless of the global spectral::enabled() switch.
  PropagatorFactory(RMatrix a, RMatrix b, bool allow_spectral = true,
                    double max_condition = kDefaultMaxCondition);

  Mode mode() const { return mode_; }
  /// True when make() uses the modal path.
  bool is_spectral() const { return mode_ != Mode::kPade; }
  /// True when the caller and the global switch both asked for the
  /// modal path (even if the matrix forced a Pade fallback).
  bool spectral_requested() const { return requested_; }
  /// kappa_inf of the factored eigenbasis; +inf on the Pade path.
  double vector_condition() const { return cond_; }
  std::size_t order() const { return a_.rows(); }
  std::size_t inputs() const { return m_; }

  /// Propagator for step length h > 0.  Pade mode is bit-identical to
  /// make_propagator(a, b, h).
  StepPropagator make(double h) const;

  /// Allocation-free variant: builds the same propagator (bit-identical
  /// to make(h)) into `out`, reusing its matrix storage.  On the
  /// spectral path a warm `out` (same order) performs no allocation at
  /// all, which is what makes shared propagator stores cheap enough to
  /// rebuild on every miss.
  void make_into(double h, StepPropagator& out) const;

  /// `want_gamma2 == false` skips the Gamma2 block on the spectral path
  /// (out.gamma2 comes back empty): phi0/gamma1 are bit-identical to
  /// the full build, and consumers with piecewise-constant input
  /// (u1 == u0, i.e. every transient-sim step) never read Gamma2.  The
  /// Pade path ignores the flag and always builds all three blocks.
  void make_into(double h, StepPropagator& out, bool want_gamma2) const;

  /// True when propagate_last_row() is available: phase-augmented modal
  /// factorization with a scalar input.
  bool has_last_row_fast_path() const {
    return mode_ == Mode::kSpectralAugmented && m_ <= 1;
  }

  /// Last (theta) component of phi0(h) x + gamma1(h) u without building
  /// the propagator: the augmented theta row is a modal contraction
  /// (see the header comment), so one batch_cexp plus O(n) accumulation
  /// replaces the O(n^2) build.  Bit-identical to
  /// make(h).advance_into(x, u, u, h, out); out[n-1] -- same kernel,
  /// same mode order, same accumulation order.
  double propagate_last_row(double h, const double* x, double u) const;

 private:
  void try_spectral(double max_condition);
  bool factor_block(const RMatrix& block, double max_condition);
  void make_spectral_into(double h, StepPropagator& out,
                          bool want_gamma2) const;
  /// Gamma2-free build of the phase-augmented scalar-input propagator:
  /// same accumulation order as the generic loop with the row indexing
  /// hoisted to raw pointers, so the output is bit-identical while the
  /// per-entry address math disappears from the ensemble store's
  /// miss-dominated rebuild stream.
  void make_spectral_aug_g2free_into(double h, StepPropagator& out) const;

  RMatrix a_;
  RMatrix b_;
  bool requested_ = false;
  Mode mode_ = Mode::kPade;
  double cond_ = 0.0;

  // Modal data of the factored block (order nf_ = n or n-1).
  std::size_t nf_ = 0;
  std::size_t m_ = 0;
  CVector lambda_;
  std::vector<CMatrix> proj_;    ///< P_i = v_i w_i^T           (nf x nf)
  std::vector<CMatrix> gmode_;   ///< G_i = P_i B_f             (nf x m)
  std::vector<CVector> cproj_;   ///< c^T P_i (augmented only)  (len nf)
  std::vector<CVector> cgmode_;  ///< c^T G_i (augmented only)  (len m)
  RVector btheta_;               ///< last row of B (augmented only)

  // Scratch for the batch_cexp call and the theta-row fast path (see
  // thread-safety note above).
  mutable std::vector<double> zre_, zim_, ere_, eim_, trow_;
};

}  // namespace htmpll

#include "htmpll/linalg/matrix.hpp"

#include <sstream>

namespace htmpll {

template <class T>
std::string DenseMatrix<T>::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (std::size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j);
      if (j + 1 < cols_) os << ", ";
    }
    os << (i + 1 < rows_ ? "],\n" : "]]");
  }
  return os.str();
}

template class DenseMatrix<cplx>;
template class DenseMatrix<double>;

CMatrix outer(const CVector& u, const CVector& v) {
  CMatrix m(u.size(), v.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = 0; j < v.size(); ++j) m(i, j) = u[i] * v[j];
  }
  return m;
}

cplx dot_unconjugated(const CVector& u, const CVector& v) {
  HTMPLL_REQUIRE(u.size() == v.size(), "dot product length mismatch");
  cplx acc{};
  for (std::size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
  return acc;
}

double norm2(const CVector& v) {
  double s = 0.0;
  for (const cplx& x : v) s += std::norm(x);
  return std::sqrt(s);
}

CVector operator+(const CVector& a, const CVector& b) {
  HTMPLL_REQUIRE(a.size() == b.size(), "vector sum length mismatch");
  CVector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

CVector operator-(const CVector& a, const CVector& b) {
  HTMPLL_REQUIRE(a.size() == b.size(), "vector difference length mismatch");
  CVector c(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

CVector operator*(cplx s, CVector v) {
  for (cplx& x : v) x *= s;
  return v;
}

}  // namespace htmpll

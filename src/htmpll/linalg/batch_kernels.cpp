#include "htmpll/linalg/batch_kernels.hpp"

#include <cmath>
#include <complex>

#include "htmpll/util/check.hpp"

namespace htmpll {

void split_planes(const cplx* z, std::size_t n, double* re, double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = z[i].real();
    im[i] = z[i].imag();
  }
}

void join_planes(const double* re, const double* im, std::size_t n,
                 cplx* z) {
  for (std::size_t i = 0; i < n; ++i) z[i] = cplx{re[i], im[i]};
}

void batch_cexp(const double* z_re, const double* z_im, std::size_t n,
                double* out_re, double* out_im) {
  for (std::size_t i = 0; i < n; ++i) {
    const double m = std::exp(z_re[i]);
    out_re[i] = m * std::cos(z_im[i]);
    out_im[i] = m * std::sin(z_im[i]);
  }
}

void batch_horner(const cplx* coeff, std::size_t n_coeff,
                  const double* s_re, const double* s_im, std::size_t n,
                  double* out_re, double* out_im) {
  HTMPLL_ASSERT(n_coeff >= 1);
  const double tr = coeff[n_coeff - 1].real();
  const double ti = coeff[n_coeff - 1].imag();
  for (std::size_t i = 0; i < n; ++i) {
    out_re[i] = tr;
    out_im[i] = ti;
  }
  for (std::size_t k = n_coeff - 1; k-- > 0;) {
    const double cr = coeff[k].real();
    const double ci = coeff[k].imag();
    double* __restrict ar = out_re;
    double* __restrict ai = out_im;
    const double* __restrict xr = s_re;
    const double* __restrict xi = s_im;
    for (std::size_t i = 0; i < n; ++i) {
      const double pr = ar[i];
      const double pi_ = ai[i];
      ar[i] = pr * xr[i] - pi_ * xi[i] + cr;
      ai[i] = pr * xi[i] + pi_ * xr[i] + ci;
    }
  }
}

void batch_rational(const cplx* num, std::size_t n_num, const cplx* den,
                    std::size_t n_den, const double* s_re,
                    const double* s_im, std::size_t n, double* out_re,
                    double* out_im, double* tmp_re, double* tmp_im) {
  batch_horner(num, n_num, s_re, s_im, n, out_re, out_im);
  batch_horner(den, n_den, s_re, s_im, n, tmp_re, tmp_im);
  for (std::size_t i = 0; i < n; ++i) {
    const double nr = out_re[i];
    const double ni = out_im[i];
    const double dr = tmp_re[i];
    const double di = tmp_im[i];
    const double d2 = dr * dr + di * di;
    if (d2 >= 1e-290 && d2 <= 1e290) {
      const double inv = 1.0 / d2;
      out_re[i] = (nr * dr + ni * di) * inv;
      out_im[i] = (ni * dr - nr * di) * inv;
    } else {
      // |den|^2 outside the safely representable range: defer to the
      // scaled std::complex division (matches the scalar path).
      const cplx q = cplx{nr, ni} / cplx{dr, di};
      out_re[i] = q.real();
      out_im[i] = q.imag();
    }
  }
}

namespace {

// The coth/csch^2 building blocks, kept expression-for-expression
// identical to core/aliasing_sum.cpp (stable_coth / stable_csch2): when
// the kernel recomputes exp(-2u) directly, the derived values match the
// scalar path bit for bit.

inline cplx coth_from_e(cplx e) { return (1.0 + e) / (1.0 - e); }

inline cplx csch2_from_e(cplx e) {
  const cplx d = 1.0 - e;
  return 4.0 * e / (d * d);
}

inline cplx coth_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z + z * (1.0 / 3.0 - z2 / 45.0);
}

inline cplx csch2_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z2 - 1.0 / 3.0 + z2 / 15.0;
}

inline bool finite(cplx z) {
  return std::isfinite(z.real()) && std::isfinite(z.imag());
}

}  // namespace

void accumulate_pole_sums(const PoleSumTerm& term, double c,
                          const double* s_re, const double* s_im,
                          const double* e_re, const double* e_im,
                          std::size_t n, double* acc_re, double* acc_im) {
  HTMPLL_ASSERT(term.kmax >= 1 && term.kmax <= 4);
  const cplx p = term.pole;
  const cplx pt = term.exp_pole_t;
  const int kmax = term.kmax;
  const cplx r0 = term.residues[0];
  const cplx r1 = term.residues[1];
  const cplx r2 = term.residues[2];
  const cplx r3 = term.residues[3];
  const double c2 = c * c;
  const double c3 = c * c * c;
  const double c4 = c * c * c * c / 3.0;

  for (std::size_t i = 0; i < n; ++i) {
    const cplx s{s_re[i], s_im[i]};
    const cplx u = c * (s - p);
    cplx ct{0.0};   // coth(u)
    cplx cs2{0.0};  // csch^2(u); computed only when kmax >= 2
    if (std::norm(u) < 1e-6) {
      // |u| < 1e-3 within rounding of the scalar predicate; both sides
      // of the boundary agree to the series truncation error (~1e-15).
      ct = coth_series(u);
      if (kmax >= 2) cs2 = csch2_series(u);
    } else if (u.real() < 0.0) {
      // Rare branch (left of every pole's abscissa): evaluate exactly
      // like the scalar path, exp and all.
      const cplx zp = -u;
      const cplx e2 = std::exp(-2.0 * zp);
      ct = -coth_from_e(e2);
      if (kmax >= 2) cs2 = csch2_from_e(e2);
    } else {
      // Fast path: exp(-2u) = exp(-sT) exp(pT) from the shared plane.
      // Guard the cancellation-sensitive uses (coth pole at e2 = 1,
      // coth zero at e2 = -1) and non-finite products: there, fall back
      // to the scalar operation sequence so the agreement contract
      // holds arbitrarily close to the aliasing poles.
      cplx e2;
      bool direct = !term.factored;
      if (!direct) {
        e2 = cplx{e_re[i], e_im[i]} * pt;
        const cplx d1 = 1.0 - e2;
        const cplx d2 = 1.0 + e2;
        direct = !finite(e2) || std::norm(d1) < 1e-4 ||
                 std::norm(d2) < 1e-4;
      }
      if (direct) e2 = std::exp(-2.0 * u);
      ct = coth_from_e(e2);
      if (kmax >= 2) cs2 = csch2_from_e(e2);
    }
    // S_k assembled with the same expressions as harmonic_pole_sums;
    // accumulation order matches the scalar residue loop.
    cplx acc{acc_re[i], acc_im[i]};
    acc += r0 * (c * ct);
    if (kmax >= 2) acc += r1 * (c2 * cs2);
    if (kmax >= 3) acc += r2 * (c3 * cs2 * ct);
    if (kmax >= 4) acc += r3 * (c4 * (2.0 * cs2 * ct * ct + cs2 * cs2));
    acc_re[i] = acc.real();
    acc_im[i] = acc.imag();
  }
}

}  // namespace htmpll

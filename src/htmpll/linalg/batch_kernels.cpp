#include "htmpll/linalg/batch_kernels.hpp"

#include <cmath>
#include <complex>

#include "htmpll/linalg/batch_kernels_detail.hpp"
#include "htmpll/linalg/batch_kernels_simd.hpp"
#include "htmpll/linalg/simd.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// One-time runtime dispatch decision (linalg/simd.hpp): AVX2 lanes
/// when compiled in, supported by the CPU and not vetoed by
/// HTMPLL_SIMD=0; the portable scalar loops otherwise.
inline bool use_avx2() {
  return simd::active_isa() == simd::Isa::kAvx2Fma;
}

}  // namespace

namespace detail {

void batch_cexp_scalar(const double* z_re, const double* z_im,
                       std::size_t n, double* out_re, double* out_im) {
  for (std::size_t i = 0; i < n; ++i) {
    const double m = std::exp(z_re[i]);
    out_re[i] = m * std::cos(z_im[i]);
    out_im[i] = m * std::sin(z_im[i]);
  }
}

void batch_horner_scalar(const cplx* coeff, std::size_t n_coeff,
                         const double* s_re, const double* s_im,
                         std::size_t n, double* out_re, double* out_im) {
  const double tr = coeff[n_coeff - 1].real();
  const double ti = coeff[n_coeff - 1].imag();
  for (std::size_t i = 0; i < n; ++i) {
    out_re[i] = tr;
    out_im[i] = ti;
  }
  for (std::size_t k = n_coeff - 1; k-- > 0;) {
    const double cr = coeff[k].real();
    const double ci = coeff[k].imag();
    double* __restrict ar = out_re;
    double* __restrict ai = out_im;
    const double* __restrict xr = s_re;
    const double* __restrict xi = s_im;
    for (std::size_t i = 0; i < n; ++i) {
      const double pr = ar[i];
      const double pi_ = ai[i];
      ar[i] = pr * xr[i] - pi_ * xi[i] + cr;
      ai[i] = pr * xi[i] + pi_ * xr[i] + ci;
    }
  }
}

void batch_rational_scalar(const cplx* num, std::size_t n_num,
                           const cplx* den, std::size_t n_den,
                           const double* s_re, const double* s_im,
                           std::size_t n, double* out_re, double* out_im,
                           double* tmp_re, double* tmp_im) {
  batch_horner_scalar(num, n_num, s_re, s_im, n, out_re, out_im);
  batch_horner_scalar(den, n_den, s_re, s_im, n, tmp_re, tmp_im);
  for (std::size_t i = 0; i < n; ++i) {
    rational_div_point(out_re[i], out_im[i], tmp_re[i], tmp_im[i]);
  }
}

void accumulate_pole_sums_scalar(const PoleSumTerm& term, double c,
                                 const double* s_re, const double* s_im,
                                 const double* e_re, const double* e_im,
                                 std::size_t n, double* acc_re,
                                 double* acc_im) {
  const bool factored = term.factored;
  for (std::size_t i = 0; i < n; ++i) {
    const cplx s{s_re[i], s_im[i]};
    const cplx e = factored ? cplx{e_re[i], e_im[i]} : cplx{0.0};
    pole_point_accumulate(term, c, s, e, acc_re[i], acc_im[i]);
  }
}

void batch_step_advance_scalar(const double* phi0, const double* gamma1,
                               std::size_t n, const double* x,
                               const double* u0, std::size_t m,
                               double* out) {
  // Accumulation runs j-outer / member-inner: per member the additions
  // happen in the same ascending-j order as the scalar advance_into
  // register accumulator, so every column is bit-identical to it.
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = phi0 + i * n;
    double* orow = out + i * m;
    for (std::size_t k = 0; k < m; ++k) orow[k] = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double aij = arow[j];
      const double* xrow = x + j * m;
      for (std::size_t k = 0; k < m; ++k) orow[k] += aij * xrow[k];
    }
  }
  if (gamma1 != nullptr) {
    // The leading 0.0 + mirrors advance_into: it keeps a -0.0 product
    // from flipping the sign bit of a -0.0 accumulator entry.
    for (std::size_t i = 0; i < n; ++i) {
      const double gi = gamma1[i];
      double* orow = out + i * m;
      for (std::size_t k = 0; k < m; ++k) orow[k] += 0.0 + gi * u0[k];
    }
  }
}

}  // namespace detail

void split_planes(const cplx* z, std::size_t n, double* re, double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = z[i].real();
    im[i] = z[i].imag();
  }
}

void join_planes(const double* re, const double* im, std::size_t n,
                 cplx* z) {
  for (std::size_t i = 0; i < n; ++i) z[i] = cplx{re[i], im[i]};
}

void batch_cexp(const double* z_re, const double* z_im, std::size_t n,
                double* out_re, double* out_im) {
  if (use_avx2()) {
    detail::batch_cexp_avx2(z_re, z_im, n, out_re, out_im);
  } else {
    detail::batch_cexp_scalar(z_re, z_im, n, out_re, out_im);
  }
}

void batch_horner(const cplx* coeff, std::size_t n_coeff,
                  const double* s_re, const double* s_im, std::size_t n,
                  double* out_re, double* out_im) {
  HTMPLL_ASSERT(n_coeff >= 1);
  if (use_avx2()) {
    detail::batch_horner_avx2(coeff, n_coeff, s_re, s_im, n, out_re,
                              out_im);
  } else {
    detail::batch_horner_scalar(coeff, n_coeff, s_re, s_im, n, out_re,
                                out_im);
  }
}

void batch_rational(const cplx* num, std::size_t n_num, const cplx* den,
                    std::size_t n_den, const double* s_re,
                    const double* s_im, std::size_t n, double* out_re,
                    double* out_im, double* tmp_re, double* tmp_im) {
  HTMPLL_ASSERT(n_num >= 1 && n_den >= 1);
  if (use_avx2()) {
    detail::batch_horner_avx2(num, n_num, s_re, s_im, n, out_re, out_im);
    detail::batch_horner_avx2(den, n_den, s_re, s_im, n, tmp_re, tmp_im);
    detail::batch_complex_div_avx2(n, out_re, out_im, tmp_re, tmp_im);
  } else {
    detail::batch_rational_scalar(num, n_num, den, n_den, s_re, s_im, n,
                                  out_re, out_im, tmp_re, tmp_im);
  }
}

void accumulate_pole_sums(const PoleSumTerm& term, double c,
                          const double* s_re, const double* s_im,
                          const double* e_re, const double* e_im,
                          std::size_t n, double* acc_re, double* acc_im) {
  HTMPLL_ASSERT(term.kmax >= 1 && term.kmax <= 4);
  if (use_avx2()) {
    detail::accumulate_pole_sums_avx2(term, c, s_re, s_im, e_re, e_im, n,
                                      acc_re, acc_im);
  } else {
    detail::accumulate_pole_sums_scalar(term, c, s_re, s_im, e_re, e_im,
                                        n, acc_re, acc_im);
  }
}

void batch_step_advance(const double* phi0, const double* gamma1,
                        std::size_t n, const double* x, const double* u0,
                        std::size_t m, double* out) {
  if (use_avx2()) {
    detail::batch_step_advance_avx2(phi0, gamma1, n, x, u0, m, out);
  } else {
    detail::batch_step_advance_scalar(phi0, gamma1, n, x, u0, m, out);
  }
}

}  // namespace htmpll

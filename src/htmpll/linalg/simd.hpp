// Runtime SIMD dispatch for the structure-of-arrays batch kernels.
//
// The batch kernels (linalg/batch_kernels.hpp) bottom out in complex
// exponentials and complex mul/add chains over dense grids -- exactly
// the shape a vector unit eats.  This header exposes the one-time
// runtime dispatch that selects between
//  * kScalar: the portable loops in batch_kernels.cpp, unchanged from
//    the pre-SIMD kernels (bit-identical to them by construction), and
//  * kAvx2Fma: 4-lane AVX2+FMA kernels (batch_kernels_simd.cpp) with
//    polynomial exp/sincos, selected only when the CPU reports both
//    feature bits.
//
// Selection policy (resolved once, on first use):
//  1. builds configured with -DHTMPLL_SIMD=OFF never compile the vector
//     kernels -- dispatch is pinned to kScalar;
//  2. HTMPLL_SIMD=0 (or "off"/"scalar") in the environment forces
//     kScalar at runtime; any other value keeps auto-detection (an
//     unrecognized value warns to stderr, like HTMPLL_THREADS);
//  3. otherwise the CPUID probe decides.
// Tests and benches may override the resolved ISA with set_isa().
//
// Numerical contract: the scalar kernels are the reference.  The vector
// kernels agree with them to <= 1e-12 relative error on every finite
// grid (in practice ~1e-15); arguments outside the ranges the vector
// polynomials cover (|Re z| > 708, |Im z| > 1e5, non-finite values,
// |den|^2 outside 1e+-290, pole-sum guard regions) are evaluated with
// the exact scalar operation sequence lane by lane, so NaN/Inf
// propagation and the near-pole cancellation guards behave identically
// to the scalar path.  Block tails shorter than the lane width always
// run the scalar loop.
#pragma once

#include <cstddef>

namespace htmpll::simd {

enum class Isa {
  kScalar,   ///< portable loops; the numerical reference
  kAvx2Fma,  ///< 4 x f64 lanes via AVX2 + FMA
};

/// True when the vector kernels were compiled in (HTMPLL_SIMD=ON at
/// configure time on an x86-64 GCC/Clang build).
bool compiled();

/// Raw CPUID probe for AVX2 and FMA, independent of the environment
/// override and of compiled().
bool cpu_has_avx2_fma();

/// The ISA the batch kernels dispatch to.  Resolved once on first call
/// (policy above) and cached; set_isa() replaces the cached value.
Isa active_isa();

/// Overrides the dispatch (tests/benches: force-scalar vs vector
/// comparisons).  Throws std::invalid_argument when asked for a vector
/// ISA that is not compiled in or not supported by this CPU.
void set_isa(Isa isa);

/// Human-readable ISA name: "scalar" / "avx2-fma".
const char* isa_name(Isa isa);

/// f64 lanes per vector op: 1 for kScalar, 4 for kAvx2Fma.
std::size_t lane_width(Isa isa);

}  // namespace htmpll::simd

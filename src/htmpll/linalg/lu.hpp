// LU decomposition with partial pivoting for complex and real dense
// matrices.  Used for the dense (I + G)^-1 reference solve that
// cross-checks the paper's rank-one closed form (eq. 31-34), and for
// state-space manipulations in the time-domain simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "htmpll/linalg/matrix.hpp"

namespace htmpll {

template <class T>
class LuDecomposition {
 public:
  /// Factors PA = LU.  Throws std::invalid_argument if `a` is not square
  /// and std::domain_error if it is numerically singular.
  explicit LuDecomposition(DenseMatrix<T> a);

  std::size_t order() const { return lu_.rows(); }

  /// Solve A x = b for a single right-hand side.
  std::vector<T> solve(std::vector<T> b) const;

  /// Solve A X = B for all columns of B through a transposed-RHS kernel
  /// (each RHS is substituted as one contiguous row).
  DenseMatrix<T> solve(const DenseMatrix<T>& b) const;

  DenseMatrix<T> inverse() const;

  T determinant() const;

  /// Number of row swaps performed (parity gives the sign of det P).
  std::size_t swap_count() const { return swaps_; }

 private:
  /// In-place forward/back substitution of one permuted RHS.
  void substitute(T* x) const;

  DenseMatrix<T> lu_;
  std::vector<std::size_t> perm_;
  std::size_t swaps_ = 0;
};

using CLu = LuDecomposition<cplx>;
using RLu = LuDecomposition<double>;

/// Convenience wrappers.
CMatrix inverse(const CMatrix& a);
RMatrix inverse(const RMatrix& a);
CVector solve(const CMatrix& a, const CVector& b);
RVector solve(const RMatrix& a, const RVector& b);

extern template class LuDecomposition<cplx>;
extern template class LuDecomposition<double>;

}  // namespace htmpll

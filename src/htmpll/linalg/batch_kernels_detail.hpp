// Scalar building blocks shared by the portable batch kernels
// (batch_kernels.cpp) and the guard/fallback lanes of the AVX2 kernels
// (batch_kernels_simd.cpp).
//
// The coth/csch^2 expressions are kept expression-for-expression
// identical to core/aliasing_sum.cpp (stable_coth / stable_csch2): when
// a kernel recomputes exp(-2u) directly, the derived values match the
// scalar aliasing-sum path bit for bit.  Keeping them in ONE header is
// what lets the vector kernels promise scalar-identical behavior on
// their guard lanes.
#pragma once

#include <cmath>
#include <complex>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/matrix.hpp"
#include "htmpll/obs/diag.hpp"

namespace htmpll::detail {

// Portable scalar kernel variants (batch_kernels.cpp) -- the numerical
// reference the runtime dispatch falls back to, and what the SIMD tests
// compare the vector path against.  The public kernels in
// batch_kernels.hpp select between these and the *_avx2 variants
// (batch_kernels_simd.hpp) once per process.

void batch_cexp_scalar(const double* z_re, const double* z_im,
                       std::size_t n, double* out_re, double* out_im);

void batch_horner_scalar(const cplx* coeff, std::size_t n_coeff,
                         const double* s_re, const double* s_im,
                         std::size_t n, double* out_re, double* out_im);

void batch_rational_scalar(const cplx* num, std::size_t n_num,
                           const cplx* den, std::size_t n_den,
                           const double* s_re, const double* s_im,
                           std::size_t n, double* out_re, double* out_im,
                           double* tmp_re, double* tmp_im);

void accumulate_pole_sums_scalar(const PoleSumTerm& term, double c,
                                 const double* s_re, const double* s_im,
                                 const double* e_re, const double* e_im,
                                 std::size_t n, double* acc_re,
                                 double* acc_im);

void batch_step_advance_scalar(const double* phi0, const double* gamma1,
                               std::size_t n, const double* x,
                               const double* u0, std::size_t m,
                               double* out);

inline cplx coth_from_e(cplx e) { return (1.0 + e) / (1.0 - e); }

inline cplx csch2_from_e(cplx e) {
  const cplx d = 1.0 - e;
  return 4.0 * e / (d * d);
}

inline cplx coth_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z + z * (1.0 / 3.0 - z2 / 45.0);
}

inline cplx csch2_series(cplx z) {
  const cplx z2 = z * z;
  return 1.0 / z2 - 1.0 / 3.0 + z2 / 15.0;
}

inline bool cplx_finite(cplx z) {
  return std::isfinite(z.real()) && std::isfinite(z.imag());
}

/// The per-point (coth u, csch^2 u) evaluation of one pole term, with
/// the cancellation guards of the scalar accumulate_pole_sums loop.
/// `e` is the shared exp(-sT) value at this point (ignored when the
/// term is unfactored).  csch^2 is computed only when kmax >= 2.
inline void pole_point_ct_cs2(const PoleSumTerm& term, cplx u, cplx e,
                              cplx& ct, cplx& cs2) {
  const int kmax = term.kmax;
  ct = cplx{0.0};
  cs2 = cplx{0.0};
  if (std::norm(u) < 1e-6) {
    // |u| < 1e-3 within rounding of the scalar predicate; both sides
    // of the boundary agree to the series truncation error (~1e-15).
    ct = coth_series(u);
    if (kmax >= 2) cs2 = csch2_series(u);
  } else if (u.real() < 0.0) {
    // Rare branch (left of every pole's abscissa): evaluate exactly
    // like the scalar path, exp and all.
    const cplx zp = -u;
    const cplx e2 = std::exp(-2.0 * zp);
    ct = -coth_from_e(e2);
    if (kmax >= 2) cs2 = csch2_from_e(e2);
  } else {
    // Fast path: exp(-2u) = exp(-sT) exp(pT) from the shared plane.
    // Guard the cancellation-sensitive uses (coth pole at e2 = 1,
    // coth zero at e2 = -1) and non-finite products: there, fall back
    // to the scalar operation sequence so the agreement contract
    // holds arbitrarily close to the aliasing poles.
    cplx e2;
    bool direct = !term.factored;
    if (!direct) {
      e2 = e * term.exp_pole_t;
      const cplx d1 = 1.0 - e2;
      const cplx d2 = 1.0 + e2;
      direct = !cplx_finite(e2) || std::norm(d1) < 1e-4 ||
               std::norm(d2) < 1e-4;
      if (direct) {
        // A factored term fell back to the direct exp: record how close
        // to the aliasing pole the guard tripped (payload = |1 - e2|^2).
        obs::diag_event(obs::DiagReason::kPlanCancellationRecompute,
                        std::norm(d1));
      }
    }
    if (direct) e2 = std::exp(-2.0 * u);
    ct = coth_from_e(e2);
    if (kmax >= 2) cs2 = csch2_from_e(e2);
  }
}

/// One point of the batch_rational division loop: out = out / den with
/// the naive conjugate formula, deferring to std::complex division when
/// |den|^2 leaves the safely representable range.
inline void rational_div_point(double& out_re, double& out_im,
                               double den_re, double den_im) {
  const double nr = out_re;
  const double ni = out_im;
  const double dr = den_re;
  const double di = den_im;
  const double d2 = dr * dr + di * di;
  if (d2 >= 1e-290 && d2 <= 1e290) {
    const double inv = 1.0 / d2;
    out_re = (nr * dr + ni * di) * inv;
    out_im = (ni * dr - nr * di) * inv;
  } else {
    const cplx q = cplx{nr, ni} / cplx{dr, di};
    out_re = q.real();
    out_im = q.imag();
  }
}

/// One point of the accumulate_pole_sums loop:
/// acc += sum_k residues[k-1] S_k(c (s - p)), with the S_k assembled
/// from (coth, csch^2) exactly like harmonic_pole_sums and accumulated
/// in the scalar residue order.
inline void pole_point_accumulate(const PoleSumTerm& term, double c,
                                  cplx s, cplx e, double& acc_re,
                                  double& acc_im) {
  const cplx u = c * (s - term.pole);
  cplx ct;
  cplx cs2;
  pole_point_ct_cs2(term, u, e, ct, cs2);
  const int kmax = term.kmax;
  const double c2 = c * c;
  const double c3 = c * c * c;
  const double c4 = c * c * c * c / 3.0;
  cplx acc{acc_re, acc_im};
  acc += term.residues[0] * (c * ct);
  if (kmax >= 2) acc += term.residues[1] * (c2 * cs2);
  if (kmax >= 3) acc += term.residues[2] * (c3 * cs2 * ct);
  if (kmax >= 4) {
    acc += term.residues[3] * (c4 * (2.0 * cs2 * ct * ct + cs2 * cs2));
  }
  acc_re = acc.real();
  acc_im = acc.imag();
}

}  // namespace htmpll::detail

#include "htmpll/linalg/eig.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "htmpll/linalg/lu.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

double sign_like(double magnitude, double sign_of) {
  return sign_of >= 0.0 ? std::abs(magnitude) : -std::abs(magnitude);
}

/// In-place Householder reduction to upper Hessenberg form.  The
/// orthogonal factor is discarded: eigenvectors are later recovered by
/// inverse iteration on the *original* matrix, which is both simpler
/// and more accurate than accumulating the similarity transforms.
void hessenberg_reduce(RMatrix& h) {
  const std::size_t n = h.rows();
  if (n < 3) return;
  std::vector<double> v(n, 0.0);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    double norm2_col = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm2_col += h(i, k) * h(i, k);
    if (norm2_col == 0.0) continue;
    double alpha = std::sqrt(norm2_col);
    if (h(k + 1, k) > 0.0) alpha = -alpha;
    v[k + 1] = h(k + 1, k) - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vtv = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vtv += v[i] * v[i];
    if (vtv == 0.0) continue;
    const double beta = 2.0 / vtv;
    // H <- P H with P = I - beta v v^T (rows k+1..n-1).
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * h(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= v[i] * s;
    }
    // H <- H P (columns k+1..n-1).
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) s += h(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= s * v[j];
    }
    h(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = 0.0;
  }
}

/// Francis implicitly shifted double QR on an upper Hessenberg matrix
/// (destroys `h`).  Returns false if any eigenvalue failed to deflate
/// within the per-eigenvalue sweep budget.  Classic hqr organization:
/// deflate from the bottom, exceptional ad-hoc shifts every 10 sweeps.
bool hessenberg_qr(RMatrix& h, CVector& out) {
  const int n = static_cast<int>(h.rows());
  out.assign(static_cast<std::size_t>(n), cplx{0.0, 0.0});
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 1); j < n; ++j) anorm += std::abs(h(i, j));
  }
  if (anorm == 0.0) anorm = 1.0;
  int nn = n - 1;
  double t = 0.0;  // accumulated exceptional-shift offset
  while (nn >= 0) {
    int its = 0;
    int l = 0;
    do {
      for (l = nn; l >= 1; --l) {
        double s = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
        if (s == 0.0) s = anorm;
        if (std::abs(h(l, l - 1)) <= kEps * s) {
          h(l, l - 1) = 0.0;
          break;
        }
      }
      double x = h(nn, nn);
      if (l == nn) {  // 1x1 block deflated
        out[static_cast<std::size_t>(nn)] = cplx{x + t, 0.0};
        --nn;
        break;
      }
      double y = h(nn - 1, nn - 1);
      double w = h(nn, nn - 1) * h(nn - 1, nn);
      if (l == nn - 1) {  // 2x2 block deflated
        double p = 0.5 * (y - x);
        const double q = p * p + w;
        double z = std::sqrt(std::abs(q));
        x += t;
        if (q >= 0.0) {  // real pair
          z = p + sign_like(z, p);
          double lam1 = x + z;
          double lam2 = lam1;
          if (z != 0.0) lam2 = x - w / z;
          out[static_cast<std::size_t>(nn - 1)] = cplx{lam1, 0.0};
          out[static_cast<std::size_t>(nn)] = cplx{lam2, 0.0};
        } else {  // complex conjugate pair, +imag first
          out[static_cast<std::size_t>(nn - 1)] = cplx{x + p, z};
          out[static_cast<std::size_t>(nn)] = cplx{x + p, -z};
        }
        nn -= 2;
        break;
      }
      // No deflation yet: one double QR sweep on rows l..nn.
      if (its == 30) return false;
      if (its == 10 || its == 20) {  // exceptional shift
        t += x;
        for (int i = 0; i <= nn; ++i) h(i, i) -= x;
        const double s =
            std::abs(h(nn, nn - 1)) + std::abs(h(nn - 1, nn - 2));
        y = x = 0.75 * s;
        w = -0.4375 * s * s;
      }
      ++its;
      int m = 0;
      double p = 0.0, q = 0.0, r = 0.0, z = 0.0;
      for (m = nn - 2; m >= l; --m) {
        z = h(m, m);
        r = x - z;
        double s = y - z;
        p = (r * s - w) / h(m + 1, m) + h(m, m + 1);
        q = h(m + 1, m + 1) - z - r - s;
        r = h(m + 2, m + 1);
        s = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s;
        q /= s;
        r /= s;
        if (m == l) break;
        const double u = std::abs(h(m, m - 1)) * (std::abs(q) + std::abs(r));
        const double v = std::abs(p) * (std::abs(h(m - 1, m - 1)) +
                                        std::abs(z) +
                                        std::abs(h(m + 1, m + 1)));
        if (u <= kEps * v) break;
      }
      for (int i = m + 2; i <= nn; ++i) {
        h(i, i - 2) = 0.0;
        if (i != m + 2) h(i, i - 3) = 0.0;
      }
      for (int k = m; k <= nn - 1; ++k) {
        if (k != m) {
          p = h(k, k - 1);
          q = h(k + 1, k - 1);
          r = (k != nn - 1) ? h(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x != 0.0) {
            p /= x;
            q /= x;
            r /= x;
          }
        }
        double s = sign_like(std::sqrt(p * p + q * q + r * r), p);
        if (s == 0.0) continue;
        if (k == m) {
          if (l != m) h(k, k - 1) = -h(k, k - 1);
        } else {
          h(k, k - 1) = -s * x;
        }
        p += s;
        x = p / s;
        double yy = q / s;
        z = r / s;
        q /= p;
        r /= p;
        for (int j = k; j <= nn; ++j) {  // row transform
          double pp = h(k, j) + q * h(k + 1, j);
          if (k != nn - 1) {
            pp += r * h(k + 2, j);
            h(k + 2, j) -= pp * z;
          }
          h(k + 1, j) -= pp * yy;
          h(k, j) -= pp * x;
        }
        const int mmin = std::min(nn, k + 3);
        for (int i = l; i <= mmin; ++i) {  // column transform
          double pp = x * h(i, k) + yy * h(i, k + 1);
          if (k != nn - 1) {
            pp += z * h(i, k + 2);
            h(i, k + 2) -= pp * r;
          }
          h(i, k + 1) -= pp * q;
          h(i, k) -= pp;
        }
      }
    } while (l < nn - 1);
  }
  return true;
}

/// Normalizes a complex vector to unit 2-norm with its largest-modulus
/// component rotated onto the positive real axis.  The phase fix makes
/// the vector deterministic (inverse iteration only defines it up to a
/// complex scale) and keeps eigenvectors of real eigenvalues real.
void normalize_phase(CVector& v) {
  std::size_t imax = 0;
  double amax = -1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double a = std::abs(v[i]);
    if (a > amax) {
      amax = a;
      imax = i;
    }
  }
  if (amax <= 0.0) return;
  const cplx pivot = v[imax] / amax;  // unit-modulus phase
  double nrm2 = 0.0;
  for (const cplx& x : v) nrm2 += std::norm(x);
  const double inv = 1.0 / std::sqrt(nrm2);
  for (cplx& x : v) x = (x / pivot) * inv;
}

/// One right eigenvector of `a` for (approximate) eigenvalue `lam` by
/// inverse iteration with a complex shifted LU.  Exactly singular
/// shifts are perturbed by a growing relative offset until the
/// factorization succeeds.
CVector inverse_iteration_vector(const RMatrix& a, cplx lam, double scale) {
  const std::size_t n = a.rows();
  CMatrix shifted(n, n);
  CVector v(n);
  for (double delta : {0.0, 1e-13, 1e-10, 1e-7}) {
    const cplx mu = lam + cplx{delta * scale, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        shifted(i, j) = cplx{a(i, j), 0.0};
      }
      shifted(i, i) -= mu;
    }
    try {
      const CLu lu(shifted);
      // Deterministic start with unequal components: a flat start can
      // be (nearly) orthogonal to the wanted eigenvector.
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = cplx{1.0 + 0.25 * static_cast<double>(i), 0.0};
      }
      v = lu.solve(std::move(v));
      normalize_phase(v);
      v = lu.solve(std::move(v));
      normalize_phase(v);
      return v;
    } catch (const std::domain_error&) {
      // (A - mu I) numerically singular: retry with a larger shift.
    }
  }
  // Every shift failed (pathological input); return the start vector so
  // the caller's conditioning check rejects the factorization.
  for (std::size_t i = 0; i < n; ++i) v[i] = cplx{1.0, 0.0};
  normalize_phase(v);
  return v;
}

}  // namespace

CVector eigenvalues(const RMatrix& a, bool* converged) {
  HTMPLL_REQUIRE(a.is_square(), "eigenvalues requires a square matrix");
  CVector vals;
  if (a.rows() == 0) {
    if (converged != nullptr) *converged = true;
    return vals;
  }
  RMatrix h = a;
  hessenberg_reduce(h);
  const bool ok = hessenberg_qr(h, vals);
  if (converged != nullptr) *converged = ok;
  return vals;
}

EigenDecomposition eig(const RMatrix& a) {
  static obs::Counter& c_factor = obs::counter("linalg.eig_factorizations");
  c_factor.add();
  HTMPLL_REQUIRE(a.is_square(), "eig requires a square matrix");
  for (double x : a.data()) {
    HTMPLL_REQUIRE(std::isfinite(x), "eig requires finite matrix entries");
  }

  EigenDecomposition d;
  const std::size_t n = a.rows();
  if (n == 0) {
    d.qr_converged = true;
    d.diagonalizable = true;
    d.vector_condition = 1.0;
    return d;
  }

  d.values = eigenvalues(a, &d.qr_converged);
  if (!d.qr_converged) {
    d.vector_condition = std::numeric_limits<double>::infinity();
    return d;
  }

  const double scale = std::max(a.norm_inf(), 1e-300);
  d.vectors = CMatrix(n, n);
  // Twin detection must compare the *unpolished* QR values: the polish
  // below rewrites d.values in place.
  const CVector qr_values = d.values;
  CVector col;
  for (std::size_t idx = 0; idx < n; ++idx) {
    const cplx lam = qr_values[idx];
    const bool is_conjugate_twin =
        idx > 0 && lam.imag() != 0.0 && qr_values[idx - 1] == std::conj(lam);
    if (is_conjugate_twin) {
      for (std::size_t i = 0; i < n; ++i) {
        d.vectors(i, idx) = std::conj(d.vectors(i, idx - 1));
      }
      d.values[idx] = std::conj(d.values[idx - 1]);
      continue;
    }
    col = inverse_iteration_vector(a, lam, scale);
    // Rayleigh-quotient polish: the QR eigenvalue is accurate to
    // ~eps*||A|| absolutely; with the (much more accurate) inverse
    // iteration vector, v^H A v recovers small eigenvalues to full
    // relative precision.
    cplx num{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      cplx av{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) av += a(i, j) * col[j];
      num += std::conj(col[i]) * av;
    }
    // col has unit 2-norm, so the Rayleigh quotient is just `num`.  A
    // real eigenvalue keeps an exactly real polish (its vector is real).
    cplx polished = num;
    if (lam.imag() == 0.0) polished = cplx{num.real(), 0.0};
    d.values[idx] = polished;
    for (std::size_t i = 0; i < n; ++i) d.vectors(i, idx) = col[i];
  }

  // Health gauge: the worst relative eigenpair residual
  // max_k ||A v_k - lambda_k v_k||_inf / ||A||_inf of this
  // factorization.  Computed only while instrumentation records, so the
  // production path pays one relaxed load.
  if (obs::enabled()) {
    double worst = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        cplx av{0.0, 0.0};
        for (std::size_t j = 0; j < n; ++j) av += a(i, j) * d.vectors(j, k);
        worst = std::max(worst,
                         std::abs(av - d.values[k] * d.vectors(i, k)));
      }
    }
    obs::diag_gauge_max(obs::HealthGauge::kMaxEigenpairResidual,
                        worst / scale);
  }

  try {
    d.inverse_vectors = CLu(d.vectors).inverse();
    d.diagonalizable = true;
    d.vector_condition =
        d.vectors.norm_inf() * d.inverse_vectors.norm_inf();
    if (!std::isfinite(d.vector_condition)) {
      d.diagonalizable = false;
      d.vector_condition = std::numeric_limits<double>::infinity();
    }
  } catch (const std::domain_error&) {
    d.diagonalizable = false;
    d.vector_condition = std::numeric_limits<double>::infinity();
  }
  return d;
}

}  // namespace htmpll

#include "htmpll/linalg/spectral.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/eig.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace spectral {

namespace {

/// HTMPLL_SPECTRAL environment policy: true means "force Pade".
bool env_forces_pade() {
  const char* e = std::getenv("HTMPLL_SPECTRAL");
  if (e == nullptr || *e == '\0') return false;
  if (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
      std::strcmp(e, "pade") == 0) {
    return true;
  }
  if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0 ||
      std::strcmp(e, "auto") == 0) {
    return false;
  }
  std::fprintf(stderr,
               "htmpll: warning: HTMPLL_SPECTRAL='%s' is not recognized "
               "(use 0/off/pade or 1/on/auto); keeping spectral "
               "propagators enabled\n",
               e);
  return false;
}

/// Cached policy: -1 unresolved, else 0/1.  Relaxed atomics suffice
/// because the environment read is idempotent.
std::atomic<int> g_enabled{-1};

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_forces_pade() ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace spectral

namespace {

/// phi1..phi3 of one complex argument, given e^z computed elsewhere.
/// Downward the recurrence phi_k = z phi_{k+1} + 1/k! is a stable
/// multiplication; the direct quotients (e^z - 1)/z ... are used only
/// for |z| >= 0.5 where no leading digits cancel.
struct PhiSet {
  cplx phi1, phi2, phi3;
};

PhiSet phi_functions(cplx z, cplx ez) {
  PhiSet p;
  if (std::abs(z) < 0.5) {
    // phi3(z) = sum_{j>=0} z^j / (j+3)!; 16 terms reach full double
    // precision at |z| = 0.5 (0.5^16 / 19! ~ 1e-22).
    static constexpr int kTerms = 16;
    double inv_fact[kTerms + 1];  // 1/(j+3)! for j = 0..kTerms
    double f = 6.0;               // 3!
    for (int j = 0; j <= kTerms; ++j) {
      inv_fact[j] = 1.0 / f;
      f *= static_cast<double>(j + 4);
    }
    cplx acc{0.0, 0.0};
    for (int j = kTerms; j >= 0; --j) acc = acc * z + inv_fact[j];
    p.phi3 = acc;
    p.phi2 = z * p.phi3 + 0.5;
    p.phi1 = z * p.phi2 + 1.0;
  } else {
    p.phi1 = (ez - 1.0) / z;
    p.phi2 = (p.phi1 - 1.0) / z;
    p.phi3 = (p.phi2 - 0.5) / z;
  }
  return p;
}

/// phi1/phi2 only, bit-identical to phi_functions: same branch
/// predicate, same series coefficients (the table below is produced by
/// the identical loop, evaluated once), same downward recurrence.  The
/// theta-row fast path needs no phi3, so the quotient branch saves one
/// complex division and the series table is not rebuilt per call.
struct Phi12 {
  cplx phi1, phi2;
};

/// Branch predicate shared by every phi evaluation below.
/// hypot(x, +-0) == |x| exactly (IEEE 754), so real arguments -- every
/// mode of an overdamped loop filter -- skip the libm hypot call
/// without moving the branch point.
double phi_branch_magnitude(cplx z) {
  return z.imag() == 0.0 ? std::fabs(z.real()) : std::abs(z);
}

/// Series branch (|z| < 0.5).  The loop spells out the exact flop DAG
/// std::complex emits for `acc = acc * z + c` (C99 naive multiply; the
/// NaN-recovery call behind it never fires for the finite modal
/// arguments), so results are bit-identical to the complex Horner while
/// the per-iteration NaN checks disappear.  Does not need e^z, which
/// lets callers skip the exponential entirely on this branch.
static constexpr int kSeriesTerms = 16;
/// 1/(j+3)! for j = 0..kSeriesTerms, the phi_functions table evaluated
/// once.
const std::array<double, kSeriesTerms + 1>& series_inv_fact() {
  static const auto table = [] {
    std::array<double, kSeriesTerms + 1> t{};
    double f = 6.0;  // 3!
    for (int j = 0; j <= kSeriesTerms; ++j) {
      t[static_cast<std::size_t>(j)] = 1.0 / f;
      f *= static_cast<double>(j + 4);
    }
    return t;
  }();
  return table;
}

/// General complex-argument series tail.  noinline on purpose: real
/// modal arguments (every overdamped filter) never reach it, and
/// keeping it out of line leaves the two callers below small enough to
/// inline into the build/theta-row hot loops.
__attribute__((noinline)) Phi12 phi12_series_complex(cplx z) {
  const auto& inv_fact = series_inv_fact();
  const double zr = z.real();
  const double zi = z.imag();
  double ar = 0.0, ai = 0.0;
  for (int j = kSeriesTerms; j >= 0; --j) {
    const double tr = ar * zr - ai * zi;
    ai = ar * zi + ai * zr;
    ar = tr + inv_fact[static_cast<std::size_t>(j)];
  }
  const double p2r = (zr * ar - zi * ai) + 0.5;
  const double p2i = zr * ai + zi * ar;
  const double p1r = (zr * p2r - zi * p2i) + 1.0;
  const double p1i = zr * p2i + zi * p2r;
  return {cplx{p1r, p1i}, cplx{p2r, p2i}};
}

__attribute__((always_inline)) inline Phi12 phi12_series(cplx z) {
  const double zr = z.real();
  const double zi = z.imag();
  if (zi == 0.0 && std::fabs(zr) < 0x1p-60) {
    // Near-zero real argument -- the integrator pole of every
    // phase-augmented loop at any step length.  The Horner reals are
    // pinned: |acc| <= e - 2.5 < 0.25, so |zr * acc| < 2^-62 can move
    // neither 0.5 (half-ulp 2^-55) nor 1.0 (half-ulp 2^-54), and the
    // imaginary lane only shuttles signed zeros (acc.re stays positive:
    // the smallest coefficient 1/19! ~ 8e-18 dominates |zr * acc|).
    // Their closed form: the 17 zero-products alternate sign only for
    // zi = -0 with zr negative.  Bit-identical to the full recurrence
    // (randomized differential coverage in test_spectral), at 1/20 the
    // dependency-chain latency.
    const double ai = (std::signbit(zi) && std::signbit(zr)) ? -0.0 : 0.0;
    const double p2i = zr * ai + zi * 1.0;
    const double p1i = zr * p2i + zi * 0.5;
    return {cplx{1.0, p1i}, cplx{0.5, p2i}};
  }
  if (zi == 0.0) {
    // Real-axis series (every mode of an overdamped filter).  With
    // zi = +-0 the imaginary Horner lane only shuttles signed zeros
    // whose signs are data-independent, and subtracting a signed zero
    // from the nonzero real products changes nothing (the accumulator
    // stays strictly positive: each partial sum lies within 20% of its
    // leading coefficient, and |zr| >= 2^-60 here keeps every product
    // normal), so the real lane collapses to a plain real Horner with
    // the identical rounding sequence.  The final signed zeros keep the
    // closed form of the fast-out above (same odd-count alternation).
    // Bit-identical to the full recurrence (randomized differential
    // coverage in test_spectral) at roughly half the dependency-chain
    // latency.
    const auto& inv_fact = series_inv_fact();
    double a = 0.0;
    for (int j = kSeriesTerms; j >= 0; --j) {
      a = a * zr + inv_fact[static_cast<std::size_t>(j)];
    }
    const double ai = (std::signbit(zi) && std::signbit(zr)) ? -0.0 : 0.0;
    const double p2r = zr * a + 0.5;
    const double p2i = zr * ai + zi * a;
    const double p1r = zr * p2r + 1.0;
    const double p1i = zr * p2i + zi * p2r;
    return {cplx{p1r, p1i}, cplx{p2r, p2i}};
  }
  return phi12_series_complex(z);
}

/// Quotient branch (|z| >= 0.5).  For a real argument (z.imag() a
/// signed zero) the two complex divisions collapse to the |c| >= |d|
/// Smith step of libgcc's __divdc3 with no scaling correction -- the
/// divisor is a normal magnitude in [0.5, |lambda| h] -- which
/// test_spectral pins bitwise against the library division across
/// random arguments.
__attribute__((always_inline)) inline Phi12 phi12_quotient(cplx z, cplx ez) {
  Phi12 p;
  // The isfinite guard keeps an overflowed e^z (both quotient parts
  // NaN) on the library division, whose Annex-G recovery step the
  // shortcut does not reproduce.
  if (z.imag() == 0.0 && std::isfinite(ez.real())) {
    const double c = z.real();
    const double d = z.imag();
    const double ratio = d / c;
    const double a1 = ez.real() - 1.0;
    const double b1 = ez.imag();
    const double denom = c + d * ratio;
    const double p1r = (a1 + b1 * ratio) / denom;
    const double p1i = (b1 - a1 * ratio) / denom;
    const double a2 = p1r - 1.0;
    const double p2r = (a2 + p1i * ratio) / denom;
    const double p2i = (p1i - a2 * ratio) / denom;
    p.phi1 = cplx{p1r, p1i};
    p.phi2 = cplx{p2r, p2i};
  } else {
    p.phi1 = (ez - 1.0) / z;
    p.phi2 = (p.phi1 - 1.0) / z;
  }
  return p;
}

__attribute__((always_inline)) inline Phi12 phi12_functions(cplx z, cplx ez) {
  return phi_branch_magnitude(z) < 0.5 ? phi12_series(z)
                                       : phi12_quotient(z, ez);
}

/// e^{z_k} for the modal arguments, bit-identical to batch_cexp for
/// n < 4, whose scalar tail evaluates libm exp/cos/sin per lane: a lane
/// with a +-0 imaginary part collapses to one exp call, since
/// cos(+-0) == 1 and sin(+-0) == +-0 exactly make m*cos(zi) == m and
/// m*sin(zi) == m*zi for every m = e^{zr} (the inf*0 -> NaN and NaN
/// cases round-trip through the product unchanged).  A |zr| below
/// 2^-60 -- the near-zero integrator pole of every phase-augmented
/// loop, at any step length -- skips even the exp: the argument is
/// under half an ulp of 1, so libm returns round(1 + zr) == 1.0
/// exactly (pinned by randomized differential coverage in
/// test_spectral).  Four or more modes defer to the shared kernel,
/// whose vectorized path is the value reference at that width.
/// Ensemble-exclusive: the scalar chain's full builds keep calling
/// batch_cexp directly.
void modal_cexp(const double* zre, const double* zim, std::size_t n,
                double* ere, double* eim) {
  if (n >= 4) {
    batch_cexp(zre, zim, n, ere, eim);
    return;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double m =
        std::fabs(zre[k]) < 0x1p-60 ? 1.0 : std::exp(zre[k]);
    if (zim[k] == 0.0) {
      ere[k] = m;
      eim[k] = m * zim[k];
    } else {
      ere[k] = m * std::cos(zim[k]);
      eim[k] = m * std::sin(zim[k]);
    }
  }
}

/// acc(i,j) += Re(w * m(i,j)) over the leading rows x cols block.
void accumulate_real(RMatrix& acc, const CMatrix& m, cplx w,
                     std::size_t rows, std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const cplx& v = m(i, j);
      acc(i, j) += w.real() * v.real() - w.imag() * v.imag();
    }
  }
}

}  // namespace

PropagatorFactory::PropagatorFactory(RMatrix a, RMatrix b,
                                     bool allow_spectral,
                                     double max_condition)
    : a_(std::move(a)), b_(std::move(b)) {
  HTMPLL_REQUIRE(a_.is_square(), "PropagatorFactory: A must be square");
  m_ = b_.empty() ? 0 : b_.cols();
  if (m_ > 0) {
    HTMPLL_REQUIRE(b_.rows() == a_.rows(),
                   "PropagatorFactory: B row count mismatch");
  }
  cond_ = std::numeric_limits<double>::infinity();
  requested_ = allow_spectral && spectral::enabled();
  if (requested_ && a_.rows() > 0) try_spectral(max_condition);
}

void PropagatorFactory::try_spectral(double max_condition) {
  const std::size_t n = a_.rows();

  // Phase-augmented structure: a trailing all-zero column means the
  // last state is a pure integral of the others (theta).  Split it off
  // FIRST -- the full matrix then carries a defective repeated
  // eigenvalue whenever the filter block has a pole at s = 0, and a
  // near-defective basis can slip under the condition threshold while
  // reconstructing garbage.
  bool trailing_zero_column = n >= 2;
  for (std::size_t i = 0; i < n && trailing_zero_column; ++i) {
    trailing_zero_column = a_(i, n - 1) == 0.0;
  }

  if (trailing_zero_column) {
    const std::size_t nf = n - 1;
    RMatrix block(nf, nf);
    for (std::size_t i = 0; i < nf; ++i) {
      for (std::size_t j = 0; j < nf; ++j) block(i, j) = a_(i, j);
    }
    if (!factor_block(block, max_condition)) return;
    // Theta-row contractions c^T P_i and c^T G_i.
    cproj_.assign(nf_, CVector(nf_, cplx{0.0, 0.0}));
    cgmode_.assign(nf_, CVector(m_, cplx{0.0, 0.0}));
    for (std::size_t k = 0; k < nf_; ++k) {
      for (std::size_t j = 0; j < nf_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t i = 0; i < nf_; ++i) {
          s += a_(n - 1, i) * proj_[k](i, j);
        }
        cproj_[k][j] = s;
      }
      for (std::size_t j = 0; j < m_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t i = 0; i < nf_; ++i) {
          s += a_(n - 1, i) * gmode_[k](i, j);
        }
        cgmode_[k][j] = s;
      }
    }
    btheta_.assign(m_, 0.0);
    for (std::size_t j = 0; j < m_; ++j) btheta_[j] = b_(n - 1, j);
    mode_ = Mode::kSpectralAugmented;
    return;
  }

  if (factor_block(a_, max_condition)) mode_ = Mode::kSpectral;
}

bool PropagatorFactory::factor_block(const RMatrix& block,
                                     double max_condition) {
  // Above ~1/eps the eigenbasis is numerically defective -- V^{-1}
  // exists in floating point but reconstructs noise -- so the fallback
  // is tagged "defective" rather than merely "ill_conditioned".
  constexpr double kNumericallyDefective = 1e14;

  const EigenDecomposition d = eig(block);
  cond_ = d.vector_condition;
  if (!d.usable(max_condition)) {
    obs::DiagReason reason = obs::DiagReason::kPadeFallbackIllConditioned;
    if (!d.qr_converged) {
      reason = obs::DiagReason::kPadeFallbackNotConverged;
    } else if (!d.diagonalizable || !std::isfinite(cond_) ||
               cond_ > kNumericallyDefective) {
      reason = obs::DiagReason::kPadeFallbackDefective;
    }
    obs::diag_event(reason, cond_);
    return false;
  }
  obs::diag_gauge_max(obs::HealthGauge::kMaxEigenbasisCondition, cond_);

  nf_ = block.rows();
  lambda_ = d.values;
  proj_.assign(nf_, CMatrix(nf_, nf_));
  gmode_.assign(nf_, CMatrix(nf_, m_));
  for (std::size_t k = 0; k < nf_; ++k) {
    // P_k = v_k w_k^T with w_k^T = row k of V^{-1}.
    for (std::size_t i = 0; i < nf_; ++i) {
      const cplx vk = d.vectors(i, k);
      for (std::size_t j = 0; j < nf_; ++j) {
        proj_[k](i, j) = vk * d.inverse_vectors(k, j);
      }
    }
    for (std::size_t i = 0; i < nf_; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t l = 0; l < nf_; ++l) {
          s += proj_[k](i, l) * b_(l, j);
        }
        gmode_[k](i, j) = s;
      }
    }
  }
  for (const auto& p : proj_) {
    for (const cplx& v : p.data()) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        obs::diag_event(obs::DiagReason::kPadeFallbackDefective, cond_);
        return false;
      }
    }
  }
  zre_.resize(nf_);
  zim_.resize(nf_);
  ere_.resize(nf_);
  eim_.resize(nf_);
  trow_.resize(nf_);
  return true;
}

StepPropagator PropagatorFactory::make(double h) const {
  StepPropagator p;
  make_into(h, p);
  return p;
}

void PropagatorFactory::make_into(double h, StepPropagator& out) const {
  make_into(h, out, /*want_gamma2=*/true);
}

void PropagatorFactory::make_into(double h, StepPropagator& out,
                                  bool want_gamma2) const {
  HTMPLL_REQUIRE(h > 0.0, "PropagatorFactory: step must be positive");
  if (mode_ == Mode::kPade) {
    out = make_propagator(a_, b_, h);
    return;
  }
  make_spectral_into(h, out, want_gamma2);
}

void PropagatorFactory::make_spectral_into(double h, StepPropagator& out,
                                           bool want_gamma2) const {
  if (!want_gamma2 && mode_ == Mode::kSpectralAugmented && m_ == 1) {
    make_spectral_aug_g2free_into(h, out);
    return;
  }
  const std::size_t n = a_.rows();
  const bool augmented = mode_ == Mode::kSpectralAugmented;

  // n scalar exponentials through the SIMD batch kernel.  The
  // Gamma2-free (ensemble store) build takes the bit-identical
  // real-argument shortcut; the full build is the preserved scalar
  // chain and keeps the kernel call.
  for (std::size_t k = 0; k < nf_; ++k) {
    zre_[k] = lambda_[k].real() * h;
    zim_[k] = lambda_[k].imag() * h;
  }
  if (want_gamma2) {
    batch_cexp(zre_.data(), zim_.data(), nf_, ere_.data(), eim_.data());
  } else {
    modal_cexp(zre_.data(), zim_.data(), nf_, ere_.data(), eim_.data());
  }

  StepPropagator& p = out;
  p.phi0.assign_zero(n, n);
  if (m_ > 0) {
    p.gamma1.assign_zero(n, m_);
    if (want_gamma2) {
      p.gamma2.assign_zero(n, m_);
    } else {
      p.gamma2 = RMatrix();  // empty, not stale: misuse fails loudly
    }
  } else {
    p.gamma1 = RMatrix();
    p.gamma2 = RMatrix();
  }
  const double h2 = h * h;
  const double h3 = h2 * h;

  for (std::size_t k = 0; k < nf_; ++k) {
    const cplx z{zre_[k], zim_[k]};
    const cplx ez{ere_[k], eim_[k]};
    // phi12_functions is bit-identical on phi1/phi2 and skips the phi3
    // work the Gamma2-free build never uses.
    PhiSet f;
    if (want_gamma2) {
      f = phi_functions(z, ez);
    } else {
      const Phi12 f12 = phi12_functions(z, ez);
      f.phi1 = f12.phi1;
      f.phi2 = f12.phi2;
      f.phi3 = cplx{0.0, 0.0};
    }

    accumulate_real(p.phi0, proj_[k], ez, nf_, nf_);
    if (m_ > 0) {
      accumulate_real(p.gamma1, gmode_[k], h * f.phi1, nf_, m_);
      if (want_gamma2) {
        accumulate_real(p.gamma2, gmode_[k], h2 * f.phi2, nf_, m_);
      }
    }
    if (augmented) {
      const cplx w1 = h * f.phi1;
      for (std::size_t j = 0; j < nf_; ++j) {
        const cplx& v = cproj_[k][j];
        p.phi0(n - 1, j) += w1.real() * v.real() - w1.imag() * v.imag();
      }
      if (m_ > 0) {
        const cplx w2 = h2 * f.phi2;
        const cplx w3 = h3 * f.phi3;
        for (std::size_t j = 0; j < m_; ++j) {
          const cplx& v = cgmode_[k][j];
          p.gamma1(n - 1, j) += w2.real() * v.real() - w2.imag() * v.imag();
          if (want_gamma2) {
            p.gamma2(n - 1, j) += w3.real() * v.real() - w3.imag() * v.imag();
          }
        }
      }
    }
  }
  if (augmented) {
    p.phi0(n - 1, n - 1) = 1.0;  // theta carries itself
    for (std::size_t j = 0; j < m_; ++j) {
      p.gamma1(n - 1, j) += h * btheta_[j];
      if (want_gamma2) p.gamma2(n - 1, j) += 0.5 * h2 * btheta_[j];
    }
  }
}

void PropagatorFactory::make_spectral_aug_g2free_into(
    double h, StepPropagator& out) const {
  const std::size_t n = a_.rows();

  for (std::size_t k = 0; k < nf_; ++k) {
    zre_[k] = lambda_[k].real() * h;
    zim_[k] = lambda_[k].imag() * h;
  }
  modal_cexp(zre_.data(), zim_.data(), nf_, ere_.data(), eim_.data());

  StepPropagator& p = out;
  p.phi0.assign_zero(n, n);
  p.gamma1.assign_zero(n, 1);
  p.gamma2 = RMatrix();  // empty, not stale: misuse fails loudly
  const double h2 = h * h;

  double* trow = p.phi0.row(n - 1);
  double* g1 = p.gamma1.row(0);  // n x 1: column-stride 1, g1[i] = row i
  for (std::size_t k = 0; k < nf_; ++k) {
    const cplx z{zre_[k], zim_[k]};
    const cplx ez{ere_[k], eim_[k]};
    const Phi12 f = phi12_functions(z, ez);
    const double ezr = ez.real();
    const double ezi = ez.imag();
    for (std::size_t i = 0; i < nf_; ++i) {
      double* pr = p.phi0.row(i);
      const cplx* vr = proj_[k].row(i);
      for (std::size_t j = 0; j < nf_; ++j) {
        pr[j] += ezr * vr[j].real() - ezi * vr[j].imag();
      }
    }
    const cplx w1 = h * f.phi1;
    const double w1r = w1.real();
    const double w1i = w1.imag();
    const cplx* gm = gmode_[k].row(0);  // nf x 1, stride 1
    for (std::size_t i = 0; i < nf_; ++i) {
      g1[i] += w1r * gm[i].real() - w1i * gm[i].imag();
    }
    const cplx* cp = cproj_[k].data();
    for (std::size_t j = 0; j < nf_; ++j) {
      trow[j] += w1r * cp[j].real() - w1i * cp[j].imag();
    }
    const cplx w2 = h2 * f.phi2;
    const cplx& v = cgmode_[k][0];
    g1[n - 1] += w2.real() * v.real() - w2.imag() * v.imag();
  }
  trow[n - 1] = 1.0;  // theta carries itself
  g1[n - 1] += h * btheta_[0];
}

double PropagatorFactory::propagate_last_row(double h, const double* x,
                                             double u) const {
  HTMPLL_REQUIRE(h > 0.0, "PropagatorFactory: step must be positive");
  HTMPLL_ASSERT(has_last_row_fast_path());
  const std::size_t n = a_.rows();

  for (std::size_t k = 0; k < nf_; ++k) {
    zre_[k] = lambda_[k].real() * h;
    zim_[k] = lambda_[k].imag() * h;
  }
  const bool lazy_exp = nf_ < 4;
  if (!lazy_exp) {
    // At four or more modes batch_cexp's vectorized path is the value
    // reference, so every lane must go through the one kernel call.
    modal_cexp(zre_.data(), zim_.data(), nf_, ere_.data(), eim_.data());
  }

  // Theta row of phi0 and gamma1, accumulated mode by mode in the same
  // order as make_spectral_into (starting from the assign_zero +0.0).
  const double h2 = h * h;
  double* row = trow_.data();
  for (std::size_t j = 0; j < nf_; ++j) row[j] = 0.0;
  double g1 = 0.0;
  for (std::size_t k = 0; k < nf_; ++k) {
    const cplx z{zre_[k], zim_[k]};
    Phi12 f;
    if (lazy_exp) {
      // Below four modes the reference e^z is the per-lane libm scalar
      // tail, and the series branch never reads it: the exponential is
      // evaluated only on the quotient branch.  Slow modes (|z| < 0.5,
      // e.g. the near-zero integrator pole at every sampling offset)
      // skip libm entirely.
      if (phi_branch_magnitude(z) < 0.5) {
        f = phi12_series(z);
      } else {
        const double m = std::exp(zre_[k]);
        const cplx ez = zim_[k] == 0.0
                            ? cplx{m, m * zim_[k]}
                            : cplx{m * std::cos(zim_[k]),
                                   m * std::sin(zim_[k])};
        f = phi12_quotient(z, ez);
      }
    } else {
      f = phi12_functions(z, {ere_[k], eim_[k]});
    }
    const cplx w1 = h * f.phi1;
    for (std::size_t j = 0; j < nf_; ++j) {
      const cplx& v = cproj_[k][j];
      row[j] += w1.real() * v.real() - w1.imag() * v.imag();
    }
    if (m_ > 0) {
      const cplx w2 = h2 * f.phi2;
      const cplx& v = cgmode_[k][0];
      g1 += w2.real() * v.real() - w2.imag() * v.imag();
    }
  }

  // advance_into's row n-1: zero-seeded dot over all n columns (the
  // theta diagonal entry is exactly 1.0), then the 0.0 + gamma1 * u0
  // term guarded exactly like the full kernel.
  double acc = 0.0;
  for (std::size_t j = 0; j < nf_; ++j) acc += row[j] * x[j];
  acc += 1.0 * x[n - 1];
  if (m_ > 0) {
    g1 += h * btheta_[0];
    acc += 0.0 + g1 * u;
  }
  return acc;
}

}  // namespace htmpll

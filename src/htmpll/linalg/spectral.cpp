#include "htmpll/linalg/spectral.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/linalg/eig.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace spectral {

namespace {

/// HTMPLL_SPECTRAL environment policy: true means "force Pade".
bool env_forces_pade() {
  const char* e = std::getenv("HTMPLL_SPECTRAL");
  if (e == nullptr || *e == '\0') return false;
  if (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0 ||
      std::strcmp(e, "pade") == 0) {
    return true;
  }
  if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0 ||
      std::strcmp(e, "auto") == 0) {
    return false;
  }
  std::fprintf(stderr,
               "htmpll: warning: HTMPLL_SPECTRAL='%s' is not recognized "
               "(use 0/off/pade or 1/on/auto); keeping spectral "
               "propagators enabled\n",
               e);
  return false;
}

/// Cached policy: -1 unresolved, else 0/1.  Relaxed atomics suffice
/// because the environment read is idempotent.
std::atomic<int> g_enabled{-1};

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_forces_pade() ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace spectral

namespace {

/// phi1..phi3 of one complex argument, given e^z computed elsewhere.
/// Downward the recurrence phi_k = z phi_{k+1} + 1/k! is a stable
/// multiplication; the direct quotients (e^z - 1)/z ... are used only
/// for |z| >= 0.5 where no leading digits cancel.
struct PhiSet {
  cplx phi1, phi2, phi3;
};

PhiSet phi_functions(cplx z, cplx ez) {
  PhiSet p;
  if (std::abs(z) < 0.5) {
    // phi3(z) = sum_{j>=0} z^j / (j+3)!; 16 terms reach full double
    // precision at |z| = 0.5 (0.5^16 / 19! ~ 1e-22).
    static constexpr int kTerms = 16;
    double inv_fact[kTerms + 1];  // 1/(j+3)! for j = 0..kTerms
    double f = 6.0;               // 3!
    for (int j = 0; j <= kTerms; ++j) {
      inv_fact[j] = 1.0 / f;
      f *= static_cast<double>(j + 4);
    }
    cplx acc{0.0, 0.0};
    for (int j = kTerms; j >= 0; --j) acc = acc * z + inv_fact[j];
    p.phi3 = acc;
    p.phi2 = z * p.phi3 + 0.5;
    p.phi1 = z * p.phi2 + 1.0;
  } else {
    p.phi1 = (ez - 1.0) / z;
    p.phi2 = (p.phi1 - 1.0) / z;
    p.phi3 = (p.phi2 - 0.5) / z;
  }
  return p;
}

/// acc(i,j) += Re(w * m(i,j)) over the leading rows x cols block.
void accumulate_real(RMatrix& acc, const CMatrix& m, cplx w,
                     std::size_t rows, std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const cplx& v = m(i, j);
      acc(i, j) += w.real() * v.real() - w.imag() * v.imag();
    }
  }
}

}  // namespace

PropagatorFactory::PropagatorFactory(RMatrix a, RMatrix b,
                                     bool allow_spectral,
                                     double max_condition)
    : a_(std::move(a)), b_(std::move(b)) {
  HTMPLL_REQUIRE(a_.is_square(), "PropagatorFactory: A must be square");
  m_ = b_.empty() ? 0 : b_.cols();
  if (m_ > 0) {
    HTMPLL_REQUIRE(b_.rows() == a_.rows(),
                   "PropagatorFactory: B row count mismatch");
  }
  cond_ = std::numeric_limits<double>::infinity();
  requested_ = allow_spectral && spectral::enabled();
  if (requested_ && a_.rows() > 0) try_spectral(max_condition);
}

void PropagatorFactory::try_spectral(double max_condition) {
  const std::size_t n = a_.rows();

  // Phase-augmented structure: a trailing all-zero column means the
  // last state is a pure integral of the others (theta).  Split it off
  // FIRST -- the full matrix then carries a defective repeated
  // eigenvalue whenever the filter block has a pole at s = 0, and a
  // near-defective basis can slip under the condition threshold while
  // reconstructing garbage.
  bool trailing_zero_column = n >= 2;
  for (std::size_t i = 0; i < n && trailing_zero_column; ++i) {
    trailing_zero_column = a_(i, n - 1) == 0.0;
  }

  if (trailing_zero_column) {
    const std::size_t nf = n - 1;
    RMatrix block(nf, nf);
    for (std::size_t i = 0; i < nf; ++i) {
      for (std::size_t j = 0; j < nf; ++j) block(i, j) = a_(i, j);
    }
    if (!factor_block(block, max_condition)) return;
    // Theta-row contractions c^T P_i and c^T G_i.
    cproj_.assign(nf_, CVector(nf_, cplx{0.0, 0.0}));
    cgmode_.assign(nf_, CVector(m_, cplx{0.0, 0.0}));
    for (std::size_t k = 0; k < nf_; ++k) {
      for (std::size_t j = 0; j < nf_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t i = 0; i < nf_; ++i) {
          s += a_(n - 1, i) * proj_[k](i, j);
        }
        cproj_[k][j] = s;
      }
      for (std::size_t j = 0; j < m_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t i = 0; i < nf_; ++i) {
          s += a_(n - 1, i) * gmode_[k](i, j);
        }
        cgmode_[k][j] = s;
      }
    }
    btheta_.assign(m_, 0.0);
    for (std::size_t j = 0; j < m_; ++j) btheta_[j] = b_(n - 1, j);
    mode_ = Mode::kSpectralAugmented;
    return;
  }

  if (factor_block(a_, max_condition)) mode_ = Mode::kSpectral;
}

bool PropagatorFactory::factor_block(const RMatrix& block,
                                     double max_condition) {
  // Above ~1/eps the eigenbasis is numerically defective -- V^{-1}
  // exists in floating point but reconstructs noise -- so the fallback
  // is tagged "defective" rather than merely "ill_conditioned".
  constexpr double kNumericallyDefective = 1e14;

  const EigenDecomposition d = eig(block);
  cond_ = d.vector_condition;
  if (!d.usable(max_condition)) {
    obs::DiagReason reason = obs::DiagReason::kPadeFallbackIllConditioned;
    if (!d.qr_converged) {
      reason = obs::DiagReason::kPadeFallbackNotConverged;
    } else if (!d.diagonalizable || !std::isfinite(cond_) ||
               cond_ > kNumericallyDefective) {
      reason = obs::DiagReason::kPadeFallbackDefective;
    }
    obs::diag_event(reason, cond_);
    return false;
  }
  obs::diag_gauge_max(obs::HealthGauge::kMaxEigenbasisCondition, cond_);

  nf_ = block.rows();
  lambda_ = d.values;
  proj_.assign(nf_, CMatrix(nf_, nf_));
  gmode_.assign(nf_, CMatrix(nf_, m_));
  for (std::size_t k = 0; k < nf_; ++k) {
    // P_k = v_k w_k^T with w_k^T = row k of V^{-1}.
    for (std::size_t i = 0; i < nf_; ++i) {
      const cplx vk = d.vectors(i, k);
      for (std::size_t j = 0; j < nf_; ++j) {
        proj_[k](i, j) = vk * d.inverse_vectors(k, j);
      }
    }
    for (std::size_t i = 0; i < nf_; ++i) {
      for (std::size_t j = 0; j < m_; ++j) {
        cplx s{0.0, 0.0};
        for (std::size_t l = 0; l < nf_; ++l) {
          s += proj_[k](i, l) * b_(l, j);
        }
        gmode_[k](i, j) = s;
      }
    }
  }
  for (const auto& p : proj_) {
    for (const cplx& v : p.data()) {
      if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
        obs::diag_event(obs::DiagReason::kPadeFallbackDefective, cond_);
        return false;
      }
    }
  }
  zre_.resize(nf_);
  zim_.resize(nf_);
  ere_.resize(nf_);
  eim_.resize(nf_);
  return true;
}

StepPropagator PropagatorFactory::make(double h) const {
  HTMPLL_REQUIRE(h > 0.0, "PropagatorFactory: step must be positive");
  if (mode_ == Mode::kPade) return make_propagator(a_, b_, h);
  return make_spectral(h);
}

StepPropagator PropagatorFactory::make_spectral(double h) const {
  const std::size_t n = a_.rows();
  const bool augmented = mode_ == Mode::kSpectralAugmented;

  // n scalar exponentials through the SIMD batch kernel.
  for (std::size_t k = 0; k < nf_; ++k) {
    zre_[k] = lambda_[k].real() * h;
    zim_[k] = lambda_[k].imag() * h;
  }
  batch_cexp(zre_.data(), zim_.data(), nf_, ere_.data(), eim_.data());

  StepPropagator p;
  p.phi0 = RMatrix(n, n);
  if (m_ > 0) {
    p.gamma1 = RMatrix(n, m_);
    p.gamma2 = RMatrix(n, m_);
  }
  const double h2 = h * h;
  const double h3 = h2 * h;

  for (std::size_t k = 0; k < nf_; ++k) {
    const cplx z{zre_[k], zim_[k]};
    const cplx ez{ere_[k], eim_[k]};
    const PhiSet f = phi_functions(z, ez);

    accumulate_real(p.phi0, proj_[k], ez, nf_, nf_);
    if (m_ > 0) {
      accumulate_real(p.gamma1, gmode_[k], h * f.phi1, nf_, m_);
      accumulate_real(p.gamma2, gmode_[k], h2 * f.phi2, nf_, m_);
    }
    if (augmented) {
      const cplx w1 = h * f.phi1;
      for (std::size_t j = 0; j < nf_; ++j) {
        const cplx& v = cproj_[k][j];
        p.phi0(n - 1, j) += w1.real() * v.real() - w1.imag() * v.imag();
      }
      if (m_ > 0) {
        const cplx w2 = h2 * f.phi2;
        const cplx w3 = h3 * f.phi3;
        for (std::size_t j = 0; j < m_; ++j) {
          const cplx& v = cgmode_[k][j];
          p.gamma1(n - 1, j) += w2.real() * v.real() - w2.imag() * v.imag();
          p.gamma2(n - 1, j) += w3.real() * v.real() - w3.imag() * v.imag();
        }
      }
    }
  }
  if (augmented) {
    p.phi0(n - 1, n - 1) = 1.0;  // theta carries itself
    for (std::size_t j = 0; j < m_; ++j) {
      p.gamma1(n - 1, j) += h * btheta_[j];
      p.gamma2(n - 1, j) += 0.5 * h2 * btheta_[j];
    }
  }
  return p;
}

}  // namespace htmpll

// AVX2+FMA variants of the SoA batch kernels.
//
// Compiled for the baseline ISA with per-function target("avx2,fma")
// attributes, so the library links and runs everywhere; the vector code
// paths execute only after the runtime dispatch (linalg/simd.hpp)
// confirms the CPU feature bits.
//
// Transcendental kernels are polynomial:
//  * vexp: round-to-nearest base-2 range reduction (two-step Cody-Waite
//    ln2 split), degree-11 Taylor on |r| <= ln2/2 (truncation ~7e-15
//    relative), exponent reassembly through the IEEE-754 bit layout.
//    Valid for |x| <= 708 -- the entire normal range of exp.
//  * vsincos: reduction by pi/2 (three-step Cody-Waite, exact products
//    for |n| < 2^19), Cephes minimax polynomials on |r| <= pi/4
//    (~1 ulp), quadrant fix-up via integer masks.  Valid for
//    |x| <= 1e5; larger reductions would need a wider n than the
//    33-bit constant split keeps exact.
//
// Any lane outside these ranges -- and any non-finite input -- routes
// its whole 4-lane block through the exact scalar operation sequence
// (batch_kernels_detail.hpp), so NaN/Inf propagation, subnormal
// handling and the pole-sum cancellation guards match the scalar
// kernels exactly.  Tails shorter than the lane width are scalar too.
#include "htmpll/linalg/batch_kernels_simd.hpp"

#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>

#include "htmpll/linalg/batch_kernels_detail.hpp"
#include "htmpll/obs/diag.hpp"

#if defined(HTMPLL_SIMD_COMPILED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define HTMPLL_SIMD_X86 1
#include <immintrin.h>
#else
#define HTMPLL_SIMD_X86 0
#endif

namespace htmpll::detail {

#if HTMPLL_SIMD_X86

#define HTMPLL_TGT __attribute__((target("avx2,fma")))

namespace {

/// Largest |Im z| the vector sincos reduction covers; beyond it the
/// block falls back to scalar libm.
constexpr double kSinCosRange = 1.0e5;
/// Largest |Re z| the vector exp covers (the full normal range).
constexpr double kExpRange = 708.0;

HTMPLL_TGT inline __m256d vabs(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/// exp(x) for finite |x| <= kExpRange (caller-filtered).
HTMPLL_TGT inline __m256d vexp(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
  r = _mm256_fnmadd_pd(n, ln2_lo, r);
  // Degree-11 Taylor of e^r on |r| <= ln2/2 (Horner, FMA).
  __m256d p = _mm256_set1_pd(1.0 / 39916800.0);  // 1/11!
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
  // Scale by 2^n: |x| <= 708 keeps n in [-1021, 1022], the biased
  // exponent in the normal range -- no subnormal assembly needed.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i bits =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
}

/// sin(x) and cos(x) for finite |x| <= kSinCosRange (caller-filtered).
HTMPLL_TGT inline void vsincos(__m256d x, __m256d& sin_x, __m256d& cos_x) {
  const __m256d two_over_pi = _mm256_set1_pd(0.63661977236758134308);
  // fdlibm's three-double split of pi/2 (33 significant bits each).
  const __m256d pio2_1 = _mm256_set1_pd(1.57079632673412561417e+00);
  const __m256d pio2_2 = _mm256_set1_pd(6.07710050630396597660e-11);
  const __m256d pio2_3 = _mm256_set1_pd(2.02226624871116645580e-21);
  const __m256d n = _mm256_round_pd(
      _mm256_mul_pd(x, two_over_pi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, pio2_1, x);
  r = _mm256_fnmadd_pd(n, pio2_2, r);
  r = _mm256_fnmadd_pd(n, pio2_3, r);
  const __m256d z = _mm256_mul_pd(r, r);
  // Cephes sin: r + r^3 P(r^2), |r| <= pi/4.
  __m256d ps = _mm256_set1_pd(1.58962301576546568060e-10);
  ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(-2.50507477628578072866e-8));
  ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(2.75573136213857245213e-6));
  ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(-1.98412698295895385996e-4));
  ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(8.33333333332211858878e-3));
  ps = _mm256_fmadd_pd(ps, z, _mm256_set1_pd(-1.66666666666666307295e-1));
  const __m256d sin_r =
      _mm256_fmadd_pd(_mm256_mul_pd(ps, z), r, r);
  // Cephes cos: 1 - z/2 + z^2 Q(z).
  __m256d pc = _mm256_set1_pd(-1.13585365213876817300e-11);
  pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(2.08757008419747316778e-9));
  pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(-2.75573141792967388112e-7));
  pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(2.48015872888517179954e-5));
  pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(-1.38888888888730564116e-3));
  pc = _mm256_fmadd_pd(pc, z, _mm256_set1_pd(4.16666666666665929218e-2));
  __m256d cos_r = _mm256_fmadd_pd(
      pc, _mm256_mul_pd(z, z),
      _mm256_fnmadd_pd(z, _mm256_set1_pd(0.5), _mm256_set1_pd(1.0)));
  // Quadrant fix-up: x = n pi/2 + r, q = n mod 4.
  //   q=0: (sin_r,  cos_r)   q=1: ( cos_r, -sin_r)
  //   q=2: (-sin_r, -cos_r)  q=3: (-cos_r,  sin_r)
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i q = _mm256_and_si256(_mm256_cvtepi32_epi64(n32),
                                     _mm256_set1_epi64x(3));
  const __m256i one64 = _mm256_set1_epi64x(1);
  const __m256i two64 = _mm256_set1_epi64x(2);
  const __m256d swap = _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(_mm256_and_si256(q, one64), one64));
  const __m256d flip_sin = _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(_mm256_and_si256(q, two64), two64));
  const __m256d flip_cos = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(_mm256_add_epi64(q, one64), two64), two64));
  const __m256d neg_zero = _mm256_set1_pd(-0.0);
  sin_x = _mm256_blendv_pd(sin_r, cos_r, swap);
  sin_x = _mm256_xor_pd(sin_x, _mm256_and_pd(flip_sin, neg_zero));
  cos_x = _mm256_blendv_pd(cos_r, sin_r, swap);
  cos_x = _mm256_xor_pd(cos_x, _mm256_and_pd(flip_cos, neg_zero));
}

/// One point of the scalar cexp loop -- the exact op sequence of
/// batch_cexp_scalar, used for out-of-range/non-finite lanes.
inline void scalar_cexp_point(double zr, double zi, double& out_re,
                              double& out_im) {
  const double m = std::exp(zr);
  out_re = m * std::cos(zi);
  out_im = m * std::sin(zi);
}

}  // namespace

bool simd_kernels_compiled() { return true; }

bool simd_cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

HTMPLL_TGT void batch_cexp_avx2(const double* z_re, const double* z_im,
                                std::size_t n, double* out_re,
                                double* out_im) {
  const __m256d re_max = _mm256_set1_pd(kExpRange);
  const __m256d im_max = _mm256_set1_pd(kSinCosRange);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d zr = _mm256_loadu_pd(z_re + i);
    const __m256d zi = _mm256_loadu_pd(z_im + i);
    // NaN compares false, so non-finite lanes fail the range test too.
    const __m256d ok =
        _mm256_and_pd(_mm256_cmp_pd(vabs(zr), re_max, _CMP_LE_OQ),
                      _mm256_cmp_pd(vabs(zi), im_max, _CMP_LE_OQ));
    const int ok_mask = _mm256_movemask_pd(ok);
    if (ok_mask != 0xF) {
      if (obs::enabled()) {
        // Tag the whole-block bailout with why its lanes failed:
        // non-finite input beats merely out-of-range when both occur.
        bool non_finite = false;
        for (std::size_t j = i; j < i + 4; ++j) {
          non_finite = non_finite || !std::isfinite(z_re[j]) ||
                       !std::isfinite(z_im[j]);
        }
        obs::diag_event(non_finite
                            ? obs::DiagReason::kSimdBailoutNonFinite
                            : obs::DiagReason::kSimdBailoutOutOfRange,
                        static_cast<double>(
                            4 - __builtin_popcount(ok_mask & 0xF)));
      }
      for (std::size_t j = i; j < i + 4; ++j) {
        scalar_cexp_point(z_re[j], z_im[j], out_re[j], out_im[j]);
      }
      continue;
    }
    const __m256d m = vexp(zr);
    __m256d s, c;
    vsincos(zi, s, c);
    _mm256_storeu_pd(out_re + i, _mm256_mul_pd(m, c));
    _mm256_storeu_pd(out_im + i, _mm256_mul_pd(m, s));
  }
  for (; i < n; ++i) {
    scalar_cexp_point(z_re[i], z_im[i], out_re[i], out_im[i]);
  }
}

HTMPLL_TGT void batch_horner_avx2(const cplx* coeff, std::size_t n_coeff,
                                  const double* s_re, const double* s_im,
                                  std::size_t n, double* out_re,
                                  double* out_im) {
  const double tr = coeff[n_coeff - 1].real();
  const double ti = coeff[n_coeff - 1].imag();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xr = _mm256_loadu_pd(s_re + i);
    const __m256d xi = _mm256_loadu_pd(s_im + i);
    __m256d ar = _mm256_set1_pd(tr);
    __m256d ai = _mm256_set1_pd(ti);
    for (std::size_t k = n_coeff - 1; k-- > 0;) {
      const __m256d cr = _mm256_set1_pd(coeff[k].real());
      const __m256d ci = _mm256_set1_pd(coeff[k].imag());
      const __m256d pr = ar;
      const __m256d pi_ = ai;
      // a = a*x + c, componentwise with FMA.
      ar = _mm256_fmadd_pd(pr, xr, _mm256_fnmadd_pd(pi_, xi, cr));
      ai = _mm256_fmadd_pd(pr, xi, _mm256_fmadd_pd(pi_, xr, ci));
    }
    _mm256_storeu_pd(out_re + i, ar);
    _mm256_storeu_pd(out_im + i, ai);
  }
  for (; i < n; ++i) {
    double ar = tr;
    double ai = ti;
    for (std::size_t k = n_coeff - 1; k-- > 0;) {
      const double pr = ar;
      const double pi_ = ai;
      ar = pr * s_re[i] - pi_ * s_im[i] + coeff[k].real();
      ai = pr * s_im[i] + pi_ * s_re[i] + coeff[k].imag();
    }
    out_re[i] = ar;
    out_im[i] = ai;
  }
}

HTMPLL_TGT void batch_complex_div_avx2(std::size_t n, double* out_re,
                                       double* out_im, const double* den_re,
                                       const double* den_im) {
  const __m256d lo = _mm256_set1_pd(1e-290);
  const __m256d hi = _mm256_set1_pd(1e290);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d nr = _mm256_loadu_pd(out_re + i);
    const __m256d ni = _mm256_loadu_pd(out_im + i);
    const __m256d dr = _mm256_loadu_pd(den_re + i);
    const __m256d di = _mm256_loadu_pd(den_im + i);
    const __m256d d2 = _mm256_fmadd_pd(dr, dr, _mm256_mul_pd(di, di));
    // Out-of-range or NaN |den|^2 lanes defer to std::complex division,
    // exactly like the scalar loop.
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(d2, lo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(d2, hi, _CMP_LE_OQ));
    const int ok_mask = _mm256_movemask_pd(ok);
    if (ok_mask != 0xF) {
      obs::diag_event(
          obs::DiagReason::kSimdBailoutGuardTrip,
          static_cast<double>(4 - __builtin_popcount(ok_mask & 0xF)));
      for (std::size_t j = i; j < i + 4; ++j) {
        rational_div_point(out_re[j], out_im[j], den_re[j], den_im[j]);
      }
      continue;
    }
    const __m256d inv = _mm256_div_pd(one, d2);
    const __m256d qr = _mm256_mul_pd(
        _mm256_fmadd_pd(nr, dr, _mm256_mul_pd(ni, di)), inv);
    const __m256d qi = _mm256_mul_pd(
        _mm256_fnmadd_pd(nr, di, _mm256_mul_pd(ni, dr)), inv);
    _mm256_storeu_pd(out_re + i, qr);
    _mm256_storeu_pd(out_im + i, qi);
  }
  for (; i < n; ++i) {
    rational_div_point(out_re[i], out_im[i], den_re[i], den_im[i]);
  }
}

HTMPLL_TGT void accumulate_pole_sums_avx2(const PoleSumTerm& term, double c,
                                          const double* s_re,
                                          const double* s_im,
                                          const double* e_re,
                                          const double* e_im, std::size_t n,
                                          double* acc_re, double* acc_im) {
  if (!term.factored) {
    // No shared exp(-sT) plane to build on (exp(pT) over/underflowed at
    // plan build): every point recomputes exp(-2u) -- the scalar path.
    for (std::size_t i = 0; i < n; ++i) {
      pole_point_accumulate(term, c, cplx{s_re[i], s_im[i]}, cplx{0.0},
                            acc_re[i], acc_im[i]);
    }
    return;
  }
  const int kmax = term.kmax;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d four = _mm256_set1_pd(4.0);
  const __m256d dmax = _mm256_set1_pd(std::numeric_limits<double>::max());
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vc2 = _mm256_set1_pd(c * c);
  const __m256d vc3 = _mm256_set1_pd(c * c * c);
  const __m256d vc4 = _mm256_set1_pd(c * c * c * c / 3.0);
  const __m256d ppr = _mm256_set1_pd(term.pole.real());
  const __m256d ppi = _mm256_set1_pd(term.pole.imag());
  const __m256d ptr = _mm256_set1_pd(term.exp_pole_t.real());
  const __m256d pti = _mm256_set1_pd(term.exp_pole_t.imag());
  const __m256d r0r = _mm256_set1_pd(term.residues[0].real());
  const __m256d r0i = _mm256_set1_pd(term.residues[0].imag());
  const __m256d r1r = _mm256_set1_pd(term.residues[1].real());
  const __m256d r1i = _mm256_set1_pd(term.residues[1].imag());
  const __m256d r2r = _mm256_set1_pd(term.residues[2].real());
  const __m256d r2i = _mm256_set1_pd(term.residues[2].imag());
  const __m256d r3r = _mm256_set1_pd(term.residues[3].real());
  const __m256d r3i = _mm256_set1_pd(term.residues[3].imag());

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d sr = _mm256_loadu_pd(s_re + i);
    const __m256d si = _mm256_loadu_pd(s_im + i);
    const __m256d ur = _mm256_mul_pd(vc, _mm256_sub_pd(sr, ppr));
    const __m256d ui = _mm256_mul_pd(vc, _mm256_sub_pd(si, ppi));
    const __m256d norm_u = _mm256_fmadd_pd(ur, ur, _mm256_mul_pd(ui, ui));
    const __m256d er = _mm256_loadu_pd(e_re + i);
    const __m256d ei = _mm256_loadu_pd(e_im + i);
    // e2 = exp(-sT) exp(pT).
    const __m256d e2r = _mm256_fmsub_pd(er, ptr, _mm256_mul_pd(ei, pti));
    const __m256d e2i = _mm256_fmadd_pd(er, pti, _mm256_mul_pd(ei, ptr));
    const __m256d d1r = _mm256_sub_pd(one, e2r);
    const __m256d d1i = _mm256_sub_pd(zero, e2i);
    const __m256d d2r = _mm256_add_pd(one, e2r);
    const __m256d nd1 = _mm256_fmadd_pd(d1r, d1r, _mm256_mul_pd(d1i, d1i));
    const __m256d nd2 = _mm256_fmadd_pd(d2r, d2r, _mm256_mul_pd(e2i, e2i));
    // Fast lanes: away from the series region and the aliasing poles,
    // right of the pole abscissa, with a finite factored exponential.
    // NaN compares false, sending the lane to the scalar sequence.
    __m256d fast = _mm256_and_pd(
        _mm256_cmp_pd(norm_u, _mm256_set1_pd(1e-6), _CMP_GE_OQ),
        _mm256_cmp_pd(ur, zero, _CMP_GE_OQ));
    fast = _mm256_and_pd(fast, _mm256_cmp_pd(vabs(e2r), dmax, _CMP_LE_OQ));
    fast = _mm256_and_pd(fast, _mm256_cmp_pd(vabs(e2i), dmax, _CMP_LE_OQ));
    fast = _mm256_and_pd(fast,
                         _mm256_cmp_pd(nd1, _mm256_set1_pd(1e-4), _CMP_GE_OQ));
    fast = _mm256_and_pd(fast,
                         _mm256_cmp_pd(nd2, _mm256_set1_pd(1e-4), _CMP_GE_OQ));
    const int fast_mask = _mm256_movemask_pd(fast);
    if (fast_mask != 0xF) {
      obs::diag_event(
          obs::DiagReason::kSimdBailoutGuardTrip,
          static_cast<double>(4 - __builtin_popcount(fast_mask & 0xF)));
      for (std::size_t j = i; j < i + 4; ++j) {
        pole_point_accumulate(term, c, cplx{s_re[j], s_im[j]},
                              cplx{e_re[j], e_im[j]}, acc_re[j], acc_im[j]);
      }
      continue;
    }
    // ct = (1+e2)/(1-e2) via the conjugate formula (|1-e2|^2 >= 1e-4).
    const __m256d inv1 = _mm256_div_pd(one, nd1);
    const __m256d ctr = _mm256_mul_pd(
        _mm256_fmadd_pd(d2r, d1r, _mm256_mul_pd(e2i, d1i)), inv1);
    const __m256d cti = _mm256_mul_pd(
        _mm256_fmsub_pd(e2i, d1r, _mm256_mul_pd(d2r, d1i)), inv1);
    __m256d accr = _mm256_loadu_pd(acc_re + i);
    __m256d acci = _mm256_loadu_pd(acc_im + i);
    // acc += r0 * (c * ct); term-by-term accumulation matches the
    // scalar association.
    {
      const __m256d t1r = _mm256_mul_pd(vc, ctr);
      const __m256d t1i = _mm256_mul_pd(vc, cti);
      accr = _mm256_add_pd(
          accr, _mm256_fmsub_pd(r0r, t1r, _mm256_mul_pd(r0i, t1i)));
      acci = _mm256_add_pd(
          acci, _mm256_fmadd_pd(r0r, t1i, _mm256_mul_pd(r0i, t1r)));
    }
    if (kmax >= 2) {
      // cs2 = 4 e2 / (1-e2)^2 = 4 e2 conj(d1^2) / |1-e2|^4.
      const __m256d invsq = _mm256_mul_pd(inv1, inv1);
      const __m256d d1sqr =
          _mm256_fmsub_pd(d1r, d1r, _mm256_mul_pd(d1i, d1i));
      const __m256d d1sqi = _mm256_mul_pd(two, _mm256_mul_pd(d1r, d1i));
      const __m256d numr =
          _mm256_fmadd_pd(e2r, d1sqr, _mm256_mul_pd(e2i, d1sqi));
      const __m256d numi =
          _mm256_fmsub_pd(e2i, d1sqr, _mm256_mul_pd(e2r, d1sqi));
      const __m256d cs2r =
          _mm256_mul_pd(four, _mm256_mul_pd(numr, invsq));
      const __m256d cs2i =
          _mm256_mul_pd(four, _mm256_mul_pd(numi, invsq));
      {
        const __m256d t2r = _mm256_mul_pd(vc2, cs2r);
        const __m256d t2i = _mm256_mul_pd(vc2, cs2i);
        accr = _mm256_add_pd(
            accr, _mm256_fmsub_pd(r1r, t2r, _mm256_mul_pd(r1i, t2i)));
        acci = _mm256_add_pd(
            acci, _mm256_fmadd_pd(r1r, t2i, _mm256_mul_pd(r1i, t2r)));
      }
      if (kmax >= 3) {
        const __m256d mr =
            _mm256_fmsub_pd(cs2r, ctr, _mm256_mul_pd(cs2i, cti));
        const __m256d mi =
            _mm256_fmadd_pd(cs2r, cti, _mm256_mul_pd(cs2i, ctr));
        const __m256d t3r = _mm256_mul_pd(vc3, mr);
        const __m256d t3i = _mm256_mul_pd(vc3, mi);
        accr = _mm256_add_pd(
            accr, _mm256_fmsub_pd(r2r, t3r, _mm256_mul_pd(r2i, t3i)));
        acci = _mm256_add_pd(
            acci, _mm256_fmadd_pd(r2r, t3i, _mm256_mul_pd(r2i, t3r)));
        if (kmax >= 4) {
          // 2 cs2 ct^2 + cs2^2.
          const __m256d ct2r =
              _mm256_fmsub_pd(ctr, ctr, _mm256_mul_pd(cti, cti));
          const __m256d ct2i = _mm256_mul_pd(two, _mm256_mul_pd(ctr, cti));
          const __m256d ar_ =
              _mm256_fmsub_pd(cs2r, ct2r, _mm256_mul_pd(cs2i, ct2i));
          const __m256d ai_ =
              _mm256_fmadd_pd(cs2r, ct2i, _mm256_mul_pd(cs2i, ct2r));
          const __m256d cs2sqr =
              _mm256_fmsub_pd(cs2r, cs2r, _mm256_mul_pd(cs2i, cs2i));
          const __m256d cs2sqi =
              _mm256_mul_pd(two, _mm256_mul_pd(cs2r, cs2i));
          const __m256d wr = _mm256_fmadd_pd(two, ar_, cs2sqr);
          const __m256d wi = _mm256_fmadd_pd(two, ai_, cs2sqi);
          const __m256d t4r = _mm256_mul_pd(vc4, wr);
          const __m256d t4i = _mm256_mul_pd(vc4, wi);
          accr = _mm256_add_pd(
              accr, _mm256_fmsub_pd(r3r, t4r, _mm256_mul_pd(r3i, t4i)));
          acci = _mm256_add_pd(
              acci, _mm256_fmadd_pd(r3r, t4i, _mm256_mul_pd(r3i, t4r)));
        }
      }
    }
    _mm256_storeu_pd(acc_re + i, accr);
    _mm256_storeu_pd(acc_im + i, acci);
  }
  for (; i < n; ++i) {
    pole_point_accumulate(term, c, cplx{s_re[i], s_im[i]},
                          cplx{e_re[i], e_im[i]}, acc_re[i], acc_im[i]);
  }
}

HTMPLL_TGT void batch_step_advance_avx2(const double* phi0,
                                        const double* gamma1,
                                        std::size_t n, const double* x,
                                        const double* u0, std::size_t m,
                                        double* out) {
  // Lanes run across members; per lane the j-ascending mul/add sequence
  // is the scalar accumulator's (this TU builds with -ffp-contract=off
  // and uses no fused intrinsics here, so nothing contracts).
  for (std::size_t i = 0; i < n; ++i) {
    const double* arow = phi0 + i * n;
    double* orow = out + i * m;
    std::size_t k = 0;
    for (; k + 4 <= m; k += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t j = 0; j < n; ++j) {
        const __m256d a = _mm256_set1_pd(arow[j]);
        const __m256d xv = _mm256_loadu_pd(x + j * m + k);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(a, xv));
      }
      _mm256_storeu_pd(orow + k, acc);
    }
    for (; k < m; ++k) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += arow[j] * x[j * m + k];
      orow[k] = acc;
    }
  }
  if (gamma1 != nullptr) {
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t i = 0; i < n; ++i) {
      double* orow = out + i * m;
      const __m256d g = _mm256_set1_pd(gamma1[i]);
      std::size_t k = 0;
      for (; k + 4 <= m; k += 4) {
        const __m256d u = _mm256_loadu_pd(u0 + k);
        const __m256d t =
            _mm256_add_pd(zero, _mm256_mul_pd(g, u));  // 0.0 + g*u0
        _mm256_storeu_pd(orow + k,
                         _mm256_add_pd(_mm256_loadu_pd(orow + k), t));
      }
      for (; k < m; ++k) orow[k] += 0.0 + gamma1[i] * u0[k];
    }
  }
}

#else  // !HTMPLL_SIMD_X86: stubs (dispatch never selects them)

namespace {
[[noreturn]] void simd_unavailable() {
  throw std::logic_error(
      "htmpll: AVX2 batch kernels are not compiled into this build "
      "(configure with -DHTMPLL_SIMD=ON on an x86-64 GCC/Clang "
      "toolchain)");
}
}  // namespace

bool simd_kernels_compiled() { return false; }
bool simd_cpu_has_avx2_fma() { return false; }

void batch_cexp_avx2(const double*, const double*, std::size_t, double*,
                     double*) {
  simd_unavailable();
}
void batch_horner_avx2(const cplx*, std::size_t, const double*,
                       const double*, std::size_t, double*, double*) {
  simd_unavailable();
}
void batch_complex_div_avx2(std::size_t, double*, double*, const double*,
                            const double*) {
  simd_unavailable();
}
void accumulate_pole_sums_avx2(const PoleSumTerm&, double, const double*,
                               const double*, const double*, const double*,
                               std::size_t, double*, double*) {
  simd_unavailable();
}
void batch_step_advance_avx2(const double*, const double*, std::size_t,
                             const double*, const double*, std::size_t,
                             double*) {
  simd_unavailable();
}

#endif  // HTMPLL_SIMD_X86

}  // namespace htmpll::detail

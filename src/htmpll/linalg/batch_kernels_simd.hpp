// Internal declarations of the AVX2+FMA batch-kernel variants.
//
// Implemented in batch_kernels_simd.cpp with per-function target
// attributes (the TU itself is compiled for the baseline ISA, so merely
// linking the library never executes an AVX2 instruction); call them
// only after simd::active_isa() == Isa::kAvx2Fma.  When the build
// disables SIMD (-DHTMPLL_SIMD=OFF) or targets a non-x86 GCC-compatible
// toolchain, simd_kernels_compiled() is false and the entry points are
// stubs that throw std::logic_error (dispatch never selects them).
//
// Signature-for-signature these mirror the public kernels in
// batch_kernels.hpp; the numerical contract (<= 1e-12 relative vs the
// scalar kernels, exact scalar op sequence on guard/fallback lanes) is
// documented in linalg/simd.hpp.
#pragma once

#include <cstddef>

#include "htmpll/linalg/batch_kernels.hpp"

namespace htmpll::detail {

/// True when the vector kernels below are real code (x86-64 GCC/Clang
/// build with HTMPLL_SIMD=ON), not stubs.
bool simd_kernels_compiled();

/// CPUID probe for AVX2+FMA (false on stub builds).
bool simd_cpu_has_avx2_fma();

void batch_cexp_avx2(const double* z_re, const double* z_im, std::size_t n,
                     double* out_re, double* out_im);

void batch_horner_avx2(const cplx* coeff, std::size_t n_coeff,
                       const double* s_re, const double* s_im,
                       std::size_t n, double* out_re, double* out_im);

/// The elementwise division tail of batch_rational: out = out / den
/// with the same |den|^2 in [1e-290, 1e290] guard as the scalar loop
/// (out-of-range or non-finite lanes defer to std::complex division).
void batch_complex_div_avx2(std::size_t n, double* out_re, double* out_im,
                            const double* den_re, const double* den_im);

void accumulate_pole_sums_avx2(const PoleSumTerm& term, double c,
                               const double* s_re, const double* s_im,
                               const double* e_re, const double* e_im,
                               std::size_t n, double* acc_re,
                               double* acc_im);

/// Lockstep ensemble step (batch_kernels.hpp): vectorized ACROSS
/// members with separate mul/add only (no fused ops), so each member
/// lane reproduces the scalar advance_into sequence bit for bit.
void batch_step_advance_avx2(const double* phi0, const double* gamma1,
                             std::size_t n, const double* x,
                             const double* u0, std::size_t m, double* out);

}  // namespace htmpll::detail

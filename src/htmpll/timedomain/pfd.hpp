// Tri-state phase-frequency detector + charge pump, behavioral model.
//
// This is the circuit the paper's Matlab/Simulink verification implements
// with flip-flops (Section 5): the phase error is encoded in the *width*
// of UP/DOWN pulses, not idealized as Dirac impulses, so simulating it
// tests the paper's Fig. 4 narrow-pulse approximation for real.
//
// Standard sequential behavior:
//   reference rising edge -> UP high
//   VCO rising edge       -> DOWN high
//   UP and DOWN both high -> both reset (ideal, zero reset delay)
// The charge pump sources +Icp while UP, sinks -Icp while DOWN.
#pragma once

namespace htmpll {

class TriStatePfd {
 public:
  enum class State { kIdle, kUp, kDown };

  void on_reference_edge();
  void on_vco_edge();

  State state() const;
  bool up() const { return up_; }
  bool down() const { return down_; }

  /// Charge-pump output current for pump magnitude icp.
  double pump_current(double icp) const;

  void reset();

  /// Forces the flip-flop pair to a recorded state (checkpoint restore).
  void restore(bool up, bool down) {
    up_ = up;
    down_ = down;
  }

 private:
  bool up_ = false;
  bool down_ = false;
};

}  // namespace htmpll

// Exact piecewise propagation of a linear state-space system driven by a
// piecewise-constant input (the charge-pump current between PFD events).
//
// There is no ODE-solver step error anywhere in the transient simulator:
// each segment is advanced with the matrix exponential of the augmented
// Van Loan system, so the comparison against the HTM model (the paper's
// "within 2%" claim) measures modeling error, not integration error.
#pragma once

#include "htmpll/linalg/expm.hpp"
#include "htmpll/lti/state_space.hpp"

namespace htmpll {

/// Builds the augmented system [filter states; theta] with
/// theta' = kvco * (C_f x + D_f i); the output row reports the filter
/// output y (the VCO control).  Shared by the transient simulators.
StateSpace augment_with_phase(const StateSpace& filter, double kvco);

class PiecewiseExactIntegrator {
 public:
  explicit PiecewiseExactIntegrator(StateSpace ss);

  std::size_t order() const { return ss_.order(); }
  const StateSpace& system() const { return ss_; }

  const RVector& state() const { return x_; }
  void set_state(RVector x);

  /// y = C x + D u at the current state.
  double output(double u) const { return ss_.output(x_, u); }

  /// State after holding input `u` for `h` seconds, without committing.
  RVector peek(double h, double u) const;

  /// Output at the peeked state.
  double peek_output(double h, double u) const;

  /// Commit: advance the state by `h` under constant input `u`.
  void advance(double h, double u);

 private:
  const StepPropagator& propagator(double h) const;

  StateSpace ss_;
  RVector x_;
  // Single-entry propagator cache: edge searches evaluate several trial
  // steps of identical length (and the final commit reuses the last one).
  mutable double cached_h_ = -1.0;
  mutable StepPropagator cached_;
};

}  // namespace htmpll

// Exact piecewise propagation of a linear state-space system driven by a
// piecewise-constant input (the charge-pump current between PFD events).
//
// There is no ODE-solver step error anywhere in the transient simulator:
// each segment is advanced with the exact discrete propagator of the
// state matrix (spectral when the matrix admits a well-conditioned modal
// factorization, Van Loan expm otherwise), so the comparison against the
// HTM model (the paper's "within 2%" claim) measures modeling error, not
// integration error.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/linalg/expm.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/lti/state_space.hpp"

namespace htmpll {

namespace obs {
class Counter;
}  // namespace obs

/// Builds the augmented system [filter states; theta] with
/// theta' = kvco * (C_f x + D_f i); the output row reports the filter
/// output y (the VCO control).  Shared by the transient simulators.
StateSpace augment_with_phase(const StateSpace& filter, double kvco);

/// Hit/miss counters of a PiecewiseExactIntegrator's propagator cache.
/// Every miss costs one propagator construction (a Van Loan matrix
/// exponential on the Pade path, n scalar exponentials on the spectral
/// path) and `lookups - misses` is the number saved by caching.  This is
/// a thin per-integrator view; when instrumentation is enabled
/// (HTMPLL_OBS=1) the same events also feed the process-wide obs
/// counters "timedomain.propagator_{lookups,misses,evictions}".
struct PropagatorCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< cache-full slot replacements
  std::uint64_t hits() const { return lookups - misses; }
  /// hits / lookups; 0 before the first lookup.
  double hit_rate() const { return ratio(lookups - misses); }
  /// misses / lookups; 0 before the first lookup.
  double miss_rate() const { return ratio(misses); }
  /// evictions / lookups; 0 before the first lookup.
  double eviction_rate() const { return ratio(evictions); }

 private:
  double ratio(std::uint64_t part) const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(part) /
                              static_cast<double>(lookups);
  }
};

/// Shared step-propagator store for lockstep ensembles: one
/// direct-mapped cache (keyed on the exact bit pattern of h) serving
/// EVERY member integrator of a worker's ensemble block, so a step
/// length built once -- edge searches quantize onto the same
/// reference-edge grid across members -- is never rebuilt per member.
/// Slots keep their matrix storage across replacements, so a miss on
/// the spectral path costs n scalar exponentials and zero allocations.
/// Propagators are pure functions of (A, B, h); sharing and eviction
/// policy never change results, only the build count.  NOT thread-safe:
/// one store per worker, wired via
/// PiecewiseExactIntegrator::set_shared_store.
class SharedPropagatorStore {
 public:
  /// Power-of-two slot count.  Direct-mapped: a collision evicts, so
  /// the table trades a little rebuild work (builds are cheap via
  /// make_into) for an O(1) lookup with no probe chains or index
  /// maintenance on the miss path.  Deliberately small: on noisy
  /// (divergent-h) workloads most hits are the commit immediately
  /// reusing the last edge-search step length, which any size serves,
  /// and a slot table that stays cache-resident beats a larger one
  /// whose hash-spread rebuilds touch cold lines (64..512 slots bench
  /// within noise of each other; 4096 measurably slower).
  static constexpr std::size_t kDefaultSlots = 256;

  /// `factory` must outlive the store (typically member 0's integrator
  /// factory).  `slots` is rounded up to a power of two.
  explicit SharedPropagatorStore(const PropagatorFactory& factory,
                                 std::size_t slots = kDefaultSlots);

  const PropagatorFactory& factory() const { return factory_; }
  const PropagatorCacheStats& stats() const { return stats_; }

  /// Propagator for step length h > 0; built on demand.  phi0/gamma1
  /// are bit-identical to factory().make(h); gamma2 is left EMPTY on
  /// the spectral path -- every lockstep consumer advances with a
  /// piecewise-constant input (u1 == u0), which never reads Gamma2, and
  /// skipping it trims the per-miss rebuild.
  const StepPropagator& get(double h);

  /// Publishes the stats() deltas accumulated since the last flush to
  /// the process-wide obs counters.  get() itself only bumps the local
  /// struct -- the miss-dominated lookup stream would otherwise pay an
  /// atomic per event -- so owners (the ensemble engine) flush once per
  /// run segment; totals at observation points are unchanged.
  void flush_counters();

 private:
  struct Slot {
    double h = 0.0;
    bool used = false;
    StepPropagator prop;
  };

  const PropagatorFactory& factory_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  PropagatorCacheStats stats_;
  PropagatorCacheStats flushed_;  ///< stats_ already published via flush
  // Process-wide telemetry mirrors, bound once so the miss-dominated
  // get() path skips the function-local-static guard per call.
  obs::Counter* lookups_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
};

class PiecewiseExactIntegrator {
 public:
  /// Default propagator-cache capacity.  In lock the segment lengths a
  /// simulation requests cluster around a handful of exact values (the
  /// inter-event spacing plus the uniform-sampler offsets), but any
  /// modulated run (probe sweeps, acquisition transients) makes the
  /// spacings quasi-continuous: a single phase-step probe touches
  /// thousands of distinct step lengths, and the old 32-entry default
  /// thrashed (probe-sweep hit rate ~0.38, ~300k evictions).  1024
  /// entries lift that to ~0.79 -- the remainder is compulsory cold
  /// misses -- at ~200 KB per order-4 integrator.  Results never depend
  /// on the capacity, only the propagator-build count does.
  static constexpr std::size_t kDefaultCacheCapacity = 1024;

  /// `use_spectral` false forces the Van Loan expm path for every
  /// propagator build (bit-identical to the pre-spectral engine)
  /// regardless of the global spectral::enabled() switch.
  explicit PiecewiseExactIntegrator(
      StateSpace ss, std::size_t cache_capacity = kDefaultCacheCapacity,
      bool use_spectral = true);

  std::size_t order() const { return ss_.order(); }
  const StateSpace& system() const { return ss_; }

  /// True when cache misses are served by the one-time modal
  /// factorization instead of a per-step expm.
  bool spectral_propagators() const { return factory_.is_spectral(); }
  const PropagatorFactory& propagator_factory() const { return factory_; }

  const RVector& state() const { return x_; }
  void set_state(RVector x);

  /// Overwrites the state from `order()` doubles spaced `stride` apart
  /// (stride 1 for a plain array, the block width for an SoA column).
  /// No validation, no allocation -- the lockstep ensemble commit path.
  void set_state_raw(const double* x, std::size_t stride = 1) {
    for (std::size_t i = 0; i < x_.size(); ++i) x_[i] = x[i * stride];
  }

  /// Serves ALL propagator lookups from `store` instead of the private
  /// cache (nullptr reverts).  The store must be built from a factory
  /// of the same system; results never change, only where builds
  /// happen.  Lifetime is the caller's problem (ensemble engines own
  /// both the store and the member integrators).
  void set_shared_store(SharedPropagatorStore* store);

  /// y = C x + D u at the current state.
  double output(double u) const { return ss_.output(x_, u); }

  /// State after holding input `u` for `h` seconds, without committing.
  RVector peek(double h, double u) const;

  /// Allocation-free peek: writes the peeked state into `out` (resized
  /// to order()).  Bit-identical to peek(); `out` must not alias the
  /// internal state.
  void peek_into(double h, double u, RVector& out) const;

  /// Last state component of the peek, bit-identical to
  /// peek(h, u)[order()-1].  With a shared propagator store attached
  /// and a phase-augmented spectral factorization this skips the full
  /// propagator build (one modal theta-row contraction instead); the
  /// store-less scalar chain keeps the plain peek_into path, so its
  /// build schedule is untouched.
  double peek_last(double h, double u) const;

  /// Output at the peeked state.
  double peek_output(double h, double u) const;

  /// Commit: advance the state by `h` under constant input `u`.
  void advance(double h, double u);

  // --- propagator cache ---
  /// Caps the number of cached step propagators (>= 1).  Shrinking
  /// discards existing entries; results never depend on the capacity,
  /// only the propagator-build count does.
  void set_cache_capacity(std::size_t capacity);
  std::size_t cache_capacity() const { return cache_capacity_; }
  const PropagatorCacheStats& cache_stats() const { return stats_; }

 private:
  const StepPropagator& propagator(double h) const;
  std::size_t slot_home(double h) const;
  void index_insert(double h, std::int32_t entry) const;
  void index_erase(double h) const;
  void rebuild_index() const;

  StateSpace ss_;
  PropagatorFactory factory_;
  RVector x_;
  SharedPropagatorStore* shared_ = nullptr;

  // Keyed propagator cache (exact h match).  Each distinct step length
  // costs one propagator build; edge searches, sampler peeks and
  // commits then reuse the entry.  Entries live in a slab with
  // round-robin eviction; an open-addressed index (hash of the bit
  // pattern of h, linear probing, backward-shift deletion) makes the
  // lookup O(1) instead of a scan over the capacity -- the scan showed
  // up in profiles once warm-started sweeps pushed capacities past a
  // few dozen.  The cache is per-integrator (no sharing, no locking)
  // and bounded; results never depend on hits vs misses.
  struct CacheEntry {
    double h;
    StepPropagator prop;
  };
  std::size_t cache_capacity_;
  mutable std::vector<CacheEntry> cache_;
  mutable std::vector<std::int32_t> slots_;  ///< index into cache_, -1 empty
  mutable std::size_t slot_mask_ = 0;        ///< slots_.size() - 1 (pow2)
  mutable std::size_t next_slot_ = 0;  ///< round-robin eviction cursor
  mutable PropagatorCacheStats stats_;
  mutable RVector scratch_;  ///< advance() staging, swapped into x_
};

}  // namespace htmpll

// Exact piecewise propagation of a linear state-space system driven by a
// piecewise-constant input (the charge-pump current between PFD events).
//
// There is no ODE-solver step error anywhere in the transient simulator:
// each segment is advanced with the matrix exponential of the augmented
// Van Loan system, so the comparison against the HTM model (the paper's
// "within 2%" claim) measures modeling error, not integration error.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/linalg/expm.hpp"
#include "htmpll/lti/state_space.hpp"

namespace htmpll {

/// Builds the augmented system [filter states; theta] with
/// theta' = kvco * (C_f x + D_f i); the output row reports the filter
/// output y (the VCO control).  Shared by the transient simulators.
StateSpace augment_with_phase(const StateSpace& filter, double kvco);

/// Hit/miss counters of a PiecewiseExactIntegrator's propagator cache.
/// Every miss costs one Van Loan matrix exponential; `misses` therefore
/// equals the number of expm evaluations performed so far and
/// `lookups - misses` the number saved by caching.  This is a thin
/// per-integrator view; when instrumentation is enabled (HTMPLL_OBS=1)
/// the same events also feed the process-wide obs counters
/// "timedomain.propagator_{lookups,misses,evictions}".
struct PropagatorCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< cache-full slot replacements
  std::uint64_t hits() const { return lookups - misses; }
};

class PiecewiseExactIntegrator {
 public:
  /// Default propagator-cache capacity.  In lock the segment lengths a
  /// simulation requests cluster around a handful of exact values (the
  /// inter-event spacing plus the uniform-sampler offsets), so a few
  /// dozen entries capture essentially all reuse.
  static constexpr std::size_t kDefaultCacheCapacity = 32;

  explicit PiecewiseExactIntegrator(
      StateSpace ss, std::size_t cache_capacity = kDefaultCacheCapacity);

  std::size_t order() const { return ss_.order(); }
  const StateSpace& system() const { return ss_; }

  const RVector& state() const { return x_; }
  void set_state(RVector x);

  /// y = C x + D u at the current state.
  double output(double u) const { return ss_.output(x_, u); }

  /// State after holding input `u` for `h` seconds, without committing.
  RVector peek(double h, double u) const;

  /// Output at the peeked state.
  double peek_output(double h, double u) const;

  /// Commit: advance the state by `h` under constant input `u`.
  void advance(double h, double u);

  // --- propagator cache ---
  /// Caps the number of cached step propagators (>= 1).  Shrinking
  /// discards existing entries; results never depend on the capacity,
  /// only the expm count does.
  void set_cache_capacity(std::size_t capacity);
  std::size_t cache_capacity() const { return cache_capacity_; }
  const PropagatorCacheStats& cache_stats() const { return stats_; }

 private:
  const StepPropagator& propagator(double h) const;

  StateSpace ss_;
  RVector x_;

  // Keyed propagator cache (exact h match).  Each distinct step length
  // costs one Van Loan expm; edge searches, sampler peeks and commits
  // then reuse the entry.  The cache is per-integrator (no sharing, no
  // locking) and bounded: eviction is round-robin over the slots, which
  // is enough because a locked loop cycles through few distinct lengths.
  struct CacheEntry {
    double h;
    StepPropagator prop;
  };
  std::size_t cache_capacity_;
  mutable std::vector<CacheEntry> cache_;
  mutable std::size_t next_slot_ = 0;  ///< round-robin eviction cursor
  mutable PropagatorCacheStats stats_;
};

}  // namespace htmpll

// Exact piecewise propagation of a linear state-space system driven by a
// piecewise-constant input (the charge-pump current between PFD events).
//
// There is no ODE-solver step error anywhere in the transient simulator:
// each segment is advanced with the exact discrete propagator of the
// state matrix (spectral when the matrix admits a well-conditioned modal
// factorization, Van Loan expm otherwise), so the comparison against the
// HTM model (the paper's "within 2%" claim) measures modeling error, not
// integration error.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/linalg/expm.hpp"
#include "htmpll/linalg/spectral.hpp"
#include "htmpll/lti/state_space.hpp"

namespace htmpll {

/// Builds the augmented system [filter states; theta] with
/// theta' = kvco * (C_f x + D_f i); the output row reports the filter
/// output y (the VCO control).  Shared by the transient simulators.
StateSpace augment_with_phase(const StateSpace& filter, double kvco);

/// Hit/miss counters of a PiecewiseExactIntegrator's propagator cache.
/// Every miss costs one propagator construction (a Van Loan matrix
/// exponential on the Pade path, n scalar exponentials on the spectral
/// path) and `lookups - misses` is the number saved by caching.  This is
/// a thin per-integrator view; when instrumentation is enabled
/// (HTMPLL_OBS=1) the same events also feed the process-wide obs
/// counters "timedomain.propagator_{lookups,misses,evictions}".
struct PropagatorCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< cache-full slot replacements
  std::uint64_t hits() const { return lookups - misses; }
  /// hits / lookups; 0 before the first lookup.
  double hit_rate() const { return ratio(lookups - misses); }
  /// misses / lookups; 0 before the first lookup.
  double miss_rate() const { return ratio(misses); }
  /// evictions / lookups; 0 before the first lookup.
  double eviction_rate() const { return ratio(evictions); }

 private:
  double ratio(std::uint64_t part) const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(part) /
                              static_cast<double>(lookups);
  }
};

class PiecewiseExactIntegrator {
 public:
  /// Default propagator-cache capacity.  In lock the segment lengths a
  /// simulation requests cluster around a handful of exact values (the
  /// inter-event spacing plus the uniform-sampler offsets), but any
  /// modulated run (probe sweeps, acquisition transients) makes the
  /// spacings quasi-continuous: a single phase-step probe touches
  /// thousands of distinct step lengths, and the old 32-entry default
  /// thrashed (probe-sweep hit rate ~0.38, ~300k evictions).  1024
  /// entries lift that to ~0.79 -- the remainder is compulsory cold
  /// misses -- at ~200 KB per order-4 integrator.  Results never depend
  /// on the capacity, only the propagator-build count does.
  static constexpr std::size_t kDefaultCacheCapacity = 1024;

  /// `use_spectral` false forces the Van Loan expm path for every
  /// propagator build (bit-identical to the pre-spectral engine)
  /// regardless of the global spectral::enabled() switch.
  explicit PiecewiseExactIntegrator(
      StateSpace ss, std::size_t cache_capacity = kDefaultCacheCapacity,
      bool use_spectral = true);

  std::size_t order() const { return ss_.order(); }
  const StateSpace& system() const { return ss_; }

  /// True when cache misses are served by the one-time modal
  /// factorization instead of a per-step expm.
  bool spectral_propagators() const { return factory_.is_spectral(); }
  const PropagatorFactory& propagator_factory() const { return factory_; }

  const RVector& state() const { return x_; }
  void set_state(RVector x);

  /// y = C x + D u at the current state.
  double output(double u) const { return ss_.output(x_, u); }

  /// State after holding input `u` for `h` seconds, without committing.
  RVector peek(double h, double u) const;

  /// Allocation-free peek: writes the peeked state into `out` (resized
  /// to order()).  Bit-identical to peek(); `out` must not alias the
  /// internal state.
  void peek_into(double h, double u, RVector& out) const;

  /// Output at the peeked state.
  double peek_output(double h, double u) const;

  /// Commit: advance the state by `h` under constant input `u`.
  void advance(double h, double u);

  // --- propagator cache ---
  /// Caps the number of cached step propagators (>= 1).  Shrinking
  /// discards existing entries; results never depend on the capacity,
  /// only the propagator-build count does.
  void set_cache_capacity(std::size_t capacity);
  std::size_t cache_capacity() const { return cache_capacity_; }
  const PropagatorCacheStats& cache_stats() const { return stats_; }

 private:
  const StepPropagator& propagator(double h) const;
  std::size_t slot_home(double h) const;
  void index_insert(double h, std::int32_t entry) const;
  void index_erase(double h) const;
  void rebuild_index() const;

  StateSpace ss_;
  PropagatorFactory factory_;
  RVector x_;

  // Keyed propagator cache (exact h match).  Each distinct step length
  // costs one propagator build; edge searches, sampler peeks and
  // commits then reuse the entry.  Entries live in a slab with
  // round-robin eviction; an open-addressed index (hash of the bit
  // pattern of h, linear probing, backward-shift deletion) makes the
  // lookup O(1) instead of a scan over the capacity -- the scan showed
  // up in profiles once warm-started sweeps pushed capacities past a
  // few dozen.  The cache is per-integrator (no sharing, no locking)
  // and bounded; results never depend on hits vs misses.
  struct CacheEntry {
    double h;
    StepPropagator prop;
  };
  std::size_t cache_capacity_;
  mutable std::vector<CacheEntry> cache_;
  mutable std::vector<std::int32_t> slots_;  ///< index into cache_, -1 empty
  mutable std::size_t slot_mask_ = 0;        ///< slots_.size() - 1 (pow2)
  mutable std::size_t next_slot_ = 0;  ///< round-robin eviction cursor
  mutable PropagatorCacheStats stats_;
  mutable RVector scratch_;  ///< advance() staging, swapped into x_
};

}  // namespace htmpll

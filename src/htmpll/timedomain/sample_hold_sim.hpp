// Sample-and-hold phase-detector PLL simulator.
//
// Validation substrate for the ZOH branch of the generalized PFD model
// (PfdShape::kZeroOrderHold): at every reference edge the detector
// samples the phase error e(mT) = theta_ref - theta and the charge pump
// sources the *held* current Icp * e(mT) / T until the next edge -- the
// same charge per cycle as the pulse-width charge pump, but delivered as
// a boxcar instead of a narrow pulse.  Between edges everything is LTI
// with constant input, so propagation is exact (matrix exponential), as
// in PllTransientSim.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/timedomain/loop_filter_sim.hpp"
#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {

class SampleHoldPllSim {
 public:
  explicit SampleHoldPllSim(const PllParameters& params,
                            ReferenceModulation mod = {},
                            TransientConfig cfg = {});

  double period() const { return t_period_; }
  double time() const { return t_; }
  double theta() const;
  double held_current() const { return current_; }

  void run_until(double t_end);
  void run_periods(double n);

  const std::vector<double>& sample_times() const { return sample_t_; }
  const std::vector<double>& theta_samples() const { return sample_theta_; }
  const std::vector<double>& theta_ref_samples() const {
    return sample_theta_ref_;
  }
  void clear_samples();
  void set_recording(bool on) { cfg_.record = on; }

  std::size_t event_count() const { return events_; }

 private:
  double next_reference_edge(double target) const;
  void record_range(double t_begin, double t_end);

  PllParameters params_;
  ReferenceModulation mod_;
  TransientConfig cfg_;
  double t_period_;
  double icp_;

  PiecewiseExactIntegrator aug_;
  std::size_t theta_index_;
  mutable RVector peek_scratch_;  ///< sampler peek staging

  std::int64_t n_ref_ = 1;
  double t_ = 0.0;
  double current_ = 0.0;
  std::size_t events_ = 0;

  std::int64_t next_sample_ = 1;
  std::vector<double> sample_t_;
  std::vector<double> sample_theta_;
  std::vector<double> sample_theta_ref_;
};

/// Small-signal baseband transfer measured on the sample-and-hold loop.
TransferMeasurement measure_baseband_transfer_sample_hold(
    const PllParameters& params, double omega_m,
    const ProbeOptions& opts = {});

}  // namespace htmpll

// Transient simulation of the PLL with a *time-varying* VCO.
//
// The paper's VCO model (eqs. 22-23) is dtheta/dt = v(t + theta) u(t)
// with v the T-periodic impulse sensitivity function (ISF).  The HTM
// model approximates v(t + theta) ~ v(t) for small excursions (eq. 24);
// this simulator integrates the *unapproximated* equation, so comparing
// it against SamplingPllModel with a non-trivial ISF validates the
// LPTV branch of the theory end-to-end.
//
// Unlike PllTransientSim (which is exact because the TI loop is linear
// between events), the ISF-modulated loop has a genuinely time-varying
// right-hand side, so this class integrates [filter state; theta] with
// classic fixed-substep RK4 -- a faithful C++ stand-in for the paper's
// Matlab/Simulink time-marching.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/core/builders.hpp"
#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/lti/state_space.hpp"
#include "htmpll/timedomain/pfd.hpp"
#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/timedomain/probe.hpp"

namespace htmpll {

/// Real periodic ISF v(t) = kvco * sum_k isf_k e^{j k w0 t}.  Requires a
/// conjugate-symmetric coefficient set (real waveform).
class IsfWaveform {
 public:
  IsfWaveform(HarmonicCoefficients isf, double kvco, double w0);

  double operator()(double t) const;
  const HarmonicCoefficients& coefficients() const { return isf_; }
  double kvco() const { return kvco_; }

 private:
  HarmonicCoefficients isf_;
  double kvco_;
  double w0_;
};

struct LptvTransientConfig {
  int substeps_per_period = 64;  ///< RK4 steps per reference period
  double sample_interval = 0.0;  ///< 0 selects T/8
  bool record = true;
};

class LptvPllTransientSim {
 public:
  LptvPllTransientSim(const PllParameters& params, IsfWaveform isf,
                      ReferenceModulation mod = {},
                      LptvTransientConfig cfg = {});

  double period() const { return t_period_; }
  double time() const { return t_; }
  double theta() const { return theta_; }

  void run_until(double t_end);
  void run_periods(double n);

  const std::vector<double>& sample_times() const { return sample_t_; }
  const std::vector<double>& theta_samples() const { return sample_theta_; }
  const std::vector<double>& theta_ref_samples() const {
    return sample_theta_ref_;
  }
  void clear_samples();
  void set_recording(bool on) { cfg_.record = on; }

  std::size_t event_count() const { return events_; }

 private:
  struct Derivative {
    RVector dx;
    double dtheta;
  };
  Derivative rhs(double t, const RVector& x, double theta,
                 double current) const;
  void rk4_step(double t, double h, double current);
  double theta_ref(double t) const { return mod_.value(t); }
  void maybe_record(double t_prev, double theta_prev, double t);
  bool t_ranges_hit_ref(double t_ref, double t_end, double eps) const;

  PllParameters params_;
  IsfWaveform isf_;
  ReferenceModulation mod_;
  LptvTransientConfig cfg_;
  double t_period_;
  double icp_;
  StateSpace filter_;

  TriStatePfd pfd_;
  std::int64_t n_ref_ = 1;
  std::int64_t n_vco_ = 1;
  double t_ = 0.0;
  RVector x_;
  double theta_ = 0.0;
  std::size_t events_ = 0;

  std::int64_t next_sample_ = 1;
  std::vector<double> sample_t_;
  std::vector<double> sample_theta_;
  std::vector<double> sample_theta_ref_;
};

/// Small-signal baseband transfer measured on the LPTV simulator (same
/// protocol as measure_baseband_transfer).
TransferMeasurement measure_baseband_transfer_lptv(
    const PllParameters& params, const IsfWaveform& isf, double omega_m,
    const ProbeOptions& opts = {});

}  // namespace htmpll

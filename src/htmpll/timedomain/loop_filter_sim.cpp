#include "htmpll/timedomain/loop_filter_sim.hpp"

#include "htmpll/util/check.hpp"

namespace htmpll {

StateSpace augment_with_phase(const StateSpace& filter, double kvco) {
  const std::size_t n = filter.order();
  StateSpace aug;
  aug.a = RMatrix(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.a(i, j) = filter.a(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) aug.a(n, j) = kvco * filter.c(0, j);

  aug.b = RMatrix(n + 1, 1);
  for (std::size_t i = 0; i < n; ++i) aug.b(i, 0) = filter.b(i, 0);
  aug.b(n, 0) = kvco * filter.d;

  aug.c = RMatrix(1, n + 1);
  for (std::size_t j = 0; j < n; ++j) aug.c(0, j) = filter.c(0, j);
  aug.d = filter.d;
  return aug;
}

PiecewiseExactIntegrator::PiecewiseExactIntegrator(StateSpace ss)
    : ss_(std::move(ss)), x_(ss_.order(), 0.0) {}

void PiecewiseExactIntegrator::set_state(RVector x) {
  HTMPLL_REQUIRE(x.size() == ss_.order(), "state dimension mismatch");
  x_ = std::move(x);
}

const StepPropagator& PiecewiseExactIntegrator::propagator(double h) const {
  if (h != cached_h_) {
    cached_ = make_propagator(ss_.a, ss_.b, h);
    cached_h_ = h;
  }
  return cached_;
}

RVector PiecewiseExactIntegrator::peek(double h, double u) const {
  HTMPLL_REQUIRE(h >= 0.0, "cannot propagate backwards");
  if (h == 0.0) return x_;
  const RVector uu{u};
  return propagator(h).advance(x_, uu, uu, h);
}

double PiecewiseExactIntegrator::peek_output(double h, double u) const {
  return ss_.output(peek(h, u), u);
}

void PiecewiseExactIntegrator::advance(double h, double u) {
  x_ = peek(h, u);
}

}  // namespace htmpll

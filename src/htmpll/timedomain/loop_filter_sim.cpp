#include "htmpll/timedomain/loop_filter_sim.hpp"

#include <cstring>

#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Process-wide mirrors of the per-integrator cache stats; Counter::add
/// is a no-op unless instrumentation is enabled.
struct PropagatorMetrics {
  obs::Counter& lookups = obs::counter("timedomain.propagator_lookups");
  obs::Counter& misses = obs::counter("timedomain.propagator_misses");
  obs::Counter& evictions = obs::counter("timedomain.propagator_evictions");
  obs::Counter& spectral = obs::counter("timedomain.spectral_propagators");
  obs::Counter& pade_fallbacks = obs::counter("timedomain.pade_fallbacks");
};

PropagatorMetrics& propagator_metrics() {
  static PropagatorMetrics m;
  return m;
}

/// Process-wide mirrors of the shared ensemble-store stats.
struct EnsembleStoreMetrics {
  obs::Counter& lookups = obs::counter("timedomain.ensemble_store_lookups");
  obs::Counter& misses = obs::counter("timedomain.ensemble_store_misses");
  obs::Counter& evictions =
      obs::counter("timedomain.ensemble_store_evictions");
};

EnsembleStoreMetrics& ensemble_store_metrics() {
  static EnsembleStoreMetrics m;
  return m;
}

/// splitmix64 finalizer over the bit pattern of h.  Step lengths differ
/// only in a few mantissa bits (Newton edge refinements), so the key
/// needs full avalanche to spread over a small table.
std::uint64_t hash_step(double h) {
  std::uint64_t z;
  std::memcpy(&z, &h, sizeof z);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t table_size_for(std::size_t capacity) {
  // Load factor <= 0.5 keeps linear-probe chains short.
  std::size_t n = 4;
  while (n < 2 * capacity) n *= 2;
  return n;
}

}  // namespace

StateSpace augment_with_phase(const StateSpace& filter, double kvco) {
  const std::size_t n = filter.order();
  StateSpace aug;
  aug.a = RMatrix(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.a(i, j) = filter.a(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) aug.a(n, j) = kvco * filter.c(0, j);

  aug.b = RMatrix(n + 1, 1);
  for (std::size_t i = 0; i < n; ++i) aug.b(i, 0) = filter.b(i, 0);
  aug.b(n, 0) = kvco * filter.d;

  aug.c = RMatrix(1, n + 1);
  for (std::size_t j = 0; j < n; ++j) aug.c(0, j) = filter.c(0, j);
  aug.d = filter.d;
  return aug;
}

SharedPropagatorStore::SharedPropagatorStore(const PropagatorFactory& factory,
                                             std::size_t slots)
    : factory_(factory) {
  HTMPLL_REQUIRE(slots >= 1, "shared propagator store needs >= 1 slot");
  std::size_t n = 1;
  while (n < slots) n *= 2;
  slots_.resize(n);
  mask_ = n - 1;
  if (factory_.is_spectral()) {
    // Pre-size every slot's matrices so make_into's assign_zero never
    // allocates, even the first time a slot is touched mid-run --
    // spectral misses are allocation-free from the first get() on.
    // (Pade builds replace the matrices wholesale, so pre-sizing would
    // buy nothing there.  gamma2 stays empty: get() builds without it.)
    const std::size_t order = factory_.order();
    const std::size_t inputs = factory_.inputs();
    for (Slot& s : slots_) {
      s.prop.phi0.assign_zero(order, order);
      if (inputs > 0) s.prop.gamma1.assign_zero(order, inputs);
    }
  }
  EnsembleStoreMetrics& m = ensemble_store_metrics();
  lookups_counter_ = &m.lookups;
  misses_counter_ = &m.misses;
  evictions_counter_ = &m.evictions;
}

const StepPropagator& SharedPropagatorStore::get(double h) {
  ++stats_.lookups;
  Slot& slot = slots_[static_cast<std::size_t>(hash_step(h)) & mask_];
  if (slot.used && slot.h == h) return slot.prop;
  ++stats_.misses;
  if (slot.used) ++stats_.evictions;
  factory_.make_into(h, slot.prop, /*want_gamma2=*/false);
  slot.h = h;
  slot.used = true;
  return slot.prop;
}

void SharedPropagatorStore::flush_counters() {
  lookups_counter_->add(stats_.lookups - flushed_.lookups);
  misses_counter_->add(stats_.misses - flushed_.misses);
  evictions_counter_->add(stats_.evictions - flushed_.evictions);
  flushed_ = stats_;
}

PiecewiseExactIntegrator::PiecewiseExactIntegrator(StateSpace ss,
                                                   std::size_t cache_capacity,
                                                   bool use_spectral)
    : ss_(std::move(ss)),
      factory_(ss_.a, ss_.b, use_spectral),
      x_(ss_.order(), 0.0) {
  set_cache_capacity(cache_capacity);
}

void PiecewiseExactIntegrator::set_state(RVector x) {
  HTMPLL_REQUIRE(x.size() == ss_.order(), "state dimension mismatch");
  x_ = std::move(x);
}

void PiecewiseExactIntegrator::set_cache_capacity(std::size_t capacity) {
  HTMPLL_REQUIRE(capacity >= 1, "propagator cache needs at least one slot");
  cache_capacity_ = capacity;
  if (cache_.size() > capacity) {
    cache_.clear();
    next_slot_ = 0;
  }
  cache_.reserve(cache_capacity_);
  slots_.assign(table_size_for(cache_capacity_), -1);
  slot_mask_ = slots_.size() - 1;
  rebuild_index();
}

std::size_t PiecewiseExactIntegrator::slot_home(double h) const {
  return static_cast<std::size_t>(hash_step(h)) & slot_mask_;
}

void PiecewiseExactIntegrator::index_insert(double h,
                                            std::int32_t entry) const {
  std::size_t i = slot_home(h);
  while (slots_[i] >= 0) i = (i + 1) & slot_mask_;
  slots_[i] = entry;
}

void PiecewiseExactIntegrator::index_erase(double h) const {
  std::size_t i = slot_home(h);
  while (true) {
    const std::int32_t e = slots_[i];
    HTMPLL_ASSERT(e >= 0);  // evicted keys are always indexed
    if (cache_[static_cast<std::size_t>(e)].h == h) break;
    i = (i + 1) & slot_mask_;
  }
  // Backward-shift deletion: pull every displaced follower of the probe
  // chain into the hole so later lookups never hit a tombstone.
  slots_[i] = -1;
  std::size_t j = i;
  while (true) {
    j = (j + 1) & slot_mask_;
    const std::int32_t e = slots_[j];
    if (e < 0) break;
    const std::size_t home = slot_home(cache_[static_cast<std::size_t>(e)].h);
    if (((j - home) & slot_mask_) >= ((j - i) & slot_mask_)) {
      slots_[i] = e;
      slots_[j] = -1;
      i = j;
    }
  }
}

void PiecewiseExactIntegrator::rebuild_index() const {
  for (std::size_t e = 0; e < cache_.size(); ++e) {
    index_insert(cache_[e].h, static_cast<std::int32_t>(e));
  }
}

void PiecewiseExactIntegrator::set_shared_store(SharedPropagatorStore* store) {
  if (store != nullptr) {
    HTMPLL_REQUIRE(store->factory().order() == factory_.order() &&
                       store->factory().mode() == factory_.mode(),
                   "shared propagator store was built for a different "
                   "system");
  }
  shared_ = store;
}

const StepPropagator& PiecewiseExactIntegrator::propagator(double h) const {
  if (shared_ != nullptr) return shared_->get(h);
  ++stats_.lookups;
  propagator_metrics().lookups.add();
  std::size_t i = slot_home(h);
  while (true) {
    const std::int32_t e = slots_[i];
    if (e < 0) break;
    const CacheEntry& entry = cache_[static_cast<std::size_t>(e)];
    if (entry.h == h) return entry.prop;
    i = (i + 1) & slot_mask_;
  }
  ++stats_.misses;
  propagator_metrics().misses.add();
  if (factory_.is_spectral()) {
    propagator_metrics().spectral.add();
  } else if (factory_.spectral_requested()) {
    propagator_metrics().pade_fallbacks.add();
  }
  if (cache_.size() < cache_capacity_) {
    cache_.push_back({h, factory_.make(h)});
    index_insert(h, static_cast<std::int32_t>(cache_.size() - 1));
    return cache_.back().prop;
  }
  ++stats_.evictions;
  propagator_metrics().evictions.add();
  obs::diag_event(obs::DiagReason::kPropagatorCacheEviction, h);
  // Churn signal: one bounded event per full capacity turnover (payload
  // = completed turnovers), so an undersized cache shows up in the diag
  // ring even when per-eviction events have aged out.
  if (stats_.evictions % cache_capacity_ == 0) {
    obs::diag_event(obs::DiagReason::kPropagatorCacheChurn,
                    static_cast<double>(stats_.evictions / cache_capacity_));
  }
  CacheEntry& slot = cache_[next_slot_];
  const std::int32_t entry = static_cast<std::int32_t>(next_slot_);
  next_slot_ = (next_slot_ + 1) % cache_capacity_;
  index_erase(slot.h);
  slot.h = h;
  slot.prop = factory_.make(h);
  index_insert(h, entry);
  return slot.prop;
}

RVector PiecewiseExactIntegrator::peek(double h, double u) const {
  HTMPLL_REQUIRE(h >= 0.0, "cannot propagate backwards");
  if (h == 0.0) return x_;
  const RVector uu{u};
  return propagator(h).advance(x_, uu, uu, h);
}

void PiecewiseExactIntegrator::peek_into(double h, double u,
                                         RVector& out) const {
  HTMPLL_REQUIRE(h >= 0.0, "cannot propagate backwards");
  if (h == 0.0) {
    out = x_;
    return;
  }
  propagator(h).advance_into(x_, u, u, h, out);
}

double PiecewiseExactIntegrator::peek_last(double h, double u) const {
  HTMPLL_REQUIRE(h >= 0.0, "cannot propagate backwards");
  const std::size_t last = ss_.order() - 1;
  if (h == 0.0) return x_[last];
  if (shared_ != nullptr && factory_.has_last_row_fast_path()) {
    return factory_.propagate_last_row(h, x_.data(), u);
  }
  peek_into(h, u, scratch_);
  return scratch_[last];
}

double PiecewiseExactIntegrator::peek_output(double h, double u) const {
  peek_into(h, u, scratch_);
  return ss_.output(scratch_, u);
}

void PiecewiseExactIntegrator::advance(double h, double u) {
  peek_into(h, u, scratch_);
  x_.swap(scratch_);
}

}  // namespace htmpll

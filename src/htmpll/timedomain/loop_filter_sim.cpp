#include "htmpll/timedomain/loop_filter_sim.hpp"

#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Process-wide mirrors of the per-integrator cache stats; Counter::add
/// is a no-op unless instrumentation is enabled.
struct PropagatorMetrics {
  obs::Counter& lookups = obs::counter("timedomain.propagator_lookups");
  obs::Counter& misses = obs::counter("timedomain.propagator_misses");
  obs::Counter& evictions = obs::counter("timedomain.propagator_evictions");
};

PropagatorMetrics& propagator_metrics() {
  static PropagatorMetrics m;
  return m;
}

}  // namespace

StateSpace augment_with_phase(const StateSpace& filter, double kvco) {
  const std::size_t n = filter.order();
  StateSpace aug;
  aug.a = RMatrix(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.a(i, j) = filter.a(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) aug.a(n, j) = kvco * filter.c(0, j);

  aug.b = RMatrix(n + 1, 1);
  for (std::size_t i = 0; i < n; ++i) aug.b(i, 0) = filter.b(i, 0);
  aug.b(n, 0) = kvco * filter.d;

  aug.c = RMatrix(1, n + 1);
  for (std::size_t j = 0; j < n; ++j) aug.c(0, j) = filter.c(0, j);
  aug.d = filter.d;
  return aug;
}

PiecewiseExactIntegrator::PiecewiseExactIntegrator(StateSpace ss,
                                                   std::size_t cache_capacity)
    : ss_(std::move(ss)), x_(ss_.order(), 0.0) {
  set_cache_capacity(cache_capacity);
}

void PiecewiseExactIntegrator::set_state(RVector x) {
  HTMPLL_REQUIRE(x.size() == ss_.order(), "state dimension mismatch");
  x_ = std::move(x);
}

void PiecewiseExactIntegrator::set_cache_capacity(std::size_t capacity) {
  HTMPLL_REQUIRE(capacity >= 1, "propagator cache needs at least one slot");
  cache_capacity_ = capacity;
  if (cache_.size() > capacity) {
    cache_.clear();
    next_slot_ = 0;
  }
  cache_.reserve(cache_capacity_);
}

const StepPropagator& PiecewiseExactIntegrator::propagator(double h) const {
  ++stats_.lookups;
  propagator_metrics().lookups.add();
  for (const CacheEntry& e : cache_) {
    if (e.h == h) return e.prop;
  }
  ++stats_.misses;
  propagator_metrics().misses.add();
  if (cache_.size() < cache_capacity_) {
    cache_.push_back({h, make_propagator(ss_.a, ss_.b, h)});
    return cache_.back().prop;
  }
  ++stats_.evictions;
  propagator_metrics().evictions.add();
  CacheEntry& slot = cache_[next_slot_];
  next_slot_ = (next_slot_ + 1) % cache_capacity_;
  slot.h = h;
  slot.prop = make_propagator(ss_.a, ss_.b, h);
  return slot.prop;
}

RVector PiecewiseExactIntegrator::peek(double h, double u) const {
  HTMPLL_REQUIRE(h >= 0.0, "cannot propagate backwards");
  if (h == 0.0) return x_;
  const RVector uu{u};
  return propagator(h).advance(x_, uu, uu, h);
}

double PiecewiseExactIntegrator::peek_output(double h, double u) const {
  return ss_.output(peek(h, u), u);
}

void PiecewiseExactIntegrator::advance(double h, double u) {
  x_ = peek(h, u);
}

}  // namespace htmpll

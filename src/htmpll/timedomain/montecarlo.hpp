// Batched Monte Carlo execution of the transient simulator.
//
// Every stochastic workload in this repo (held charge-pump noise runs,
// fractional-N dither ensembles, acquisition grids, settling batches) is
// an embarrassingly parallel map over independent simulations.  This
// layer runs them on the shared thread pool with the same determinism
// contract as the frequency sweeps: run i always uses the RNG stream
// derived from (base_seed, i) by a fixed splitmix64 mix and writes only
// its own output slot, so ensembles are bit-identical for any thread
// count -- and individual runs can be reproduced in isolation from their
// (base_seed, index) pair alone.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/timedomain/ensemble_sim.hpp"
#include "htmpll/timedomain/pll_sim.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

/// Execution policy shared by the Monte Carlo drivers below.
struct MonteCarloOptions {
  /// Advance members through the lockstep SoA ensemble engine
  /// (EnsembleTransientEngine) instead of one scalar simulator per run.
  /// Bit-identical either way; HTMPLL_ENSEMBLE=0 or
  /// mc::set_ensemble_enabled(false) force the scalar chain globally.
  bool use_ensemble_engine = true;
  /// Upper bound on members per lockstep block.  The drivers size
  /// blocks at ~n/threads so each worker owns one block, capped here to
  /// bound the per-worker SoA scratch.
  std::size_t max_block = 64;
};

/// Deterministic per-run RNG seed: splitmix64 of base_seed + run_index.
/// Adjacent indices yield statistically independent streams; the map is
/// fixed forever so recorded ensembles stay reproducible.
std::uint64_t mc_stream_seed(std::uint64_t base_seed,
                             std::uint64_t run_index);

/// out[i] = fn(i, mc_stream_seed(base_seed, i)) for i in [0, n_runs),
/// evaluated on the pool.  Deterministic slot ownership, like
/// parallel_map.  Rejects n_runs == 0 (an empty ensemble is always a
/// caller bug, not a degenerate experiment).
template <class T, class F>
std::vector<T> monte_carlo_map(std::size_t n_runs, std::uint64_t base_seed,
                               F&& fn,
                               ThreadPool& pool = ThreadPool::global()) {
  HTMPLL_REQUIRE(n_runs >= 1, "monte_carlo_map needs at least one run");
  static obs::Counter& runs = obs::counter("timedomain.mc_runs");
  std::vector<T> out(n_runs);
  pool.parallel_for(n_runs, 1, [&](std::size_t i) {
    HTMPLL_TRACE_SPAN("mc.run");
    runs.add();
    out[i] = fn(i, mc_stream_seed(base_seed, i));
  });
  return out;
}

/// One run of a held charge-pump-noise ensemble: moments of the
/// recorded theta stream after settling.
struct NoiseRunStats {
  double theta_mean = 0.0;
  double theta_rms = 0.0;   ///< rms about the run mean (seconds)
  double theta_peak = 0.0;  ///< max |theta - mean|
  std::size_t events = 0;
};

struct NoiseEnsembleOptions {
  double settle_periods = 200.0;   ///< recording off
  double measure_periods = 2000.0; ///< recording on
  double sample_interval = 0.0;    ///< 0 selects T/8; negative rejected
  MonteCarloOptions mc;            ///< lockstep-engine policy
};

/// Runs n_runs independent simulations of `params` with held white
/// charge-pump noise of the given sigma; run i is seeded with
/// mc_stream_seed(base_seed, i).  Pool-parallel, bit-identical for any
/// thread count and for either engine policy.  Rejects n_runs == 0,
/// negative settle/non-positive measure horizons and negative sample
/// intervals with std::invalid_argument.
std::vector<NoiseRunStats> run_noise_ensemble(
    const PllParameters& params, double sigma, std::uint64_t base_seed,
    std::size_t n_runs, const NoiseEnsembleOptions& opts = {},
    ThreadPool& pool = ThreadPool::global());

/// One lock-acquisition experiment: a loop and an initial relative
/// frequency offset df/f.
struct AcquisitionCase {
  PllParameters params;
  double rel_offset = 0.0;
};

struct AcquisitionOptions {
  double tol_fraction = 1e-6;   ///< lock when |pulse| < tol_fraction * T
  double max_periods = 3000.0;  ///< give up after this many periods
  double chunk_periods = 5.0;   ///< lock-detector polling granularity
  MonteCarloOptions mc;         ///< lockstep-engine policy
};

/// Periods until phase lock for every case (-1 when max_periods is
/// exhausted), distributed over the pool.  The simulations are
/// noise-free and independent, so the batch is deterministic.  On the
/// ensemble path, consecutive cases with identical loop parameters run
/// in lockstep and members retire from the block as they lock.
/// Rejects an empty case list with std::invalid_argument.
std::vector<double> acquisition_periods(
    const std::vector<AcquisitionCase>& cases,
    const AcquisitionOptions& opts = {},
    ThreadPool& pool = ThreadPool::global());

/// Simulated reference-phase-step responses, one loop per entry:
/// out[k][n] ~ theta(nT)/delta + 1 (normalized unit step, out[k][0] = 0)
/// with `count` samples per loop.  Pool-parallel and deterministic;
/// consecutive identical loops share lockstep blocks on the ensemble
/// path.  Rejects an empty loop list with std::invalid_argument.
std::vector<std::vector<double>> step_response_batch(
    const std::vector<PllParameters>& loops, std::size_t count,
    double delta, const MonteCarloOptions& mc = {},
    ThreadPool& pool = ThreadPool::global());

}  // namespace htmpll

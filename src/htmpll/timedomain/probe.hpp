// Small-signal transfer-function measurement on the transient simulator.
//
// Applies a sinusoidal phase modulation to the reference (eq. 14), lets
// the loop settle, then extracts the VCO phase response at the
// modulation frequency with a windowed single-bin DFT.  The ratio of the
// theta and theta_ref bins is the measured closed-loop baseband transfer
// H_{0,0}(j w_m) -- the marks on the paper's Fig. 6.
//
// A Hann window suppresses the image component at w0 - w_m (the
// H_{-1,0} sideband folded by sampling theta(t) on a uniform grid),
// which otherwise contaminates measurements near w0/2.
#pragma once

#include <cstddef>

#include "htmpll/linalg/matrix.hpp"
#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {

class ThreadPool;

struct ProbeOptions {
  /// theta_ref modulation amplitude as a fraction of T (small-signal).
  double amplitude_fraction = 1e-3;
  /// Reference periods simulated (recording off) before measuring.
  double settle_periods = 300.0;
  /// Integer number of modulation periods in the measurement window.
  int measure_periods = 24;
  /// Samples per modulation period (>= 8).
  int samples_per_period = 16;
  /// Warm start: settle the *unmodulated* loop once (settle_periods),
  /// checkpoint it, and reuse that checkpoint for every probe frequency
  /// with only a short per-point re-settle.  Off by default -- the cold
  /// path is bit-identical to the historical per-point full settle; warm
  /// measurements agree within the probe's small-signal tolerance.
  bool warm_start = false;
  /// Reference periods of per-point re-settle after restoring the warm
  /// checkpoint (the 4-modulation-period floor still applies).
  double warm_resettle_periods = 20.0;
};

/// Throws std::invalid_argument unless amplitude_fraction > 0,
/// settle_periods >= 0, measure_periods >= 1, samples_per_period >= 8
/// and warm_resettle_periods >= 0.  Called by every probe entry point.
void validate_probe_options(const ProbeOptions& opts);

/// Settles the unmodulated loop for `settle_periods` reference periods
/// and returns its checkpoint -- the shared warm-start state of the
/// batched probes, exposed for benchmarks and ensemble drivers.
TransientCheckpoint make_settled_checkpoint(const PllParameters& params,
                                            double settle_periods);

struct TransferMeasurement {
  cplx value;              ///< measured H_{0,0}(j w_m)
  double simulated_time;   ///< total simulated seconds
  std::size_t events;      ///< PFD edge events processed
};

/// Measures the closed-loop baseband phase transfer at modulation
/// frequency `omega_m` (rad/s, 0 < omega_m < w0/2 recommended).
TransferMeasurement measure_baseband_transfer(const PllParameters& params,
                                              double omega_m,
                                              const ProbeOptions& opts = {});

/// Measures |H_{n,0}(j w_m)| for band index n: the output component at
/// n w0 + w_m (a reference "spur" for n != 0) produced by baseband
/// reference modulation at w_m.  This exercises the off-diagonal HTM
/// elements of Fig. 2 -- "signal transfers to other frequency bands can
/// be studied as well by considering the other elements of H(s)".
/// Requires |band| <= 8 (sampling-rate limit of the probe).
TransferMeasurement measure_band_transfer(const PllParameters& params,
                                          int band, double omega_m,
                                          const ProbeOptions& opts = {});

/// Batched probe: one transient simulation per entry, distributed over
/// the given thread pool (global pool by default).  Each simulation is
/// independent, so results are identical to calling
/// measure_baseband_transfer point by point, regardless of thread
/// count.  With opts.warm_start the settle phase runs once up front and
/// its checkpoint seeds every point.  out[i] corresponds to omegas[i].
std::vector<TransferMeasurement> measure_baseband_transfer_many(
    const PllParameters& params, const std::vector<double>& omegas,
    const ProbeOptions& opts = {});
std::vector<TransferMeasurement> measure_baseband_transfer_many(
    const PllParameters& params, const std::vector<double>& omegas,
    const ProbeOptions& opts, ThreadPool& pool);

/// One (band, omega_m) request for measure_band_transfer_many.
struct BandProbePoint {
  int band;
  double omega_m;
};

/// Batched band-transfer probe; same determinism and warm-start
/// semantics as measure_baseband_transfer_many.
std::vector<TransferMeasurement> measure_band_transfer_many(
    const PllParameters& params, const std::vector<BandProbePoint>& points,
    const ProbeOptions& opts = {});
std::vector<TransferMeasurement> measure_band_transfer_many(
    const PllParameters& params, const std::vector<BandProbePoint>& points,
    const ProbeOptions& opts, ThreadPool& pool);

/// Windowed single-bin DFT ratio of two equally-sampled records; exposed
/// for unit testing.  Returns sum(w_k y_k e^{-j wy t_k}) /
/// sum(w_k x_k e^{-j wx t_k}) with a Hann window.
cplx single_bin_ratio(const std::vector<double>& t,
                      const std::vector<double>& y, double omega_y,
                      const std::vector<double>& x, double omega_x);

/// Convenience overload with omega_y == omega_x.
cplx single_bin_transfer(const std::vector<double>& t,
                         const std::vector<double>& y,
                         const std::vector<double>& x, double omega);

}  // namespace htmpll

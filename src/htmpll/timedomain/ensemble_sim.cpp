#include "htmpll/timedomain/ensemble_sim.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/obs/diag.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace mc {

namespace {

/// HTMPLL_ENSEMBLE environment policy: true means "force scalar".
bool env_forces_scalar() {
  const char* e = std::getenv("HTMPLL_ENSEMBLE");
  if (e == nullptr || *e == '\0') return false;
  if (std::strcmp(e, "0") == 0 || std::strcmp(e, "off") == 0) return true;
  if (std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0) return false;
  std::fprintf(stderr,
               "htmpll: warning: HTMPLL_ENSEMBLE='%s' is not recognized "
               "(use 0/off or 1/on); keeping the ensemble engine "
               "enabled\n",
               e);
  return false;
}

/// Cached policy: -1 unresolved, else 0/1.  Relaxed atomics suffice
/// because the environment read is idempotent.
std::atomic<int> g_enabled{-1};

}  // namespace

bool ensemble_enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_forces_scalar() ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_ensemble_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace mc

namespace {

/// Process-wide lockstep telemetry; Counter::add is a no-op unless
/// instrumentation is enabled.
struct EnsembleMetrics {
  obs::Counter& engines = obs::counter("timedomain.ensemble_engines");
  obs::Counter& members = obs::counter("timedomain.ensemble_members");
  obs::Counter& rounds = obs::counter("timedomain.ensemble_rounds");
  obs::Counter& batched = obs::counter("timedomain.ensemble_batched_steps");
  obs::Counter& scalar = obs::counter("timedomain.ensemble_scalar_steps");
};

EnsembleMetrics& ensemble_metrics() {
  static EnsembleMetrics m;
  return m;
}

std::vector<PllTransientSim> make_members(const PllParameters& params,
                                          std::size_t m,
                                          const ReferenceModulation& mod,
                                          const TransientConfig& cfg) {
  HTMPLL_REQUIRE(m >= 1, "ensemble needs at least one member");
  std::vector<PllTransientSim> sims;
  sims.reserve(m);  // never reallocated: the store refs member 0's factory
  for (std::size_t k = 0; k < m; ++k) sims.emplace_back(params, mod, cfg);
  return sims;
}

std::uint64_t h_bits(double h) {
  std::uint64_t b;
  std::memcpy(&b, &h, sizeof b);
  return b;
}

}  // namespace

EnsembleTransientEngine::EnsembleTransientEngine(const PllParameters& params,
                                                 std::size_t m,
                                                 ReferenceModulation mod,
                                                 TransientConfig cfg)
    : t_period_(params.period()),
      sims_(make_members(params, m, mod, cfg)),
      store_(sims_[0].propagator_factory()) {
  order_ = sims_[0].state_order();
  retired_.assign(m, 0);
  plans_.resize(m);
  lanes_.reserve(m);
  active_.assign(m, 0);
  x_block_.resize(order_ * m);
  out_block_.resize(order_ * m);
  u_block_.resize(m);
  for (PllTransientSim& sim : sims_) {
    sim.set_shared_propagator_store(&store_);
  }
  ensemble_metrics().engines.add();
  for (std::size_t k = 0; k < m; ++k) ensemble_metrics().members.add();
}

void EnsembleTransientEngine::run_until(double t_end) {
  const std::size_t m = sims_.size();
  const std::size_t n = order_;
  std::size_t n_active = 0;
  for (std::size_t k = 0; k < m; ++k) {
    active_[k] = 0;
    if (retired_[k]) continue;
    sims_[k].begin_run(t_end);
    if (sims_[k].time() < t_end) {
      active_[k] = 1;
      ++n_active;
    }
  }

  while (n_active > 0) {
    ++rounds_;
    ensemble_metrics().rounds.add();
    lanes_.clear();
    for (std::size_t k = 0; k < m; ++k) {
      if (!active_[k]) continue;
      plans_[k] = sims_[k].plan_step(t_end);
      const double h = plans_[k].t_evt - sims_[k].time();
      lanes_.push_back({h_bits(h), h, static_cast<std::uint32_t>(k)});
    }
    // Bucket by the exact bit pattern of h; members within a bucket
    // stay in ascending order for deterministic telemetry (results are
    // member-local and never depend on the order).
    std::sort(lanes_.begin(), lanes_.end(),
              [](const Lane& a, const Lane& b) {
                return a.h_bits != b.h_bits ? a.h_bits < b.h_bits
                                            : a.member < b.member;
              });

    std::size_t scalar_lanes = 0;
    bool any_batched = false;
    for (std::size_t i = 0; i < lanes_.size();) {
      std::size_t j = i;
      while (j < lanes_.size() && lanes_[j].h_bits == lanes_[i].h_bits) ++j;
      const std::size_t width = j - i;
      const double h = lanes_[i].h;
      if (width >= 2 && h > 0.0) {
        // One shared propagator advances the whole bucket: gather the
        // member states into an n x width SoA block, apply
        // phi0 · X (+ gamma1 u0) through the batch kernel, commit each
        // member with its precomputed column.
        any_batched = true;
        batched_steps_ += width;
        ensemble_metrics().batched.add(width);
        const StepPropagator& prop = store_.get(h);
        for (std::size_t c = 0; c < width; ++c) {
          const RVector& x = sims_[lanes_[i + c].member].state();
          for (std::size_t r = 0; r < n; ++r) {
            x_block_[r * width + c] = x[r];
          }
          u_block_[c] = plans_[lanes_[i + c].member].current;
        }
        batch_step_advance(prop.phi0.row(0),
                           prop.gamma1.empty() ? nullptr : prop.gamma1.row(0),
                           n, x_block_.data(), u_block_.data(), width,
                           out_block_.data());
        for (std::size_t c = 0; c < width; ++c) {
          const std::uint32_t k = lanes_[i + c].member;
          const bool fired = sims_[k].commit_step_with_state(
              plans_[k], out_block_.data() + c, width);
          if (!fired || !(sims_[k].time() < t_end)) {
            active_[k] = 0;
            --n_active;
          }
        }
      } else {
        // Divergent (or zero-length) steps retire to the scalar commit
        // for this round; the shared store still serves their
        // propagator lookups.
        scalar_lanes += width;
        scalar_steps_ += width;
        ensemble_metrics().scalar.add(width);
        for (std::size_t c = 0; c < width; ++c) {
          const std::uint32_t k = lanes_[i + c].member;
          const bool fired = sims_[k].commit_step(plans_[k]);
          if (!fired || !(sims_[k].time() < t_end)) {
            active_[k] = 0;
            --n_active;
          }
        }
      }
      i = j;
    }
    if (any_batched && scalar_lanes > 0) {
      // A split round: some lanes advanced in lockstep, the rest fell
      // back to scalar commits.  Payload = scalar lane count.
      obs::diag_event(obs::DiagReason::kEnsembleLaneDivergence,
                      static_cast<double>(scalar_lanes));
    }
  }
  // Store lookups only bump the local stats struct on the hot path;
  // publish the accumulated deltas to the obs counters per segment.
  store_.flush_counters();
}

void EnsembleTransientEngine::run_periods(double n) {
  for (std::size_t k = 0; k < sims_.size(); ++k) {
    if (!retired_[k]) {
      // Non-retired members always share the same clock (each run_until
      // completes them all to t_end), so any of them anchors the horizon.
      run_until(sims_[k].time() + n * t_period_);
      return;
    }
  }
}

}  // namespace htmpll

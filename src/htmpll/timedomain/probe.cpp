#include "htmpll/timedomain/probe.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/parallel/thread_pool.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

obs::Counter& probe_point_counter() {
  static obs::Counter& c = obs::counter("timedomain.probe_points");
  return c;
}

}  // namespace

cplx single_bin_ratio(const std::vector<double>& t,
                      const std::vector<double>& y, double omega_y,
                      const std::vector<double>& x, double omega_x) {
  HTMPLL_REQUIRE(t.size() == y.size() && t.size() == x.size(),
                 "record length mismatch");
  HTMPLL_REQUIRE(t.size() >= 8, "record too short for a bin estimate");
  const std::size_t n = t.size();
  cplx ybin{0.0}, xbin{0.0};
  for (std::size_t k = 0; k < n; ++k) {
    const double hann =
        0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                              static_cast<double>(k) /
                              static_cast<double>(n - 1)));
    ybin += hann * y[k] * std::exp(cplx{0.0, -omega_y * t[k]});
    xbin += hann * x[k] * std::exp(cplx{0.0, -omega_x * t[k]});
  }
  HTMPLL_REQUIRE(std::abs(xbin) > 0.0, "stimulus bin is empty");
  return ybin / xbin;
}

cplx single_bin_transfer(const std::vector<double>& t,
                         const std::vector<double>& y,
                         const std::vector<double>& x, double omega) {
  return single_bin_ratio(t, y, omega, x, omega);
}

void validate_probe_options(const ProbeOptions& opts) {
  HTMPLL_REQUIRE(opts.amplitude_fraction > 0.0,
                 "modulation amplitude must be positive");
  HTMPLL_REQUIRE(opts.settle_periods >= 0.0,
                 "settle period count must be non-negative");
  HTMPLL_REQUIRE(opts.measure_periods >= 1, "need >= 1 measurement period");
  HTMPLL_REQUIRE(opts.samples_per_period >= 8,
                 "need >= 8 samples per modulation period");
  HTMPLL_REQUIRE(opts.warm_resettle_periods >= 0.0,
                 "warm re-settle period count must be non-negative");
}

TransientCheckpoint make_settled_checkpoint(const PllParameters& params,
                                            double settle_periods) {
  HTMPLL_REQUIRE(settle_periods >= 0.0,
                 "settle period count must be non-negative");
  HTMPLL_TRACE_SPAN("probe.warm_settle");
  TransientConfig cfg;
  cfg.record = false;
  PllTransientSim sim(params, {}, cfg);
  sim.run_periods(settle_periods);
  return sim.checkpoint();
}

namespace {

/// Shared probe core: runs the modulated simulation to steady state and
/// returns the bin ratio between the theta record at omega_out and the
/// theta_ref record at omega_m.  With a warm checkpoint the full settle
/// is replaced by restoring the settled unmodulated state and a short
/// re-settle under modulation.
TransferMeasurement run_probe(const PllParameters& params, double omega_m,
                              double omega_out, double min_sample_rate,
                              const ProbeOptions& opts,
                              const TransientCheckpoint* warm) {
  HTMPLL_TRACE_SPAN("probe.point");
  probe_point_counter().add();
  HTMPLL_REQUIRE(omega_m > 0.0, "modulation frequency must be positive");
  validate_probe_options(opts);

  const double t_period = params.period();
  const double tm = 2.0 * std::numbers::pi / omega_m;

  ReferenceModulation mod;
  mod.amplitude = opts.amplitude_fraction * t_period;
  mod.omega = omega_m;
  mod.phase = 0.0;

  TransientConfig cfg;
  // Never sample slower than T/8 (ripple and sidebands near multiples
  // of w0 must not alias near the measurement bins), and honor any
  // higher rate required to resolve omega_out.
  cfg.sample_interval =
      std::min({tm / static_cast<double>(opts.samples_per_period),
                t_period / 8.0,
                2.0 * std::numbers::pi / min_sample_rate});
  cfg.record = false;

  PllTransientSim sim(params, mod, cfg);
  double settle;
  if (warm != nullptr) {
    sim.restore(*warm);
    settle = sim.time() + std::max(opts.warm_resettle_periods * t_period,
                                   4.0 * tm);
  } else {
    settle = std::max(opts.settle_periods * t_period, 4.0 * tm);
  }
  {
    HTMPLL_TRACE_SPAN("probe.settle");
    sim.run_until(settle);
  }

  sim.set_recording(true);
  sim.clear_samples();
  {
    HTMPLL_TRACE_SPAN("probe.measure");
    sim.run_until(settle + static_cast<double>(opts.measure_periods) * tm);
  }

  TransferMeasurement out;
  out.value = single_bin_ratio(sim.sample_times(), sim.theta_samples(),
                               omega_out, sim.theta_ref_samples(), omega_m);
  out.simulated_time = sim.time();
  out.events = sim.event_count();
  return out;
}

TransferMeasurement baseband_probe(const PllParameters& params,
                                   double omega_m, const ProbeOptions& opts,
                                   const TransientCheckpoint* warm) {
  return run_probe(params, omega_m, omega_m, 16.0 * omega_m, opts, warm);
}

TransferMeasurement band_probe(const PllParameters& params, int band,
                               double omega_m, const ProbeOptions& opts,
                               const TransientCheckpoint* warm) {
  HTMPLL_REQUIRE(band >= -8 && band <= 8,
                 "band transfer probe supports |n| <= 8");
  const double w0 = params.w0;
  const double omega_out =
      static_cast<double>(band) * w0 + omega_m;
  // The output component may sit at a negative frequency (n < 0); a real
  // record's bin there is the conjugate of the bin at |omega|.  We
  // measure at |omega| and conjugate back -- the magnitude matches
  // |H_{n,0}| exactly; the phase is only meaningful for n >= 0 (the
  // stimulus bin is not conjugated).
  const double omega_abs = std::abs(omega_out);
  HTMPLL_REQUIRE(omega_abs > 1e-12 * w0,
                 "output component sits at DC; choose another w_m");
  // Sample fast enough that omega_abs is well below Nyquist.
  const double min_rate = 4.0 * (omega_abs + w0);
  TransferMeasurement m = run_probe(params, omega_m, omega_abs, min_rate,
                                    opts, warm);
  if (omega_out < 0.0) m.value = std::conj(m.value);
  return m;
}

/// Settles the shared warm-start checkpoint when requested (and only
/// then -- the cold batched path must not simulate anything extra).
struct WarmState {
  TransientCheckpoint checkpoint;
  const TransientCheckpoint* ptr = nullptr;

  WarmState(const PllParameters& params, const ProbeOptions& opts) {
    if (opts.warm_start) {
      checkpoint = make_settled_checkpoint(params, opts.settle_periods);
      ptr = &checkpoint;
    }
  }
};

}  // namespace

TransferMeasurement measure_baseband_transfer(const PllParameters& params,
                                              double omega_m,
                                              const ProbeOptions& opts) {
  validate_probe_options(opts);
  const WarmState warm(params, opts);
  return baseband_probe(params, omega_m, opts, warm.ptr);
}

TransferMeasurement measure_band_transfer(const PllParameters& params,
                                          int band, double omega_m,
                                          const ProbeOptions& opts) {
  validate_probe_options(opts);
  const WarmState warm(params, opts);
  return band_probe(params, band, omega_m, opts, warm.ptr);
}

std::vector<TransferMeasurement> measure_baseband_transfer_many(
    const PllParameters& params, const std::vector<double>& omegas,
    const ProbeOptions& opts) {
  return measure_baseband_transfer_many(params, omegas, opts,
                                        ThreadPool::global());
}

std::vector<TransferMeasurement> measure_baseband_transfer_many(
    const PllParameters& params, const std::vector<double>& omegas,
    const ProbeOptions& opts, ThreadPool& pool) {
  validate_probe_options(opts);
  const WarmState warm(params, opts);
  std::vector<TransferMeasurement> out(omegas.size());
  // Grain 1: each probe is a full transient simulation, far heavier
  // than the dispatch overhead.
  pool.parallel_for(omegas.size(), 1, [&](std::size_t i) {
    out[i] = baseband_probe(params, omegas[i], opts, warm.ptr);
  });
  return out;
}

std::vector<TransferMeasurement> measure_band_transfer_many(
    const PllParameters& params, const std::vector<BandProbePoint>& points,
    const ProbeOptions& opts) {
  return measure_band_transfer_many(params, points, opts,
                                    ThreadPool::global());
}

std::vector<TransferMeasurement> measure_band_transfer_many(
    const PllParameters& params, const std::vector<BandProbePoint>& points,
    const ProbeOptions& opts, ThreadPool& pool) {
  validate_probe_options(opts);
  const WarmState warm(params, opts);
  std::vector<TransferMeasurement> out(points.size());
  pool.parallel_for(points.size(), 1, [&](std::size_t i) {
    out[i] = band_probe(params, points[i].band, points[i].omega_m, opts,
                        warm.ptr);
  });
  return out;
}

}  // namespace htmpll

#include "htmpll/timedomain/montecarlo.hpp"

#include <cmath>

#include "htmpll/obs/trace.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

std::uint64_t mc_stream_seed(std::uint64_t base_seed,
                             std::uint64_t run_index) {
  // splitmix64 (Steele/Lea/Flood): a bijective avalanche mix, so
  // distinct (base, index) pairs never collide on base + index.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<NoiseRunStats> run_noise_ensemble(const PllParameters& params,
                                              double sigma,
                                              std::uint64_t base_seed,
                                              std::size_t n_runs,
                                              const NoiseEnsembleOptions& opts,
                                              ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.noise_ensemble");
  HTMPLL_REQUIRE(sigma >= 0.0, "noise sigma must be non-negative");
  HTMPLL_REQUIRE(opts.settle_periods >= 0.0 && opts.measure_periods > 0.0,
                 "noise ensemble needs settle >= 0 and measure > 0 periods");
  return monte_carlo_map<NoiseRunStats>(
      n_runs, base_seed,
      [&](std::size_t, std::uint64_t seed) {
        TransientConfig cfg;
        cfg.sample_interval = opts.sample_interval;
        cfg.record = false;
        PllTransientSim sim(params, {}, cfg);
        sim.set_noise_current(sigma, static_cast<unsigned>(seed));
        sim.run_periods(opts.settle_periods);
        sim.set_recording(true);
        sim.clear_samples();
        sim.run_periods(opts.measure_periods);

        const std::vector<double>& th = sim.theta_samples();
        NoiseRunStats st;
        st.events = sim.event_count();
        if (th.empty()) return st;
        for (double v : th) st.theta_mean += v;
        st.theta_mean /= static_cast<double>(th.size());
        for (double v : th) {
          const double d = v - st.theta_mean;
          st.theta_rms += d * d;
          st.theta_peak = std::max(st.theta_peak, std::abs(d));
        }
        st.theta_rms = std::sqrt(st.theta_rms /
                                 static_cast<double>(th.size()));
        return st;
      },
      pool);
}

std::vector<double> acquisition_periods(
    const std::vector<AcquisitionCase>& cases,
    const AcquisitionOptions& opts, ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.acquisition_batch");
  HTMPLL_REQUIRE(opts.tol_fraction > 0.0 && opts.chunk_periods > 0.0 &&
                     opts.max_periods > 0.0,
                 "acquisition options must be positive");
  std::vector<double> out(cases.size());
  pool.parallel_for(cases.size(), 1, [&](std::size_t i) {
    const AcquisitionCase& c = cases[i];
    PllTransientSim sim(c.params);
    sim.set_recording(false);
    sim.set_initial_frequency_offset(c.rel_offset);
    const double tol = opts.tol_fraction * c.params.period();
    double elapsed = 0.0;
    double locked_at = -1.0;
    while (elapsed < opts.max_periods) {
      sim.run_periods(opts.chunk_periods);
      elapsed += opts.chunk_periods;
      if (sim.is_locked(tol)) {
        locked_at = elapsed;
        break;
      }
    }
    out[i] = locked_at;
  });
  return out;
}

std::vector<std::vector<double>> step_response_batch(
    const std::vector<PllParameters>& loops, std::size_t count,
    double delta, ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.step_response_batch");
  HTMPLL_REQUIRE(count >= 1, "need at least one step-response sample");
  HTMPLL_REQUIRE(delta != 0.0, "step size must be non-zero");
  std::vector<std::vector<double>> out(loops.size());
  pool.parallel_for(loops.size(), 1, [&](std::size_t i) {
    const PllParameters& p = loops[i];
    TransientConfig cfg;
    cfg.sample_interval = p.period();
    PllTransientSim sim(p, {}, cfg);
    sim.set_initial_theta(-delta);
    sim.run_periods(static_cast<double>(count) + 2.0);
    std::vector<double> resp;
    resp.reserve(count);
    resp.push_back(0.0);  // t = 0
    for (std::size_t k = 0;
         k + 1 < count && k < sim.theta_samples().size(); ++k) {
      resp.push_back(sim.theta_samples()[k] / delta + 1.0);
    }
    out[i] = std::move(resp);
  });
  return out;
}

}  // namespace htmpll

#include "htmpll/timedomain/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "htmpll/obs/trace.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

namespace {

/// Moments of one finished noise run.  Shared by the scalar and
/// lockstep paths so the reduction is one code path, bit for bit.
NoiseRunStats reduce_noise_run(const PllTransientSim& sim) {
  const std::vector<double>& th = sim.theta_samples();
  NoiseRunStats st;
  st.events = sim.event_count();
  if (th.empty()) return st;
  for (double v : th) st.theta_mean += v;
  st.theta_mean /= static_cast<double>(th.size());
  for (double v : th) {
    const double d = v - st.theta_mean;
    st.theta_rms += d * d;
    st.theta_peak = std::max(st.theta_peak, std::abs(d));
  }
  st.theta_rms = std::sqrt(st.theta_rms / static_cast<double>(th.size()));
  return st;
}

/// Normalized step response of one finished run (shared reduction).
std::vector<double> reduce_step_response(const PllTransientSim& sim,
                                         std::size_t count, double delta) {
  std::vector<double> resp;
  resp.reserve(count);
  resp.push_back(0.0);  // t = 0
  for (std::size_t k = 0; k + 1 < count && k < sim.theta_samples().size();
       ++k) {
    resp.push_back(sim.theta_samples()[k] / delta + 1.0);
  }
  return resp;
}

/// Lockstep block width: ~one block per worker, capped by max_block so
/// the per-worker SoA scratch stays bounded.
std::size_t block_width(std::size_t n, const MonteCarloOptions& mc,
                        const ThreadPool& pool) {
  const std::size_t cap = std::max<std::size_t>(1, mc.max_block);
  const std::size_t per_worker = (n + pool.threads() - 1) / pool.threads();
  return std::min(std::max<std::size_t>(1, per_worker), cap);
}

/// True when two loops may share one lockstep block (identical dynamics
/// field for field, hence identical propagator factories).
bool same_loop(const PllParameters& a, const PllParameters& b) {
  return a.w0 == b.w0 && a.icp == b.icp && a.kvco == b.kvco &&
         a.filter.r == b.filter.r && a.filter.c1 == b.filter.c1 &&
         a.filter.c2 == b.filter.c2;
}

/// Partitions [0, n) into lockstep blocks: maximal runs of consecutive
/// same-loop entries, each split to at most `width` members.
template <class SameLoopAt>
std::vector<std::pair<std::size_t, std::size_t>> lockstep_blocks(
    std::size_t n, std::size_t width, const SameLoopAt& same) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  std::size_t g0 = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || !same(g0, i)) {
      for (std::size_t b = g0; b < i; b += width) {
        blocks.emplace_back(b, std::min(i, b + width));
      }
      g0 = i;
    }
  }
  return blocks;
}

}  // namespace

std::uint64_t mc_stream_seed(std::uint64_t base_seed,
                             std::uint64_t run_index) {
  // splitmix64 (Steele/Lea/Flood): a bijective avalanche mix, so
  // distinct (base, index) pairs never collide on base + index.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<NoiseRunStats> run_noise_ensemble(const PllParameters& params,
                                              double sigma,
                                              std::uint64_t base_seed,
                                              std::size_t n_runs,
                                              const NoiseEnsembleOptions& opts,
                                              ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.noise_ensemble");
  HTMPLL_REQUIRE(n_runs >= 1, "noise ensemble needs at least one run");
  HTMPLL_REQUIRE(sigma >= 0.0, "noise sigma must be non-negative");
  HTMPLL_REQUIRE(opts.settle_periods >= 0.0 && opts.measure_periods > 0.0,
                 "noise ensemble needs settle >= 0 and measure > 0 periods");
  HTMPLL_REQUIRE(opts.sample_interval >= 0.0,
                 "noise ensemble sample interval must be >= 0 (0 = T/8)");

  if (opts.mc.use_ensemble_engine && mc::ensemble_enabled()) {
    static obs::Counter& runs = obs::counter("timedomain.mc_runs");
    std::vector<NoiseRunStats> out(n_runs);
    pool.for_each_chunk(
        n_runs, block_width(n_runs, opts.mc, pool),
        [&](std::size_t b0, std::size_t b1) {
          HTMPLL_TRACE_SPAN("mc.noise_block");
          TransientConfig cfg;
          cfg.sample_interval = opts.sample_interval;
          cfg.record = false;
          EnsembleTransientEngine eng(params, b1 - b0, {}, cfg);
          for (std::size_t k = 0; k < eng.size(); ++k) {
            eng.member(k).set_noise_current(
                sigma,
                static_cast<unsigned>(mc_stream_seed(base_seed, b0 + k)));
          }
          eng.run_periods(opts.settle_periods);
          for (std::size_t k = 0; k < eng.size(); ++k) {
            eng.member(k).set_recording(true);
            eng.member(k).clear_samples();
          }
          eng.run_periods(opts.measure_periods);
          for (std::size_t k = 0; k < eng.size(); ++k) {
            runs.add();
            out[b0 + k] = reduce_noise_run(eng.member(k));
          }
        });
    return out;
  }

  return monte_carlo_map<NoiseRunStats>(
      n_runs, base_seed,
      [&](std::size_t, std::uint64_t seed) {
        TransientConfig cfg;
        cfg.sample_interval = opts.sample_interval;
        cfg.record = false;
        PllTransientSim sim(params, {}, cfg);
        sim.set_noise_current(sigma, static_cast<unsigned>(seed));
        sim.run_periods(opts.settle_periods);
        sim.set_recording(true);
        sim.clear_samples();
        sim.run_periods(opts.measure_periods);
        return reduce_noise_run(sim);
      },
      pool);
}

std::vector<double> acquisition_periods(
    const std::vector<AcquisitionCase>& cases,
    const AcquisitionOptions& opts, ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.acquisition_batch");
  HTMPLL_REQUIRE(!cases.empty(),
                 "acquisition batch needs at least one case");
  HTMPLL_REQUIRE(opts.tol_fraction > 0.0 && opts.chunk_periods > 0.0 &&
                     opts.max_periods > 0.0,
                 "acquisition options must be positive");
  std::vector<double> out(cases.size());

  if (opts.mc.use_ensemble_engine && mc::ensemble_enabled()) {
    const auto blocks = lockstep_blocks(
        cases.size(), block_width(cases.size(), opts.mc, pool),
        [&](std::size_t a, std::size_t b) {
          return same_loop(cases[a].params, cases[b].params);
        });
    pool.for_each_index(blocks.size(), 1, [&](std::size_t bi) {
      HTMPLL_TRACE_SPAN("mc.acquisition_block");
      const auto [b0, b1] = blocks[bi];
      const PllParameters& p = cases[b0].params;
      EnsembleTransientEngine eng(p, b1 - b0);
      for (std::size_t k = 0; k < eng.size(); ++k) {
        eng.member(k).set_recording(false);
        eng.member(k).set_initial_frequency_offset(
            cases[b0 + k].rel_offset);
        out[b0 + k] = -1.0;
      }
      const double tol = opts.tol_fraction * p.period();
      double elapsed = 0.0;
      std::size_t remaining = eng.size();
      while (elapsed < opts.max_periods && remaining > 0) {
        eng.run_periods(opts.chunk_periods);
        elapsed += opts.chunk_periods;
        for (std::size_t k = 0; k < eng.size(); ++k) {
          if (eng.retired(k)) continue;
          if (eng.member(k).is_locked(tol)) {
            out[b0 + k] = elapsed;
            eng.retire(k);  // locked members leave the lockstep rounds
            --remaining;
          }
        }
      }
    });
    return out;
  }

  pool.parallel_for(cases.size(), 1, [&](std::size_t i) {
    const AcquisitionCase& c = cases[i];
    PllTransientSim sim(c.params);
    sim.set_recording(false);
    sim.set_initial_frequency_offset(c.rel_offset);
    const double tol = opts.tol_fraction * c.params.period();
    double elapsed = 0.0;
    double locked_at = -1.0;
    while (elapsed < opts.max_periods) {
      sim.run_periods(opts.chunk_periods);
      elapsed += opts.chunk_periods;
      if (sim.is_locked(tol)) {
        locked_at = elapsed;
        break;
      }
    }
    out[i] = locked_at;
  });
  return out;
}

std::vector<std::vector<double>> step_response_batch(
    const std::vector<PllParameters>& loops, std::size_t count,
    double delta, const MonteCarloOptions& mc, ThreadPool& pool) {
  HTMPLL_TRACE_SPAN("mc.step_response_batch");
  HTMPLL_REQUIRE(!loops.empty(),
                 "step-response batch needs at least one loop");
  HTMPLL_REQUIRE(count >= 1, "need at least one step-response sample");
  HTMPLL_REQUIRE(delta != 0.0, "step size must be non-zero");
  std::vector<std::vector<double>> out(loops.size());

  if (mc.use_ensemble_engine && mc::ensemble_enabled()) {
    const auto blocks = lockstep_blocks(
        loops.size(), block_width(loops.size(), mc, pool),
        [&](std::size_t a, std::size_t b) {
          return same_loop(loops[a], loops[b]);
        });
    pool.for_each_index(blocks.size(), 1, [&](std::size_t bi) {
      HTMPLL_TRACE_SPAN("mc.step_block");
      const auto [b0, b1] = blocks[bi];
      const PllParameters& p = loops[b0];
      TransientConfig cfg;
      cfg.sample_interval = p.period();
      EnsembleTransientEngine eng(p, b1 - b0, {}, cfg);
      for (std::size_t k = 0; k < eng.size(); ++k) {
        eng.member(k).set_initial_theta(-delta);
      }
      eng.run_periods(static_cast<double>(count) + 2.0);
      for (std::size_t k = 0; k < eng.size(); ++k) {
        out[b0 + k] = reduce_step_response(eng.member(k), count, delta);
      }
    });
    return out;
  }

  pool.parallel_for(loops.size(), 1, [&](std::size_t i) {
    const PllParameters& p = loops[i];
    TransientConfig cfg;
    cfg.sample_interval = p.period();
    PllTransientSim sim(p, {}, cfg);
    sim.set_initial_theta(-delta);
    sim.run_periods(static_cast<double>(count) + 2.0);
    out[i] = reduce_step_response(sim, count, delta);
  });
  return out;
}

}  // namespace htmpll

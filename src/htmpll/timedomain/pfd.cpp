#include "htmpll/timedomain/pfd.hpp"

namespace htmpll {

void TriStatePfd::on_reference_edge() {
  up_ = true;
  if (up_ && down_) {
    up_ = false;
    down_ = false;
  }
}

void TriStatePfd::on_vco_edge() {
  down_ = true;
  if (up_ && down_) {
    up_ = false;
    down_ = false;
  }
}

TriStatePfd::State TriStatePfd::state() const {
  if (up_) return State::kUp;
  if (down_) return State::kDown;
  return State::kIdle;
}

double TriStatePfd::pump_current(double icp) const {
  if (up_) return icp;
  if (down_) return -icp;
  return 0.0;
}

void TriStatePfd::reset() {
  up_ = false;
  down_ = false;
}

}  // namespace htmpll

// Event-driven behavioral transient simulator of the charge-pump PLL of
// Fig. 1/Fig. 3 -- the C++ replacement for the paper's Matlab/Simulink
// time-marching verification.
//
// Signal model (eqs. 14-15): rising edges of the reference occur where
// t + theta_ref(t) = n T and rising edges of the (prescaled) VCO where
// t + theta(t) = n T, with theta' = kvco * y(t) driven by the loop-filter
// output y.  Between PFD events the charge-pump current is constant, so
// the filter+phase state is propagated *exactly* (matrix exponential) and
// edge instants are located by Newton iteration with exact propagation
// inside the bracket -- no time-step discretization error at all.
#pragma once

#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <vector>

#include "htmpll/lti/loop_filter.hpp"
#include "htmpll/timedomain/loop_filter_sim.hpp"
#include "htmpll/timedomain/pfd.hpp"

namespace htmpll {

/// Small-signal phase modulation applied to the reference:
/// theta_ref(t) = amplitude * sin(omega t + phase) (in seconds, like the
/// paper's time-normalized phase).
struct ReferenceModulation {
  double amplitude = 0.0;
  double omega = 0.0;
  double phase = 0.0;

  double value(double t) const;
  double slope(double t) const;
};

struct TransientConfig {
  /// Uniform recording period for theta samples; 0 selects T/8.
  double sample_interval = 0.0;
  /// Record (t, theta, theta_ref) streams while running.
  bool record = true;
  /// Newton convergence tolerance for edge times, relative to T.
  double edge_tolerance = 1e-13;
  /// Step-propagator cache capacity of the exact integrator (>= 1).
  /// Affects only how often propagators are rebuilt, never the results.
  std::size_t propagator_cache =
      PiecewiseExactIntegrator::kDefaultCacheCapacity;
  /// Serve cache misses from the one-time spectral factorization of the
  /// state matrix instead of a per-step Van Loan expm (see
  /// linalg/spectral.hpp).  False forces the expm path, bit-identical
  /// to the pre-spectral engine; the HTMPLL_SPECTRAL environment switch
  /// can force the same globally.
  bool use_spectral_propagators = true;
};

/// One planned event-loop iteration of PllTransientSim: the held
/// charge-pump current over the segment and the candidate event times,
/// with t_evt = min(t_ref, t_vco, t_leak, t_end).  plan_step computes
/// it without touching any state, so a lockstep ensemble engine can
/// plan every member, bucket members by step length h = t_evt - time()
/// and advance whole buckets through one shared propagator before
/// committing each member.
struct TransientStepPlan {
  double current = 0.0;
  double t_ref = 0.0;
  double t_vco = 0.0;
  double t_leak = 0.0;
  double t_evt = 0.0;
};

/// Fixed-capacity ring of the last few charge-pump pulse widths (lock
/// detection).  Replaces a std::deque whose block churn was the last
/// steady-state allocation in the event loop.
class PulseHistory {
 public:
  static constexpr std::size_t kCapacity = 8;

  void push(double w) {
    buf_[head_] = w;
    head_ = (head_ + 1) % kCapacity;
    if (size_ < kCapacity) ++size_;
  }
  std::size_t size() const { return size_; }
  double max_abs() const;
  std::deque<double> to_deque() const;          ///< oldest first
  void assign(const std::deque<double>& d);     ///< keeps the last kCapacity

 private:
  double buf_[kCapacity] = {};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Complete dynamic state of a PllTransientSim at one instant: the
/// augmented integrator state, PFD flip-flops, edge/leak counters,
/// lock-detector history and the held-noise RNG stream (serialized, so a
/// restored run replays the *same* noise samples).  Checkpoints are only
/// meaningful for a simulator built from the same PllParameters; restore
/// validates the state dimension and reference period.
struct TransientCheckpoint {
  RVector state;             ///< augmented integrator state [x_f; theta]
  double period = 0.0;       ///< reference period, restore sanity check
  double t = 0.0;
  std::int64_t n_ref = 1;
  std::int64_t n_vco = 1;
  std::int64_t n_leak = 0;
  std::size_t events = 0;
  bool pfd_up = false;
  bool pfd_down = false;
  double pulse_start = 0.0;
  bool pulse_active = false;
  std::deque<double> recent_pulse_widths;
  bool leak_on = false;
  double noise_sigma = 0.0;
  double noise_current = 0.0;
  std::string noise_rng;     ///< serialized engine + distribution state
  double sample_interval = 0.0;
  std::int64_t next_sample = 1;
  bool started = false;
};

class PllTransientSim {
 public:
  explicit PllTransientSim(const PllParameters& params,
                           ReferenceModulation mod = {},
                           TransientConfig cfg = {});

  const PllParameters& parameters() const { return params_; }
  double period() const { return t_period_; }

  /// Advances the simulation to absolute time t_end.
  void run_until(double t_end);
  /// Advances by n reference periods.
  void run_periods(double n);

  // --- lockstep step interface (EnsembleTransientEngine) ---
  // run_until(t_end) is exactly begin_run(t_end) followed by
  //   while (time() < t_end) if (!commit_step(plan_step(t_end))) break;
  // The split lets an ensemble engine plan every member, advance
  // same-h buckets through one shared propagator (batch_step_advance)
  // and commit the precomputed states, bit-identical to the loop above.

  /// Marks the run started and reserves the recording horizon.
  void begin_run(double t_end);
  /// Computes the next event-loop iteration without changing state.
  TransientStepPlan plan_step(double t_end) const;
  /// Records, advances the integrator over the planned segment and
  /// processes the event; false when t_end was reached first.
  bool commit_step(const TransientStepPlan& plan);
  /// commit_step with the post-segment integrator state supplied by the
  /// caller (`order()` doubles spaced `stride` apart): used when a
  /// lockstep kernel already advanced the member.  The caller's state
  /// must be bit-identical to what the integrator would compute.
  bool commit_step_with_state(const TransientStepPlan& plan,
                              const double* x_next, std::size_t stride = 1);

  /// Serves every propagator lookup from a shared per-worker store
  /// (nullptr reverts to the private cache).  Results never change.
  void set_shared_propagator_store(SharedPropagatorStore* store) {
    aug_.set_shared_store(store);
  }
  /// Augmented integrator state [x_filter; theta] at the current time.
  const RVector& state() const { return aug_.state(); }
  std::size_t state_order() const { return aug_.order(); }
  /// The per-(A,B) propagator builder of the integrator.
  const PropagatorFactory& propagator_factory() const {
    return aug_.propagator_factory();
  }

  double time() const { return t_; }
  /// Current VCO phase excursion theta(t) in seconds.
  double theta() const;
  /// Reference phase excursion at time t.
  double theta_ref(double t) const { return mod_.value(t); }
  /// Loop-filter output (VCO control) at the current time.
  double control_output() const;

  // --- recorded uniform samples ---
  const std::vector<double>& sample_times() const { return sample_t_; }
  const std::vector<double>& theta_samples() const { return sample_theta_; }
  const std::vector<double>& theta_ref_samples() const {
    return sample_theta_ref_;
  }
  void clear_samples();
  void set_recording(bool on) { cfg_.record = on; }

  // --- checkpointing (warm starts, ensemble restarts) ---
  /// Captures the full dynamic state.  Recorded sample streams are NOT
  /// part of the checkpoint -- manage them with clear_samples().
  TransientCheckpoint checkpoint() const;
  /// Restores a checkpoint taken from a simulator with the same
  /// PllParameters (modulation and recording config may differ; the
  /// sampling cursor is re-derived when the recording interval differs).
  /// Unlike the set_* initial-condition calls, restore is valid at any
  /// time, including after run_until.
  void restore(const TransientCheckpoint& cp);

  // --- initial conditions (lock-acquisition studies) ---
  /// Sets theta(0); only valid before the first run_until call.
  void set_initial_theta(double theta0);
  /// Pre-charges the loop filter so the VCO starts with the given
  /// relative frequency offset df/f.
  void set_initial_frequency_offset(double relative_offset);

  // --- charge-pump imperfection (reference-spur studies) ---
  /// Injects a periodic leakage current: `current` amperes during
  /// [n T, n T + window) every reference cycle (see noise/spurs.hpp).
  /// Only valid before the first run_until call.
  void set_leakage(double current, double window);

  /// Injects held white noise current: at every reference edge a fresh
  /// sample ~ N(0, sigma^2) is drawn and held until the next edge --
  /// the discrete-time stand-in for charge-pump output noise (its
  /// equivalent continuous two-sided PSD is
  /// sigma^2 T |sinc(w T/2)|^2).  Only valid before run_until.
  void set_noise_current(double sigma, unsigned seed);

  // --- diagnostics ---
  std::size_t event_count() const { return events_; }
  /// Step-propagator cache counters of the exact integrator; misses
  /// equal propagator constructions performed, hits constructions saved.
  const PropagatorCacheStats& propagator_cache_stats() const {
    return aug_.cache_stats();
  }
  /// True when cache misses use the spectral (modal) propagator path.
  bool spectral_propagators() const { return aug_.spectral_propagators(); }
  /// Largest |charge-pump pulse width| among the last few pulses, in
  /// seconds; ~0 when phase-locked with no modulation.
  double max_recent_pulse_width() const;
  /// True once recent pulse widths are below `tol` seconds.
  bool is_locked(double tol) const;

 private:
  double next_reference_edge(double target) const;
  double next_vco_edge(double target, double current) const;
  void record_range(double t_begin, double t_end, double current);
  void process_edges(double t_evt, double t_ref, double t_vco);
  bool finish_step(const TransientStepPlan& plan);

  PllParameters params_;
  ReferenceModulation mod_;
  TransientConfig cfg_;
  double t_period_;
  double icp_;
  double kvco_;

  PiecewiseExactIntegrator aug_;  ///< filter states + theta (last state)
  std::size_t theta_index_;
  mutable RVector peek_scratch_;  ///< edge-solver / sampler peek staging

  TriStatePfd pfd_;
  std::int64_t n_ref_ = 1;
  std::int64_t n_vco_ = 1;
  double t_ = 0.0;
  std::size_t events_ = 0;

  double pulse_start_ = 0.0;
  bool pulse_active_ = false;
  PulseHistory recent_pulse_widths_;

  double leak_current_ = 0.0;
  double leak_window_ = 0.0;
  bool leak_on_ = false;
  std::int64_t n_leak_ = 0;

  double noise_sigma_ = 0.0;
  double noise_current_ = 0.0;
  std::mt19937 noise_rng_;
  std::normal_distribution<double> noise_dist_{0.0, 1.0};

  std::int64_t next_sample_ = 1;
  std::vector<double> sample_t_;
  std::vector<double> sample_theta_;
  std::vector<double> sample_theta_ref_;
  bool started_ = false;
};

}  // namespace htmpll

#include "htmpll/timedomain/lptv_vco_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

IsfWaveform::IsfWaveform(HarmonicCoefficients isf, double kvco, double w0)
    : isf_(std::move(isf)), kvco_(kvco), w0_(w0) {
  HTMPLL_REQUIRE(w0_ > 0.0, "ISF waveform needs w0 > 0");
  // A physical ISF is real: coefficients must be conjugate-symmetric.
  for (int k = 0; k <= isf_.max_harmonic(); ++k) {
    const cplx diff = isf_[k] - std::conj(isf_[-k]);
    HTMPLL_REQUIRE(std::abs(diff) <=
                       1e-9 * std::max(1.0, std::abs(isf_[k])),
                   "ISF coefficients must be conjugate-symmetric "
                   "(real waveform)");
  }
}

double IsfWaveform::operator()(double t) const {
  double v = isf_[0].real();
  for (int k = 1; k <= isf_.max_harmonic(); ++k) {
    const cplx c = isf_[k];
    const double arg = static_cast<double>(k) * w0_ * t;
    v += 2.0 * (c.real() * std::cos(arg) - c.imag() * std::sin(arg));
  }
  return kvco_ * v;
}

LptvPllTransientSim::LptvPllTransientSim(const PllParameters& params,
                                         IsfWaveform isf,
                                         ReferenceModulation mod,
                                         LptvTransientConfig cfg)
    : params_(params),
      isf_(std::move(isf)),
      mod_(mod),
      cfg_(cfg),
      t_period_(params.period()),
      icp_(params.icp),
      filter_(to_state_space(params.filter.impedance())),
      x_(filter_.order(), 0.0) {
  HTMPLL_REQUIRE(cfg_.substeps_per_period >= 8,
                 "need at least 8 RK4 substeps per period");
  HTMPLL_REQUIRE(std::abs(mod_.amplitude) < 0.25 * t_period_,
                 "reference modulation must stay small-signal (< T/4)");
  if (cfg_.sample_interval <= 0.0) cfg_.sample_interval = t_period_ / 8.0;
}

LptvPllTransientSim::Derivative LptvPllTransientSim::rhs(
    double t, const RVector& x, double theta, double current) const {
  Derivative d;
  d.dx.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    double acc = filter_.b(i, 0) * current;
    for (std::size_t j = 0; j < x.size(); ++j) {
      acc += filter_.a(i, j) * x[j];
    }
    d.dx[i] = acc;
  }
  const double y = filter_.output(x, current);
  // eq. 22, unapproximated: theta' = v(t + theta) * u(t).
  d.dtheta = isf_(t + theta) * y;
  return d;
}

void LptvPllTransientSim::rk4_step(double t, double h, double current) {
  const RVector x0 = x_;
  const double th0 = theta_;
  auto add = [](const RVector& a, const RVector& b, double s) {
    RVector c(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + s * b[i];
    return c;
  };
  const Derivative k1 = rhs(t, x0, th0, current);
  const Derivative k2 = rhs(t + 0.5 * h, add(x0, k1.dx, 0.5 * h),
                            th0 + 0.5 * h * k1.dtheta, current);
  const Derivative k3 = rhs(t + 0.5 * h, add(x0, k2.dx, 0.5 * h),
                            th0 + 0.5 * h * k2.dtheta, current);
  const Derivative k4 =
      rhs(t + h, add(x0, k3.dx, h), th0 + h * k3.dtheta, current);
  for (std::size_t i = 0; i < x_.size(); ++i) {
    x_[i] = x0[i] + h / 6.0 *
                        (k1.dx[i] + 2.0 * k2.dx[i] + 2.0 * k3.dx[i] +
                         k4.dx[i]);
  }
  theta_ = th0 + h / 6.0 *
                     (k1.dtheta + 2.0 * k2.dtheta + 2.0 * k3.dtheta +
                      k4.dtheta);
}

void LptvPllTransientSim::maybe_record(double t_prev, double theta_prev,
                                       double t) {
  if (!cfg_.record) {
    next_sample_ = static_cast<std::int64_t>(
                       std::floor(t / cfg_.sample_interval)) + 1;
    return;
  }
  // Records any sample instants inside (t_prev, t], linearly
  // interpolating theta across the substep (the O(h^2) interpolation
  // error is far below the RK4 integration error).
  while (static_cast<double>(next_sample_) * cfg_.sample_interval <= t) {
    const double ts = static_cast<double>(next_sample_) *
                      cfg_.sample_interval;
    double th = theta_;
    if (ts < t && t > t_prev) {
      const double frac = (ts - t_prev) / (t - t_prev);
      th = theta_prev + frac * (theta_ - theta_prev);
    }
    sample_t_.push_back(ts);
    sample_theta_.push_back(th);
    sample_theta_ref_.push_back(mod_.value(ts));
    ++next_sample_;
  }
}

void LptvPllTransientSim::run_until(double t_end) {
  const double h_nominal =
      t_period_ / static_cast<double>(cfg_.substeps_per_period);
  const double eps = 1e-12 * t_period_;

  while (t_ < t_end) {
    const double current = pfd_.pump_current(icp_);

    // Next reference edge (analytic, |theta_ref| << T).
    double t_ref = static_cast<double>(n_ref_) * t_period_;
    for (int it = 0; it < 50; ++it) {
      const double g = t_ref + mod_.value(t_ref) -
                       static_cast<double>(n_ref_) * t_period_;
      const double gp = 1.0 + mod_.slope(t_ref);
      const double dt = -g / gp;
      t_ref += dt;
      if (std::abs(dt) <= eps) break;
    }
    t_ref = std::max(t_ref, t_);

    const double bound = std::min(t_ref, t_end);
    const double target_vco = static_cast<double>(n_vco_) * t_period_;
    bool vco_fired = false;

    while (t_ < bound) {
      const double h = std::min(h_nominal, bound - t_);
      const RVector x_save = x_;
      const double th_save = theta_;
      rk4_step(t_, h, current);
      if (t_ + h + theta_ >= target_vco) {
        // The VCO edge fires inside this substep: bisect the partial
        // step length tau on g(tau) = t + tau + theta(tau) - target.
        double lo = 0.0, hi = h;
        for (int it = 0; it < 60; ++it) {
          const double mid = 0.5 * (lo + hi);
          x_ = x_save;
          theta_ = th_save;
          if (mid > 0.0) rk4_step(t_, mid, current);
          const double g = t_ + mid + theta_ - target_vco;
          if (g < 0.0) {
            lo = mid;
          } else {
            hi = mid;
          }
          if (hi - lo <= eps) break;
        }
        x_ = x_save;
        theta_ = th_save;
        const double tau = 0.5 * (lo + hi);
        if (tau > 0.0) rk4_step(t_, tau, current);
        const double t_before = t_;
        t_ += tau;
        maybe_record(t_before, th_save, t_);
        pfd_.on_vco_edge();
        ++n_vco_;
        ++events_;
        vco_fired = true;
        break;
      }
      t_ += h;
      maybe_record(t_ - h, th_save, t_);
    }

    if (!vco_fired && t_ranges_hit_ref(t_ref, t_end, eps)) {
      pfd_.on_reference_edge();
      ++n_ref_;
      ++events_;
    }
  }
}

bool LptvPllTransientSim::t_ranges_hit_ref(double t_ref, double t_end,
                                           double eps) const {
  return t_ref <= t_end && t_ >= t_ref - eps;
}

void LptvPllTransientSim::run_periods(double n) {
  run_until(t_ + n * t_period_);
}

void LptvPllTransientSim::clear_samples() {
  sample_t_.clear();
  sample_theta_.clear();
  sample_theta_ref_.clear();
}

TransferMeasurement measure_baseband_transfer_lptv(
    const PllParameters& params, const IsfWaveform& isf, double omega_m,
    const ProbeOptions& opts) {
  HTMPLL_REQUIRE(omega_m > 0.0, "modulation frequency must be positive");
  const double t_period = params.period();
  const double tm = 2.0 * std::numbers::pi / omega_m;

  ReferenceModulation mod;
  mod.amplitude = opts.amplitude_fraction * t_period;
  mod.omega = omega_m;

  LptvTransientConfig cfg;
  cfg.sample_interval =
      std::min(tm / static_cast<double>(opts.samples_per_period),
               t_period / 8.0);
  cfg.record = false;

  LptvPllTransientSim sim(params, isf, mod, cfg);
  const double settle = std::max(opts.settle_periods * t_period, 4.0 * tm);
  sim.run_until(settle);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_until(settle + static_cast<double>(opts.measure_periods) * tm);

  TransferMeasurement out;
  out.value = single_bin_transfer(sim.sample_times(), sim.theta_samples(),
                                  sim.theta_ref_samples(), omega_m);
  out.simulated_time = sim.time();
  out.events = sim.event_count();
  return out;
}

}  // namespace htmpll

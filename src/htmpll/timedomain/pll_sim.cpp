#include "htmpll/timedomain/pll_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>

#include "htmpll/obs/metrics.hpp"
#include "htmpll/util/check.hpp"

namespace htmpll {

double ReferenceModulation::value(double t) const {
  if (amplitude == 0.0) return 0.0;
  return amplitude * std::sin(omega * t + phase);
}

double ReferenceModulation::slope(double t) const {
  if (amplitude == 0.0) return 0.0;
  return amplitude * omega * std::cos(omega * t + phase);
}

namespace {

/// PFD edges processed across all simulators in the process (the
/// per-instance count stays available via events()).
obs::Counter& pfd_event_counter() {
  static obs::Counter& c = obs::counter("timedomain.pfd_events");
  return c;
}

}  // namespace

double PulseHistory::max_abs() const {
  double m = 0.0;
  for (std::size_t i = 0; i < size_; ++i) m = std::max(m, std::abs(buf_[i]));
  return m;
}

std::deque<double> PulseHistory::to_deque() const {
  std::deque<double> d;
  for (std::size_t i = 0; i < size_; ++i) {
    d.push_back(buf_[(head_ + kCapacity - size_ + i) % kCapacity]);
  }
  return d;
}

void PulseHistory::assign(const std::deque<double>& d) {
  head_ = 0;
  size_ = 0;
  for (double w : d) push(w);
}

PllTransientSim::PllTransientSim(const PllParameters& params,
                                 ReferenceModulation mod, TransientConfig cfg)
    : params_(params),
      mod_(mod),
      cfg_(cfg),
      t_period_(params.period()),
      icp_(params.icp),
      kvco_(params.kvco),
      // The state space realizes the impedance Z_LF(s) alone; the
      // charge-pump current (+-Icp) is the input, so Icp must not be
      // folded into the system too.
      aug_(augment_with_phase(to_state_space(params.filter.impedance()),
                              params.kvco),
           cfg.propagator_cache, cfg.use_spectral_propagators),
      theta_index_(aug_.order() - 1) {
  HTMPLL_REQUIRE(std::abs(mod_.amplitude) < 0.25 * t_period_,
                 "reference modulation must stay small-signal (< T/4)");
  if (cfg_.sample_interval <= 0.0) cfg_.sample_interval = t_period_ / 8.0;
}

double PllTransientSim::theta() const { return aug_.state()[theta_index_]; }

double PllTransientSim::control_output() const {
  return aug_.output(pfd_.pump_current(icp_) +
                     (leak_on_ ? leak_current_ : 0.0));
}

void PllTransientSim::set_noise_current(double sigma, unsigned seed) {
  HTMPLL_REQUIRE(!started_, "noise must be configured before run_until");
  HTMPLL_REQUIRE(sigma >= 0.0, "noise sigma must be non-negative");
  noise_sigma_ = sigma;
  noise_rng_.seed(seed);
  noise_current_ = sigma > 0.0 ? sigma * noise_dist_(noise_rng_) : 0.0;
}

void PllTransientSim::set_leakage(double current, double window) {
  HTMPLL_REQUIRE(!started_, "leakage must be configured before run_until");
  HTMPLL_REQUIRE(window >= 0.0 && window < t_period_,
                 "leakage window must lie within one period");
  leak_current_ = current;
  leak_window_ = window;
}

void PllTransientSim::clear_samples() {
  sample_t_.clear();
  sample_theta_.clear();
  sample_theta_ref_.clear();
}

TransientCheckpoint PllTransientSim::checkpoint() const {
  TransientCheckpoint cp;
  cp.state = aug_.state();
  cp.period = t_period_;
  cp.t = t_;
  cp.n_ref = n_ref_;
  cp.n_vco = n_vco_;
  cp.n_leak = n_leak_;
  cp.events = events_;
  cp.pfd_up = pfd_.up();
  cp.pfd_down = pfd_.down();
  cp.pulse_start = pulse_start_;
  cp.pulse_active = pulse_active_;
  cp.recent_pulse_widths = recent_pulse_widths_.to_deque();
  cp.leak_on = leak_on_;
  cp.noise_sigma = noise_sigma_;
  cp.noise_current = noise_current_;
  // The serialized stream captures the engine AND the distribution's
  // internal spare-Gaussian cache, so restored runs replay the exact
  // noise sample sequence.
  std::ostringstream os;
  os << noise_rng_ << ' ' << noise_dist_;
  cp.noise_rng = os.str();
  cp.sample_interval = cfg_.sample_interval;
  cp.next_sample = next_sample_;
  cp.started = started_;
  return cp;
}

void PllTransientSim::restore(const TransientCheckpoint& cp) {
  HTMPLL_REQUIRE(cp.state.size() == aug_.order(),
                 "checkpoint is for a different loop filter order");
  HTMPLL_REQUIRE(cp.period == t_period_,
                 "checkpoint is for a different reference period");
  aug_.set_state(cp.state);
  t_ = cp.t;
  n_ref_ = cp.n_ref;
  n_vco_ = cp.n_vco;
  n_leak_ = cp.n_leak;
  events_ = cp.events;
  pfd_.restore(cp.pfd_up, cp.pfd_down);
  pulse_start_ = cp.pulse_start;
  pulse_active_ = cp.pulse_active;
  recent_pulse_widths_.assign(cp.recent_pulse_widths);
  leak_on_ = cp.leak_on;
  noise_sigma_ = cp.noise_sigma;
  noise_current_ = cp.noise_current;
  std::istringstream is(cp.noise_rng);
  is >> noise_rng_ >> noise_dist_;
  if (cfg_.sample_interval == cp.sample_interval) {
    next_sample_ = cp.next_sample;
  } else {
    // Different recording grid: resume at the first sample instant
    // strictly beyond t, matching what record_range would have tracked.
    next_sample_ = static_cast<std::int64_t>(
                       std::floor(t_ / cfg_.sample_interval)) + 1;
  }
  started_ = cp.started;
}

void PllTransientSim::set_initial_theta(double theta0) {
  HTMPLL_REQUIRE(!started_, "initial conditions must precede run_until");
  RVector x = aug_.state();
  x[theta_index_] = theta0;
  aug_.set_state(std::move(x));
}

void PllTransientSim::set_initial_frequency_offset(double relative_offset) {
  HTMPLL_REQUIRE(!started_, "initial conditions must precede run_until");
  // Choose a filter state x with C x = relative_offset / kvco along the
  // minimum-norm direction, so theta' = kvco * y = relative_offset at t=0.
  const StateSpace& ss = aug_.system();
  const std::size_t n = ss.order();
  double cc = 0.0;
  for (std::size_t j = 0; j < n; ++j) cc += ss.c(0, j) * ss.c(0, j);
  HTMPLL_REQUIRE(cc > 0.0, "filter has no controllable output direction");
  const double target_y = relative_offset / kvco_;
  RVector x = aug_.state();
  for (std::size_t j = 0; j < n; ++j) x[j] = ss.c(0, j) * target_y / cc;
  aug_.set_state(std::move(x));
}

double PllTransientSim::next_reference_edge(double target) const {
  // Solve t + theta_ref(t) = target; |theta_ref| << T makes this a
  // contraction around t = target.
  double t = target - mod_.value(target);
  for (int it = 0; it < 50; ++it) {
    const double g = t + mod_.value(t) - target;
    const double gp = 1.0 + mod_.slope(t);
    const double dt = -g / gp;
    t += dt;
    if (std::abs(dt) <= cfg_.edge_tolerance * t_period_) break;
  }
  return std::max(t, t_);
}

double PllTransientSim::next_vco_edge(double target, double current) const {
  // Solve t + theta(t) = target with theta propagated exactly from the
  // segment start under the held charge-pump current.
  const double theta_now = theta();
  double t = std::max(t_, target - theta_now);
  bool converged = false;
  for (int it = 0; it < 60; ++it) {
    const double h = std::max(0.0, t - t_);
    aug_.peek_into(h, current, peek_scratch_);
    const RVector& x = peek_scratch_;
    const double g = t + x[theta_index_] - target;
    const double y = aug_.system().output(x, current);
    double gp = 1.0 + kvco_ * y;
    // theta' <= -1 would mean non-positive instantaneous VCO frequency;
    // treat as a degenerate large transient and damp the step.
    if (gp < 0.1) gp = 1.0;
    const double dt = -g / gp;
    t += dt;
    if (t < t_) t = t_;
    if (std::abs(dt) <= cfg_.edge_tolerance * t_period_) {
      converged = true;
      break;
    }
  }
  if (!converged) {
    // Bisection fallback on g(t) = t + theta(t) - target over an
    // expanding bracket; g is continuous and eventually positive.
    double lo = t_;
    aug_.peek_into(0.0, current, peek_scratch_);
    double g_lo = lo + peek_scratch_[theta_index_] - target;
    if (g_lo >= 0.0) return t_;  // edge is (numerically) overdue
    double hi = t_ + t_period_;
    for (int grow = 0; grow < 64; ++grow) {
      aug_.peek_into(hi - t_, current, peek_scratch_);
      const double g_hi = hi + peek_scratch_[theta_index_] - target;
      if (g_hi >= 0.0) break;
      hi = t_ + 2.0 * (hi - t_);
    }
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      aug_.peek_into(mid - t_, current, peek_scratch_);
      const double g_mid = mid + peek_scratch_[theta_index_] - target;
      if (g_mid < 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (hi - lo <= cfg_.edge_tolerance * t_period_) break;
    }
    t = 0.5 * (lo + hi);
  }
  return std::max(t, t_);
}

void PllTransientSim::record_range(double t_begin, double t_end,
                                   double current) {
  if (!cfg_.record) {
    next_sample_ = static_cast<std::int64_t>(
                       std::floor(t_end / cfg_.sample_interval)) + 1;
    return;
  }
  while (true) {
    const double ts = static_cast<double>(next_sample_) * cfg_.sample_interval;
    if (ts > t_end) break;
    if (ts >= t_begin) {
      // Uniform-grid samples need theta alone; peek_last lets ensemble
      // members (shared store attached) skip the full propagator build
      // while the scalar chain keeps its verbatim peek.
      sample_t_.push_back(ts);
      sample_theta_.push_back(aug_.peek_last(ts - t_begin, current));
      sample_theta_ref_.push_back(mod_.value(ts));
    }
    ++next_sample_;
  }
}

void PllTransientSim::process_edges(double t_evt, double t_ref, double t_vco) {
  const double eps = 1e-9 * t_period_;
  const TriStatePfd::State before = pfd_.state();
  if (t_ref <= t_evt + eps) {
    pfd_.on_reference_edge();
    ++n_ref_;
    ++events_;
    pfd_event_counter().add();
    if (noise_sigma_ > 0.0) {
      noise_current_ = noise_sigma_ * noise_dist_(noise_rng_);
    }
  }
  if (t_vco <= t_evt + eps) {
    pfd_.on_vco_edge();
    ++n_vco_;
    ++events_;
    pfd_event_counter().add();
  }
  const TriStatePfd::State after = pfd_.state();
  // Track charge-pump pulse widths for lock detection.
  if (before == TriStatePfd::State::kIdle &&
      after != TriStatePfd::State::kIdle) {
    pulse_active_ = true;
    pulse_start_ = t_evt;
  } else if (pulse_active_ && after == TriStatePfd::State::kIdle) {
    pulse_active_ = false;
    recent_pulse_widths_.push(t_evt - pulse_start_);
  }
}

void PllTransientSim::begin_run(double t_end) {
  started_ = true;
  if (cfg_.record && t_end > t_) {
    // Reserve the whole recording horizon up front instead of growing
    // the three streams geometrically mid-run.
    const std::size_t add = static_cast<std::size_t>(
        (t_end - t_) / cfg_.sample_interval) + 2;
    sample_t_.reserve(sample_t_.size() + add);
    sample_theta_.reserve(sample_theta_.size() + add);
    sample_theta_ref_.reserve(sample_theta_ref_.size() + add);
  }
}

TransientStepPlan PllTransientSim::plan_step(double t_end) const {
  const bool leaking = leak_current_ != 0.0 && leak_window_ > 0.0;
  TransientStepPlan plan;
  plan.current = pfd_.pump_current(icp_) +
                 (leak_on_ ? leak_current_ : 0.0) + noise_current_;
  plan.t_ref = next_reference_edge(static_cast<double>(n_ref_) * t_period_);
  plan.t_vco = next_vco_edge(static_cast<double>(n_vco_) * t_period_,
                             plan.current);
  plan.t_leak = leaking ? (static_cast<double>(n_leak_) * t_period_ +
                           (leak_on_ ? leak_window_ : 0.0))
                        : std::numeric_limits<double>::infinity();
  plan.t_evt = std::min({plan.t_ref, plan.t_vco, plan.t_leak, t_end});
  return plan;
}

bool PllTransientSim::finish_step(const TransientStepPlan& plan) {
  const bool leaking = leak_current_ != 0.0 && leak_window_ > 0.0;
  const double eps = 1e-9 * t_period_;
  t_ = plan.t_evt;
  bool fired = false;
  if (leaking && plan.t_leak <= plan.t_evt + eps) {
    if (leak_on_) {
      leak_on_ = false;
      ++n_leak_;
    } else {
      leak_on_ = true;
    }
    fired = true;
  }
  if (plan.t_ref <= plan.t_evt + eps || plan.t_vco <= plan.t_evt + eps) {
    process_edges(plan.t_evt, plan.t_ref, plan.t_vco);
    fired = true;
  }
  return fired;
}

bool PllTransientSim::commit_step(const TransientStepPlan& plan) {
  record_range(t_, plan.t_evt, plan.current);
  aug_.advance(plan.t_evt - t_, plan.current);
  return finish_step(plan);
}

bool PllTransientSim::commit_step_with_state(const TransientStepPlan& plan,
                                             const double* x_next,
                                             std::size_t stride) {
  record_range(t_, plan.t_evt, plan.current);
  aug_.set_state_raw(x_next, stride);
  return finish_step(plan);
}

void PllTransientSim::run_until(double t_end) {
  begin_run(t_end);
  while (t_ < t_end) {
    if (!commit_step(plan_step(t_end))) break;  // reached t_end first
  }
}

void PllTransientSim::run_periods(double n) {
  run_until(t_ + n * t_period_);
}

double PllTransientSim::max_recent_pulse_width() const {
  return recent_pulse_widths_.max_abs();
}

bool PllTransientSim::is_locked(double tol) const {
  if (recent_pulse_widths_.size() < PulseHistory::kCapacity) return false;
  return max_recent_pulse_width() < tol;
}

}  // namespace htmpll

// Lockstep SoA ensemble engine for Monte Carlo transient simulation.
//
// Every stochastic workload on the transient simulator (held
// charge-pump noise ensembles, acquisition grids, settling batches)
// advances M independent PllTransientSim instances over the SAME
// horizon.  Run scalar, each member pays its own propagator builds and
// its own n-vector state update per event-loop step.  This engine
// advances the whole ensemble through ONE event loop instead:
//
//  * every member's next step is planned (PllTransientSim::plan_step --
//    pure, no state change), and members whose step length h matches
//    BIT FOR BIT are bucketed together;
//  * each bucket of >= 2 members is advanced by one shared propagator
//    applied to an n x M SoA state block via the batch_step_advance
//    kernel (linalg/batch_kernels.hpp) -- one matrix·multi-column
//    product instead of M matrix·vector products;
//  * members with a divergent h (acquisition transients, Newton-refined
//    edges) fall back to the per-member scalar commit for that round
//    and re-enter batching at the next common edge -- the bucketing is
//    recomputed every round, so retirement and re-admission are free;
//  * ALL propagator lookups (batched and scalar lanes, edge-solver
//    peeks, recording peeks) are served by one per-engine
//    SharedPropagatorStore, so a step length solved by any member is
//    built once per worker instead of once per member.
//
// Determinism contract: each member owns its state, its RNG stream and
// its recording buffers, every h-dependent value is computed with the
// scalar code path's exact operation sequence (see batch_step_advance),
// and propagators are pure functions of (A, B, h) -- so the engine is
// bit-identical to sequential per-member runs for any ensemble width,
// bucketing outcome and thread count.
//
// HTMPLL_ENSEMBLE=0 (or off), mc::set_ensemble_enabled(false) or
// MonteCarloOptions::use_ensemble_engine = false route the Monte Carlo
// drivers (timedomain/montecarlo.hpp) back to the scalar chain, which
// is preserved verbatim.
#pragma once

#include <cstdint>
#include <vector>

#include "htmpll/timedomain/pll_sim.hpp"

namespace htmpll {

namespace mc {

/// Process-wide ensemble-engine switch: HTMPLL_ENSEMBLE=0/off makes
/// every Monte Carlo driver use the scalar per-member chain; 1/on (or
/// unset) honors MonteCarloOptions::use_ensemble_engine.  The
/// environment is read once and cached.
bool ensemble_enabled();

/// Test/bench pin overriding the environment policy.
void set_ensemble_enabled(bool on);

}  // namespace mc

/// Advances M identically-parameterized transient simulations in
/// lockstep (see file comment).  Configure members individually through
/// member() (seeds, initial conditions, recording) before the first
/// run_* call, exactly like standalone simulators.
class EnsembleTransientEngine {
 public:
  EnsembleTransientEngine(const PllParameters& params, std::size_t m,
                          ReferenceModulation mod = {},
                          TransientConfig cfg = {});

  std::size_t size() const { return sims_.size(); }
  PllTransientSim& member(std::size_t k) { return sims_[k]; }
  const PllTransientSim& member(std::size_t k) const { return sims_[k]; }

  /// Advances every non-retired member to absolute time t_end,
  /// bit-identical to calling member(k).run_until(t_end) in sequence.
  void run_until(double t_end);
  /// Advances every non-retired member by n reference periods.
  void run_periods(double n);

  /// Permanently drops member k from subsequent lockstep rounds
  /// (acquisition drivers retire members as they lock; the member's
  /// state stays readable).
  void retire(std::size_t k) { retired_[k] = 1; }
  bool retired(std::size_t k) const { return retired_[k] != 0; }

  // --- diagnostics ---
  /// Member-steps advanced through the SoA kernel / the scalar path.
  std::uint64_t batched_member_steps() const { return batched_steps_; }
  std::uint64_t scalar_member_steps() const { return scalar_steps_; }
  /// Lockstep planning rounds executed.
  std::uint64_t rounds() const { return rounds_; }
  /// Lookup/build counters of the shared propagator store.
  const PropagatorCacheStats& store_stats() const { return store_.stats(); }

 private:
  /// One planned member step awaiting commit, keyed for h-bucketing by
  /// the bit pattern of the step length.
  struct Lane {
    std::uint64_t h_bits;
    double h;
    std::uint32_t member;
  };

  double t_period_;
  std::size_t order_;
  std::vector<PllTransientSim> sims_;  ///< sized in ctor, never resized
  SharedPropagatorStore store_;        ///< refs sims_[0]'s factory
  std::vector<char> retired_;

  // Per-round scratch (no steady-state allocation).
  std::vector<TransientStepPlan> plans_;
  std::vector<Lane> lanes_;
  std::vector<char> active_;
  std::vector<double> x_block_;    ///< n x M gather (row-major SoA)
  std::vector<double> out_block_;  ///< n x M kernel output
  std::vector<double> u_block_;    ///< per-member held input

  std::uint64_t batched_steps_ = 0;
  std::uint64_t scalar_steps_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace htmpll

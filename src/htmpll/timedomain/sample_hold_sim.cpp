#include "htmpll/timedomain/sample_hold_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

SampleHoldPllSim::SampleHoldPllSim(const PllParameters& params,
                                   ReferenceModulation mod,
                                   TransientConfig cfg)
    : params_(params),
      mod_(mod),
      cfg_(cfg),
      t_period_(params.period()),
      icp_(params.icp),
      aug_(augment_with_phase(to_state_space(params.filter.impedance()),
                              params.kvco),
           cfg.propagator_cache, cfg.use_spectral_propagators),
      theta_index_(aug_.order() - 1) {
  HTMPLL_REQUIRE(std::abs(mod_.amplitude) < 0.25 * t_period_,
                 "reference modulation must stay small-signal (< T/4)");
  if (cfg_.sample_interval <= 0.0) cfg_.sample_interval = t_period_ / 8.0;
}

double SampleHoldPllSim::theta() const {
  return aug_.state()[theta_index_];
}

double SampleHoldPllSim::next_reference_edge(double target) const {
  double t = target - mod_.value(target);
  for (int it = 0; it < 50; ++it) {
    const double g = t + mod_.value(t) - target;
    const double gp = 1.0 + mod_.slope(t);
    const double dt = -g / gp;
    t += dt;
    if (std::abs(dt) <= 1e-13 * t_period_) break;
  }
  return std::max(t, t_);
}

void SampleHoldPllSim::record_range(double t_begin, double t_end) {
  if (!cfg_.record) {
    next_sample_ = static_cast<std::int64_t>(
                       std::floor(t_end / cfg_.sample_interval)) + 1;
    return;
  }
  while (true) {
    const double ts = static_cast<double>(next_sample_) *
                      cfg_.sample_interval;
    if (ts > t_end) break;
    if (ts >= t_begin) {
      aug_.peek_into(ts - t_begin, current_, peek_scratch_);
      sample_t_.push_back(ts);
      sample_theta_.push_back(peek_scratch_[theta_index_]);
      sample_theta_ref_.push_back(mod_.value(ts));
    }
    ++next_sample_;
  }
}

void SampleHoldPllSim::run_until(double t_end) {
  while (t_ < t_end) {
    const double t_ref =
        next_reference_edge(static_cast<double>(n_ref_) * t_period_);
    const double t_evt = std::min(t_ref, t_end);

    record_range(t_, t_evt);
    aug_.advance(t_evt - t_, current_);
    t_ = t_evt;
    if (t_evt < t_ref) break;  // hit t_end first

    // Sampling instant: theta_ref(t_ref) = n T - t_ref by definition of
    // the edge; the detector latches e = theta_ref - theta and the pump
    // holds Icp * e / T until the next edge.
    const double theta_ref_now =
        static_cast<double>(n_ref_) * t_period_ - t_ref;
    const double error = theta_ref_now - theta();
    current_ = icp_ * error / t_period_;
    ++n_ref_;
    ++events_;
  }
}

void SampleHoldPllSim::run_periods(double n) {
  run_until(t_ + n * t_period_);
}

void SampleHoldPllSim::clear_samples() {
  sample_t_.clear();
  sample_theta_.clear();
  sample_theta_ref_.clear();
}

TransferMeasurement measure_baseband_transfer_sample_hold(
    const PllParameters& params, double omega_m, const ProbeOptions& opts) {
  HTMPLL_REQUIRE(omega_m > 0.0, "modulation frequency must be positive");
  const double t_period = params.period();
  const double tm = 2.0 * std::numbers::pi / omega_m;

  ReferenceModulation mod;
  mod.amplitude = opts.amplitude_fraction * t_period;
  mod.omega = omega_m;

  TransientConfig cfg;
  cfg.sample_interval =
      std::min(tm / static_cast<double>(opts.samples_per_period),
               t_period / 8.0);
  cfg.record = false;

  SampleHoldPllSim sim(params, mod, cfg);
  const double settle = std::max(opts.settle_periods * t_period, 4.0 * tm);
  sim.run_until(settle);
  sim.set_recording(true);
  sim.clear_samples();
  sim.run_until(settle + static_cast<double>(opts.measure_periods) * tm);

  TransferMeasurement out;
  out.value = single_bin_transfer(sim.sample_times(), sim.theta_samples(),
                                  sim.theta_ref_samples(), omega_m);
  out.simulated_time = sim.time();
  out.events = sim.event_count();
  return out;
}

}  // namespace htmpll

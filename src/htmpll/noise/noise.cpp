#include "htmpll/noise/noise.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/linalg/batch_kernels.hpp"
#include "htmpll/obs/metrics.hpp"
#include "htmpll/obs/trace.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

namespace {

obs::Counter& psd_grid_points_counter() {
  static obs::Counter& ctr = obs::counter("noise.psd_grid_points");
  return ctr;
}

obs::Counter& fold_terms_counter() {
  static obs::Counter& ctr = obs::counter("noise.fold_terms");
  return ctr;
}

void require_grid(const std::vector<double>& w_grid) {
  HTMPLL_REQUIRE(!w_grid.empty(), "PSD grid must hold at least one point");
}

void require_psd(const PsdFunction& f, const char* name) {
  HTMPLL_REQUIRE(static_cast<bool>(f),
                 std::string("PSD function '") + name + "' is null");
}

CVector jw_grid(const std::vector<double>& w_grid) {
  CVector s(w_grid.size());
  for (std::size_t i = 0; i < w_grid.size(); ++i) {
    s[i] = cplx{0.0, w_grid[i]};
  }
  return s;
}

bool all_real(const CVector& c) {
  for (const cplx& v : c) {
    if (v.imag() != 0.0) return false;
  }
  return !c.empty();
}

// Split ascending real coefficients into even/odd powers so that
// P(j x) = E(-x^2) + j x O(-x^2) with E(y) = sum_k c_{2k} y^k and
// O(y) = sum_k c_{2k+1} y^k -- two half-degree real Horner chains
// instead of one complex one.
void even_odd_split(const CVector& c, std::vector<double>& even,
                    std::vector<double>& odd) {
  even.clear();
  odd.clear();
  for (std::size_t k = 0; k < c.size(); ++k) {
    (k % 2 == 0 ? even : odd).push_back(c[k].real());
  }
}

}  // namespace

double PowerLawPsd::operator()(double w) const {
  const double aw = std::abs(w);
  HTMPLL_REQUIRE(aw > 0.0, "power-law PSD evaluated at DC");
  return white + flicker / aw + walk / (aw * aw);
}

NoiseAnalysis::NoiseAnalysis(const SamplingPllModel& model,
                             int fold_harmonics)
    : model_(model), fold_(fold_harmonics) {
  HTMPLL_REQUIRE(fold_harmonics >= 0,
                 "fold_harmonics must be >= 0 (zero keeps only the "
                 "unfolded m = 0 term)");
}

cplx NoiseAnalysis::reference_transfer(double w) const {
  return model_.baseband_transfer(cplx{0.0, w});
}

cplx NoiseAnalysis::vco_transfer(int m, double w) const {
  const cplx h00 = model_.baseband_transfer(cplx{0.0, w});
  return (m == 0 ? cplx{1.0} : cplx{0.0}) - h00;
}

cplx NoiseAnalysis::charge_pump_transfer(int m, double w) const {
  return charge_pump_transfer_impl(m, w, model_.closed_loop(0, cplx{0.0, w}));
}

cplx NoiseAnalysis::charge_pump_transfer_impl(int m, double w,
                                              cplx tracking) const {
  const cplx s{0.0, w};
  const double w0 = model_.w0();
  const cplx sm = s + cplx{0.0, static_cast<double>(m) * w0};
  const PllParameters& p = model_.parameters();
  // Current noise is injected at the filter INPUT: it sees the
  // impedance Z (and any extra loop dynamics), not Icp*Z -- the pump
  // current belongs to the PFD pulses only.  loop_filter_tf() is
  // Icp * Z * extras, so divide Icp back out.
  const cplx z_m = model_.loop_filter_tf()(sm) / p.icp;
  // General LPTV form with E = H_VCO Z_diag:
  //   T_{0,m} = Z(s_m) [ v_{-m}/s
  //                      - (V~_0/(1+lambda)) sum_k v_k/(s + j(m+k) w0) ]
  // (reduces to D_m (delta - H_00) for a DC-only ISF).
  const HarmonicCoefficients& isf = model_.isf();
  const cplx v_minus_m = p.kvco * isf[-m];
  cplx row_sum{0.0};
  for (int k = -isf.max_harmonic(); k <= isf.max_harmonic(); ++k) {
    const cplx v_k = p.kvco * isf[k];
    if (v_k == cplx{0.0}) continue;
    const cplx sn =
        s + cplx{0.0, static_cast<double>(m + k) * w0};
    row_sum += v_k / sn;
  }
  return z_m * (v_minus_m / s - tracking * row_sum);
}

double NoiseAnalysis::output_psd_from_reference(
    double w, const PsdFunction& s_ref) const {
  // Reference noise is a baseband quantity in the paper's convention;
  // only H_{0,0} applies.
  return std::norm(reference_transfer(w)) * s_ref(std::abs(w));
}

double NoiseAnalysis::output_psd_from_vco(double w,
                                          const PsdFunction& s_vco) const {
  const double w0 = model_.w0();
  // vco_transfer(m, w) = delta_{m0} - H_00(jw): hoist the (expensive)
  // H_00 evaluation out of the folding loop -- it does not depend on m.
  const cplx h00 = model_.baseband_transfer(cplx{0.0, w});
  double acc = 0.0;
  for (int m = -fold_; m <= fold_; ++m) {
    const double wm = std::abs(w + static_cast<double>(m) * w0);
    if (wm == 0.0) continue;
    const cplx t = (m == 0 ? cplx{1.0} : cplx{0.0}) - h00;
    acc += std::norm(t) * s_vco(wm);
  }
  return acc;
}

double NoiseAnalysis::output_psd_from_charge_pump(
    double w, const PsdFunction& s_icp) const {
  const double w0 = model_.w0();
  const cplx tracking = model_.closed_loop(0, cplx{0.0, w});
  double acc = 0.0;
  for (int m = -fold_; m <= fold_; ++m) {
    const double wm = std::abs(w + static_cast<double>(m) * w0);
    if (wm == 0.0) continue;
    acc += std::norm(charge_pump_transfer_impl(m, w, tracking)) * s_icp(wm);
  }
  return acc;
}

double NoiseAnalysis::output_psd_total(double w, const PsdFunction& s_ref,
                                       const PsdFunction& s_vco,
                                       const PsdFunction& s_icp) const {
  return output_psd_from_reference(w, s_ref) +
         output_psd_from_vco(w, s_vco) +
         output_psd_from_charge_pump(w, s_icp);
}

double NoiseAnalysis::integrated_rms(
    const std::function<double(double)>& s_out, double w_lo, double w_hi,
    std::size_t points) const {
  HTMPLL_REQUIRE(points >= 2, "quadrature needs at least two points");
  const std::vector<double> grid = logspace(w_lo, w_hi, points);
  double integral = 0.0;
  double prev_w = grid[0];
  double prev_s = s_out(prev_w);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double s = s_out(grid[i]);
    integral += 0.5 * (s + prev_s) * (grid[i] - prev_w);
    prev_w = grid[i];
    prev_s = s;
  }
  return std::sqrt(integral / std::numbers::pi);
}

// ---- batched grids ----------------------------------------------------

void NoiseAnalysis::psd_reference_into(const CVector& h00,
                                       const std::vector<double>& w_grid,
                                       const PsdFunction& s_ref,
                                       std::vector<double>& out) const {
  for (std::size_t i = 0; i < w_grid.size(); ++i) {
    out[i] += std::norm(h00[i]) * s_ref(std::abs(w_grid[i]));
  }
}

void NoiseAnalysis::psd_vco_into(const CVector& h00,
                                 const std::vector<double>& w_grid,
                                 const PsdFunction& s_vco,
                                 std::vector<double>& out) const {
  const double w0 = model_.w0();
  const std::size_t n = w_grid.size();
  // |delta_{m0} - H_00| takes only two values per grid point; hoist
  // both squared magnitudes out of the fold loop so the band sweep is
  // one multiply-add plus the PSD lookup per term.
  std::vector<double> gain_base(n), gain_fold(n);
  for (std::size_t i = 0; i < n; ++i) {
    gain_base[i] = std::norm(cplx{1.0} - h00[i]);
    gain_fold[i] = std::norm(h00[i]);
  }
  for (int m = -fold_; m <= fold_; ++m) {
    const double shift = static_cast<double>(m) * w0;
    const double* gain = (m == 0 ? gain_base : gain_fold).data();
    for (std::size_t i = 0; i < n; ++i) {
      const double wm = std::abs(w_grid[i] + shift);
      if (wm == 0.0) continue;
      out[i] += gain[i] * s_vco(wm);
    }
    fold_terms_counter().add(n);
  }
}

void NoiseAnalysis::psd_charge_pump_into(const CVector& tracking,
                                         const std::vector<double>& w_grid,
                                         const PsdFunction& s_icp,
                                         std::vector<double>& out) const {
  const std::size_t n = w_grid.size();
  const double w0 = model_.w0();
  const PllParameters& p = model_.parameters();
  const RationalFunction& hlf = model_.loop_filter_tf();
  const CVector& num = hlf.num().coefficients();
  const CVector& den = hlf.den().coefficients();
  const HarmonicCoefficients& isf = model_.isf();
  const int jmax = isf.max_harmonic();

  // Per-band filter-impedance column Z(s + j m w0)/Icp, evaluated as
  // one batch_rational plane per fold harmonic; the expensive tracking
  // factor V~_0/(1+lambda) comes in precomputed and m-independent.
  //
  // On the jw axis every folding denominator s + j b w0 is purely
  // imaginary, so v/(s + j b w0) = (Im v)/x - j (Re v)/x with
  // x = w + b w0.  Each reciprocal plane is shared by every fold
  // harmonic whose ISF window b = m + k covers it, which turns the
  // per-point complex divisions of the pointwise loop into one real
  // reciprocal plane per band plus multiply-adds.
  const double inv_icp = 1.0 / p.icp;
  const int bmax = fold_ + jmax;
  std::vector<double> inv_band(static_cast<std::size_t>(2 * bmax + 1) * n);
  for (int b = -bmax; b <= bmax; ++b) {
    double* row = inv_band.data() + static_cast<std::size_t>(b + bmax) * n;
    const double shift = static_cast<double>(b) * w0;
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = 1.0 / (w_grid[i] + shift);
    }
  }
  const double* inv_w =
      inv_band.data() + static_cast<std::size_t>(bmax) * n;  // 1/w plane

  // Tracking-weighted ISF taps g_k = (V~_0/(1+lambda)) (-j v_k), one
  // complex plane per nonzero tap, built once: the per-band row term
  // tracking * sum_k v_k/(s + j(m+k) w0) then reduces to real
  // multiply-adds  sum_k g_k[i] * inv_band[m+k][i].
  struct Tap {
    int k;
    std::vector<double> g_re, g_im;
  };
  std::vector<Tap> taps;
  for (int k = -jmax; k <= jmax; ++k) {
    const cplx v_k = p.kvco * isf[k];
    if (v_k == cplx{0.0}) continue;
    Tap tap;
    tap.k = k;
    tap.g_re.resize(n);
    tap.g_im.resize(n);
    const double a = v_k.real();
    const double b = v_k.imag();
    for (std::size_t i = 0; i < n; ++i) {
      const double tr = tracking[i].real();
      const double ti = tracking[i].imag();
      tap.g_re[i] = tr * b + ti * a;
      tap.g_im[i] = ti * b - tr * a;
    }
    taps.push_back(std::move(tap));
  }

  // The impedance column only enters the PSD through its squared
  // magnitude: |Z(s_m) B|^2 = |Z(s_m)|^2 |B|^2, so no complex division
  // is needed -- only |N(jx)|^2 / |D(jx)|^2, one real division per
  // point.  For real filter coefficients (the physical case) each
  // |P(jx)|^2 = E(-x^2)^2 + x^2 O(-x^2)^2 costs two half-degree real
  // Horner chains; otherwise fall back to the complex batch_rational
  // plane and take its magnitude.
  const bool real_tf = all_real(num) && all_real(den);
  std::vector<double> num_even, num_odd, den_even, den_odd;
  if (real_tf) {
    even_odd_split(num, num_even, num_odd);
    even_odd_split(den, den_even, den_odd);
  }
  const double inv_icp2 = inv_icp * inv_icp;

  std::vector<double> sm_re(n, 0.0), sm_im(n), z_re(n), z_im(n), t_re(n),
      t_im(n), z2(n), y_pl(n), ev_pl(n), od_pl(n), row_re(n), row_im(n);
  // Coefficient-outer Horner pass over a whole plane: amortizes the
  // tiny-degree loop overhead and lets the compiler vectorize.
  const auto horner_plane = [&](const std::vector<double>& c, double* dst) {
    const double top = c.empty() ? 0.0 : c.back();
    for (std::size_t i = 0; i < n; ++i) dst[i] = top;
    for (std::size_t k = c.size() > 0 ? c.size() - 1 : 0; k-- > 0;) {
      const double ck = c[k];
      for (std::size_t i = 0; i < n; ++i) dst[i] = dst[i] * y_pl[i] + ck;
    }
  };
  for (int m = -fold_; m <= fold_; ++m) {
    const double shift = static_cast<double>(m) * w0;
    for (std::size_t i = 0; i < n; ++i) sm_im[i] = w_grid[i] + shift;
    if (real_tf) {
      for (std::size_t i = 0; i < n; ++i) y_pl[i] = -sm_im[i] * sm_im[i];
      horner_plane(num_even, ev_pl.data());
      horner_plane(num_odd, od_pl.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double ni = sm_im[i] * od_pl[i];
        z_re[i] = ev_pl[i] * ev_pl[i] + ni * ni;  // |N(jx)|^2
      }
      horner_plane(den_even, ev_pl.data());
      horner_plane(den_odd, od_pl.data());
      for (std::size_t i = 0; i < n; ++i) {
        const double di = sm_im[i] * od_pl[i];
        z_im[i] = ev_pl[i] * ev_pl[i] + di * di;  // |D(jx)|^2
      }
      for (std::size_t i = 0; i < n; ++i) z2[i] = z_re[i] / z_im[i];
      for (std::size_t i = 0; i < n; ++i) {
        // Over/underflowed squared magnitudes: redo the point with the
        // scaling-safe complex evaluator.
        if (!std::isfinite(z2[i])) {
          z2[i] = std::norm(hlf(cplx{0.0, sm_im[i]}));
        }
      }
    } else {
      batch_rational(num.data(), num.size(), den.data(), den.size(),
                     sm_re.data(), sm_im.data(), n, z_re.data(),
                     z_im.data(), t_re.data(), t_im.data());
      for (std::size_t i = 0; i < n; ++i) {
        z2[i] = z_re[i] * z_re[i] + z_im[i] * z_im[i];
      }
    }
    const cplx v_minus_m = p.kvco * isf[-m];
    const double vm_re = v_minus_m.imag();  // components of v_{-m}/s
    const double vm_im = -v_minus_m.real();
    if (taps.size() == 1) {
      // DC-only ISF (the common case): one tap, fused into the PSD
      // accumulation -- bracket = v_{-m}/s - g_0 / (w + m w0).
      const double* inv =
          inv_band.data() + static_cast<std::size_t>(m + taps[0].k + bmax) * n;
      const double* gr = taps[0].g_re.data();
      const double* gi = taps[0].g_im.data();
      for (std::size_t i = 0; i < n; ++i) {
        const double wm = std::abs(sm_im[i]);
        if (wm == 0.0) continue;
        const double br = vm_re * inv_w[i] - gr[i] * inv[i];
        const double bi = vm_im * inv_w[i] - gi[i] * inv[i];
        out[i] += z2[i] * inv_icp2 * (br * br + bi * bi) * s_icp(wm);
      }
    } else {
      // tracking * row_sum plane over the ISF window.
      std::fill(row_re.begin(), row_re.end(), 0.0);
      std::fill(row_im.begin(), row_im.end(), 0.0);
      for (const Tap& tap : taps) {
        const double* inv =
            inv_band.data() +
            static_cast<std::size_t>(m + tap.k + bmax) * n;
        const double* gr = tap.g_re.data();
        const double* gi = tap.g_im.data();
        for (std::size_t i = 0; i < n; ++i) {
          row_re[i] += gr[i] * inv[i];
          row_im[i] += gi[i] * inv[i];
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const double wm = std::abs(sm_im[i]);
        if (wm == 0.0) continue;
        // bracket = v_{-m}/s - tracking * row_sum
        const double br = vm_re * inv_w[i] - row_re[i];
        const double bi = vm_im * inv_w[i] - row_im[i];
        out[i] += z2[i] * inv_icp2 * (br * br + bi * bi) * s_icp(wm);
      }
    }
    fold_terms_counter().add(n);
  }
}

std::vector<double> NoiseAnalysis::output_psd_from_reference_grid(
    const std::vector<double>& w_grid, const PsdFunction& s_ref) const {
  require_grid(w_grid);
  require_psd(s_ref, "s_ref");
  HTMPLL_TRACE_SPAN("noise.psd_grid");
  psd_grid_points_counter().add(w_grid.size());
  const CVector h00 = model_.baseband_transfer_grid(jw_grid(w_grid));
  std::vector<double> out(w_grid.size(), 0.0);
  psd_reference_into(h00, w_grid, s_ref, out);
  return out;
}

std::vector<double> NoiseAnalysis::output_psd_from_vco_grid(
    const std::vector<double>& w_grid, const PsdFunction& s_vco) const {
  require_grid(w_grid);
  require_psd(s_vco, "s_vco");
  HTMPLL_TRACE_SPAN("noise.psd_grid");
  psd_grid_points_counter().add(w_grid.size());
  const CVector h00 = model_.baseband_transfer_grid(jw_grid(w_grid));
  std::vector<double> out(w_grid.size(), 0.0);
  psd_vco_into(h00, w_grid, s_vco, out);
  return out;
}

std::vector<double> NoiseAnalysis::output_psd_from_charge_pump_grid(
    const std::vector<double>& w_grid, const PsdFunction& s_icp) const {
  require_grid(w_grid);
  require_psd(s_icp, "s_icp");
  HTMPLL_TRACE_SPAN("noise.psd_grid");
  psd_grid_points_counter().add(w_grid.size());
  const CVector tracking =
      model_.closed_loop_grid({0}, jw_grid(w_grid))[0];
  std::vector<double> out(w_grid.size(), 0.0);
  psd_charge_pump_into(tracking, w_grid, s_icp, out);
  return out;
}

std::vector<double> NoiseAnalysis::output_psd_grid(
    const std::vector<double>& w_grid, const PsdFunction& s_ref,
    const PsdFunction& s_vco, const PsdFunction& s_icp) const {
  require_grid(w_grid);
  require_psd(s_ref, "s_ref");
  require_psd(s_vco, "s_vco");
  require_psd(s_icp, "s_icp");
  HTMPLL_TRACE_SPAN("noise.psd_grid");
  psd_grid_points_counter().add(w_grid.size());
  const CVector s_grid = jw_grid(w_grid);
  // One shared plane serves every source: the charge-pump tracking
  // factor V~_0/(1+lambda) is exactly the band-0 closed loop, i.e.
  // H_00 itself.
  const CVector h00 = model_.baseband_transfer_grid(s_grid);
  std::vector<double> out(w_grid.size(), 0.0);
  psd_reference_into(h00, w_grid, s_ref, out);
  psd_vco_into(h00, w_grid, s_vco, out);
  psd_charge_pump_into(h00, w_grid, s_icp, out);
  return out;
}

std::vector<std::vector<double>> NoiseAnalysis::spur_map_grid(
    const std::vector<double>& offsets, int max_harmonic,
    const PsdFunction& s_ref, const PsdFunction& s_vco,
    const PsdFunction& s_icp) const {
  require_grid(offsets);
  HTMPLL_REQUIRE(max_harmonic >= 1,
                 "spur map needs at least the first harmonic");
  const double w0 = model_.w0();
  // Flatten the (harmonic, offset) map into one batched grid so every
  // transfer plane is built once for all rows.
  std::vector<double> w_grid;
  w_grid.reserve(static_cast<std::size_t>(max_harmonic) * offsets.size());
  for (int k = 1; k <= max_harmonic; ++k) {
    for (const double off : offsets) {
      w_grid.push_back(static_cast<double>(k) * w0 + off);
    }
  }
  const std::vector<double> flat =
      output_psd_grid(w_grid, s_ref, s_vco, s_icp);
  std::vector<std::vector<double>> map(
      static_cast<std::size_t>(max_harmonic));
  for (int k = 0; k < max_harmonic; ++k) {
    const std::size_t base = static_cast<std::size_t>(k) * offsets.size();
    map[static_cast<std::size_t>(k)].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(base),
        flat.begin() + static_cast<std::ptrdiff_t>(base + offsets.size()));
  }
  return map;
}

double NoiseAnalysis::integrated_jitter(double w_lo, double w_hi,
                                        const PsdFunction& s_ref,
                                        const PsdFunction& s_vco,
                                        const PsdFunction& s_icp,
                                        std::size_t points) const {
  HTMPLL_REQUIRE(points >= 2, "quadrature needs at least two points");
  const std::vector<double> grid = logspace(w_lo, w_hi, points);
  const std::vector<double> psd =
      output_psd_grid(grid, s_ref, s_vco, s_icp);
  double integral = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    integral += 0.5 * (psd[i] + psd[i - 1]) * (grid[i] - grid[i - 1]);
  }
  return std::sqrt(integral / std::numbers::pi);
}

}  // namespace htmpll

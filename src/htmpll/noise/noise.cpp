#include "htmpll/noise/noise.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"
#include "htmpll/util/grid.hpp"

namespace htmpll {

double PowerLawPsd::operator()(double w) const {
  const double aw = std::abs(w);
  HTMPLL_REQUIRE(aw > 0.0, "power-law PSD evaluated at DC");
  return white + flicker / aw + walk / (aw * aw);
}

NoiseAnalysis::NoiseAnalysis(const SamplingPllModel& model,
                             int fold_harmonics)
    : model_(model), fold_(fold_harmonics) {
  HTMPLL_REQUIRE(fold_harmonics >= 1, "need at least one folding harmonic");
}

cplx NoiseAnalysis::reference_transfer(double w) const {
  return model_.baseband_transfer(cplx{0.0, w});
}

cplx NoiseAnalysis::vco_transfer(int m, double w) const {
  const cplx h00 = model_.baseband_transfer(cplx{0.0, w});
  return (m == 0 ? cplx{1.0} : cplx{0.0}) - h00;
}

cplx NoiseAnalysis::charge_pump_transfer(int m, double w) const {
  return charge_pump_transfer_impl(m, w, model_.closed_loop(0, cplx{0.0, w}));
}

cplx NoiseAnalysis::charge_pump_transfer_impl(int m, double w,
                                              cplx tracking) const {
  const cplx s{0.0, w};
  const double w0 = model_.w0();
  const cplx sm = s + cplx{0.0, static_cast<double>(m) * w0};
  const PllParameters& p = model_.parameters();
  // Current noise is injected at the filter INPUT: it sees the
  // impedance Z (and any extra loop dynamics), not Icp*Z -- the pump
  // current belongs to the PFD pulses only.  loop_filter_tf() is
  // Icp * Z * extras, so divide Icp back out.
  const cplx z_m = model_.loop_filter_tf()(sm) / p.icp;
  // General LPTV form with E = H_VCO Z_diag:
  //   T_{0,m} = Z(s_m) [ v_{-m}/s
  //                      - (V~_0/(1+lambda)) sum_k v_k/(s + j(m+k) w0) ]
  // (reduces to D_m (delta - H_00) for a DC-only ISF).
  const HarmonicCoefficients& isf = model_.isf();
  const cplx v_minus_m = p.kvco * isf[-m];
  cplx row_sum{0.0};
  for (int k = -isf.max_harmonic(); k <= isf.max_harmonic(); ++k) {
    const cplx v_k = p.kvco * isf[k];
    if (v_k == cplx{0.0}) continue;
    const cplx sn =
        s + cplx{0.0, static_cast<double>(m + k) * w0};
    row_sum += v_k / sn;
  }
  return z_m * (v_minus_m / s - tracking * row_sum);
}

double NoiseAnalysis::output_psd_from_reference(
    double w, const PsdFunction& s_ref) const {
  // Reference noise is a baseband quantity in the paper's convention;
  // only H_{0,0} applies.
  return std::norm(reference_transfer(w)) * s_ref(std::abs(w));
}

double NoiseAnalysis::output_psd_from_vco(double w,
                                          const PsdFunction& s_vco) const {
  const double w0 = model_.w0();
  // vco_transfer(m, w) = delta_{m0} - H_00(jw): hoist the (expensive)
  // H_00 evaluation out of the folding loop -- it does not depend on m.
  const cplx h00 = model_.baseband_transfer(cplx{0.0, w});
  double acc = 0.0;
  for (int m = -fold_; m <= fold_; ++m) {
    const double wm = std::abs(w + static_cast<double>(m) * w0);
    if (wm == 0.0) continue;
    const cplx t = (m == 0 ? cplx{1.0} : cplx{0.0}) - h00;
    acc += std::norm(t) * s_vco(wm);
  }
  return acc;
}

double NoiseAnalysis::output_psd_from_charge_pump(
    double w, const PsdFunction& s_icp) const {
  const double w0 = model_.w0();
  const cplx tracking = model_.closed_loop(0, cplx{0.0, w});
  double acc = 0.0;
  for (int m = -fold_; m <= fold_; ++m) {
    const double wm = std::abs(w + static_cast<double>(m) * w0);
    if (wm == 0.0) continue;
    acc += std::norm(charge_pump_transfer_impl(m, w, tracking)) * s_icp(wm);
  }
  return acc;
}

double NoiseAnalysis::output_psd_total(double w, const PsdFunction& s_ref,
                                       const PsdFunction& s_vco,
                                       const PsdFunction& s_icp) const {
  return output_psd_from_reference(w, s_ref) +
         output_psd_from_vco(w, s_vco) +
         output_psd_from_charge_pump(w, s_icp);
}

double NoiseAnalysis::integrated_rms(
    const std::function<double(double)>& s_out, double w_lo, double w_hi,
    std::size_t points) const {
  HTMPLL_REQUIRE(points >= 2, "quadrature needs at least two points");
  const std::vector<double> grid = logspace(w_lo, w_hi, points);
  double integral = 0.0;
  double prev_w = grid[0];
  double prev_s = s_out(prev_w);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double s = s_out(grid[i]);
    integral += 0.5 * (s + prev_s) * (grid[i] - prev_w);
    prev_w = grid[i];
    prev_s = s;
  }
  return std::sqrt(integral / std::numbers::pi);
}

}  // namespace htmpll

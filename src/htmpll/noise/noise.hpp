// Phase-noise transfer analysis through the time-varying PLL model.
//
// This is the natural extension of the paper's machinery: once the
// closed-loop HTM is known in the rank-one form, the transfer of noise
// from every injection point to the output phase follows from the same
// Sherman-Morrison algebra, *including the folding of noise sidebands*
// across reference harmonics that an LTI analysis misses:
//
//  reference phase noise:  theta = (V~ l^T / (1+lambda)) theta_ref,n
//  VCO phase noise:        theta = (I + G)^{-1} theta_vco,n
//                                = (I - V~ l^T/(1+lambda)) theta_vco,n
//  charge-pump current noise (continuous, injected at the filter input):
//                          theta = (I + G)^{-1} D i_n,
//                          D = H_VCO H_LF (diagonal for a TI VCO)
//
// Output baseband PSD: S_out(w) = sum_m |T_{0,m}(jw)|^2 S_in(|w + m w0|).
#pragma once

#include <functional>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

/// One-sided phase PSD model S(w) = white + flicker/w + walk/w^2
/// (w in rad/s; units follow the caller's phase convention).
struct PowerLawPsd {
  double white = 0.0;
  double flicker = 0.0;
  double walk = 0.0;

  double operator()(double w) const;
};

using PsdFunction = std::function<double(double)>;

class NoiseAnalysis {
 public:
  /// `fold_harmonics` bounds the |m| range of the sideband-folding sums;
  /// the per-harmonic transfers decay like 1/(m w0) or faster, so modest
  /// values converge quickly.
  explicit NoiseAnalysis(const SamplingPllModel& model,
                         int fold_harmonics = 16);

  int fold_harmonics() const { return fold_; }

  // --- per-harmonic transfer factors at baseband output, band m input ---

  /// Reference noise entering through the sampler: H_{0,m}(jw)
  /// = V~_0/(1+lambda) for every m (rank-one aliasing).
  cplx reference_transfer(double w) const;

  /// VCO phase noise: T_{0,m} = delta_{0,m} - V~_0/(1+lambda).
  cplx vco_transfer(int m, double w) const;

  /// Charge-pump current noise (amperes into the filter impedance),
  /// general LPTV form:
  /// T_{0,m} = Z(s_m) [ v_{-m}/s
  ///                   - (V~_0/(1+lambda)) sum_k v_k/(s + j(m+k) w0) ],
  /// reducing to v0 Z(s_m)/s_m (delta_{0,m} - H_00) for a TI VCO --
  /// validated against the simulator with injected held-white noise
  /// (test_noise_injection).
  cplx charge_pump_transfer(int m, double w) const;

  // --- folded output PSDs at baseband ---

  double output_psd_from_reference(double w, const PsdFunction& s_ref) const;
  double output_psd_from_vco(double w, const PsdFunction& s_vco) const;
  double output_psd_from_charge_pump(double w,
                                     const PsdFunction& s_icp) const;

  /// Total output PSD from all three sources (assumed independent).
  double output_psd_total(double w, const PsdFunction& s_ref,
                          const PsdFunction& s_vco,
                          const PsdFunction& s_icp) const;

  /// RMS phase over [w_lo, w_hi]: sqrt((1/pi) * integral of S_out dw)
  /// via log-trapezoid quadrature on `points` samples.
  double integrated_rms(const std::function<double(double)>& s_out,
                        double w_lo, double w_hi,
                        std::size_t points = 400) const;

 private:
  /// charge_pump_transfer with the m-independent tracking factor
  /// V~_0/(1+lambda) supplied by the caller, so folding loops evaluate
  /// it once instead of per harmonic.
  cplx charge_pump_transfer_impl(int m, double w, cplx tracking) const;

  const SamplingPllModel& model_;
  int fold_;
};

}  // namespace htmpll

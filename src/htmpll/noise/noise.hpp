// Phase-noise transfer analysis through the time-varying PLL model.
//
// This is the natural extension of the paper's machinery: once the
// closed-loop HTM is known in the rank-one form, the transfer of noise
// from every injection point to the output phase follows from the same
// Sherman-Morrison algebra, *including the folding of noise sidebands*
// across reference harmonics that an LTI analysis misses:
//
//  reference phase noise:  theta = (V~ l^T / (1+lambda)) theta_ref,n
//  VCO phase noise:        theta = (I + G)^{-1} theta_vco,n
//                                = (I - V~ l^T/(1+lambda)) theta_vco,n
//  charge-pump current noise (continuous, injected at the filter input):
//                          theta = (I + G)^{-1} D i_n,
//                          D = H_VCO H_LF (diagonal for a TI VCO)
//
// Output baseband PSD: S_out(w) = sum_m |T_{0,m}(jw)|^2 S_in(|w + m w0|).
#pragma once

#include <functional>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

/// One-sided phase PSD model S(w) = white + flicker/w + walk/w^2
/// (w in rad/s; units follow the caller's phase convention).
struct PowerLawPsd {
  double white = 0.0;
  double flicker = 0.0;
  double walk = 0.0;

  double operator()(double w) const;
};

using PsdFunction = std::function<double(double)>;

class NoiseAnalysis {
 public:
  /// `fold_harmonics` bounds the |m| range of the sideband-folding sums;
  /// the per-harmonic transfers decay like 1/(m w0) or faster, so modest
  /// values converge quickly.  Must be >= 0; zero keeps only the m = 0
  /// (unfolded) term of every sum.
  explicit NoiseAnalysis(const SamplingPllModel& model,
                         int fold_harmonics = 16);

  int fold_harmonics() const { return fold_; }

  // --- per-harmonic transfer factors at baseband output, band m input ---

  /// Reference noise entering through the sampler: H_{0,m}(jw)
  /// = V~_0/(1+lambda) for every m (rank-one aliasing).
  cplx reference_transfer(double w) const;

  /// VCO phase noise: T_{0,m} = delta_{0,m} - V~_0/(1+lambda).
  cplx vco_transfer(int m, double w) const;

  /// Charge-pump current noise (amperes into the filter impedance),
  /// general LPTV form:
  /// T_{0,m} = Z(s_m) [ v_{-m}/s
  ///                   - (V~_0/(1+lambda)) sum_k v_k/(s + j(m+k) w0) ],
  /// reducing to v0 Z(s_m)/s_m (delta_{0,m} - H_00) for a TI VCO --
  /// validated against the simulator with injected held-white noise
  /// (test_noise_injection).
  cplx charge_pump_transfer(int m, double w) const;

  // --- folded output PSDs at baseband ---

  double output_psd_from_reference(double w, const PsdFunction& s_ref) const;
  double output_psd_from_vco(double w, const PsdFunction& s_vco) const;
  double output_psd_from_charge_pump(double w,
                                     const PsdFunction& s_icp) const;

  /// Total output PSD from all three sources (assumed independent).
  double output_psd_total(double w, const PsdFunction& s_ref,
                          const PsdFunction& s_vco,
                          const PsdFunction& s_icp) const;

  /// RMS phase over [w_lo, w_hi]: sqrt((1/pi) * integral of S_out dw)
  /// via log-trapezoid quadrature on `points` samples.
  double integrated_rms(const std::function<double(double)>& s_out,
                        double w_lo, double w_hi,
                        std::size_t points = 400) const;

  // --- batched output-PSD grids (eval-plan backed) ---
  //
  // Grid variants of the pointwise PSDs above.  The shared transfer
  // planes -- H_00, the tracking factor V~_0/(1+lambda), and the
  // per-fold-band filter-impedance columns Z(s + j m w0) -- are
  // evaluated ONCE over the whole grid through the model's compiled
  // eval plan (one exp(-sT) plane per block, SIMD batch kernels
  // underneath) and reused across all 2*fold_harmonics+1 fold
  // harmonics, instead of re-deriving lambda and the folding sum per
  // (harmonic, frequency) pair like the pointwise calls.
  //
  // result[i] agrees with the pointwise call at w_grid[i] to <= 1e-10
  // relative error.  Grids must be non-empty and PSD functions
  // non-null (std::invalid_argument otherwise).  Counters:
  // `noise.psd_grid_points` (points evaluated) and `noise.fold_terms`
  // ((harmonic, point) pairs folded).

  std::vector<double> output_psd_from_reference_grid(
      const std::vector<double>& w_grid, const PsdFunction& s_ref) const;
  std::vector<double> output_psd_from_vco_grid(
      const std::vector<double>& w_grid, const PsdFunction& s_vco) const;
  std::vector<double> output_psd_from_charge_pump_grid(
      const std::vector<double>& w_grid, const PsdFunction& s_icp) const;

  /// Total output PSD from all three sources over a grid; the H_00 and
  /// tracking planes are shared between the sources.
  std::vector<double> output_psd_grid(const std::vector<double>& w_grid,
                                      const PsdFunction& s_ref,
                                      const PsdFunction& s_vco,
                                      const PsdFunction& s_icp) const;

  /// Noise-PSD map around the first `max_harmonic` reference spurs:
  /// row k-1 holds the total output PSD at w = k w0 + offsets[i], so a
  /// plotter gets the folded-noise skirt under every spur.  All
  /// max_harmonic * offsets.size() points are evaluated as ONE batched
  /// grid.
  std::vector<std::vector<double>> spur_map_grid(
      const std::vector<double>& offsets, int max_harmonic,
      const PsdFunction& s_ref, const PsdFunction& s_vco,
      const PsdFunction& s_icp) const;

  /// RMS output phase over [w_lo, w_hi] (paper time units: seconds of
  /// jitter when the input PSDs describe absolute jitter):
  /// sqrt((1/pi) * integral of S_out dw) on a `points`-sample log
  /// grid, with S_out evaluated through one output_psd_grid call
  /// instead of the pointwise integrated_rms functional.
  double integrated_jitter(double w_lo, double w_hi,
                           const PsdFunction& s_ref,
                           const PsdFunction& s_vco,
                           const PsdFunction& s_icp,
                           std::size_t points = 400) const;

 private:
  /// charge_pump_transfer with the m-independent tracking factor
  /// V~_0/(1+lambda) supplied by the caller, so folding loops evaluate
  /// it once instead of per harmonic.
  cplx charge_pump_transfer_impl(int m, double w, cplx tracking) const;

  // Accumulating per-source grid kernels behind the public grid APIs;
  // `h00` / `tracking` are the shared planes at s = j w_grid[i].
  void psd_reference_into(const CVector& h00,
                          const std::vector<double>& w_grid,
                          const PsdFunction& s_ref,
                          std::vector<double>& out) const;
  void psd_vco_into(const CVector& h00, const std::vector<double>& w_grid,
                    const PsdFunction& s_vco,
                    std::vector<double>& out) const;
  void psd_charge_pump_into(const CVector& tracking,
                            const std::vector<double>& w_grid,
                            const PsdFunction& s_icp,
                            std::vector<double>& out) const;

  const SamplingPllModel& model_;
  int fold_;
};

}  // namespace htmpll

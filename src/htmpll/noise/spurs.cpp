#include "htmpll/noise/spurs.hpp"

#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"

namespace htmpll {

cplx ChargePumpLeakage::harmonic(int k, double w0) const {
  HTMPLL_REQUIRE(w0 > 0.0, "leakage harmonic needs w0 > 0");
  const double t_period = 2.0 * std::numbers::pi / w0;
  HTMPLL_REQUIRE(window >= 0.0 && window < t_period,
                 "leakage window must lie within one period");
  if (k == 0) return mismatch_current * window / t_period;
  const cplx jkw{0.0, static_cast<double>(k) * w0};
  // (1/T) integral_0^window I e^{-j k w0 t} dt
  return mismatch_current * (1.0 - std::exp(-jkw * window)) /
         (jkw * t_period);
}

std::vector<SpurLevel> reference_spurs(const SamplingPllModel& model,
                                       const ChargePumpLeakage& leakage,
                                       int max_harmonic) {
  HTMPLL_REQUIRE(model.time_invariant_vco(),
                 "spur analysis implemented for time-invariant VCOs");
  HTMPLL_REQUIRE(max_harmonic >= 1, "need at least the first harmonic");
  const double w0 = model.w0();
  const PllParameters& p = model.parameters();
  const double v0 = p.kvco * model.isf()[0].real();

  const RationalFunction z_lf = p.filter.impedance();
  const cplx i_0 = leakage.harmonic(0, w0);
  std::vector<SpurLevel> out;
  out.reserve(max_harmonic);
  for (int k = 1; k <= max_harmonic; ++k) {
    const cplx jkw{0.0, static_cast<double>(k) * w0};
    const cplx i_k = leakage.harmonic(k, w0);
    // Leakage harmonic minus its Dirac compensation by the retimed pump
    // pulses, FM'd through the filter impedance.
    const cplx theta = (i_k - i_0) * v0 * z_lf(jkw) / jkw;
    SpurLevel s;
    s.harmonic = k;
    s.theta = theta;
    s.phase_rad = w0 * std::abs(theta);
    s.dbc = 20.0 * std::log10(0.5 * s.phase_rad);
    out.push_back(s);
  }
  return out;
}

double static_phase_offset(const SamplingPllModel& model,
                           const ChargePumpLeakage& leakage) {
  const double w0 = model.w0();
  const double t_period = 2.0 * std::numbers::pi / w0;
  const double i0 = leakage.harmonic(0, w0).real();
  // In lock the sampled loop nulls the average filter current: the
  // pulse-width charge Icp * e per period balances the leakage charge
  // i0 * T, so e = -i0 T / Icp.
  return -i0 * t_period / model.parameters().icp;
}

}  // namespace htmpll

// Deterministic reference spurs from charge-pump imperfections.
//
// A real charge pump leaks a T-periodic disturbance current (UP/DOWN
// mismatch during the PFD reset window, switch charge injection): a
// Fourier series i_k at the reference harmonics k w0.  Taking the
// periodic steady state of the rank-one closed loop (the s -> 0 limit
// of theta = (I+G)^{-1} E i with E_m = v0 Z(s+jmw0)/(s+jmw0)):
//
//  * the m = 0 feedback channel does NOT vanish -- the integrator nulls
//    the *average* current by retiming the pump pulses (static phase
//    offset -i_0 T/Icp), and that compensating Dirac train carries the
//    flat spectrum -i_0 into every harmonic;
//  * at band k the surviving spur is the *difference* between the
//    leakage spectrum and its impulse compensation:
//
//      theta_k = (i_k - i_0) * v0 * Z(j k w0) / (j k w0).
//
// For an impulse-like leakage (window -> 0) i_k -> i_0 and the spurs
// cancel to first order: what remains measures the leakage pulse SHAPE,
// growing like k w0 window / 2.  In radians: phi_k = w0 theta_k; for
// small angles the single-sideband spur level is |phi_k|/2 (narrowband
// FM).  The transient simulator (with set_leakage) confirms the
// formula, including the near-cancellation.
#pragma once

#include <vector>

#include "htmpll/core/sampling_pll.hpp"

namespace htmpll {

/// Rectangular leakage model: every reference cycle the pump sources
/// `mismatch_current` amperes for `window` seconds (the PFD reset
/// overlap).  window << T.
struct ChargePumpLeakage {
  double mismatch_current;  ///< amperes (signed)
  double window;            ///< seconds

  /// Fourier coefficient i_k of the periodic leakage current,
  /// i(t) = sum_k i_k e^{j k w0 t}.
  cplx harmonic(int k, double w0) const;
};

struct SpurLevel {
  int harmonic;       ///< k (spur offset k*w0 from the carrier)
  cplx theta;         ///< output phase component (paper's time units)
  double phase_rad;   ///< |phi_k| = w0 |theta_k|
  double dbc;         ///< 20 log10(|phi_k| / 2), narrowband FM sideband
};

/// Spur levels at harmonics 1..max_harmonic for the given loop and
/// leakage.  Requires a time-invariant VCO.
std::vector<SpurLevel> reference_spurs(const SamplingPllModel& model,
                                       const ChargePumpLeakage& leakage,
                                       int max_harmonic = 5);

/// The DC component of the leakage shifts the static phase offset: the
/// loop's integrator nulls the *average* current, so the locked loop
/// sits at the phase error that cancels i_0 through the pump:
/// offset = -i_0 T / Icp (seconds).
double static_phase_offset(const SamplingPllModel& model,
                           const ChargePumpLeakage& leakage);

}  // namespace htmpll

// Minimal column-oriented result table: aligned console output for the
// bench harness plus CSV export so figures can be re-plotted offline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace htmpll {

class Table {
 public:
  /// Column headers fix the column count; every row must match it.
  explicit Table(std::vector<std::string> headers);

  /// Pre-allocates row storage; call before bulk add_row loops so a
  /// sweep-sized table never reallocates mid-fill.
  void reserve(std::size_t row_count) { rows_.reserve(row_count); }

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.6g.
  void add_row(const std::vector<double>& cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  static std::string fmt(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace htmpll

// Error-handling policy for the htmpll library.
//
// Preconditions on public API entry points are enforced with
// HTMPLL_REQUIRE, which throws std::invalid_argument so callers can
// recover.  Internal invariants use HTMPLL_ASSERT, which throws
// std::logic_error in debug builds (a failure there is a library bug)
// and compiles out entirely under NDEBUG -- it must never guard
// anything with side effects, and release-mode hot loops (matrix
// kernels, grid sweeps) pay nothing for it.
#pragma once

#include <stdexcept>
#include <string>

namespace htmpll {

[[noreturn]] void throw_requirement_failure(const char* expr, const char* file,
                                            int line, const std::string& msg);
[[noreturn]] void throw_assertion_failure(const char* expr, const char* file,
                                          int line);

}  // namespace htmpll

#define HTMPLL_REQUIRE(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::htmpll::throw_requirement_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define HTMPLL_ASSERT(cond)      \
  do {                           \
    (void)sizeof((cond) ? 1 : 0); \
  } while (false)
#else
#define HTMPLL_ASSERT(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::htmpll::throw_assertion_failure(#cond, __FILE__, __LINE__);    \
    }                                                                  \
  } while (false)
#endif

#include "htmpll/util/check.hpp"

#include <sstream>

namespace htmpll {

void throw_requirement_failure(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "htmpll: requirement violated: " << msg << " [" << expr << " at "
     << file << ':' << line << ']';
  throw std::invalid_argument(os.str());
}

void throw_assertion_failure(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "htmpll: internal invariant failed (library bug): " << expr << " at "
     << file << ':' << line;
  throw std::logic_error(os.str());
}

}  // namespace htmpll

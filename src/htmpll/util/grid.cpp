#include "htmpll/util/grid.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  HTMPLL_REQUIRE(n != 0, "linspace: n == 0 (an empty grid) is not allowed");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  HTMPLL_REQUIRE(n != 0, "logspace: n == 0 (an empty grid) is not allowed");
  HTMPLL_REQUIRE(lo > 0.0 && hi > lo, "logspace needs 0 < lo < hi");
  if (n == 1) return {lo};
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), n);
  for (double& x : out) x = std::pow(10.0, x);
  out.front() = lo;  // endpoints bit-exact, not 10^log10(x)
  out.back() = hi;
  return out;
}

std::vector<double> geomspace(double lo, double hi, std::size_t n) {
  HTMPLL_REQUIRE(n != 0, "geomspace: n == 0 (an empty grid) is not allowed");
  HTMPLL_REQUIRE(lo != 0.0 && hi != 0.0 && (lo > 0.0) == (hi > 0.0),
                 "geomspace needs non-zero endpoints of the same sign");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double ratio = hi / lo;
  const double inv = 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo * std::pow(ratio, static_cast<double>(i) * inv);
  }
  out.front() = lo;  // both endpoints bit-exact
  out.back() = hi;
  return out;
}

std::vector<double> log_grid_per_decade(double lo, double hi,
                                        std::size_t points_per_decade) {
  HTMPLL_REQUIRE(points_per_decade >= 1, "need at least one point per decade");
  const double decades = std::log10(hi / lo);
  const auto n = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(points_per_decade))) + 1;
  return logspace(lo, hi, n < 2 ? 2 : n);
}

}  // namespace htmpll

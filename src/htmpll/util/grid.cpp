#include "htmpll/util/grid.hpp"

#include <cmath>

#include "htmpll/util/check.hpp"

namespace htmpll {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  HTMPLL_REQUIRE(n >= 1, "linspace needs at least one point");
  if (n == 1) return {lo};
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  HTMPLL_REQUIRE(lo > 0.0 && hi > lo, "logspace needs 0 < lo < hi");
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), n);
  for (double& x : out) x = std::pow(10.0, x);
  out.front() = lo;
  out.back() = hi;
  return out;
}

std::vector<double> log_grid_per_decade(double lo, double hi,
                                        std::size_t points_per_decade) {
  HTMPLL_REQUIRE(points_per_decade >= 1, "need at least one point per decade");
  const double decades = std::log10(hi / lo);
  const auto n = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(points_per_decade))) + 1;
  return logspace(lo, hi, n < 2 ? 2 : n);
}

}  // namespace htmpll

// Frequency-grid helpers used by sweeps, benches and plots.
#pragma once

#include <cstddef>
#include <vector>

namespace htmpll {

// All grid builders reject n == 0 explicitly (std::invalid_argument),
// return {lo} for n == 1, and make both endpoints bit-exact:
// grid.front() == lo and grid.back() == hi compare equal as doubles.

/// `n` points linearly spaced over [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// `n` points logarithmically spaced over [lo, hi] inclusive.
/// Requires lo > 0, hi > lo.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// `n` points in geometric progression from lo to hi inclusive (both
/// endpoints bit-exact).  Unlike logspace, the grid may descend
/// (hi < lo) or be negative; endpoints must be non-zero and share a
/// sign.
std::vector<double> geomspace(double lo, double hi, std::size_t n);

/// Points per decade over [lo, hi]; convenience wrapper around logspace
/// that picks the count from the span.
std::vector<double> log_grid_per_decade(double lo, double hi,
                                        std::size_t points_per_decade);

}  // namespace htmpll

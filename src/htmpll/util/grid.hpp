// Frequency-grid helpers used by sweeps, benches and plots.
#pragma once

#include <cstddef>
#include <vector>

namespace htmpll {

/// `n` points linearly spaced over [lo, hi] inclusive.  n >= 2, or n == 1
/// (returns {lo}).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// `n` points logarithmically spaced over [lo, hi] inclusive.
/// Requires lo > 0, hi > lo.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Points per decade over [lo, hi]; convenience wrapper around logspace
/// that picks the count from the span.
std::vector<double> log_grid_per_decade(double lo, double hi,
                                        std::size_t points_per_decade);

}  // namespace htmpll

#include "htmpll/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "htmpll/util/check.hpp"

namespace htmpll {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HTMPLL_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HTMPLL_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header count");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(fmt(v));
  add_row(std::move(text));
}

std::string Table::fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  HTMPLL_REQUIRE(os.good(), "cannot open CSV output file: " + path);
  write_csv(os);
}

}  // namespace htmpll

// Symbolic closed forms for the effective open-loop gain lambda(s).
//
// The paper stresses that the HTM method "can be used to obtain both
// numerical results and symbolic expressions".  This module makes the
// symbolic side concrete: lambda(s) = sum_m A(s + j m w0) for rational A
// is *exactly*
//
//   lambda(s) = sum_i sum_{k=1..m_i} r_ik * S_k(s - p_i),
//   S_1(x) = (pi/w0) coth(pi x / w0),   S_{k+1} = -(1/k) dS_k/dx,
//
// a finite combination of coth/csch^2 terms.  LambdaExpression carries
// that structure explicitly: it can pretty-print itself, evaluate, and
// differentiate analytically (dS_k/ds = -k S_{k+1}), which powers the
// Newton closed-loop pole search in pole_search.hpp.
#pragma once

#include <string>
#include <vector>

#include "htmpll/core/aliasing_sum.hpp"
#include "htmpll/lti/partial_fractions.hpp"

namespace htmpll {

/// One r * S_k(s - p) building block.
struct CothTerm {
  cplx residue;  ///< r
  cplx pole;     ///< p (s-plane pole of A)
  int order;     ///< k in S_k
};

class LambdaExpression {
 public:
  /// Builds the closed form from the open-loop gain A(s).  Requires A
  /// strictly proper with pole multiplicities <= 3 (differentiation
  /// raises the order by one and S_k is implemented through k = 4).
  LambdaExpression(const RationalFunction& a, double w0);

  double w0() const { return w0_; }
  const std::vector<CothTerm>& terms() const { return terms_; }

  /// lambda(s).
  cplx operator()(cplx s) const;

  /// lambda over a grid of s points, evaluated in parallel on the shared
  /// thread pool.  result[i] is bit-identical to operator()(s_grid[i]).
  CVector evaluate_grid(const CVector& s_grid) const;

  /// d lambda / ds, exact (no finite differences).
  cplx derivative(cplx s) const;

  /// The derivative as a new expression (term orders bumped by one).
  LambdaExpression differentiated() const;

  /// Human-readable closed form, e.g.
  ///   (0.3-0.1j)*S1(s-(-2+0j)) + 1.2*S2(s-0) ...
  /// with S_k(x) = sum_m 1/(x + j m w0)^k == coth-family closed forms.
  std::string to_string() const;

 private:
  LambdaExpression() = default;
  double w0_ = 0.0;
  std::vector<CothTerm> terms_;
};

}  // namespace htmpll

// Closed-loop poles of the time-varying PLL model.
//
// The closed loop theta = V~ l^T/(1 + lambda) theta_ref is singular where
// 1 + lambda(s) = 0.  Because lambda is j w0-periodic, poles come in
// vertical ladders s* + j m w0; we report the representatives in the
// fundamental strip Im(s) in (-w0/2, w0/2].
//
// Strategy: seed from the z-domain characteristic roots mapped through
// s = ln(z)/T (exact by the Poisson identity), then polish with Newton
// on 1 + lambda(s) using the analytic derivative.  Two engines:
//  * batched (default with a compiled eval plan): every seed advances
//    one iteration per lambda_grid / lambda_derivative_grid pair, with
//    active-lane masks and per-lane convergence / divergence /
//    iteration-cap bookkeeping.  A lane whose derivative degenerates
//    (zero or non-finite) is dropped with a diag event
//    (pole_search.degenerate_step) instead of throwing.
//  * scalar (use_eval_plan = false, or no compiled plan): the symbolic
//    coth closed form, one Newton chain per seed -- bit-identical to
//    the original sequential implementation.
// The Newton residual doubles as a numerical proof that the z-domain
// and frequency-domain descriptions agree.
#pragma once

#include <vector>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/core/symbolic.hpp"

namespace htmpll {

struct ClosedLoopPole {
  cplx s;            ///< pole location, fundamental strip
  double frequency;  ///< |s| (rad/s)
  double damping;    ///< zeta = -Re(s)/|s|; negative when unstable
  double residual;   ///< |1 + lambda(s)| after polishing
  int iterations;    ///< Newton iterations used
  /// False when the batched engine dropped the lane (degenerate or
  /// non-finite Newton step); the reported s is the last finite
  /// iterate.  The scalar engine throws instead and never clears this.
  bool converged = true;
};

struct PoleSearchOptions {
  int max_iterations = 60;
  double tolerance = 1e-12;  ///< on |step| relative to w0
  /// Route the Newton iterations through the model's compiled EvalPlan
  /// (batched lockstep over all seeds).  False forces the scalar
  /// symbolic path, whose results are bit-identical to the original
  /// per-seed implementation.
  bool use_eval_plan = true;
};

/// Newton polish of a single seed on 1 + lambda(s) = 0 (scalar engine).
ClosedLoopPole refine_closed_loop_pole(const LambdaExpression& lambda,
                                       cplx seed,
                                       const PoleSearchOptions& opts = {});

/// Masked lockstep Newton polish of many seeds: all active lanes advance
/// one iteration per batched lambda / lambda-derivative evaluation.
/// result[i] corresponds to seeds[i] (no sorting).
std::vector<ClosedLoopPole> refine_closed_loop_poles(
    const SamplingPllModel& model, const std::vector<cplx>& seeds,
    const PoleSearchOptions& opts = {});

/// All closed-loop poles of the model (time-invariant VCO), sorted by
/// ascending |s|.
std::vector<ClosedLoopPole> closed_loop_poles(
    const SamplingPllModel& model, const PoleSearchOptions& opts = {});

}  // namespace htmpll

// Closed-loop poles of the time-varying PLL model.
//
// The closed loop theta = V~ l^T/(1 + lambda) theta_ref is singular where
// 1 + lambda(s) = 0.  Because lambda is j w0-periodic, poles come in
// vertical ladders s* + j m w0; we report the representatives in the
// fundamental strip Im(s) in (-w0/2, w0/2].
//
// Strategy: seed from the z-domain characteristic roots mapped through
// s = ln(z)/T (exact by the Poisson identity), then polish with Newton
// on 1 + lambda(s) using the analytic derivative from the symbolic
// closed form.  The Newton residual doubles as a numerical proof that
// the two descriptions agree.
#pragma once

#include <vector>

#include "htmpll/core/sampling_pll.hpp"
#include "htmpll/core/symbolic.hpp"

namespace htmpll {

struct ClosedLoopPole {
  cplx s;            ///< pole location, fundamental strip
  double frequency;  ///< |s| (rad/s)
  double damping;    ///< zeta = -Re(s)/|s|; negative when unstable
  double residual;   ///< |1 + lambda(s)| after polishing
  int iterations;    ///< Newton iterations used
};

struct PoleSearchOptions {
  int max_iterations = 60;
  double tolerance = 1e-12;  ///< on |step| relative to w0
};

/// Newton polish of a single seed on 1 + lambda(s) = 0.
ClosedLoopPole refine_closed_loop_pole(const LambdaExpression& lambda,
                                       cplx seed,
                                       const PoleSearchOptions& opts = {});

/// All closed-loop poles of the model (time-invariant VCO), sorted by
/// ascending |s|.
std::vector<ClosedLoopPole> closed_loop_poles(
    const SamplingPllModel& model, const PoleSearchOptions& opts = {});

}  // namespace htmpll

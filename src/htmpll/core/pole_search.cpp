#include "htmpll/core/pole_search.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "htmpll/util/check.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {

ClosedLoopPole refine_closed_loop_pole(const LambdaExpression& lambda,
                                       cplx seed,
                                       const PoleSearchOptions& opts) {
  const double w0 = lambda.w0();
  cplx s = seed;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    const cplx f = 1.0 + lambda(s);
    const cplx df = lambda.derivative(s);
    HTMPLL_REQUIRE(std::abs(df) > 0.0,
                   "degenerate Newton step in pole search");
    const cplx step = f / df;
    s -= step;
    if (std::abs(step) <= opts.tolerance * w0) break;
  }
  // Fold into the fundamental strip.
  const double half = 0.5 * w0;
  double im = s.imag();
  while (im > half) im -= w0;
  while (im <= -half) im += w0;
  s = cplx{s.real(), im};

  ClosedLoopPole p;
  p.s = s;
  p.frequency = std::abs(s);
  p.damping = p.frequency > 0.0 ? -s.real() / p.frequency : 1.0;
  p.residual = std::abs(1.0 + lambda(s));
  p.iterations = it;
  return p;
}

std::vector<ClosedLoopPole> closed_loop_poles(const SamplingPllModel& model,
                                              const PoleSearchOptions& opts) {
  HTMPLL_REQUIRE(model.time_invariant_vco(),
                 "pole search implemented for time-invariant VCOs");
  HTMPLL_REQUIRE(model.options().pfd_shape == PfdShape::kImpulse,
                 "pole search implemented for the impulse PFD shape");
  const double w0 = model.w0();
  const double t = 2.0 * std::numbers::pi / w0;
  const LambdaExpression lambda(model.open_loop_gain(), w0);

  // Seeds: z-domain characteristic roots mapped through s = ln(z)/T.
  const ImpulseInvariantModel zm(model.open_loop_gain(), w0);
  std::vector<ClosedLoopPole> out;
  for (const cplx& z : zm.closed_loop_poles()) {
    if (std::abs(z) < 1e-12) continue;  // z = 0 maps to Re(s) = -inf
    const cplx seed = std::log(z) / t;
    out.push_back(refine_closed_loop_pole(lambda, seed, opts));
  }
  std::sort(out.begin(), out.end(),
            [](const ClosedLoopPole& a, const ClosedLoopPole& b) {
              return a.frequency < b.frequency;
            });
  return out;
}

}  // namespace htmpll

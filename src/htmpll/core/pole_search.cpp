#include "htmpll/core/pole_search.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "htmpll/obs/diag.hpp"
#include "htmpll/util/check.hpp"
#include "htmpll/ztrans/zdomain.hpp"

namespace htmpll {

namespace {

bool finite(cplx z) {
  return std::isfinite(z.real()) && std::isfinite(z.imag());
}

/// Fold Im(s) into the fundamental strip (-w0/2, w0/2].
cplx fold_to_strip(cplx s, double w0) {
  const double half = 0.5 * w0;
  double im = s.imag();
  while (im > half) im -= w0;
  while (im <= -half) im += w0;
  return cplx{s.real(), im};
}

ClosedLoopPole finish_pole(cplx s, double residual, int iterations,
                           bool converged) {
  ClosedLoopPole p;
  p.s = s;
  p.frequency = std::abs(s);
  p.damping = p.frequency > 0.0 ? -s.real() / p.frequency : 1.0;
  p.residual = residual;
  p.iterations = iterations;
  p.converged = converged;
  return p;
}

}  // namespace

ClosedLoopPole refine_closed_loop_pole(const LambdaExpression& lambda,
                                       cplx seed,
                                       const PoleSearchOptions& opts) {
  const double w0 = lambda.w0();
  cplx s = seed;
  int it = 0;
  for (; it < opts.max_iterations; ++it) {
    const cplx f = 1.0 + lambda(s);
    const cplx df = lambda.derivative(s);
    HTMPLL_REQUIRE(std::abs(df) > 0.0,
                   "degenerate Newton step in pole search");
    const cplx step = f / df;
    s -= step;
    if (std::abs(step) <= opts.tolerance * w0) break;
  }
  s = fold_to_strip(s, w0);
  return finish_pole(s, std::abs(1.0 + lambda(s)), it, /*converged=*/true);
}

std::vector<ClosedLoopPole> refine_closed_loop_poles(
    const SamplingPllModel& model, const std::vector<cplx>& seeds,
    const PoleSearchOptions& opts) {
  const double w0 = model.w0();
  const std::size_t n = seeds.size();
  std::vector<cplx> s(seeds);
  std::vector<int> iters(n, opts.max_iterations);
  std::vector<char> active(n, 1), dropped(n, 0);

  // Lockstep Newton: one batched lambda / lambda-derivative pair per
  // round advances every still-active lane.  Lanes retire on
  // convergence (|step| <= tol * w0), on a degenerate/non-finite
  // derivative, or when the proposed iterate leaves the finite plane --
  // the last two drop the lane with a diag event, keeping its final
  // finite iterate.
  std::vector<std::size_t> lanes;
  CVector pts;
  for (int it = 0; it < opts.max_iterations; ++it) {
    lanes.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) lanes.push_back(i);
    }
    if (lanes.empty()) break;
    pts.resize(lanes.size());
    for (std::size_t j = 0; j < lanes.size(); ++j) pts[j] = s[lanes[j]];
    const CVector lam = model.lambda_grid(pts, LambdaMethod::kExact, 0);
    const CVector dlam = model.lambda_derivative_grid(pts);
    for (std::size_t j = 0; j < lanes.size(); ++j) {
      const std::size_t i = lanes[j];
      const cplx f = 1.0 + lam[j];
      const cplx df = dlam[j];
      if (!finite(df) || !finite(f) || std::abs(df) == 0.0) {
        obs::diag_event(obs::DiagReason::kPoleSearchDegenerateStep,
                        std::abs(df));
        active[i] = 0;
        dropped[i] = 1;
        iters[i] = it;
        continue;
      }
      const cplx step = f / df;
      const cplx next = s[i] - step;
      if (!finite(next)) {
        obs::diag_event(obs::DiagReason::kPoleSearchDiverged,
                        std::abs(step));
        active[i] = 0;
        dropped[i] = 1;
        iters[i] = it;
        continue;
      }
      s[i] = next;
      if (std::abs(step) <= opts.tolerance * w0) {
        active[i] = 0;
        iters[i] = it;
      }
    }
  }

  // One batched residual pass over the folded representatives.
  CVector folded(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = fold_to_strip(s[i], w0);
    folded[i] = s[i];
  }
  std::vector<ClosedLoopPole> out;
  out.reserve(n);
  if (n == 0) return out;
  const CVector res = model.lambda_grid(folded, LambdaMethod::kExact, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(finish_pole(s[i], std::abs(1.0 + res[i]), iters[i],
                              !dropped[i]));
  }
  return out;
}

std::vector<ClosedLoopPole> closed_loop_poles(const SamplingPllModel& model,
                                              const PoleSearchOptions& opts) {
  HTMPLL_REQUIRE(model.time_invariant_vco(),
                 "pole search implemented for time-invariant VCOs");
  HTMPLL_REQUIRE(model.options().pfd_shape == PfdShape::kImpulse,
                 "pole search implemented for the impulse PFD shape");
  const double w0 = model.w0();
  const double t = 2.0 * std::numbers::pi / w0;

  // Seeds: z-domain characteristic roots mapped through s = ln(z)/T.
  const ImpulseInvariantModel zm(model.open_loop_gain(), w0);
  std::vector<cplx> seeds;
  for (const cplx& z : zm.closed_loop_poles()) {
    if (std::abs(z) < 1e-12) continue;  // z = 0 maps to Re(s) = -inf
    seeds.push_back(std::log(z) / t);
  }

  std::vector<ClosedLoopPole> out;
  if (opts.use_eval_plan && model.has_eval_plan()) {
    out = refine_closed_loop_poles(model, seeds, opts);
  } else {
    const LambdaExpression lambda(model.open_loop_gain(), w0);
    out.reserve(seeds.size());
    for (const cplx& seed : seeds) {
      out.push_back(refine_closed_loop_pole(lambda, seed, opts));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ClosedLoopPole& a, const ClosedLoopPole& b) {
              return a.frequency < b.frequency;
            });
  return out;
}

}  // namespace htmpll
